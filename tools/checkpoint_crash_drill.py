#!/usr/bin/env python3
"""Crash drill for cacval's checkpoint/resume path.

Runs the real binary against a real kernel and abuses it the way an
operator's machine would:

  1. baseline     — uninterrupted run, record the verdict line
  2. deadline     — tiny --deadline budget must stop gracefully, write a
                    checkpoint, and name the precise limit; --resume must
                    then reproduce the baseline verdict exactly
  3. sigint       — SIGINT mid-run must drain, checkpoint, exit 130;
                    --resume reproduces the baseline verdict
  4. sigkill      — SIGKILL mid-run (no chance to clean up); whatever
                    checkpoint the periodic writer left behind must load
                    and resume to the baseline verdict (atomic
                    write-then-rename means the file is never partial)
  5. corruption   — a damaged checkpoint must be rejected with exit 2
                    and a structured "checkpoint:" diagnostic, never a
                    crash or a wrong verdict

Usage: checkpoint_crash_drill.py CACVAL PTX_FILE
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

KERNEL_ARGS = [
    "--grid", "4", "--block", "2", "--warp", "1",
    "--global", "64", "--param", "out=0",
]


def run(cacval, ptx, extra, timeout=300):
    proc = subprocess.run(
        [cacval, "check", ptx] + KERNEL_ARGS + extra,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, timeout=timeout)
    return proc.returncode, proc.stdout


def verdict_line(output):
    for line in output.splitlines():
        if line.startswith(("proved", "refuted", "unknown", "fault")):
            return line
    return None


def fail(msg, output=""):
    print("DRILL FAIL:", msg)
    if output:
        print("--- output ---")
        print(output)
    sys.exit(1)


def kill_mid_run(cacval, ptx, extra, signo, delay):
    """Start a run, deliver `signo` after `delay` seconds.

    Returns (returncode, stdout, delivered) — delivered is False when
    the run finished before the signal could land (machine too fast);
    callers must tolerate that instead of flaking.
    """
    proc = subprocess.Popen(
        [cacval, "check", ptx] + KERNEL_ARGS + extra,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    time.sleep(delay)
    delivered = proc.poll() is None
    if delivered:
        proc.send_signal(signo)
    out, _ = proc.communicate(timeout=300)
    return proc.returncode, out, delivered


def main():
    if len(sys.argv) != 3:
        fail("usage: checkpoint_crash_drill.py CACVAL PTX_FILE")
    cacval, ptx = sys.argv[1], sys.argv[2]
    workdir = tempfile.mkdtemp(prefix="cac_drill_")
    ck = os.path.join(workdir, "drill.ckpt")

    # 1. baseline
    code, out = run(cacval, ptx, [])
    baseline = verdict_line(out)
    if baseline is None:
        fail("baseline run produced no verdict", out)
    print("baseline:", baseline)

    # 2. deadline budget → graceful stop + checkpoint + precise reason
    code, out = run(cacval, ptx, ["--deadline", "30", "--checkpoint", ck])
    if "limit tripped: deadline" not in out:
        fail("deadline budget did not report 'limit tripped: deadline'", out)
    if "checkpoint written" not in out or not os.path.exists(ck):
        fail("deadline stop did not write a checkpoint", out)
    code, out = run(cacval, ptx, ["--resume", ck])
    if verdict_line(out) != baseline:
        fail("resume after deadline stop diverged from baseline", out)
    print("deadline: stopped, checkpointed, resumed to identical verdict")
    os.remove(ck)

    # 3. SIGINT → drain, checkpoint, exit 130, resume identical
    for attempt in range(5):
        code, out, delivered = kill_mid_run(
            cacval, ptx, ["--checkpoint", ck], signal.SIGINT,
            0.2 + 0.2 * attempt)
        if delivered:
            break
    if delivered:
        if code != 130:
            fail("SIGINT exit status %d, want 130" % code, out)
        if not os.path.exists(ck):
            fail("SIGINT did not leave a checkpoint", out)
        code, out = run(cacval, ptx, ["--resume", ck])
        if verdict_line(out) != baseline:
            fail("resume after SIGINT diverged from baseline", out)
        print("sigint: exit 130, checkpointed, resumed to identical verdict")
        os.remove(ck)
    else:
        print("sigint: run finished before signal landed; skipped")

    # 4. SIGKILL mid-run — only the periodic checkpointer has run; the
    # newest complete checkpoint must resume to the baseline verdict.
    resumed = False
    for attempt in range(6):
        if os.path.exists(ck):
            os.remove(ck)
        code, out, delivered = kill_mid_run(
            cacval, ptx,
            ["--checkpoint", ck, "--checkpoint-every", "4000"],
            signal.SIGKILL, 0.3 + 0.15 * attempt)
        if not delivered:
            print("sigkill: run finished before kill; retrying")
            continue
        if code != -signal.SIGKILL:
            fail("SIGKILL run exited %d, want -9" % code, out)
        if not os.path.exists(ck):
            # Killed before the first periodic checkpoint; a fresh run
            # from scratch is the correct (and only) recovery.
            print("sigkill: killed before first checkpoint; retrying later")
            continue
        code, out = run(cacval, ptx, ["--resume", ck])
        if verdict_line(out) != baseline:
            fail("resume after SIGKILL diverged from baseline", out)
        print("sigkill: resumed from periodic checkpoint to identical verdict")
        resumed = True
        break
    if not resumed:
        print("sigkill: no kill landed after a checkpoint; phase skipped")

    # 5. corruption — a damaged file is a structured exit-2 diagnostic
    code, out = run(cacval, ptx, ["--deadline", "30", "--checkpoint", ck])
    if not os.path.exists(ck):
        fail("could not produce a checkpoint for the corruption phase", out)
    with open(ck, "rb") as f:
        blob = f.read()
    for label, bad in [
        ("truncated", blob[: len(blob) // 2]),
        ("bit-flipped", blob[:40] + bytes([blob[40] ^ 0x01]) + blob[41:]),
        ("version-skewed", blob[:8] + bytes([9]) + blob[9:]),
    ]:
        with open(ck, "wb") as f:
            f.write(bad)
        code, out = run(cacval, ptx, ["--resume", ck])
        if code != 2:
            fail("%s checkpoint: exit %d, want 2" % (label, code), out)
        if "checkpoint" not in out:
            fail("%s checkpoint: no structured diagnostic" % label, out)
    print("corruption: truncated/bit-flipped/version-skewed all "
          "rejected with exit 2")

    print("DRILL PASS")


if __name__ == "__main__":
    main()
