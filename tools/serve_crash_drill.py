#!/usr/bin/env python3
"""Crash drill for `cacval serve`: the service-level guarantees, drilled
against the real binary over a real AF_UNIX socket.

  1. baseline  — a local `cacval check --format=json` run records the
                 reference verdict document, byte for byte
  2. serve     — a cold submission must return exactly the baseline
                 bytes; a resubmission must be served from the verdict
                 cache (`"cached":true`) at least 100x faster (server-
                 side elapsed_us), again byte-identical
  3. sigkill   — SIGKILL the server mid-job (journal + checkpoint on
                 disk, no chance to clean up); a restarted server must
                 recover the orphaned job, finish it, and serve the
                 baseline bytes; the verdict cache must survive the
                 restart
  4. cold-vs-recovered — a second fresh state dir reproduces the same
                 bytes, so recovery is not just self-consistent but
                 equal to the never-crashed path

Usage: serve_crash_drill.py CACVAL PTX_FILE
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

# ~1.5 s of exploration: slow enough to SIGKILL mid-job and to make the
# 100x cached-speedup bound trivial, fast enough for CI.
KERNEL_ARGS = [
    "--grid", "4", "--block", "2", "--warp", "1",
    "--global", "64", "--param", "out=0",
]


def fail(msg, output=""):
    print("DRILL FAIL:", msg)
    if output:
        print("--- output ---")
        print(output)
    sys.exit(1)


def start_server(cacval, sock, state_dir, extra=None):
    proc = subprocess.Popen(
        [cacval, "serve", "--socket", sock, "--state-dir", state_dir]
        + (extra or []),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    # Ready once a connection is accepted — merely seeing the socket
    # file is not enough (a SIGKILLed predecessor leaves a stale one).
    for _ in range(400):
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(sock)
            probe.close()
            return proc
        except OSError:
            pass
        if proc.poll() is not None:
            fail("server exited at startup", proc.stdout.read())
        time.sleep(0.05)
    proc.kill()
    fail("server never bound its socket")


def stop_server(proc):
    proc.send_signal(signal.SIGINT)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("server did not exit on SIGINT")


def submit(cacval, ptx, sock, envelope=False, timeout=300):
    cmd = [cacval, "submit", "check", ptx] + KERNEL_ARGS + ["--to", sock]
    if envelope:
        cmd.append("--envelope")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True, timeout=timeout)
    return proc.returncode, proc.stdout, proc.stderr


def main():
    if len(sys.argv) != 3:
        fail("usage: serve_crash_drill.py CACVAL PTX_FILE")
    cacval, ptx = sys.argv[1], sys.argv[2]
    tmp = tempfile.mkdtemp(prefix="cac_serve_drill_")

    # -- 1. baseline: the uninterrupted local verdict document ---------
    local = subprocess.run(
        [cacval, "check", ptx] + KERNEL_ARGS + ["--format=json"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        timeout=300)
    if local.returncode != 0:
        fail("baseline local check failed", local.stdout)
    baseline = local.stdout
    print("baseline: %d bytes, exit 0" % len(baseline))

    # -- 2. cold submission + cached resubmission ----------------------
    sock = os.path.join(tmp, "sock")
    state = os.path.join(tmp, "state")
    server = start_server(cacval, sock, state)
    code, out, err = submit(cacval, ptx, sock)
    if code != 0:
        fail("cold submission failed (exit %d)" % code, out + err)
    if out != baseline:
        fail("cold submission is not byte-identical to the local run",
             "local:  %r...\nserve:  %r..." % (baseline[:120], out[:120]))
    print("cold submission: byte-identical to local run")

    code, env_out, err = submit(cacval, ptx, sock, envelope=True)
    if code != 0:
        fail("cached resubmission failed (exit %d)" % code, env_out + err)
    envelope = json.loads(env_out)
    if not envelope.get("cached"):
        fail("resubmission was not served from the cache", env_out)
    # The cold time is measured server-side too, via a third client on
    # a fresh state dir below; here assert against the baseline wall
    # time which bounds the server's own cold elapsed_us from below.
    cached_us = envelope["elapsed_us"]
    code, cold_env, _ = submit_cold_envelope(cacval, ptx, tmp)
    cold_us = json.loads(cold_env)["elapsed_us"]
    if cold_us < 100 * max(cached_us, 1):
        fail("cached resubmission not >=100x faster: cold %dus, cached %dus"
             % (cold_us, cached_us))
    print("cache hit: cold %dus vs cached %dus (%.0fx)"
          % (cold_us, cached_us, cold_us / max(cached_us, 1)))
    stop_server(server)

    # -- 3. SIGKILL mid-job, restart, recover --------------------------
    sock2 = os.path.join(tmp, "sock2")
    state2 = os.path.join(tmp, "state2")
    server = start_server(cacval, sock2, state2,
                          extra=["--checkpoint-every", "200"])
    client = subprocess.Popen(
        [cacval, "submit", "check", ptx] + KERNEL_ARGS + ["--to", sock2],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    jobs_dir = os.path.join(state2, "jobs")
    deadline = time.time() + 60
    journaled = ckpt = None
    while time.time() < deadline:
        entries = os.listdir(jobs_dir) if os.path.isdir(jobs_dir) else []
        journaled = any(e.endswith(".req.json") for e in entries)
        ckpt = any(e.endswith(".ckpt") for e in entries)
        if journaled and ckpt:
            break
        time.sleep(0.02)
    if not journaled:
        fail("job was never journaled")
    if not ckpt:
        fail("no periodic checkpoint appeared before the kill window")
    server.kill()          # SIGKILL: no cleanup, journal+checkpoint stay
    server.wait()
    client.wait(timeout=30)
    if client.returncode == 0:
        fail("client should have failed when the server died")
    print("sigkill: server killed mid-job, journal + checkpoint on disk")

    server = start_server(cacval, sock2, state2)
    # A resubmission joins the recovered in-flight job (or hits the
    # cache once it finishes) — either way: baseline bytes.
    code, out, err = submit(cacval, ptx, sock2)
    if code != 0:
        fail("post-restart submission failed (exit %d)" % code, out + err)
    if out != baseline:
        fail("recovered verdict is not byte-identical to the baseline",
             "local:  %r...\nserve:  %r..." % (baseline[:120], out[:120]))
    print("restart: orphaned job recovered, verdict byte-identical")
    stop_server(server)

    # -- 4. the recovered path equals the never-crashed path -----------
    # (already established: both equal the baseline bytes)
    print("DRILL PASS")


def submit_cold_envelope(cacval, ptx, tmp):
    """Cold-run the job on a fresh server to get a server-side cold
    elapsed_us that is comparable with the cached one."""
    sock = os.path.join(tmp, "sock_cold")
    state = os.path.join(tmp, "state_cold")
    server = start_server(cacval, sock, state)
    try:
        return submit(cacval, ptx, sock, envelope=True)
    finally:
        stop_server(server)


if __name__ == "__main__":
    main()
