#!/bin/sh
# Regenerate the committed JSON goldens in tests/front/golden/ after an
# intentional schema change.  The test binary itself writes the files
# (CAC_UPDATE_GOLDENS), so the goldens are by construction what the
# GoldenJson suite compares against.
#
# Usage: tools/regen_front_goldens.sh [build-dir]   (default: build)
set -eu
build="${1:-build}"
bin="$build/tests/test_front"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (cmake --build $build --target test_front)" >&2
  exit 2
fi
mkdir -p "$(dirname "$0")/../tests/front/golden"
CAC_UPDATE_GOLDENS=1 "$bin" --gtest_filter='GoldenJson.*'
echo "goldens regenerated under tests/front/golden/ — review the diff"
