#!/usr/bin/env python3
"""Run a google-benchmark binary and snapshot its results as JSON.

Stdlib only.  Default invocation (from the repo root, after building):

    python3 tools/bench_to_json.py \
        --binary build/bench/bench_parallel_explore \
        --binary build/bench/bench_checkpoint \
        --out BENCH_explore.json

`--binary` may be repeated; results from all binaries are merged into
one snapshot (each record keeps a `binary` field naming its source).

The snapshot keeps the benchmark context (host, CPU count, build
flags), the per-benchmark timings and counters, and the git revision,
so successive PRs accumulate a comparable perf trajectory in-repo.
Derived convenience fields: for every BM_ExploreVectorSum instance the
speedup over the matching serial (threads=0) instance with the same
por/warps arguments is computed into `speedup_vs_serial`; every
BM_StateStoreFootprint instance's interning counters are summarized
into a top-level `state_store` section, every BM_Checkpoint* /
BM_ResumeFromCheckpoint instance's counters land in a `checkpoint`
section, every BM_DistExplore instance (from bench_dist_explore) lands
in a `distributed` section with per-worker ownership, frontier message
volume, shard-balance skew, and speedup over the matching workers=0
serial baseline, every BM_AnalysisOracle* instance (bench_analysis)
lands in an `analysis` section recording the POR state count with and
without the static independence oracle and the resulting reduction,
every BM_BigStore* / BM_BigExplore* / BM_StoreBudgetSweep instance
(bench_bigstore) lands in a `store_tiers` section recording the
resident-vs-spilled byte split, eviction/spill/rematerialization
counts, delta-fragment count, and bloom pre-check hit rate of the
tiered state store under a resident budget,
every BM_PerfLint* instance (bench_perf_lint) lands in a `perf_lint`
section recording static perf-pass throughput on the clean corpus vs
an all-offender kernel,
every BM_Equiv* / BM_NormalizeRandomTerms instance (bench_equiv) lands
in an `equiv` section recording normalizer throughput, the proof-time
curve over the unroll factor, refutation latency including concrete
replay, and the cold/cached equiv round-trip ratio through serve,
and the benchmark processes' peak RSS is recorded as
`peak_rss_bytes`.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

try:
    import resource
except ImportError:  # non-POSIX: peak RSS is simply omitted
    resource = None


def git_revision(repo: Path) -> str:
    try:
        return subprocess.run(
            ["git", "-C", str(repo), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_benchmark(binary: Path, extra_args: list[str]) -> tuple[dict, int]:
    """Run the binary; return (parsed JSON doc, peak RSS in bytes or 0)."""
    cmd = [str(binary), "--benchmark_format=json", *extra_args]
    rss_before = 0
    if resource is not None:
        rss_before = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark failed with exit code {proc.returncode}")
    peak_rss = 0
    if resource is not None:
        # ru_maxrss is a high-water mark over all children; it is exact
        # when this benchmark child outgrew every earlier one (the
        # normal single-child case), else a conservative upper bound.
        peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        peak_rss = max(peak, rss_before) * 1024  # ru_maxrss is in KiB on Linux
    # The binary may print a human banner before the JSON document.
    out = proc.stdout
    start = out.find("{")
    if start < 0:
        raise SystemExit("no JSON found in benchmark output")
    return json.loads(out[start:]), peak_rss


def add_speedups(benchmarks: list[dict]) -> None:
    """Annotate parallel explore runs with speedup over matching serial."""
    serial = {}
    for b in benchmarks:
        if b.get("threads") == 0 and "real_time" in b:
            serial[(b.get("por"), b.get("warps"))] = b["real_time"]
    for b in benchmarks:
        base = serial.get((b.get("por"), b.get("warps")))
        if base and b.get("threads", 0) > 0 and b.get("real_time"):
            b["speedup_vs_serial"] = round(base / b["real_time"], 3)


def store_summary(benchmarks: list[dict]) -> list[dict]:
    """Summarize BM_StateStoreFootprint instances: the interned store's
    resident bytes per visited state vs full per-state machine copies."""
    out = []
    for b in benchmarks:
        if not b.get("name", "").startswith("BM_StateStoreFootprint"):
            continue
        entry = {"name": b["name"]}
        for k in ("threads", "states", "warp_fragments", "bank_fragments",
                  "resident_bytes_per_state", "machine_bytes_per_state",
                  "dedup_ratio"):
            if k in b:
                entry[k] = b[k]
        out.append(entry)
    return out


def checkpoint_summary(benchmarks: list[dict]) -> list[dict]:
    """Summarize checkpoint benchmarks: periodic-write overhead, file
    round-trip rate and size, and resume-vs-rerun throughput."""
    out = []
    for b in benchmarks:
        name = b.get("name", "")
        if not name.startswith(("BM_Checkpoint", "BM_ResumeFromCheckpoint")):
            continue
        entry = {"name": name}
        for k in ("checkpoint_every", "states", "states_per_sec",
                  "file_bytes", "checkpoint_states", "round_trips_per_sec",
                  "resumed_runs_per_sec", "real_time", "time_unit"):
            if k in b:
                entry[k] = b[k]
        out.append(entry)
    return out


def distributed_summary(benchmarks: list[dict]) -> list[dict]:
    """Summarize BM_DistExplore instances: worker count, per-worker
    states owned, frontier message volume, shard-balance skew, and the
    speedup over the matching serial (workers=0) instance with the same
    por argument (on one core this is the distribution overhead)."""
    serial = {}
    for b in benchmarks:
        if (b.get("name", "").startswith("BM_DistExplore")
                and b.get("workers") == 0 and b.get("real_time")):
            serial[b.get("por")] = b["real_time"]
    out = []
    for b in benchmarks:
        if not b.get("name", "").startswith("BM_DistExplore"):
            continue
        entry = {"name": b["name"]}
        for k in ("workers", "por", "states", "states_per_sec",
                  "frontier_msgs", "shard_skew", "real_time", "time_unit"):
            if k in b:
                entry[k] = b[k]
        owned = {k: v for k, v in b.items() if k.startswith("owned_w")}
        if owned:
            entry["states_owned"] = [
                owned[k] for k in sorted(owned, key=lambda s: int(s[7:]))]
        base = serial.get(b.get("por"))
        if base and b.get("workers", 0) > 0 and b.get("real_time"):
            entry["speedup_vs_serial"] = round(base / b["real_time"], 3)
        out.append(entry)
    return out


def analysis_summary(benchmarks: list[dict]) -> list[dict]:
    """Summarize BM_AnalysisOracle* instances: explored states under
    plain POR (oracle=0) vs POR plus the static independence oracle
    (oracle=1), with the per-kernel state reduction and speedup."""
    base = {}
    for b in benchmarks:
        name = b.get("name", "")
        if name.startswith("BM_AnalysisOracle") and b.get("oracle") == 0:
            base[name.split("/")[0]] = b
    out = []
    for b in benchmarks:
        name = b.get("name", "")
        if not name.startswith("BM_AnalysisOracle"):
            continue
        entry = {"name": name, "kernel": name.split("/")[0]
                 .removeprefix("BM_AnalysisOracle").lower()}
        for k in ("oracle", "independent_pcs", "states", "states_per_sec",
                  "real_time", "time_unit"):
            if k in b:
                entry[k] = b[k]
        ref = base.get(name.split("/")[0])
        if ref and b.get("oracle") == 1:
            if ref.get("states"):
                entry["state_reduction_pct"] = round(
                    100.0 * (1.0 - b["states"] / ref["states"]), 2)
            if ref.get("real_time") and b.get("real_time"):
                entry["speedup_vs_por"] = round(
                    ref["real_time"] / b["real_time"], 3)
        out.append(entry)
    return out


def perf_lint_summary(benchmarks: list[dict]) -> list[dict]:
    """Summarize BM_PerfLint* instances (bench_perf_lint): kernels
    priced per second by the static performance passes, split into the
    clean-corpus common case and the all-offender kernel, with the
    per-run finding counts re-asserted by the bench itself."""
    out = []
    for b in benchmarks:
        name = b.get("name", "")
        if not name.startswith("BM_PerfLint"):
            continue
        entry = {"name": name}
        for k in ("kernels", "findings", "kernels_per_sec",
                  "real_time", "time_unit"):
            if k in b:
                entry[k] = b[k]
        out.append(entry)
    return out


def store_tiers_summary(benchmarks: list[dict]) -> list[dict]:
    """Summarize tiered-store benchmarks (bench_bigstore): how the
    resident budget splits bytes across the hot/warm tier and the
    spill segment, what eviction and delta encoding cost, and how the
    budgeted footprint compares per state.  For BM_StoreBudgetSweep
    instances the residency improvement over the same workload's
    unbudgeted (budget_pct=100) instance is derived."""
    unbounded = {}
    for b in benchmarks:
        if (b.get("name", "").startswith("BM_StoreBudgetSweep")
                and b.get("budget_pct") == 100):
            unbounded[b.get("workload")] = b
    out = []
    for b in benchmarks:
        name = b.get("name", "")
        if not name.startswith(("BM_BigStore", "BM_BigExplore",
                                "BM_StoreBudgetSweep")):
            continue
        entry = {"name": name}
        if b.get("label"):
            entry["workload_name"] = b["label"]
        for k in ("workload", "budget_pct", "budget_bytes", "states",
                  "resident_bytes", "spilled_bytes",
                  "resident_bytes_per_state", "hot_evictions", "spills",
                  "rematerializations", "delta_fragments",
                  "bloom_hit_rate", "dedup_ratio", "rss_bytes",
                  "items_per_second", "real_time", "time_unit"):
            if k in b:
                entry[k] = b[k]
        ref = unbounded.get(b.get("workload"))
        if (ref and ref is not b and b.get("resident_bytes_per_state")
                and ref.get("resident_bytes_per_state")):
            entry["residency_improvement"] = round(
                ref["resident_bytes_per_state"]
                / b["resident_bytes_per_state"], 3)
        out.append(entry)
    return out


def serve_summary(benchmarks: list[dict]) -> list[dict]:
    """Summarize BM_Serve* instances (bench_serve): cold round-trip
    latency vs cached replay, the derived cache speedup, and sustained
    requests/sec at each concurrent-client count."""
    cold = cached = None
    for b in benchmarks:
        name = b.get("name", "")
        if name.startswith("BM_ServeColdSubmission"):
            cold = b
        elif name.startswith("BM_ServeCachedSubmission"):
            cached = b
    out = []
    for b in benchmarks:
        name = b.get("name", "")
        if not name.startswith("BM_Serve"):
            continue
        entry = {"name": name}
        for k in ("clients", "jobs_run", "items_per_second", "real_time",
                  "time_unit", "shed_requests", "reaped_clients"):
            if k in b:
                entry[k] = b[k]
        if (b is cached and cold and cold.get("real_time")
                and b.get("real_time")):
            entry["cache_speedup"] = round(
                cold["real_time"] / b["real_time"], 1)
        out.append(entry)
    return out


def equiv_summary(benchmarks: list[dict]) -> list[dict]:
    """Summarize bench_equiv: BM_NormalizeRandomTerms throughput,
    BM_EquivProveUnroll proof times per unroll factor, the refutation
    round trip, and the serve cold/cached equiv ratio (derived as
    `cache_speedup` on the cached instance)."""
    cold = cached = None
    for b in benchmarks:
        name = b.get("name", "")
        if name.startswith("BM_EquivServeCold"):
            cold = b
        elif name.startswith("BM_EquivServeCachedResubmit"):
            cached = b
    out = []
    for b in benchmarks:
        name = b.get("name", "")
        if not name.startswith(("BM_Equiv", "BM_NormalizeRandomTerms")):
            continue
        entry = {"name": name}
        for k in ("unroll", "rewrites", "obligations", "cex_trials",
                  "rewrites_per_batch", "jobs_run", "items_per_second",
                  "real_time", "time_unit"):
            if k in b:
                entry[k] = b[k]
        if (b is cached and cold and cold.get("real_time")
                and b.get("real_time")):
            # Units differ (ms vs us); normalize through time_unit.
            scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
            ct = cold["real_time"] * scale.get(cold.get("time_unit"), 1e-3)
            wt = b["real_time"] * scale.get(b.get("time_unit"), 1e-6)
            entry["cache_speedup"] = round(ct / max(wt, 1e-12), 1)
        out.append(entry)
    return out


def fault_summary(benchmarks: list[dict]) -> list[dict]:
    """Summarize the fault-injection seam guards (bench_serve): the
    disabled fast path (must stay ~1ns — the zero-overhead-when-
    disabled contract) and the armed-but-missing slow path, plus the
    fleet-level armed-seam run from bench_dist_explore."""
    out = []
    disabled = None
    for b in benchmarks:
        name = b.get("name", "")
        if not (name.startswith("BM_FaultSeam")
                or name.startswith("BM_DistExploreSeamArmed")):
            continue
        entry = {"name": name}
        for k in ("real_time", "time_unit", "items_per_second",
                  "states_per_sec"):
            if k in b:
                entry[k] = b[k]
        if name.startswith("BM_FaultSeamDisabled"):
            disabled = entry
        out.append(entry)
    for entry in out:
        if (entry["name"].startswith("BM_FaultSeamArmedMiss") and disabled
                and disabled.get("real_time") and entry.get("real_time")):
            entry["armed_overhead"] = round(
                entry["real_time"] / max(disabled["real_time"], 1e-9), 1)
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", action="append", default=None,
                    help="benchmark binary to run (repeatable; results "
                         "are merged)")
    ap.add_argument("--out", default="BENCH_explore.json",
                    help="output snapshot path")
    ap.add_argument("--filter", default=None,
                    help="optional --benchmark_filter regex")
    ap.add_argument("bench_args", nargs="*",
                    help="extra args passed to the binary verbatim")
    args = ap.parse_args()
    binaries = args.binary or ["build/bench/bench_parallel_explore"]

    extra = list(args.bench_args)
    if args.filter:
        extra.append(f"--benchmark_filter={args.filter}")

    repo = Path(__file__).resolve().parent.parent
    benchmarks = []
    context = {}
    peak_rss = 0
    for binary_arg in binaries:
        binary = Path(binary_arg)
        if not binary.exists():
            raise SystemExit(
                f"{binary}: not found — build first (cmake --build build)")
        doc, rss = run_benchmark(binary, extra)
        peak_rss = max(peak_rss, rss)
        context = context or doc.get("context", {})
        for b in doc.get("benchmarks", []):
            keep = {k: b[k] for k in
                    ("name", "run_name", "iterations", "real_time",
                     "cpu_time", "time_unit", "bytes_per_second",
                     "items_per_second", "label")
                    if k in b}
            # Counters appear as top-level numeric fields.
            for k, v in b.items():
                if k not in keep and isinstance(v, (int, float)):
                    keep[k] = v
            keep["binary"] = binary.name
            benchmarks.append(keep)
    add_speedups(benchmarks)

    snapshot = {
        "schema": "cac-bench-snapshot/1",
        "binary": "+".join(Path(b).name for b in binaries),
        "git_revision": git_revision(repo),
        "context": context,
        "peak_rss_bytes": peak_rss,
        "benchmarks": benchmarks,
    }
    stores = store_summary(benchmarks)
    if stores:
        snapshot["state_store"] = stores
    checkpoints = checkpoint_summary(benchmarks)
    if checkpoints:
        snapshot["checkpoint"] = checkpoints
    distributed = distributed_summary(benchmarks)
    if distributed:
        snapshot["distributed"] = distributed
    analysis = analysis_summary(benchmarks)
    if analysis:
        snapshot["analysis"] = analysis
    perf_lint = perf_lint_summary(benchmarks)
    if perf_lint:
        snapshot["perf_lint"] = perf_lint
    tiers = store_tiers_summary(benchmarks)
    if tiers:
        snapshot["store_tiers"] = tiers
    serve = serve_summary(benchmarks)
    if serve:
        snapshot["serve"] = serve
    equiv = equiv_summary(benchmarks)
    if equiv:
        snapshot["equiv"] = equiv
    fault = fault_summary(benchmarks)
    if fault:
        snapshot["fault"] = fault
    out = Path(args.out)
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {out} ({len(benchmarks)} benchmarks, "
          f"rev {snapshot['git_revision']})")


if __name__ == "__main__":
    main()
