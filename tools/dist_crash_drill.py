#!/usr/bin/env python3
"""Fault drill for the distributed exploration engine.

Runs the real cacval binary with --dist-workers and abuses the fleet
the way a cluster would:

  1. baseline     — uninterrupted serial run, record the verdict line
  2. equivalence  — --dist-workers 1/2/4 must each reproduce the
                    baseline verdict byte for byte, with zero restarts
  3. worker kill  — the --dist-test-die seam SIGKILLs one worker
                    mid-run (a genuine SIGKILL from inside the worker:
                    no unwinding, no flushing); the coordinator must
                    relaunch the fleet and still print the baseline
                    verdict, reporting at least one restart
  4. kill+ckpt    — same, with periodic checkpoint generations enabled:
                    recovery resumes from the last committed generation
  5. manifest resume — a budget-stopped distributed run writes a
                    manifest; --resume with the same worker count must
                    reproduce the baseline verdict
  6. manifest corruption — a damaged manifest must be rejected with
                    exit 2 and a structured diagnostic, never a crash

Usage: dist_crash_drill.py CACVAL PTX_FILE
"""

import os
import re
import subprocess
import sys
import tempfile

KERNEL_ARGS = [
    "--grid", "3", "--block", "2", "--warp", "1",
    "--global", "64", "--param", "out=0",
]


def run(cacval, ptx, extra, timeout=300):
    proc = subprocess.run(
        [cacval, "check", ptx] + KERNEL_ARGS + extra,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, timeout=timeout)
    return proc.returncode, proc.stdout


def verdict_line(output):
    for line in output.splitlines():
        if line.startswith(("proved", "refuted", "unknown", "fault")):
            return line
    return None


def restarts(output):
    m = re.search(r"(\d+) restarts", output)
    return int(m.group(1)) if m else None


def fail(msg, output=""):
    print("DRILL FAIL:", msg)
    if output:
        print("--- output ---")
        print(output)
    sys.exit(1)


def cleanup(base):
    d = os.path.dirname(base)
    name = os.path.basename(base)
    for f in os.listdir(d):
        if f.startswith(name):
            os.remove(os.path.join(d, f))


def main():
    if len(sys.argv) != 3:
        fail("usage: dist_crash_drill.py CACVAL PTX_FILE")
    cacval, ptx = sys.argv[1], sys.argv[2]
    workdir = tempfile.mkdtemp(prefix="cac_dist_drill_")
    ck = os.path.join(workdir, "drill.manifest")

    # 1. baseline — the serial engine's verdict is the ground truth.
    code, out = run(cacval, ptx, [])
    baseline = verdict_line(out)
    if baseline is None:
        fail("baseline run produced no verdict", out)
    print("baseline:", baseline)

    # 2. distributed equivalence at 1/2/4 workers.
    for n in ("1", "2", "4"):
        code, out = run(cacval, ptx, ["--dist-workers", n])
        if verdict_line(out) != baseline:
            fail("--dist-workers %s diverged from baseline" % n, out)
        if restarts(out) != 0:
            fail("--dist-workers %s reported unexpected restarts" % n, out)
    print("equivalence: dist verdicts identical at 1/2/4 workers")

    # 3. SIGKILL one worker mid-run; the fleet must recover and the
    # verdict must not change.
    code, out = run(cacval, ptx,
                    ["--dist-workers", "2", "--dist-test-die", "1=40"])
    if verdict_line(out) != baseline:
        fail("verdict diverged after worker SIGKILL", out)
    r = restarts(out)
    if r is None or r < 1:
        fail("worker SIGKILL did not surface as a fleet restart", out)
    print("worker kill: recovered after %d restart(s), verdict identical"
          % r)

    # 4. SIGKILL with checkpoint generations: recovery goes through the
    # last committed generation instead of a from-scratch restart.
    code, out = run(cacval, ptx,
                    ["--dist-workers", "2", "--dist-test-die", "0=60",
                     "--checkpoint", ck, "--checkpoint-every", "30"])
    if verdict_line(out) != baseline:
        fail("verdict diverged after kill with checkpoints", out)
    if restarts(out) is None or restarts(out) < 1:
        fail("kill with checkpoints did not report a restart", out)
    print("worker kill + checkpoints: recovered, verdict identical")
    cleanup(ck)

    # 5. budget-stopped distributed run → manifest; resume reproduces
    # the baseline.
    code, out = run(cacval, ptx,
                    ["--dist-workers", "2", "--deadline", "30",
                     "--checkpoint", ck, "--checkpoint-every", "25"])
    if not os.path.exists(ck):
        # The run may have finished inside the deadline on a fast
        # machine — it still wrote its final generation then.
        fail("distributed run left no manifest", out)
    code, out = run(cacval, ptx, ["--dist-workers", "2", "--resume", ck])
    if verdict_line(out) != baseline:
        fail("distributed resume diverged from baseline", out)
    print("manifest resume: verdict identical")

    # 6. manifest corruption → structured exit-2 rejection.
    with open(ck, "rb") as f:
        blob = f.read()
    for label, bad in [
        ("truncated", blob[: len(blob) // 2]),
        ("bit-flipped", blob[:12] + bytes([blob[12] ^ 0x01]) + blob[13:]),
        ("type-skewed", blob[:5] + bytes([1]) + blob[6:]),
    ]:
        with open(ck, "wb") as f:
            f.write(bad)
        code, out = run(cacval, ptx,
                        ["--dist-workers", "2", "--resume", ck])
        if code != 2:
            fail("%s manifest: exit %d, want 2" % (label, code), out)
        if "checkpoint" not in out and "dist" not in out:
            fail("%s manifest: no structured diagnostic" % label, out)
    print("corruption: truncated/bit-flipped/type-skewed manifests all "
          "rejected with exit 2")

    print("DRILL PASS")


if __name__ == "__main__":
    main()
