// cacval — thin command-line shim over the front library (src/front).
//
// Every verification path — lint, check, validate, equiv — builds a
// front::Request, calls front::run, and prints either the classic text
// (front::render_text, byte-compatible with the old monolith) or the
// unified JSON schema (front::to_json).  The shim owns only what a CLI
// must own: argv parsing, signal handling, files, and process exit.
//
//   cacval dump   FILE.ptx [--kernel K] [--no-sync-insertion]
//   cacval emit   FILE.ptx [--kernel K]
//   cacval lint   FILE.ptx [--kernel K] [--format=json] [--no-races]
//                 [--perf] (adds the static performance passes —
//                  uncoalesced-global / shared-bank-conflict /
//                  divergent-region — as exit-code-neutral warnings)
//   cacval run    FILE.ptx [launch options] [--profile]
//   cacval check  FILE.ptx [launch options] [--expect ADDR=U32]...
//                 [--independent] [--exact-steps N] [--por] [--por-oracle]
//                 [--threads N] [--format=json]
//                 [--checkpoint PATH] [--checkpoint-every N]
//                 [--resume PATH] [--deadline MS] [--mem-limit MIB]
//   cacval validate FILE.ptx [same flags as check] [--profile]
//   cacval races  FILE.ptx [launch options]
//   cacval dist-worker FILE.ptx [launch options] --dist-connect HOST:PORT
//   cacval equiv  FILE_A.ptx FILE_B.ptx [--kernel K] [--kernel-b K2]
//                 [--block ...] [--sym-steps N] [--sym-paths N]
//                 [--mode normalized|lowering] [--no-normalize]
//                 [--no-cex] [--cex-inputs N] [--format=json]
//   cacval equiv  --batch PAIRS.txt [shared flags as above]
//                 (each line: FILE_A FILE_B [KERNEL [KERNEL_B]];
//                  '#' comments; one Result per pair, worst exit code)
//
// Verification as a service (docs/serve.md):
//   cacval serve  --socket PATH | --tcp HOST:PORT
//                 [--state-dir DIR] [--serve-workers N] [--queue-limit N]
//                 [--job-deadline MS] [--job-mem-limit MIB]
//                 [--cache-entries N] [--cache-bytes MIB]
//                 [--checkpoint-every N] [--verbose]
//   cacval submit <check|validate|lint|equiv> FILE [FILE_B]
//                 --to ENDPOINT [the same flags as the local command]
//                 [--progress N] [--timeout MS] [--retries N]
//   cacval submit <ping|stats|shutdown> --to ENDPOINT [--timeout MS]
//
// Submission hardening (docs/robustness.md): --timeout (default 30000,
// 0 = wait forever) bounds server inactivity per frame; --retries
// (default 3) bounds reconnect-and-resubmit cycles.  A shed request
// exits 4 (busy, retryable after the advertised backoff); an
// unreachable or mid-stream-dead server exits 5 (retryable —
// resubmitting re-attaches to the journaled job).
//
// Launch options:
//   --kernel K          kernel name (default: the first kernel)
//   --grid X[,Y[,Z]]    grid size (default 1)
//   --block X[,Y[,Z]]   block size (default 32)
//   --warp N            warp size (default 32)
//   --global BYTES      Global space size (default 4096)
//   --shared BYTES      Shared bank size per block (default 4096)
//   --param NAME=VAL    kernel argument (repeatable; VAL may be 0x..)
//   --init ADDR=U32     initialize a Global word (repeatable)
//   --sched S           first | rr | random:SEED   (default first)
//   --max-steps N       step/depth bound (default 1<<20)
//   --max-states N      distinct-state bound for check/validate
//   --threads N         parallel exploration workers (0 = serial)
//   --por-oracle        --por plus the static disjointness oracle
//
// Tiered state store (check/validate; docs/explorer.md):
//   --store-budget MIB / --spill-dir DIR / --bloom-bits N / --delta-depth N
//
// Distributed exploration (check/validate; docs/distributed.md):
//   --dist-workers N / --dist-listen H:P / --dist-verbose
//
// Exit status (docs/api.md, unified across every subcommand):
//   0 proved / clean / validated / equivalent,
//   1 violation / refutation / race / lint finding,
//   2 usage or input error (including corrupt checkpoints),
//   3 a limit tripped before a verdict (inconclusive),
//   4 the server shed the request (busy; retryable),
//   5 the server was unreachable within --timeout (retryable),
//   128+signo when stopped by SIGINT/SIGTERM (after writing a final
//   checkpoint if --checkpoint was given).
//
// Fault injection (docs/robustness.md): the CAC_FAULT_PLAN environment
// variable installs a deterministic fault plan (support/fault.h) into
// this process before anything else runs.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/profile.h"
#include "check/race.h"
#include "dist/coordinator.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "front/front.h"
#include "front/serve.h"
#include "ptx/emit.h"
#include "ptx/lower.h"
#include "sched/checkpoint.h"
#include "sched/explore.h"
#include "sched/scheduler.h"
#include "sem/launch.h"
#include "support/fault.h"

using namespace cac;

namespace {

struct Options {
  std::string command;
  std::string file;
  std::string file_b;   // equiv only
  std::string kernel;
  std::string kernel_b;
  /// The shared launch-configuration surface (sem/launch.h); the
  /// --grid/--block/--warp/--global/--shared/--param/--init flags land
  /// here via sem::parse_launch_args.
  sem::LaunchSpec launch;
  /// Single source of truth for every exploration limit: --max-steps
  /// is ExploreOptions.max_depth, --max-states is .max_states,
  /// --threads is .num_threads, --por is .partial_order_reduction.
  /// cmd_run/cmd_races reuse max_depth as their step bound.
  sched::ExploreOptions explore;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> expects;
  std::string sched = "first";
  std::uint64_t exact_steps = 0;
  std::string resume_path;
  /// Distributed exploration (dist/coordinator.h): 0 = in-process.
  std::uint32_t dist_workers = 0;
  std::string dist_listen;
  std::string dist_connect;  // dist-worker command only
  bool dist_verbose = false;
  /// Hidden crash-drill seam (--dist-test-die W=N): worker W SIGKILLs
  /// itself after owning N states.
  std::uint32_t dist_die_worker = dist::kNoWorker;
  std::uint64_t dist_die_after = 0;
  bool independent = false;
  bool profile = false;
  bool insert_syncs = true;
  bool por_oracle = false;
  /// Output format ("text" or "json") for lint/check/validate/equiv.
  std::string format = "text";
  bool lint_races = true;
  bool lint_perf = false;
  /// Symbolic bounds (equiv).
  sym::SymExecOptions sym;
  /// Equiv checker configuration (docs/equiv.md).
  std::string eq_mode = "normalized";
  bool eq_normalize = true;
  bool eq_cex = true;
  std::uint64_t cex_inputs = 256;
  /// Equiv batch mode: a pair-list file instead of two positional
  /// files.
  std::string batch;
  /// submit: server endpoint and progress-event cadence.
  std::string to;
  std::uint64_t progress = 0;
  /// submit: per-frame inactivity timeout (ms; 0 = wait forever) and
  /// reconnect-and-resubmit attempts.
  std::uint64_t timeout_ms = 30000;
  std::uint64_t retries = 3;

  Options() { explore.max_depth = 1u << 20; }
};

// SIGINT/SIGTERM request a graceful stop: the explorers poll the flag,
// drain, write a final checkpoint when one was requested, and cacval
// exits 128+signo.  Only async-signal-safe stores happen here.
std::atomic<bool> g_stop{false};
std::atomic<int> g_signo{0};

extern "C" void handle_stop_signal(int signo) {
  g_signo.store(signo, std::memory_order_relaxed);
  g_stop.store(true, std::memory_order_relaxed);
}

void install_signal_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

/// 128+signo if the run was interrupted, otherwise the verdict code.
int finish_exit_code(int verdict_code) {
  const int signo = g_signo.load(std::memory_order_relaxed);
  return signo != 0 ? 128 + signo : verdict_code;
}

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "cacval: %s\n(see the header of tools/cacval.cpp "
                       "for usage)\n", why);
  std::exit(front::kExitUsage);
}

std::uint64_t parse_u64(const std::string& s) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(s, &used, 0);
    if (used != s.size()) usage(("bad number: " + s).c_str());
    return v;
  } catch (const std::exception&) {
    usage(("bad number: " + s).c_str());
  }
}

std::pair<std::string, std::string> split_eq(const std::string& s) {
  const auto eq = s.find('=');
  if (eq == std::string::npos) usage("expected NAME=VALUE");
  return {s.substr(0, eq), s.substr(eq + 1)};
}

Options parse_args(int argc, char** argv) {
  if (argc < 3) usage("missing command or file");
  Options o;
  o.command = argv[1];
  o.file = argv[2];
  int first_flag = 3;
  if (o.command == "equiv") {
    if (o.file == "--batch") {
      // `cacval equiv --batch PAIRS.txt` — the pair list replaces the
      // two positional files.
      if (argc < 4) usage("--batch needs a pair-list file");
      o.batch = argv[3];
      o.file.clear();
      first_flag = 4;
    } else {
      if (argc < 4) usage("equiv needs two files (or --batch FILE)");
      o.file_b = argv[3];
      first_flag = 4;
    }
  }
  // Launch-configuration flags are parsed by the shared library
  // routine; everything it does not recognize comes back for the
  // tool-specific second pass.
  std::vector<std::string> args(argv + first_flag, argv + argc);
  std::vector<std::string> rest;
  try {
    rest = sem::parse_launch_args(args, o.launch);
  } catch (const sem::LaunchArgError& e) {
    usage(e.what());
  }
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto next = [&]() -> std::string {
      if (++i >= rest.size()) usage(("missing value for " + a).c_str());
      return rest[i];
    };
    if (a == "--kernel") o.kernel = next();
    else if (a == "--kernel-b") o.kernel_b = next();
    else if (a == "--expect") {
      const auto [k, v] = split_eq(next());
      o.expects.emplace_back(parse_u64(k),
                             static_cast<std::uint32_t>(parse_u64(v)));
    } else if (a == "--sched") o.sched = next();
    else if (a == "--max-steps") o.explore.max_depth = parse_u64(next());
    else if (a == "--max-states") o.explore.max_states = parse_u64(next());
    else if (a == "--threads") {
      o.explore.num_threads =
          static_cast<std::uint32_t>(parse_u64(next()));
    }
    else if (a == "--exact-steps") o.exact_steps = parse_u64(next());
    else if (a == "--checkpoint") o.explore.checkpoint_path = next();
    else if (a == "--checkpoint-every") {
      o.explore.checkpoint_every_states = parse_u64(next());
    }
    else if (a == "--resume") o.resume_path = next();
    else if (a == "--dist-workers") {
      o.dist_workers = static_cast<std::uint32_t>(parse_u64(next()));
    }
    else if (a == "--dist-listen") o.dist_listen = next();
    else if (a == "--dist-connect") o.dist_connect = next();
    else if (a == "--dist-verbose") o.dist_verbose = true;
    else if (a == "--dist-test-die") {
      const auto [w, n] = split_eq(next());
      o.dist_die_worker = static_cast<std::uint32_t>(parse_u64(w));
      o.dist_die_after = parse_u64(n);
    }
    else if (a == "--deadline") o.explore.deadline_ms = parse_u64(next());
    else if (a == "--mem-limit") {
      o.explore.mem_limit_bytes = parse_u64(next()) * (1ull << 20);
    }
    else if (a == "--store-budget") {
      o.explore.store_resident_budget_bytes =
          parse_u64(next()) * (1ull << 20);
    }
    else if (a == "--spill-dir") o.explore.store_spill_dir = next();
    else if (a == "--bloom-bits") o.explore.store_bloom_bits = parse_u64(next());
    else if (a == "--delta-depth") {
      o.explore.store_delta_depth =
          static_cast<std::uint32_t>(parse_u64(next()));
    }
    else if (a == "--independent") o.independent = true;
    else if (a == "--por") o.explore.partial_order_reduction = true;
    else if (a == "--por-oracle") o.por_oracle = true;
    else if (a == "--format") o.format = next();
    else if (a.rfind("--format=", 0) == 0) o.format = a.substr(9);
    else if (a == "--no-races") o.lint_races = false;
    else if (a == "--perf") o.lint_perf = true;
    else if (a == "--profile") o.profile = true;
    else if (a == "--no-sync-insertion") o.insert_syncs = false;
    else if (a == "--sym-steps") o.sym.max_steps = parse_u64(next());
    else if (a == "--sym-paths") o.sym.max_paths = parse_u64(next());
    else if (a == "--mode") o.eq_mode = next();
    else if (a == "--no-normalize") o.eq_normalize = false;
    else if (a == "--no-cex") o.eq_cex = false;
    else if (a == "--cex-inputs") o.cex_inputs = parse_u64(next());
    else if (a == "--batch") o.batch = next();
    else if (a == "--to") o.to = next();
    else if (a == "--progress") o.progress = parse_u64(next());
    else if (a == "--timeout") o.timeout_ms = parse_u64(next());
    else if (a == "--retries") o.retries = parse_u64(next());
    else usage(("unknown option " + a).c_str());
  }
  if (!o.explore.checkpoint_path.empty() &&
      o.explore.checkpoint_every_states == 0) {
    o.explore.checkpoint_every_states = 256;
  }
  if (o.format != "text" && o.format != "json") {
    usage("unknown --format (use text | json)");
  }
  return o;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage(("cannot open " + path).c_str());
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::unique_ptr<sched::Scheduler> make_scheduler(const std::string& name) {
  if (name == "first") return std::make_unique<sched::FirstChoiceScheduler>();
  if (name == "rr") return std::make_unique<sched::RoundRobinScheduler>();
  if (name.rfind("random:", 0) == 0) {
    return std::make_unique<sched::RandomScheduler>(
        parse_u64(name.substr(7)));
  }
  usage("unknown scheduler (use first | rr | random:SEED)");
}

const ptx::Program& pick_kernel(const ptx::LoweredModule& mod,
                                const Options& o) {
  if (mod.kernels.empty()) usage("module has no kernels");
  if (o.kernel.empty()) return mod.kernels.front();
  return mod.kernel(o.kernel);
}

sem::Launch make_launch(const ptx::Program& prg, const Options& o,
                        const ptx::LoweredModule& mod) {
  return o.launch.to_launch(prg, mod.shared_bytes);
}

// --- request builders (shared by the local commands and submit) ------

front::CheckRequest make_check_request(const Options& o, bool validate) {
  front::CheckRequest r;
  r.file = o.file;
  r.source = read_file(o.file);
  r.kernel = o.kernel;
  r.launch = o.launch;
  r.explore = o.explore;
  r.expects = o.expects;
  r.require_independence = o.independent;
  r.exact_steps = o.exact_steps;
  r.por_oracle = o.por_oracle;
  r.insert_syncs = o.insert_syncs;
  r.full_validate = validate;
  r.profile = o.profile;
  return r;
}

front::LintRequest make_lint_request(const Options& o) {
  front::LintRequest r;
  r.file = o.file;
  r.source = read_file(o.file);
  r.kernel = o.kernel;
  r.races = o.lint_races;
  r.insert_syncs = o.insert_syncs;
  r.perf = o.lint_perf;
  return r;
}

front::EquivRequest make_equiv_request(const Options& o) {
  front::EquivRequest r;
  r.file = o.file;
  r.source = read_file(o.file);
  r.file_b = o.file_b;
  r.source_b = read_file(o.file_b);
  r.kernel = o.kernel;
  r.kernel_b = o.kernel_b;
  r.launch = o.launch;
  r.insert_syncs = o.insert_syncs;
  r.sym = o.sym;
  r.mode = o.eq_mode;
  r.normalize = o.eq_normalize;
  r.counterexample = o.eq_cex;
  r.cex_inputs = o.cex_inputs;
  return r;
}

/// One line of an equiv --batch pair list.
struct BatchPair {
  std::string file_a, file_b, kernel, kernel_b;
};

std::vector<BatchPair> read_batch(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage(("cannot open " + path).c_str());
  std::vector<BatchPair> pairs;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::vector<std::string> tok;
    std::string t;
    while (ss >> t) {
      if (t[0] == '#') break;  // trailing comment
      tok.push_back(t);
    }
    if (tok.empty()) continue;
    if (tok.size() < 2 || tok.size() > 4) {
      usage(("batch line needs FILE_A FILE_B [KERNEL [KERNEL_B]]: " + line)
                .c_str());
    }
    BatchPair p;
    p.file_a = tok[0];
    p.file_b = tok[1];
    if (tok.size() > 2) p.kernel = tok[2];
    if (tok.size() > 3) p.kernel_b = tok[3];
    pairs.push_back(std::move(p));
  }
  return pairs;
}

/// The per-pair request: the batch line's files and kernels over the
/// command line's shared launch/sym/checker flags.
front::EquivRequest make_equiv_request_for(const Options& o,
                                           const BatchPair& p) {
  Options per = o;
  per.file = p.file_a;
  per.file_b = p.file_b;
  if (!p.kernel.empty()) per.kernel = p.kernel;
  if (!p.kernel_b.empty()) per.kernel_b = p.kernel_b;
  return make_equiv_request(per);
}

/// Print one request's results in the selected format and return the
/// unified exit code.
int emit_results(const Options& o, const std::vector<front::Result>& results) {
  if (o.format == "json") {
    std::printf("%s\n", front::to_json(results).c_str());
  } else {
    for (const front::Result& r : results) {
      std::printf("%s", front::render_text(r).c_str());
    }
  }
  return front::exit_code_of(results);
}

// --- local commands --------------------------------------------------

int cmd_dump(const Options& o, const ptx::LoweredModule& mod) {
  if (!o.kernel.empty()) {
    std::printf("%s", ptx::to_string(mod.kernel(o.kernel)).c_str());
    return 0;
  }
  for (const ptx::Program& k : mod.kernels) {
    std::printf("%s\n", ptx::to_string(k).c_str());
  }
  if (mod.shared_bytes) {
    std::printf("shared layout: %u bytes/block\n", mod.shared_bytes);
  }
  return 0;
}

int cmd_emit(const Options& o, const ptx::LoweredModule& mod) {
  std::printf("%s", ptx::emit_ptx(pick_kernel(mod, o)).c_str());
  return 0;
}

int cmd_lint(const Options& o) {
  return emit_results(o, front::run_lint(make_lint_request(o)));
}

int cmd_run(const Options& o, const ptx::LoweredModule& mod) {
  const ptx::Program& prg = pick_kernel(mod, o);
  sem::Launch launch = make_launch(prg, o, mod);
  sem::Machine m = launch.machine();
  auto sched = make_scheduler(o.sched);

  if (o.profile) {
    const check::Profile p =
        check::profile_run(prg, launch.config(), m, *sched,
                           o.explore.max_depth);
    std::printf("status: %s after %llu steps\n%s",
                to_string(p.run.status).c_str(),
                static_cast<unsigned long long>(p.run.steps),
                p.table().c_str());
    if (!p.run.message.empty()) std::printf("%s\n", p.run.message.c_str());
    return p.run.status == sched::RunResult::Status::Terminated ? 0 : 1;
  }

  const sched::RunResult r =
      sched::run(prg, launch.config(), m, *sched, o.explore.max_depth);
  std::printf("status: %s after %llu grid steps\n",
              to_string(r.status).c_str(),
              static_cast<unsigned long long>(r.steps));
  if (!r.message.empty()) std::printf("%s", r.message.c_str());
  if (!r.events.invalid_reads.empty() || !r.events.store_conflicts.empty()) {
    std::printf("diagnostics: %zu invalid reads, %zu lane conflicts\n",
                r.events.invalid_reads.size(),
                r.events.store_conflicts.size());
  }
  for (const auto& [addr, _] : o.expects) {
    std::printf("Global[%llu] = %llu\n",
                static_cast<unsigned long long>(addr),
                static_cast<unsigned long long>(
                    m.memory.load(mem::Space::Global, addr, 4)));
  }
  return r.terminated() ? 0 : 1;
}

/// Load the --resume checkpoint, or null.  CheckpointError propagates
/// to main's std::exception handler (exit 2) with the structured
/// "checkpoint: ..." message.  Distributed runs resume from the
/// coordinator manifest instead (see make_dist_explorer).
std::unique_ptr<sched::Checkpoint> load_resume(const Options& o) {
  if (o.resume_path.empty() || o.dist_workers != 0) return nullptr;
  return std::make_unique<sched::Checkpoint>(
      sched::Checkpoint::load(o.resume_path));
}

dist::DistOptions make_dist_options(const Options& o) {
  dist::DistOptions d;
  d.n_workers = o.dist_workers;
  d.listen = o.dist_listen;
  d.resume_manifest = o.resume_path;  // coordinator manifest, if any
  d.die_worker = o.dist_die_worker;
  d.die_after_states = o.dist_die_after;
  d.verbose = o.dist_verbose;
  return d;
}

void print_dist_stats(const dist::DistStats& s) {
  std::printf("distributed: %zu workers, %llu frontier msgs, "
              "skew %.2f, %llu restarts (%llu piecemeal), "
              "%llu checkpoint generations\n",
              s.workers.size(),
              static_cast<unsigned long long>(s.frontier_msgs), s.skew(),
              static_cast<unsigned long long>(s.restarts),
              static_cast<unsigned long long>(s.piecemeal_restarts),
              static_cast<unsigned long long>(s.generations));
  if (s.send_retries != 0 || s.connect_retries != 0) {
    std::printf("  transport: %llu send retries, %llu connect retries\n",
                static_cast<unsigned long long>(s.send_retries),
                static_cast<unsigned long long>(s.connect_retries));
  }
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const dist::DistStats::PerWorker& w = s.workers[i];
    std::printf("  worker %zu: %llu states owned, %llu frontier sent, "
                "%llu resolves, %llu B out, %llu B in\n",
                i, static_cast<unsigned long long>(w.owned),
                static_cast<unsigned long long>(w.frontier_sent),
                static_cast<unsigned long long>(w.resolves_sent),
                static_cast<unsigned long long>(w.bytes_sent),
                static_cast<unsigned long long>(w.bytes_received));
  }
}

/// Wrap the distributed coordinator as a ModelCheckOptions::explorer.
/// The stats land in *stats_out (printed after the verdict).
check::ModelCheckOptions::explorer_type make_dist_explorer(
    const Options& o, std::shared_ptr<dist::DistStats> stats_out) {
  const dist::DistOptions dopts = make_dist_options(o);
  return [dopts, stats_out](const ptx::Program& prg,
                            const sem::KernelConfig& kc,
                            const sem::Machine& initial,
                            const sched::ExploreOptions& eopts) {
    dist::DistResult r =
        dist::explore_distributed(prg, kc, initial, eopts, dopts);
    *stats_out = std::move(r.stats);
    return std::move(r.result);
  };
}

int cmd_check(const Options& o, bool validate) {
  const front::CheckRequest req = make_check_request(o, validate);
  front::RunHooks hooks;
  hooks.stop_flag = &g_stop;
  const auto resume = load_resume(o);
  hooks.resume = resume.get();
  auto dist_stats = std::make_shared<dist::DistStats>();
  if (o.dist_workers != 0) hooks.explorer = make_dist_explorer(o, dist_stats);
  if (o.format == "text") {
    // The classic output ordering: the oracle reports before
    // exploration begins.
    hooks.on_por_oracle = [](std::size_t pcs) {
      std::printf("por oracle: %zu access pcs proven independent\n", pcs);
    };
  }
  install_signal_handlers();
  const front::Result r = front::run_check(req, hooks);
  std::vector<front::Result> results;
  results.push_back(r);
  const int code = emit_results(o, results);
  if (o.dist_workers != 0 && o.format == "text") {
    print_dist_stats(*dist_stats);
  }
  return finish_exit_code(code);
}

int cmd_races(const Options& o, const ptx::LoweredModule& mod) {
  const ptx::Program& prg = pick_kernel(mod, o);
  sem::Launch launch = make_launch(prg, o, mod);
  sem::Machine m = launch.machine();
  auto sched = make_scheduler(o.sched);
  check::RaceOptions ropts;
  ropts.max_steps = o.explore.max_depth;
  const check::RaceReport r =
      check::detect_races(prg, launch.config(), m, *sched, ropts);
  std::printf("run: %s; %s\n", to_string(r.run.status).c_str(),
              r.summary().c_str());
  for (const auto& race : r.races) {
    std::printf("  %s %s[%llu] threads %u/%u%s\n",
                race.write_write ? "W-W" : "R-W",
                ptx::to_string(race.space).c_str(),
                static_cast<unsigned long long>(race.addr), race.tid_a,
                race.tid_b, race.cross_block ? " (cross-block)" : "");
  }
  return r.racy() ? 1 : 0;
}

int cmd_dist_worker(const Options& o, const ptx::LoweredModule& mod) {
  if (o.dist_connect.empty()) {
    usage("dist-worker needs --dist-connect HOST:PORT");
  }
  const ptx::Program& prg = pick_kernel(mod, o);
  const sem::KernelConfig kc = o.launch.to_config();
  dist::Fd fd = dist::tcp_connect(o.dist_connect);
  dist::run_worker(fd.get(), prg, kc);
  return 0;
}

int cmd_equiv(const Options& o) {
  std::vector<front::Result> results;
  if (!o.batch.empty()) {
    const std::vector<BatchPair> pairs = read_batch(o.batch);
    if (pairs.empty()) usage("batch file has no pairs");
    for (const BatchPair& p : pairs) {
      results.push_back(front::run_equiv(make_equiv_request_for(o, p)));
    }
  } else {
    results.push_back(front::run_equiv(make_equiv_request(o)));
  }
  return emit_results(o, results);
}

// --- verification as a service ---------------------------------------

int cmd_serve(int argc, char** argv) {
  front::ServeOptions so;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(("missing value for " + a).c_str());
      return argv[i];
    };
    if (a == "--socket") so.unix_path = next();
    else if (a == "--tcp") so.tcp = next();
    else if (a == "--state-dir") so.state_dir = next();
    else if (a == "--serve-workers" || a == "--workers") {
      so.workers = static_cast<std::uint32_t>(parse_u64(next()));
    }
    else if (a == "--queue-limit") so.queue_limit = parse_u64(next());
    else if (a == "--job-deadline") so.job_deadline_ms = parse_u64(next());
    else if (a == "--job-mem-limit") {
      so.job_mem_limit_bytes = parse_u64(next()) * (1ull << 20);
    }
    else if (a == "--cache-entries") so.cache_entries = parse_u64(next());
    else if (a == "--cache-bytes") {
      so.cache_bytes = parse_u64(next()) * (1ull << 20);
    }
    else if (a == "--checkpoint-every") {
      so.checkpoint_every_states = parse_u64(next());
    }
    else if (a == "--verbose") so.verbose = true;
    else usage(("unknown serve option " + a).c_str());
  }
  if (so.unix_path.empty() == so.tcp.empty()) {
    usage("serve needs exactly one of --socket PATH or --tcp HOST:PORT");
  }
  const std::string endpoint = so.unix_path.empty() ? so.tcp : so.unix_path;
  front::Server server(std::move(so));
  install_signal_handlers();
  server.start();
  const front::ServeStats boot = server.stats();
  std::printf("serve: listening on %s (%llu jobs recovered)\n",
              endpoint.c_str(),
              static_cast<unsigned long long>(boot.jobs_recovered));
  std::fflush(stdout);
  while (!g_stop.load(std::memory_order_relaxed) &&
         !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  const front::ServeStats s = server.stats();
  std::printf("serve: done (%llu requests, %llu jobs, %llu cache hits)\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.jobs_run),
              static_cast<unsigned long long>(s.cache.hits));
  return finish_exit_code(0);
}

/// Map an exhausted retryable transport failure to the typed
/// "server unreachable" exit (docs/robustness.md).
int report_unreachable(const dist::DistError& e) {
  std::fprintf(stderr, "cacval: server unreachable: %s\n", e.what());
  return front::kExitUnreachable;
}

bool retryable(const dist::DistError& e) {
  switch (e.kind()) {
    case dist::DistError::Kind::Io:
    case dist::DistError::Kind::PeerDied:
    case dist::DistError::Kind::Timeout:
      return true;
    default:
      return false;
  }
}

int worse_exit(int a, int b);
int submit_request(const Options& o, bool envelope,
                   const front::Request& req);

int cmd_submit(int argc, char** argv) {
  if (argc < 3) usage("submit needs a subcommand");
  const std::string sub = argv[2];
  if (sub == "ping" || sub == "stats" || sub == "shutdown") {
    std::string to;
    std::uint64_t timeout_ms = 30000;
    for (int i = 3; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--to" && i + 1 < argc) to = argv[++i];
      else if (a == "--timeout" && i + 1 < argc) {
        timeout_ms = parse_u64(argv[++i]);
      }
      else usage(("unknown option " + a).c_str());
    }
    if (to.empty()) usage("submit needs --to ENDPOINT");
    try {
      front::Client client = front::Client::connect(to, dist::RetryPolicy{});
      const front::Client::Reply reply =
          client.call("{\"command\":\"" + sub + "\"}", {},
                      static_cast<int>(timeout_ms));
      std::printf("%s\n", reply.raw.c_str());
      return reply.doc.str_or("status", "") == "ok" ? 0 : front::kExitUsage;
    } catch (const dist::DistError& e) {
      if (retryable(e)) return report_unreachable(e);
      throw;
    }
  }

  // Reuse the regular parser with "submit" stripped, so submit accepts
  // exactly the flags of the local command (plus --envelope, which is
  // submit-only and filtered out here).
  bool envelope = false;
  std::vector<char*> filtered;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--envelope") == 0) {
      envelope = true;
    } else {
      filtered.push_back(argv[i]);
    }
  }
  const Options o =
      parse_args(static_cast<int>(filtered.size()), filtered.data());
  if (o.to.empty()) usage("submit needs --to ENDPOINT");
  std::vector<front::Request> reqs;
  if (sub == "check") reqs.push_back(make_check_request(o, false));
  else if (sub == "validate") reqs.push_back(make_check_request(o, true));
  else if (sub == "lint") reqs.push_back(make_lint_request(o));
  else if (sub == "equiv" && !o.batch.empty()) {
    // Batch submit: one request per pair, so every pair lands in the
    // server's verdict cache under its own key.
    const std::vector<BatchPair> pairs = read_batch(o.batch);
    if (pairs.empty()) usage("batch file has no pairs");
    for (const BatchPair& p : pairs) {
      reqs.push_back(make_equiv_request_for(o, p));
    }
  }
  else if (sub == "equiv") reqs.push_back(make_equiv_request(o));
  else usage(("unknown submit subcommand " + sub).c_str());

  int worst = 0;
  for (const front::Request& req : reqs) {
    worst = worse_exit(worst, submit_request(o, envelope, req));
  }
  return worst;
}

/// Exit-code severity for aggregating a batch of submits: transport
/// failures dominate, then usage, finding, limit, clean — the same
/// ordering front::exit_code_of uses, extended with the serve codes.
int worse_exit(int a, int b) {
  const auto rank = [](int c) {
    switch (c) {
      case front::kExitUnreachable: return 5;
      case front::kExitBusy: return 4;
      case front::kExitUsage: return 3;
      case front::kExitFinding: return 2;
      case front::kExitLimit: return 1;
      default: return 0;
    }
  };
  return rank(a) >= rank(b) ? a : b;
}

int submit_request(const Options& o, bool envelope,
                   const front::Request& req) {
  // Keepalive: with a timeout but no user-requested progress cadence,
  // ask the server for sparse progress events anyway — a long
  // exploration then keeps resetting the inactivity deadline, so
  // --timeout distinguishes "slow job" from "wedged server".  The
  // cadence rides in the envelope, not the request body, so it never
  // touches the cache key or the verdict.
  const bool want_events = o.progress != 0;
  std::uint64_t progress = o.progress;
  if (progress == 0 && o.timeout_ms != 0) progress = 1u << 16;

  std::string payload = front::to_json(req);
  if (progress != 0) {
    // The progress cadence rides in the request envelope, next to the
    // request fields the server journals.
    payload.insert(payload.size() - 1,
                   ",\"progress\":" + std::to_string(progress));
  }

  front::SubmitOptions sopts;
  sopts.timeout_ms = static_cast<int>(o.timeout_ms);
  sopts.max_attempts = static_cast<int>(o.retries);
  front::SubmitOutcome outcome;
  try {
    outcome = front::submit_with_retry(
        o.to, payload, sopts, [want_events](const front::JsonValue& ev) {
          if (!want_events && ev.str_or("event", "") == "progress") return;
          std::fprintf(stderr, "event: %s states=%llu\n",
                       ev.str_or("event", "?").c_str(),
                       static_cast<unsigned long long>(
                           ev.u64_or("states", 0)));
        });
  } catch (const dist::DistError& e) {
    if (retryable(e)) return report_unreachable(e);
    throw;
  }
  const front::Client::Reply& reply = outcome.reply;
  if (outcome.reconnects != 0) {
    std::fprintf(stderr, "cacval: reconnected %llu time(s)\n",
                 static_cast<unsigned long long>(outcome.reconnects));
  }
  if (reply.doc.str_or("status", "") == "busy") {
    std::fprintf(stderr, "cacval: server busy (retry after %llu ms): %s\n",
                 static_cast<unsigned long long>(
                     reply.doc.u64_or("retry_after_ms", 250)),
                 reply.doc.str_or("error", "queue full").c_str());
    return front::kExitBusy;
  }
  if (reply.doc.str_or("status", "") != "ok") {
    std::fprintf(stderr, "cacval: server error: %s\n",
                 reply.doc.str_or("error", "unknown").c_str());
    return static_cast<int>(
        reply.doc.u64_or("exit_code", front::kExitUsage));
  }
  if (envelope) {
    // The full response envelope (status/cached/key/elapsed_us/...),
    // for scripts that care about cache behaviour, not just the
    // verdict (tools/serve_crash_drill.py's speedup assertion).
    std::printf("%s\n", reply.raw.c_str());
    return static_cast<int>(reply.doc.u64_or("exit_code", front::kExitUsage));
  }
  // Print the results document verbatim — the same bytes a local
  // --format=json run would print (and what the crash drill compares).
  const std::string tag = "\"results\":";
  const std::size_t at = reply.raw.find(tag);
  if (at != std::string::npos && !reply.raw.empty() &&
      reply.raw.back() == '}') {
    std::printf("%s\n",
                reply.raw
                    .substr(at + tag.size(),
                            reply.raw.size() - at - tag.size() - 1)
                    .c_str());
  } else {
    std::printf("%s\n", reply.raw.c_str());
  }
  return static_cast<int>(reply.doc.u64_or("exit_code", front::kExitUsage));
}

}  // namespace

int main(int argc, char** argv) {
  support::fault_init_from_env();
  try {
    if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
      return cmd_serve(argc, argv);
    }
    if (argc >= 2 && std::strcmp(argv[1], "submit") == 0) {
      return cmd_submit(argc, argv);
    }
    const Options o = parse_args(argc, argv);

    // Library-backed commands: the module is lowered inside front::.
    if (o.command == "lint") return cmd_lint(o);
    if (o.command == "check") return cmd_check(o, false);
    if (o.command == "validate") return cmd_check(o, true);
    if (o.command == "equiv") return cmd_equiv(o);

    // Tool-local commands that operate on the lowered module directly.
    ptx::LowerOptions lopts;
    lopts.insert_syncs = o.insert_syncs;
    const ptx::LoweredModule mod = ptx::load_ptx(read_file(o.file), lopts);
    if (o.command == "dump") return cmd_dump(o, mod);
    if (o.command == "emit") return cmd_emit(o, mod);
    if (o.command == "run") return cmd_run(o, mod);
    if (o.command == "races") return cmd_races(o, mod);
    if (o.command == "dist-worker") return cmd_dist_worker(o, mod);
    usage(("unknown command " + o.command).c_str());
  } catch (const PtxError& e) {
    std::fprintf(stderr, "cacval: PTX error: %s\n", e.what());
    return front::kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cacval: %s\n", e.what());
    return front::kExitUsage;
  }
}
