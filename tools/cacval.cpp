// cacval — command-line front end to the validation framework.
//
//   cacval dump   FILE.ptx [--kernel K] [--no-sync-insertion]
//   cacval emit   FILE.ptx [--kernel K]
//   cacval lint   FILE.ptx [--kernel K] [--format=json] [--no-races]
//                 (static analysis: barrier divergence, uninitialized
//                  registers, shared-layout overflow, race candidates;
//                  exit 0 clean, 1 findings, 2 bad input)
//   cacval run    FILE.ptx [launch options] [--profile]
//   cacval check  FILE.ptx [launch options] [--expect ADDR=U32]...
//                 [--independent] [--exact-steps N] [--por] [--por-oracle]
//                 [--threads N]
//                 [--checkpoint PATH] [--checkpoint-every N]
//                 [--resume PATH] [--deadline MS] [--mem-limit MIB]
//   cacval validate FILE.ptx [launch options] [--expect ADDR=U32]...
//                 [--profile]   (profile + races + model check +
//                                transparency + lane-order, one report;
//                                same checkpoint/budget flags as check)
//   cacval races  FILE.ptx [launch options]
//   cacval dist-worker FILE.ptx [launch options] --dist-connect HOST:PORT
//                 (join a multi-host distributed exploration; the
//                  coordinator runs `check ... --dist-listen HOST:PORT`)
//   cacval equiv  FILE_A.ptx FILE_B.ptx [--kernel K] [--kernel-b K2]
//                 [--block ...]   (translation validation: identical
//                                  stores for every input, symbolically)
//
// Launch options:
//   --kernel K          kernel name (default: the first kernel)
//   --grid X[,Y[,Z]]    grid size (default 1)
//   --block X[,Y[,Z]]   block size (default 32)
//   --warp N            warp size (default 32)
//   --global BYTES      Global space size (default 4096)
//   --shared BYTES      Shared bank size per block (default 4096)
//   --param NAME=VAL    kernel argument (repeatable; VAL may be 0x..)
//   --init ADDR=U32     initialize a Global word (repeatable)
//   --sched S           first | rr | random:SEED   (default first)
//   --max-steps N       step/depth bound (default 1<<20)
//   --max-states N      distinct-state bound for check/validate
//   --threads N         parallel exploration workers (0 = serial)
//   --por-oracle        --por plus the static disjointness oracle: the
//                       analyzer proves access sites independent under
//                       this launch and the explorer skips their
//                       interleavings (docs/analysis.md)
//
// Crash-safety options (check/validate):
//   --checkpoint PATH   periodically write a resumable checkpoint
//   --checkpoint-every N  states between checkpoints (default 256)
//   --resume PATH       continue a checkpointed exploration
//   --deadline MS       stop gracefully after MS milliseconds
//   --mem-limit MIB     stop gracefully when RSS reaches MIB MiB
//
// Tiered state store (check/validate; docs/explorer.md):
//   --store-budget MIB  resident-byte budget for interned states; cold
//                       fragments are demoted (and spilled, with
//                       --spill-dir) above it (0 = keep everything hot)
//   --spill-dir DIR     spill demoted fragments to an unlinked segment
//                       file in DIR (enables the cold tier)
//   --bloom-bits N      bloom-filter bits per visited-state shard
//                       (power of two; default 131072)
//   --delta-depth N     longest warp-fragment delta chain (default 8;
//                       0 disables delta encoding)
//
// Distributed exploration (check/validate; docs/distributed.md):
//   --dist-workers N    partition the visited set across N worker
//                       processes (forked on this host); the verdict is
//                       byte-identical to the serial engine's
//   --dist-listen H:P   accept N `cacval dist-worker` processes over
//                       TCP instead of forking (multi-host)
//   --dist-verbose      print worker pids and recovery events
//   With --checkpoint PATH the coordinator writes per-worker generation
//   files PATH.g<gen>.w<idx> plus a manifest at PATH; --resume PATH
//   (with the same --dist-workers) continues from that manifest.
//
// Exit status: 0 on success/proof, 1 on refutation/fault/deadlock,
// 2 on usage or input errors (including corrupt checkpoints),
// 128+signo when stopped by SIGINT/SIGTERM (after writing a final
// checkpoint if --checkpoint was given).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/disjoint.h"
#include "analysis/lint.h"
#include "check/model.h"
#include "check/profile.h"
#include "dist/coordinator.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "sched/checkpoint.h"
#include "check/race.h"
#include "check/validate.h"
#include "vcgen/prove.h"
#include "ptx/emit.h"
#include "ptx/lower.h"
#include "sched/explore.h"
#include "sched/scheduler.h"
#include "sem/launch.h"

using namespace cac;

namespace {

struct Options {
  std::string command;
  std::string file;
  std::string file_b;   // equiv only
  std::string kernel;
  std::string kernel_b;
  /// The shared launch-configuration surface (sem/launch.h); the
  /// --grid/--block/--warp/--global/--shared/--param/--init flags land
  /// here via sem::parse_launch_args.
  sem::LaunchSpec launch;
  /// Single source of truth for every exploration limit: --max-steps
  /// is ExploreOptions.max_depth, --max-states is .max_states,
  /// --threads is .num_threads, --por is .partial_order_reduction.
  /// cmd_run/cmd_races reuse max_depth as their step bound.
  sched::ExploreOptions explore;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> expects;
  std::string sched = "first";
  std::uint64_t exact_steps = 0;
  std::string resume_path;
  /// Distributed exploration (dist/coordinator.h): 0 = in-process.
  std::uint32_t dist_workers = 0;
  std::string dist_listen;
  std::string dist_connect;  // dist-worker command only
  bool dist_verbose = false;
  /// Hidden crash-drill seam (--dist-test-die W=N): worker W SIGKILLs
  /// itself after owning N states.
  std::uint32_t dist_die_worker = dist::kNoWorker;
  std::uint64_t dist_die_after = 0;
  bool independent = false;
  bool profile = false;
  bool insert_syncs = true;
  /// check/validate: fill ExploreOptions::por_independent_pcs from the
  /// static analyzer under this launch (implies --por).
  bool por_oracle = false;
  /// lint: output format ("text" or "json") and the race pass switch.
  std::string format = "text";
  bool lint_races = true;

  Options() { explore.max_depth = 1u << 20; }
};

// SIGINT/SIGTERM request a graceful stop: the explorers poll the flag,
// drain, write a final checkpoint when one was requested, and cacval
// exits 128+signo.  Only async-signal-safe stores happen here.
std::atomic<bool> g_stop{false};
std::atomic<int> g_signo{0};

extern "C" void handle_stop_signal(int signo) {
  g_signo.store(signo, std::memory_order_relaxed);
  g_stop.store(true, std::memory_order_relaxed);
}

void install_signal_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

/// 128+signo if the run was interrupted, otherwise the verdict code.
int finish_exit_code(int verdict_code) {
  const int signo = g_signo.load(std::memory_order_relaxed);
  return signo != 0 ? 128 + signo : verdict_code;
}

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "cacval: %s\n(see the header of tools/cacval.cpp "
                       "for usage)\n", why);
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& s) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(s, &used, 0);
    if (used != s.size()) usage(("bad number: " + s).c_str());
    return v;
  } catch (const std::exception&) {
    usage(("bad number: " + s).c_str());
  }
}

std::pair<std::string, std::string> split_eq(const std::string& s) {
  const auto eq = s.find('=');
  if (eq == std::string::npos) usage("expected NAME=VALUE");
  return {s.substr(0, eq), s.substr(eq + 1)};
}

Options parse_args(int argc, char** argv) {
  if (argc < 3) usage("missing command or file");
  Options o;
  o.command = argv[1];
  o.file = argv[2];
  int first_flag = 3;
  if (o.command == "equiv") {
    if (argc < 4) usage("equiv needs two files");
    o.file_b = argv[3];
    first_flag = 4;
  }
  // Launch-configuration flags are parsed by the shared library
  // routine; everything it does not recognize comes back for the
  // tool-specific second pass.
  std::vector<std::string> args(argv + first_flag, argv + argc);
  std::vector<std::string> rest;
  try {
    rest = sem::parse_launch_args(args, o.launch);
  } catch (const sem::LaunchArgError& e) {
    usage(e.what());
  }
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    auto next = [&]() -> std::string {
      if (++i >= rest.size()) usage(("missing value for " + a).c_str());
      return rest[i];
    };
    if (a == "--kernel") o.kernel = next();
    else if (a == "--kernel-b") o.kernel_b = next();
    else if (a == "--expect") {
      const auto [k, v] = split_eq(next());
      o.expects.emplace_back(parse_u64(k),
                             static_cast<std::uint32_t>(parse_u64(v)));
    } else if (a == "--sched") o.sched = next();
    else if (a == "--max-steps") o.explore.max_depth = parse_u64(next());
    else if (a == "--max-states") o.explore.max_states = parse_u64(next());
    else if (a == "--threads") {
      o.explore.num_threads =
          static_cast<std::uint32_t>(parse_u64(next()));
    }
    else if (a == "--exact-steps") o.exact_steps = parse_u64(next());
    else if (a == "--checkpoint") o.explore.checkpoint_path = next();
    else if (a == "--checkpoint-every") {
      o.explore.checkpoint_every_states = parse_u64(next());
    }
    else if (a == "--resume") o.resume_path = next();
    else if (a == "--dist-workers") {
      o.dist_workers = static_cast<std::uint32_t>(parse_u64(next()));
    }
    else if (a == "--dist-listen") o.dist_listen = next();
    else if (a == "--dist-connect") o.dist_connect = next();
    else if (a == "--dist-verbose") o.dist_verbose = true;
    else if (a == "--dist-test-die") {
      const auto [w, n] = split_eq(next());
      o.dist_die_worker = static_cast<std::uint32_t>(parse_u64(w));
      o.dist_die_after = parse_u64(n);
    }
    else if (a == "--deadline") o.explore.deadline_ms = parse_u64(next());
    else if (a == "--mem-limit") {
      o.explore.mem_limit_bytes = parse_u64(next()) * (1ull << 20);
    }
    else if (a == "--store-budget") {
      o.explore.store_resident_budget_bytes =
          parse_u64(next()) * (1ull << 20);
    }
    else if (a == "--spill-dir") o.explore.store_spill_dir = next();
    else if (a == "--bloom-bits") o.explore.store_bloom_bits = parse_u64(next());
    else if (a == "--delta-depth") {
      o.explore.store_delta_depth =
          static_cast<std::uint32_t>(parse_u64(next()));
    }
    else if (a == "--independent") o.independent = true;
    else if (a == "--por") o.explore.partial_order_reduction = true;
    else if (a == "--por-oracle") o.por_oracle = true;
    else if (a == "--format") o.format = next();
    else if (a.rfind("--format=", 0) == 0) o.format = a.substr(9);
    else if (a == "--no-races") o.lint_races = false;
    else if (a == "--profile") o.profile = true;
    else if (a == "--no-sync-insertion") o.insert_syncs = false;
    else usage(("unknown option " + a).c_str());
  }
  if (!o.explore.checkpoint_path.empty() &&
      o.explore.checkpoint_every_states == 0) {
    o.explore.checkpoint_every_states = 256;
  }
  return o;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage(("cannot open " + path).c_str());
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::unique_ptr<sched::Scheduler> make_scheduler(const std::string& name) {
  if (name == "first") return std::make_unique<sched::FirstChoiceScheduler>();
  if (name == "rr") return std::make_unique<sched::RoundRobinScheduler>();
  if (name.rfind("random:", 0) == 0) {
    return std::make_unique<sched::RandomScheduler>(
        parse_u64(name.substr(7)));
  }
  usage("unknown scheduler (use first | rr | random:SEED)");
}

const ptx::Program& pick_kernel(const ptx::LoweredModule& mod,
                                const Options& o) {
  if (mod.kernels.empty()) usage("module has no kernels");
  if (o.kernel.empty()) return mod.kernels.front();
  return mod.kernel(o.kernel);
}

sem::Launch make_launch(const ptx::Program& prg, const Options& o,
                        const ptx::LoweredModule& mod) {
  return o.launch.to_launch(prg, mod.shared_bytes);
}

int cmd_dump(const Options& o, const ptx::LoweredModule& mod) {
  if (!o.kernel.empty()) {
    std::printf("%s", ptx::to_string(mod.kernel(o.kernel)).c_str());
    return 0;
  }
  for (const ptx::Program& k : mod.kernels) {
    std::printf("%s\n", ptx::to_string(k).c_str());
  }
  if (mod.shared_bytes) {
    std::printf("shared layout: %u bytes/block\n", mod.shared_bytes);
  }
  return 0;
}

int cmd_emit(const Options& o, const ptx::LoweredModule& mod) {
  std::printf("%s", ptx::emit_ptx(pick_kernel(mod, o)).c_str());
  return 0;
}

int cmd_lint(const Options& o, const ptx::LoweredModule& mod) {
  if (o.format != "text" && o.format != "json") {
    usage("unknown --format (use text | json)");
  }
  std::vector<const ptx::Program*> kernels;
  if (o.kernel.empty()) {
    for (const ptx::Program& k : mod.kernels) kernels.push_back(&k);
  } else {
    kernels.push_back(&mod.kernel(o.kernel));
  }
  if (kernels.empty()) usage("module has no kernels");

  analysis::LintOptions lo;
  lo.shared_bytes = mod.shared_bytes;
  lo.check_races = o.lint_races;

  bool any = false;
  std::string json = "[";
  for (const ptx::Program* k : kernels) {
    const analysis::LintReport report =
        analysis::lint_kernel(*k, mod.locs_for(*k), lo);
    any = any || !report.clean();
    if (o.format == "json") {
      if (json.size() > 1) json += ",";
      json += analysis::render_json(report, o.file, k->name());
    } else {
      std::printf("%s",
                  analysis::render_text(report, o.file, k->name()).c_str());
    }
  }
  if (o.format == "json") std::printf("%s]\n", json.c_str());
  return any ? 1 : 0;
}

/// Launch specialization for the static analyzer, from the same flags
/// the explorer launches with: block/grid dims plus every --param value
/// masked to its slot's width.
analysis::LaunchEnv make_launch_env(const ptx::Program& prg,
                                    const Options& o) {
  analysis::LaunchEnv env;
  env.known = true;
  env.ntid[0] = o.launch.block.x;
  env.ntid[1] = o.launch.block.y;
  env.ntid[2] = o.launch.block.z;
  env.nctaid[0] = o.launch.grid.x;
  env.nctaid[1] = o.launch.grid.y;
  env.nctaid[2] = o.launch.grid.z;
  for (const auto& [name, value] : o.launch.params) {
    for (const ptx::ParamSlot& slot : prg.params()) {
      if (slot.name != name) continue;
      const std::uint64_t mask =
          slot.type.width >= 64 ? ~0ull : (1ull << slot.type.width) - 1;
      env.params[slot.offset] = value & mask;
    }
  }
  return env;
}

/// Apply --por-oracle: prove access sites independent under this launch
/// and hand the pcs to the explorer's reduction.
void apply_por_oracle(const ptx::Program& prg, const Options& o,
                      sched::ExploreOptions& eopts) {
  if (!o.por_oracle) return;
  eopts.partial_order_reduction = true;
  eopts.por_independent_pcs =
      analysis::independent_access_pcs(prg, make_launch_env(prg, o));
  std::printf("por oracle: %zu access pcs proven independent\n",
              eopts.por_independent_pcs.size());
}

int cmd_run(const Options& o, const ptx::LoweredModule& mod) {
  const ptx::Program& prg = pick_kernel(mod, o);
  sem::Launch launch = make_launch(prg, o, mod);
  sem::Machine m = launch.machine();
  auto sched = make_scheduler(o.sched);

  if (o.profile) {
    const check::Profile p =
        check::profile_run(prg, launch.config(), m, *sched,
                           o.explore.max_depth);
    std::printf("status: %s after %llu steps\n%s",
                to_string(p.run.status).c_str(),
                static_cast<unsigned long long>(p.run.steps),
                p.table().c_str());
    if (!p.run.message.empty()) std::printf("%s\n", p.run.message.c_str());
    return p.run.status == sched::RunResult::Status::Terminated ? 0 : 1;
  }

  const sched::RunResult r =
      sched::run(prg, launch.config(), m, *sched, o.explore.max_depth);
  std::printf("status: %s after %llu grid steps\n",
              to_string(r.status).c_str(),
              static_cast<unsigned long long>(r.steps));
  if (!r.message.empty()) std::printf("%s", r.message.c_str());
  if (!r.events.invalid_reads.empty() || !r.events.store_conflicts.empty()) {
    std::printf("diagnostics: %zu invalid reads, %zu lane conflicts\n",
                r.events.invalid_reads.size(),
                r.events.store_conflicts.size());
  }
  for (const auto& [addr, _] : o.expects) {
    std::printf("Global[%llu] = %llu\n",
                static_cast<unsigned long long>(addr),
                static_cast<unsigned long long>(
                    m.memory.load(mem::Space::Global, addr, 4)));
  }
  return r.terminated() ? 0 : 1;
}

/// The fault/unknown diagnostics shared by check and validate: every
/// violation with its precise kind and message (a stuck verdict
/// carries sem::stuck_reason's explanation of *why* no warp can step —
/// barrier divergence, exited warps waiting on a barrier, ...), and
/// the exact limit for non-exhaustive runs.
void print_exploration_diagnostics(const sched::ExploreResult& ex,
                                   const Options& o) {
  for (const sched::Violation& viol : ex.violations) {
    std::printf("violation: %s: %s (after %zu steps)\n",
                to_string(viol.kind).c_str(), viol.message.c_str(),
                viol.trace.size());
  }
  if (!ex.exhaustive) {
    std::printf("limit tripped: %s (max-states=%llu, max-depth=%llu; "
                "visited %llu states)\n",
                to_string(ex.limit_hit).c_str(),
                static_cast<unsigned long long>(o.explore.max_states),
                static_cast<unsigned long long>(o.explore.max_depth),
                static_cast<unsigned long long>(ex.states_visited));
  }
  if (ex.checkpointed) {
    std::printf("checkpoint written: %s\n",
                o.explore.checkpoint_path.c_str());
  }
  const sched::StateStore::Stats& ss = ex.store_stats;
  if (ss.states != 0) {
    std::printf(
        "store: %llu KiB resident, %llu KiB spilled, %llu evictions, "
        "%llu delta frags, %llu remats, bloom hit rate %.1f%%\n",
        static_cast<unsigned long long>(ss.resident_bytes >> 10),
        static_cast<unsigned long long>(ss.spilled_bytes >> 10),
        static_cast<unsigned long long>(ss.hot_evictions),
        static_cast<unsigned long long>(ss.delta_fragments),
        static_cast<unsigned long long>(ss.rematerializations),
        100.0 * ss.bloom_hit_rate());
  }
}

/// Load the --resume checkpoint, or null.  CheckpointError propagates
/// to main's std::exception handler (exit 2) with the structured
/// "checkpoint: ..." message.  Distributed runs resume from the
/// coordinator manifest instead (see make_dist_explorer).
std::unique_ptr<sched::Checkpoint> load_resume(const Options& o) {
  if (o.resume_path.empty() || o.dist_workers != 0) return nullptr;
  return std::make_unique<sched::Checkpoint>(
      sched::Checkpoint::load(o.resume_path));
}

dist::DistOptions make_dist_options(const Options& o) {
  dist::DistOptions d;
  d.n_workers = o.dist_workers;
  d.listen = o.dist_listen;
  d.resume_manifest = o.resume_path;  // coordinator manifest, if any
  d.die_worker = o.dist_die_worker;
  d.die_after_states = o.dist_die_after;
  d.verbose = o.dist_verbose;
  return d;
}

void print_dist_stats(const dist::DistStats& s) {
  std::printf("distributed: %zu workers, %llu frontier msgs, "
              "skew %.2f, %llu restarts (%llu piecemeal), "
              "%llu checkpoint generations\n",
              s.workers.size(),
              static_cast<unsigned long long>(s.frontier_msgs), s.skew(),
              static_cast<unsigned long long>(s.restarts),
              static_cast<unsigned long long>(s.piecemeal_restarts),
              static_cast<unsigned long long>(s.generations));
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const dist::DistStats::PerWorker& w = s.workers[i];
    std::printf("  worker %zu: %llu states owned, %llu frontier sent, "
                "%llu resolves, %llu B out, %llu B in\n",
                i, static_cast<unsigned long long>(w.owned),
                static_cast<unsigned long long>(w.frontier_sent),
                static_cast<unsigned long long>(w.resolves_sent),
                static_cast<unsigned long long>(w.bytes_sent),
                static_cast<unsigned long long>(w.bytes_received));
  }
}

/// Wrap the distributed coordinator as a ModelCheckOptions::explorer.
/// The stats land in *stats_out (printed after the verdict).
check::ModelCheckOptions::explorer_type make_dist_explorer(
    const Options& o, std::shared_ptr<dist::DistStats> stats_out) {
  const dist::DistOptions dopts = make_dist_options(o);
  return [dopts, stats_out](const ptx::Program& prg,
                            const sem::KernelConfig& kc,
                            const sem::Machine& initial,
                            const sched::ExploreOptions& eopts) {
    dist::DistResult r =
        dist::explore_distributed(prg, kc, initial, eopts, dopts);
    *stats_out = std::move(r.stats);
    return std::move(r.result);
  };
}

int cmd_check(const Options& o, const ptx::LoweredModule& mod) {
  const ptx::Program& prg = pick_kernel(mod, o);
  sem::Launch launch = make_launch(prg, o, mod);
  check::Spec post;
  for (const auto& [addr, value] : o.expects) {
    post.mem_u32(mem::Space::Global, addr, value);
  }
  check::ModelCheckOptions opts;
  opts.explore = o.explore;
  opts.explore.stop_flag = &g_stop;
  apply_por_oracle(prg, o, opts.explore);
  opts.require_schedule_independence = o.independent;
  opts.expect_exact_steps = o.exact_steps;
  const auto resume = load_resume(o);
  opts.resume = resume.get();
  auto dist_stats = std::make_shared<dist::DistStats>();
  if (o.dist_workers != 0) {
    opts.explorer = make_dist_explorer(o, dist_stats);
  }
  install_signal_handlers();
  const check::Verdict v = check::prove_total(prg, launch.config(),
                                              launch.machine(), post, opts);
  std::printf("%s: %s\n", to_string(v.kind).c_str(), v.detail.c_str());
  print_exploration_diagnostics(v.exploration, o);
  if (o.dist_workers != 0) print_dist_stats(*dist_stats);
  if (!v.counterexample.empty()) {
    std::printf("counterexample schedule (%zu steps):",
                v.counterexample.size());
    const std::size_t show = std::min<std::size_t>(v.counterexample.size(), 20);
    for (std::size_t i = 0; i < show; ++i) {
      std::printf(" %s", sem::to_string(v.counterexample[i]).c_str());
    }
    std::printf(v.counterexample.size() > show ? " ...\n" : "\n");
  }
  return finish_exit_code(v.proved() ? 0 : 1);
}

int cmd_validate(const Options& o, const ptx::LoweredModule& mod) {
  const ptx::Program& prg = pick_kernel(mod, o);
  sem::Launch launch = make_launch(prg, o, mod);
  check::Spec post;
  for (const auto& [addr, value] : o.expects) {
    post.mem_u32(mem::Space::Global, addr, value);
  }
  check::ValidateOptions opts;
  opts.model.explore = o.explore;
  opts.model.explore.stop_flag = &g_stop;
  apply_por_oracle(prg, o, opts.model.explore);
  opts.model.require_schedule_independence = o.independent;
  opts.model.expect_exact_steps = o.exact_steps;
  const auto resume = load_resume(o);
  opts.model.resume = resume.get();
  auto dist_stats = std::make_shared<dist::DistStats>();
  if (o.dist_workers != 0) {
    opts.model.explorer = make_dist_explorer(o, dist_stats);
  }
  opts.collect_profile = o.profile;
  install_signal_handlers();
  const check::ValidationReport report =
      check::validate(prg, launch.config(), launch.machine(), post, opts);
  std::printf("%s", report.text().c_str());
  print_exploration_diagnostics(report.model.exploration, o);
  if (o.dist_workers != 0) print_dist_stats(*dist_stats);
  return finish_exit_code(report.all_passed() ? 0 : 1);
}

int cmd_races(const Options& o, const ptx::LoweredModule& mod) {
  const ptx::Program& prg = pick_kernel(mod, o);
  sem::Launch launch = make_launch(prg, o, mod);
  sem::Machine m = launch.machine();
  auto sched = make_scheduler(o.sched);
  check::RaceOptions ropts;
  ropts.max_steps = o.explore.max_depth;
  const check::RaceReport r =
      check::detect_races(prg, launch.config(), m, *sched, ropts);
  std::printf("run: %s; %s\n", to_string(r.run.status).c_str(),
              r.summary().c_str());
  for (const auto& race : r.races) {
    std::printf("  %s %s[%llu] threads %u/%u%s\n",
                race.write_write ? "W-W" : "R-W",
                ptx::to_string(race.space).c_str(),
                static_cast<unsigned long long>(race.addr), race.tid_a,
                race.tid_b, race.cross_block ? " (cross-block)" : "");
  }
  return r.racy() ? 1 : 0;
}

int cmd_dist_worker(const Options& o, const ptx::LoweredModule& mod) {
  if (o.dist_connect.empty()) {
    usage("dist-worker needs --dist-connect HOST:PORT");
  }
  const ptx::Program& prg = pick_kernel(mod, o);
  const sem::KernelConfig kc = o.launch.to_config();
  dist::Fd fd = dist::tcp_connect(o.dist_connect);
  dist::run_worker(fd.get(), prg, kc);
  return 0;
}

int cmd_equiv(const Options& o, const ptx::LoweredModule& mod_a) {
  ptx::LowerOptions lopts;
  lopts.insert_syncs = o.insert_syncs;
  const ptx::LoweredModule mod_b = ptx::load_ptx(read_file(o.file_b), lopts);
  const ptx::Program& a = pick_kernel(mod_a, o);
  Options ob = o;
  ob.kernel = o.kernel_b.empty() ? o.kernel : o.kernel_b;
  const ptx::Program& b = pick_kernel(mod_b, ob);

  sym::TermArena arena;
  const sym::SymEnv env = sym::SymEnv::symbolic(arena, a);
  const sem::KernelConfig kc = o.launch.to_config();
  const vcgen::ProofResult r = vcgen::prove_equivalent(a, b, kc, env);
  std::printf("%s == %s: %s (%s)\n", a.name().c_str(), b.name().c_str(),
              r.proved ? "PROVED" : "REFUTED", r.detail.c_str());
  return r.proved ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse_args(argc, argv);
    ptx::LowerOptions lopts;
    lopts.insert_syncs = o.insert_syncs;
    const ptx::LoweredModule mod = ptx::load_ptx(read_file(o.file), lopts);

    if (o.command == "dump") return cmd_dump(o, mod);
    if (o.command == "emit") return cmd_emit(o, mod);
    if (o.command == "lint") return cmd_lint(o, mod);
    if (o.command == "run") return cmd_run(o, mod);
    if (o.command == "check") return cmd_check(o, mod);
    if (o.command == "validate") return cmd_validate(o, mod);
    if (o.command == "equiv") return cmd_equiv(o, mod);
    if (o.command == "races") return cmd_races(o, mod);
    if (o.command == "dist-worker") return cmd_dist_worker(o, mod);
    usage(("unknown command " + o.command).c_str());
  } catch (const PtxError& e) {
    std::fprintf(stderr, "cacval: PTX error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cacval: %s\n", e.what());
    return 2;
  }
}
