#!/usr/bin/env python3
"""Chaos drill: seeded random fault plans against the real cacval
binary, across commands (check / lint / equiv) and execution modes
(serial / distributed / serve).

The contract (docs/robustness.md): under any injected fault plan a run
must end, within the watchdog, in exactly one of

  * the baseline exit code with a byte-identical verdict document, or
  * a typed retryable failure — exit 4 (busy) or exit 5 (unreachable)
    for service runs.

Never a hang, never a crash, never a silently different verdict.

Phases:

  1. baseline — unfaulted `--format=json` documents per config
  2. serial   — seeded disk-fault plans (checkpoint + spill paths);
                disk faults are degrade-only, so these must reproduce
                the baseline bytes AND the baseline exit
  3. dist     — the same plans plus transport delay rules over
                `--dist-workers 2`
  4. static   — lint / equiv under the same seeds (the plans mostly
                cannot fire; the point is that arming the seam never
                perturbs a path that does no I/O)
  5. serve    — seeded journal / cache / transport-error plans against
                a live server; client-side retry + content-addressed
                re-attach must converge on the baseline bytes or a
                typed retryable exit
  6. enospc   — the dedicated ENOSPC-on-spill scenario: resident-only
                degradation, reported, verdict unchanged
  7. kill     — SIGKILL the server mid-stream: the client must fail
                with the typed retryable exit (5) within its timeout,
                and a restarted server must re-attach the journaled
                job to the baseline bytes

Usage: chaos_drill.py CACVAL RACY_PTX VECADD_PTX [SEEDS_PER_MODE]
"""

import os
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

WATCHDOG_S = 120  # no single cacval invocation may outlive this

RACY_ARGS = ["--grid", "3", "--block", "2", "--warp", "1",
             "--global", "64", "--param", "out=0"]
# ~2s / ~96k states: enough traffic to actually spill under a 1 MiB
# resident budget, and enough wall time to SIGKILL a server mid-job.
SLOW_ARGS = ["--grid", "4", "--block", "2", "--warp", "1",
             "--global", "64", "--param", "out=0"]
EQUIV_ARGS = ["--block", "8", "--warp", "8"]

RETRYABLE_EXITS = (4, 5)  # busy, unreachable

plans_run = 0


def fail(msg, output=""):
    print("DRILL FAIL:", msg)
    if output:
        print("--- output ---")
        print(output[:4000])
    sys.exit(1)


def run(cmd, env_plan=None, timeout=WATCHDOG_S):
    """Run one cacval invocation under the watchdog; a hang or a crash
    signal is an immediate drill failure."""
    env = dict(os.environ)
    env.pop("CAC_FAULT_PLAN", None)
    if env_plan:
        env["CAC_FAULT_PLAN"] = env_plan
    try:
        p = subprocess.run(cmd, stdout=subprocess.PIPE,
                           stderr=subprocess.PIPE, text=True, env=env,
                           timeout=timeout)
    except subprocess.TimeoutExpired:
        fail("HANG under plan %r: %s" % (env_plan, " ".join(cmd)))
    if p.returncode < 0:
        fail("CRASH (signal %d) under plan %r: %s"
             % (-p.returncode, env_plan, " ".join(cmd)),
             p.stderr)
    return p.returncode, p.stdout, p.stderr


def check_outcome(what, plan, code, out, base_code, base_out,
                  allow_retryable=False):
    """The drill's core assertion: baseline-identical or typed
    retryable, nothing else."""
    if allow_retryable and code in RETRYABLE_EXITS and code != base_code:
        return "retryable(%d)" % code
    if code != base_code:
        fail("%s: exit %d != baseline %d under plan %r"
             % (what, code, base_code, plan))
    if out != base_out:
        fail("%s: verdict diverged from baseline under plan %r\n"
             "base: %r...\ngot:  %r..."
             % (what, plan, base_out[:160], out[:160]))
    return "identical"


# -- seeded plan generation -------------------------------------------

def disk_rules(rng):
    pool = [
        lambda: "op=rename,path=*.ckpt,nth=%d,err=%s"
                % (rng.randint(1, 3), rng.choice(["ENOSPC", "EIO"])),
        lambda: "op=write,path=*.ckpt,every=%d,err=ENOSPC"
                % rng.randint(1, 3),
        lambda: "op=write,path=*cac-spill*,nth=%d,err=ENOSPC"
                % rng.randint(1, 4),
        lambda: "op=open,path=*cac-spill*,every=1,err=EACCES",
        lambda: "op=write,path=*cac-spill*,p=0.%d,err=EIO"
                % rng.randint(2, 7),
    ]
    return [rng.choice(pool)() for _ in range(rng.randint(1, 2))]


def delay_rules(rng):
    return ["op=%s,every=%d,delay=%d"
            % (rng.choice(["send", "recv"]), rng.randint(40, 90),
               rng.randint(1, 4))]


def serve_rules(rng):
    pool = [
        lambda: "op=write,path=*.req.json,every=1,err=ENOSPC",
        lambda: "op=write,path=*cache*,p=0.5,err=EIO",
        lambda: "op=connect,nth=1,err=ECONNREFUSED",
        lambda: "op=recv,nth=%d,err=ECONNRESET" % rng.randint(1, 6),
        lambda: "op=send,nth=%d,err=EPIPE" % rng.randint(1, 6),
        lambda: "op=send,delay=%d" % rng.randint(1, 5),
    ]
    return [rng.choice(pool)() for _ in range(rng.randint(1, 3))]


def make_plan(seed, rules):
    global plans_run
    plans_run += 1
    return "seed=%d;%s" % (seed, ";".join(rules))


# -- serve plumbing (borrowed from serve_crash_drill.py) ---------------

def start_server(cacval, sock, state_dir, env_plan=None):
    env = dict(os.environ)
    env.pop("CAC_FAULT_PLAN", None)
    if env_plan:
        env["CAC_FAULT_PLAN"] = env_plan
    proc = subprocess.Popen(
        [cacval, "serve", "--socket", sock, "--state-dir", state_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    for _ in range(400):
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(sock)
            probe.close()
            return proc
        except OSError:
            pass
        if proc.poll() is not None:
            fail("server exited at startup", proc.stdout.read())
        time.sleep(0.05)
    proc.kill()
    fail("server never bound its socket")


def stop_server(proc):
    proc.send_signal(signal.SIGINT)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("server did not exit on SIGINT")


def main():
    if len(sys.argv) not in (4, 5):
        fail("usage: chaos_drill.py CACVAL RACY_PTX VECADD_PTX [SEEDS]")
    cacval, racy, vecadd = sys.argv[1], sys.argv[2], sys.argv[3]
    seeds = int(sys.argv[4]) if len(sys.argv) == 5 else 14
    tmp = tempfile.mkdtemp(prefix="cac_chaos_")

    def fresh(name):
        d = os.path.join(tmp, name)
        shutil.rmtree(d, ignore_errors=True)
        os.makedirs(d)
        return d

    def store_args(d):
        return ["--spill-dir", d, "--store-budget", "1",
                "--checkpoint", os.path.join(d, "run.ckpt"),
                "--checkpoint-every", "500"]

    # -- 1. baselines --------------------------------------------------
    base = {}
    base["check"] = run([cacval, "check", racy] + RACY_ARGS
                        + ["--format=json"])
    base["slow"] = run([cacval, "check", racy] + SLOW_ARGS
                       + ["--format=json"])
    base["lint"] = run([cacval, "lint", racy, "--format=json"])
    base["equiv"] = run([cacval, "equiv", vecadd, vecadd] + EQUIV_ARGS
                        + ["--format=json"])
    for name, (code, out, _) in sorted(base.items()):
        print("baseline %-5s: exit %d, %d bytes" % (name, code, len(out)))

    # -- 2/3. serial + dist under seeded disk/delay plans --------------
    for seed in range(1, seeds + 1):
        rng = random.Random(1000 + seed)
        plan = make_plan(seed, disk_rules(rng))
        d = fresh("serial_%d" % seed)
        code, out, _ = run([cacval, "check", racy] + RACY_ARGS
                           + store_args(d) + ["--format=json"], plan)
        check_outcome("serial seed %d" % seed, plan, code, out,
                      base["check"][0], base["check"][1])

        rng = random.Random(2000 + seed)
        plan = make_plan(seed, disk_rules(rng) + delay_rules(rng))
        d = fresh("dist_%d" % seed)
        code, out, _ = run([cacval, "check", racy] + RACY_ARGS
                           + store_args(d)
                           + ["--dist-workers", "2", "--format=json"], plan)
        check_outcome("dist seed %d" % seed, plan, code, out,
                      base["check"][0], base["check"][1])
    print("serial+dist: %d seeded plans, all byte-identical" % (2 * seeds))

    # -- 4. static commands under the same seams -----------------------
    for seed in range(1, seeds // 2 + 1):
        rng = random.Random(3000 + seed)
        plan = make_plan(seed, disk_rules(rng))
        code, out, _ = run([cacval, "lint", racy, "--format=json"], plan)
        check_outcome("lint seed %d" % seed, plan, code, out,
                      base["lint"][0], base["lint"][1])
        rng = random.Random(4000 + seed)
        plan = make_plan(seed, disk_rules(rng) + delay_rules(rng))
        code, out, _ = run([cacval, "equiv", vecadd, vecadd] + EQUIV_ARGS
                           + ["--format=json"], plan)
        check_outcome("equiv seed %d" % seed, plan, code, out,
                      base["equiv"][0], base["equiv"][1])
    print("lint+equiv: %d seeded plans, all byte-identical"
          % (2 * (seeds // 2)))

    # -- 5. serve under seeded journal/cache/transport plans -----------
    outcomes = {"identical": 0}
    for seed in range(1, seeds + 1):
        rng = random.Random(5000 + seed)
        plan = make_plan(seed, serve_rules(rng))
        d = fresh("serve_%d" % seed)
        sock = os.path.join(d, "sock")
        server = start_server(cacval, sock, os.path.join(d, "state"),
                              env_plan=plan)
        code, out, err = run([cacval, "submit", "check", racy] + RACY_ARGS
                             + ["--to", sock, "--timeout", "20000"], plan)
        tag = check_outcome("serve seed %d" % seed, plan, code, out,
                            base["check"][0], base["check"][1],
                            allow_retryable=True)
        outcomes[tag] = outcomes.get(tag, 0) + 1
        stop_server(server)
    print("serve: %d seeded plans -> %s" % (seeds, outcomes))

    # -- 6. the ENOSPC-on-spill scenario -------------------------------
    d = fresh("enospc")
    plan = make_plan(0, ["op=write,path=*cac-spill*,nth=1,err=ENOSPC"])
    code, out, _ = run([cacval, "check", racy] + SLOW_ARGS
                       + ["--spill-dir", d, "--store-budget", "1",
                          "--format=json"], plan)
    check_outcome("enospc/json", plan, code, out,
                  base["slow"][0], base["slow"][1])
    # The text rendering must surface the degradation it absorbed.
    code, out, _ = run([cacval, "check", racy] + SLOW_ARGS
                       + ["--spill-dir", d, "--store-budget", "1"], plan)
    if "spill tier degraded" not in out:
        fail("enospc/text: degradation not reported", out)
    print("enospc: resident-only degradation, verdict byte-identical")

    # -- 7. SIGKILL the server mid-stream ------------------------------
    d = fresh("kill")
    sock = os.path.join(d, "sock")
    state = os.path.join(d, "state")
    server = start_server(cacval, sock, state)
    client = subprocess.Popen(
        [cacval, "submit", "check", racy] + SLOW_ARGS
        + ["--to", sock, "--timeout", "15000", "--retries", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    # Let the job journal and start, then kill without any cleanup.
    deadline = time.time() + 60
    jobs = os.path.join(state, "jobs")
    while time.time() < deadline:
        if os.path.isdir(jobs) and any(
                e.endswith(".req.json") for e in os.listdir(jobs)):
            break
        time.sleep(0.02)
    else:
        fail("kill: job was never journaled")
    server.kill()
    server.wait()
    try:
        out, err = client.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        client.kill()
        fail("kill: client hung after server death (watchdog)")
    if client.returncode != 5:
        fail("kill: client exit %d, want the typed retryable 5"
             % client.returncode, out + err)
    print("kill: mid-stream death -> typed retryable exit 5")

    # Reconnect-and-reattach: the restarted server recovers the journal
    # and the resubmission lands on the baseline bytes.
    server = start_server(cacval, sock, state)
    code, out, err = run([cacval, "submit", "check", racy] + SLOW_ARGS
                         + ["--to", sock])
    if code != base["slow"][0]:
        fail("kill: post-restart exit %d != baseline" % code, out + err)
    if out != base["slow"][1]:
        fail("kill: post-restart verdict not byte-identical")
    stop_server(server)
    print("kill: restart re-attached the journaled job, byte-identical")

    print("chaos: %d fault plans exercised" % plans_run)
    if plans_run < 50:
        fail("fewer than 50 fault plans exercised (%d)" % plans_run)
    shutil.rmtree(tmp, ignore_errors=True)
    print("DRILL PASS")


if __name__ == "__main__":
    main()
