#!/bin/sh
# Scaling sweep for the exploration engines: runs the in-process
# parallel bench and the distributed fleet bench at 1/2/4/8 workers
# (capped at the host's core count) and snapshots everything into one
# BENCH_explore.json via bench_to_json.py.
#
# Speedup numbers are only meaningful when the workers actually get
# their own cores, so this script refuses to run on a single-core
# host rather than publish misleading "scaling" figures.
#
# Usage: tools/run_scaling_bench.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR defaults to ./build, OUT_JSON to ./BENCH_explore.json.

set -eu

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_explore.json}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cores="$( (nproc || getconf _NPROCESSORS_ONLN || sysctl -n hw.ncpu) \
  2>/dev/null | head -n1 )"
case "$cores" in
  ''|*[!0-9]*)
    echo "run_scaling_bench: cannot determine core count" \
         "(tried nproc, getconf, sysctl)" >&2
    exit 1
    ;;
esac

if [ "$cores" -lt 2 ]; then
  echo "run_scaling_bench: refusing to run on a ${cores}-core host." >&2
  echo "  A scaling sweep measures how exploration speeds up as workers" >&2
  echo "  spread across cores; with one core every configuration time-" >&2
  echo "  slices the same CPU and the numbers would be pure scheduling" >&2
  echo "  noise presented as scaling data.  Re-run on a multi-core" >&2
  echo "  machine, or use tools/bench_to_json.py directly for the" >&2
  echo "  single-core cost model (overhead, skew, message volume)." >&2
  exit 1
fi

PAR_BENCH="$BUILD_DIR/bench/bench_parallel_explore"
DIST_BENCH="$BUILD_DIR/bench/bench_dist_explore"
for bin in "$PAR_BENCH" "$DIST_BENCH"; do
  if [ ! -x "$bin" ]; then
    echo "run_scaling_bench: $bin not found or not executable —" \
         "build first (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

# Worker counts: 1/2/4/8, capped at the core count — oversubscribed
# points are the same scheduling noise the single-core refusal avoids.
sweep=""
for n in 1 2 4 8; do
  [ "$n" -le "$cores" ] && sweep="$sweep $n"
done
echo "run_scaling_bench: $cores cores, sweeping worker counts:$sweep"

# Both benches already enumerate the sweep points as benchmark args;
# filter to the configurations inside the core budget (serial baseline
# workers:0 / threads:0 always included so speedups can be derived).
filter="(workers|threads):(0"
for n in $sweep; do filter="$filter|$n"; done
filter="$filter)/"

exec python3 "$REPO_ROOT/tools/bench_to_json.py" \
  --binary "$PAR_BENCH" \
  --binary "$DIST_BENCH" \
  --filter "$filter" \
  --out "$OUT_JSON"
