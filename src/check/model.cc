#include "check/model.h"

namespace cac::check {

namespace {

Verdict from_exploration(sched::ExploreResult&& ex, const Spec& post,
                         const ModelCheckOptions& opts) {
  Verdict v;
  v.exploration = std::move(ex);
  const sched::ExploreResult& e = v.exploration;

  if (!e.violations.empty()) {
    const sched::Violation& viol = e.violations.front();
    if (viol.kind == sched::Violation::Kind::DepthExceeded) {
      v.kind = Verdict::Kind::Unknown;
      v.detail = "exploration depth bound hit: " + viol.message;
      return v;
    }
    v.kind = Verdict::Kind::Refuted;
    v.detail = to_string(viol.kind) + ": " + viol.message;
    v.counterexample = viol.trace;
    return v;
  }
  if (!e.exhaustive) {
    v.kind = Verdict::Kind::Unknown;
    v.detail = "exploration limits hit after " +
               std::to_string(e.states_visited) + " states";
    if (e.limit_hit != sched::ExploreResult::Limit::None) {
      v.detail += " (limit tripped: " + sched::to_string(e.limit_hit) + ")";
    }
    return v;
  }
  if (e.final_ids.empty()) {
    v.kind = Verdict::Kind::Refuted;
    v.detail = "no schedule reaches a terminated grid";
    return v;
  }
  for (const sched::StateId id : e.final_ids) {
    const sem::Machine final = e.store->materialize(id);
    const auto failures = post.eval(final);
    if (!failures.empty()) {
      v.kind = Verdict::Kind::Refuted;
      v.detail = "postcondition violated: " + failures.front().description;
      return v;
    }
  }
  if (opts.require_schedule_independence && e.final_ids.size() != 1) {
    v.kind = Verdict::Kind::Refuted;
    v.detail = "schedule-dependent result: " +
               std::to_string(e.final_ids.size()) +
               " distinct terminal states";
    return v;
  }
  if (opts.expect_exact_steps != 0 &&
      (e.min_steps_to_termination != opts.expect_exact_steps ||
       e.max_steps_to_termination != opts.expect_exact_steps)) {
    v.kind = Verdict::Kind::Refuted;
    v.detail = "termination in [" +
               std::to_string(e.min_steps_to_termination) + ", " +
               std::to_string(e.max_steps_to_termination) +
               "] steps, expected exactly " +
               std::to_string(opts.expect_exact_steps);
    return v;
  }
  v.kind = Verdict::Kind::Proved;
  v.detail = "all " + std::to_string(e.states_visited) +
             " reachable states checked; " +
             std::to_string(e.final_ids.size()) + " terminal state(s)";
  return v;
}

}  // namespace

Verdict prove_total(const ptx::Program& prg, const sem::KernelConfig& kc,
                    const sem::Machine& initial, const Spec& post,
                    const ModelCheckOptions& opts) {
  if (opts.explorer) {
    return from_exploration(opts.explorer(prg, kc, initial, opts.explore),
                            post, opts);
  }
  return from_exploration(
      sched::explore(prg, kc, initial, opts.explore, opts.resume), post,
      opts);
}

Verdict prove_termination(const ptx::Program& prg,
                          const sem::KernelConfig& kc,
                          const sem::Machine& initial,
                          const ModelCheckOptions& opts) {
  return prove_total(prg, kc, initial, Spec{}, opts);
}

std::string to_string(Verdict::Kind k) {
  switch (k) {
    case Verdict::Kind::Proved: return "proved";
    case Verdict::Kind::Refuted: return "refuted";
    case Verdict::Kind::Unknown: return "unknown";
  }
  return "?";
}

}  // namespace cac::check
