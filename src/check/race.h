// Dynamic data-race detection over the formal semantics.
//
// The paper positions machine validation as the step *after* heuristic
// race detectors (GRace, HAccRG, LDetector — its refs [12][13][15])
// have cleaned out demonstrable bugs (§I).  This module supplies that
// first step inside the same framework: the trusted kernel logs every
// Global/Shared access (sem::StepEvents::Access), and the detector
// applies the CUDA synchronization model to flag conflicting pairs:
//
//  * accesses from different *blocks* conflict unless both are atomic
//    (no grid-level synchronization exists, paper §III-10);
//  * accesses from different warps of one block conflict unless they
//    are separated by a bar.sync (tracked as per-block barrier epochs)
//    or both atomic;
//  * accesses from the same warp are program-ordered by lock-step
//    execution and never flagged (paper §III-8); same-instruction
//    lane conflicts are reported separately by the semantics itself
//    (StepEvents::store_conflicts).
//
// The detector observes one concrete schedule; combine with
// sched::explore / check::transparency for all-schedule guarantees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace cac::check {

struct RaceReport {
  struct Race {
    ptx::Space space;
    std::uint64_t addr;       // effective flat address
    std::uint32_t tid_a, tid_b;
    bool write_write;         // false: read-write
    bool cross_block;
  };
  std::vector<Race> races;            // deduplicated, capped
  std::uint64_t accesses_logged = 0;
  std::uint64_t bytes_touched = 0;
  sched::RunResult run;               // the underlying execution

  [[nodiscard]] bool racy() const { return !races.empty(); }
  [[nodiscard]] std::string summary() const;
};

struct RaceOptions {
  std::uint64_t max_steps = 1u << 20;
  std::size_t max_races = 64;  // reporting cap
  sem::ThreadOrder order;
};

/// Run the kernel once under `sched`, logging all accesses, and report
/// conflicting pairs per the model above.  `m` is mutated to the final
/// state, exactly as sched::run would.
RaceReport detect_races(const ptx::Program& prg, const sem::KernelConfig& kc,
                        sem::Machine& m, sched::Scheduler& sched,
                        const RaceOptions& opts = {});

}  // namespace cac::check
