#include "check/transparency.h"

#include "sched/scheduler.h"

namespace cac::check {

TransparencyResult check_scheduler_transparency(
    const ptx::Program& prg, const sem::KernelConfig& kc,
    const sem::Machine& initial, const sched::ExploreOptions& opts) {
  TransparencyResult result;

  // The deterministic witness run.
  sem::Machine det = initial;
  sched::FirstChoiceScheduler first;
  const sched::RunResult dr =
      sched::run(prg, kc, det, first, opts.max_depth, opts.step_opts);
  result.det_steps = dr.steps;
  if (!dr.terminated()) {
    result.detail = "deterministic schedule did not terminate: " +
                    to_string(dr.status) +
                    (dr.message.empty() ? "" : " (" + dr.message + ")");
    return result;
  }

  // Every schedule.
  result.exploration = sched::explore(prg, kc, initial, opts);
  result.schedules_states = result.exploration.states_visited;
  if (!result.exploration.violations.empty()) {
    const auto& v = result.exploration.violations.front();
    result.detail = "a schedule fails: " + to_string(v.kind) + ": " +
                    v.message;
    return result;
  }
  if (!result.exploration.exhaustive) {
    result.detail = "exploration limits hit; transparency undecided";
    return result;
  }
  if (result.exploration.final_ids.size() != 1) {
    result.detail = "schedule-dependent result: " +
                    std::to_string(result.exploration.final_ids.size()) +
                    " distinct terminal states";
    return result;
  }
  const sem::Machine sole = result.exploration.store->materialize(
      result.exploration.final_ids.front());
  if (!(sole == det)) {
    result.detail =
        "nondeterministic terminal state differs from the deterministic one";
    return result;
  }
  result.holds = true;
  result.detail = "deterministic result is the unique result of all " +
                  std::to_string(result.exploration.states_visited) +
                  "-state schedules";
  return result;
}

}  // namespace cac::check
