// The scheduler-transparency theorem (paper §I, §IV): correctness of a
// computation under a deterministic scheduler implies correctness
// under a nondeterministic scheduler.
//
// The paper's mechanized proof lets all later proofs consider only a
// sequential schedule.  For a finite configuration the theorem is the
// statement "the deterministic run's final state is the unique final
// state over all schedules", which this checker decides by running the
// deterministic scheduler and exhaustively exploring every schedule:
//
//   holds  <=>  exploration is exhaustive, violation-free, and
//               finals == { deterministic final }.
//
// When it holds, any property checked on the deterministic run is
// thereby proved for every scheduler — exactly how the paper uses the
// theorem to discharge nondeterminism from proofs.
#pragma once

#include <cstdint>
#include <string>

#include "sched/explore.h"

namespace cac::check {

struct TransparencyResult {
  bool holds = false;
  std::string detail;
  std::uint64_t schedules_states = 0;   // states in the schedule graph
  std::uint64_t det_steps = 0;          // deterministic schedule length
  sched::ExploreResult exploration;
};

TransparencyResult check_scheduler_transparency(
    const ptx::Program& prg, const sem::KernelConfig& kc,
    const sem::Machine& initial, const sched::ExploreOptions& opts = {});

}  // namespace cac::check
