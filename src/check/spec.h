// Specifications: machine-checkable claims about final machine states.
//
// The paper states correctness as Coq propositions over the final
// (grid, memory) pair — e.g. "A + B = C" for the vector sum (§IV).
// A Spec is the executable counterpart: a conjunction of named clauses
// evaluated on a final machine state.  The model checker (model.h)
// proves a Spec by evaluating it on *every* reachable final state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sem/state.h"

namespace cac::check {

/// One named predicate over a final machine state.
struct Clause {
  std::string description;
  std::function<bool(const sem::Machine&)> pred;
};

struct ClauseFailure {
  std::string description;  // of the violated clause
};

class Spec {
 public:
  /// Add an arbitrary predicate clause.
  Spec& require(std::string description,
                std::function<bool(const sem::Machine&)> pred);

  // --- convenience builders for common memory claims ---

  /// The 32-bit little-endian word at `addr` equals `expected`.
  Spec& mem_u32(ptx::Space ss, std::uint64_t addr, std::uint32_t expected);

  /// The byte at `addr` equals `expected`.
  Spec& mem_u8(ptx::Space ss, std::uint64_t addr, std::uint8_t expected);

  /// Every byte of the range carries a set valid bit — the
  /// synchronization claim the paper's valid-bit discipline supports.
  Spec& mem_valid(ptx::Space ss, std::uint64_t addr, std::uint32_t len);

  /// Evaluate all clauses; returns the violated ones (empty == holds).
  [[nodiscard]] std::vector<ClauseFailure> eval(const sem::Machine& m) const;

  [[nodiscard]] std::size_t size() const { return clauses_.size(); }
  [[nodiscard]] const std::vector<Clause>& clauses() const { return clauses_; }

 private:
  std::vector<Clause> clauses_;
};

}  // namespace cac::check
