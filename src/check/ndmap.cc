#include "check/ndmap.h"

#include <algorithm>
#include <numeric>

#include "check/lane_order.h"
#include "sched/scheduler.h"

namespace cac::check {

LaneOrderResult check_lane_order_independence(const ptx::Program& prg,
                                              const sem::KernelConfig& kc,
                                              const sem::Machine& initial,
                                              std::size_t max_orders) {
  LaneOrderResult result;

  std::vector<std::uint32_t> perm(kc.warp_size);
  std::iota(perm.begin(), perm.end(), 0);

  std::optional<sem::Machine> reference;
  bool any_conflicts = false;
  do {
    sem::Machine m = initial;
    sem::StepOptions opts;
    opts.order.kind = sem::ThreadOrder::Kind::Permuted;
    opts.order.perm = perm;
    sched::FirstChoiceScheduler s;
    const sched::RunResult r = sched::run(prg, kc, m, s, 1u << 20, opts);
    ++result.orders_tried;
    if (!r.terminated()) {
      result.independent = false;
      result.detail = "run did not terminate under a lane order: " +
                      to_string(r.status);
      return result;
    }
    any_conflicts |= !r.events.store_conflicts.empty();
    if (!reference) {
      reference = std::move(m);
    } else if (!(m == *reference)) {
      result.independent = false;
      result.detail =
          "lane order changed the final state (intra-warp store race)";
      result.had_store_conflicts = any_conflicts;
      return result;
    }
  } while (result.orders_tried < max_orders &&
           std::next_permutation(perm.begin(), perm.end()));

  result.independent = true;
  result.had_store_conflicts = any_conflicts;
  result.detail = "all " + std::to_string(result.orders_tried) +
                  " lane orders agree";
  return result;
}

}  // namespace cac::check
