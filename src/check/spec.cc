#include "check/spec.h"

namespace cac::check {

Spec& Spec::require(std::string description,
                    std::function<bool(const sem::Machine&)> pred) {
  clauses_.push_back({std::move(description), std::move(pred)});
  return *this;
}

Spec& Spec::mem_u32(ptx::Space ss, std::uint64_t addr,
                    std::uint32_t expected) {
  return require(
      ptx::to_string(ss) + "[" + std::to_string(addr) + "..+4] == " +
          std::to_string(expected),
      [=](const sem::Machine& m) {
        return m.memory.in_bounds(ss, addr, 4) &&
               m.memory.load(ss, addr, 4) == expected;
      });
}

Spec& Spec::mem_u8(ptx::Space ss, std::uint64_t addr, std::uint8_t expected) {
  return require(
      ptx::to_string(ss) + "[" + std::to_string(addr) + "] == " +
          std::to_string(expected),
      [=](const sem::Machine& m) {
        return m.memory.in_bounds(ss, addr, 1) &&
               m.memory.load(ss, addr, 1) == expected;
      });
}

Spec& Spec::mem_valid(ptx::Space ss, std::uint64_t addr, std::uint32_t len) {
  return require(
      ptx::to_string(ss) + "[" + std::to_string(addr) + "..+" +
          std::to_string(len) + "] valid",
      [=](const sem::Machine& m) {
        return m.memory.in_bounds(ss, addr, len) &&
               m.memory.all_valid(ss, addr, len);
      });
}

std::vector<ClauseFailure> Spec::eval(const sem::Machine& m) const {
  std::vector<ClauseFailure> failures;
  for (const Clause& c : clauses_) {
    if (!c.pred(m)) failures.push_back({c.description});
  }
  return failures;
}

}  // namespace cac::check
