#include "check/race.h"

#include <map>
#include <set>

namespace cac::check {

namespace {

struct TaggedAccess {
  sem::StepEvents::Access access;
  std::uint32_t block = 0;
  std::uint32_t warp = 0;
  std::uint32_t epoch = 0;  // per-block barrier epoch
};

bool conflicting(const TaggedAccess& x, const TaggedAccess& y) {
  if (x.access.tid == y.access.tid) return false;
  if (!x.access.write && !y.access.write) return false;
  if (x.access.atomic && y.access.atomic) return false;
  if (x.block != y.block) return true;  // no grid-level sync exists
  if (x.warp == y.warp) return false;   // lock-step program order
  return x.epoch == y.epoch;            // no barrier between them
}

}  // namespace

std::string RaceReport::summary() const {
  if (races.empty()) {
    return "no races over " + std::to_string(accesses_logged) +
           " logged accesses";
  }
  std::string out = std::to_string(races.size()) + " race(s); first: ";
  const Race& r = races.front();
  out += std::string(r.write_write ? "write-write" : "read-write") + " on " +
         ptx::to_string(r.space) + "[" + std::to_string(r.addr) +
         "] between threads " + std::to_string(r.tid_a) + " and " +
         std::to_string(r.tid_b) +
         (r.cross_block ? " (different blocks)" : " (same block)");
  return out;
}

RaceReport detect_races(const ptx::Program& prg, const sem::KernelConfig& kc,
                        sem::Machine& m, sched::Scheduler& sched,
                        const RaceOptions& opts) {
  RaceReport report;
  std::vector<TaggedAccess> log;
  std::vector<std::uint32_t> epoch(m.grid.blocks.size(), 0);

  sem::StepOptions step_opts;
  step_opts.order = opts.order;
  step_opts.log_accesses = true;

  sem::StepEvents events;
  for (std::uint64_t step = 0; step < opts.max_steps; ++step) {
    if (sem::terminated(prg, m.grid)) {
      report.run.status = sched::RunResult::Status::Terminated;
      report.run.steps = step;
      break;
    }
    const auto eligible = sem::eligible_choices(prg, m.grid);
    if (eligible.empty()) {
      report.run.status = sched::RunResult::Status::Stuck;
      report.run.steps = step;
      report.run.message = sem::stuck_reason(prg, m.grid);
      break;
    }
    const sem::Choice c = sched.pick(eligible, m);
    report.run.trace.push_back(c);
    events.clear();
    const sem::StepResult sr =
        sem::apply_choice(prg, kc, m, c, step_opts, &events);
    if (c.kind == sem::Choice::Kind::LiftBar) {
      ++epoch[c.block];
    } else {
      for (const auto& a : events.accesses) {
        log.push_back({a, c.block, c.warp, epoch[c.block]});
      }
    }
    if (!sr.ok()) {
      report.run.status = sched::RunResult::Status::Fault;
      report.run.steps = step + 1;
      report.run.message = sr.fault;
      break;
    }
  }
  report.accesses_logged = log.size();

  // Bucket access indices by touched byte.
  std::map<std::pair<ptx::Space, std::uint64_t>, std::vector<std::size_t>>
      by_byte;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& a = log[i].access;
    for (std::uint32_t b = 0; b < a.len; ++b) {
      by_byte[{a.space, a.addr + b}].push_back(i);
    }
  }
  report.bytes_touched = by_byte.size();

  std::set<std::tuple<ptx::Space, std::uint64_t, std::uint32_t,
                      std::uint32_t>>
      seen;
  for (const auto& [key, indices] : by_byte) {
    for (std::size_t i = 0;
         i < indices.size() && report.races.size() < opts.max_races; ++i) {
      for (std::size_t j = i + 1; j < indices.size(); ++j) {
        const TaggedAccess& x = log[indices[i]];
        const TaggedAccess& y = log[indices[j]];
        if (!conflicting(x, y)) continue;
        const std::uint32_t lo = std::min(x.access.tid, y.access.tid);
        const std::uint32_t hi = std::max(x.access.tid, y.access.tid);
        if (!seen.insert({key.first, key.second, lo, hi}).second) continue;
        report.races.push_back({key.first, key.second, lo, hi,
                                x.access.write && y.access.write,
                                x.block != y.block});
        if (report.races.size() >= opts.max_races) break;
      }
    }
  }
  return report;
}

}  // namespace cac::check
