#include "check/validate.h"

#include "sched/scheduler.h"

namespace cac::check {

bool ValidationReport::all_passed() const {
  bool ok = model.proved();
  if (options_used.check_races) ok = ok && !races.racy();
  if (options_used.check_transparency) ok = ok && transparency.holds;
  if (options_used.check_lane_order) ok = ok && lane_order.independent;
  return ok;
}

std::string ValidationReport::text() const {
  std::string out;
  auto line = [&](const char* name, bool pass, const std::string& detail) {
    out += std::string(pass ? "[PASS] " : "[FAIL] ") + name + ": " + detail +
           "\n";
  };
  if (options_used.collect_profile) {
    out += "--- profile (deterministic schedule) ---\n" + profile.table();
  }
  if (options_used.check_races) {
    line("race-freedom", !races.racy(), races.summary());
  }
  line("model-check", model.proved(),
       to_string(model.kind) + ": " + model.detail);
  if (options_used.check_transparency) {
    line("scheduler-transparency", transparency.holds, transparency.detail);
  }
  if (options_used.check_lane_order) {
    line("lane-order-independence", lane_order.independent,
         lane_order.detail);
  }
  out += all_passed() ? "VERDICT: validated\n" : "VERDICT: NOT validated\n";
  return out;
}

ValidationReport validate(const ptx::Program& prg,
                          const sem::KernelConfig& kc,
                          const sem::Machine& initial, const Spec& post,
                          const ValidateOptions& opts) {
  ValidationReport report;
  report.options_used = opts;

  if (opts.collect_profile) {
    sem::Machine m = initial;
    sched::FirstChoiceScheduler s;
    report.profile =
        profile_run(prg, kc, m, s, opts.model.explore.max_depth);
  }
  if (opts.check_races) {
    sem::Machine m = initial;
    sched::RoundRobinScheduler s;
    RaceOptions ropts;
    ropts.max_steps = opts.model.explore.max_depth;
    report.races = detect_races(prg, kc, m, s, ropts);
  }
  report.model = prove_total(prg, kc, initial, post, opts.model);
  if (opts.check_transparency) {
    report.transparency =
        check_scheduler_transparency(prg, kc, initial, opts.model.explore);
  }
  if (opts.check_lane_order) {
    report.lane_order =
        check_lane_order_independence(prg, kc, initial, opts.lane_orders);
  }
  return report;
}

}  // namespace cac::check
