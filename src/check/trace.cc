#include "check/trace.h"

#include <algorithm>

namespace cac::check {

ReplayResult replay(const ptx::Program& prg, const sem::KernelConfig& kc,
                    const sem::Machine& initial,
                    const std::vector<sem::Choice>& trace,
                    const sem::StepOptions& opts) {
  ReplayResult result;
  result.final = initial;

  for (const sem::Choice& c : trace) {
    // Independent applicability check: the choice must be among the
    // rule instances the kernel itself enumerates for this state.
    const auto eligible = sem::eligible_choices(prg, result.final.grid);
    if (std::find(eligible.begin(), eligible.end(), c) == eligible.end()) {
      result.error = "step " + std::to_string(result.steps_replayed) +
                     ": choice " + sem::to_string(c) +
                     " is not applicable in this state";
      return result;
    }
    sem::StepEvents ev;
    const sem::StepResult sr =
        sem::apply_choice(prg, kc, result.final, c, opts, &ev);
    ++result.steps_replayed;
    result.events.invalid_reads.insert(result.events.invalid_reads.end(),
                                       ev.invalid_reads.begin(),
                                       ev.invalid_reads.end());
    result.events.store_conflicts.insert(result.events.store_conflicts.end(),
                                         ev.store_conflicts.begin(),
                                         ev.store_conflicts.end());
    result.events.uninit_reads.insert(result.events.uninit_reads.end(),
                                      ev.uninit_reads.begin(),
                                      ev.uninit_reads.end());
    if (!sr.ok()) {
      // A fault mid-trace is valid replay evidence if and only if it
      // is the trace's last step (a fault counterexample).
      result.faulted = true;
      result.fault = sr.fault;
      result.valid = (&c == &trace.back());
      if (!result.valid) {
        result.error = "step " + std::to_string(result.steps_replayed - 1) +
                       " faulted before the end of the trace: " + sr.fault;
      }
      return result;
    }
  }
  result.valid = true;
  result.final_terminated = sem::terminated(prg, result.final.grid);
  result.final_stuck = sem::is_stuck(prg, result.final.grid);
  return result;
}

}  // namespace cac::check
