// The paper's nd_map development (Listings 5 & 6) in executable form.
//
// Listing 5 defines:
//
//   nth_ri n l a l'   — removing the element a at position n from l
//                       leaves l'  (an inductive relation)
//   nd_map f l l'     — l' is f mapped over l with the elements
//                       *processed in an arbitrary order*: each step
//                       removes some position n from the remaining
//                       input and requires f(a) to sit at the same
//                       position n of the output.
//
// nd_map captures all possible warp-internal thread schedules: threads
// execute in lock-step but in an unspecified order (§IV).  Listing 6's
// theorem nd_map_eq states
//
//   nd_map f l l'  <->  l' = map f l
//
// i.e. the processing order can never change the result.  The paper
// proves it by dependent induction; here the same statement over a
// concrete list is a finite conjunction over all n! removal orders,
// which check_nd_map_eq enumerates and checks — and the -> direction
// for arbitrary lists is exercised property-style by the test suite.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace cac::check {

/// nth_ri as a function: remove position n from l, returning the
/// removed element and the remainder; nullopt when n is out of range.
template <typename A>
std::optional<std::pair<A, std::vector<A>>> nth_ri(
    std::size_t n, const std::vector<A>& l) {
  if (n >= l.size()) return std::nullopt;
  std::vector<A> rest;
  rest.reserve(l.size() - 1);
  for (std::size_t i = 0; i < l.size(); ++i) {
    if (i != n) rest.push_back(l[i]);
  }
  return std::make_pair(l[n], std::move(rest));
}

/// Relational form of nth_ri: does removing position n from l yield
/// element a and remainder rest?  (Listing 5's inductive definition,
/// decided by structural recursion.)
template <typename A>
bool nth_ri_related(std::size_t n, const std::vector<A>& l, const A& a,
                    const std::vector<A>& rest) {
  const auto r = nth_ri(n, l);
  return r && r->first == a && r->second == rest;
}

/// Decide the nd_map relation: is there a derivation of nd_map f l l'?
/// Mirrors Listing 5's NDNil/NDCons constructors: try every removal
/// position n, require f(a) at position n of l', recurse.
template <typename A, typename B>
bool nd_map_related(const std::function<B(const A&)>& f,
                    const std::vector<A>& l, const std::vector<B>& lp) {
  if (l.empty()) return lp.empty();  // NDNil
  if (lp.size() != l.size()) return false;
  for (std::size_t n = 0; n < l.size(); ++n) {  // NDCons
    const auto in = nth_ri(n, l);
    const auto out = nth_ri(n, lp);
    if (!in || !out) continue;
    if (!(out->first == f(in->first))) continue;
    if (nd_map_related(f, in->second, out->second)) return true;
  }
  return false;
}

/// Exhaustively enumerate *all* nd_map derivations for input l and
/// verify each one's output equals map f l — the paper's nd_map_eq
/// theorem as a finite check.  `derivations` counts the removal orders
/// explored (n! for a length-n list).
struct NdMapEqResult {
  bool holds = false;
  std::uint64_t derivations = 0;
};

template <typename A, typename B>
NdMapEqResult check_nd_map_eq(const std::function<B(const A&)>& f,
                              const std::vector<A>& l) {
  NdMapEqResult result;
  result.holds = true;

  // A derivation NDCons(n, ...) produces output = insert(f(a), n, sub)
  // where (a, rest) = nth_ri(n, in) and sub is a derivation output for
  // rest.  Hence "output == map f in" decomposes into
  //   f(a) == (map f in)[n]   and   sub == map f rest,
  // which is exactly the induction of the paper's Listing 6; this
  // recursion executes it over every removal order, counting the
  // derivations (n! for a length-n input).
  std::function<std::uint64_t(const std::vector<A>&, const std::vector<B>&)>
      go = [&](const std::vector<A>& in,
               const std::vector<B>& expected) -> std::uint64_t {
    if (in.empty()) return 1;  // NDNil
    std::uint64_t count = 0;
    for (std::size_t n = 0; n < in.size(); ++n) {
      const auto r = nth_ri(n, in);
      const auto e = nth_ri(n, expected);
      if (!(f(r->first) == e->first)) result.holds = false;
      count += go(r->second, e->second);
    }
    return count;
  };

  std::vector<B> expected;
  expected.reserve(l.size());
  for (const A& a : l) expected.push_back(f(a));
  result.derivations = go(l, expected);
  return result;
}

}  // namespace cac::check
