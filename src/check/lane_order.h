// Warp-internal lane-order independence — the *semantic* content of
// the paper's nd_map theorem (§IV): threads of a warp execute each
// instruction in lock-step but in an unspecified order, and a correct
// computation's result must not depend on that order.
//
// check_lane_order_independence runs the full computation once per
// lane-order permutation (up to `max_orders` of the warp_size! many)
// and compares the final machines structurally.  A mismatch is a
// concrete intra-warp race; `had_store_conflicts` reports whether the
// semantics also flagged same-instruction conflicting stores, which is
// the static symptom of the same bug.
#pragma once

#include <cstddef>
#include <string>

#include "ptx/program.h"
#include "sem/state.h"

namespace cac::check {

struct LaneOrderResult {
  bool independent = false;
  std::size_t orders_tried = 0;
  bool had_store_conflicts = false;
  std::string detail;
};

LaneOrderResult check_lane_order_independence(const ptx::Program& prg,
                                              const sem::KernelConfig& kc,
                                              const sem::Machine& initial,
                                              std::size_t max_orders = 24);

}  // namespace cac::check
