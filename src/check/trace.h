// Derivation-trace replay: keeping untrusted tools out of the TCB.
//
// The paper stresses that its Ltac symbolic interpreter "comes without
// any additions to the TCB, since the tactics merely automate the
// application of the operational semantics rules" (§IV).  The same
// architecture here: the explorer, model checker and symbolic engine
// are untrusted, but anything they claim is accompanied by a schedule
// trace (a list of Fig. 3 choices) that this module replays step by
// step through the trusted kernel (sem::apply_choice), re-checking at
// each step that the chosen rule instance was actually applicable.
//
// A verified counterexample trace is therefore evidence independent of
// the tool that found it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sem/step.h"

namespace cac::check {

struct ReplayResult {
  /// True iff every choice in the trace was an applicable rule
  /// instance and no step faulted unexpectedly.
  bool valid = false;
  std::string error;           // first divergence from validity
  std::uint64_t steps_replayed = 0;
  sem::Machine final;          // machine after the trace (or at failure)
  bool final_terminated = false;
  bool final_stuck = false;
  bool faulted = false;        // the last step faulted (a fault
                               // counterexample replays as valid)
  std::string fault;
  sem::StepEvents events;      // accumulated diagnostics
};

/// Replay `trace` from `initial` through the trusted kernel.
ReplayResult replay(const ptx::Program& prg, const sem::KernelConfig& kc,
                    const sem::Machine& initial,
                    const std::vector<sem::Choice>& trace,
                    const sem::StepOptions& opts = {});

}  // namespace cac::check
