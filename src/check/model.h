// The model checker: finite-configuration proofs of the paper's
// theorem shapes.
//
// The paper's Listing 3 proves
//
//   forall g' mu', n_apply 19 (grid_t add_vector kc) (g,mu) (g',mu')
//                  -> terminated add_vector g'
//
// i.e. *every* 19-step schedule ends in a terminated grid; partial
// correctness adds a predicate over mu'.  For a concrete kc these are
// statements about a finite transition system, so exhaustive
// exploration decides them.  `prove_total` checks:
//
//   1. every schedule terminates (no stuck state, fault, or cycle),
//   2. every terminal state satisfies the postcondition,
//   3. optionally: all schedules reach the *same* terminal state and/or
//      take exactly the expected number of steps (the paper's 19).
//
// The verdict carries a replayable counterexample trace on refutation;
// the trace can be independently re-validated against the trusted
// kernel with check/trace.h, so a bug in the explorer cannot produce a
// false "Refuted" either.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "check/spec.h"
#include "sched/explore.h"

namespace cac::check {

struct ModelCheckOptions {
  sched::ExploreOptions explore;
  /// Require all terminal states to be identical (schedule
  /// independence) in addition to the postcondition.
  bool require_schedule_independence = false;
  /// If nonzero, require every terminating schedule to take exactly
  /// this many grid steps (the paper's n_apply bound).
  std::uint64_t expect_exact_steps = 0;
  /// Resume exploration from a checkpoint (sched/checkpoint.h) written
  /// by an earlier budget-stopped or interrupted run.  Not owned; must
  /// outlive the call.  The resumed run must use the same program,
  /// kernel configuration, and exploration policy.
  const sched::Checkpoint* resume = nullptr;
  /// Alternative exploration engine (e.g. the distributed coordinator,
  /// dist/coordinator.h).  When set it replaces sched::explore; the
  /// supplied engine must produce verdict-equivalent ExploreResults.
  /// `resume` is ignored — engines carry their own resume plumbing.
  using explorer_type = std::function<sched::ExploreResult(
      const ptx::Program&, const sem::KernelConfig&, const sem::Machine&,
      const sched::ExploreOptions&)>;
  explorer_type explorer;
};

struct Verdict {
  enum class Kind : std::uint8_t {
    Proved,   // exhaustively checked, no violation
    Refuted,  // a concrete counterexample schedule exists
    Unknown,  // exploration limits were hit
  };
  Kind kind = Verdict::Kind::Unknown;
  std::string detail;
  /// Schedule reaching the violation (Refuted only); replayable via
  /// check/trace.h.
  std::vector<sem::Choice> counterexample;
  /// Exploration statistics (states, transitions, step bounds).
  sched::ExploreResult exploration;

  [[nodiscard]] bool proved() const { return kind == Kind::Proved; }
};

/// Prove termination + postcondition over all schedules (total
/// correctness, paper §IV).
Verdict prove_total(const ptx::Program& prg, const sem::KernelConfig& kc,
                    const sem::Machine& initial, const Spec& post,
                    const ModelCheckOptions& opts = {});

/// Prove termination only (the paper's add_vector_terminates).
Verdict prove_termination(const ptx::Program& prg,
                          const sem::KernelConfig& kc,
                          const sem::Machine& initial,
                          const ModelCheckOptions& opts = {});

std::string to_string(Verdict::Kind k);

}  // namespace cac::check
