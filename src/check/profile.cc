#include "check/profile.h"

#include <algorithm>

namespace cac::check {

namespace {

const char* kVariantNames[] = {
    "nop", "bop", "top", "uop",  "mov",  "ld",  "st",  "bra",
    "setp", "pbra", "selp", "sync", "bar", "exit", "atom", "vote", "shfl",
};
static_assert(std::size(kVariantNames) == std::variant_size_v<ptx::Instr>);

}  // namespace

std::string Profile::table() const {
  std::string out;
  out += "grid steps          " + std::to_string(grid_steps) + "\n";
  out += "barrier lifts       " + std::to_string(barrier_lifts) + "\n";
  out += "divergence events   " + std::to_string(divergence_events) + "\n";
  out += "sync applications   " + std::to_string(sync_steps) + "\n";
  out += "max warp leaves     " + std::to_string(max_leaf_count) + "\n";
  out += "max tree depth      " + std::to_string(max_tree_depth) + "\n";
  out += "instruction mix    ";
  for (std::size_t k = 0; k < instr_counts.size(); ++k) {
    if (instr_counts[k]) {
      out += " " + std::string(kVariantNames[k]) + ":" +
             std::to_string(instr_counts[k]);
    }
  }
  out += "\n";
  out += "lanes: ld " + std::to_string(load_lanes) + ", st " +
         std::to_string(store_lanes) + ", atom " +
         std::to_string(atomic_lanes) + "\n";
  out += "bytes: global " + std::to_string(global_bytes) + ", shared " +
         std::to_string(shared_bytes) + "\n";
  out += "diagnostics: invalid-reads " + std::to_string(invalid_reads) +
         ", lane-conflicts " + std::to_string(store_conflicts) +
         ", uninit-reads " + std::to_string(uninit_reads) + "\n";
  return out;
}

Profile profile_run(const ptx::Program& prg, const sem::KernelConfig& kc,
                    sem::Machine& m, sched::Scheduler& sched,
                    std::uint64_t max_steps) {
  Profile p;
  sem::StepOptions opts;
  opts.log_accesses = true;
  sem::StepEvents events;

  for (std::uint64_t step = 0; step < max_steps; ++step) {
    if (sem::terminated(prg, m.grid)) {
      p.run.status = sched::RunResult::Status::Terminated;
      p.run.steps = step;
      return p;
    }
    const auto eligible = sem::eligible_choices(prg, m.grid);
    if (eligible.empty()) {
      p.run.status = sched::RunResult::Status::Stuck;
      p.run.steps = step;
      p.run.message = sem::stuck_reason(prg, m.grid);
      return p;
    }
    const sem::Choice c = sched.pick(eligible, m);
    ++p.grid_steps;

    bool is_pbra = false;
    std::size_t leaves_before = 0;
    if (c.kind == sem::Choice::Kind::LiftBar) {
      ++p.barrier_lifts;
      ++p.instr_counts[ptx::Instr(ptx::IBar{}).index()];
    } else {
      const sem::Warp& w = m.grid.blocks[c.block].warps[c.warp];
      const ptx::Instr& i = prg.fetch(w.pc());
      ++p.instr_counts[i.index()];
      if (ptx::is_sync(i)) ++p.sync_steps;
      is_pbra = std::holds_alternative<ptx::IPBra>(i);
      leaves_before = w.leaf_count();
    }

    events.clear();
    const sem::StepResult sr =
        sem::apply_choice(prg, kc, m, c, opts, &events);

    if (c.kind == sem::Choice::Kind::ExecWarp) {
      const sem::Warp& w = m.grid.blocks[c.block].warps[c.warp];
      p.max_leaf_count = std::max(p.max_leaf_count, w.leaf_count());
      p.max_tree_depth = std::max(p.max_tree_depth, w.depth());
      if (is_pbra && w.leaf_count() > leaves_before) ++p.divergence_events;
    }
    for (const auto& a : events.accesses) {
      if (a.atomic) ++p.atomic_lanes;
      else if (a.write) ++p.store_lanes;
      else ++p.load_lanes;
      if (a.space == ptx::Space::Global) p.global_bytes += a.len;
      if (a.space == ptx::Space::Shared) p.shared_bytes += a.len;
    }
    p.invalid_reads += events.invalid_reads.size();
    p.store_conflicts += events.store_conflicts.size();
    p.uninit_reads += events.uninit_reads.size();

    if (!sr.ok()) {
      p.run.status = sched::RunResult::Status::Fault;
      p.run.steps = step + 1;
      p.run.message = sr.fault;
      return p;
    }
  }
  p.run.status = sched::RunResult::Status::BoundExceeded;
  p.run.steps = max_steps;
  return p;
}

}  // namespace cac::check
