// Execution profiling over the formal semantics: instruction mix,
// divergence behaviour, barrier activity and memory traffic of one
// scheduled run.  Everything is observed through the public kernel API
// (choices, warp shapes, step events) — the profiler is an untrusted
// consumer like the checkers.
//
// Useful for the workflow the paper sketches in §I: before investing
// in full validation, inspect where a kernel diverges, how much
// unsynchronized traffic it produces, and whether any diagnostic
// events (invalid reads, lane conflicts, uninitialized registers)
// fire at all.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "sched/scheduler.h"

namespace cac::check {

struct Profile {
  // control
  std::uint64_t grid_steps = 0;
  std::uint64_t barrier_lifts = 0;
  std::uint64_t divergence_events = 0;  // PBra steps that split a warp
  std::uint64_t sync_steps = 0;         // Sync rule applications
  std::size_t max_leaf_count = 1;       // widest divergence tree seen
  std::size_t max_tree_depth = 1;

  // instruction histogram, indexed by the Instr variant index
  std::array<std::uint64_t, std::variant_size_v<ptx::Instr>> instr_counts{};

  // memory traffic (per-lane accesses)
  std::uint64_t load_lanes = 0;
  std::uint64_t store_lanes = 0;
  std::uint64_t atomic_lanes = 0;
  std::uint64_t global_bytes = 0;
  std::uint64_t shared_bytes = 0;

  // diagnostics accumulated over the run
  std::uint64_t invalid_reads = 0;
  std::uint64_t store_conflicts = 0;
  std::uint64_t uninit_reads = 0;

  sched::RunResult run;

  /// Multi-line human-readable report.
  [[nodiscard]] std::string table() const;
};

/// Run the kernel to completion under `sched`, collecting the profile.
/// `m` is mutated to the final state.
Profile profile_run(const ptx::Program& prg, const sem::KernelConfig& kc,
                    sem::Machine& m, sched::Scheduler& sched,
                    std::uint64_t max_steps = 1u << 20);

}  // namespace cac::check
