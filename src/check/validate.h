// The composite validation entry point — the paper's §I workflow in
// one call: heuristic dynamic analyses first (profile, race detection),
// then the machine-checked guarantees (all-schedules model checking,
// scheduler transparency, warp lane-order independence).
//
// This is the API a downstream user calls on a kernel + launch +
// postcondition; the pieces are independently available in the other
// check/ headers.
#pragma once

#include "check/lane_order.h"
#include "check/model.h"
#include "check/profile.h"
#include "check/race.h"
#include "check/transparency.h"

namespace cac::check {

struct ValidateOptions {
  ModelCheckOptions model;
  bool check_transparency = true;
  bool check_lane_order = true;
  std::size_t lane_orders = 24;
  bool check_races = true;
  bool collect_profile = true;
};

struct ValidationReport {
  /// Dynamic pre-checks (one deterministic schedule).
  Profile profile;
  RaceReport races;

  /// Machine-checked guarantees (exhaustive).
  Verdict model;                    // termination + postcondition
  TransparencyResult transparency;  // det == every schedule
  LaneOrderResult lane_order;       // nd_map's semantic content

  ValidateOptions options_used;

  [[nodiscard]] bool all_passed() const;
  [[nodiscard]] std::string text() const;
};

ValidationReport validate(const ptx::Program& prg,
                          const sem::KernelConfig& kc,
                          const sem::Machine& initial, const Spec& post,
                          const ValidateOptions& opts = {});

}  // namespace cac::check
