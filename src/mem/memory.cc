#include "mem/memory.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "support/binio.h"
#include "support/diag.h"

namespace cac::mem {

namespace {

[[noreturn]] void oob(const char* what, Space ss, std::uint64_t addr) {
  throw KernelError(std::string(what) + ": " + ptx::to_string(ss) + "[" +
                    std::to_string(addr) + "]");
}

}  // namespace

std::uint64_t MemSizes::of(Space ss) const {
  switch (ss) {
    case Space::Global: return global;
    case Space::Const: return constant;
    case Space::Shared: return shared;
    case Space::Param: return param;
  }
  return 0;
}

std::uint64_t Memory::Bank::hash() const {
  return hash_.get_or([&] {
    Hasher h;
    h.mix(bytes.size());
    h.mix_words(bytes.data(), bytes.size());
    h.mix_words(valid.data(), valid.size() * sizeof(std::uint64_t));
    return h.value();
  });
}

void Memory::Bank::encode(support::BinWriter& w) const {
  w.u64(bytes.size());
  w.bytes(bytes.data(), bytes.size());
  w.bytes(valid.data(), valid.size() * sizeof(std::uint64_t));
}

Memory::Bank Memory::Bank::decode(support::BinReader& r) {
  const std::uint64_t n = r.count();
  Bank b(n);
  r.bytes(b.bytes.data(), n);
  r.bytes(b.valid.data(), b.valid.size() * sizeof(std::uint64_t));
  // Re-check the zero-tail-bits invariant: operator== and hash()
  // depend on it, so a violating bitmap would corrupt dedup.
  if (n % 64 != 0 && !b.valid.empty() &&
      (b.valid.back() >> (n % 64)) != 0) {
    throw support::BinError("valid bitmap has nonzero tail bits");
  }
  return b;
}

Memory::Memory()
    : global_(std::make_shared<Bank>()),
      constant_(std::make_shared<Bank>()),
      param_(std::make_shared<Bank>()) {}

Memory::Memory(const MemSizes& sizes)
    : global_(std::make_shared<Bank>(sizes.global)),
      constant_(std::make_shared<Bank>(sizes.constant)),
      param_(std::make_shared<Bank>(sizes.param)),
      shared_per_block_(sizes.shared) {
  shared_.reserve(sizes.shared_banks);
  for (std::uint32_t b = 0; b < sizes.shared_banks; ++b) {
    shared_.push_back(std::make_shared<Bank>(sizes.shared));
  }
}

Memory Memory::from_banks(BankRef global, BankRef constant,
                          std::vector<BankRef> shared, BankRef param,
                          std::uint64_t shared_per_block) {
  Memory m;
  m.global_ = std::move(global);
  m.constant_ = std::move(constant);
  m.shared_ = std::move(shared);
  m.param_ = std::move(param);
  m.shared_per_block_ = shared_per_block;
  return m;
}

const Memory::Bank& Memory::ro(Space ss) const {
  switch (ss) {
    case Space::Global: return *global_;
    case Space::Const: return *constant_;
    case Space::Param: return *param_;
    case Space::Shared: break;
  }
  throw KernelError("bad state space");
}

const Memory::Bank& Memory::shared_ro(std::uint64_t addr,
                                      std::uint64_t& off) const {
  const std::uint64_t bank = addr / shared_per_block_;
  off = addr % shared_per_block_;
  return *shared_[bank];
}

Memory::Bank& Memory::unique_bank(BankRef& slot) {
  if (slot.use_count() != 1) slot = std::make_shared<Bank>(*slot);
  // The bank is uniquely ours now; shedding const is safe, and the
  // memoized hash must go stale before the caller writes.
  auto& b = const_cast<Bank&>(*slot);
  b.invalidate_hash();
  return b;
}

Memory::Bank& Memory::mut(Space ss, std::uint64_t addr, std::uint64_t& off) {
  off = addr;
  switch (ss) {
    case Space::Global: return unique_bank(global_);
    case Space::Const: return unique_bank(constant_);
    case Space::Param: return unique_bank(param_);
    case Space::Shared: {
      const std::uint64_t bank = addr / shared_per_block_;
      off = addr % shared_per_block_;
      return unique_bank(shared_[bank]);
    }
  }
  throw KernelError("bad state space");
}

std::uint64_t Memory::size(Space ss) const {
  if (ss == Space::Shared) return shared_total();
  return ro(ss).bytes.size();
}

bool Memory::in_bounds(Space ss, std::uint64_t addr,
                       std::uint32_t len) const {
  const std::uint64_t n = size(ss);
  return addr <= n && len <= n - addr;
}

Cell Memory::cell(Space ss, std::uint64_t addr) const {
  if (addr >= size(ss)) oob("memory access out of bounds", ss, addr);
  if (ss == Space::Shared) {
    std::uint64_t off = 0;
    const Bank& b = shared_ro(addr, off);
    return Cell{b.bytes[off], b.valid_bit(off)};
  }
  const Bank& b = ro(ss);
  return Cell{b.bytes[addr], b.valid_bit(addr)};
}

std::uint64_t Memory::load(Space ss, std::uint64_t addr,
                           std::uint32_t len) const {
  assert(len == 1 || len == 2 || len == 4 || len == 8);
  const std::uint64_t n = size(ss);
  if (addr >= n || len > n - addr) {
    // Name the first out-of-range byte, as the per-cell loop used to.
    oob("memory access out of bounds", ss, std::max<std::uint64_t>(addr, n));
  }
  std::uint64_t v = 0;
  if (ss == Space::Shared) {
    if (shared_single_bank(addr, len)) {
      std::uint64_t off = 0;
      const Bank& b = shared_ro(addr, off);
      std::memcpy(&v, b.bytes.data() + off, len);  // little-endian host
    } else {
      // Range straddles a block-bank boundary: assemble byte-wise.
      auto* p = reinterpret_cast<std::uint8_t*>(&v);
      for (std::uint32_t i = 0; i < len; ++i) {
        std::uint64_t off = 0;
        p[i] = shared_ro(addr + i, off).bytes[off];
      }
    }
    return v;
  }
  std::memcpy(&v, ro(ss).bytes.data() + addr, len);  // little-endian host
  return v;
}

bool Memory::all_valid(Space ss, std::uint64_t addr,
                       std::uint32_t len) const {
  const std::uint64_t n = size(ss);
  for (std::uint32_t i = 0; i < len; ++i) {
    const std::uint64_t a = addr + i;
    if (a >= n) oob("memory access out of bounds", ss, a);
    if (ss == Space::Shared) {
      std::uint64_t off = 0;
      const Bank& b = shared_ro(a, off);
      if (!b.valid_bit(off)) return false;
    } else if (!ro(ss).valid_bit(a)) {
      return false;
    }
  }
  return true;
}

void Memory::store(Space ss, std::uint64_t addr, std::uint32_t len,
                   std::uint64_t value, bool valid) {
  assert(len == 1 || len == 2 || len == 4 || len == 8);
  const std::uint64_t n = size(ss);
  if (addr >= n || len > n - addr) {
    oob("memory store out of bounds", ss, addr);
  }
  if (ss == Space::Shared && !shared_single_bank(addr, len)) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    for (std::uint32_t i = 0; i < len; ++i) {
      std::uint64_t off = 0;
      Bank& b = mut(ss, addr + i, off);
      b.bytes[off] = p[i];
      b.set_valid_bit(off, valid);
    }
  } else {
    std::uint64_t off = 0;
    Bank& b = mut(ss, addr, off);
    std::memcpy(b.bytes.data() + off, &value, len);  // little-endian host
    for (std::uint32_t i = 0; i < len; ++i) b.set_valid_bit(off + i, valid);
  }
  hash_.invalidate();
}

void Memory::write_init(Space ss, std::uint64_t addr, const void* data,
                        std::size_t len) {
  const std::uint64_t n = size(ss);
  if (addr >= n || len > n - addr) {
    oob("init write out of bounds", ss, addr);
  }
  const auto* src = static_cast<const std::uint8_t*>(data);
  if (ss == Space::Shared && len != 0 &&
      !shared_single_bank(addr, static_cast<std::uint32_t>(len))) {
    for (std::size_t i = 0; i < len; ++i) {
      std::uint64_t off = 0;
      Bank& b = mut(ss, addr + i, off);
      b.bytes[off] = src[i];
      b.set_valid_bit(off, true);
    }
  } else {
    std::uint64_t off = 0;
    Bank& b = mut(ss, addr, off);
    std::memcpy(b.bytes.data() + off, data, len);
    for (std::size_t i = 0; i < len; ++i) b.set_valid_bit(off + i, true);
  }
  hash_.invalidate();
}

void Memory::init_u32(Space ss, std::uint64_t addr, std::uint32_t v) {
  std::uint8_t b[4];
  std::memcpy(b, &v, 4);  // host is little-endian like the device
  write_init(ss, addr, b, 4);
}

void Memory::init_u64(Space ss, std::uint64_t addr, std::uint64_t v) {
  std::uint8_t b[8];
  std::memcpy(b, &v, 8);
  write_init(ss, addr, b, 8);
}

void Memory::commit_shared(std::uint32_t block) {
  if (block >= shared_.size() || shared_per_block_ == 0) return;
  Bank& b = unique_bank(shared_[block]);
  std::fill(b.valid.begin(), b.valid.end(), ~0ull);
  // Keep the unused tail bits of the last word zero so equality and
  // hashing stay exact.
  const std::uint64_t n = b.bytes.size();
  if ((n & 63) != 0 && !b.valid.empty()) {
    b.valid.back() &= (1ull << (n & 63)) - 1;
  }
  hash_.invalidate();
}

void Memory::set_all_valid(Space ss, bool valid) {
  const auto fill = [valid](Bank& b) {
    std::fill(b.valid.begin(), b.valid.end(), valid ? ~0ull : 0ull);
    const std::uint64_t n = b.bytes.size();
    if (valid && (n & 63) != 0 && !b.valid.empty()) {
      b.valid.back() &= (1ull << (n & 63)) - 1;
    }
  };
  if (ss == Space::Shared) {
    for (BankRef& ref : shared_) fill(unique_bank(ref));
  } else {
    switch (ss) {
      case Space::Global: fill(unique_bank(global_)); break;
      case Space::Const: fill(unique_bank(constant_)); break;
      case Space::Param: fill(unique_bank(param_)); break;
      case Space::Shared: break;
    }
  }
  hash_.invalidate();
}

const Memory::BankRef& Memory::bank_ref(Space ss) const {
  switch (ss) {
    case Space::Global: return global_;
    case Space::Const: return constant_;
    case Space::Param: return param_;
    case Space::Shared: break;
  }
  throw KernelError("bank_ref: Shared is per-block (use shared_bank_refs)");
}

bool operator==(const Memory& a, const Memory& b) {
  const auto bank_eq = [](const Memory::BankRef& x, const Memory::BankRef& y) {
    return x == y || *x == *y;
  };
  if (!bank_eq(a.global_, b.global_) || !bank_eq(a.constant_, b.constant_) ||
      !bank_eq(a.param_, b.param_)) {
    return false;
  }
  if (a.shared_per_block_ != b.shared_per_block_ ||
      a.shared_.size() != b.shared_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.shared_.size(); ++i) {
    if (!bank_eq(a.shared_[i], b.shared_[i])) return false;
  }
  return true;
}

std::uint64_t Memory::hash() const {
  return hash_.get_or([&] {
    Hasher h;
    h.mix(global_->hash());
    h.mix(constant_->hash());
    h.mix(shared_.size());
    for (const BankRef& b : shared_) h.mix(b->hash());
    h.mix(param_->hash());
    return h.value();
  });
}

std::string Memory::dump(Space ss, std::uint64_t addr,
                         std::uint32_t len) const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::uint32_t i = 0; i < len; ++i) {
    if (i && i % 16 == 0) out += '\n';
    const Cell c = cell(ss, addr + i);
    out += kHex[c.byte >> 4];
    out += kHex[c.byte & 0xf];
    out += c.valid ? ' ' : '!';
  }
  return out;
}

}  // namespace cac::mem
