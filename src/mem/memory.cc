#include "mem/memory.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "support/diag.h"

namespace cac::mem {

std::uint64_t MemSizes::of(Space ss) const {
  switch (ss) {
    case Space::Global: return global;
    case Space::Const: return constant;
    case Space::Shared: return shared;
    case Space::Param: return param;
  }
  return 0;
}

Memory::Memory(const MemSizes& sizes)
    : global_(sizes.global),
      constant_(sizes.constant),
      shared_(sizes.shared * sizes.shared_banks),
      param_(sizes.param),
      shared_per_block_(sizes.shared) {}

const Memory::Bank& Memory::space(Space ss) const {
  switch (ss) {
    case Space::Global: return global_;
    case Space::Const: return constant_;
    case Space::Shared: return shared_;
    case Space::Param: return param_;
  }
  throw KernelError("bad state space");
}

Memory::Bank& Memory::space(Space ss) {
  return const_cast<Bank&>(static_cast<const Memory*>(this)->space(ss));
}

std::uint64_t Memory::size(Space ss) const { return space(ss).bytes.size(); }

bool Memory::in_bounds(Space ss, std::uint64_t addr,
                       std::uint32_t len) const {
  const std::uint64_t n = space(ss).bytes.size();
  return addr <= n && len <= n - addr;
}

Cell Memory::cell(Space ss, std::uint64_t addr) const {
  const Bank& b = space(ss);
  if (addr >= b.bytes.size()) {
    throw KernelError("memory access out of bounds: " + ptx::to_string(ss) +
                      "[" + std::to_string(addr) + "]");
  }
  return Cell{b.bytes[addr], b.valid_bit(addr)};
}

std::uint64_t Memory::load(Space ss, std::uint64_t addr,
                           std::uint32_t len) const {
  assert(len == 1 || len == 2 || len == 4 || len == 8);
  const Bank& b = space(ss);
  if (addr >= b.bytes.size() || len > b.bytes.size() - addr) {
    // Name the first out-of-range byte, as the per-cell loop used to.
    const std::uint64_t bad = std::max<std::uint64_t>(addr, b.bytes.size());
    throw KernelError("memory access out of bounds: " + ptx::to_string(ss) +
                      "[" + std::to_string(bad) + "]");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, b.bytes.data() + addr, len);  // little-endian host
  return v;
}

bool Memory::all_valid(Space ss, std::uint64_t addr,
                       std::uint32_t len) const {
  const Bank& b = space(ss);
  for (std::uint32_t i = 0; i < len; ++i) {
    const std::uint64_t a = addr + i;
    if (a >= b.bytes.size()) {
      throw KernelError("memory access out of bounds: " + ptx::to_string(ss) +
                        "[" + std::to_string(a) + "]");
    }
    if (!b.valid_bit(a)) return false;
  }
  return true;
}

void Memory::store(Space ss, std::uint64_t addr, std::uint32_t len,
                   std::uint64_t value, bool valid) {
  assert(len == 1 || len == 2 || len == 4 || len == 8);
  Bank& b = space(ss);
  if (addr >= b.bytes.size() || len > b.bytes.size() - addr) {
    throw KernelError("memory store out of bounds: " + ptx::to_string(ss) +
                      "[" + std::to_string(addr) + "]");
  }
  std::memcpy(b.bytes.data() + addr, &value, len);  // little-endian host
  for (std::uint32_t i = 0; i < len; ++i) b.set_valid_bit(addr + i, valid);
  hash_.invalidate();
}

void Memory::write_init(Space ss, std::uint64_t addr, const void* data,
                        std::size_t len) {
  Bank& b = space(ss);
  if (addr >= b.bytes.size() || len > b.bytes.size() - addr) {
    throw KernelError("init write out of bounds: " + ptx::to_string(ss) +
                      "[" + std::to_string(addr) + "]");
  }
  std::memcpy(b.bytes.data() + addr, data, len);
  for (std::size_t i = 0; i < len; ++i) b.set_valid_bit(addr + i, true);
  hash_.invalidate();
}

void Memory::init_u32(Space ss, std::uint64_t addr, std::uint32_t v) {
  std::uint8_t b[4];
  std::memcpy(b, &v, 4);  // host is little-endian like the device
  write_init(ss, addr, b, 4);
}

void Memory::init_u64(Space ss, std::uint64_t addr, std::uint64_t v) {
  std::uint8_t b[8];
  std::memcpy(b, &v, 8);
  write_init(ss, addr, b, 8);
}

void Memory::commit_shared(std::uint32_t block) {
  const std::uint64_t base = shared_base(block);
  const std::uint64_t end = std::min<std::uint64_t>(
      base + shared_per_block_, shared_.bytes.size());
  for (std::uint64_t i = base; i < end; ++i) shared_.set_valid_bit(i, true);
  hash_.invalidate();
}

void Memory::set_all_valid(Space ss, bool valid) {
  Bank& b = space(ss);
  std::fill(b.valid.begin(), b.valid.end(),
            valid ? ~0ull : 0ull);
  // Keep the unused tail bits of the last word zero so equality and
  // hashing stay exact.
  const std::uint64_t n = b.bytes.size();
  if (valid && (n & 63) != 0 && !b.valid.empty()) {
    b.valid.back() &= (1ull << (n & 63)) - 1;
  }
  hash_.invalidate();
}

std::uint64_t Memory::hash() const {
  return hash_.get_or([&] {
    Hasher h;
    for (Space ss : ptx::kAllSpaces) {
      const Bank& b = space(ss);
      h.mix(b.bytes.size());
      h.mix_words(b.bytes.data(), b.bytes.size());
      h.mix_words(b.valid.data(), b.valid.size() * sizeof(std::uint64_t));
    }
    return h.value();
  });
}

std::string Memory::dump(Space ss, std::uint64_t addr,
                         std::uint32_t len) const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::uint32_t i = 0; i < len; ++i) {
    if (i && i % 16 == 0) out += '\n';
    const Cell c = cell(ss, addr + i);
    out += kHex[c.byte >> 4];
    out += kHex[c.byte & 0xf];
    out += c.valid ? ' ' : '!';
  }
  return out;
}

}  // namespace cac::mem
