#include "mem/memory.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "support/diag.h"

namespace cac::mem {

std::uint64_t MemSizes::of(Space ss) const {
  switch (ss) {
    case Space::Global: return global;
    case Space::Const: return constant;
    case Space::Shared: return shared;
    case Space::Param: return param;
  }
  return 0;
}

Memory::Memory(const MemSizes& sizes)
    : global_(sizes.global),
      constant_(sizes.constant),
      shared_(sizes.shared * sizes.shared_banks),
      param_(sizes.param),
      shared_per_block_(sizes.shared) {}

const std::vector<Cell>& Memory::space(Space ss) const {
  switch (ss) {
    case Space::Global: return global_;
    case Space::Const: return constant_;
    case Space::Shared: return shared_;
    case Space::Param: return param_;
  }
  throw KernelError("bad state space");
}

std::vector<Cell>& Memory::space(Space ss) {
  return const_cast<std::vector<Cell>&>(
      static_cast<const Memory*>(this)->space(ss));
}

std::uint64_t Memory::size(Space ss) const { return space(ss).size(); }

bool Memory::in_bounds(Space ss, std::uint64_t addr,
                       std::uint32_t len) const {
  const std::uint64_t n = space(ss).size();
  return addr <= n && len <= n - addr;
}

const Cell& Memory::cell(Space ss, std::uint64_t addr) const {
  const auto& v = space(ss);
  if (addr >= v.size()) {
    throw KernelError("memory access out of bounds: " + ptx::to_string(ss) +
                      "[" + std::to_string(addr) + "]");
  }
  return v[addr];
}

std::uint64_t Memory::load(Space ss, std::uint64_t addr,
                           std::uint32_t len) const {
  assert(len == 1 || len == 2 || len == 4 || len == 8);
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < len; ++i) {
    v |= static_cast<std::uint64_t>(cell(ss, addr + i).byte) << (8 * i);
  }
  return v;
}

bool Memory::all_valid(Space ss, std::uint64_t addr,
                       std::uint32_t len) const {
  for (std::uint32_t i = 0; i < len; ++i) {
    if (!cell(ss, addr + i).valid) return false;
  }
  return true;
}

void Memory::store(Space ss, std::uint64_t addr, std::uint32_t len,
                   std::uint64_t value, bool valid) {
  assert(len == 1 || len == 2 || len == 4 || len == 8);
  auto& v = space(ss);
  if (addr >= v.size() || len > v.size() - addr) {
    throw KernelError("memory store out of bounds: " + ptx::to_string(ss) +
                      "[" + std::to_string(addr) + "]");
  }
  for (std::uint32_t i = 0; i < len; ++i) {
    v[addr + i] = Cell{static_cast<std::uint8_t>(value >> (8 * i)), valid};
  }
}

void Memory::write_init(Space ss, std::uint64_t addr, const void* data,
                        std::size_t len) {
  auto& v = space(ss);
  if (addr >= v.size() || len > v.size() - addr) {
    throw KernelError("init write out of bounds: " + ptx::to_string(ss) +
                      "[" + std::to_string(addr) + "]");
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) v[addr + i] = Cell{p[i], true};
}

void Memory::init_u32(Space ss, std::uint64_t addr, std::uint32_t v) {
  std::uint8_t b[4];
  std::memcpy(b, &v, 4);  // host is little-endian like the device
  write_init(ss, addr, b, 4);
}

void Memory::init_u64(Space ss, std::uint64_t addr, std::uint64_t v) {
  std::uint8_t b[8];
  std::memcpy(b, &v, 8);
  write_init(ss, addr, b, 8);
}

void Memory::commit_shared(std::uint32_t block) {
  const std::uint64_t base = shared_base(block);
  const std::uint64_t end = std::min<std::uint64_t>(
      base + shared_per_block_, shared_.size());
  for (std::uint64_t i = base; i < end; ++i) shared_[i].valid = true;
}

void Memory::set_all_valid(Space ss, bool valid) {
  for (Cell& c : space(ss)) c.valid = valid;
}

std::uint64_t Memory::hash() const {
  Hasher h;
  for (Space ss : ptx::kAllSpaces) {
    const auto& v = space(ss);
    h.mix(v.size());
    for (const Cell& c : v) {
      h.mix(static_cast<std::uint64_t>(c.byte) << 1 | (c.valid ? 1 : 0));
    }
  }
  return h.value();
}

std::string Memory::dump(Space ss, std::uint64_t addr,
                         std::uint32_t len) const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::uint32_t i = 0; i < len; ++i) {
    if (i && i % 16 == 0) out += '\n';
    const Cell& c = cell(ss, addr + i);
    out += kHex[c.byte >> 4];
    out += kHex[c.byte & 0xf];
    out += c.valid ? ' ' : '!';
  }
  return out;
}

}  // namespace cac::mem
