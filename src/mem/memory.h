// The memory state µ of the formal model (paper §III-2, Table I):
//
//   µ : (ss x addr) -> (byte x B)
//
// Every byte carries a *valid bit* — false means the value "could
// possibly still be in flight", like a cache valid bit.  The paper's
// valid-bit discipline, reproduced here as mechanism (policy lives in
// the semantics kernel, src/sem/step.cc):
//
//  * at launch only Global and Const bytes written by the host are
//    valid;
//  * ordinary stores to Global leave the byte invalid — the hardware
//    does not guarantee inter-thread synchronization of global memory
//    (atomics excepted);
//  * stores to Shared are invalid until the whole block reaches a
//    barrier, at which point commit_shared() flips every Shared valid
//    bit to true (Fig. 3's lift-bar rule).
//
// Representation: each state space is a refcounted, copy-on-write
// *bank* — a contiguous byte array plus a packed valid-bit bitmap (one
// bit per byte, 64 bits per word).  Shared memory is one bank *per
// thread block* (it is block-private, paper §III-2), so a store by one
// block copies only that block's bank.  Copying a Memory copies four
// shared_ptrs; a mutator clones just the bank it touches (clone-on-
// write), so sibling machine states in the schedule explorer share
// every bank they have not diverged on.  The interning state store
// (sched/state_store.h) builds on the same mechanism: banks are
// content-addressed via their memoized structural hash and deduplicated
// across the whole visited set.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ptx/dtype.h"
#include "support/hash.h"

namespace cac::support {
class BinWriter;
class BinReader;
}  // namespace cac::support

namespace cac::mem {

using ptx::Space;

/// Byte sizes of each state space for a launch.  `shared` is the size
/// of one block's Shared bank; every block gets its own bank (set
/// `shared_banks` to the number of blocks), because Shared memory is
/// private to a thread block (paper §III-2).
struct MemSizes {
  std::uint64_t global = 0;
  std::uint64_t constant = 0;
  std::uint64_t shared = 0;
  std::uint64_t param = 0;
  std::uint32_t shared_banks = 1;

  [[nodiscard]] std::uint64_t of(Space ss) const;
};

/// One memory byte with its valid bit — the (byte x B) pair of Table I.
struct Cell {
  std::uint8_t byte = 0;
  bool valid = false;
  friend bool operator==(const Cell&, const Cell&) = default;
};

class Memory {
 public:
  /// One state space (or one block's Shared slice): contiguous data
  /// bytes plus a packed valid bitmap (bit i of valid[i/64] is byte i's
  /// valid bit).  Bits past `bytes.size()` in the last word are kept
  /// zero so that comparison is exact.  Banks are immutable once shared
  /// (copy-on-write); the structural hash is memoized thread-safely so
  /// a bank shared across explorer threads is hashed at most once.
  struct Bank {
    std::vector<std::uint8_t> bytes;
    std::vector<std::uint64_t> valid;

    explicit Bank(std::uint64_t n = 0)
        : bytes(n, 0), valid((n + 63) / 64, 0) {}

    [[nodiscard]] bool valid_bit(std::uint64_t i) const {
      return (valid[i >> 6] >> (i & 63)) & 1u;
    }
    void set_valid_bit(std::uint64_t i, bool v) {
      const std::uint64_t mask = 1ull << (i & 63);
      if (v) {
        valid[i >> 6] |= mask;
      } else {
        valid[i >> 6] &= ~mask;
      }
    }

    /// Content-addressing hash for bank interning; memoized.
    [[nodiscard]] std::uint64_t hash() const;
    void invalidate_hash() const { hash_.invalidate(); }

    /// Heap footprint of this bank (stats/accounting).
    [[nodiscard]] std::uint64_t deep_bytes() const {
      return sizeof(Bank) + bytes.capacity() +
             valid.capacity() * sizeof(std::uint64_t);
    }

    friend bool operator==(const Bank& a, const Bank& b) {
      return a.bytes == b.bytes && a.valid == b.valid;
    }

    /// Checkpoint codec (sched/checkpoint.h).  decode throws
    /// support::BinError on malformed input (truncation, bitmap size
    /// mismatch, nonzero tail bits in the last valid word).
    void encode(support::BinWriter& w) const;
    static Bank decode(support::BinReader& r);

   private:
    SharedHashCache hash_;  // excluded from operator== by construction
  };

  /// Refcounted immutable bank handle — the sharing currency between
  /// Memory values and the interning state store.
  using BankRef = std::shared_ptr<const Bank>;

  Memory();
  explicit Memory(const MemSizes& sizes);

  /// Rebuild a Memory from interned bank handles (StateStore
  /// materialization).  `shared` holds one bank per block.
  static Memory from_banks(BankRef global, BankRef constant,
                           std::vector<BankRef> shared, BankRef param,
                           std::uint64_t shared_per_block);

  [[nodiscard]] std::uint64_t size(Space ss) const;
  [[nodiscard]] bool in_bounds(Space ss, std::uint64_t addr,
                               std::uint32_t len) const;

  /// Raw cell access.  Callers must bounds-check first (the semantics
  /// kernel turns out-of-bounds accesses into fault events rather than
  /// crashing); violating that is a programming error and throws.
  [[nodiscard]] Cell cell(Space ss, std::uint64_t addr) const;

  /// Little-endian load of `len` bytes (1/2/4/8).
  [[nodiscard]] std::uint64_t load(Space ss, std::uint64_t addr,
                                   std::uint32_t len) const;

  /// True iff every byte of the range has its valid bit set.
  [[nodiscard]] bool all_valid(Space ss, std::uint64_t addr,
                               std::uint32_t len) const;

  /// Little-endian store of `len` bytes with an explicit valid bit.
  /// The valid-bit *policy* (invalid for plain Global/Shared stores,
  /// valid for atomics and launch-time initialization) is chosen by the
  /// caller; see the file comment.
  void store(Space ss, std::uint64_t addr, std::uint32_t len,
             std::uint64_t value, bool valid);

  /// Launch-time initialization: bytes arrive valid.
  void write_init(Space ss, std::uint64_t addr, const void* data,
                  std::size_t len);

  /// Typed launch-time helpers.
  void init_u32(Space ss, std::uint64_t addr, std::uint32_t v);
  void init_u64(Space ss, std::uint64_t addr, std::uint64_t v);

  /// Fig. 3 lift-bar: commit one block's Shared bank (valid := true).
  void commit_shared(std::uint32_t block);

  /// Shared-space addressing: block-local addresses are offset into the
  /// block's private bank.  Returns the base of that bank within the
  /// flat Shared space; shared_size() is the per-block bank size.
  [[nodiscard]] std::uint64_t shared_base(std::uint32_t block) const {
    return static_cast<std::uint64_t>(block) * shared_per_block_;
  }
  [[nodiscard]] std::uint64_t shared_size() const {
    return shared_per_block_;
  }

  /// Mark every byte of a space valid; used by checkers when stating
  /// hypotheses about the final state.
  void set_all_valid(Space ss, bool valid);

  // --- bank-sharing hooks (interned state storage) -------------------

  /// Handle to a single-bank space (Global/Const/Param; Shared is
  /// per-block, use shared_bank_refs()).
  [[nodiscard]] const BankRef& bank_ref(Space ss) const;
  /// One immutable bank per block.
  [[nodiscard]] const std::vector<BankRef>& shared_bank_refs() const {
    return shared_;
  }

  friend bool operator==(const Memory& a, const Memory& b);

  /// Order- and representation-independent state hash (for schedule
  /// exploration memoization).  Memoized at two levels: per bank
  /// (shared across every Memory holding the bank) and per Memory.
  [[nodiscard]] std::uint64_t hash() const;

  /// Human-readable hex dump of a range (debugging aid).
  [[nodiscard]] std::string dump(Space ss, std::uint64_t addr,
                                 std::uint32_t len) const;

 private:
  [[nodiscard]] const Bank& ro(Space ss) const;          // non-Shared
  [[nodiscard]] const Bank& shared_ro(std::uint64_t addr,
                                      std::uint64_t& off) const;
  /// Clone-on-write access: clones the bank if it is shared, and
  /// invalidates its memoized hash (we are about to mutate it).
  [[nodiscard]] Bank& unique_bank(BankRef& slot);
  [[nodiscard]] Bank& mut(Space ss, std::uint64_t addr, std::uint64_t& off);

  [[nodiscard]] std::uint64_t shared_total() const {
    return shared_per_block_ * shared_.size();
  }
  /// Does [addr, addr+len) stay inside one Shared bank?
  [[nodiscard]] bool shared_single_bank(std::uint64_t addr,
                                        std::uint32_t len) const {
    return shared_per_block_ == 0 ||
           addr / shared_per_block_ == (addr + len - 1) / shared_per_block_;
  }

  BankRef global_;
  BankRef constant_;
  std::vector<BankRef> shared_;  // one bank per block
  BankRef param_;
  std::uint64_t shared_per_block_ = 0;
  HashCache hash_;  // excluded from operator== by construction
};

}  // namespace cac::mem
