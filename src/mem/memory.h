// The memory state µ of the formal model (paper §III-2, Table I):
//
//   µ : (ss x addr) -> (byte x B)
//
// Every byte carries a *valid bit* — false means the value "could
// possibly still be in flight", like a cache valid bit.  The paper's
// valid-bit discipline, reproduced here as mechanism (policy lives in
// the semantics kernel, src/sem/step.cc):
//
//  * at launch only Global and Const bytes written by the host are
//    valid;
//  * ordinary stores to Global leave the byte invalid — the hardware
//    does not guarantee inter-thread synchronization of global memory
//    (atomics excepted);
//  * stores to Shared are invalid until the whole block reaches a
//    barrier, at which point commit_shared() flips every Shared valid
//    bit to true (Fig. 3's lift-bar rule).
//
// Representation: each space is a contiguous byte array plus a packed
// valid-bit bitmap (one bit per byte, 64 bits per word).  Compared to
// the earlier array-of-{byte,bool} layout this halves the bytes moved
// by every Machine clone — the per-transition cost of schedule
// exploration — and lets equality and hashing run over whole words.
// The structural hash is memoized (every mutator invalidates it), so
// repeated visited-set probes of an unchanged memory are O(1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptx/dtype.h"
#include "support/hash.h"

namespace cac::mem {

using ptx::Space;

/// Byte sizes of each state space for a launch.  `shared` is the size
/// of one block's Shared bank; every block gets its own bank (set
/// `shared_banks` to the number of blocks), because Shared memory is
/// private to a thread block (paper §III-2).
struct MemSizes {
  std::uint64_t global = 0;
  std::uint64_t constant = 0;
  std::uint64_t shared = 0;
  std::uint64_t param = 0;
  std::uint32_t shared_banks = 1;

  [[nodiscard]] std::uint64_t of(Space ss) const;
};

/// One memory byte with its valid bit — the (byte x B) pair of Table I.
/// A value type now: the packed store has no Cell objects to reference.
struct Cell {
  std::uint8_t byte = 0;
  bool valid = false;
  friend bool operator==(const Cell&, const Cell&) = default;
};

class Memory {
 public:
  Memory() = default;
  explicit Memory(const MemSizes& sizes);

  [[nodiscard]] std::uint64_t size(Space ss) const;
  [[nodiscard]] bool in_bounds(Space ss, std::uint64_t addr,
                               std::uint32_t len) const;

  /// Raw cell access.  Callers must bounds-check first (the semantics
  /// kernel turns out-of-bounds accesses into fault events rather than
  /// crashing); violating that is a programming error and throws.
  [[nodiscard]] Cell cell(Space ss, std::uint64_t addr) const;

  /// Little-endian load of `len` bytes (1/2/4/8).
  [[nodiscard]] std::uint64_t load(Space ss, std::uint64_t addr,
                                   std::uint32_t len) const;

  /// True iff every byte of the range has its valid bit set.
  [[nodiscard]] bool all_valid(Space ss, std::uint64_t addr,
                               std::uint32_t len) const;

  /// Little-endian store of `len` bytes with an explicit valid bit.
  /// The valid-bit *policy* (invalid for plain Global/Shared stores,
  /// valid for atomics and launch-time initialization) is chosen by the
  /// caller; see the file comment.
  void store(Space ss, std::uint64_t addr, std::uint32_t len,
             std::uint64_t value, bool valid);

  /// Launch-time initialization: bytes arrive valid.
  void write_init(Space ss, std::uint64_t addr, const void* data,
                  std::size_t len);

  /// Typed launch-time helpers.
  void init_u32(Space ss, std::uint64_t addr, std::uint32_t v);
  void init_u64(Space ss, std::uint64_t addr, std::uint64_t v);

  /// Fig. 3 lift-bar: commit one block's Shared bank (valid := true).
  void commit_shared(std::uint32_t block);

  /// Shared-space addressing: block-local addresses are offset into the
  /// block's private bank.  Returns the base of that bank within the
  /// flat Shared space; shared_size() is the per-block bank size.
  [[nodiscard]] std::uint64_t shared_base(std::uint32_t block) const {
    return static_cast<std::uint64_t>(block) * shared_per_block_;
  }
  [[nodiscard]] std::uint64_t shared_size() const {
    return shared_per_block_;
  }

  /// Mark every byte of a space valid; used by checkers when stating
  /// hypotheses about the final state.
  void set_all_valid(Space ss, bool valid);

  friend bool operator==(const Memory& a, const Memory& b) {
    return a.global_ == b.global_ && a.constant_ == b.constant_ &&
           a.shared_ == b.shared_ && a.param_ == b.param_;
  }

  /// Order- and representation-independent state hash (for schedule
  /// exploration memoization).  Memoized: every mutator invalidates the
  /// cache, so back-to-back probes of an unchanged memory are free.
  [[nodiscard]] std::uint64_t hash() const;

  /// Human-readable hex dump of a range (debugging aid).
  [[nodiscard]] std::string dump(Space ss, std::uint64_t addr,
                                 std::uint32_t len) const;

 private:
  /// One state space: contiguous data bytes plus a packed valid bitmap
  /// (bit i of valid[i/64] is byte i's valid bit).  Bits past `bytes.
  /// size()` in the last word are kept zero so that the defaulted
  /// comparison is exact.
  struct Bank {
    std::vector<std::uint8_t> bytes;
    std::vector<std::uint64_t> valid;

    explicit Bank(std::uint64_t n = 0)
        : bytes(n, 0), valid((n + 63) / 64, 0) {}

    [[nodiscard]] bool valid_bit(std::uint64_t i) const {
      return (valid[i >> 6] >> (i & 63)) & 1u;
    }
    void set_valid_bit(std::uint64_t i, bool v) {
      const std::uint64_t mask = 1ull << (i & 63);
      if (v) {
        valid[i >> 6] |= mask;
      } else {
        valid[i >> 6] &= ~mask;
      }
    }
    friend bool operator==(const Bank&, const Bank&) = default;
  };

  [[nodiscard]] const Bank& space(Space ss) const;
  [[nodiscard]] Bank& space(Space ss);

  Bank global_;
  Bank constant_;
  Bank shared_;  // shared_banks banks of shared_per_block_
  Bank param_;
  std::uint64_t shared_per_block_ = 0;
  HashCache hash_;  // excluded from operator== by construction
};

}  // namespace cac::mem
