#include "programs/corpus.h"

namespace cac::programs {

using namespace cac::ptx;

std::string vector_add_ptx() {
  // Listing 1 of the paper, parameters renamed as the authors did.
  return R"(
.version 6.0
.target sm_30
.address_size 64

.visible .entry add_vector(
  .param .u64 arr_A,
  .param .u64 arr_B,
  .param .u64 arr_C,
  .param .u32 size
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<9>;
  .reg .u64 %rd<11>;

  ld.param.u64 %rd1, [arr_A];
  ld.param.u64 %rd2, [arr_B];
  ld.param.u64 %rd3, [arr_C];
  ld.param.u32 %r2, [size];

  mov.u32 %r3, %ntid.x;
  mov.u32 %r4, %ctaid.x;
  mov.u32 %r5, %tid.x;
  mad.lo.s32 %r1, %r4, %r3, %r5;

  setp.ge.s32 %p1, %r1, %r2;
  @%p1 bra BB0_2;

  cvta.to.global.u64 %rd4, %rd1;
  mul.wide.s32 %rd5, %r1, 4;
  add.s64 %rd6, %rd4, %rd5;
  cvta.to.global.u64 %rd7, %rd2;
  add.s64 %rd8, %rd7, %rd5;
  ld.global.u32 %r6, [%rd8];
  ld.global.u32 %r7, [%rd6];

  add.s32 %r8, %r6, %r7;
  cvta.to.global.u64 %rd9, %rd3;
  add.s64 %rd10, %rd9, %rd5;
  st.global.u32 [%rd10], %r8;

BB0_2:
  ret;
}
)";
}

ptx::Program vector_add_listing2() {
  // Registers exactly as the paper's Listing 2 defines them.
  const Reg r1{TypeClass::UI, 32, 1}, r2{TypeClass::UI, 32, 2},
      r3{TypeClass::UI, 32, 3}, r4{TypeClass::UI, 32, 4},
      r5{TypeClass::UI, 32, 5}, r6{TypeClass::UI, 32, 6},
      r7{TypeClass::UI, 32, 7}, r8{TypeClass::UI, 32, 8};
  const Reg rd1{TypeClass::UI, 64, 1}, rd2{TypeClass::UI, 64, 2},
      rd3{TypeClass::UI, 64, 3}, rd5{TypeClass::UI, 64, 5},
      rd6{TypeClass::UI, 64, 6}, rd8{TypeClass::UI, 64, 8},
      rd10{TypeClass::UI, 64, 10};
  const Pred p1{1};

  // The paper writes `Mov rd1 arr_A`; a Param-space load of the same
  // slot is the mechanical equivalent (one instruction either way).
  std::vector<Instr> code = {
      /* 0*/ ILd{Space::Param, UI(64), rd1, op_imm(0)},    // arr_A
      /* 1*/ ILd{Space::Param, UI(64), rd2, op_imm(8)},    // arr_B
      /* 2*/ ILd{Space::Param, UI(64), rd3, op_imm(16)},   // arr_C
      /* 3*/ ILd{Space::Param, UI(32), r2, op_imm(24)},    // size
      /* 4*/ IMov{r3, op_sreg(SregKind::NTid, Dim::X)},
      /* 5*/ IMov{r4, op_sreg(SregKind::CtaId, Dim::X)},
      /* 6*/ IMov{r5, op_sreg(SregKind::Tid, Dim::X)},
      /* 7*/ ITop{TerOp::MadLo, SI(32), r1, op_reg(r4), op_reg(r3),
                  op_reg(r5)},
      /* 8*/ ISetp{CmpOp::Ge, SI(32), p1, op_reg(r1), op_reg(r2)},
      /* 9*/ IPBra{p1, false, 18},
      /*10*/ IBop{BinOp::MulWide, SI(32), rd5, op_reg(r1), op_imm(4)},
      /*11*/ IBop{BinOp::Add, SI(64), rd6, op_reg(rd1), op_reg(rd5)},
      /*12*/ IBop{BinOp::Add, SI(64), rd8, op_reg(rd2), op_reg(rd5)},
      /*13*/ ILd{Space::Global, UI(32), r6, op_reg(rd8)},
      /*14*/ ILd{Space::Global, UI(32), r7, op_reg(rd6)},
      /*15*/ IBop{BinOp::Add, SI(32), r8, op_reg(r6), op_reg(r7)},
      /*16*/ IBop{BinOp::Add, SI(64), rd10, op_reg(rd3), op_reg(rd5)},
      /*17*/ ISt{Space::Global, UI(32), op_reg(rd10), r8},
      /*18*/ ISync{},
      /*19*/ IExit{},
  };
  std::vector<ParamSlot> params = {
      {"arr_A", UI(64), 0},
      {"arr_B", UI(64), 8},
      {"arr_C", UI(64), 16},
      {"size", UI(32), 24},
  };
  return Program("add_vector_listing2", std::move(code), std::move(params));
}

std::string xor_cipher_ptx() {
  return R"(
.version 6.0
.target sm_30
.address_size 64

// C[i] = A[i] ^ B[i] for i < size — a one-time-pad keystream XOR.
.visible .entry xor_cipher(
  .param .u64 arr_A,
  .param .u64 arr_B,
  .param .u64 arr_C,
  .param .u32 size
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<9>;
  .reg .u64 %rd<9>;

  ld.param.u64 %rd1, [arr_A];
  ld.param.u64 %rd2, [arr_B];
  ld.param.u64 %rd3, [arr_C];
  ld.param.u32 %r2, [size];

  mov.u32 %r3, %ntid.x;
  mov.u32 %r4, %ctaid.x;
  mov.u32 %r5, %tid.x;
  mad.lo.s32 %r1, %r4, %r3, %r5;

  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra DONE;

  mul.wide.u32 %rd4, %r1, 4;
  add.u64 %rd5, %rd1, %rd4;
  add.u64 %rd6, %rd2, %rd4;
  ld.global.u32 %r6, [%rd5];
  ld.global.u32 %r7, [%rd6];
  xor.b32 %r8, %r6, %r7;
  add.u64 %rd7, %rd3, %rd4;
  st.global.u32 [%rd7], %r8;

DONE:
  ret;
}
)";
}

std::string scan_signature_ptx() {
  // Thread i sets out[i] = 1 iff pattern[0..plen) == data[i..i+plen).
  // The inner loop is predicated via selp, so its branch is uniform and
  // the only true divergence is the bounds guard.
  return R"(
.version 6.0
.target sm_30
.address_size 64

.visible .entry scan_signature(
  .param .u64 data,
  .param .u64 pattern,
  .param .u64 out,
  .param .u32 dlen,
  .param .u32 plen
)
{
  .reg .pred %p<4>;
  .reg .u32 %r<16>;
  .reg .u64 %rd<10>;

  ld.param.u64 %rd1, [data];
  ld.param.u64 %rd2, [pattern];
  ld.param.u64 %rd3, [out];
  ld.param.u32 %r2, [dlen];
  ld.param.u32 %r3, [plen];

  mov.u32 %r4, %ntid.x;
  mov.u32 %r5, %ctaid.x;
  mov.u32 %r6, %tid.x;
  mad.lo.u32 %r1, %r5, %r4, %r6;

  // guard: i + plen <= dlen
  sub.u32 %r7, %r2, %r3;
  setp.gt.u32 %p1, %r1, %r7;
  @%p1 bra END;

  mov.u32 %r8, 1;           // match flag
  mov.u32 %r9, 0;           // j
LOOP:
  setp.ge.u32 %p2, %r9, %r3;
  @%p2 bra STORE;
  add.u32 %r10, %r1, %r9;
  cvt.u64.u32 %rd4, %r10;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.u8 %r11, [%rd5];
  cvt.u64.u32 %rd6, %r9;
  add.u64 %rd7, %rd2, %rd6;
  ld.global.u8 %r12, [%rd7];
  setp.ne.u32 %p3, %r11, %r12;
  selp.b32 %r8, 0, %r8, %p3;
  add.u32 %r9, %r9, 1;
  bra LOOP;
STORE:
  cvt.u64.u32 %rd8, %r1;
  add.u64 %rd9, %rd3, %rd8;
  st.global.u8 [%rd9], %r8;
END:
  ret;
}
)";
}

std::string reduce_shared_ptx() {
  // Block-level tree reduction: out[0] = sum(A[0..ntid)).  The warp
  // diverges on `tid < offset` and must reconverge before each bar.
  return R"(
.version 6.0
.target sm_30
.address_size 64

.visible .entry reduce(
  .param .u64 arr_A,
  .param .u64 out
)
{
  .reg .pred %p<4>;
  .reg .u32 %r<16>;
  .reg .u64 %rd<6>;
  .shared .align 4 .b8 sh[256];

  ld.param.u64 %rd1, [arr_A];
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;

  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  ld.global.u32 %r3, [%rd3];
  shl.b32 %r4, %r1, 2;
  mov.u32 %r5, sh;
  add.u32 %r6, %r5, %r4;
  st.shared.u32 [%r6], %r3;
  bar.sync 0;

  shr.u32 %r7, %r2, 1;
LOOP:
  setp.eq.u32 %p1, %r7, 0;
  @%p1 bra DONE;
  setp.ge.u32 %p2, %r1, %r7;
  @%p2 bra SKIP;
  add.u32 %r8, %r1, %r7;
  shl.b32 %r9, %r8, 2;
  add.u32 %r10, %r5, %r9;
  ld.shared.u32 %r11, [%r10];
  ld.shared.u32 %r12, [%r6];
  add.u32 %r13, %r11, %r12;
  st.shared.u32 [%r6], %r13;
SKIP:
  bar.sync 0;
  shr.u32 %r7, %r7, 1;
  bra LOOP;
DONE:
  setp.ne.u32 %p3, %r1, 0;
  @%p3 bra END;
  ld.shared.u32 %r14, [%r5];
  ld.param.u64 %rd4, [out];
  st.global.u32 [%rd4], %r14;
END:
  ret;
}
)";
}

std::string atomic_sum_ptx() {
  return R"(
.version 6.0
.target sm_30
.address_size 64

// Grid-wide out[0] += A[i] via atom.add (commits with valid bits set).
.visible .entry atomic_sum(
  .param .u64 arr_A,
  .param .u64 out,
  .param .u32 size
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<8>;
  .reg .u64 %rd<6>;

  ld.param.u64 %rd1, [arr_A];
  ld.param.u64 %rd2, [out];
  ld.param.u32 %r2, [size];

  mov.u32 %r3, %ntid.x;
  mov.u32 %r4, %ctaid.x;
  mov.u32 %r5, %tid.x;
  mad.lo.u32 %r1, %r4, %r3, %r5;

  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra END;

  mul.wide.u32 %rd3, %r1, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.u32 %r6, [%rd4];
  atom.global.add.u32 %r7, [%rd2], %r6;

END:
  ret;
}
)";
}

std::string histogram_ptx() {
  return R"(
.version 6.0
.target sm_30
.address_size 64

// hist[data[i] & mask] += 1 for i < size.
.visible .entry histogram(
  .param .u64 data,
  .param .u64 hist,
  .param .u32 size,
  .param .u32 mask
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<10>;
  .reg .u64 %rd<7>;

  ld.param.u64 %rd1, [data];
  ld.param.u64 %rd2, [hist];
  ld.param.u32 %r2, [size];
  ld.param.u32 %r3, [mask];

  mov.u32 %r4, %ntid.x;
  mov.u32 %r5, %ctaid.x;
  mov.u32 %r6, %tid.x;
  mad.lo.u32 %r1, %r5, %r4, %r6;

  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra END;

  cvt.u64.u32 %rd3, %r1;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.u8 %r7, [%rd4];
  and.b32 %r8, %r7, %r3;
  mul.wide.u32 %rd5, %r8, 4;
  add.u64 %rd6, %rd2, %rd5;
  atom.global.add.u32 %r9, [%rd6], 1;

END:
  ret;
}
)";
}

std::string saxpy_ptx() {
  return R"(
.version 6.0
.target sm_30
.address_size 64

// Y[i] = a * X[i] + Y[i] for i < size.
.visible .entry saxpy(
  .param .u64 arr_X,
  .param .u64 arr_Y,
  .param .u32 a,
  .param .u32 size
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<10>;
  .reg .u64 %rd<6>;

  ld.param.u64 %rd1, [arr_X];
  ld.param.u64 %rd2, [arr_Y];
  ld.param.u32 %r2, [a];
  ld.param.u32 %r3, [size];

  mov.u32 %r4, %ntid.x;
  mov.u32 %r5, %ctaid.x;
  mov.u32 %r6, %tid.x;
  mad.lo.u32 %r1, %r5, %r4, %r6;

  setp.ge.u32 %p1, %r1, %r3;
  @%p1 bra END;

  mul.wide.u32 %rd3, %r1, 4;
  add.u64 %rd4, %rd1, %rd3;
  add.u64 %rd5, %rd2, %rd3;
  ld.global.u32 %r7, [%rd4];
  ld.global.u32 %r8, [%rd5];
  mad.lo.u32 %r9, %r2, %r7, %r8;
  st.global.u32 [%rd5], %r9;

END:
  ret;
}
)";
}

std::string copy_v2_ptx() {
  return R"(
.version 6.0
.target sm_30
.address_size 64

// out[2i], out[2i+1] = in[2i], in[2i+1] using vectorized accesses.
.visible .entry copy_v2(
  .param .u64 in,
  .param .u64 out,
  .param .u32 npairs
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<8>;
  .reg .u64 %rd<6>;

  ld.param.u64 %rd1, [in];
  ld.param.u64 %rd2, [out];
  ld.param.u32 %r2, [npairs];

  mov.u32 %r3, %ntid.x;
  mov.u32 %r4, %ctaid.x;
  mov.u32 %r5, %tid.x;
  mad.lo.u32 %r1, %r4, %r3, %r5;

  setp.ge.u32 %p1, %r1, %r2;
  @%p1 bra END;

  mul.wide.u32 %rd3, %r1, 8;
  add.u64 %rd4, %rd1, %rd3;
  add.u64 %rd5, %rd2, %rd3;
  ld.global.v2.u32 {%r6, %r7}, [%rd4];
  st.global.v2.u32 [%rd5], {%r6, %r7};

END:
  ret;
}
)";
}

std::string warp_reduce_shfl_ptx() {
  // Butterfly reduction across one 8-lane warp: after rounds with XOR
  // masks 4, 2, 1 every lane holds the total; lane 0 stores it.
  return R"(
.version 6.0
.target sm_30
.address_size 64

.visible .entry warp_reduce(
  .param .u64 arr_A,
  .param .u64 out
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<5>;
  .reg .u64 %rd<5>;

  ld.param.u64 %rd1, [arr_A];
  mov.u32 %r1, %tid.x;
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  ld.global.u32 %r2, [%rd3];

  shfl.bfly.b32 %r3, %r2, 4;
  add.u32 %r2, %r2, %r3;
  shfl.bfly.b32 %r3, %r2, 2;
  add.u32 %r2, %r2, %r3;
  shfl.bfly.b32 %r3, %r2, 1;
  add.u32 %r2, %r2, %r3;

  setp.ne.u32 %p1, %r1, 0;
  @%p1 bra END;
  ld.param.u64 %rd4, [out];
  st.global.u32 [%rd4], %r2;
END:
  ret;
}
)";
}

std::string scan_prefix_ptx() {
  // Hillis–Steele inclusive scan: each round, lane i (i >= offset)
  // reads sh[i-offset] (barrier), adds it into its accumulator and
  // publishes (barrier), with offset doubling each round.
  return R"(
.version 6.0
.target sm_30
.address_size 64

.visible .entry scan_prefix(
  .param .u64 arr_A,
  .param .u64 out
)
{
  .reg .pred %p<4>;
  .reg .u32 %r<10>;
  .reg .u64 %rd<6>;
  .shared .align 4 .b8 sh[256];

  ld.param.u64 %rd1, [arr_A];
  mov.u32 %r1, %tid.x;
  mov.u32 %r6, %ntid.x;
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  ld.global.u32 %r2, [%rd3];
  shl.b32 %r7, %r1, 2;
  mov.u32 %r8, sh;
  add.u32 %r7, %r8, %r7;
  st.shared.u32 [%r7], %r2;
  bar.sync 0;

  mov.u32 %r4, 1;
LOOP:
  setp.ge.u32 %p1, %r4, %r6;
  @%p1 bra DONE;

  setp.lt.u32 %p2, %r1, %r4;
  @%p2 bra SKIPR;
  sub.u32 %r9, %r1, %r4;
  shl.b32 %r9, %r9, 2;
  add.u32 %r9, %r8, %r9;
  ld.shared.u32 %r5, [%r9];
SKIPR:
  bar.sync 0;

  setp.lt.u32 %p3, %r1, %r4;
  @%p3 bra SKIPW;
  add.u32 %r2, %r2, %r5;
  st.shared.u32 [%r7], %r2;
SKIPW:
  bar.sync 0;

  shl.b32 %r4, %r4, 1;
  bra LOOP;
DONE:
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd2;
  st.global.u32 [%rd5], %r2;
  ret;
}
)";
}

std::string reduce_shared_nobar_ptx() {
  // The reduction with the barriers stripped: every ld.shared in the
  // loop now reads uncommitted bytes (valid bit false).
  std::string src = reduce_shared_ptx();
  std::string needle = "  bar.sync 0;\n";
  for (std::size_t pos = src.find(needle); pos != std::string::npos;
       pos = src.find(needle)) {
    src.erase(pos, needle.size());
  }
  return src;
}

std::string barrier_divergence_ptx() {
  // Thread 0 branches to a barrier the rest of the warp never reaches:
  // the warp can neither execute (leftmost at Bar) nor lift the barrier
  // (warp divergent) — the paper's §III-8 deadlock.
  return R"(
.version 6.0
.target sm_30
.address_size 64

.visible .entry barrier_divergence()
{
  .reg .pred %p<2>;
  .reg .u32 %r<3>;

  mov.u32 %r1, %tid.x;
  setp.eq.u32 %p1, %r1, 0;
  @%p1 bra WAIT;
  bra END;
WAIT:
  bar.sync 0;
END:
  ret;
}
)";
}

std::string race_store_ptx() {
  return R"(
.version 6.0
.target sm_30
.address_size 64

// Every thread stores its own tid to out[0]: a same-instruction store
// conflict whose final value depends on the lane order.
.visible .entry race_store(
  .param .u64 out
)
{
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;

  ld.param.u64 %rd1, [out];
  mov.u32 %r1, %tid.x;
  st.global.u32 [%rd1], %r1;
  ret;
}
)";
}

ptx::Program divergent_exit_program() {
  const Reg r1{TypeClass::UI, 32, 1};
  const Pred p1{1};
  std::vector<Instr> code = {
      /*0*/ IMov{r1, op_sreg(SregKind::Tid, Dim::X)},
      /*1*/ ISetp{CmpOp::Eq, UI(32), p1, op_reg(r1), op_imm(0)},
      /*2*/ IPBra{p1, false, 4},
      /*3*/ IBop{BinOp::Add, UI(32), r1, op_reg(r1), op_imm(1)},
      /*4*/ IExit{},  // no Sync: a divergent warp gets stuck here
  };
  return Program("divergent_exit", std::move(code));
}

ptx::Program straightline_program(unsigned n_ops) {
  const Reg r1{TypeClass::UI, 32, 1};
  const Reg r2{TypeClass::UI, 32, 2};
  std::vector<Instr> code;
  code.push_back(IMov{r1, op_sreg(SregKind::Tid, Dim::X)});
  code.push_back(IMov{r2, op_imm(1)});
  for (unsigned i = 0; i < n_ops; ++i) {
    code.push_back(IBop{i % 2 ? BinOp::Add : BinOp::Xor, UI(32), r2,
                        op_reg(r2), op_reg(r1)});
  }
  code.push_back(IExit{});
  return Program("straightline", std::move(code));
}

}  // namespace cac::programs
