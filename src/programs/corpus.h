// A corpus of PTX kernels used throughout the tests, benches and
// examples.  The centerpiece is the paper's vector-sum walk-through
// (§IV): the verbatim Listing-1 PTX text and a hand-built program that
// matches Listing 2 instruction-for-instruction (20 instructions,
// PBra target 18, termination in exactly 19 grid steps).
#pragma once

#include <string>

#include "ptx/program.h"

namespace cac::programs {

// --- the paper's §IV example -------------------------------------------

/// Listing 1: the vector-sum PTX emitted by nvcc (parameters renamed to
/// arr_A/arr_B/arr_C/size as in the paper).
std::string vector_add_ptx();

/// Listing 2: the paper's hand translation.  ld.param appears as a
/// Param-space load (same instruction count); cvta.to instructions are
/// omitted; Sync at index 18, Exit at 19.
ptx::Program vector_add_listing2();

/// Conventional Global-space layout used by the vector-add examples.
struct VecAddLayout {
  std::uint64_t a = 0x100;
  std::uint64_t b = 0x200;
  std::uint64_t c = 0x300;
  std::uint64_t global_bytes = 0x400;
};

// --- further well-formed kernels ---------------------------------------

/// Keystream XOR (paper §I motivation: GPU cryptography):
/// C[i] = A[i] xor B[i] for i < size, bounds-guarded.
std::string xor_cipher_ptx();

/// Signature scan (paper §I motivation: GPU virus scanning): thread i
/// tests whether pattern[0..plen) occurs at data[i..i+plen) and writes
/// a 0/1 match flag.  The inner loop is predicated with selp, so the
/// only divergence is the bounds guard (well-nested, distinct joins).
std::string scan_signature_ptx();

/// Block-level tree reduction through Shared memory with bar.sync;
/// out[0] = sum(A[0..ntid)).  Exercises Shared valid-bit commits.
std::string reduce_shared_ptx();

/// Grid-wide sum via atom.add (the paper's atomics carve-out: atomic
/// stores commit with the valid bit set).
std::string atomic_sum_ptx();

/// Byte histogram: thread i bins data[i] into hist[data[i] & mask]
/// with atom.add — contended atomics across warps and blocks.
std::string histogram_ptx();

/// SAXPY-style kernel: Y[i] = a*X[i] + Y[i] for i < size, with the
/// scalar `a` a kernel parameter (symbolic in for-all-inputs proofs).
std::string saxpy_ptx();

/// Pairwise copy using vectorized memory accesses: thread i moves
/// in[2i..2i+1] to out[2i..2i+1] via ld.global.v2 / st.global.v2.
std::string copy_v2_ptx();

/// Warp-level butterfly reduction via shfl.bfly (no Shared memory, no
/// barriers): out[0] = sum(A[0..8)) for one 8-lane warp.
std::string warp_reduce_shfl_ptx();

/// Hillis–Steele inclusive prefix sum over one block through Shared
/// memory, double-barrier version: out[i] = A[0] + ... + A[i].
std::string scan_prefix_ptx();

// --- deliberately broken kernels (failure-injection corpus) ------------

/// The reduction with every bar.sync removed: shared reads see
/// uncommitted (invalid) bytes — the synchronization-bug class the
/// paper's memory model is designed to expose (§III-2).
std::string reduce_shared_nobar_ptx();

/// Barrier divergence: thread 0 waits at a barrier its warp siblings
/// never reach — the §III-8 deadlock scenario.
std::string barrier_divergence_ptx();

/// Every thread stores its own tid to out[0]: intra-warp store
/// conflict; the final value depends on the lane order.
std::string race_store_ptx();

/// Hand-built: a divergent branch with NO reconvergence Sync before
/// Exit; the warp gets stuck divergent at Exit.
ptx::Program divergent_exit_program();

/// Hand-built: straight-line per-thread arithmetic (no branches, no
/// memory), handy for scheduler-transparency sweeps.
ptx::Program straightline_program(unsigned n_ops);

}  // namespace cac::programs
