#include "support/strings.h"

#include <cctype>

namespace cac {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace cac
