// Bounds-checked little-endian binary encoding, the byte-level layer of
// the exploration checkpoint format (sched/checkpoint.h).
//
// Writers append to a growable buffer; readers consume a byte span and
// throw BinError the moment a read would run past the end or a size
// prefix is implausible — *before* allocating, so a corrupt or
// truncated payload can cost at most an exception, never an OOM or a
// crash.  All integers are fixed-width little-endian (the format is a
// persistent artifact; host byte order must not leak into it).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cac::support {

/// Malformed binary input: truncated stream, oversized length prefix,
/// or an out-of-range enum tag.  Checkpoint loading translates this
/// into a structured CheckpointError.
class BinError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed string (u64 size + raw bytes).
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  /// Raw bytes, no size prefix; pair with a reader that knows the size.
  void bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  [[nodiscard]] const std::string& buffer() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    char out[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buf_.append(out, sizeof(T));
  }

  std::string buf_;
};

class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);  // validates the length prefix before allocating
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  void bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  /// Read a count prefix for elements of at least `elem_bytes` each,
  /// rejecting counts the remaining input cannot possibly hold — the
  /// guard that keeps corrupt size fields from turning into huge
  /// reserve() calls.
  std::uint64_t count(std::size_t elem_bytes = 1) {
    const std::uint64_t n = u64();
    if (elem_bytes != 0 && n > remaining() / elem_bytes) {
      throw BinError("implausible element count in binary input");
    }
    return n;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::uint64_t n) const {
    if (n > remaining()) throw BinError("truncated binary input");
  }

  template <typename T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace cac::support
