// Small string utilities used by the PTX lexer and the report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cac {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// True if `s` starts with / ends with the given prefix or suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

}  // namespace cac
