// Deterministic fault injection (docs/robustness.md).
//
// Every I/O choke point in the system — socket send/recv/connect/
// accept in dist/transport, file open/write/rename in the checkpoint,
// spill, verdict-cache and serve-journal paths (support/io.h), and the
// serve job lifecycle — consults this seam before touching the kernel:
//
//   if (int err = support::fault_check("write", path)) { errno = err; ... }
//
// A *fault plan* is an ordered list of rules ("the 3rd write to *.spill
// fails ENOSPC", "every 5th send returns EPIPE", "delay recv by 50 ms"),
// parsed from the CAC_FAULT_PLAN environment variable or installed
// programmatically by tests.  Rules are matched and counted
// deterministically — the same plan against the same workload injects
// the same faults at the same sites every run — which is what lets the
// chaos drill (tools/chaos_drill.py) assert byte-identical verdicts
// under randomized fault schedules.
//
// Plan syntax (rules separated by ';', fields by ','):
//
//   CAC_FAULT_PLAN="seed=42;op=write,path=*.ckpt,nth=3,err=ENOSPC;
//                   op=send,every=5,err=EPIPE;op=recv,delay=50"
//
//   op=NAME      operation: write | rename | open | send | recv |
//                connect | accept (or * for any)
//   path=GLOB    site label glob ('*' wildcards; default *)
//   nth=N        fire exactly on the Nth matching call (1-based)
//   every=N      fire on every Nth matching call
//   p=F          fire with probability F (seeded, deterministic)
//   count=N      stop after N fires (default: 1 for nth, unlimited else)
//   err=E        errno to inject: ENOSPC EIO EPIPE ECONNRESET
//                ECONNREFUSED ETIMEDOUT EAGAIN or a number (default EIO)
//   delay=MS     sleep MS before returning; with no err= the call then
//                proceeds normally (pure latency injection)
//
// Zero-cost when disabled: fault_check() is a single relaxed atomic
// load before any argument is even formed into a string
// (bench_serve's BM_FaultSeamDisabled pins the bound).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cac::support {

class FaultPlanError : public std::runtime_error {
 public:
  explicit FaultPlanError(const std::string& msg)
      : std::runtime_error("fault plan: " + msg) {}
};

struct FaultRule {
  std::string op = "*";    // operation name, or "*" for any
  std::string path = "*";  // glob over the site label
  std::uint64_t nth = 0;   // fire exactly on the Nth match (1-based)
  std::uint64_t every = 0; // fire on every Nth match
  double prob = 0.0;       // fire with this probability (seeded)
  std::uint64_t max_fires = 0;  // 0 = unlimited (nth defaults to 1)
  int err = 0;             // errno to inject (0 = none: pure delay)
  std::uint64_t delay_ms = 0;

  // Runtime accounting (mutated under the plan lock).
  std::uint64_t matches = 0;
  std::uint64_t fired = 0;
};

struct FaultPlan {
  std::uint64_t seed = 1;  // drives the p= rules' deterministic RNG
  std::vector<FaultRule> rules;

  /// Parse the CAC_FAULT_PLAN syntax above.  Throws FaultPlanError on
  /// malformed specs (unknown key, bad number, unknown errno name).
  static FaultPlan parse(const std::string& spec);
};

/// Install `plan` as the process-global plan and enable the seam.
void fault_install(FaultPlan plan);
/// Parse + install.  Throws FaultPlanError.
void fault_install(const std::string& spec);
/// Disable the seam and drop the plan (counters reset).
void fault_clear();
/// Install from $CAC_FAULT_PLAN when set (malformed plans abort with a
/// message — a typo must not silently run un-faulted).  Called once by
/// tool main()s; a no-op when the variable is unset.
void fault_init_from_env();

/// Total faults injected (fired rules) since install.
std::uint64_t fault_injections();
/// True when a plan is installed.
bool fault_active();

namespace detail {
extern std::atomic<bool> g_fault_enabled;
int fault_check_slow(std::string_view op, std::string_view path);
}  // namespace detail

/// The hot-path hook: returns the errno to inject at this site (after
/// sleeping any injected delay), or 0 to proceed.  One relaxed atomic
/// load when no plan is installed.
inline int fault_check(std::string_view op, std::string_view path = {}) {
  if (!detail::g_fault_enabled.load(std::memory_order_relaxed)) return 0;
  return detail::fault_check_slow(op, path);
}

/// RAII plan install for tests: installs on construction, restores the
/// empty seam on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const std::string& spec) { fault_install(spec); }
  explicit ScopedFaultPlan(FaultPlan plan) { fault_install(std::move(plan)); }
  ~ScopedFaultPlan() { fault_clear(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace cac::support
