#include "support/fault.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace cac::support {
namespace {

// splitmix64: tiny, seedable, and stable across platforms — the p=
// rules must fire at the same call sites for a given seed everywhere.
std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Classic '*'/'?' glob over the site label.  Iterative backtracking:
// no recursion, O(n*m) worst case on short labels.
bool glob_match(std::string_view pat, std::string_view str) {
  std::size_t p = 0, s = 0, star = std::string_view::npos, mark = 0;
  while (s < str.size()) {
    if (p < pat.size() && (pat[p] == '?' || pat[p] == str[s])) {
      ++p, ++s;
    } else if (p < pat.size() && pat[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  return p == pat.size();
}

int errno_from_name(const std::string& name) {
  struct Entry {
    const char* name;
    int value;
  };
  static constexpr Entry kTable[] = {
      {"ENOSPC", ENOSPC},         {"EIO", EIO},
      {"EPIPE", EPIPE},           {"ECONNRESET", ECONNRESET},
      {"ECONNREFUSED", ECONNREFUSED}, {"ETIMEDOUT", ETIMEDOUT},
      {"EAGAIN", EAGAIN},         {"EACCES", EACCES},
      {"EBADF", EBADF},           {"EINTR", EINTR},
      {"ENOENT", ENOENT},         {"EMFILE", EMFILE},
  };
  for (const auto& e : kTable)
    if (name == e.name) return e.value;
  char* end = nullptr;
  long v = std::strtol(name.c_str(), &end, 10);
  if (end && *end == '\0' && v > 0 && v < 4096) return static_cast<int>(v);
  throw FaultPlanError("unknown errno '" + name + "'");
}

std::uint64_t parse_u64(const std::string& key, const std::string& val) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(val.c_str(), &end, 10);
  if (!end || *end != '\0' || val.empty())
    throw FaultPlanError("bad number for " + key + ": '" + val + "'");
  return static_cast<std::uint64_t>(v);
}

struct Seam {
  std::mutex mu;
  FaultPlan plan;
  std::uint64_t rng = 1;
  std::uint64_t injections = 0;
};

Seam& seam() {
  static Seam s;
  return s;
}

}  // namespace

namespace detail {
std::atomic<bool> g_fault_enabled{false};

int fault_check_slow(std::string_view op, std::string_view path) {
  std::uint64_t delay_ms = 0;
  int err = 0;
  {
    Seam& s = seam();
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto& rule : s.plan.rules) {
      if (rule.op != "*" && rule.op != op) continue;
      if (!glob_match(rule.path, path)) continue;
      ++rule.matches;
      if (rule.max_fires != 0 && rule.fired >= rule.max_fires) continue;
      bool fire = false;
      if (rule.nth != 0) {
        fire = rule.matches == rule.nth;
      } else if (rule.every != 0) {
        fire = rule.matches % rule.every == 0;
      } else if (rule.prob > 0.0) {
        double u = static_cast<double>(splitmix64(s.rng) >> 11) *
                   0x1.0p-53;  // uniform in [0,1)
        fire = u < rule.prob;
      } else {
        fire = true;  // unconditional rule
      }
      if (!fire) continue;
      ++rule.fired;
      ++s.injections;
      delay_ms += rule.delay_ms;
      if (rule.err != 0 && err == 0) err = rule.err;
      // First erroring rule wins, but all matching delays accumulate.
    }
  }
  if (delay_ms != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  return err;
}
}  // namespace detail

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string part = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim whitespace (plans often arrive from YAML with line breaks).
    while (!part.empty() && (part.front() == ' ' || part.front() == '\n' ||
                             part.front() == '\t'))
      part.erase(part.begin());
    while (!part.empty() && (part.back() == ' ' || part.back() == '\n' ||
                             part.back() == '\t'))
      part.pop_back();
    if (part.empty()) {
      if (end == spec.size()) break;
      continue;
    }
    // A bare "seed=N" segment sets the plan seed.
    if (part.rfind("seed=", 0) == 0 &&
        part.find(',') == std::string::npos) {
      plan.seed = parse_u64("seed", part.substr(5));
      continue;
    }
    FaultRule rule;
    std::size_t fpos = 0;
    while (fpos <= part.size()) {
      std::size_t fend = part.find(',', fpos);
      if (fend == std::string::npos) fend = part.size();
      std::string field = part.substr(fpos, fend - fpos);
      fpos = fend + 1;
      while (!field.empty() && (field.front() == ' ' || field.front() == '\n' ||
                                field.front() == '\t'))
        field.erase(field.begin());
      while (!field.empty() && (field.back() == ' ' || field.back() == '\n' ||
                                field.back() == '\t'))
        field.pop_back();
      if (field.empty()) {
        if (fend == part.size()) break;
        continue;
      }
      std::size_t eq = field.find('=');
      if (eq == std::string::npos)
        throw FaultPlanError("field missing '=': '" + field + "'");
      std::string key = field.substr(0, eq);
      std::string val = field.substr(eq + 1);
      if (key == "op") {
        rule.op = val;
      } else if (key == "path") {
        rule.path = val;
      } else if (key == "nth") {
        rule.nth = parse_u64(key, val);
        if (rule.nth == 0) throw FaultPlanError("nth must be >= 1");
      } else if (key == "every") {
        rule.every = parse_u64(key, val);
        if (rule.every == 0) throw FaultPlanError("every must be >= 1");
      } else if (key == "p") {
        char* endp = nullptr;
        rule.prob = std::strtod(val.c_str(), &endp);
        if (!endp || *endp != '\0' || rule.prob < 0.0 || rule.prob > 1.0)
          throw FaultPlanError("p must be in [0,1]: '" + val + "'");
      } else if (key == "count") {
        rule.max_fires = parse_u64(key, val);
      } else if (key == "err") {
        rule.err = errno_from_name(val);
      } else if (key == "delay") {
        rule.delay_ms = parse_u64(key, val);
      } else {
        throw FaultPlanError("unknown key '" + key + "'");
      }
      if (fend == part.size()) break;
    }
    if (rule.nth != 0 && rule.every != 0)
      throw FaultPlanError("rule has both nth= and every=");
    // A rule with no err= and no delay= injects the documented default
    // errno (EIO) rather than silently doing nothing.
    if (rule.err == 0 && rule.delay_ms == 0) rule.err = EIO;
    // nth= rules are one-shot by construction; give them max_fires=1 so
    // the accounting reads uniformly.
    if (rule.nth != 0 && rule.max_fires == 0) rule.max_fires = 1;
    plan.rules.push_back(std::move(rule));
    if (end == spec.size()) break;
  }
  return plan;
}

void fault_install(FaultPlan plan) {
  Seam& s = seam();
  std::lock_guard<std::mutex> lock(s.mu);
  s.plan = std::move(plan);
  s.rng = s.plan.seed ? s.plan.seed : 1;
  s.injections = 0;
  detail::g_fault_enabled.store(!s.plan.rules.empty(),
                                std::memory_order_relaxed);
}

void fault_install(const std::string& spec) {
  fault_install(FaultPlan::parse(spec));
}

void fault_clear() {
  Seam& s = seam();
  std::lock_guard<std::mutex> lock(s.mu);
  detail::g_fault_enabled.store(false, std::memory_order_relaxed);
  s.plan = FaultPlan{};
  s.injections = 0;
}

void fault_init_from_env() {
  const char* spec = std::getenv("CAC_FAULT_PLAN");
  if (!spec || !*spec) return;
  try {
    fault_install(std::string(spec));
  } catch (const FaultPlanError& e) {
    // A typo'd plan silently running un-faulted would defeat the chaos
    // drill; fail loudly instead.
    std::fprintf(stderr, "cacval: CAC_FAULT_PLAN: %s\n", e.what());
    std::exit(2);
  }
}

std::uint64_t fault_injections() {
  Seam& s = seam();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.injections;
}

bool fault_active() {
  return detail::g_fault_enabled.load(std::memory_order_relaxed);
}

}  // namespace cac::support
