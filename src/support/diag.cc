#include "support/diag.h"

namespace cac {

std::string SourceLoc::str() const {
  if (!valid()) return "<no-loc>";
  return std::to_string(line) + ":" + std::to_string(column);
}

PtxError::PtxError(SourceLoc loc, const std::string& message)
    : std::runtime_error(loc.str() + ": " + message), loc_(loc) {}

PtxError::PtxError(const std::string& message)
    : std::runtime_error(message) {}

}  // namespace cac
