// Byte-level delta encoding for the tiered state store
// (sched/state_store.h): a warp fragment whose canonical encoding
// differs from its parent's by a few register values compresses to a
// handful of copy/literal ops against the parent's bytes.
//
// The format is a tiny xdelta-style op stream over support/binio.h:
//
//   u32 n_ops, then per op:
//     u8 0 (copy):    u32 base_offset, u32 len
//     u8 1 (literal): u32 len, raw bytes
//
// make() never fails (worst case: one literal op covering the whole
// target — callers compare sizes and keep the full encoding when the
// delta does not pay for itself).  apply() is fully validating: a
// malformed or out-of-range op stream throws support::BinError before
// any oversized allocation, matching the binio robustness contract.
#pragma once

#include <string>
#include <string_view>

namespace cac::support::delta {

/// Encode `target` as an op stream against `base`.  Deterministic and
/// allocation-light: common prefix + common suffix are emitted as copy
/// ops, the changed middle as one literal — the shape register-local
/// semantic steps produce.
std::string make(std::string_view base, std::string_view target);

/// Reconstruct the target bytes.  Throws support::BinError on a
/// malformed op stream or ops that read outside `base`.
std::string apply(std::string_view base, std::string_view delta);

}  // namespace cac::support::delta
