#include "support/delta.h"

#include <algorithm>
#include <cstddef>

#include "support/binio.h"

namespace cac::support::delta {
namespace {

constexpr std::uint8_t kCopy = 0;
constexpr std::uint8_t kLiteral = 1;

}  // namespace

std::string make(std::string_view base, std::string_view target) {
  // Longest common prefix, then longest common suffix of the rest.
  const std::size_t max_p = std::min(base.size(), target.size());
  std::size_t p = 0;
  while (p < max_p && base[p] == target[p]) ++p;
  std::size_t s = 0;
  const std::size_t max_s = max_p - p;
  while (s < max_s &&
         base[base.size() - 1 - s] == target[target.size() - 1 - s]) {
    ++s;
  }

  BinWriter w;
  std::uint32_t n_ops = 0;
  if (p > 0) ++n_ops;
  if (target.size() - p - s > 0) ++n_ops;
  if (s > 0) ++n_ops;
  w.u32(n_ops);
  if (p > 0) {
    w.u8(kCopy);
    w.u32(0);
    w.u32(static_cast<std::uint32_t>(p));
  }
  if (target.size() - p - s > 0) {
    const std::size_t mid = target.size() - p - s;
    w.u8(kLiteral);
    w.u32(static_cast<std::uint32_t>(mid));
    w.bytes(target.data() + p, mid);
  }
  if (s > 0) {
    w.u8(kCopy);
    w.u32(static_cast<std::uint32_t>(base.size() - s));
    w.u32(static_cast<std::uint32_t>(s));
  }
  return w.take();
}

std::string apply(std::string_view base, std::string_view delta) {
  BinReader r(delta);
  const std::uint32_t n_ops = r.u32();
  // Each op costs at least 5 bytes on the wire.
  if (n_ops > delta.size() / 5 + 1) {
    throw BinError("implausible delta op count");
  }
  std::string out;
  for (std::uint32_t i = 0; i < n_ops; ++i) {
    const std::uint8_t tag = r.u8();
    if (tag == kCopy) {
      const std::uint64_t off = r.u32();
      const std::uint64_t len = r.u32();
      if (off + len > base.size()) {
        throw BinError("delta copy op reads outside the base fragment");
      }
      out.append(base.data() + off, len);
    } else if (tag == kLiteral) {
      const std::uint32_t len = r.u32();
      if (len > r.remaining()) {
        throw BinError("truncated delta literal op");
      }
      std::string lit(len, '\0');
      r.bytes(lit.data(), len);
      out.append(lit);
    } else {
      throw BinError("unknown delta op tag");
    }
  }
  if (!r.done()) throw BinError("trailing bytes after delta op stream");
  return out;
}

}  // namespace cac::support::delta
