#include "support/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "support/fault.h"

namespace cac::support {
namespace {

std::string err_msg(const char* what, const std::string& path, int err) {
  std::string m = "cannot ";
  m += what;
  m += " ";
  m += path;
  m += ": ";
  m += std::strerror(err);
  return m;
}

}  // namespace

std::string read_file(const std::string& path) {
  if (int err = fault_check("open", path))
    throw IoError(err_msg("open", path, err), err);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw IoError(err_msg("open", path, errno), errno);
  std::string data;
  char buf[1 << 16];
  for (;;) {
    if (int err = fault_check("read", path)) {
      std::fclose(f);
      throw IoError(err_msg("read", path, err), err);
    }
    std::size_t n = std::fread(buf, 1, sizeof buf, f);
    data.append(buf, n);
    if (n < sizeof buf) {
      if (std::ferror(f)) {
        int err = errno;
        std::fclose(f);
        throw IoError(err_msg("read", path, err), err);
      }
      break;
    }
  }
  std::fclose(f);
  return data;
}

std::string read_file_or_empty(const std::string& path) {
  try {
    return read_file(path);
  } catch (const IoError&) {
    return {};
  }
}

void write_file_atomic(const std::string& path, const std::string& data,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  if (int err = fault_check("open", path))
    throw IoError(err_msg("create", tmp, err), err);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw IoError(err_msg("create", tmp, errno), errno);
  auto fail = [&](const char* what, int err) {
    std::fclose(f);
    ::unlink(tmp.c_str());
    throw IoError(err_msg(what, tmp, err), err);
  };
  if (int err = fault_check("write", path)) fail("write", err);
  if (!data.empty() &&
      std::fwrite(data.data(), 1, data.size(), f) != data.size())
    fail("write", errno ? errno : EIO);
  if (std::fflush(f) != 0) fail("write", errno ? errno : EIO);
  if (sync && ::fsync(::fileno(f)) != 0) fail("sync", errno);
  std::fclose(f);
  if (int err = fault_check("rename", path)) {
    ::unlink(tmp.c_str());
    throw IoError(err_msg("rename", tmp, err), err);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    throw IoError(err_msg("rename", tmp, err), err);
  }
}

bool try_write_file_atomic(const std::string& path, const std::string& data,
                           bool sync) noexcept {
  try {
    write_file_atomic(path, data, sync);
    return true;
  } catch (const IoError&) {
    return false;
  } catch (...) {
    return false;
  }
}

}  // namespace cac::support
