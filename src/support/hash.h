// Hashing utilities shared by all state-space memoization code.
//
// The exhaustive schedule explorer (src/sched) and the model checker
// (src/check) memoize visited machine states by hash; these helpers keep
// the hash construction uniform (64-bit FNV-1a with a boost-style
// combiner) so that two independently computed hashes of equal states
// agree across modules.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cac {

/// 64-bit FNV-1a over a byte range.
constexpr std::uint64_t fnv1a(const void* data, std::size_t n,
                              std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s,
                           std::uint64_t seed = 0xcbf29ce484222325ull) {
  return fnv1a(s.data(), s.size(), seed);
}

/// Mix a value into an accumulated hash (order-sensitive).
constexpr void hash_mix(std::uint64_t& h, std::uint64_t v) {
  // splitmix64-style finalizer on the incoming value, then combine.
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  v ^= v >> 31;
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

/// Accumulator with a fluent interface for hashing structured state.
class Hasher {
 public:
  Hasher& mix(std::uint64_t v) {
    hash_mix(h_, v);
    return *this;
  }
  Hasher& mix_bytes(const void* data, std::size_t n) {
    hash_mix(h_, fnv1a(data, n));
    return *this;
  }
  /// Bulk mix of a contiguous buffer, one 64-bit word at a time — ~8x
  /// fewer combiner rounds than per-byte mixing.  Used by the packed
  /// Memory representation, whose byte arrays and valid bitmaps are
  /// contiguous.  Distinct from mix_bytes (different stream layout), so
  /// callers must not mix(-and-match) the two over the same data.
  Hasher& mix_words(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      std::uint64_t w;
      __builtin_memcpy(&w, p + i, 8);
      hash_mix(h_, w);
    }
    if (i < n) {
      std::uint64_t w = 0;
      __builtin_memcpy(&w, p + i, n - i);
      hash_mix(h_, w);
    }
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0x243f6a8885a308d3ull;  // pi fractional bits
};

/// Memoization slot for an expensive structural hash.  The owning
/// object marks the slot dirty from every mutator; `get_or` recomputes
/// only when dirty.  Deliberately *excluded* from the owner's equality
/// (a stale-vs-fresh cache must not make equal states compare unequal),
/// so owners using `= default` comparisons must switch to an explicit
/// operator== over their real state.
///
/// Not internally synchronized: in concurrent code the owner must be
/// hashed by its owning thread before the object is published to other
/// threads (the parallel explorer's discipline, see
/// sched/explore_parallel.cc).
class HashCache {
 public:
  template <typename Fn>
  std::uint64_t get_or(Fn&& compute) const {
    if (!valid_) {
      value_ = compute();
      valid_ = true;
    }
    return value_;
  }
  void invalidate() const { valid_ = false; }

 private:
  mutable std::uint64_t value_ = 0;
  mutable bool valid_ = false;
};

/// Memoization slot for the structural hash of an object that may be
/// *shared between threads* once it becomes immutable — the refcounted
/// copy-on-write memory banks (mem::Memory::Bank).  Unlike HashCache,
/// racing get_or calls are allowed: the hash is a pure function of the
/// immutable content, so concurrent fillers compute the same value and
/// the release/acquire pair makes whichever store wins visible.
/// Copies start empty: a bank is only ever copied to be mutated
/// (copy-on-write), so carrying the cache over would just go stale.
class SharedHashCache {
 public:
  SharedHashCache() = default;
  SharedHashCache(const SharedHashCache&) {}
  SharedHashCache& operator=(const SharedHashCache&) { return *this; }

  template <typename Fn>
  std::uint64_t get_or(Fn&& compute) const {
    if (valid_.load(std::memory_order_acquire)) {
      return value_.load(std::memory_order_relaxed);
    }
    const std::uint64_t v = compute();
    value_.store(v, std::memory_order_relaxed);
    valid_.store(true, std::memory_order_release);
    return v;
  }
  /// Only legal while the owner is still uniquely owned (pre-sharing).
  void invalidate() const {
    valid_.store(false, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::uint64_t> value_{0};
  mutable std::atomic<bool> valid_{false};
};

}  // namespace cac
