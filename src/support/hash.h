// Hashing utilities shared by all state-space memoization code.
//
// The exhaustive schedule explorer (src/sched) and the model checker
// (src/check) memoize visited machine states by hash; these helpers keep
// the hash construction uniform (64-bit FNV-1a with a boost-style
// combiner) so that two independently computed hashes of equal states
// agree across modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cac {

/// 64-bit FNV-1a over a byte range.
constexpr std::uint64_t fnv1a(const void* data, std::size_t n,
                              std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s,
                           std::uint64_t seed = 0xcbf29ce484222325ull) {
  return fnv1a(s.data(), s.size(), seed);
}

/// Mix a value into an accumulated hash (order-sensitive).
constexpr void hash_mix(std::uint64_t& h, std::uint64_t v) {
  // splitmix64-style finalizer on the incoming value, then combine.
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  v ^= v >> 31;
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

/// Accumulator with a fluent interface for hashing structured state.
class Hasher {
 public:
  Hasher& mix(std::uint64_t v) {
    hash_mix(h_, v);
    return *this;
  }
  Hasher& mix_bytes(const void* data, std::size_t n) {
    hash_mix(h_, fnv1a(data, n));
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0x243f6a8885a308d3ull;  // pi fractional bits
};

}  // namespace cac
