// Diagnostics: source locations and the error type thrown by the PTX
// front end (lexer / parser / lowering).  Semantic validation failures
// are *data* (see src/check) and never use exceptions; exceptions are
// reserved for malformed input and internal invariant violations.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cac {

/// A position in a PTX source text.  Lines and columns are 1-based;
/// {0,0} means "no location" (e.g. programmatically built programs).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string str() const;
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Error thrown on malformed PTX input or an ill-formed model program.
class PtxError : public std::runtime_error {
 public:
  PtxError(SourceLoc loc, const std::string& message);
  explicit PtxError(const std::string& message);

  [[nodiscard]] const SourceLoc& loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

/// Internal invariant violation inside the trusted semantics kernel.
/// Raised e.g. when a checker asks the kernel to execute an instruction
/// that no derivation rule covers.
class KernelError : public std::logic_error {
 public:
  explicit KernelError(const std::string& message)
      : std::logic_error(message) {}
};

}  // namespace cac
