// Fixed-width integer arithmetic helpers.
//
// The PTX model stores every register value as a canonical 64-bit
// pattern whose bits above the register width are zero.  All arithmetic
// in the semantics kernel (src/sem/step.cc) goes through these helpers
// so that wrap-around, sign extension and width truncation behave
// exactly like the corresponding PTX machine operations.
#pragma once

#include <cassert>
#include <cstdint>

namespace cac {

/// All register/datatype widths the model supports, in bits.
inline constexpr unsigned kWidths[] = {8, 16, 32, 64};

constexpr bool is_valid_width(unsigned w) {
  return w == 8 || w == 16 || w == 32 || w == 64;
}

/// Mask with the low `w` bits set (w in [1,64]).
constexpr std::uint64_t low_mask(unsigned w) {
  assert(w >= 1 && w <= 64);
  return w == 64 ? ~0ull : ((1ull << w) - 1);
}

/// Truncate a value to `w` bits (canonical zero-extended form).
constexpr std::uint64_t truncate(std::uint64_t v, unsigned w) {
  return v & low_mask(w);
}

/// Interpret the low `w` bits of `v` as a signed two's-complement value.
constexpr std::int64_t to_signed(std::uint64_t v, unsigned w) {
  assert(is_valid_width(w));
  const std::uint64_t m = low_mask(w);
  const std::uint64_t sign_bit = 1ull << (w - 1);
  v &= m;
  if (v & sign_bit) return static_cast<std::int64_t>(v | ~m);
  return static_cast<std::int64_t>(v);
}

/// Sign-extend the low `w` bits of `v` to a canonical 64-bit pattern of
/// width `to` (to >= w).
constexpr std::uint64_t sign_extend(std::uint64_t v, unsigned w, unsigned to) {
  assert(to >= w);
  return truncate(static_cast<std::uint64_t>(to_signed(v, w)), to);
}

/// Arithmetic shift right within width `w`.
constexpr std::uint64_t ashr(std::uint64_t v, unsigned amount, unsigned w) {
  if (amount >= w) amount = w - 1;  // PTX clamps shift amounts
  return truncate(static_cast<std::uint64_t>(to_signed(v, w) >> amount), w);
}

/// Logical shift right within width `w`.
constexpr std::uint64_t lshr(std::uint64_t v, unsigned amount, unsigned w) {
  if (amount >= w) return 0;
  return truncate(v, w) >> amount;
}

/// Shift left within width `w`.
constexpr std::uint64_t shl(std::uint64_t v, unsigned amount, unsigned w) {
  if (amount >= w) return 0;
  return truncate(v << amount, w);
}

}  // namespace cac
