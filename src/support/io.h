// Small file-I/O wrapper routing the durability-critical paths —
// checkpoint save, verdict-cache persist, serve journal, frame files —
// through the fault-injection seam (support/fault.h).  Two tiers:
//
//   write_file_atomic      throws IoError; callers that must react to
//                          disk faults (checkpoint save) use this
//   try_write_file_atomic  best-effort bool; callers whose correctness
//                          does not depend on the write (cache persist,
//                          journal) use this and count failures
//
// Both write tmp-then-rename so readers never observe a torn file, and
// fsync before rename when `sync` is set so a crash cannot leave a
// renamed-but-empty file.
#pragma once

#include <stdexcept>
#include <string>

namespace cac::support {

class IoError : public std::runtime_error {
 public:
  IoError(std::string msg, int err)
      : std::runtime_error(std::move(msg)), errno_(err) {}
  [[nodiscard]] int error_code() const { return errno_; }

 private:
  int errno_;
};

/// Read a whole file.  Throws IoError (with errno) on open/read
/// failure.  Consults fault_check("open"/"read", path).
std::string read_file(const std::string& path);

/// read_file, but a missing/unreadable file yields "" instead of a
/// throw.  Injected faults also yield "" (the degraded path).
std::string read_file_or_empty(const std::string& path);

/// Write `data` to `path` via tmp + rename.  When `sync`, fsync the
/// tmp file before the rename.  Throws IoError carrying the failing
/// errno; the tmp file is unlinked on failure.  Consults
/// fault_check("open"/"write"/"rename", path).
void write_file_atomic(const std::string& path, const std::string& data,
                       bool sync = true);

/// Best-effort write_file_atomic: returns false instead of throwing.
bool try_write_file_atomic(const std::string& path, const std::string& data,
                           bool sync = true) noexcept;

}  // namespace cac::support
