#include "equiv/align.h"

#include <algorithm>

namespace cac::equiv {

using sym::Op;
using sym::TermArena;
using sym::TermNode;
using sym::TermRef;

std::optional<Cube> cube_of(TermArena& arena, Normalizer& norm,
                            TermRef cond) {
  // Path conditions are built as And-chains of branch predicates
  // (sym/exec.cc forks with band).  Normalize first — that flattens,
  // sorts, and may already collapse the condition to a constant.
  const TermRef n = norm.normalize(cond);
  if (const auto c = arena.const_value(n)) {
    if (*c == 0) return std::nullopt;  // infeasible path
    return Cube{};                     // unconditional
  }
  Cube cube;
  std::vector<TermRef> work{n};
  while (!work.empty()) {
    const TermRef cur = work.back();
    work.pop_back();
    const TermNode node = arena.node(cur);
    if (node.op == Op::And) {
      work.push_back(node.a);
      work.push_back(node.b);
      continue;
    }
    if (node.op == Op::Not) {
      cube.push_back(Literal{node.a, true});
      continue;
    }
    cube.push_back(Literal{cur, false});
  }
  std::sort(cube.begin(), cube.end());
  cube.erase(std::unique(cube.begin(), cube.end()), cube.end());
  // l ∧ ¬l: contradictory cube — the normalizer usually catches this
  // (x & ~x -> 0), but Not-of-And atoms can hide one from it.
  for (std::size_t i = 0; i + 1 < cube.size(); ++i) {
    if (cube[i].atom == cube[i + 1].atom && cube[i].neg != cube[i + 1].neg) {
      return std::nullopt;
    }
  }
  return cube;
}

namespace {

/// True when every literal of `a` appears in `b` (both sorted):
/// a ⊆ b means cube b implies cube a, so b is absorbed by a.
bool subset_of(const Cube& a, const Cube& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// If `a` and `b` differ in exactly one literal and that literal
/// appears with opposite polarity, return the merged cube without it:
/// (g ∧ d) ∨ (g ∧ ¬d)  ->  g.
std::optional<Cube> merge_complementary(const Cube& a, const Cube& b) {
  if (a.size() != b.size()) return std::nullopt;
  std::optional<std::size_t> flip;
  // Sorted cubes with one polarity flip still align index-by-index:
  // Literal orders by (atom, neg), so the flipped literal occupies the
  // same position in both.
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    if (a[i].atom == b[i].atom && a[i].neg != b[i].neg && !flip) {
      flip = i;
      continue;
    }
    return std::nullopt;
  }
  if (!flip) return std::nullopt;  // identical cubes
  Cube merged = a;
  merged.erase(merged.begin() + static_cast<std::ptrdiff_t>(*flip));
  return merged;
}

void minimize(Dnf& dnf) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Absorption: drop any cube implied by a more general one.
    for (std::size_t i = 0; i < dnf.cubes.size(); ++i) {
      for (std::size_t j = 0; j < dnf.cubes.size(); ++j) {
        if (i == j) continue;
        if (subset_of(dnf.cubes[i], dnf.cubes[j])) {
          dnf.cubes.erase(dnf.cubes.begin() +
                          static_cast<std::ptrdiff_t>(j));
          if (j < i) --i;
          --j;
          changed = true;
        }
      }
    }
    // Complementary merge: (g∧d) ∨ (g∧¬d) -> g.
    for (std::size_t i = 0; i < dnf.cubes.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < dnf.cubes.size(); ++j) {
        if (auto m = merge_complementary(dnf.cubes[i], dnf.cubes[j])) {
          dnf.cubes.erase(dnf.cubes.begin() +
                          static_cast<std::ptrdiff_t>(j));
          dnf.cubes[i] = std::move(*m);
          changed = true;
          break;
        }
      }
    }
  }
  std::sort(dnf.cubes.begin(), dnf.cubes.end());
  dnf.cubes.erase(std::unique(dnf.cubes.begin(), dnf.cubes.end()),
                  dnf.cubes.end());
}

}  // namespace

void dnf_add(Dnf& dnf, Cube cube) {
  dnf.cubes.push_back(std::move(cube));
  minimize(dnf);
}

std::string to_string(const TermArena& arena, const Dnf& dnf) {
  if (dnf.is_false()) return "false";
  if (dnf.is_true()) return "true";
  std::string out;
  for (std::size_t i = 0; i < dnf.cubes.size(); ++i) {
    if (i != 0) out += " | ";
    const Cube& cube = dnf.cubes[i];
    if (cube.size() > 1) out += "(";
    for (std::size_t j = 0; j < cube.size(); ++j) {
      if (j != 0) out += " & ";
      if (cube[j].neg) out += "!";
      out += arena.to_string(cube[j].atom);
    }
    if (cube.size() > 1) out += ")";
  }
  return out;
}

std::string to_string(const CellKey& cell) {
  return cell.region + "[" + std::to_string(cell.offset) + "]:" +
         std::to_string(8 * cell.bytes);
}

WriteMap build_write_map(TermArena& arena, Normalizer& norm,
                         const sym::ThreadSummary& summary) {
  WriteMap map;
  for (const sym::SymPath& p : summary.paths) {
    const auto cube = cube_of(arena, norm, p.cond);
    if (!cube) continue;  // infeasible path contributes nothing
    for (const sym::SymWrite& w : p.writes) {
      const CellKey cell{w.region, w.offset, w.bytes};
      const TermRef value = norm.normalize(w.value);
      CellWrites& cw = map[cell];
      auto it = std::find_if(cw.values.begin(), cw.values.end(),
                             [&](const auto& vg) { return vg.first == value; });
      if (it == cw.values.end()) {
        cw.values.emplace_back(value, Dnf{});
        it = cw.values.end() - 1;
      }
      dnf_add(it->second, *cube);
    }
  }
  for (auto& [cell, cw] : map) {
    std::sort(cw.values.begin(), cw.values.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  return map;
}

std::optional<MapMismatch> compare_write_maps(const TermArena& arena,
                                              const WriteMap& a,
                                              const WriteMap& b,
                                              std::size_t& obligations) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      ++obligations;
      return MapMismatch{ia->first, "cell-set",
                         "writes " + to_string(ia->first), "no write"};
    }
    if (ia == a.end() || ib->first < ia->first) {
      ++obligations;
      return MapMismatch{ib->first, "cell-set", "no write",
                         "writes " + to_string(ib->first)};
    }
    const CellKey& cell = ia->first;
    const auto& va = ia->second.values;
    const auto& vb = ib->second.values;
    // Values are sorted by ref; identical multisets align index-wise.
    const std::size_t n = std::max(va.size(), vb.size());
    for (std::size_t i = 0; i < n; ++i) {
      ++obligations;
      if (i >= va.size() || i >= vb.size() ||
          va[i].first != vb[i].first) {
        return MapMismatch{
            cell, "value",
            i < va.size() ? arena.to_string(va[i].first) : "(none)",
            i < vb.size() ? arena.to_string(vb[i].first) : "(none)"};
      }
      ++obligations;
      if (!(va[i].second == vb[i].second)) {
        return MapMismatch{cell, "guard",
                           arena.to_string(va[i].first) + " under " +
                               to_string(arena, va[i].second),
                           arena.to_string(vb[i].first) + " under " +
                               to_string(arena, vb[i].second)};
      }
    }
    ++ia;
    ++ib;
  }
  return std::nullopt;
}

}  // namespace cac::equiv
