#include "equiv/cex.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "sched/explore.h"
#include "sem/launch.h"
#include "support/bits.h"

namespace cac::equiv {

using sym::SymPath;
using sym::SymWrite;
using sym::TermArena;
using sym::TermRef;
using sym::ThreadSummary;

namespace {

/// A symbolic input variable, classified by what it names.
struct InputVar {
  std::string name;
  unsigned width = 32;
  enum class Kind : std::uint8_t { Scalar, Pointer, Cell } kind;
  // Cell only:
  std::string region;
  std::uint64_t offset = 0;
  unsigned bytes = 4;
};

/// Split `region[offset]` cell-variable names (sym/state.cc).
bool parse_cell_name(const std::string& name, std::string& region,
                     std::uint64_t& offset) {
  const std::size_t lb = name.find('[');
  if (lb == std::string::npos || name.empty() || name.back() != ']') {
    return false;
  }
  region = name.substr(0, lb);
  const std::string num = name.substr(lb + 1, name.size() - lb - 2);
  if (num.empty()) return false;
  offset = 0;
  for (const char c : num) {
    if (c < '0' || c > '9') return false;
    offset = offset * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

/// Every Var reachable from the summaries' conditions and writes.
std::vector<TermRef> collect_vars(
    const TermArena& arena, const std::vector<ThreadSummary>& sum_a,
    const std::vector<ThreadSummary>& sum_b) {
  std::unordered_set<TermRef> visited;
  std::vector<TermRef> vars;
  std::vector<TermRef> work;
  auto push = [&](TermRef t) {
    if (visited.insert(t).second) work.push_back(t);
  };
  for (const auto* side : {&sum_a, &sum_b}) {
    for (const ThreadSummary& s : *side) {
      for (const SymPath& p : s.paths) {
        push(p.cond);
        for (const SymWrite& w : p.writes) push(w.value);
      }
    }
  }
  while (!work.empty()) {
    const TermRef t = work.back();
    work.pop_back();
    const sym::TermNode& n = arena.node(t);
    switch (n.op) {
      case sym::Op::Var:
        vars.push_back(t);
        break;
      case sym::Op::Const:
        break;
      case sym::Op::Not:
      case sym::Op::Neg:
      case sym::Op::Popc:
      case sym::Op::Clz:
      case sym::Op::Brev:
      case sym::Op::ZExt:
      case sym::Op::SExt:
      case sym::Op::Trunc:
        push(n.a);
        break;
      case sym::Op::Ite:
        push(n.a);
        push(n.b);
        push(n.c);
        break;
      default:  // binary
        push(n.a);
        push(n.b);
        break;
    }
  }
  return vars;
}

std::uint64_t xorshift64(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// One side's concrete stores under a valuation, or nullopt when two
/// threads disagree about a cell (a racy valuation no equivalence
/// claim can be built on).
using CellImage = std::map<std::pair<std::string, std::uint64_t>,
                           std::pair<unsigned, std::uint64_t>>;
std::optional<CellImage> eval_side(
    const TermArena& arena, const std::vector<ThreadSummary>& side,
    const std::unordered_map<std::string, std::uint64_t>& valuation) {
  CellImage image;
  for (const ThreadSummary& s : side) {
    const SymPath* live = nullptr;
    for (const SymPath& p : s.paths) {
      if (arena.evaluate(p.cond, valuation) != 0) {
        live = &p;
        break;  // path conditions partition the input space
      }
    }
    if (live == nullptr) continue;
    for (const SymWrite& w : live->writes) {
      const std::uint64_t v = arena.evaluate(w.value, valuation);
      const auto key = std::make_pair(w.region, w.offset);
      const auto it = image.find(key);
      if (it != image.end() && it->second.second != v) return std::nullopt;
      image[key] = {w.bytes, v};
    }
  }
  return image;
}

}  // namespace

CexSearch search_counterexample(
    const ptx::Program& a, const ptx::Program& b,
    const sem::KernelConfig& kc, const sym::SymEnv& env,
    const std::vector<ThreadSummary>& sum_a,
    const std::vector<ThreadSummary>& sum_b, const CexOptions& opts,
    const check::ModelCheckOptions::explorer_type& explorer) {
  CexSearch out;
  const TermArena& arena = *env.arena;

  // --- classify the symbolic inputs ---------------------------------
  std::vector<InputVar> inputs;
  for (const TermRef v : collect_vars(arena, sum_a, sum_b)) {
    InputVar iv;
    iv.name = arena.var_name(v);
    iv.width = arena.width(v);
    if (env.pointer_params.count(iv.name)) {
      iv.kind = InputVar::Kind::Pointer;
    } else if (parse_cell_name(iv.name, iv.region, iv.offset)) {
      iv.kind = InputVar::Kind::Cell;
      iv.bytes = iv.width / 8;
    } else {
      iv.kind = InputVar::Kind::Scalar;
    }
    inputs.push_back(std::move(iv));
  }
  std::sort(inputs.begin(), inputs.end(),
            [](const InputVar& x, const InputVar& y) {
              return x.name < y.name;
            });

  // --- choose disjoint region bases for the replay ------------------
  // Slab sizes cover every touched offset (loads and stores, both
  // kernels); '@'-prefixed regions are absolute addresses and keep
  // base 0.
  std::map<std::string, std::uint64_t> region_end;
  for (const InputVar& iv : inputs) {
    if (iv.kind == InputVar::Kind::Cell) {
      auto& end = region_end[iv.region];
      end = std::max<std::uint64_t>(end, iv.offset + iv.bytes);
    }
  }
  for (const auto* side : {&sum_a, &sum_b}) {
    for (const ThreadSummary& s : *side) {
      for (const SymPath& p : s.paths) {
        for (const SymWrite& w : p.writes) {
          auto& end = region_end[w.region];
          end = std::max<std::uint64_t>(end, w.offset + w.bytes);
        }
      }
    }
  }
  for (const std::string& p : env.pointer_params) region_end.emplace(p, 0);
  const auto round_up = [](std::uint64_t v) { return (v + 255) & ~255ull; };
  std::map<std::string, std::uint64_t> region_base;
  std::uint64_t cursor = 0x100;
  for (const auto& [region, end] : region_end) {
    if (!region.empty() && region[0] == '@') {
      region_base[region] = 0;
      cursor = std::max<std::uint64_t>(cursor, round_up(end));
    }
  }
  for (const auto& [region, end] : region_end) {
    if (!region.empty() && region[0] == '@') continue;
    region_base[region] = cursor;
    cursor += std::max<std::uint64_t>(round_up(end), 256);
  }
  const std::uint64_t global_bytes = std::max<std::uint64_t>(cursor, 4096);

  // --- candidate values per input -----------------------------------
  const std::uint64_t total = kc.total_threads();
  auto candidates_for = [&](const InputVar& iv) {
    std::vector<std::uint64_t> vals{0, 1, 2, 3};
    if (iv.kind == InputVar::Kind::Scalar) {
      // Guards compare against thread ids: the interesting scalars sit
      // at the partition boundaries.
      for (const std::uint64_t t :
           {total - 1, total, total + 1, 2 * total}) {
        vals.push_back(t);
      }
    } else {
      vals.push_back(255);
    }
    for (std::uint64_t& v : vals) v = truncate(v, iv.width);
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    return vals;
  };

  // --- replay one candidate valuation through the explorer ----------
  auto replay = [&](const std::unordered_map<std::string, std::uint64_t>&
                        valuation) -> std::optional<Counterexample> {
    ++out.replays;
    sem::LaunchSpec base_spec;
    base_spec.grid = kc.grid;
    base_spec.block = kc.block;
    base_spec.warp_size = kc.warp_size;
    base_spec.global_bytes = global_bytes;
    for (const InputVar& iv : inputs) {
      if (iv.kind != InputVar::Kind::Cell) continue;
      const std::uint64_t v = valuation.at(iv.name);
      const std::uint64_t addr = region_base.at(iv.region) + iv.offset;
      if (iv.bytes == 4) {
        base_spec.inits.emplace_back(addr,
                                     static_cast<std::uint32_t>(v));
      } else if (iv.bytes == 8) {
        base_spec.inits.emplace_back(addr,
                                     static_cast<std::uint32_t>(v));
        base_spec.inits.emplace_back(
            addr + 4, static_cast<std::uint32_t>(v >> 32));
      } else if (v != 0) {
        out.note = "replay unsupported: sub-word initial cell " + iv.name;
        return std::nullopt;
      }
    }
    auto params_for = [&](const ptx::Program& prg) {
      std::vector<std::pair<std::string, std::uint64_t>> params;
      for (const ptx::ParamSlot& slot : prg.params()) {
        const auto base = region_base.find(slot.name);
        if (base != region_base.end() &&
            env.pointer_params.count(slot.name)) {
          params.emplace_back(slot.name, base->second);
        } else if (const auto it = valuation.find(slot.name);
                   it != valuation.end()) {
          params.emplace_back(slot.name, it->second);
        } else {
          params.emplace_back(slot.name, 0);
        }
      }
      return params;
    };
    sched::ExploreOptions eopts;
    eopts.max_states = opts.replay_max_states;
    eopts.max_depth = opts.replay_max_depth;
    auto run = [&](const ptx::Program& prg)
        -> std::optional<sem::Machine> {
      sem::LaunchSpec spec = base_spec;
      spec.params = params_for(prg);
      const sem::Launch launch = spec.to_launch(prg);
      const sched::ExploreResult ex =
          explorer ? explorer(prg, kc, launch.machine(), eopts)
                   : sched::explore(prg, kc, launch.machine(), eopts);
      if (!ex.exhaustive || !ex.violations.empty() ||
          ex.final_ids.size() != 1) {
        return std::nullopt;
      }
      return ex.finals().front();
    };
    const auto fa = run(a);
    const auto fb = run(b);
    if (!fa || !fb) {
      out.note = "replay failed: exploration not exhaustive or not "
                 "schedule-independent";
      return std::nullopt;
    }
    const std::uint64_t words = global_bytes / 4;
    for (std::uint64_t i = 0; i < words; ++i) {
      const std::uint64_t addr = 4 * i;
      const std::uint64_t va = fa->memory.load(mem::Space::Global, addr, 4);
      const std::uint64_t vb = fb->memory.load(mem::Space::Global, addr, 4);
      if (va == vb) continue;
      Counterexample cex;
      cex.addr = addr;
      cex.value_a = static_cast<std::uint32_t>(va);
      cex.value_b = static_cast<std::uint32_t>(vb);
      cex.region = "@global";
      cex.offset = addr;
      for (const auto& [region, base] : region_base) {
        const std::uint64_t end = base + region_end.at(region);
        if (addr >= base && addr < std::max(end, base + 1)) {
          cex.region = region;
          cex.offset = addr - base;
        }
      }
      for (const InputVar& iv : inputs) {
        if (iv.kind == InputVar::Kind::Pointer) {
          cex.inputs.emplace_back(iv.name, region_base.at(iv.name));
        } else {
          cex.inputs.emplace_back(iv.name, valuation.at(iv.name));
        }
      }
      cex.replay_validated = true;
      return cex;
    }
    return std::nullopt;  // symbolic pre-filter false alarm
  };

  // --- enumerate valuations -----------------------------------------
  auto base_valuation = [&]() {
    std::unordered_map<std::string, std::uint64_t> val;
    for (const InputVar& iv : inputs) {
      val[iv.name] =
          iv.kind == InputVar::Kind::Pointer ? region_base.at(iv.name) : 0;
    }
    return val;
  };
  auto try_valuation =
      [&](const std::unordered_map<std::string, std::uint64_t>& val)
      -> std::optional<Counterexample> {
    ++out.trials;
    const auto ia = eval_side(arena, sum_a, val);
    const auto ib = eval_side(arena, sum_b, val);
    if (!ia || !ib) return std::nullopt;  // intra-kernel write conflict
    if (*ia == *ib) return std::nullopt;
    return replay(val);
  };

  // Pass 1: all-defaults.  Pass 2: vary one input at a time.  Pass 3:
  // deterministic pseudo-random combinations until the budget runs out.
  {
    const auto val = base_valuation();
    if (auto cex = try_valuation(val)) {
      out.found = std::move(cex);
      return out;
    }
  }
  for (const InputVar& iv : inputs) {
    if (iv.kind == InputVar::Kind::Pointer) continue;
    for (const std::uint64_t v : candidates_for(iv)) {
      if (v == 0) continue;
      if (out.trials >= opts.max_trials) {
        out.budget_exhausted = true;
        return out;
      }
      auto val = base_valuation();
      val[iv.name] = v;
      if (auto cex = try_valuation(val)) {
        out.found = std::move(cex);
        return out;
      }
    }
  }
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  while (out.trials < opts.max_trials) {
    auto val = base_valuation();
    for (const InputVar& iv : inputs) {
      if (iv.kind == InputVar::Kind::Pointer) continue;
      const auto cands = candidates_for(iv);
      val[iv.name] = cands[xorshift64(rng) % cands.size()];
    }
    if (auto cex = try_valuation(val)) {
      out.found = std::move(cex);
      return out;
    }
  }
  out.budget_exhausted = true;
  return out;
}

}  // namespace cac::equiv
