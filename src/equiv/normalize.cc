#include "equiv/normalize.h"

#include <algorithm>
#include <optional>

#include "support/bits.h"

namespace cac::equiv {

using sym::Op;
using sym::TermNode;
using sym::TermRef;

namespace {

bool is_linear_root(Op op) {
  return op == Op::Add || op == Op::Sub || op == Op::Neg || op == Op::Mul ||
         op == Op::Const;
}

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

unsigned log2_of(std::uint64_t v) {
  unsigned k = 0;
  while (v > 1) { v >>= 1; ++k; }
  return k;
}

}  // namespace

TermRef Normalizer::normalize(TermRef t) {
  if (!enabled_) return t;
  const auto it = memo_.find(t);
  if (it != memo_.end()) return it->second;
  const TermRef r = norm_uncached(t);
  memo_.emplace(t, r);
  ++stats_.terms;
  if (r != t) ++stats_.rewrites;
  return r;
}

std::uint64_t Normalizer::factorize(TermRef t, unsigned w,
                                    std::vector<TermRef>& factors) {
  const TermNode n = arena_.node(t);
  if (n.op == Op::Const) return truncate(n.value, w);
  if (n.op == Op::Mul) {
    const std::uint64_t ca = factorize(n.a, w, factors);
    const std::uint64_t cb = factorize(n.b, w, factors);
    return truncate(ca * cb, w);
  }
  factors.push_back(t);
  return 1;
}

Normalizer::Lin Normalizer::linearize(TermRef t, unsigned w) {
  const TermNode n = arena_.node(t);

  auto scale = [w](Lin l, std::uint64_t k) {
    Lin out;
    if (k == 0) return out;
    out.c = truncate(l.c * k, w);
    for (const auto& [base, co] : l.coeff) {
      const std::uint64_t nk = truncate(co * k, w);
      if (nk != 0) out.coeff[base] = nk;
    }
    return out;
  };
  auto accumulate = [w](Lin& into, const Lin& from) {
    into.c = truncate(into.c + from.c, w);
    for (const auto& [base, co] : from.coeff) {
      const std::uint64_t nk = truncate(into.coeff[base] + co, w);
      if (nk == 0) {
        into.coeff.erase(base);
      } else {
        into.coeff[base] = nk;
      }
    }
  };
  const std::uint64_t minus_one = low_mask(w);

  switch (n.op) {
    case Op::Const:
      return Lin{{}, truncate(n.value, w)};
    case Op::Add: {
      Lin l = linearize(n.a, w);
      accumulate(l, linearize(n.b, w));
      return l;
    }
    case Op::Sub: {
      Lin l = linearize(n.a, w);
      accumulate(l, scale(linearize(n.b, w), minus_one));
      return l;
    }
    case Op::Neg:
      return scale(linearize(n.a, w), minus_one);
    case Op::Shl: {
      // x << k  ==  x * 2^k  (0 once the shift leaves the width).
      const TermRef nb = normalize(n.b);
      if (const auto k = arena_.const_value(nb)) {
        const std::uint64_t f = *k >= w ? 0 : truncate(1ull << *k, w);
        return scale(linearize(n.a, w), f);
      }
      break;  // symbolic shift: opaque base
    }
    case Op::Mul: {
      const Lin la = linearize(n.a, w);
      const Lin lb = linearize(n.b, w);
      if (la.coeff.empty()) return scale(lb, la.c);
      if (lb.coeff.empty()) return scale(la, lb.c);
      const std::size_t terms_a = la.coeff.size() + (la.c != 0 ? 1 : 0);
      const std::size_t terms_b = lb.coeff.size() + (lb.c != 0 ? 1 : 0);
      if (terms_a * terms_b <= 8) {
        // Bounded distribution: (Σ ci·xi)·(Σ dj·yj) expands so the
        // constant parts keep cancelling across the product.
        Lin out;
        // A base is optional: ref 0 is a real term (the arena's first
        // allocation), so "constant-only side" needs its own state.
        auto emit = [&](std::optional<TermRef> xa, std::uint64_t ca,
                        std::optional<TermRef> xb, std::uint64_t cb) {
          std::vector<TermRef> factors;
          std::uint64_t k = truncate(ca * cb, w);
          if (xa) k = truncate(k * factorize(*xa, w, factors), w);
          if (xb) k = truncate(k * factorize(*xb, w, factors), w);
          Lin one;
          if (factors.empty()) {
            one.c = k;
          } else if (k != 0) {
            std::sort(factors.begin(), factors.end());
            TermRef prod = factors[0];
            for (std::size_t i = 1; i < factors.size(); ++i) {
              prod = arena_.mul(prod, factors[i]);
            }
            one.coeff[prod] = k;
          }
          accumulate(out, one);
        };
        for (const auto& [xa, ca] : la.coeff) {
          for (const auto& [xb, cb] : lb.coeff) emit(xa, ca, xb, cb);
          if (lb.c != 0) emit(xa, ca, std::nullopt, lb.c);
        }
        if (la.c != 0) {
          for (const auto& [xb, cb] : lb.coeff) emit(std::nullopt, la.c, xb, cb);
          if (lb.c != 0) emit(std::nullopt, la.c, std::nullopt, lb.c);
        }
        return out;
      }
      break;  // too wide to distribute: opaque base
    }
    default:
      break;
  }

  // Opaque base: normalize the subterm; if its normal form is itself
  // linear-rooted (e.g. a Shl that became a Mul), decompose that.
  const TermRef b = normalize(t);
  if (b != t && is_linear_root(arena_.node(b).op)) return linearize(b, w);
  if (const auto c = arena_.const_value(b)) return Lin{{}, truncate(*c, w)};
  Lin l;
  l.coeff[b] = 1;
  return l;
}

TermRef Normalizer::rebuild(const Lin& lin, unsigned w) {
  if (lin.coeff.empty()) return arena_.konst(lin.c, w);
  TermRef acc = 0;
  bool first = true;
  for (const auto& [base, co] : lin.coeff) {  // ref-ascending: canonical
    const TermRef term =
        co == 1 ? base : arena_.mul(base, arena_.konst(co, w));
    acc = first ? term : arena_.add(acc, term);
    first = false;
  }
  if (lin.c != 0) acc = arena_.add(acc, arena_.konst(lin.c, w));
  return acc;
}

TermRef Normalizer::flatten_bitop(Op op, TermRef t, unsigned w) {
  const std::uint64_t mask = low_mask(w);
  // Gather the leaves of the op's spine, folding constants as we go.
  std::vector<TermRef> leaves;
  std::uint64_t cacc = op == Op::And ? mask : 0;
  std::vector<TermRef> work{arena_.node(t).a, arena_.node(t).b};
  while (!work.empty()) {
    const TermRef cur = normalize(work.back());
    work.pop_back();
    const TermNode n = arena_.node(cur);
    if (n.op == op) {
      work.push_back(n.a);
      work.push_back(n.b);
    } else if (n.op == Op::Const) {
      const std::uint64_t v = truncate(n.value, w);
      if (op == Op::And) cacc &= v;
      else if (op == Op::Or) cacc |= v;
      else cacc ^= v;
    } else {
      leaves.push_back(cur);
    }
  }
  std::sort(leaves.begin(), leaves.end());
  if (op == Op::Xor) {
    // Pairs cancel: keep each leaf iff it occurs an odd number of times.
    std::vector<TermRef> odd;
    for (std::size_t i = 0; i < leaves.size();) {
      std::size_t j = i;
      while (j < leaves.size() && leaves[j] == leaves[i]) ++j;
      if ((j - i) % 2 == 1) odd.push_back(leaves[i]);
      i = j;
    }
    leaves = std::move(odd);
  } else {
    leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  }
  // Complement pairs: x op ~x is an annihilator (And: 0, Or: ~0) or,
  // for Xor, folds into the constant (~0).
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const TermRef comp = arena_.bnot(leaves[i]);
    const auto at = std::lower_bound(leaves.begin(), leaves.end(), comp);
    if (at == leaves.end() || *at != comp) continue;
    if (op == Op::And) return arena_.konst(0, w);
    if (op == Op::Or) return arena_.konst(mask, w);
    // Xor: drop both, fold ~0 into the constant; restart the scan on
    // the shrunk list.
    std::size_t hi = static_cast<std::size_t>(at - leaves.begin());
    std::size_t lo = i;
    if (lo > hi) std::swap(lo, hi);
    leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(hi));
    leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(lo));
    cacc ^= mask;
    i = static_cast<std::size_t>(-1);
  }
  if (op == Op::And && cacc == 0) return arena_.konst(0, w);
  if (op == Op::Or && cacc == mask) return arena_.konst(mask, w);
  if (leaves.empty()) return arena_.konst(cacc, w);
  TermRef acc = leaves[0];
  for (std::size_t i = 1; i < leaves.size(); ++i) {
    acc = op == Op::And ? arena_.band(acc, leaves[i])
          : op == Op::Or ? arena_.bor(acc, leaves[i])
                         : arena_.bxor(acc, leaves[i]);
  }
  const bool identity = (op == Op::And && cacc == mask) ||
                        (op != Op::And && cacc == 0);
  if (!identity) {
    const TermRef k = arena_.konst(cacc, w);
    acc = op == Op::And ? arena_.band(acc, k)
          : op == Op::Or ? arena_.bor(acc, k)
                         : arena_.bxor(acc, k);
  }
  return acc;
}

TermRef Normalizer::norm_uncached(TermRef t) {
  const TermNode n = arena_.node(t);
  const unsigned w = n.width;
  switch (n.op) {
    case Op::Const:
    case Op::Var:
      return t;

    case Op::Add:
    case Op::Sub:
    case Op::Neg:
    case Op::Mul:
    case Op::Shl:
      return rebuild(linearize(t, w), w);

    case Op::And:
    case Op::Or:
    case Op::Xor:
      return flatten_bitop(n.op, t, w);

    case Op::Rem: {
      // Unsigned strength reduction: x % 2^k  ->  x & (2^k - 1).
      const TermRef nb = normalize(n.b);
      if (const auto cb = arena_.const_value(nb); cb && is_pow2(*cb)) {
        return normalize(
            arena_.band(normalize(n.a), arena_.konst(*cb - 1, w)));
      }
      return arena_.rem(normalize(n.a), nb, /*sgn=*/false);
    }
    case Op::Div: {
      // Unsigned strength reduction: x / 2^k  ->  x >>l k.
      const TermRef nb = normalize(n.b);
      if (const auto cb = arena_.const_value(nb); cb && is_pow2(*cb)) {
        if (*cb == 1) return normalize(n.a);
        return arena_.lshr(normalize(n.a), arena_.konst(log2_of(*cb), w));
      }
      return arena_.div(normalize(n.a), nb, /*sgn=*/false);
    }

    case Op::RemS:
      return arena_.rem(normalize(n.a), normalize(n.b), /*sgn=*/true);
    case Op::DivS:
      return arena_.div(normalize(n.a), normalize(n.b), /*sgn=*/true);
    case Op::MulHi:
      return arena_.mul_hi(normalize(n.a), normalize(n.b), /*sgn=*/false);
    case Op::MulHiS:
      return arena_.mul_hi(normalize(n.a), normalize(n.b), /*sgn=*/true);
    case Op::MinU:
      return arena_.min(normalize(n.a), normalize(n.b), /*sgn=*/false);
    case Op::MinS:
      return arena_.min(normalize(n.a), normalize(n.b), /*sgn=*/true);
    case Op::MaxU:
      return arena_.max(normalize(n.a), normalize(n.b), /*sgn=*/false);
    case Op::MaxS:
      return arena_.max(normalize(n.a), normalize(n.b), /*sgn=*/true);
    case Op::LShr:
      return arena_.lshr(normalize(n.a), normalize(n.b));
    case Op::AShr:
      return arena_.ashr(normalize(n.a), normalize(n.b));

    case Op::Not:
      return arena_.bnot(normalize(n.a));
    case Op::Popc:
      return arena_.popc(normalize(n.a));
    case Op::Clz:
      return arena_.clz(normalize(n.a));
    case Op::Brev:
      return arena_.brev(normalize(n.a));

    case Op::ZExt:
      return arena_.zext(normalize(n.a), w);
    case Op::SExt:
      return arena_.sext(normalize(n.a), w);
    case Op::Trunc:
      return arena_.trunc(normalize(n.a), w);

    case Op::Eq:
      return arena_.eq(normalize(n.a), normalize(n.b));
    case Op::LtU:
      return arena_.lt(normalize(n.a), normalize(n.b), /*sgn=*/false);
    case Op::LtS:
      return arena_.lt(normalize(n.a), normalize(n.b), /*sgn=*/true);

    case Op::Ite:
      return arena_.ite(normalize(n.a), normalize(n.b), normalize(n.c));
  }
  return t;  // unreachable; keeps -Wreturn-type quiet
}

}  // namespace cac::equiv
