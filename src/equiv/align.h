// Guard-partition alignment — comparing kernels that branch
// differently.
//
// vcgen::prove_equivalent requires the two kernels' per-thread path
// partitions to be *identical* (same conditions, path by path).  An
// unrolled loop breaks that immediately: the reference forks once per
// iteration (guards g0, g1 -> paths g0∧g1, g0∧¬g1, ¬g0∧g1, ¬g0∧¬g1)
// while the unrolled body may fork in another order or not at all.
//
// This layer erases the path structure.  Each thread summary becomes a
// canonical *guard -> writes* map: for every written cell and every
// (normalized) value stored there, the disjunction of the path
// conditions under which that store happens, minimized to a canonical
// DNF over normalized literals.  Minimization merges complementary
// cubes ((g∧d) ∨ (g∧¬d) -> g), removes contradictions and absorbed
// cubes — exactly the reasoning needed to collapse an unrolled
// partition back to the reference's guards.  Two kernels are
// equivalent iff their maps agree cell-for-cell, value-for-value,
// guard-for-guard — compared structurally in the shared arena.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "equiv/normalize.h"
#include "sym/exec.h"

namespace cac::equiv {

/// One conjunct of a guard: a normalized non-And atom, possibly
/// negated.
struct Literal {
  sym::TermRef atom = 0;
  bool neg = false;

  friend bool operator==(const Literal&, const Literal&) = default;
  friend auto operator<=>(const Literal&, const Literal&) = default;
};

/// A conjunction of literals, sorted and duplicate-free.  Empty = true.
using Cube = std::vector<Literal>;

/// Disjunction of cubes, canonically minimized and sorted.  Empty =
/// false; a single empty cube = true.
struct Dnf {
  std::vector<Cube> cubes;

  [[nodiscard]] bool is_false() const { return cubes.empty(); }
  [[nodiscard]] bool is_true() const {
    return cubes.size() == 1 && cubes[0].empty();
  }
  friend bool operator==(const Dnf&, const Dnf&) = default;
};

/// Decompose a width-1 path condition into a single cube of normalized
/// literals (the path condition is a conjunction by construction).
/// Returns nullopt when the condition is syntactically false.
std::optional<Cube> cube_of(sym::TermArena& arena, Normalizer& norm,
                            sym::TermRef cond);

/// dst := dst ∨ cube, then re-minimize to the canonical form:
/// contradiction removal, absorption, complementary-cube merging, and
/// a final sort.
void dnf_add(Dnf& dnf, Cube cube);

std::string to_string(const sym::TermArena& arena, const Dnf& dnf);

/// A written cell.
struct CellKey {
  std::string region;
  std::uint64_t offset = 0;
  unsigned bytes = 4;

  friend bool operator==(const CellKey&, const CellKey&) = default;
  friend auto operator<=>(const CellKey&, const CellKey&) = default;
};

/// Every (value, guard) pair stored to one cell, values normalized and
/// sorted by ref, guards canonical DNFs.
struct CellWrites {
  std::vector<std::pair<sym::TermRef, Dnf>> values;
};

using WriteMap = std::map<CellKey, CellWrites>;

/// Merge one thread's path partition into the canonical guard->writes
/// map.  Every path must be ok (caller checks).
WriteMap build_write_map(sym::TermArena& arena, Normalizer& norm,
                         const sym::ThreadSummary& summary);

/// First disagreement between two write maps, or nullopt when they
/// coincide.  `obligations` counts the structural equalities checked.
struct MapMismatch {
  CellKey cell;
  std::string obligation;  // "cell-set" | "value" | "guard"
  std::string lhs, rhs;    // rendered normalized terms / guards
};
std::optional<MapMismatch> compare_write_maps(const sym::TermArena& arena,
                                              const WriteMap& a,
                                              const WriteMap& b,
                                              std::size_t& obligations);

std::string to_string(const CellKey& cell);

}  // namespace cac::equiv
