// The equivalence checker driver — `cacval equiv`'s engine
// (docs/equiv.md).
//
// Two modes:
//
//  * kLowering — the legacy vcgen::prove_equivalent check: identical
//    path partitions, syntactically aligned stores.  Fast, and right
//    for "did the mechanical lowering change anything" questions, but
//    a mismatch there only means the *lowerings* differ, which is why
//    its not-equivalent answers are advisory (they predate the replay
//    rule below and are kept for compatibility).
//
//  * kNormalized (default) — the real checker for independently
//    written kernel pairs: per-thread symbolic summaries from the same
//    arena/environment, store values and guards normalized
//    (equiv/normalize.h), path partitions erased into canonical
//    guard->writes maps (equiv/align.h), maps compared structurally.
//    On mismatch the counterexample search (equiv/cex.h) hunts for a
//    concrete refutation; the verdict is
//      - equivalent       when every map obligation discharges,
//      - not-equivalent   ONLY with a replay-validated counterexample,
//      - inconclusive     otherwise (normalizer incompleteness or an
//                         exhausted search budget never refutes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/model.h"
#include "equiv/cex.h"
#include "sym/exec.h"
#include "vcgen/prove.h"

namespace cac::equiv {

enum class Mode : std::uint8_t { kLowering, kNormalized };

struct EquivOptions {
  Mode mode = Mode::kNormalized;
  /// kNormalized: run the term normalizer over values and guards.
  /// Off, the mode still aligns guard partitions but only arena-level
  /// smart-constructor normalization applies.
  bool normalize = true;
  /// kNormalized: search for a concrete counterexample on symbolic
  /// mismatch.  Off, a mismatch is reported inconclusive.
  bool counterexample = true;
  sym::SymExecOptions sym;  // structural path/step bounds
  CexOptions cex;           // transient search budgets
};

enum class EquivVerdict : std::uint8_t {
  kEquivalent,
  kNotEquivalent,
  kInconclusive,
};

struct EquivResult {
  EquivVerdict verdict = EquivVerdict::kInconclusive;
  std::string detail;
  std::uint32_t threads = 0;
  std::size_t paths = 0;
  std::size_t obligations = 0;
  /// Normalizer accounting (kNormalized only).
  std::uint64_t terms_normalized = 0;
  std::uint64_t rewrites = 0;
  /// Counterexample search accounting.
  std::uint64_t cex_trials = 0;
  std::uint64_t cex_replays = 0;
  /// The search budget tripped before a verdict: the inconclusive is
  /// budget-dependent, so front ends must not cache it.
  bool cex_budget_tripped = false;
  /// First failing obligation (mismatch or engine failure).
  std::optional<vcgen::ProofResult::Failure> failure;
  /// Validated refutation (verdict == kNotEquivalent).
  std::optional<Counterexample> cex;
};

/// Check kernel `a` against kernel `b` under launch geometry `kc`.
/// `env` must be the union environment over both kernels' parameters
/// (make_union_env), built on the shared arena both executions use.
EquivResult check_equivalence(
    const ptx::Program& a, const ptx::Program& b,
    const sem::KernelConfig& kc, const sym::SymEnv& env,
    const EquivOptions& opts = {},
    const check::ModelCheckOptions::explorer_type& explorer = {});

/// Symbolic environment covering the union of both kernels' parameter
/// lists: a parameter present in both (by name) is the *same* symbolic
/// variable, which is what makes cross-program obligations structural.
sym::SymEnv make_union_env(sym::TermArena& arena, const ptx::Program& a,
                           const ptx::Program& b);

std::string to_string(EquivVerdict v);

}  // namespace cac::equiv
