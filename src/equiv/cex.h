// Counterexample search — turning a failed symbolic proof into a
// concrete refutation, or refusing to refute at all.
//
// The normalizer is incomplete, so "the canonical write maps differ"
// does NOT mean the kernels differ (docs/equiv.md).  Before the
// checker may report not-equivalent it must produce a concrete input
// valuation on which the two kernels' final Global memories disagree,
// and that valuation must be *replay-validated*: both kernels are run
// concretely through the schedule explorer (the same engine `cacval
// check` trusts, reachable through the RunHooks::explorer seam) and
// the first diverging store is read out of the real final states.
//
// The search is bounded and complete only over its enumeration: small
// deterministic value sets per input (0, 1, 2, boundary values around
// the thread count) swept singly and then in pseudo-random
// combinations, capped by `max_trials`.  Candidates are pre-filtered
// by evaluating the symbolic summaries (cheap) and only survivors are
// replayed (expensive).  Exhausting the budget without a validated
// divergence leaves the verdict inconclusive — never not-equivalent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/model.h"
#include "sym/exec.h"

namespace cac::equiv {

struct CexOptions {
  /// Input valuations examined (symbolic pre-filter) before giving up.
  std::uint64_t max_trials = 256;
  /// Replay bounds handed to the explorer for validation runs.
  std::uint64_t replay_max_states = 1u << 18;
  std::uint64_t replay_max_depth = 1u << 16;
};

/// A validated concrete refutation.
struct Counterexample {
  /// The input valuation, name -> value, sorted by name.  Covers
  /// scalar parameters and initial memory cells (`arr[off]`); pointer
  /// parameters are bound to the disjoint region bases chosen for the
  /// replay and are included here so the run is reproducible verbatim.
  std::vector<std::pair<std::string, std::uint64_t>> inputs;
  /// First diverging store, in canonical (region, offset) order.
  std::string region;
  std::uint64_t offset = 0;
  std::uint64_t addr = 0;  // absolute Global address in the replay
  std::uint32_t value_a = 0;
  std::uint32_t value_b = 0;
  bool replay_validated = false;
};

struct CexSearch {
  std::optional<Counterexample> found;
  std::uint64_t trials = 0;   // valuations examined symbolically
  std::uint64_t replays = 0;  // candidates replayed concretely
  bool budget_exhausted = false;
  std::string note;  // why the search stopped without a verdict
};

/// Search for an input valuation on which the two kernels' final
/// Global stores differ, given the per-thread symbolic summaries
/// already computed by the checker.  `explorer` may be empty (falls
/// back to sched::explore).
CexSearch search_counterexample(
    const ptx::Program& a, const ptx::Program& b,
    const sem::KernelConfig& kc, const sym::SymEnv& env,
    const std::vector<sym::ThreadSummary>& sum_a,
    const std::vector<sym::ThreadSummary>& sum_b, const CexOptions& opts,
    const check::ModelCheckOptions::explorer_type& explorer);

}  // namespace cac::equiv
