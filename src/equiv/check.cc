#include "equiv/check.h"

#include <utility>
#include <vector>

#include "equiv/align.h"
#include "equiv/normalize.h"

namespace cac::equiv {

using sym::SymPath;
using sym::TermArena;
using sym::ThreadSummary;

sym::SymEnv make_union_env(TermArena& arena, const ptx::Program& a,
                           const ptx::Program& b) {
  sym::SymEnv env = sym::SymEnv::symbolic(arena, a);
  for (const ptx::ParamSlot& p : b.params()) {
    if (env.params.count(p.name) != 0) continue;
    env.params[p.name] = arena.var(p.name, p.type.width);
    if (p.type.width == 64) env.pointer_params.insert(p.name);
  }
  return env;
}

std::string to_string(EquivVerdict v) {
  switch (v) {
    case EquivVerdict::kEquivalent: return "equivalent";
    case EquivVerdict::kNotEquivalent: return "not-equivalent";
    case EquivVerdict::kInconclusive: return "inconclusive";
  }
  return "inconclusive";
}

namespace {

std::string stats_detail(const EquivResult& r) {
  std::string out = std::to_string(r.threads) + " threads, " +
                    std::to_string(r.paths) + " paths, " +
                    std::to_string(r.obligations) +
                    " obligations discharged";
  if (r.rewrites != 0) {
    out += ", " + std::to_string(r.rewrites) + " rewrites";
  }
  return out;
}

}  // namespace

EquivResult check_equivalence(
    const ptx::Program& a, const ptx::Program& b,
    const sem::KernelConfig& kc, const sym::SymEnv& env,
    const EquivOptions& opts,
    const check::ModelCheckOptions::explorer_type& explorer) {
  EquivResult out;

  if (opts.mode == Mode::kLowering) {
    // Legacy path-by-path check; its refutations are advisory
    // (lowering disagreement), kept for compatibility.
    const vcgen::ProofResult pr =
        vcgen::prove_equivalent(a, b, kc, env, opts.sym);
    out.threads = pr.threads;
    out.paths = pr.paths;
    out.obligations = pr.obligations;
    out.detail = pr.detail;
    out.failure = pr.failure;
    out.verdict = pr.proved         ? EquivVerdict::kEquivalent
                  : pr.inconclusive ? EquivVerdict::kInconclusive
                                    : EquivVerdict::kNotEquivalent;
    return out;
  }

  TermArena& arena = *env.arena;
  Normalizer norm(arena, opts.normalize);

  // --- phase 1: per-thread symbolic summaries, both kernels ----------
  std::vector<ThreadSummary> sum_a, sum_b;
  sum_a.reserve(kc.total_threads());
  sum_b.reserve(kc.total_threads());
  for (std::uint32_t tid = 0; tid < kc.total_threads(); ++tid) {
    ++out.threads;
    sum_a.push_back(sym_execute_thread(a, kc, tid, env, opts.sym));
    sum_b.push_back(sym_execute_thread(b, kc, tid, env, opts.sym));
    out.paths += sum_a.back().paths.size() + sum_b.back().paths.size();
    for (const ThreadSummary* s : {&sum_a.back(), &sum_b.back()}) {
      for (const SymPath& p : s->paths) {
        if (p.ok() && p.exited) continue;
        const std::string why =
            p.failure.empty() ? "path did not exit" : p.failure;
        out.verdict = EquivVerdict::kInconclusive;
        out.detail = "thread " + std::to_string(tid) +
                     ": a symbolic path failed: " + why;
        out.failure =
            vcgen::ProofResult::Failure{tid, 0, "engine", "", why, ""};
        return out;
      }
    }
  }

  // --- phase 2: normalize + align, thread by thread ------------------
  // With --no-normalize the Normalizer is the identity: the write maps
  // then carry only the arena's smart-constructor forms (the ablation
  // that measures what the rewrite rules buy).
  std::optional<vcgen::ProofResult::Failure> mismatch;
  for (std::uint32_t tid = 0; tid < kc.total_threads() && !mismatch;
       ++tid) {
    WriteMap ma = build_write_map(arena, norm, sum_a[tid]);
    WriteMap mb = build_write_map(arena, norm, sum_b[tid]);
    if (auto mm = compare_write_maps(arena, ma, mb, out.obligations)) {
      mismatch = vcgen::ProofResult::Failure{
          tid, 0, mm->obligation, to_string(mm->cell), mm->lhs, mm->rhs};
    }
  }
  out.terms_normalized = norm.stats().terms;
  out.rewrites = norm.stats().rewrites;

  if (!mismatch) {
    out.verdict = EquivVerdict::kEquivalent;
    out.detail = stats_detail(out);
    return out;
  }
  out.failure = mismatch;

  // --- phase 3: counterexample search --------------------------------
  if (!opts.counterexample) {
    out.verdict = EquivVerdict::kInconclusive;
    out.detail = "thread " + std::to_string(mismatch->thread) +
                 ": symbolic " + mismatch->obligation + " mismatch at " +
                 mismatch->cell +
                 " (counterexample search disabled; the normalizer is "
                 "incomplete, so this does not refute equivalence)";
    return out;
  }
  const CexSearch search = search_counterexample(
      a, b, kc, env, sum_a, sum_b, opts.cex, explorer);
  out.cex_trials = search.trials;
  out.cex_replays = search.replays;
  if (search.found) {
    out.verdict = EquivVerdict::kNotEquivalent;
    out.cex = search.found;
    out.detail = "thread " + std::to_string(mismatch->thread) +
                 ": symbolic " + mismatch->obligation + " mismatch at " +
                 mismatch->cell + "; replay-validated counterexample: " +
                 search.found->region + "[" +
                 std::to_string(search.found->offset) + "] = " +
                 std::to_string(search.found->value_a) + " vs " +
                 std::to_string(search.found->value_b);
    return out;
  }
  out.verdict = EquivVerdict::kInconclusive;
  out.cex_budget_tripped = search.budget_exhausted;
  out.detail = "thread " + std::to_string(mismatch->thread) +
               ": symbolic " + mismatch->obligation + " mismatch at " +
               mismatch->cell + ", but no concrete divergence in " +
               std::to_string(search.trials) + " trials" +
               (search.note.empty() ? "" : " (" + search.note + ")") +
               "; inconclusive, not refuted";
  return out;
}

}  // namespace cac::equiv
