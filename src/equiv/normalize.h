// Term normalization — the rewrite engine that lets independently
// written kernels prove equivalent structurally.
//
// The arena's smart constructors (sym/term.h) fold constants and fix a
// local operand order, which is enough when two programs *lower* to the
// same computation.  Real reference-vs-optimized pairs need more: an
// unrolled loop builds `((x + a0) + a1) + a2` where the reference
// builds `x + ((a0 + a1) + a2)`, a strength-reduced kernel computes
// `x << 3` where the reference computes `x * 8`, and so on.  The
// Normalizer closes that gap with a global rewrite to a canonical
// form:
//
//  * linear combinations — Add/Sub/Neg chains, multiplications by
//    constants, and left shifts by constants all collapse into
//    `c0 + c1*t1 + ... + cn*tn` with the symbolic bases sorted by
//    term ref and the constant last (add-chain collapsing,
//    `x*2^k == x<<k`, `x+x == 2*x`, distribution over constant
//    factors);
//  * strength-reduction identities — `x %u 2^k -> x & (2^k-1)`,
//    `x /u 2^k -> x >>l k`;
//  * AC flattening — And/Or/Xor chains flatten, sort, deduplicate
//    (Xor: cancel pairs), and fold identities/annihilators including
//    `x & ~x -> 0`, `x | ~x -> ~0`;
//  * everything else rebuilds bottom-up through the arena's smart
//    constructors with normalized children.
//
// Soundness invariant (pinned by tests/equiv/normalize_test.cc):
// `evaluate(normalize(t)) == evaluate(t)` for every valuation — each
// rule is an algebraic identity modulo 2^width.  The normalizer is
// deliberately *incomplete*: two equivalent terms may still normalize
// differently, which is why a failed structural proof is never a
// refutation by itself (docs/equiv.md).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "sym/term.h"

namespace cac::equiv {

struct NormalizeStats {
  std::uint64_t terms = 0;     // distinct terms normalized
  std::uint64_t rewrites = 0;  // terms whose normal form differs
};

class Normalizer {
 public:
  /// `enabled = false` makes normalize() the identity — the guard
  /// alignment layer still runs, but only the arena's smart-constructor
  /// forms apply (the `--no-normalize` ablation knob).
  explicit Normalizer(sym::TermArena& arena, bool enabled = true)
      : arena_(arena), enabled_(enabled) {}

  /// The canonical form of `t`.  Memoized: normalizing a DAG is linear
  /// in its distinct nodes.
  sym::TermRef normalize(sym::TermRef t);

  [[nodiscard]] const NormalizeStats& stats() const { return stats_; }

 private:
  /// Linear-combination view `c + Σ coeff_i * base_i` of a normalized
  /// term (coefficients modulo 2^width; bases are non-constant
  /// normalized terms keyed by ref, so the rebuild order is canonical).
  struct Lin {
    std::map<sym::TermRef, std::uint64_t> coeff;
    std::uint64_t c = 0;
  };

  sym::TermRef norm_uncached(sym::TermRef t);
  Lin linearize(sym::TermRef t, unsigned w);
  sym::TermRef rebuild(const Lin& lin, unsigned w);
  /// Canonical opaque product of two normalized non-constant factors:
  /// flattens Mul spines, extracts the constant coefficient, sorts the
  /// symbolic factors.  Returns the coefficient; appends factors.
  std::uint64_t factorize(sym::TermRef t, unsigned w,
                          std::vector<sym::TermRef>& factors);
  sym::TermRef flatten_bitop(sym::Op op, sym::TermRef t, unsigned w);

  sym::TermArena& arena_;
  bool enabled_ = true;
  std::unordered_map<sym::TermRef, sym::TermRef> memo_;
  NormalizeStats stats_;
};

}  // namespace cac::equiv
