#include "sym/block_exec.h"

#include <algorithm>
#include <map>
#include <memory>

namespace cac::sym {

using namespace cac::ptx;

namespace {

struct SymThread {
  std::uint32_t tid = 0;
  SymRegs regs;
};

/// Warp divergence tree over symbolic thread states (the Uni/Div
/// structure of sem/warp.h, specialized for this engine).
struct WNode {
  std::uint32_t pc = 0;
  std::vector<SymThread> threads;
  std::unique_ptr<WNode> l, r;

  [[nodiscard]] bool divergent() const { return l != nullptr; }
  [[nodiscard]] const WNode& leftmost() const {
    const WNode* n = this;
    while (n->divergent()) n = n->l.get();
    return *n;
  }
  [[nodiscard]] WNode& leftmost() {
    WNode* n = this;
    while (n->divergent()) n = n->l.get();
    return *n;
  }
  [[nodiscard]] std::uint32_t head_pc() const { return leftmost().pc; }
};

/// Fig. 2 sync over WNode trees.
std::unique_ptr<WNode> sync_tree(std::unique_ptr<WNode> w) {
  if (!w->divergent()) {
    ++w->pc;
    return w;
  }
  auto l = std::move(w->l);
  auto r = std::move(w->r);
  if (!l->divergent() && l->threads.empty()) return sync_tree(std::move(r));
  if (!r->divergent() && r->threads.empty()) return sync_tree(std::move(l));
  if (!l->divergent() && !r->divergent() && l->pc == r->pc) {
    auto merged = std::make_unique<WNode>();
    merged->pc = l->pc + 1;
    merged->threads = std::move(l->threads);
    merged->threads.insert(merged->threads.end(),
                           std::make_move_iterator(r->threads.begin()),
                           std::make_move_iterator(r->threads.end()));
    std::sort(merged->threads.begin(), merged->threads.end(),
              [](const SymThread& a, const SymThread& b) {
                return a.tid < b.tid;
              });
    return merged;
  }
  auto out = std::make_unique<WNode>();
  if (!l->divergent()) {  // rotate
    out->l = std::move(r);
    out->r = std::move(l);
    return out;
  }
  out->l = sync_tree(std::move(l));
  out->r = std::move(r);
  return out;
}

/// The block's symbolic memory: region cells with barrier-phase and
/// writer-warp provenance for the synchronization checks.
class BlockMemory {
 public:
  explicit BlockMemory(TermArena* arena) : arena_(arena) {}

  struct Cell {
    unsigned bytes;
    TermRef value;
    bool written = false;          // false: input var
    bool atomic = false;           // updated by atomics only
    std::uint32_t phase = 0;       // barrier phase of the last write
    std::uint32_t writer_warp = 0;
  };

  TermRef load(const std::string& region, std::uint64_t offset,
               unsigned bytes, std::uint32_t warp, std::uint32_t phase,
               bool shared) {
    auto it = cells_.find({region, offset});
    if (it == cells_.end()) {
      check_overlap(region, offset, bytes);
      if (shared) {
        // Shared bytes start invalid and are zero; a barrier commits
        // them (lift-bar), after which reading the zeros is defined.
        // Before any barrier the read observes in-flight bytes.
        if (phase == 0) {
          throw cac::KernelError(
              "Shared read of uninitialized/uncommitted bytes "
              "(no bar.sync has committed them)");
        }
        const TermRef z = arena_->konst(0, 8 * bytes);
        cells_.emplace(std::make_pair(region, offset),
                       Cell{bytes, z, false, 0, 0});
        return z;
      }
      const TermRef v = arena_->var(
          region + "[" + std::to_string(offset) + "]", 8 * bytes);
      cells_.emplace(std::make_pair(region, offset),
                     Cell{bytes, v, false, 0, 0});
      return v;
    }
    const Cell& c = it->second;
    if (c.bytes != bytes) {
      throw cac::KernelError("mixed-granularity access to " + region);
    }
    if (c.atomic) {
      throw cac::KernelError(
          "plain load of an atomically-updated cell (order-dependent)");
    }
    if (c.written && c.writer_warp != warp) {
      // Cross-warp communication: legal for Shared only across a
      // barrier; never legal for Global (plain stores never commit).
      if (!shared) {
        throw cac::KernelError(
            "cross-warp Global read-after-write (unsynchronized)");
      }
      if (c.phase == phase) {
        throw cac::KernelError(
            "Shared read of another warp's uncommitted store "
            "(missing bar.sync)");
      }
    }
    return c.value;
  }

  void store(const std::string& region, std::uint64_t offset, unsigned bytes,
             TermRef value, std::uint32_t warp, std::uint32_t phase,
             bool shared) {
    auto it = cells_.find({region, offset});
    if (it != cells_.end()) {
      Cell& c = it->second;
      if (c.bytes != bytes) {
        throw cac::KernelError("mixed-granularity access to " + region);
      }
      if (c.atomic) {
        throw cac::KernelError(
            "plain store to an atomically-updated cell (order-dependent)");
      }
      if (c.written && c.writer_warp != warp && !(shared && c.phase != phase)) {
        // Same-phase cross-warp overwrite (or any cross-warp Global
        // overwrite): the surviving value depends on the warp order.
        if (c.value != value) {
          throw cac::KernelError(
              "cross-warp conflicting stores to " + region + "[" +
              std::to_string(offset) + "]");
        }
      }
      c.value = arena_->trunc(value, 8 * bytes);
      c.written = true;
      c.phase = phase;
      c.writer_warp = warp;
      return;
    }
    check_overlap(region, offset, bytes);
    cells_.emplace(std::make_pair(region, offset),
                   Cell{bytes, arena_->trunc(value, 8 * bytes),
                        /*written=*/true, /*atomic=*/false, phase, warp});
  }

  /// Current value for an atomic read-modify-write; creates the input
  /// variable on first touch (the cell's launch-time contents).
  TermRef load_for_atomic(const std::string& region, std::uint64_t offset,
                          unsigned bytes, std::uint32_t phase, bool shared) {
    auto it = cells_.find({region, offset});
    if (it == cells_.end()) {
      check_overlap(region, offset, bytes);
      if (shared && phase == 0) {
        throw cac::KernelError(
            "Shared atomic on uninitialized/uncommitted bytes");
      }
      const TermRef v =
          shared ? arena_->konst(0, 8 * bytes)
                 : arena_->var(region + "[" + std::to_string(offset) + "]",
                               8 * bytes);
      cells_.emplace(std::make_pair(region, offset),
                     Cell{bytes, v, false, false, 0, 0});
      return v;
    }
    Cell& c = it->second;
    if (c.bytes != bytes) {
      throw cac::KernelError("mixed-granularity access to " + region);
    }
    if (c.written && !c.atomic) {
      throw cac::KernelError(
          "atomic on a plainly-written cell (order-dependent)");
    }
    return c.value;
  }

  void store_atomic(const std::string& region, std::uint64_t offset,
                    unsigned bytes, TermRef value) {
    Cell& c = cells_.at({region, offset});  // load_for_atomic ran first
    c.value = arena_->trunc(value, 8 * bytes);
    c.written = true;
    c.atomic = true;
  }

  [[nodiscard]] std::vector<SymWrite> writes() const {
    std::vector<SymWrite> out;
    for (const auto& [key, c] : cells_) {
      if (c.written) out.push_back({key.first, key.second, c.bytes, c.value});
    }
    return out;
  }

 private:
  void check_overlap(const std::string& region, std::uint64_t offset,
                     unsigned bytes) const {
    auto it = cells_.lower_bound({region, offset > 8 ? offset - 8 : 0});
    for (; it != cells_.end(); ++it) {
      const auto& [key, cell] = *it;
      if (key.first != region || key.second >= offset + bytes) break;
      if (key.second + cell.bytes > offset && key.second < offset + bytes &&
          !(key.second == offset && cell.bytes == bytes)) {
        throw cac::KernelError("mixed-granularity access to " + region);
      }
    }
  }

  TermArena* arena_;
  std::map<std::pair<std::string, std::uint64_t>, Cell> cells_;
};

class BlockExec {
 public:
  BlockExec(const Program& prg, const sem::KernelConfig& kc,
            std::uint32_t block, const SymEnv& env,
            const BlockExecOptions& opts)
      : prg_(prg), kc_(kc), block_(block), env_(env), opts_(opts),
        arena_(*env.arena), mem_(env.arena) {}

  BlockSummary run() {
    BlockSummary summary;
    try {
      init_warps();
      while (!all_complete()) {
        if (summary.steps >= opts_.max_steps) {
          throw cac::KernelError("step bound exceeded (symbolic loop?)");
        }
        const std::size_t w = pick_warp();
        if (w == warps_.size()) {
          // No executable warp: lift-bar or deadlock.
          if (all_uniform_at_bar()) {
            ++phase_;
            ++summary.barriers;
            for (auto& warp : warps_) ++warp->pc;
            ++summary.steps;
            continue;
          }
          throw cac::KernelError(
              "block is stuck (barrier divergence or mixed Bar/Exit)");
        }
        step_warp(static_cast<std::uint32_t>(w));
        ++summary.steps;
      }
      summary.writes = mem_.writes();
      // An atomic's fetched old value is schedule-dependent; a final
      // store derived from one would make the result order-dependent.
      for (const SymWrite& w : summary.writes) {
        if (contains_poisoned(w.value)) {
          throw cac::KernelError(
              "a store depends on an atomic's fetched old value "
              "(schedule-dependent)");
        }
      }
      summary.ok = true;
      std::sort(summary.writes.begin(), summary.writes.end());
    } catch (const cac::KernelError& e) {
      summary.failure = e.what();
    }
    return summary;
  }

 private:
  void init_warps() {
    const std::uint32_t tpb = kc_.threads_per_block();
    for (std::uint32_t t = 0; t < tpb; t += kc_.warp_size) {
      auto w = std::make_unique<WNode>();
      w->pc = 0;
      const std::uint32_t n = std::min(kc_.warp_size, tpb - t);
      for (std::uint32_t i = 0; i < n; ++i) {
        SymThread th;
        th.tid = sem::linear_tid(kc_, block_, t + i);
        w->threads.push_back(std::move(th));
      }
      warps_.push_back(std::move(w));
    }
  }

  [[nodiscard]] bool warp_complete(const WNode& w) const {
    return !w.divergent() && is_exit(prg_.fetch(w.pc));
  }

  [[nodiscard]] bool all_complete() const {
    return std::all_of(warps_.begin(), warps_.end(),
                       [&](const auto& w) { return warp_complete(*w); });
  }

  [[nodiscard]] bool all_uniform_at_bar() const {
    return std::all_of(warps_.begin(), warps_.end(), [&](const auto& w) {
      return !w->divergent() && is_bar(prg_.fetch(w->pc));
    });
  }

  /// First warp whose next instruction is executable.
  [[nodiscard]] std::size_t pick_warp() const {
    for (std::size_t i = 0; i < warps_.size(); ++i) {
      const Instr& instr = prg_.fetch(warps_[i]->head_pc());
      if (!is_bar(instr) && !is_exit(instr)) return i;
    }
    return warps_.size();
  }

  // ---- operand evaluation (concrete tid, symbolic data) ----

  TermRef operand(const SymThread& t, const Operand& op) {
    struct V {
      BlockExec& x;
      const SymThread& t;
      TermRef operator()(const Reg& r) const {
        return t.regs.read(x.arena_, r);
      }
      TermRef operator()(const Sreg& s) const {
        return x.arena_.konst(sem::sreg_aux(x.kc_, t.tid, s), 32);
      }
      TermRef operator()(const Imm& i) const {
        return x.arena_.konst(static_cast<std::uint64_t>(i.value), 64);
      }
      TermRef operator()(const RegImm& ri) const {
        return x.arena_.add(
            x.arena_.zext(t.regs.read(x.arena_, ri.reg), 64),
            x.arena_.konst(static_cast<std::uint64_t>(ri.offset), 64));
      }
    };
    return std::visit(V{*this, t}, op);
  }

  TermRef operand_at(const SymThread& t, const Operand& op, unsigned w) {
    return arena_.resize(operand(t, op), w, false);
  }

  void write_reg(SymThread& t, const Reg& r, TermRef v) {
    t.regs.rho[r.key()] = arena_.resize(v, r.width, false);
  }

  std::pair<std::string, std::uint64_t> resolve(Space space, TermRef addr,
                                                bool* shared) {
    *shared = space == Space::Shared;
    const LinearForm lf = arena_.linear_form(addr);
    if (!lf.base) {
      return {*shared ? "shared" : "@" + ptx::to_string(space), lf.offset};
    }
    const TermNode& base = arena_.node(*lf.base);
    if (base.op == Op::Var) {
      const std::string& name = arena_.var_name(*lf.base);
      if (!*shared && env_.pointer_params.count(name)) {
        return {name, lf.offset};
      }
    }
    throw cac::KernelError("unresolvable symbolic address: " +
                           arena_.to_string(addr));
  }

  // ---- one warp step (Fig. 1, symbolic) ----

  void step_warp(std::uint32_t wi) {
    WNode& root = *warps_[wi];
    const Instr& instr = prg_.fetch(root.head_pc());

    if (is_sync(instr)) {
      warps_[wi] = sync_tree(std::move(warps_[wi]));
      return;
    }
    WNode& leaf = root.leftmost();
    exec_leaf(wi, leaf, instr);
  }

  void exec_leaf(std::uint32_t wi, WNode& leaf, const Instr& instr) {
    const std::uint32_t pc = leaf.pc;
    ++leaf.pc;  // default: fall through

    if (std::holds_alternative<INop>(instr)) return;

    if (const auto* i = std::get_if<IBop>(&instr)) {
      const unsigned w = i->type.width;
      const bool sgn = i->type.is_signed();
      for (SymThread& t : leaf.threads) {
        const TermRef a = operand_at(t, i->a, w);
        const TermRef b = operand_at(t, i->b, w);
        TermRef v = 0;
        switch (i->op) {
          case BinOp::Add: v = arena_.add(a, b); break;
          case BinOp::Sub: v = arena_.sub(a, b); break;
          case BinOp::Mul: v = arena_.mul(a, b); break;
          case BinOp::MulHi: v = arena_.mul_hi(a, b, sgn); break;
          case BinOp::MulWide: {
            const unsigned ww = w >= 64 ? 64 : 2 * w;
            v = arena_.mul(arena_.resize(a, ww, sgn),
                           arena_.resize(b, ww, sgn));
            break;
          }
          case BinOp::Div: v = arena_.div(a, b, sgn); break;
          case BinOp::Rem: v = arena_.rem(a, b, sgn); break;
          case BinOp::Min: v = arena_.min(a, b, sgn); break;
          case BinOp::Max: v = arena_.max(a, b, sgn); break;
          case BinOp::And: v = arena_.band(a, b); break;
          case BinOp::Or: v = arena_.bor(a, b); break;
          case BinOp::Xor: v = arena_.bxor(a, b); break;
          case BinOp::Shl: v = arena_.shl(a, b); break;
          case BinOp::Shr:
            v = sgn ? arena_.ashr(a, b) : arena_.lshr(a, b);
            break;
        }
        write_reg(t, i->dst, v);
      }
      return;
    }
    if (const auto* i = std::get_if<ITop>(&instr)) {
      const unsigned w = i->type.width;
      const bool sgn = i->type.is_signed();
      for (SymThread& t : leaf.threads) {
        const TermRef a = operand_at(t, i->a, w);
        const TermRef b = operand_at(t, i->b, w);
        if (i->op == TerOp::MadLo) {
          write_reg(t, i->dst,
                    arena_.add(arena_.mul(a, b), operand_at(t, i->c, w)));
        } else {
          const unsigned ww = w >= 64 ? 64 : 2 * w;
          write_reg(t, i->dst,
                    arena_.add(arena_.mul(arena_.resize(a, ww, sgn),
                                          arena_.resize(b, ww, sgn)),
                               operand_at(t, i->c, ww)));
        }
      }
      return;
    }
    if (const auto* i = std::get_if<IUop>(&instr)) {
      for (SymThread& t : leaf.threads) {
        const TermRef a =
            arena_.resize(operand(t, i->a), i->type.width, false);
        switch (i->op) {
          case UnOp::Not: write_reg(t, i->dst, arena_.bnot(a)); break;
          case UnOp::Neg: write_reg(t, i->dst, arena_.neg(a)); break;
          case UnOp::Cvt:
            write_reg(t, i->dst,
                      arena_.resize(a, i->dst.width, i->type.is_signed()));
            break;
          case UnOp::Abs:
            write_reg(t, i->dst,
                      arena_.ite(arena_.lt(a, arena_.konst(0, i->type.width),
                                           true),
                                 arena_.neg(a), a));
            break;
          case UnOp::Popc: write_reg(t, i->dst, arena_.popc(a)); break;
          case UnOp::Clz: write_reg(t, i->dst, arena_.clz(a)); break;
          case UnOp::Brev: write_reg(t, i->dst, arena_.brev(a)); break;
        }
      }
      return;
    }
    if (const auto* i = std::get_if<IMov>(&instr)) {
      for (SymThread& t : leaf.threads) {
        write_reg(t, i->dst,
                  arena_.resize(operand(t, i->src), i->dst.width, false));
      }
      return;
    }
    if (const auto* i = std::get_if<ILd>(&instr)) {
      for (SymThread& t : leaf.threads) {
        if (i->space == Space::Param) {
          const auto off = arena_.const_value(
              arena_.resize(operand(t, i->addr), 64, false));
          if (!off) throw cac::KernelError("symbolic Param address");
          bool found = false;
          for (const ParamSlot& p : prg_.params()) {
            if (p.offset == *off) {
              auto it = env_.params.find(p.name);
              if (it == env_.params.end()) break;
              write_reg(t, i->dst,
                        arena_.resize(it->second, i->dst.width,
                                      i->type.is_signed()));
              found = true;
              break;
            }
          }
          if (!found) throw cac::KernelError("Param load from unbound slot");
          continue;
        }
        bool shared = false;
        const auto [region, offset] = resolve(
            i->space, arena_.resize(operand(t, i->addr), 64, false),
            &shared);
        const TermRef raw =
            mem_.load(region, offset, i->type.bytes(), wi, phase_, shared);
        write_reg(t, i->dst,
                  arena_.resize(raw, i->dst.width, i->type.is_signed()));
      }
      return;
    }
    if (const auto* i = std::get_if<ISt>(&instr)) {
      if (i->space == Space::Const || i->space == Space::Param) {
        throw cac::KernelError("store to read-only space");
      }
      for (SymThread& t : leaf.threads) {
        bool shared = false;
        const auto [region, offset] = resolve(
            i->space, arena_.resize(operand(t, i->addr), 64, false),
            &shared);
        mem_.store(region, offset, i->type.bytes(),
                   arena_.resize(t.regs.read(arena_, i->src),
                                 8 * i->type.bytes(), false),
                   wi, phase_, shared);
      }
      return;
    }
    if (const auto* i = std::get_if<IBra>(&instr)) {
      leaf.pc = i->target;
      return;
    }
    if (const auto* i = std::get_if<ISetp>(&instr)) {
      const unsigned w = i->type.width;
      const bool sgn = i->type.is_signed();
      for (SymThread& t : leaf.threads) {
        const TermRef a = operand_at(t, i->a, w);
        const TermRef b = operand_at(t, i->b, w);
        TermRef p = 0;
        switch (i->cmp) {
          case CmpOp::Eq: p = arena_.eq(a, b); break;
          case CmpOp::Ne: p = arena_.ne(a, b); break;
          case CmpOp::Lt: p = arena_.lt(a, b, sgn); break;
          case CmpOp::Le: p = arena_.le(a, b, sgn); break;
          case CmpOp::Gt: p = arena_.gt(a, b, sgn); break;
          case CmpOp::Ge: p = arena_.ge(a, b, sgn); break;
        }
        t.regs.phi[i->dst.index] = p;
      }
      return;
    }
    if (const auto* i = std::get_if<IPBra>(&instr)) {
      std::vector<SymThread> taken, fall;
      for (SymThread& t : leaf.threads) {
        TermRef p = t.regs.read_pred(arena_, i->pred);
        if (i->negated) p = arena_.lnot(p);
        const auto c = arena_.const_value(p);
        if (!c) {
          throw cac::KernelError(
              "symbolic branch predicate outside the block fragment "
              "(bind the relevant parameters concretely)");
        }
        (*c ? taken : fall).push_back(std::move(t));
      }
      if (taken.empty()) {
        leaf.threads = std::move(fall);  // pc already advanced
      } else if (fall.empty()) {
        leaf.threads = std::move(taken);
        leaf.pc = i->target;
      } else {
        auto left = std::make_unique<WNode>();
        left->pc = pc + 1;
        left->threads = std::move(fall);
        auto right = std::make_unique<WNode>();
        right->pc = i->target;
        right->threads = std::move(taken);
        leaf.threads.clear();
        leaf.l = std::move(left);
        leaf.r = std::move(right);
      }
      return;
    }
    if (const auto* i = std::get_if<ISelp>(&instr)) {
      const unsigned w = i->type.width;
      for (SymThread& t : leaf.threads) {
        const TermRef a = operand_at(t, i->a, w);
        const TermRef b = operand_at(t, i->b, w);
        write_reg(t, i->dst,
                  arena_.ite(t.regs.read_pred(arena_, i->pred), a, b));
      }
      return;
    }
    if (const auto* i = std::get_if<IVote>(&instr)) {
      // Votes need the whole warp's lanes: require a uniform warp (the
      // concrete kernel faults in a divergent one too).
      if (warps_[wi]->divergent()) {
        throw cac::KernelError("vote in a divergent warp");
      }
      TermRef all = arena_.tru();
      TermRef any = arena_.fls();
      TermRef ballot = arena_.konst(0, 32);
      for (std::size_t k = 0; k < leaf.threads.size(); ++k) {
        const TermRef p = leaf.threads[k].regs.read_pred(arena_, i->src);
        all = arena_.band(all, p);
        any = arena_.bor(any, p);
        if (k < 32) {
          ballot = arena_.bor(
              ballot, arena_.ite(p, arena_.konst(1u << k, 32),
                                 arena_.konst(0, 32)));
        }
      }
      for (SymThread& t : leaf.threads) {
        switch (i->mode) {
          case VoteMode::All: t.regs.phi[i->dst.index] = all; break;
          case VoteMode::Any: t.regs.phi[i->dst.index] = any; break;
          case VoteMode::Ballot: write_reg(t, i->dst_ballot, ballot); break;
        }
      }
      return;
    }
    if (const auto* i = std::get_if<IShfl>(&instr)) {
      if (warps_[wi]->divergent()) {
        throw cac::KernelError("shfl in a divergent warp");
      }
      const auto n = static_cast<std::uint32_t>(leaf.threads.size());
      std::vector<TermRef> lanes(n);
      for (std::uint32_t k = 0; k < n; ++k) {
        lanes[k] = leaf.threads[k].regs.read(arena_, i->src);
      }
      for (std::uint32_t k = 0; k < n; ++k) {
        SymThread& t = leaf.threads[k];
        const auto lane_arg = arena_.const_value(
            arena_.resize(operand(t, i->lane), 32, false));
        if (!lane_arg) {
          throw cac::KernelError("symbolic shfl lane outside the fragment");
        }
        std::uint32_t j = k;
        switch (i->mode) {
          case ShflMode::Idx: j = static_cast<std::uint32_t>(*lane_arg); break;
          case ShflMode::Up:
            j = *lane_arg <= k ? k - static_cast<std::uint32_t>(*lane_arg)
                               : k;
            break;
          case ShflMode::Down:
            j = k + *lane_arg < n
                    ? k + static_cast<std::uint32_t>(*lane_arg)
                    : k;
            break;
          case ShflMode::Bfly:
            j = k ^ static_cast<std::uint32_t>(*lane_arg);
            break;
        }
        write_reg(t, i->dst,
                  arena_.resize(j < n ? lanes[j] : lanes[k],
                                i->type.width, false));
      }
      return;
    }
    if (const auto* i = std::get_if<IAtom>(&instr)) {
      // Commutative-associative atomics are schedule-independent in
      // their *memory* effect: any update order folds to the same
      // value (mod AC), so the engine's canonical thread order proves
      // the result for every schedule.  The fetched old value IS
      // order-dependent; it is returned as an opaque fresh variable,
      // and using it in any later store is rejected (see ISt).
      const unsigned w = i->type.width;
      const bool sgn = i->type.is_signed();
      for (SymThread& t : leaf.threads) {
        bool shared = false;
        const auto [region, offset] = resolve(
            i->space, arena_.resize(operand(t, i->addr), 64, false),
            &shared);
        const TermRef old = mem_.load_for_atomic(region, offset,
                                                 i->type.bytes(), phase_,
                                                 shared);
        const TermRef b = operand_at(t, i->b, w);
        TermRef nv = 0;
        switch (i->op) {
          case AtomOp::Add: nv = arena_.add(old, b); break;
          case AtomOp::Min: nv = arena_.min(old, b, sgn); break;
          case AtomOp::Max: nv = arena_.max(old, b, sgn); break;
          case AtomOp::And: nv = arena_.band(old, b); break;
          case AtomOp::Or: nv = arena_.bor(old, b); break;
          case AtomOp::Xor: nv = arena_.bxor(old, b); break;
          case AtomOp::Exch:
          case AtomOp::Cas:
            throw cac::KernelError(
                "non-commutative atomic outside the block fragment");
        }
        mem_.store_atomic(region, offset, i->type.bytes(),
                          arena_.resize(nv, 8 * i->type.bytes(), false));
        const TermRef opaque = arena_.var(
            "atom_old#" + std::to_string(atom_counter_++), w);
        poisoned_.push_back(opaque);
        write_reg(t, i->dst, arena_.resize(opaque, i->dst.width, sgn));
      }
      return;
    }
    throw cac::KernelError("unhandled instruction in block execution");
  }

  const Program& prg_;
  const sem::KernelConfig& kc_;
  std::uint32_t block_;
  const SymEnv& env_;
  const BlockExecOptions& opts_;
  TermArena& arena_;
  BlockMemory mem_;
  std::vector<std::unique_ptr<WNode>> warps_;
  std::uint32_t phase_ = 0;
  std::uint32_t atom_counter_ = 0;
  std::vector<TermRef> poisoned_;  // opaque atomic old-value variables

 public:
  /// Does the term's DAG mention any poisoned variable?
  bool contains_poisoned(TermRef t) {
    if (poisoned_.empty()) return false;
    auto it = poison_memo_.find(t);
    if (it != poison_memo_.end()) return it->second;
    const TermNode& n = arena_.node(t);
    bool found = false;
    switch (n.op) {
      case Op::Const:
        break;
      case Op::Var:
        found = std::find(poisoned_.begin(), poisoned_.end(), t) !=
                poisoned_.end();
        break;
      case Op::Not:
      case Op::Neg:
      case Op::Popc:
      case Op::Clz:
      case Op::Brev:
      case Op::ZExt:
      case Op::SExt:
      case Op::Trunc:
        found = contains_poisoned(n.a);
        break;
      case Op::Ite:
        found = contains_poisoned(n.a) || contains_poisoned(n.b) ||
                contains_poisoned(n.c);
        break;
      default:  // binary
        found = contains_poisoned(n.a) || contains_poisoned(n.b);
        break;
    }
    poison_memo_[t] = found;
    return found;
  }

 private:
  std::map<TermRef, bool> poison_memo_;
};

}  // namespace

std::vector<SymWrite> BlockSummary::writes_to(
    const std::string& region) const {
  std::vector<SymWrite> out;
  for (const SymWrite& w : writes) {
    if (w.region == region) out.push_back(w);
  }
  return out;
}

BlockSummary sym_execute_block(const ptx::Program& prg,
                               const sem::KernelConfig& kc,
                               std::uint32_t block_index, const SymEnv& env,
                               const BlockExecOptions& opts) {
  return BlockExec(prg, kc, block_index, env, opts).run();
}

}  // namespace cac::sym
