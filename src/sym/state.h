// Symbolic machine state for the per-thread symbolic interpreter.
//
// Memory is modeled per *region*: each pointer-typed kernel parameter
// names a region (arr_A, arr_B, ...), assumed disjoint from the others
// — the standard separation assumption, which matches how the paper's
// §IV proof treats the three vectors as distinct objects.  Offsets
// within a region must be concrete (they are: thread ids are concrete
// during warp-level symbolic execution; only *data* stays symbolic).
//
// A load from a never-written cell yields a named variable
// `region[offset]:w`, interned in the arena — so the same cell read by
// two different programs yields the *same* variable, which is what
// makes cross-program equivalence proofs structural.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ptx/operand.h"
#include "sym/term.h"

namespace cac::sym {

/// One store performed by a symbolic thread.
struct SymWrite {
  std::string region;
  std::uint64_t offset = 0;
  unsigned bytes = 4;
  TermRef value = 0;

  friend bool operator==(const SymWrite&, const SymWrite&) = default;
  /// Ordering for canonical write-set comparison.
  friend auto operator<=>(const SymWrite&, const SymWrite&) = default;
};

/// Region-granular symbolic memory for one thread's path.
class SymMemory {
 public:
  explicit SymMemory(TermArena* arena) : arena_(arena) {}

  /// Load `bytes` at a concrete region offset.  Reads of unwritten
  /// cells produce (and remember) fresh input variables.  Throws
  /// KernelError on an access overlapping an existing cell of a
  /// different granularity.
  TermRef load(const std::string& region, std::uint64_t offset,
               unsigned bytes);

  /// Store `value` (truncated to 8*bytes) at a concrete offset.
  void store(const std::string& region, std::uint64_t offset, unsigned bytes,
             TermRef value);

  /// All stores this path performed, in canonical (region, offset)
  /// order; later stores to the same cell supersede earlier ones.
  [[nodiscard]] std::vector<SymWrite> writes() const;

 private:
  struct Cell {
    unsigned bytes;
    TermRef value;
    bool written;  // false: input var from a load
  };
  void check_overlap(const std::string& region, std::uint64_t offset,
                     unsigned bytes) const;

  TermArena* arena_;
  std::map<std::pair<std::string, std::uint64_t>, Cell> cells_;
};

/// Symbolic register file / predicate state of one thread.
struct SymRegs {
  std::map<std::uint32_t, TermRef> rho;   // Reg::key() -> term
  std::map<std::uint16_t, TermRef> phi;   // predicate -> width-1 term

  /// Unwritten registers read as zero, mirroring the concrete launch
  /// state (sem/thread.h).
  [[nodiscard]] TermRef read(TermArena& arena, const ptx::Reg& r) const;
  [[nodiscard]] TermRef read_pred(TermArena& arena,
                                  const ptx::Pred& p) const;
};

}  // namespace cac::sym
