// Per-thread symbolic execution — the engine behind ∀-input proofs.
//
// The paper's unroll_apply tactic symbolically interprets PTX inside a
// Coq proof, leaving the inputs universally quantified (§IV).  Our
// engine does the same, made tractable by the two theorems the paper
// proves first:
//
//  * scheduler transparency lets proofs consider one schedule, and
//  * nd_map lane-order independence makes each thread's effect a
//    function of its own inputs,
//
// so a kernel's behaviour decomposes into per-thread symbolic runs
// with concrete tids and symbolic parameters/array contents.  A run
// yields a set of *paths*, each with a path condition (a width-1 term)
// and the stores performed on it; the conditions of the paths of one
// thread partition the input space by construction (every fork splits
// on c / not c).
//
// Supported fragment: the unsynchronized data-parallel core — no Bar,
// no Shared-space traffic, no atomics (those are handled by the
// schedule explorer instead; see DESIGN.md).  Loops must have concrete
// trip counts (symbolic data is fine).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ptx/program.h"
#include "sem/config.h"
#include "sym/state.h"

namespace cac::sym {

/// Symbolic launch environment: what each kernel parameter means.
struct SymEnv {
  TermArena* arena = nullptr;
  /// Parameter name -> term (usually a Var named after the parameter).
  std::unordered_map<std::string, TermRef> params;
  /// Parameters that act as region base pointers.
  std::set<std::string> pointer_params;

  /// Default environment: every u64 parameter becomes a region base
  /// pointer variable, everything else a symbolic scalar.
  static SymEnv symbolic(TermArena& arena, const ptx::Program& prg);

  /// Bind a parameter to a concrete value (e.g. a concrete trip count
  /// for a loop, leaving data symbolic).
  void bind(const ptx::Program& prg, const std::string& name,
            std::uint64_t value);
};

/// One execution path of one thread.
struct SymPath {
  TermRef cond = 0;              // width-1 path condition
  std::vector<SymWrite> writes;  // stores on this path (canonical order)
  SymRegs regs;                  // final register state
  std::uint64_t steps = 0;
  bool exited = false;
  std::string failure;           // non-empty: unsupported/faulting path

  [[nodiscard]] bool ok() const { return failure.empty(); }
};

struct ThreadSummary {
  std::uint32_t tid = 0;
  std::vector<SymPath> paths;

  [[nodiscard]] bool all_ok() const;
};

struct SymExecOptions {
  std::uint64_t max_steps = 1u << 14;  // per path
  std::size_t max_paths = 64;
};

/// Symbolically execute one thread of the kernel.
ThreadSummary sym_execute_thread(const ptx::Program& prg,
                                 const sem::KernelConfig& kc,
                                 std::uint32_t tid, const SymEnv& env,
                                 const SymExecOptions& opts = {});

}  // namespace cac::sym
