// Bit-vector terms: the symbolic expressions the symbolic interpreter
// computes with.
//
// The paper's unroll_apply tactic "reduces computations to symbolic
// expressions within a Coq proof" (§IV); Coq terms play the role these
// hash-consed bit-vector DAGs play here.  Terms are immutable, created
// through smart constructors that fold constants and normalize common
// algebraic patterns, so that structurally equal values usually become
// the *same* TermRef — the workhorse of our proof obligations (two
// computations are proved equal when their normalized terms coincide).
//
// Widths are explicit (1 for booleans/predicates, 8/16/32/64 for data).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/diag.h"

namespace cac::sym {

/// Index of a term within its arena.  Refs are only meaningful
/// together with the arena that created them.
using TermRef = std::uint32_t;

enum class Op : std::uint8_t {
  Const,  // value
  Var,    // named symbolic input
  // arithmetic/bitwise (two operands, same width)
  Add, Sub, Mul, MulHi, MulHiS, Div, DivS, Rem, RemS,
  MinU, MinS, MaxU, MaxS,
  And, Or, Xor, Shl, LShr, AShr,
  // unary
  Not, Neg, Popc, Clz, Brev,
  // width changes (one operand; node width is the target width)
  ZExt, SExt, Trunc,
  // comparisons (two operands; result width 1)
  Eq, LtU, LtS,
  // if-then-else: args = cond(width 1), then, else
  Ite,
};

struct TermNode {
  Op op = Op::Const;
  std::uint8_t width = 32;
  std::uint64_t value = 0;       // Const: the value; Var: name index
  TermRef a = 0, b = 0, c = 0;   // operands (meaning depends on op)

  friend bool operator==(const TermNode&, const TermNode&) = default;
};

/// Linear normal form `base + offset` used for address disambiguation:
/// either a pure constant (base == nullopt) or one symbolic base plus a
/// constant offset.
struct LinearForm {
  std::optional<TermRef> base;
  std::uint64_t offset = 0;  // modulo 2^width
};

class TermArena {
 public:
  TermArena();

  // --- leaf constructors ---
  TermRef konst(std::uint64_t v, unsigned width);
  TermRef var(const std::string& name, unsigned width);
  TermRef tru() { return konst(1, 1); }
  TermRef fls() { return konst(0, 1); }

  // --- smart constructors (fold + normalize) ---
  TermRef add(TermRef a, TermRef b);
  TermRef sub(TermRef a, TermRef b);
  TermRef mul(TermRef a, TermRef b);
  TermRef mul_hi(TermRef a, TermRef b, bool sgn);
  TermRef div(TermRef a, TermRef b, bool sgn);
  TermRef rem(TermRef a, TermRef b, bool sgn);
  TermRef min(TermRef a, TermRef b, bool sgn);
  TermRef max(TermRef a, TermRef b, bool sgn);
  TermRef band(TermRef a, TermRef b);
  TermRef bor(TermRef a, TermRef b);
  TermRef bxor(TermRef a, TermRef b);
  TermRef shl(TermRef a, TermRef b);
  TermRef lshr(TermRef a, TermRef b);
  TermRef ashr(TermRef a, TermRef b);
  TermRef bnot(TermRef a);
  TermRef neg(TermRef a);
  TermRef popc(TermRef a);
  TermRef clz(TermRef a);
  TermRef brev(TermRef a);
  TermRef zext(TermRef a, unsigned width);
  TermRef sext(TermRef a, unsigned width);
  TermRef trunc(TermRef a, unsigned width);
  /// Zero/sign-extend or truncate to reach `width`.
  TermRef resize(TermRef a, unsigned width, bool sgn);

  TermRef eq(TermRef a, TermRef b);
  TermRef ne(TermRef a, TermRef b);
  TermRef lt(TermRef a, TermRef b, bool sgn);
  TermRef le(TermRef a, TermRef b, bool sgn);
  TermRef gt(TermRef a, TermRef b, bool sgn);
  TermRef ge(TermRef a, TermRef b, bool sgn);
  TermRef lnot(TermRef a);  // width-1 negation
  TermRef ite(TermRef cond, TermRef t, TermRef e);

  // --- inspection ---
  [[nodiscard]] const TermNode& node(TermRef t) const { return nodes_[t]; }
  [[nodiscard]] unsigned width(TermRef t) const { return nodes_[t].width; }
  [[nodiscard]] bool is_const(TermRef t) const {
    return nodes_[t].op == Op::Const;
  }
  [[nodiscard]] std::optional<std::uint64_t> const_value(TermRef t) const;
  [[nodiscard]] const std::string& var_name(TermRef t) const;
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Decompose into `base + offset` if the term has that shape.
  [[nodiscard]] LinearForm linear_form(TermRef t) const;

  /// Syntactic equality/disequality decision:
  ///   Yes      — the terms denote the same value for every valuation
  ///   No       — they differ for every valuation
  ///   Unknown  — cannot tell syntactically
  enum class Decision : std::uint8_t { Yes, No, Unknown };
  [[nodiscard]] Decision decide_eq(TermRef a, TermRef b) const;

  /// Pretty-print (for diagnostics and tests).
  [[nodiscard]] std::string to_string(TermRef t) const;

  /// Evaluate under a concrete assignment of every variable (by name).
  /// Throws KernelError on an unassigned variable.  Used by property
  /// tests to validate the simplifier against the concrete semantics.
  [[nodiscard]] std::uint64_t evaluate(
      TermRef t,
      const std::unordered_map<std::string, std::uint64_t>& env) const;

 private:
  TermRef intern(TermNode n);
  TermRef binop(Op op, TermRef a, TermRef b);

  std::vector<TermNode> nodes_;
  std::unordered_map<std::uint64_t, std::vector<TermRef>> index_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, std::uint32_t> var_ids_;
};

}  // namespace cac::sym
