#include "sym/exec.h"

#include <algorithm>
#include <deque>

namespace cac::sym {

using namespace cac::ptx;

SymEnv SymEnv::symbolic(TermArena& arena, const ptx::Program& prg) {
  SymEnv env;
  env.arena = &arena;
  for (const ParamSlot& p : prg.params()) {
    env.params[p.name] = arena.var(p.name, p.type.width);
    if (p.type.width == 64) env.pointer_params.insert(p.name);
  }
  return env;
}

void SymEnv::bind(const ptx::Program& prg, const std::string& name,
                  std::uint64_t value) {
  const ParamSlot& slot = prg.param(name);
  params[name] = arena->konst(value, slot.type.width);
  pointer_params.erase(name);
}

namespace {

struct PathState {
  std::uint32_t pc = 0;
  TermRef cond;  // width-1
  SymRegs regs;
  SymMemory mem;
  std::uint64_t steps = 0;
};

class ThreadExec {
 public:
  ThreadExec(const Program& prg, const sem::KernelConfig& kc,
             std::uint32_t tid, const SymEnv& env,
             const SymExecOptions& opts)
      : prg_(prg), kc_(kc), tid_(tid), env_(env), opts_(opts),
        arena_(*env.arena) {}

  ThreadSummary run() {
    ThreadSummary summary;
    summary.tid = tid_;
    std::deque<PathState> work;
    work.push_back(PathState{0, arena_.tru(), {}, SymMemory(&arena_), 0});

    while (!work.empty()) {
      PathState st = std::move(work.front());
      work.pop_front();
      std::string failure;
      bool exited = false;
      try {
        while (!exited) {
          if (st.steps >= opts_.max_steps) {
            failure = "step bound exceeded (symbolic loop?)";
            break;
          }
          const Instr& instr = prg_.fetch(st.pc);
          ++st.steps;
          StepOut out = exec(st, instr);
          if (out.kind == StepOut::Kind::Exit) {
            exited = true;
          } else if (out.kind == StepOut::Kind::Fork) {
            if (summary.paths.size() + work.size() + 2 > opts_.max_paths) {
              failure = "path bound exceeded";
              break;
            }
            // Queue the branch-taken side; continue the fall-through.
            PathState taken = st;
            taken.pc = out.fork_target;
            taken.cond = arena_.band(st.cond, out.fork_cond);
            st.pc = out.fall_pc;
            st.cond = arena_.band(st.cond, arena_.lnot(out.fork_cond));
            // Prune syntactically-infeasible sides.
            if (const auto c = arena_.const_value(taken.cond); !c || *c) {
              work.push_back(std::move(taken));
            }
            if (const auto c = arena_.const_value(st.cond); c && !*c) {
              failure = "(infeasible)";  // dead fall-through, drop silently
              break;
            }
          }
        }
      } catch (const cac::KernelError& e) {
        failure = e.what();
      }
      if (failure == "(infeasible)") continue;
      SymPath path;
      path.cond = st.cond;
      path.writes = st.mem.writes();
      path.regs = std::move(st.regs);
      path.steps = st.steps;
      path.exited = exited;
      path.failure = std::move(failure);
      summary.paths.push_back(std::move(path));
    }
    // Canonical order: by path-condition ref, so equal summaries align.
    std::sort(summary.paths.begin(), summary.paths.end(),
              [](const SymPath& a, const SymPath& b) {
                return a.cond < b.cond;
              });
    return summary;
  }

 private:
  struct StepOut {
    enum class Kind : std::uint8_t { Next, Exit, Fork };
    Kind kind = Kind::Next;
    TermRef fork_cond = 0;
    std::uint32_t fork_target = 0;
    std::uint32_t fall_pc = 0;
  };

  TermRef operand(PathState& st, const Operand& op) {
    struct V {
      ThreadExec& x;
      PathState& st;
      TermRef operator()(const Reg& r) const {
        return st.regs.read(x.arena_, r);
      }
      TermRef operator()(const Sreg& s) const {
        return x.arena_.konst(sem::sreg_aux(x.kc_, x.tid_, s), 32);
      }
      TermRef operator()(const Imm& i) const {
        return x.arena_.konst(static_cast<std::uint64_t>(i.value), 64);
      }
      TermRef operator()(const RegImm& ri) const {
        const TermRef base = st.regs.read(x.arena_, ri.reg);
        return x.arena_.add(
            x.arena_.zext(base, 64),
            x.arena_.konst(static_cast<std::uint64_t>(ri.offset), 64));
      }
    };
    return std::visit(V{*this, st}, op);
  }

  /// Operand value coerced to the instruction width (canonical
  /// zero-extended form, like the concrete kernel's truncate).
  TermRef operand_at(PathState& st, const Operand& op, unsigned w) {
    return arena_.resize(operand(st, op), w, /*sgn=*/false);
  }

  void write_reg(PathState& st, const Reg& r, TermRef v) {
    st.regs.rho[r.key()] = arena_.resize(v, r.width, false);
  }

  /// Resolve an address term to (region, concrete offset).
  std::pair<std::string, std::uint64_t> resolve(Space space, TermRef addr) {
    if (space == Space::Shared) {
      throw cac::KernelError(
          "Shared-space access outside the symbolic fragment");
    }
    const LinearForm lf = arena_.linear_form(addr);
    if (!lf.base) {
      return {"@" + ptx::to_string(space), lf.offset};
    }
    const TermNode& base = arena_.node(*lf.base);
    if (base.op == Op::Var) {
      const std::string& name = arena_.var_name(*lf.base);
      if (env_.pointer_params.count(name)) return {name, lf.offset};
    }
    throw cac::KernelError("unresolvable symbolic address: " +
                           arena_.to_string(addr));
  }

  StepOut exec(PathState& st, const Instr& instr) {
    StepOut out;
    const std::uint32_t pc = st.pc;
    ++st.pc;  // default: fall through

    if (const auto* i = std::get_if<IBop>(&instr)) {
      const unsigned w = i->type.width;
      const bool sgn = i->type.is_signed();
      const TermRef a = operand_at(st, i->a, w);
      const TermRef b = operand_at(st, i->b, w);
      TermRef v = 0;
      switch (i->op) {
        case BinOp::Add: v = arena_.add(a, b); break;
        case BinOp::Sub: v = arena_.sub(a, b); break;
        case BinOp::Mul: v = arena_.mul(a, b); break;
        case BinOp::MulHi: v = arena_.mul_hi(a, b, sgn); break;
        case BinOp::MulWide: {
          const unsigned ww = w >= 64 ? 64 : 2 * w;
          v = arena_.mul(arena_.resize(a, ww, sgn), arena_.resize(b, ww, sgn));
          break;
        }
        case BinOp::Div: v = arena_.div(a, b, sgn); break;
        case BinOp::Rem: v = arena_.rem(a, b, sgn); break;
        case BinOp::Min: v = arena_.min(a, b, sgn); break;
        case BinOp::Max: v = arena_.max(a, b, sgn); break;
        case BinOp::And: v = arena_.band(a, b); break;
        case BinOp::Or: v = arena_.bor(a, b); break;
        case BinOp::Xor: v = arena_.bxor(a, b); break;
        case BinOp::Shl: v = arena_.shl(a, b); break;
        case BinOp::Shr:
          v = sgn ? arena_.ashr(a, b) : arena_.lshr(a, b);
          break;
      }
      write_reg(st, i->dst, v);
      return out;
    }
    if (const auto* i = std::get_if<ITop>(&instr)) {
      const unsigned w = i->type.width;
      const bool sgn = i->type.is_signed();
      const TermRef a = operand_at(st, i->a, w);
      const TermRef b = operand_at(st, i->b, w);
      if (i->op == TerOp::MadLo) {
        const TermRef c = operand_at(st, i->c, w);
        write_reg(st, i->dst, arena_.add(arena_.mul(a, b), c));
      } else {  // MadWide
        const unsigned ww = w >= 64 ? 64 : 2 * w;
        const TermRef c = operand_at(st, i->c, ww);
        write_reg(st, i->dst,
                  arena_.add(arena_.mul(arena_.resize(a, ww, sgn),
                                        arena_.resize(b, ww, sgn)),
                             c));
      }
      return out;
    }
    if (const auto* i = std::get_if<IUop>(&instr)) {
      const TermRef raw = operand(st, i->a);
      const TermRef a = arena_.resize(raw, i->type.width, false);
      switch (i->op) {
        case UnOp::Not:
          write_reg(st, i->dst, arena_.bnot(a));
          break;
        case UnOp::Neg:
          write_reg(st, i->dst, arena_.neg(a));
          break;
        case UnOp::Cvt:
          write_reg(st, i->dst,
                    arena_.resize(a, i->dst.width, i->type.is_signed()));
          break;
        case UnOp::Abs: {
          const TermRef zero = arena_.konst(0, i->type.width);
          write_reg(st, i->dst,
                    arena_.ite(arena_.lt(a, zero, true), arena_.neg(a), a));
          break;
        }
        case UnOp::Popc:
          write_reg(st, i->dst, arena_.popc(a));
          break;
        case UnOp::Clz:
          write_reg(st, i->dst, arena_.clz(a));
          break;
        case UnOp::Brev:
          write_reg(st, i->dst, arena_.brev(a));
          break;
      }
      return out;
    }
    if (const auto* i = std::get_if<IMov>(&instr)) {
      write_reg(st, i->dst, arena_.resize(operand(st, i->src),
                                          i->dst.width, false));
      return out;
    }
    if (const auto* i = std::get_if<ILd>(&instr)) {
      if (i->space == Space::Param) {
        // Param loads resolve to the symbolic launch environment.
        const TermRef addr = operand(st, i->addr);
        const auto off = arena_.const_value(arena_.resize(addr, 64, false));
        if (!off) throw cac::KernelError("symbolic Param address");
        for (const ParamSlot& p : prg_.params()) {
          if (p.offset == *off) {
            auto it = env_.params.find(p.name);
            if (it == env_.params.end()) break;
            write_reg(st, i->dst,
                      arena_.resize(it->second, i->dst.width,
                                    i->type.is_signed()));
            return out;
          }
        }
        throw cac::KernelError("Param load from unbound offset " +
                               std::to_string(*off));
      }
      const TermRef addr = arena_.resize(operand(st, i->addr), 64, false);
      const auto [region, offset] = resolve(i->space, addr);
      const TermRef raw = st.mem.load(region, offset, i->type.bytes());
      write_reg(st, i->dst,
                arena_.resize(raw, i->dst.width, i->type.is_signed()));
      return out;
    }
    if (const auto* i = std::get_if<ISt>(&instr)) {
      if (i->space == Space::Const || i->space == Space::Param) {
        throw cac::KernelError("store to read-only space");
      }
      const TermRef addr = arena_.resize(operand(st, i->addr), 64, false);
      const auto [region, offset] = resolve(i->space, addr);
      const TermRef v = st.regs.read(arena_, i->src);
      st.mem.store(region, offset, i->type.bytes(),
                   arena_.resize(v, 8 * i->type.bytes(), false));
      return out;
    }
    if (const auto* i = std::get_if<IBra>(&instr)) {
      st.pc = i->target;
      return out;
    }
    if (const auto* i = std::get_if<ISetp>(&instr)) {
      const unsigned w = i->type.width;
      const bool sgn = i->type.is_signed();
      const TermRef a = operand_at(st, i->a, w);
      const TermRef b = operand_at(st, i->b, w);
      TermRef p = 0;
      switch (i->cmp) {
        case CmpOp::Eq: p = arena_.eq(a, b); break;
        case CmpOp::Ne: p = arena_.ne(a, b); break;
        case CmpOp::Lt: p = arena_.lt(a, b, sgn); break;
        case CmpOp::Le: p = arena_.le(a, b, sgn); break;
        case CmpOp::Gt: p = arena_.gt(a, b, sgn); break;
        case CmpOp::Ge: p = arena_.ge(a, b, sgn); break;
      }
      st.regs.phi[i->dst.index] = p;
      return out;
    }
    if (const auto* i = std::get_if<IPBra>(&instr)) {
      TermRef p = st.regs.read_pred(arena_, i->pred);
      if (i->negated) p = arena_.lnot(p);
      if (const auto c = arena_.const_value(p)) {
        if (*c) st.pc = i->target;
        return out;
      }
      out.kind = StepOut::Kind::Fork;
      out.fork_cond = p;
      out.fork_target = i->target;
      out.fall_pc = pc + 1;
      return out;
    }
    if (const auto* i = std::get_if<ISelp>(&instr)) {
      const unsigned w = i->type.width;
      const TermRef a = operand_at(st, i->a, w);
      const TermRef b = operand_at(st, i->b, w);
      const TermRef p = st.regs.read_pred(arena_, i->pred);
      write_reg(st, i->dst, arena_.ite(p, a, b));
      return out;
    }
    if (std::holds_alternative<ISync>(instr) ||
        std::holds_alternative<INop>(instr)) {
      // Thread-level view: reconvergence points and nops are identity.
      return out;
    }
    if (std::holds_alternative<IExit>(instr)) {
      out.kind = StepOut::Kind::Exit;
      return out;
    }
    if (std::holds_alternative<IBar>(instr)) {
      throw cac::KernelError(
          "barrier outside the symbolic fragment (use the model checker)");
    }
    if (std::holds_alternative<IAtom>(instr)) {
      throw cac::KernelError(
          "atomic outside the symbolic fragment (use the model checker)");
    }
    if (std::holds_alternative<IVote>(instr) ||
        std::holds_alternative<IShfl>(instr)) {
      throw cac::KernelError(
          "warp primitive outside the per-thread fragment (use the "
          "block-level engine)");
    }
    throw cac::KernelError("unhandled instruction in symbolic execution");
  }

  const Program& prg_;
  const sem::KernelConfig& kc_;
  std::uint32_t tid_;
  const SymEnv& env_;
  const SymExecOptions& opts_;
  TermArena& arena_;
};

}  // namespace

bool ThreadSummary::all_ok() const {
  return std::all_of(paths.begin(), paths.end(),
                     [](const SymPath& p) { return p.ok() && p.exited; });
}

ThreadSummary sym_execute_thread(const ptx::Program& prg,
                                 const sem::KernelConfig& kc,
                                 std::uint32_t tid, const SymEnv& env,
                                 const SymExecOptions& opts) {
  return ThreadExec(prg, kc, tid, env, opts).run();
}

}  // namespace cac::sym
