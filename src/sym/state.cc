#include "sym/state.h"

namespace cac::sym {

void SymMemory::check_overlap(const std::string& region, std::uint64_t offset,
                              unsigned bytes) const {
  // Exact-cell matches are handled by the caller; any *partial* overlap
  // with an existing cell is outside the supported fragment.
  auto it = cells_.lower_bound({region, offset > 8 ? offset - 8 : 0});
  for (; it != cells_.end(); ++it) {
    const auto& [key, cell] = *it;
    if (key.first != region || key.second >= offset + bytes) break;
    if (key.second == offset && cell.bytes == bytes) continue;
    if (key.second + cell.bytes > offset && key.second < offset + bytes) {
      throw KernelError("mixed-granularity access to " + region + "[" +
                        std::to_string(offset) + "]");
    }
  }
}

TermRef SymMemory::load(const std::string& region, std::uint64_t offset,
                        unsigned bytes) {
  auto it = cells_.find({region, offset});
  if (it != cells_.end() && it->second.bytes == bytes) {
    return it->second.value;
  }
  check_overlap(region, offset, bytes);
  if (it != cells_.end()) {
    throw KernelError("mixed-granularity access to " + region + "[" +
                      std::to_string(offset) + "]");
  }
  const TermRef v = arena_->var(
      region + "[" + std::to_string(offset) + "]", 8 * bytes);
  cells_.emplace(std::make_pair(region, offset), Cell{bytes, v, false});
  return v;
}

void SymMemory::store(const std::string& region, std::uint64_t offset,
                      unsigned bytes, TermRef value) {
  auto it = cells_.find({region, offset});
  if (it != cells_.end() && it->second.bytes != bytes) {
    throw KernelError("mixed-granularity access to " + region + "[" +
                      std::to_string(offset) + "]");
  }
  check_overlap(region, offset, bytes);
  const TermRef v = arena_->trunc(value, 8 * bytes);
  cells_.insert_or_assign(std::make_pair(region, offset),
                          Cell{bytes, v, true});
}

std::vector<SymWrite> SymMemory::writes() const {
  std::vector<SymWrite> out;
  for (const auto& [key, cell] : cells_) {
    if (cell.written) {
      out.push_back({key.first, key.second, cell.bytes, cell.value});
    }
  }
  return out;
}

TermRef SymRegs::read(TermArena& arena, const ptx::Reg& r) const {
  auto it = rho.find(r.key());
  if (it != rho.end()) return it->second;
  return arena.konst(0, r.width);
}

TermRef SymRegs::read_pred(TermArena& arena, const ptx::Pred& p) const {
  auto it = phi.find(p.index);
  if (it != phi.end()) return it->second;
  return arena.fls();
}

}  // namespace cac::sym
