#include "sym/term.h"

#include "support/bits.h"
#include "support/hash.h"

namespace cac::sym {

namespace {

std::uint64_t node_hash(const TermNode& n) {
  Hasher h;
  h.mix(static_cast<std::uint64_t>(n.op));
  h.mix(n.width);
  h.mix(n.value);
  h.mix(n.a);
  h.mix(n.b);
  h.mix(n.c);
  return h.value();
}

/// Concrete semantics of the binary operators (shared by the constant
/// folder and evaluate); mirrors sem/step.cc's ALU.
std::uint64_t fold(Op op, std::uint64_t a, std::uint64_t b, unsigned w) {
  a = truncate(a, w);
  b = truncate(b, w);
  switch (op) {
    case Op::Add: return truncate(a + b, w);
    case Op::Sub: return truncate(a - b, w);
    case Op::Mul: return truncate(a * b, w);
    case Op::MulHi: {
      const auto p = static_cast<unsigned __int128>(a) *
                     static_cast<unsigned __int128>(b);
      return truncate(static_cast<std::uint64_t>(p >> w), w);
    }
    case Op::MulHiS: {
      const auto p = static_cast<__int128>(to_signed(a, w)) *
                     static_cast<__int128>(to_signed(b, w));
      return truncate(static_cast<std::uint64_t>(p >> w), w);
    }
    case Op::Div:
      return b == 0 ? low_mask(w) : truncate(a / b, w);
    case Op::DivS: {
      if (b == 0) return low_mask(w);
      const std::int64_t sa = to_signed(a, w), sb = to_signed(b, w);
      if (sa == to_signed(1ull << (w - 1), w) && sb == -1) return a;
      return truncate(static_cast<std::uint64_t>(sa / sb), w);
    }
    case Op::Rem:
      return b == 0 ? a : truncate(a % b, w);
    case Op::RemS: {
      if (b == 0) return a;
      const std::int64_t sa = to_signed(a, w), sb = to_signed(b, w);
      if (sa == to_signed(1ull << (w - 1), w) && sb == -1) return 0;
      return truncate(static_cast<std::uint64_t>(sa % sb), w);
    }
    case Op::MinU: return a < b ? a : b;
    case Op::MinS: return to_signed(a, w) < to_signed(b, w) ? a : b;
    case Op::MaxU: return a > b ? a : b;
    case Op::MaxS: return to_signed(a, w) > to_signed(b, w) ? a : b;
    case Op::And: return a & b;
    case Op::Or: return a | b;
    case Op::Xor: return a ^ b;
    case Op::Shl: return shl(a, static_cast<unsigned>(b & 0xff), w);
    case Op::LShr: return lshr(a, static_cast<unsigned>(b & 0xff), w);
    case Op::AShr: return ashr(a, static_cast<unsigned>(b & 0xff), w);
    case Op::Eq: return a == b ? 1 : 0;
    case Op::LtU: return a < b ? 1 : 0;
    case Op::LtS: return to_signed(a, w) < to_signed(b, w) ? 1 : 0;
    default: throw KernelError("fold: not a binary op");
  }
}

bool is_commutative(Op op) {
  switch (op) {
    case Op::Add: case Op::Mul: case Op::And: case Op::Or: case Op::Xor:
    case Op::MinU: case Op::MinS: case Op::MaxU: case Op::MaxS:
    case Op::Eq: case Op::MulHi: case Op::MulHiS:
      return true;
    default:
      return false;
  }
}

}  // namespace

TermArena::TermArena() { nodes_.reserve(1024); }

TermRef TermArena::intern(TermNode n) {
  const std::uint64_t h = node_hash(n);
  auto& bucket = index_[h];
  for (TermRef r : bucket) {
    if (nodes_[r] == n) return r;
  }
  const auto r = static_cast<TermRef>(nodes_.size());
  nodes_.push_back(n);
  bucket.push_back(r);
  return r;
}

TermRef TermArena::konst(std::uint64_t v, unsigned width) {
  return intern(TermNode{Op::Const, static_cast<std::uint8_t>(width),
                         truncate(v, width), 0, 0, 0});
}

TermRef TermArena::var(const std::string& name, unsigned width) {
  auto it = var_ids_.find(name);
  std::uint32_t id;
  if (it != var_ids_.end()) {
    id = it->second;
  } else {
    id = static_cast<std::uint32_t>(var_names_.size());
    var_names_.push_back(name);
    var_ids_.emplace(name, id);
  }
  return intern(
      TermNode{Op::Var, static_cast<std::uint8_t>(width), id, 0, 0, 0});
}

std::optional<std::uint64_t> TermArena::const_value(TermRef t) const {
  const TermNode& n = nodes_[t];
  if (n.op == Op::Const) return n.value;
  return std::nullopt;
}

const std::string& TermArena::var_name(TermRef t) const {
  const TermNode& n = nodes_[t];
  if (n.op != Op::Var) throw KernelError("var_name of a non-variable term");
  return var_names_[n.value];
}

TermRef TermArena::binop(Op op, TermRef a, TermRef b) {
  const unsigned w = width(a);
  if (w != width(b)) {
    throw KernelError("width mismatch in symbolic " +
                      std::to_string(static_cast<int>(op)));
  }
  const auto ca = const_value(a);
  const auto cb = const_value(b);
  const unsigned result_w =
      (op == Op::Eq || op == Op::LtU || op == Op::LtS) ? 1 : w;
  if (ca && cb) return konst(fold(op, *ca, *cb, w), result_w);

  // Canonical operand order for commutative ops: constant to the right,
  // otherwise lower ref first.
  if (is_commutative(op)) {
    if (ca || (!cb && b < a)) std::swap(a, b);
  }
  const auto cb2 = const_value(b);

  // Algebraic identities.
  switch (op) {
    case Op::Add:
      if (cb2 && *cb2 == 0) return a;
      // (x + c1) + c2 -> x + (c1+c2); keeps linear forms one level deep.
      if (cb2) {
        const TermNode& na = nodes_[a];
        if (na.op == Op::Add) {
          if (const auto inner = const_value(na.b)) {
            return add(na.a, konst(*inner + *cb2, w));
          }
        }
      }
      break;
    case Op::Sub:
      if (cb2 && *cb2 == 0) return a;
      if (a == b) return konst(0, w);
      // x - c -> x + (-c): a single linear-sum normal form.
      if (cb2) return add(a, konst(0 - *cb2, w));
      break;
    case Op::Mul:
      if (cb2 && *cb2 == 1) return a;
      if (cb2 && *cb2 == 0) return konst(0, w);
      break;
    case Op::And:
      if (cb2 && *cb2 == 0) return konst(0, w);
      if (cb2 && *cb2 == low_mask(w)) return a;
      if (a == b) return a;
      break;
    case Op::Or:
      if (cb2 && *cb2 == 0) return a;
      if (cb2 && *cb2 == low_mask(w)) return konst(low_mask(w), w);
      if (a == b) return a;
      break;
    case Op::Xor:
      if (cb2 && *cb2 == 0) return a;
      if (a == b) return konst(0, w);
      break;
    case Op::Shl:
    case Op::LShr:
    case Op::AShr:
      if (cb2 && *cb2 == 0) return a;
      break;
    case Op::Eq: {
      if (a == b) return tru();
      const Decision d = decide_eq(a, b);
      if (d == Decision::Yes) return tru();
      if (d == Decision::No) return fls();
      break;
    }
    case Op::LtU:
    case Op::LtS:
      if (a == b) return fls();
      break;
    default:
      break;
  }
  return intern(TermNode{op, static_cast<std::uint8_t>(result_w), 0, a, b, 0});
}

TermRef TermArena::add(TermRef a, TermRef b) { return binop(Op::Add, a, b); }
TermRef TermArena::sub(TermRef a, TermRef b) { return binop(Op::Sub, a, b); }
TermRef TermArena::mul(TermRef a, TermRef b) { return binop(Op::Mul, a, b); }
TermRef TermArena::mul_hi(TermRef a, TermRef b, bool sgn) {
  return binop(sgn ? Op::MulHiS : Op::MulHi, a, b);
}
TermRef TermArena::div(TermRef a, TermRef b, bool sgn) {
  return binop(sgn ? Op::DivS : Op::Div, a, b);
}
TermRef TermArena::rem(TermRef a, TermRef b, bool sgn) {
  return binop(sgn ? Op::RemS : Op::Rem, a, b);
}
TermRef TermArena::min(TermRef a, TermRef b, bool sgn) {
  return binop(sgn ? Op::MinS : Op::MinU, a, b);
}
TermRef TermArena::max(TermRef a, TermRef b, bool sgn) {
  return binop(sgn ? Op::MaxS : Op::MaxU, a, b);
}
TermRef TermArena::band(TermRef a, TermRef b) { return binop(Op::And, a, b); }
TermRef TermArena::bor(TermRef a, TermRef b) { return binop(Op::Or, a, b); }
TermRef TermArena::bxor(TermRef a, TermRef b) { return binop(Op::Xor, a, b); }
TermRef TermArena::shl(TermRef a, TermRef b) { return binop(Op::Shl, a, b); }
TermRef TermArena::lshr(TermRef a, TermRef b) { return binop(Op::LShr, a, b); }
TermRef TermArena::ashr(TermRef a, TermRef b) { return binop(Op::AShr, a, b); }

TermRef TermArena::bnot(TermRef a) {
  if (const auto c = const_value(a)) {
    return konst(~*c, width(a));
  }
  const TermNode& n = nodes_[a];
  if (n.op == Op::Not) return n.a;  // ~~x = x
  return intern(
      TermNode{Op::Not, static_cast<std::uint8_t>(width(a)), 0, a, 0, 0});
}

TermRef TermArena::neg(TermRef a) {
  if (const auto c = const_value(a)) return konst(0 - *c, width(a));
  return intern(
      TermNode{Op::Neg, static_cast<std::uint8_t>(width(a)), 0, a, 0, 0});
}

namespace {

std::uint64_t fold_popc(std::uint64_t a) {
  return static_cast<std::uint64_t>(__builtin_popcountll(a));
}

std::uint64_t fold_clz(std::uint64_t a, unsigned w) {
  if (a == 0) return w;
  return static_cast<std::uint64_t>(__builtin_clzll(a)) - (64 - w);
}

std::uint64_t fold_brev(std::uint64_t a, unsigned w) {
  std::uint64_t r = 0;
  for (unsigned b = 0; b < w; ++b) r = (r << 1) | ((a >> b) & 1);
  return r;
}

}  // namespace

TermRef TermArena::popc(TermRef a) {
  if (const auto c = const_value(a)) return konst(fold_popc(*c), width(a));
  return intern(
      TermNode{Op::Popc, static_cast<std::uint8_t>(width(a)), 0, a, 0, 0});
}

TermRef TermArena::clz(TermRef a) {
  if (const auto c = const_value(a)) {
    return konst(fold_clz(*c, width(a)), width(a));
  }
  return intern(
      TermNode{Op::Clz, static_cast<std::uint8_t>(width(a)), 0, a, 0, 0});
}

TermRef TermArena::brev(TermRef a) {
  if (const auto c = const_value(a)) {
    return konst(fold_brev(*c, width(a)), width(a));
  }
  const TermNode& n = nodes_[a];
  if (n.op == Op::Brev) return n.a;  // brev(brev(x)) = x
  return intern(
      TermNode{Op::Brev, static_cast<std::uint8_t>(width(a)), 0, a, 0, 0});
}

TermRef TermArena::zext(TermRef a, unsigned w) {
  if (width(a) == w) return a;
  if (width(a) > w) return trunc(a, w);
  if (const auto c = const_value(a)) return konst(*c, w);
  return intern(TermNode{Op::ZExt, static_cast<std::uint8_t>(w), 0, a, 0, 0});
}

TermRef TermArena::sext(TermRef a, unsigned w) {
  if (width(a) == w) return a;
  if (width(a) > w) return trunc(a, w);
  if (const auto c = const_value(a)) {
    return konst(sign_extend(*c, width(a), w), w);
  }
  return intern(TermNode{Op::SExt, static_cast<std::uint8_t>(w), 0, a, 0, 0});
}

TermRef TermArena::trunc(TermRef a, unsigned w) {
  if (width(a) == w) return a;
  if (width(a) < w) throw KernelError("trunc widens");
  if (const auto c = const_value(a)) return konst(*c, w);
  const TermNode& n = nodes_[a];
  // trunc(zext/sext(x)) where x already has the target width -> x.
  if ((n.op == Op::ZExt || n.op == Op::SExt) && width(n.a) == w) return n.a;
  return intern(TermNode{Op::Trunc, static_cast<std::uint8_t>(w), 0, a, 0, 0});
}

TermRef TermArena::resize(TermRef a, unsigned w, bool sgn) {
  if (width(a) == w) return a;
  if (width(a) > w) return trunc(a, w);
  return sgn ? sext(a, w) : zext(a, w);
}

TermRef TermArena::eq(TermRef a, TermRef b) { return binop(Op::Eq, a, b); }
TermRef TermArena::ne(TermRef a, TermRef b) { return lnot(eq(a, b)); }
TermRef TermArena::lt(TermRef a, TermRef b, bool sgn) {
  return binop(sgn ? Op::LtS : Op::LtU, a, b);
}
TermRef TermArena::le(TermRef a, TermRef b, bool sgn) {
  return lnot(lt(b, a, sgn));
}
TermRef TermArena::gt(TermRef a, TermRef b, bool sgn) {
  return lt(b, a, sgn);
}
TermRef TermArena::ge(TermRef a, TermRef b, bool sgn) {
  return lnot(lt(a, b, sgn));
}

TermRef TermArena::lnot(TermRef a) {
  if (width(a) != 1) throw KernelError("lnot of a non-boolean term");
  return bnot(a);
}

TermRef TermArena::ite(TermRef cond, TermRef t, TermRef e) {
  if (width(cond) != 1) throw KernelError("ite condition must have width 1");
  if (width(t) != width(e)) throw KernelError("ite arm width mismatch");
  if (const auto c = const_value(cond)) return *c ? t : e;
  if (t == e) return t;
  // ite(!c, t, e) -> ite(c, e, t)
  const TermNode& nc = nodes_[cond];
  if (nc.op == Op::Not) return ite(nc.a, e, t);
  return intern(TermNode{Op::Ite, static_cast<std::uint8_t>(width(t)), 0,
                         cond, t, e});
}

LinearForm TermArena::linear_form(TermRef t) const {
  const TermNode& n = nodes_[t];
  if (n.op == Op::Const) return {std::nullopt, n.value};
  if (n.op == Op::Add) {
    const TermNode& nb = nodes_[n.b];
    if (nb.op == Op::Const) return {n.a, nb.value};
  }
  return {t, 0};
}

TermArena::Decision TermArena::decide_eq(TermRef a, TermRef b) const {
  if (a == b) return Decision::Yes;
  const auto ca = const_value(a);
  const auto cb = const_value(b);
  if (ca && cb) return *ca == *cb ? Decision::Yes : Decision::No;
  const LinearForm la = linear_form(a);
  const LinearForm lb = linear_form(b);
  if (la.base && lb.base && *la.base == *lb.base) {
    return truncate(la.offset, width(a)) == truncate(lb.offset, width(b))
               ? Decision::Yes
               : Decision::No;
  }
  if (!la.base && !lb.base) {
    return la.offset == lb.offset ? Decision::Yes : Decision::No;
  }
  return Decision::Unknown;
}

std::string TermArena::to_string(TermRef t) const {
  const TermNode& n = nodes_[t];
  auto bin = [&](const char* s) {
    return "(" + to_string(n.a) + " " + s + " " + to_string(n.b) + ")";
  };
  switch (n.op) {
    case Op::Const: return std::to_string(n.value) + ":" +
                           std::to_string(n.width);
    case Op::Var: return var_names_[n.value];
    case Op::Add: return bin("+");
    case Op::Sub: return bin("-");
    case Op::Mul: return bin("*");
    case Op::MulHi: return bin("*hi");
    case Op::MulHiS: return bin("*his");
    case Op::Div: return bin("/u");
    case Op::DivS: return bin("/s");
    case Op::Rem: return bin("%u");
    case Op::RemS: return bin("%s");
    case Op::MinU: return bin("minu");
    case Op::MinS: return bin("mins");
    case Op::MaxU: return bin("maxu");
    case Op::MaxS: return bin("maxs");
    case Op::And: return bin("&");
    case Op::Or: return bin("|");
    case Op::Xor: return bin("^");
    case Op::Shl: return bin("<<");
    case Op::LShr: return bin(">>u");
    case Op::AShr: return bin(">>s");
    case Op::Not: return "~" + to_string(n.a);
    case Op::Neg: return "-" + to_string(n.a);
    case Op::Popc: return "popc(" + to_string(n.a) + ")";
    case Op::Clz: return "clz(" + to_string(n.a) + ")";
    case Op::Brev: return "brev(" + to_string(n.a) + ")";
    case Op::ZExt: return "zext" + std::to_string(n.width) + "(" +
                          to_string(n.a) + ")";
    case Op::SExt: return "sext" + std::to_string(n.width) + "(" +
                          to_string(n.a) + ")";
    case Op::Trunc: return "trunc" + std::to_string(n.width) + "(" +
                           to_string(n.a) + ")";
    case Op::Eq: return bin("==");
    case Op::LtU: return bin("<u");
    case Op::LtS: return bin("<s");
    case Op::Ite: return "ite(" + to_string(n.a) + ", " + to_string(n.b) +
                         ", " + to_string(n.c) + ")";
  }
  return "?";
}

std::uint64_t TermArena::evaluate(
    TermRef t,
    const std::unordered_map<std::string, std::uint64_t>& env) const {
  const TermNode& n = nodes_[t];
  switch (n.op) {
    case Op::Const: return n.value;
    case Op::Var: {
      auto it = env.find(var_names_[n.value]);
      if (it == env.end()) {
        throw KernelError("unassigned symbolic variable '" +
                          var_names_[n.value] + "'");
      }
      return truncate(it->second, n.width);
    }
    case Op::Not: return truncate(~evaluate(n.a, env), n.width);
    case Op::Neg: return truncate(0 - evaluate(n.a, env), n.width);
    case Op::Popc: return fold_popc(evaluate(n.a, env));
    case Op::Clz: return fold_clz(evaluate(n.a, env), n.width);
    case Op::Brev: return fold_brev(evaluate(n.a, env), n.width);
    case Op::ZExt: return evaluate(n.a, env);
    case Op::SExt:
      return sign_extend(evaluate(n.a, env), nodes_[n.a].width, n.width);
    case Op::Trunc: return truncate(evaluate(n.a, env), n.width);
    case Op::Ite:
      return evaluate(n.a, env) ? evaluate(n.b, env) : evaluate(n.c, env);
    default:
      return fold(n.op, evaluate(n.a, env), evaluate(n.b, env),
                  nodes_[n.a].width);
  }
}

}  // namespace cac::sym
