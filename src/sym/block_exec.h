// Block-level symbolic execution: barriers and Shared memory,
// symbolically.
//
// The per-thread engine (exec.h) covers the unsynchronized fragment.
// This engine covers the *barrier-synchronized* fragment: one thread
// block whose control flow is concrete (predicates must evaluate to
// constants — tids are concrete and loop bounds/launch parameters may
// be bound concretely; the *data* stays symbolic).  It mirrors the
// Fig. 1/Fig. 3 rules directly:
//
//  * warps execute in lock-step over vectors of symbolic thread
//    states, diverging and reconverging through the same Uni/Div tree
//    discipline (concrete splits only);
//  * warps of the block run phase by phase: a warp executes until it
//    reaches Bar or Exit, then the next; when all warps sit at Bar,
//    the barrier lifts (lift-bar) and the phase counter advances;
//  * Shared cells carry a symbolic valid bit = the barrier phase that
//    committed them.  A load of a cell written in the *current* phase
//    by a *different* warp is unsynchronized — exactly what the
//    paper's valid-bit discipline flags — and fails the proof (within
//    one warp, lock-step program order makes it deterministic, so own
//    or same-warp data is fine).  The same check makes the sequential
//    warp order used here sound: if no unsynchronized read occurs,
//    warp interleaving within a phase cannot matter.
//
// The result is the block's final write set as terms over the
// symbolic inputs — e.g. the tree-reduction's
//   out[0] = ((A0+A4)+(A2+A6)) + ((A1+A5)+(A3+A7))
// proved for arbitrary A (tests/sym/block_exec_test.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptx/program.h"
#include "sem/config.h"
#include "sym/exec.h"

namespace cac::sym {

struct BlockSummary {
  bool ok = false;
  std::string failure;          // why the fragment was left, if !ok
  std::vector<SymWrite> writes; // final Global+Shared stores (terms)
  std::uint64_t steps = 0;
  std::uint64_t barriers = 0;   // lift-bar applications

  /// Writes restricted to one region, canonical order.
  [[nodiscard]] std::vector<SymWrite> writes_to(
      const std::string& region) const;
};

struct BlockExecOptions {
  std::uint64_t max_steps = 1u << 16;
};

/// Symbolically execute block `block_index` of the launch.
BlockSummary sym_execute_block(const ptx::Program& prg,
                               const sem::KernelConfig& kc,
                               std::uint32_t block_index, const SymEnv& env,
                               const BlockExecOptions& opts = {});

}  // namespace cac::sym
