// Helpers shared by the serial (explore.cc) and parallel
// (explore_parallel.cc) schedule explorers.  Internal to src/sched —
// not part of the public surface.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sched/state_store.h"
#include "sem/step.h"

namespace cac::sched::internal {

/// Is the instruction register-local (touches only its own warp's
/// state)?  Such steps commute with every other warp's steps and never
/// disable them, so {that step} is a persistent set.
bool register_local(const ptx::Instr& i);

/// Persistent-set reduction: pick one register-local choice if any;
/// failing that, one ExecWarp choice whose pc is in `independent_pcs`
/// (ExploreOptions::por_independent_pcs, sorted — accesses proven
/// disjoint from every same-space site by the static analyzer).
/// Deterministic in the state, so the reduced state graph is the same
/// no matter which engine (or thread) expands a state.
void reduce_choices(const ptx::Program& prg, const sem::Grid& g,
                    const std::vector<std::uint32_t>& independent_pcs,
                    std::vector<sem::Choice>& eligible);

/// Deduplicated accumulator for terminal states, over StateStore
/// handles.  Interning already guarantees structurally-equal states
/// share one id, so dedup here is exact integer-set membership.
class FinalsSet {
 public:
  /// Returns true when inserted; insertion order is preserved.
  bool insert(StateId id) {
    if (!seen_.insert(id.v).second) return false;
    ids_.push_back(id);
    return true;
  }

  /// Non-destructive view, insertion-ordered (checkpoint snapshots).
  [[nodiscard]] const std::vector<StateId>& ids() const { return ids_; }

  [[nodiscard]] std::vector<StateId> take() {
    seen_.clear();
    return std::move(ids_);
  }

 private:
  std::vector<StateId> ids_;
  std::unordered_set<std::uint32_t> seen_;
};

}  // namespace cac::sched::internal
