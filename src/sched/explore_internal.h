// Helpers shared by the serial (explore.cc) and parallel
// (explore_parallel.cc) schedule explorers.  Internal to src/sched —
// not part of the public surface.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sem/step.h"

namespace cac::sched::internal {

/// Is the instruction register-local (touches only its own warp's
/// state)?  Such steps commute with every other warp's steps and never
/// disable them, so {that step} is a persistent set.
bool register_local(const ptx::Instr& i);

/// Persistent-set reduction: pick one register-local choice if any.
/// Deterministic in the state, so the reduced state graph is the same
/// no matter which engine (or thread) expands a state.
void reduce_choices(const ptx::Program& prg, const sem::Grid& g,
                    std::vector<sem::Choice>& eligible);

/// Deduplicated accumulator for terminal machine states, keyed on the
/// memoized machine hash with structural equality as the tie-breaker
/// (a hash collision cannot merge distinct finals).  Replaces the old
/// O(n^2) linear scan over sem::Machine values.
class FinalsSet {
 public:
  /// Copies `m` in if no structurally equal final is present yet.
  /// Returns true when inserted; insertion order is preserved.
  bool insert(const sem::Machine& m) {
    auto& bucket = index_[m.hash()];
    for (const std::size_t i : bucket) {
      if (finals_[i] == m) return false;
    }
    bucket.push_back(finals_.size());
    finals_.push_back(m);
    return true;
  }

  [[nodiscard]] std::vector<sem::Machine> take() {
    index_.clear();
    return std::move(finals_);
  }

 private:
  std::vector<sem::Machine> finals_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_;
};

}  // namespace cac::sched::internal
