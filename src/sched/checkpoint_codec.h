// Shared pieces of the checkpoint binary codec (sched/checkpoint.cc),
// exposed so other persistence layers — the distributed explorer's
// wire frames and per-worker checkpoint files (src/dist) — encode
// schedule choices and structural exploration options byte-compatibly
// with the single-process checkpoint format instead of growing a
// second, subtly different codec.
//
// Everything here follows the support/binio.h discipline: decoders
// throw support::BinError on malformed input (out-of-range enum tags,
// implausible counts) and never return partially decoded state.
#pragma once

#include <vector>

#include "sched/explore.h"

namespace cac::support {
class BinWriter;
class BinReader;
}  // namespace cac::support

namespace cac::sched::codec {

void encode_choice(support::BinWriter& w, const sem::Choice& c);
sem::Choice decode_choice(support::BinReader& r);

void encode_choices(support::BinWriter& w,
                    const std::vector<sem::Choice>& cs);
std::vector<sem::Choice> decode_choices(support::BinReader& r);

/// The *structural* option fields only (bounds, POR, step order, stop
/// policy) — the resume-compatibility fingerprint.  Transient fields
/// (budgets, checkpoint paths, thread counts) are never serialized.
void encode_options(support::BinWriter& w, const ExploreOptions& o);
ExploreOptions decode_options(support::BinReader& r);

}  // namespace cac::sched::codec
