// Parallel schedule exploration: a work-sharing frontier engine that
// produces the *same verdicts* as the serial DFS of explore.h.
//
// Two phases (see docs/explorer.md for the full architecture):
//
//  1. Graph construction (parallel).  Workers with per-worker task
//     deques and work stealing expand each distinct reachable state
//     exactly once — copy, step, hash — into an explicit state graph.
//     The visited set is sharded by state hash; structural equality
//     within a shard means a hash collision can never fake a visit.
//     This phase carries all of the expensive per-state work (Machine
//     clones, semantics-kernel steps, hashing).
//
//  2. Verdict replay (serial, integer-only).  The serial explorer's
//     exact DFS — same choice order, same OnStack/Done coloring, same
//     cycle/stuck/fault/depth bookkeeping — is replayed over the
//     in-memory graph without touching machine states again.  Because
//     phase 1 builds the identical graph the serial DFS walks (state
//     expansion is deterministic in the state), the replay reproduces
//     the serial result byte for byte: exhaustive flag, violations and
//     their traces, finals set and order, min/max schedule lengths,
//     state/transition counts.
//
// Cycle detection therefore needs no per-path ancestor machinery in
// the parallel phase at all: back edges are found by the replay's DFS
// coloring over the completed graph, which is sound and exact.
//
// Partial-order reduction composes: the persistent-set filter is a
// deterministic function of the state, so the reduced graph is also
// thread-count independent.
//
// Caveat (documented, asserted nowhere): when a run trips max_states /
// max_depth, phase 1 may cut a different part of the graph than the
// serial DFS would; both engines still report exhaustive == false.
#pragma once

#include "sched/explore.h"

namespace cac::sched {

/// Explore with opts.num_threads workers (0 = one worker per hardware
/// thread).  explore() dispatches here automatically whenever
/// opts.num_threads > 0.  A non-null `resume` continues a Parallel
/// checkpoint: the serialized graph and frontier are rebuilt and the
/// unexpanded frontier re-queued, so the completed graph — and hence
/// the replayed verdict — is identical to an uninterrupted run's.
ExploreResult explore_parallel(const ptx::Program& prg,
                               const sem::KernelConfig& kc,
                               const sem::Machine& initial,
                               const ExploreOptions& opts = {},
                               const Checkpoint* resume = nullptr);

}  // namespace cac::sched
