// Exhaustive schedule exploration — the executable analogue of the
// paper's universal quantification over schedules.
//
// The paper's theorems ("for every scheduler, ...") are proved in Coq
// by induction; with a finite configuration the same statement is a
// finite conjunction, and this module checks it by enumerating *every*
// reachable machine state under *every* eligible choice (Fig. 3's
// nondeterminism), with memoization on full machine states (no hash
// truncation — states are compared structurally, so a hash collision
// cannot fake a visit).
//
// On top of the state graph the explorer decides:
//  * universal termination (no stuck state, no fault, no cycle),
//  * schedule independence (all terminal states identical),
//  * min/max schedule length to termination.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/state_store.h"
#include "sem/step.h"

namespace cac::sched {

struct Checkpoint;  // sched/checkpoint.h

struct ExploreOptions {
  /// Abort a path longer than this many steps (guards against
  /// exploring unboundedly growing state, e.g. a counter loop).
  std::uint64_t max_depth = 1u << 16;
  /// Abort after visiting this many distinct states.
  std::uint64_t max_states = 1u << 20;
  sem::StepOptions step_opts;
  /// Stop at the first stuck/fault/cycle instead of cataloguing all.
  bool stop_at_first_violation = true;
  /// Persistent-set partial-order reduction: when some warp's next
  /// instruction is *register-local* (no memory access, no barrier —
  /// Bop/Top/Uop/Mov/Setp/Selp/Nop/Bra/PBra/Sync), that single step
  /// commutes with every step of every other warp and cannot disable
  /// any of them, so exploring it alone is a sound persistent set.
  /// Interleavings then branch only at Ld/St/Atom/Bar boundaries —
  /// often an exponential saving (see bench_ablation_por).  Verdicts
  /// on termination, stuck states, faults and *final memory* states
  /// are preserved; intermediate-state counts differ by construction.
  bool partial_order_reduction = false;
  /// Static-analysis independence oracle for the reduction above: pcs
  /// of Ld/St/Atom instructions proven disjoint from every same-space
  /// access in the program (analysis::independent_access_pcs).  When a
  /// warp's next instruction is one of these, its step commutes with
  /// every other warp's step exactly like a register-local one, so it
  /// too is explored as a singleton persistent set.  Sorted ascending;
  /// only consulted when partial_order_reduction is on.  Structural:
  /// checkpoints persist it and resume requires an identical list.
  std::vector<std::uint32_t> por_independent_pcs;
  /// Worker threads for state expansion.  0 keeps the classic serial
  /// DFS; any positive value routes explore() through the parallel
  /// engine (explore_parallel.h) with that many workers.  Verdicts are
  /// identical to serial for runs that finish within the state/depth
  /// limits (see docs/explorer.md for the limit-case caveats).
  /// Composes with partial_order_reduction.
  std::uint32_t num_threads = 0;

  // --- resource budgets & crash safety (docs/explorer.md) ------------
  // Budgets stop a run *gracefully*: workers drain, a final checkpoint
  // is written when checkpoint_path is set, and limit_hit names the
  // budget that tripped.  None of these fields affects the verdict a
  // completed run produces, so they are not part of the checkpoint's
  // resume-compatibility fingerprint.

  /// Wall-clock deadline in milliseconds (0 = unlimited).  Trips as
  /// Limit::Deadline.
  std::uint64_t deadline_ms = 0;
  /// Resident-set-size watermark in bytes (0 = unlimited).  Trips as
  /// Limit::MemLimit — a graceful stop with a checkpoint instead of an
  /// OOM kill.  Measured via /proc (no-op where unavailable).
  std::uint64_t mem_limit_bytes = 0;
  /// When nonempty, checkpoints are written here: periodically (see
  /// checkpoint_every_states) and on any budget/signal stop.
  std::string checkpoint_path;
  /// Write a periodic checkpoint each time this many further distinct
  /// states have been visited (0 = only on stop).  Ignored unless
  /// checkpoint_path is set.
  std::uint64_t checkpoint_every_states = 0;
  /// Cooperative cancellation: when non-null and it becomes true, the
  /// run stops gracefully as Limit::Interrupted (cacval points this at
  /// its SIGINT/SIGTERM flag).
  const std::atomic<bool>* stop_flag = nullptr;
  /// Test seam for the fault-injection harness: stop gracefully (as
  /// Limit::Interrupted) once this many distinct states have been
  /// visited (0 = never) — a deterministic kill point.
  std::uint64_t stop_after_states = 0;

  // --- progress streaming (docs/serve.md) ----------------------------

  /// A point-in-time snapshot of the run handed to progress_fn.
  struct Progress {
    std::uint64_t states_visited = 0;
    std::uint64_t transitions = 0;
    /// Discovered-but-unexpanded work: DFS stack depth (serial engine).
    std::uint64_t frontier = 0;
  };
  /// When set, called from the engine's cut point every
  /// progress_every_states further distinct states (serial engine; the
  /// parallel/distributed engines report completion only).  Transient:
  /// never checkpointed, never part of resume compatibility, and must
  /// not mutate the exploration.  `cacval serve` streams these to
  /// clients as progress events.
  std::function<void(const Progress&)> progress_fn;
  /// Cadence for progress_fn (0 disables even when the hook is set).
  std::uint64_t progress_every_states = 0;

  // --- tiered state store (docs/explorer.md) -------------------------
  // Like the budgets above these are transient resource policy: they
  // decide where interned bytes live (RAM object / RAM encoding / spill
  // file), never which states exist or what verdict comes out, so they
  // are not part of the checkpoint's resume-compatibility fingerprint
  // and a resumed run may use different values.

  /// Directory for the store's spill segment file (created unlinked —
  /// a crash cannot leak disk).  Empty disables the cold tier.
  std::string store_spill_dir;
  /// Resident-byte budget for the interned store; above it, cold
  /// fragments are demoted (encoded, then spilled when a spill dir is
  /// set).  0 keeps everything hot — the pre-tiering behaviour.
  std::uint64_t store_resident_budget_bytes = 0;
  /// Bloom bits per visited-state shard (0 = default 1<<17).
  std::uint64_t store_bloom_bits = 0;
  /// Longest warp-fragment delta chain; 0 disables delta encoding.
  std::uint32_t store_delta_depth = 8;
};

/// The StoreOptions an engine derives from ExploreOptions (all engines
/// — serial, parallel, distributed workers — map the knobs the same
/// way, so tiering behaves identically whichever engine runs).
[[nodiscard]] inline StoreOptions store_options(const ExploreOptions& o) {
  StoreOptions so;
  so.spill_dir = o.store_spill_dir;
  so.resident_budget_bytes = o.store_resident_budget_bytes;
  so.bloom_bits_per_shard = o.store_bloom_bits;
  so.delta_max_depth = o.store_delta_depth;
  return so;
}

struct Violation {
  enum class Kind : std::uint8_t { Stuck, Fault, Cycle, DepthExceeded };
  Kind kind = Kind::Stuck;
  std::string message;
  /// The schedule that reaches the violating state — a replayable
  /// counterexample (see check/trace.h).
  std::vector<sem::Choice> trace;
};

struct ExploreResult {
  /// True iff every reachable state was expanded within the limits —
  /// only then do the "for all schedules" verdicts below constitute a
  /// complete finite-configuration proof.
  bool exhaustive = false;

  /// Which exploration limit tripped first when `exhaustive` is false
  /// for limit reasons (None when the run was exhaustive or cut short
  /// only by stop_at_first_violation).  MaxStates/MaxDepth are
  /// structural (they persist into checkpoints: the uninterrupted run
  /// would trip them too); Deadline/MemLimit/Interrupted are transient
  /// stop reasons a resumed run does not inherit.
  enum class Limit : std::uint8_t {
    None,
    MaxStates,
    MaxDepth,
    Deadline,
    MemLimit,
    Interrupted,
  };
  Limit limit_hit = Limit::None;

  std::uint64_t states_visited = 0;
  std::uint64_t transitions = 0;

  /// True when this run wrote at least one checkpoint (periodic or on
  /// stop) to ExploreOptions::checkpoint_path.
  bool checkpointed = false;

  /// Checkpoint writes that failed (ENOSPC/EIO).  A failed periodic
  /// write is logged and retried at the next cadence instead of
  /// aborting the run — the verdict never depends on checkpoint
  /// persistence, only resumability does.
  std::uint64_t checkpoint_write_failures = 0;

  /// Every visited state lives interned in this store; `final_ids` and
  /// any StateId derived from this exploration resolve against it.
  /// Shared so results can outlive the engine and be copied cheaply.
  std::shared_ptr<const StateStore> store;

  /// Snapshot of the store's byte/tier accounting at the end of the
  /// run (resident vs spilled bytes, evictions, delta fragments, bloom
  /// hit rate).  For distributed runs this sums the workers' stores,
  /// so it reflects where the exploration's memory actually went.
  StateStore::Stats store_stats;

  /// Distinct terminated machine states (deduplicated, DFS first-visit
  /// order).  A singleton means the computation is
  /// schedule-independent.  Materialize one with
  /// `store->materialize(id)`, or all of them with finals().
  std::vector<StateId> final_ids;

  /// Compatibility accessor: materialize every final state.  Prefer
  /// `final_ids` + `store` when only counts or one state are needed —
  /// this copies each final out in full.
  [[nodiscard]] std::vector<sem::Machine> finals() const;

  /// Shortest / longest schedule reaching termination (path lengths).
  std::uint64_t min_steps_to_termination = 0;
  std::uint64_t max_steps_to_termination = 0;

  std::vector<Violation> violations;

  [[nodiscard]] bool all_schedules_terminate() const {
    return exhaustive && violations.empty() && !final_ids.empty();
  }
  [[nodiscard]] bool schedule_independent() const {
    return exhaustive && violations.empty() && final_ids.size() == 1;
  }
};

/// Explore from `initial`, or — when `resume` is non-null — continue
/// the checkpointed run (the initial machine is then ignored; the
/// checkpoint carries the full frontier).  Resume requires matching
/// program/config fingerprints and structural options and the engine
/// that wrote the checkpoint (serial here, parallel when
/// opts.num_threads > 0); mismatches throw CheckpointError.  A resumed
/// run continues to a verdict byte-identical to an uninterrupted one.
ExploreResult explore(const ptx::Program& prg, const sem::KernelConfig& kc,
                      const sem::Machine& initial,
                      const ExploreOptions& opts = {},
                      const Checkpoint* resume = nullptr);

std::string to_string(Violation::Kind k);
std::string to_string(ExploreResult::Limit l);

}  // namespace cac::sched
