#include "sched/state_store.h"

#include <utility>

#include "support/binio.h"
#include "support/diag.h"

namespace cac::sched {

namespace {

constexpr std::uint32_t kFragShardMask = 0xf;   // matches kFragShardBits
constexpr std::uint32_t kStateShardMask = 0x3f;  // matches kStateShardBits

/// Heap footprint estimate of one warp fragment: the divergence tree
/// plus each thread's register/predicate maps (std::map nodes estimated
/// at red-black-node granularity).  Used for the resident-vs-full-copy
/// accounting only — never for dedup decisions.
std::uint64_t warp_deep_bytes(const sem::Warp& w) {
  std::uint64_t n = sizeof(sem::Warp);
  if (w.divergent()) {
    return n + warp_deep_bytes(w.left()) + warp_deep_bytes(w.right());
  }
  constexpr std::uint64_t kMapNode = 48;  // ptr x3 + color + key/value
  n += w.threads().capacity() * sizeof(sem::Thread);
  for (const sem::Thread& t : w.threads()) {
    n += (t.rho.written_count() + t.phi.written_count()) * kMapNode;
  }
  return n;
}

std::uint64_t warp_hash(const sem::Warp& w) {
  Hasher h;
  w.mix_hash(h);
  return h.value();
}

}  // namespace

StateStore::Frag StateStore::WarpPool::intern(const sem::Warp& w,
                                              std::uint64_t mask) {
  const std::uint64_t h = warp_hash(w) & mask;
  const std::uint32_t shard_no = static_cast<std::uint32_t>(h) & kFragShardMask;
  const std::uint64_t deep = warp_deep_bytes(w);
  Shard& s = shards[shard_no];
  std::lock_guard<std::mutex> lock(s.mu);
  auto& bucket = s.index[h];
  for (const std::uint32_t local : bucket) {
    if (s.items[local] == w) {
      return {(local << kFragShardBits) | shard_no, deep, false};
    }
  }
  const auto local = static_cast<std::uint32_t>(s.items.size());
  s.items.push_back(w);  // deep copy: the pool owns its fragment
  bucket.push_back(local);
  return {(local << kFragShardBits) | shard_no, deep, true};
}

const sem::Warp* StateStore::WarpPool::get(std::uint32_t id) const {
  const Shard& s = shards[id & kFragShardMask];
  std::lock_guard<std::mutex> lock(s.mu);
  // The deque's elements are address-stable, but its bookkeeping is not
  // safe to traverse concurrently with a push — fetch the pointer under
  // the lock, read the immutable payload outside it.
  return &s.items[id >> kFragShardBits];
}

StateStore::Frag StateStore::BankPool::intern(const mem::Memory::BankRef& b,
                                              std::uint64_t mask) {
  const std::uint64_t h = b->hash() & mask;  // memoized, thread-safe
  const std::uint32_t shard_no = static_cast<std::uint32_t>(h) & kFragShardMask;
  const std::uint64_t deep = b->deep_bytes();
  Shard& s = shards[shard_no];
  std::lock_guard<std::mutex> lock(s.mu);
  auto& bucket = s.index[h];
  for (const std::uint32_t local : bucket) {
    const mem::Memory::BankRef& cand = s.items[local];
    if (cand == b || *cand == *b) {
      return {(local << kFragShardBits) | shard_no, deep, false};
    }
  }
  const auto local = static_cast<std::uint32_t>(s.items.size());
  s.items.push_back(b);  // shared_ptr copy — the bytes are shared
  bucket.push_back(local);
  return {(local << kFragShardBits) | shard_no, deep, true};
}

mem::Memory::BankRef StateStore::BankPool::get(std::uint32_t id) const {
  const Shard& s = shards[id & kFragShardMask];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.items[id >> kFragShardBits];
}

void StateStore::ensure_shape(const sem::Machine& m) {
  std::call_once(shape_once_, [&] {
    std::uint32_t warps = 0;
    shape_.warps_per_block.reserve(m.grid.blocks.size());
    for (const sem::Block& b : m.grid.blocks) {
      shape_.warps_per_block.push_back(
          static_cast<std::uint32_t>(b.warps.size()));
      warps += static_cast<std::uint32_t>(b.warps.size());
    }
    shape_.shared_banks =
        static_cast<std::uint32_t>(m.memory.shared_bank_refs().size());
    shape_.shared_per_block = m.memory.shared_size();
    shape_.tuple_len = warps + shape_.shared_banks + 3;
  });
}

StateStore::InternResult StateStore::intern(const sem::Machine& m,
                                            std::uint64_t max_states) {
  ensure_shape(m);

  // Intern every fragment first (pool shard locks, taken one at a
  // time), then register the id tuple under the state shard lock.
  std::vector<std::uint32_t> tuple;
  tuple.reserve(shape_.tuple_len);
  std::uint64_t fresh_bytes = 0;  // newly resident in the pools
  std::uint64_t full_bytes = sizeof(sem::Machine);  // hypothetical copy
  std::uint64_t fresh_warps = 0;
  std::uint64_t fresh_banks = 0;

  for (const sem::Block& b : m.grid.blocks) {
    for (const sem::Warp& w : b.warps) {
      const Frag f = warps_.intern(w, hash_mask_);
      tuple.push_back(f.id);
      full_bytes += f.deep_bytes;
      if (f.inserted) {
        fresh_bytes += f.deep_bytes;
        ++fresh_warps;
      }
    }
  }
  const auto intern_bank = [&](const mem::Memory::BankRef& b) {
    const Frag f = banks_.intern(b, hash_mask_);
    tuple.push_back(f.id);
    full_bytes += f.deep_bytes;
    if (f.inserted) {
      fresh_bytes += f.deep_bytes;
      ++fresh_banks;
    }
  };
  for (const mem::Memory::BankRef& b : m.memory.shared_bank_refs()) {
    intern_bank(b);
  }
  intern_bank(m.memory.bank_ref(mem::Space::Global));
  intern_bank(m.memory.bank_ref(mem::Space::Const));
  intern_bank(m.memory.bank_ref(mem::Space::Param));

  return register_tuple(m.hash(), std::move(tuple), max_states, fresh_bytes,
                        full_bytes, fresh_warps, fresh_banks);
}

StateStore::InternResult StateStore::register_tuple(
    std::uint64_t h, std::vector<std::uint32_t>&& tuple,
    std::uint64_t max_states, std::uint64_t fresh_bytes,
    std::uint64_t full_bytes, std::uint64_t fresh_warps,
    std::uint64_t fresh_banks) {
  const std::uint64_t masked = h & hash_mask_;
  const std::uint32_t shard_no =
      static_cast<std::uint32_t>(masked) & kStateShardMask;
  StateShard& s = state_shards_[shard_no];
  std::lock_guard<std::mutex> lock(s.mu);
  auto& bucket = s.index[masked];
  for (const std::uint32_t local : bucket) {
    const StateRec& rec = s.recs[local];
    // Tuple equality is the decider: fragments are interned, so equal
    // tuples <=> structurally equal machines.  The hash compare is only
    // a fast path (equal machines always hash equal).
    if (rec.hash == h && rec.tuple == tuple) {
      return {StateId{(local << kStateShardBits) | shard_no}, false};
    }
  }
  // Existence before cap, matching both explorers: a known state is
  // found even when the store is at capacity.
  if (n_states_.load(std::memory_order_relaxed) >= max_states) {
    return {StateId{}, false};
  }
  const auto local = static_cast<std::uint32_t>(s.recs.size());
  const std::uint64_t tuple_bytes =
      sizeof(StateRec) + tuple.size() * sizeof(std::uint32_t);
  s.recs.push_back(StateRec{h, std::move(tuple)});
  bucket.push_back(local);
  n_states_.fetch_add(1, std::memory_order_relaxed);
  n_warp_frags_.fetch_add(fresh_warps, std::memory_order_relaxed);
  n_bank_frags_.fetch_add(fresh_banks, std::memory_order_relaxed);
  resident_bytes_.fetch_add(fresh_bytes + tuple_bytes,
                            std::memory_order_relaxed);
  materialized_bytes_.fetch_add(full_bytes, std::memory_order_relaxed);
  return {StateId{(local << kStateShardBits) | shard_no}, true};
}

sem::Machine StateStore::materialize(StateId id) const {
  if (!id.valid()) throw KernelError("materialize: invalid StateId");
  const std::uint32_t shard_no = id.v & kStateShardMask;
  const std::uint32_t local = id.v >> kStateShardBits;
  const StateShard& s = state_shards_[shard_no];
  std::vector<std::uint32_t> tuple;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (local >= s.recs.size()) {
      throw KernelError("materialize: unknown StateId");
    }
    tuple = s.recs[local].tuple;
  }

  sem::Machine m;
  std::size_t k = 0;
  m.grid.blocks.resize(shape_.warps_per_block.size());
  for (std::size_t b = 0; b < shape_.warps_per_block.size(); ++b) {
    std::vector<sem::Warp>& warps = m.grid.blocks[b].warps;
    warps.reserve(shape_.warps_per_block[b]);
    for (std::uint32_t i = 0; i < shape_.warps_per_block[b]; ++i) {
      warps.push_back(*warps_.get(tuple[k++]));  // deep copy
    }
  }
  std::vector<mem::Memory::BankRef> shared;
  shared.reserve(shape_.shared_banks);
  for (std::uint32_t i = 0; i < shape_.shared_banks; ++i) {
    shared.push_back(banks_.get(tuple[k++]));
  }
  mem::Memory::BankRef global = banks_.get(tuple[k++]);
  mem::Memory::BankRef constant = banks_.get(tuple[k++]);
  mem::Memory::BankRef param = banks_.get(tuple[k]);
  m.memory =
      mem::Memory::from_banks(std::move(global), std::move(constant),
                              std::move(shared), std::move(param),
                              shape_.shared_per_block);
  return m;
}

std::uint64_t StateStore::machine_hash(StateId id) const {
  if (!id.valid()) throw KernelError("machine_hash: invalid StateId");
  const StateShard& s = state_shards_[id.v & kStateShardMask];
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint32_t local = id.v >> kStateShardBits;
  if (local >= s.recs.size()) {
    throw KernelError("machine_hash: unknown StateId");
  }
  return s.recs[local].hash;
}

void StateStore::encode(support::BinWriter& w) const {
  w.u64(hash_mask_);
  const bool shaped = !shape_.warps_per_block.empty() || shape_.tuple_len != 0;
  w.u8(shaped ? 1 : 0);
  if (shaped) {
    w.u64(shape_.warps_per_block.size());
    for (const std::uint32_t n : shape_.warps_per_block) w.u32(n);
    w.u32(shape_.shared_banks);
    w.u64(shape_.shared_per_block);
    w.u32(shape_.tuple_len);
  }
  for (const WarpPool::Shard& s : warps_.shards) {
    std::lock_guard<std::mutex> lock(s.mu);
    w.u64(s.items.size());
    for (const sem::Warp& warp : s.items) warp.encode(w);
  }
  for (const BankPool::Shard& s : banks_.shards) {
    std::lock_guard<std::mutex> lock(s.mu);
    w.u64(s.items.size());
    for (const mem::Memory::BankRef& b : s.items) b->encode(w);
  }
  for (const StateShard& s : state_shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    w.u64(s.recs.size());
    for (const StateRec& rec : s.recs) {
      w.u64(rec.hash);
      w.u64(rec.tuple.size());
      for (const std::uint32_t id : rec.tuple) w.u32(id);
    }
  }
  w.u64(n_states_.load(std::memory_order_relaxed));
  w.u64(n_warp_frags_.load(std::memory_order_relaxed));
  w.u64(n_bank_frags_.load(std::memory_order_relaxed));
  w.u64(resident_bytes_.load(std::memory_order_relaxed));
  w.u64(materialized_bytes_.load(std::memory_order_relaxed));
}

void StateStore::decode(support::BinReader& r) {
  if (n_states_.load(std::memory_order_relaxed) != 0) {
    throw KernelError("StateStore::decode: store not empty");
  }
  if (r.u64() != hash_mask_) {
    throw support::BinError("state store hash mask mismatch");
  }
  if (r.u8() != 0) {
    Shape shape;
    const std::uint64_t nb = r.count(sizeof(std::uint32_t));
    shape.warps_per_block.reserve(nb);
    for (std::uint64_t i = 0; i < nb; ++i) {
      shape.warps_per_block.push_back(r.u32());
    }
    shape.shared_banks = r.u32();
    shape.shared_per_block = r.u64();
    shape.tuple_len = r.u32();
    // Through call_once so a later ensure_shape() is a no-op.
    std::call_once(shape_once_, [&] { shape_ = std::move(shape); });
  }
  // Fragments and states are appended in the serialized (= original
  // insertion) order, so every (shard, local) pair — and therefore
  // every id — comes out exactly as it was.  Index buckets are rebuilt
  // from recomputed hashes.
  for (WarpPool::Shard& s : warps_.shards) {
    const std::uint64_t n = r.count();
    for (std::uint64_t i = 0; i < n; ++i) {
      sem::Warp warp = sem::Warp::decode(r);
      const std::uint64_t h = warp_hash(warp) & hash_mask_;
      s.index[h].push_back(static_cast<std::uint32_t>(s.items.size()));
      s.items.push_back(std::move(warp));
    }
  }
  for (BankPool::Shard& s : banks_.shards) {
    const std::uint64_t n = r.count();
    for (std::uint64_t i = 0; i < n; ++i) {
      auto bank =
          std::make_shared<mem::Memory::Bank>(mem::Memory::Bank::decode(r));
      const std::uint64_t h = bank->hash() & hash_mask_;
      s.index[h].push_back(static_cast<std::uint32_t>(s.items.size()));
      s.items.push_back(std::move(bank));
    }
  }
  // Every tuple id must resolve inside its pool: the first
  // sum(warps_per_block) positions are warp fragments, the rest banks.
  // (The checksum already covers integrity; this keeps even a
  // hypothetical checksum-colliding corruption from indexing out of a
  // pool.)
  std::uint64_t n_warp_slots = 0;
  for (const std::uint32_t n : shape_.warps_per_block) n_warp_slots += n;
  const auto check_id = [&](std::uint32_t id, bool is_warp) {
    const std::uint32_t shard = id & ((1u << kFragShardBits) - 1);
    const std::uint32_t local = id >> kFragShardBits;
    const std::size_t have = is_warp ? warps_.shards[shard].items.size()
                                     : banks_.shards[shard].items.size();
    if (local >= have) {
      throw support::BinError("state tuple references unknown fragment");
    }
  };
  for (StateShard& s : state_shards_) {
    const std::uint64_t n = r.count();
    for (std::uint64_t i = 0; i < n; ++i) {
      StateRec rec;
      rec.hash = r.u64();
      const std::uint64_t tn = r.count(sizeof(std::uint32_t));
      if (tn != shape_.tuple_len) {
        throw support::BinError("state tuple length mismatch");
      }
      rec.tuple.reserve(tn);
      for (std::uint64_t j = 0; j < tn; ++j) {
        const std::uint32_t id = r.u32();
        check_id(id, j < n_warp_slots);
        rec.tuple.push_back(id);
      }
      s.index[rec.hash & hash_mask_].push_back(
          static_cast<std::uint32_t>(s.recs.size()));
      s.recs.push_back(std::move(rec));
    }
  }
  n_states_.store(r.u64(), std::memory_order_relaxed);
  n_warp_frags_.store(r.u64(), std::memory_order_relaxed);
  n_bank_frags_.store(r.u64(), std::memory_order_relaxed);
  resident_bytes_.store(r.u64(), std::memory_order_relaxed);
  materialized_bytes_.store(r.u64(), std::memory_order_relaxed);
}

void StateStore::encode_state(StateId id, support::BinWriter& w) const {
  if (!id.valid()) throw KernelError("encode_state: invalid StateId");
  const std::uint32_t shard_no = id.v & kStateShardMask;
  const std::uint32_t local = id.v >> kStateShardBits;
  const StateShard& s = state_shards_[shard_no];
  std::uint64_t hash = 0;
  std::vector<std::uint32_t> tuple;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (local >= s.recs.size()) {
      throw KernelError("encode_state: unknown StateId");
    }
    hash = s.recs[local].hash;
    tuple = s.recs[local].tuple;
  }
  w.u64(hash);
  std::size_t k = 0;
  w.u64(shape_.warps_per_block.size());
  for (const std::uint32_t n_warps : shape_.warps_per_block) {
    w.u64(n_warps);
    for (std::uint32_t i = 0; i < n_warps; ++i) {
      warps_.get(tuple[k++])->encode(w);
    }
  }
  w.u64(shape_.shared_banks);
  for (std::uint32_t i = 0; i < shape_.shared_banks; ++i) {
    banks_.get(tuple[k++])->encode(w);
  }
  banks_.get(tuple[k++])->encode(w);  // global
  banks_.get(tuple[k++])->encode(w);  // const
  banks_.get(tuple[k])->encode(w);    // param
  w.u64(shape_.shared_per_block);
}

StateStore::WireIntern StateStore::decode_state(support::BinReader& r,
                                                std::uint64_t max_states) {
  WireIntern out;
  out.hash = r.u64();

  Shape got;  // shape as described by this record, checked against ours
  std::vector<std::uint32_t> tuple;
  std::uint64_t fresh_bytes = 0;
  std::uint64_t full_bytes = sizeof(sem::Machine);
  std::uint64_t fresh_warps = 0;
  std::uint64_t fresh_banks = 0;
  std::uint32_t total_warps = 0;

  const std::uint64_t nb = r.count(sizeof(std::uint64_t));
  got.warps_per_block.reserve(nb);
  for (std::uint64_t b = 0; b < nb; ++b) {
    const std::uint64_t nw = r.count(1);
    got.warps_per_block.push_back(static_cast<std::uint32_t>(nw));
    total_warps += static_cast<std::uint32_t>(nw);
    for (std::uint64_t i = 0; i < nw; ++i) {
      const sem::Warp warp = sem::Warp::decode(r);
      const Frag f = warps_.intern(warp, hash_mask_);
      tuple.push_back(f.id);
      full_bytes += f.deep_bytes;
      if (f.inserted) {
        fresh_bytes += f.deep_bytes;
        ++fresh_warps;
      }
    }
  }
  const auto decode_bank = [&] {
    auto bank =
        std::make_shared<mem::Memory::Bank>(mem::Memory::Bank::decode(r));
    const Frag f = banks_.intern(bank, hash_mask_);
    tuple.push_back(f.id);
    full_bytes += f.deep_bytes;
    if (f.inserted) {
      fresh_bytes += f.deep_bytes;
      ++fresh_banks;
    }
  };
  const std::uint64_t ns = r.count(1);
  got.shared_banks = static_cast<std::uint32_t>(ns);
  for (std::uint64_t i = 0; i < ns; ++i) decode_bank();
  decode_bank();  // global
  decode_bank();  // const
  decode_bank();  // param
  got.shared_per_block = r.u64();
  got.tuple_len = total_warps + got.shared_banks + 3;

  // The first record fixes the store's shape; every later one must
  // agree (all peers of one distributed run explore the same launch).
  std::call_once(shape_once_, [&] { shape_ = got; });
  if (got.warps_per_block != shape_.warps_per_block ||
      got.shared_banks != shape_.shared_banks ||
      got.shared_per_block != shape_.shared_per_block ||
      got.tuple_len != shape_.tuple_len) {
    throw support::BinError("state record shape mismatch");
  }

  out.result = register_tuple(out.hash, std::move(tuple), max_states,
                              fresh_bytes, full_bytes, fresh_warps,
                              fresh_banks);
  return out;
}

StateStore::Stats StateStore::stats() const {
  Stats st;
  st.states = n_states_.load(std::memory_order_relaxed);
  st.warp_fragments = n_warp_frags_.load(std::memory_order_relaxed);
  st.bank_fragments = n_bank_frags_.load(std::memory_order_relaxed);
  st.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  st.materialized_bytes =
      materialized_bytes_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace cac::sched
