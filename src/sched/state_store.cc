#include "sched/state_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "support/binio.h"
#include "support/delta.h"
#include "support/diag.h"
#include "support/fault.h"

namespace cac::sched {

namespace {

constexpr std::uint32_t kFragShardMask = 0xf;   // matches kFragShardBits
constexpr std::uint32_t kStateShardMask = 0x3f;  // matches kStateShardBits

// Belt against a (checksum-colliding) corrupt base graph: resolve never
// follows more links than any writer could have produced.
constexpr std::uint32_t kChainWalkCap = 512;

// A delta payload must undercut the full encoding by this margin to be
// worth the chain hop it costs on every rematerialization.
constexpr std::size_t kDeltaSlack = 16;

/// Heap footprint estimate of one warp fragment: the divergence tree
/// plus each thread's register/predicate maps (std::map nodes estimated
/// at red-black-node granularity).  Used for the resident-vs-full-copy
/// accounting only — never for dedup decisions.
std::uint64_t warp_deep_bytes(const sem::Warp& w) {
  std::uint64_t n = sizeof(sem::Warp);
  if (w.divergent()) {
    return n + warp_deep_bytes(w.left()) + warp_deep_bytes(w.right());
  }
  constexpr std::uint64_t kMapNode = 48;  // ptr x3 + color + key/value
  n += w.threads().capacity() * sizeof(sem::Thread);
  for (const sem::Thread& t : w.threads()) {
    n += (t.rho.written_count() + t.phi.written_count()) * kMapNode;
  }
  return n;
}

std::uint64_t warp_hash(const sem::Warp& w) {
  Hasher h;
  w.mix_hash(h);
  return h.value();
}

std::string encode_warp(const sem::Warp& w) {
  support::BinWriter bw;
  w.encode(bw);
  return bw.take();
}

std::string encode_bank(const mem::Memory::Bank& b) {
  support::BinWriter bw;
  b.encode(bw);
  return bw.take();
}

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t round_pow2(std::uint64_t v) {
  std::uint64_t p = 64;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// --- spill segment ----------------------------------------------------

StateStore::SpillFile::~SpillFile() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
  if (fd_ >= 0) ::close(fd_);
}

void StateStore::SpillFile::open(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return;
  static std::atomic<unsigned> instance{0};
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::string path = dir + "/cac-spill-" +
                             std::to_string(::getpid()) + "-" +
                             std::to_string(instance.fetch_add(1)) + ".seg";
    if (int err = support::fault_check("open", path)) {
      throw KernelError("cannot create spill segment in '" + dir +
                        "': " + std::strerror(err));
    }
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0600);
    if (fd < 0) {
      if (errno == EEXIST) continue;  // stale leftover name; pick another
      throw KernelError("cannot create spill segment in '" + dir + "'");
    }
    // Unlinked while open: the fd is the only reference, so a crash (or
    // SIGKILL) can never leak disk.
    ::unlink(path.c_str());
    fd_ = fd;
    path_ = path;
    return;
  }
  throw KernelError("cannot create spill segment in '" + dir + "'");
}

std::uint64_t StateStore::SpillFile::append(std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) throw KernelError("spill segment not open");
  if (int err = support::fault_check("write", path_)) {
    throw KernelError(std::string("spill segment write failed: ") +
                      std::strerror(err));
  }
  const std::uint64_t off = size_;
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  std::uint64_t at = size_;
  while (left > 0) {
    const ssize_t n = ::pwrite(fd_, p, left, static_cast<off_t>(at));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw KernelError("spill segment write failed");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
    at += static_cast<std::uint64_t>(n);
  }
  size_ += bytes.size();
  return off;
}

std::string StateStore::SpillFile::read(std::uint64_t off,
                                        std::uint32_t len) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) throw KernelError("spill segment not open");
  if (off + len > size_) throw KernelError("spill segment read out of range");
  if (len == 0) return {};
  if (map_len_ < off + len) {
    // Remap to cover everything written so far (the file only grows).
    if (map_ != nullptr) {
      ::munmap(map_, map_len_);
      map_ = nullptr;
      map_len_ = 0;
    }
    void* m = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd_, 0);
    if (m == MAP_FAILED) throw KernelError("spill segment mmap failed");
    map_ = static_cast<char*>(m);
    map_len_ = size_;
  }
  return std::string(map_ + off, len);
}

// --- construction / configuration ------------------------------------

StateStore::~StateStore() = default;

void StateStore::configure(const StoreOptions& opts) {
  delta_max_depth_.store(std::min<std::uint32_t>(opts.delta_max_depth, 255),
                         std::memory_order_relaxed);
  resident_budget_.store(opts.resident_budget_bytes,
                         std::memory_order_relaxed);
  const std::uint64_t bits = round_pow2(
      opts.bloom_bits_per_shard != 0 ? opts.bloom_bits_per_shard : 1u << 17);
  const bool resize = bits != bloom_bits_.load(std::memory_order_relaxed);
  bloom_bits_.store(bits, std::memory_order_relaxed);
  if (!opts.spill_dir.empty()) {
    const bool was_ready = spill_.ready();
    spill_dir_ = opts.spill_dir;
    bool opened = false;
    try {
      spill_.open(spill_dir_);
      opened = true;
    } catch (const KernelError& e) {
      // No cold tier, but no reason to abort the run either: eviction
      // simply stops at the warm tier (same as spill_dir unset).
      degrade_spill(e.what());
    }
    if (opened && !was_ready) {
      // Records that settled without a cold tier can now demote one
      // level further — revive them all for the sweep.
      for (WarpShard& s : warp_shards_) {
        std::lock_guard<std::mutex> lock(s.mu);
        for (WarpRec& rec : s.recs) rec.settled = 0;
        s.live = static_cast<std::uint32_t>(s.recs.size());
      }
      for (BankShard& s : bank_shards_) {
        std::lock_guard<std::mutex> lock(s.mu);
        for (BankRec& rec : s.recs) rec.settled = 0;
        s.live = static_cast<std::uint32_t>(s.recs.size());
      }
    }
  }
  if (resize) {
    // Existing filters were sized for the old bit count; drop them so
    // the next insert re-allocates at the new size, pre-seeded from the
    // stored hashes.
    for (StateShard& s : state_shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.bloom.reset();
    }
  }
}

// --- shape ------------------------------------------------------------

void StateStore::ensure_shape(const sem::Machine& m) {
  std::call_once(shape_once_, [&] {
    std::uint32_t warps = 0;
    shape_.warps_per_block.reserve(m.grid.blocks.size());
    for (const sem::Block& b : m.grid.blocks) {
      shape_.warps_per_block.push_back(
          static_cast<std::uint32_t>(b.warps.size()));
      warps += static_cast<std::uint32_t>(b.warps.size());
    }
    shape_.shared_banks =
        static_cast<std::uint32_t>(m.memory.shared_bank_refs().size());
    shape_.shared_per_block = m.memory.shared_size();
    shape_.tuple_len = warps + shape_.shared_banks + 3;
  });
}

// --- warp fragment pool -----------------------------------------------

std::string StateStore::warp_canonical_bytes(std::uint32_t id,
                                             std::uint8_t* depth_out) const {
  std::vector<std::string> deltas;  // target-first along the chain
  std::string bytes;
  std::uint32_t cur = id;
  for (std::uint32_t hops = 0;; ++hops) {
    if (hops > kChainWalkCap) {
      throw KernelError("warp fragment delta chain too long");
    }
    WarpShard& s = warp_shards_[cur & kFragShardMask];
    std::shared_ptr<const sem::Warp> hot;
    std::shared_ptr<const std::string> warm;
    std::uint64_t cold_off = 0;
    std::uint32_t cold_len = 0;
    std::uint32_t base = kNoBase;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      const std::uint32_t local = cur >> kFragShardBits;
      if (local >= s.recs.size()) {
        throw KernelError("unknown warp fragment");
      }
      WarpRec& rec = s.recs[local];
      touch_locked(s, rec);
      if (hops == 0 && depth_out != nullptr) *depth_out = rec.depth;
      hot = rec.hot;
      warm = rec.warm;
      cold_off = rec.cold_off;
      cold_len = rec.cold_len;
      base = rec.base;
    }
    // Payload production happens outside the shard lock: the warm
    // string is immutable and kept alive by the shared_ptr, the spill
    // file has its own mutex, and encoding a hot warp is pure-local.
    std::string payload;
    if (hot) {
      bytes = encode_warp(*hot);  // canonical full form; chain ends here
      break;
    }
    if (warm) {
      payload = *warm;
    } else if (cold_len > 0) {
      payload = spill_.read(cold_off, cold_len);
    } else {
      throw KernelError("warp fragment has no payload");
    }
    if (base == kNoBase) {
      bytes = std::move(payload);
      break;
    }
    deltas.push_back(std::move(payload));
    cur = base;
  }
  for (auto it = deltas.rbegin(); it != deltas.rend(); ++it) {
    bytes = support::delta::apply(bytes, *it);
  }
  return bytes;
}

sem::Warp StateStore::warp_value(std::uint32_t id) const {
  WarpShard& s = warp_shards_[id & kFragShardMask];
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const std::uint32_t local = id >> kFragShardBits;
    if (local >= s.recs.size()) throw KernelError("unknown warp fragment");
    WarpRec& rec = s.recs[local];
    touch_locked(s, rec);
    if (rec.hot) return *rec.hot;  // deep copy out of the hot tier
  }
  const std::string bytes = warp_canonical_bytes(id);
  remats_.fetch_add(1, std::memory_order_relaxed);
  support::BinReader r(bytes);
  return sem::Warp::decode(r);
}

StateStore::Frag StateStore::intern_warp(const sem::Warp& w,
                                         std::uint32_t base_id) {
  const std::uint64_t h = warp_hash(w);
  const std::uint64_t masked = h & hash_mask_;
  const std::uint32_t shard_no =
      static_cast<std::uint32_t>(masked) & kFragShardMask;
  const std::uint64_t deep = warp_deep_bytes(w);
  WarpShard& s = warp_shards_[shard_no];

  const auto insert_locked = [&](std::shared_ptr<const std::string> payload,
                                 std::uint32_t base,
                                 std::uint8_t depth) -> std::uint32_t {
    const auto local = static_cast<std::uint32_t>(s.recs.size());
    WarpRec rec;
    rec.hot = std::make_shared<sem::Warp>(w);  // deep copy; the pool owns it
    rec.hash = h;
    rec.hot_bytes = deep;
    rec.warm = std::move(payload);
    rec.base = base;
    rec.depth = depth;
    rec.ref = 1;
    std::uint64_t fresh = deep;
    if (rec.warm) {
      fresh += rec.warm->size();
      delta_frags_.fetch_add(1, std::memory_order_relaxed);
    }
    s.index[masked].push_back(local);
    s.recs.push_back(std::move(rec));
    ++s.live;
    n_warp_frags_.fetch_add(1, std::memory_order_relaxed);
    resident_bytes_.fetch_add(fresh, std::memory_order_relaxed);
    return (local << kFragShardBits) | shard_no;
  };

  std::vector<std::uint32_t> pending;   // non-hot candidates to byte-compare
  std::vector<std::uint32_t> compared;  // candidates already ruled out
  const bool want_delta =
      base_id != kNoBase &&
      delta_max_depth_.load(std::memory_order_relaxed) > 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.index.find(masked);
    if (it != s.index.end()) {
      for (const std::uint32_t local : it->second) {
        WarpRec& rec = s.recs[local];
        if (rec.hash != h) continue;
        if (rec.hot) {
          if (*rec.hot == w) {
            touch_locked(s, rec);
            return {(local << kFragShardBits) | shard_no, deep, false};
          }
          compared.push_back(local);
        } else {
          pending.push_back(local);
        }
      }
    }
    if (pending.empty() && !want_delta) {
      // Common path: no encoding, no second lock — insert hot-only (the
      // full encoding is produced lazily if eviction ever demotes it).
      return {insert_locked(nullptr, kNoBase, 0), deep, true};
    }
  }

  // Slow path: the canonical encoding is needed, either to byte-compare
  // against non-hot candidates or to build the delta payload.  All of
  // that happens with no shard lock held (resolving a base or candidate
  // takes other locks one at a time), then an optimistic relock/rescan
  // loop closes the race with concurrent inserters.
  const std::string mine = encode_warp(w);
  std::shared_ptr<const std::string> payload;
  std::uint32_t base = kNoBase;
  std::uint8_t depth = 0;
  if (want_delta) {
    std::uint8_t base_depth = 0;
    const std::string base_bytes = warp_canonical_bytes(base_id, &base_depth);
    if (base_depth + 1u <= delta_max_depth_.load(std::memory_order_relaxed)) {
      std::string d = support::delta::make(base_bytes, mine);
      if (d.size() + kDeltaSlack < mine.size()) {
        payload = std::make_shared<const std::string>(std::move(d));
        base = base_id;
        depth = static_cast<std::uint8_t>(base_depth + 1);
      }
    }
  }

  while (true) {
    for (const std::uint32_t local : pending) {
      const std::uint32_t cand_id = (local << kFragShardBits) | shard_no;
      // Warp::encode is deterministic and injective, so byte equality
      // of canonical encodings is structural equality — dedup against a
      // demoted fragment without rematerializing it.
      if (warp_canonical_bytes(cand_id) == mine) {
        std::lock_guard<std::mutex> lock(s.mu);
        touch_locked(s, s.recs[local]);
        return {cand_id, deep, false};
      }
      compared.push_back(local);
    }
    pending.clear();
    {
      std::lock_guard<std::mutex> lock(s.mu);
      const auto it = s.index.find(masked);
      if (it != s.index.end()) {
        for (const std::uint32_t local : it->second) {
          WarpRec& rec = s.recs[local];
          if (rec.hash != h) continue;
          if (std::find(compared.begin(), compared.end(), local) !=
              compared.end()) {
            continue;
          }
          if (rec.hot) {
            if (*rec.hot == w) {
              touch_locked(s, rec);
              return {(local << kFragShardBits) | shard_no, deep, false};
            }
            compared.push_back(local);
          } else {
            pending.push_back(local);
          }
        }
      }
      if (pending.empty()) {
        return {insert_locked(std::move(payload), base, depth), deep, true};
      }
    }
  }
}

// --- bank fragment pool -----------------------------------------------

std::string StateStore::bank_canonical_bytes_locked(const BankRec& rec) const {
  if (rec.warm) return *rec.warm;
  if (rec.cold_len > 0) return spill_.read(rec.cold_off, rec.cold_len);
  if (rec.hot) return encode_bank(*rec.hot);
  throw KernelError("bank fragment has no payload");
}

mem::Memory::BankRef StateStore::bank_ref(std::uint32_t id) const {
  BankShard& s = bank_shards_[id & kFragShardMask];
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint32_t local = id >> kFragShardBits;
  if (local >= s.recs.size()) throw KernelError("unknown bank fragment");
  BankRec& rec = s.recs[local];
  touch_locked(s, rec);
  if (rec.hot) return rec.hot;
  // Rematerialize and re-promote: banks are shared by refcount into
  // live machines, so handing out one shared object (instead of a fresh
  // copy per materialize) is what keeps copy-on-write cheap.
  const std::string bytes = bank_canonical_bytes_locked(rec);
  support::BinReader r(bytes);
  auto bank = std::make_shared<mem::Memory::Bank>(mem::Memory::Bank::decode(r));
  rec.hot_bytes = bank->deep_bytes();
  rec.hot = bank;
  resident_bytes_.fetch_add(rec.hot_bytes, std::memory_order_relaxed);
  remats_.fetch_add(1, std::memory_order_relaxed);
  return rec.hot;
}

StateStore::Frag StateStore::intern_bank(const mem::Memory::BankRef& b) {
  const std::uint64_t h = b->hash();  // memoized, thread-safe
  const std::uint64_t masked = h & hash_mask_;
  const std::uint32_t shard_no =
      static_cast<std::uint32_t>(masked) & kFragShardMask;
  const std::uint64_t deep = b->deep_bytes();
  BankShard& s = bank_shards_[shard_no];
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(masked);
  std::string mine;  // canonical bytes of b, encoded at most once
  if (it != s.index.end()) {
    for (const std::uint32_t local : it->second) {
      BankRec& rec = s.recs[local];
      if (rec.hash != h) continue;
      bool equal = false;
      if (rec.hot) {
        equal = rec.hot == b || *rec.hot == *b;
      } else {
        // Encoding under the shard lock is pure-local; the spill read
        // takes only the leaf spill mutex.  No second shard lock —
        // banks have no delta chains.
        if (mine.empty()) mine = encode_bank(*b);
        equal = bank_canonical_bytes_locked(rec) == mine;
      }
      if (equal) {
        touch_locked(s, rec);
        return {(local << kFragShardBits) | shard_no, deep, false};
      }
    }
  }
  const auto local = static_cast<std::uint32_t>(s.recs.size());
  BankRec rec;
  rec.hot = b;  // shared_ptr copy — the bytes are shared
  rec.hash = h;
  rec.hot_bytes = deep;
  rec.ref = 1;
  s.index[masked].push_back(local);
  s.recs.push_back(std::move(rec));
  ++s.live;
  n_bank_frags_.fetch_add(1, std::memory_order_relaxed);
  resident_bytes_.fetch_add(deep, std::memory_order_relaxed);
  return {(local << kFragShardBits) | shard_no, deep, true};
}

// --- eviction ---------------------------------------------------------

bool StateStore::step_warp(WarpShard& s, WarpRec& rec) {
  if (rec.settled) return false;
  if (rec.ref != 0) {
    // Second chance.  Clearing the bit counts as progress: on a store
    // whose records are all freshly referenced (evict_all right after
    // a burst of interns), the first pass does nothing but clear bits,
    // and reporting it as a no-op would end the sweep loop before any
    // demotion happened.
    rec.ref = 0;
    return true;
  }
  if (rec.hot) {
    if (!rec.warm && rec.cold_len == 0) {
      // Hot-only record: produce the deferred full encoding now.  This
      // is pure-local work under the shard lock (never resolves another
      // fragment), so eviction cannot deadlock against intern.
      auto full = std::make_shared<const std::string>(encode_warp(*rec.hot));
      resident_bytes_.fetch_add(full->size(), std::memory_order_relaxed);
      rec.warm = std::move(full);
    }
    rec.hot.reset();
    resident_bytes_.fetch_sub(rec.hot_bytes, std::memory_order_relaxed);
    hot_evictions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (rec.warm && rec.cold_len > 0) {
    // Warm shadow of an already-spilled payload.
    resident_bytes_.fetch_sub(rec.warm->size(), std::memory_order_relaxed);
    rec.warm.reset();
    return true;
  }
  if (rec.warm && spill_usable()) {
    try {
      rec.cold_off = spill_.append(*rec.warm);
    } catch (const KernelError& e) {
      // ENOSPC/EIO on the segment: keep the payload warm, shut the
      // cold tier off, and settle below — the verdict never depends on
      // where bytes live.
      degrade_spill(e.what());
      rec.settled = 1;
      --s.live;
      return false;
    }
    rec.cold_len = static_cast<std::uint32_t>(rec.warm->size());
    spilled_bytes_.fetch_add(rec.warm->size(), std::memory_order_relaxed);
    resident_bytes_.fetch_sub(rec.warm->size(), std::memory_order_relaxed);
    rec.warm.reset();
    spills_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Fully demoted for this configuration: settle it so future sweeps
  // skip it until something references it again.
  rec.settled = 1;
  --s.live;
  return false;
}

bool StateStore::step_bank(BankShard& s, BankRec& rec) {
  if (rec.settled) return false;
  if (rec.ref != 0) {
    rec.ref = 0;  // second chance; progress, as in step_warp
    return true;
  }
  if (rec.hot) {
    if (!rec.warm && rec.cold_len == 0) {
      auto full = std::make_shared<const std::string>(encode_bank(*rec.hot));
      resident_bytes_.fetch_add(full->size(), std::memory_order_relaxed);
      rec.warm = std::move(full);
    }
    // Dropping the ref frees the bytes only once no live machine shares
    // the bank; the accounting is the usual estimate either way.
    rec.hot.reset();
    resident_bytes_.fetch_sub(rec.hot_bytes, std::memory_order_relaxed);
    hot_evictions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (rec.warm && rec.cold_len > 0) {
    resident_bytes_.fetch_sub(rec.warm->size(), std::memory_order_relaxed);
    rec.warm.reset();
    return true;
  }
  if (rec.warm && spill_usable()) {
    try {
      rec.cold_off = spill_.append(*rec.warm);
    } catch (const KernelError& e) {
      degrade_spill(e.what());
      rec.settled = 1;
      --s.live;
      return false;
    }
    rec.cold_len = static_cast<std::uint32_t>(rec.warm->size());
    spilled_bytes_.fetch_add(rec.warm->size(), std::memory_order_relaxed);
    resident_bytes_.fetch_sub(rec.warm->size(), std::memory_order_relaxed);
    rec.warm.reset();
    spills_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  rec.settled = 1;  // as in step_warp
  --s.live;
  return false;
}

std::uint64_t StateStore::evict_pass(std::uint64_t stop_below) {
  std::uint64_t changed = 0;
  for (unsigned sh = 0; sh < (1u << kFragShardBits); ++sh) {
    if (resident_bytes_.load(std::memory_order_relaxed) <= stop_below) {
      return changed;
    }
    {
      WarpShard& ws = warp_shards_[sh];
      std::lock_guard<std::mutex> lock(ws.mu);
      const std::size_t n = ws.recs.size();
      for (std::size_t i = 0; i < n && ws.live > 0; ++i) {
        if (resident_bytes_.load(std::memory_order_relaxed) <= stop_below) {
          break;
        }
        if (ws.clock_hand >= n) ws.clock_hand = 0;
        if (step_warp(ws, ws.recs[ws.clock_hand])) ++changed;
        ++ws.clock_hand;
      }
    }
    {
      BankShard& bs = bank_shards_[sh];
      std::lock_guard<std::mutex> lock(bs.mu);
      const std::size_t n = bs.recs.size();
      for (std::size_t i = 0; i < n && bs.live > 0; ++i) {
        if (resident_bytes_.load(std::memory_order_relaxed) <= stop_below) {
          break;
        }
        if (bs.clock_hand >= n) bs.clock_hand = 0;
        if (step_bank(bs, bs.recs[bs.clock_hand])) ++changed;
        ++bs.clock_hand;
      }
    }
  }
  return changed;
}

void StateStore::maybe_evict() {
  const std::uint64_t budget = resident_budget_.load(std::memory_order_relaxed);
  if (budget == 0 ||
      resident_bytes_.load(std::memory_order_relaxed) <= budget) {
    return;
  }
  std::unique_lock<std::mutex> ev(evict_mu_, std::try_to_lock);
  if (!ev.owns_lock()) return;  // another thread is already sweeping
  // Hysteresis: demote down to 15/16 of the budget, not just under it.
  // Stopping exactly at the budget line makes the very next intern
  // trigger another sweep — per-insert sweeps over the whole shard
  // array.  The 1/16 slack batches ~that many bytes of inserts per
  // sweep instead.
  const std::uint64_t target = budget - budget / 16;
  // The first pass over a region mostly clears second-chance bits, so a
  // few passes are allowed; a pass that demotes nothing means the
  // remaining residency is the floor (tuple records plus re-referenced
  // fragments) and retrying would only spin.
  for (int pass = 0; pass < 4; ++pass) {
    if (resident_bytes_.load(std::memory_order_relaxed) <= target) return;
    if (evict_pass(target) == 0) return;
  }
}

void StateStore::evict_all() {
  std::lock_guard<std::mutex> ev(evict_mu_);
  while (evict_pass(0) != 0) {
  }
}

// --- visited-state table ----------------------------------------------

bool StateStore::bloom_maybe_locked(const StateShard& s,
                                    std::uint64_t masked) const {
  if (!s.bloom) return true;  // no filter yet — fall through to probe
  const std::uint64_t bits = bloom_bits_.load(std::memory_order_relaxed);
  const std::uint64_t x = splitmix(masked);
  const std::uint64_t p1 = x & (bits - 1);
  const std::uint64_t p2 = ((x >> 32) ^ (x << 17)) & (bits - 1);
  return ((s.bloom[p1 >> 6] >> (p1 & 63)) & 1) != 0 &&
         ((s.bloom[p2 >> 6] >> (p2 & 63)) & 1) != 0;
}

void StateStore::bloom_add_locked(StateShard& s, std::uint64_t masked) {
  const std::uint64_t bits = bloom_bits_.load(std::memory_order_relaxed);
  if (!s.bloom) {
    // Lazy allocation, pre-seeded with every hash this shard already
    // holds (a filter missing an existing state would break the
    // never-false-negative contract dedup exactness rests on).
    s.bloom = std::make_unique<std::uint64_t[]>(bits / 64);
    std::memset(s.bloom.get(), 0, bits / 8);
    for (const std::uint64_t h : s.hashes) {
      const std::uint64_t x = splitmix(h & hash_mask_);
      const std::uint64_t p1 = x & (bits - 1);
      const std::uint64_t p2 = ((x >> 32) ^ (x << 17)) & (bits - 1);
      s.bloom[p1 >> 6] |= 1ull << (p1 & 63);
      s.bloom[p2 >> 6] |= 1ull << (p2 & 63);
    }
  }
  const std::uint64_t x = splitmix(masked);
  const std::uint64_t p1 = x & (bits - 1);
  const std::uint64_t p2 = ((x >> 32) ^ (x << 17)) & (bits - 1);
  s.bloom[p1 >> 6] |= 1ull << (p1 & 63);
  s.bloom[p2 >> 6] |= 1ull << (p2 & 63);
}

std::uint32_t StateStore::probe_locked(
    const StateShard& s, std::uint64_t h,
    const std::vector<std::uint32_t>& tuple) const {
  if (s.slots.empty()) return 0;
  const std::uint64_t mask = s.slots.size() - 1;
  const std::uint32_t stride = shape_.tuple_len;
  std::uint64_t i = splitmix(h & hash_mask_) & mask;
  while (s.slots[i] != 0) {
    const std::uint32_t local = s.slots[i] - 1;
    // Tuple equality is the decider: fragments are interned, so equal
    // tuples <=> structurally equal machines.  The hash compare is only
    // a fast path (equal machines always hash equal).
    if (s.hashes[local] == h &&
        std::memcmp(
            s.tuples.data() + static_cast<std::size_t>(local) * stride,
            tuple.data(), stride * sizeof(std::uint32_t)) == 0) {
      return local + 1;
    }
    i = (i + 1) & mask;
  }
  return 0;
}

void StateStore::slot_insert_locked(StateShard& s, std::uint32_t local) {
  const auto place = [&](std::uint32_t l) {
    const std::uint64_t mask = s.slots.size() - 1;
    std::uint64_t i = splitmix(s.hashes[l] & hash_mask_) & mask;
    while (s.slots[i] != 0) i = (i + 1) & mask;
    s.slots[i] = l + 1;
  };
  // Keep the load factor under 0.7; `local` is already in `hashes`.
  if ((s.hashes.size() + 1) * 10 > s.slots.size() * 7) {
    std::size_t cap = s.slots.empty() ? 64 : s.slots.size() * 2;
    while (cap * 7 < (s.hashes.size() + 1) * 10) cap *= 2;
    s.slots.assign(cap, 0);
    for (std::uint32_t l = 0; l < s.hashes.size(); ++l) place(l);
    return;
  }
  place(local);
}

StateStore::InternResult StateStore::register_tuple(
    std::uint64_t h, std::vector<std::uint32_t>&& tuple,
    std::uint64_t max_states, std::uint64_t full_bytes) {
  if (tuple.size() != shape_.tuple_len) {
    throw KernelError("state tuple length does not match store shape");
  }
  const std::uint64_t masked = h & hash_mask_;
  const std::uint32_t shard_no =
      static_cast<std::uint32_t>(masked) & kStateShardMask;
  StateShard& s = state_shards_[shard_no];
  std::lock_guard<std::mutex> lock(s.mu);
  const bool had_filter = s.bloom != nullptr;
  std::uint32_t found = 0;
  if (bloom_maybe_locked(s, masked)) {
    found = probe_locked(s, h, tuple);
    if (found == 0 && had_filter) {
      bloom_fp_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Two word reads decided "definitely new": no probe at all, and the
    // insert below is allocation-free in the amortized case.
    bloom_neg_.fetch_add(1, std::memory_order_relaxed);
  }
  if (found != 0) {
    return {StateId{((found - 1) << kStateShardBits) | shard_no}, false};
  }
  // Existence before cap, matching both explorers: a known state is
  // found even when the store is at capacity.
  if (n_states_.load(std::memory_order_relaxed) >= max_states) {
    return {StateId{}, false};
  }
  const auto local = static_cast<std::uint32_t>(s.hashes.size());
  s.hashes.push_back(h);
  s.tuples.insert(s.tuples.end(), tuple.begin(), tuple.end());
  slot_insert_locked(s, local);
  bloom_add_locked(s, masked);
  const std::uint64_t tuple_bytes = tuple.size() * sizeof(std::uint32_t) +
                                    sizeof(std::uint64_t) +
                                    sizeof(std::uint32_t);
  n_states_.fetch_add(1, std::memory_order_relaxed);
  resident_bytes_.fetch_add(tuple_bytes, std::memory_order_relaxed);
  materialized_bytes_.fetch_add(full_bytes, std::memory_order_relaxed);
  return {StateId{(local << kStateShardBits) | shard_no}, true};
}

std::vector<std::uint32_t> StateStore::tuple_of(StateId id) const {
  if (!id.valid()) return {};
  const StateShard& s = state_shards_[id.v & kStateShardMask];
  const std::uint32_t local = id.v >> kStateShardBits;
  std::lock_guard<std::mutex> lock(s.mu);
  if (local >= s.hashes.size()) return {};
  const std::uint32_t stride = shape_.tuple_len;
  const std::uint32_t* p =
      s.tuples.data() + static_cast<std::size_t>(local) * stride;
  return std::vector<std::uint32_t>(p, p + stride);
}

// --- public API -------------------------------------------------------

StateStore::InternResult StateStore::intern(const sem::Machine& m,
                                            std::uint64_t max_states,
                                            StateId parent) {
  ensure_shape(m);

  // The parent's tuple supplies, position by position, the base
  // fragment each fresh warp delta-encodes against (one transition
  // steps one warp; the untouched ones dedup against their base
  // exactly and cost nothing).
  std::vector<std::uint32_t> parent_tuple;
  if (parent.valid() &&
      delta_max_depth_.load(std::memory_order_relaxed) > 0) {
    parent_tuple = tuple_of(parent);
  }

  // Intern every fragment first (pool shard locks, taken one at a
  // time), then register the id tuple under the state shard lock.
  std::vector<std::uint32_t> tuple;
  tuple.reserve(shape_.tuple_len);
  std::uint64_t full_bytes = sizeof(sem::Machine);  // hypothetical copy
  std::size_t warp_idx = 0;

  for (const sem::Block& b : m.grid.blocks) {
    for (const sem::Warp& w : b.warps) {
      const std::uint32_t base = warp_idx < parent_tuple.size()
                                     ? parent_tuple[warp_idx]
                                     : kNoBase;
      ++warp_idx;
      const Frag f = intern_warp(w, base);
      tuple.push_back(f.id);
      full_bytes += f.deep_bytes;
    }
  }
  const auto add_bank = [&](const mem::Memory::BankRef& b) {
    const Frag f = intern_bank(b);
    tuple.push_back(f.id);
    full_bytes += f.deep_bytes;
  };
  for (const mem::Memory::BankRef& b : m.memory.shared_bank_refs()) {
    add_bank(b);
  }
  add_bank(m.memory.bank_ref(mem::Space::Global));
  add_bank(m.memory.bank_ref(mem::Space::Const));
  add_bank(m.memory.bank_ref(mem::Space::Param));

  const InternResult res =
      register_tuple(m.hash(), std::move(tuple), max_states, full_bytes);
  maybe_evict();
  return res;
}

sem::Machine StateStore::materialize(StateId id) const {
  if (!id.valid()) throw KernelError("materialize: invalid StateId");
  const std::vector<std::uint32_t> tuple = tuple_of(id);
  if (tuple.empty()) throw KernelError("materialize: unknown StateId");

  sem::Machine m;
  std::size_t k = 0;
  m.grid.blocks.resize(shape_.warps_per_block.size());
  for (std::size_t b = 0; b < shape_.warps_per_block.size(); ++b) {
    std::vector<sem::Warp>& warps = m.grid.blocks[b].warps;
    warps.reserve(shape_.warps_per_block[b]);
    for (std::uint32_t i = 0; i < shape_.warps_per_block[b]; ++i) {
      warps.push_back(warp_value(tuple[k++]));
    }
  }
  std::vector<mem::Memory::BankRef> shared;
  shared.reserve(shape_.shared_banks);
  for (std::uint32_t i = 0; i < shape_.shared_banks; ++i) {
    shared.push_back(bank_ref(tuple[k++]));
  }
  mem::Memory::BankRef global = bank_ref(tuple[k++]);
  mem::Memory::BankRef constant = bank_ref(tuple[k++]);
  mem::Memory::BankRef param = bank_ref(tuple[k]);
  m.memory =
      mem::Memory::from_banks(std::move(global), std::move(constant),
                              std::move(shared), std::move(param),
                              shape_.shared_per_block);
  return m;
}

std::uint64_t StateStore::machine_hash(StateId id) const {
  if (!id.valid()) throw KernelError("machine_hash: invalid StateId");
  const StateShard& s = state_shards_[id.v & kStateShardMask];
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint32_t local = id.v >> kStateShardBits;
  if (local >= s.hashes.size()) {
    throw KernelError("machine_hash: unknown StateId");
  }
  return s.hashes[local];
}

StateStore::Stats StateStore::stats() const {
  Stats st;
  st.states = n_states_.load(std::memory_order_relaxed);
  st.warp_fragments = n_warp_frags_.load(std::memory_order_relaxed);
  st.bank_fragments = n_bank_frags_.load(std::memory_order_relaxed);
  st.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  st.materialized_bytes = materialized_bytes_.load(std::memory_order_relaxed);
  st.spilled_bytes = spilled_bytes_.load(std::memory_order_relaxed);
  st.hot_evictions = hot_evictions_.load(std::memory_order_relaxed);
  st.spills = spills_.load(std::memory_order_relaxed);
  st.rematerializations = remats_.load(std::memory_order_relaxed);
  st.delta_fragments = delta_frags_.load(std::memory_order_relaxed);
  st.bloom_negatives = bloom_neg_.load(std::memory_order_relaxed);
  st.bloom_false_positives = bloom_fp_.load(std::memory_order_relaxed);
  st.degraded_spill = degraded_spill_.load(std::memory_order_relaxed);
  return st;
}

void StateStore::degrade_spill(const char* why) {
  degraded_spill_.fetch_add(1, std::memory_order_relaxed);
  if (!spill_failed_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "cacval: warning: spill tier disabled, continuing "
                 "resident-only: %s\n",
                 why);
  }
}

// --- checkpoint codec (format v3) -------------------------------------

void StateStore::encode(support::BinWriter& w) const {
  w.u64(hash_mask_);
  const bool shaped = !shape_.warps_per_block.empty() || shape_.tuple_len != 0;
  w.u8(shaped ? 1 : 0);
  if (shaped) {
    w.u64(shape_.warps_per_block.size());
    for (const std::uint32_t n : shape_.warps_per_block) w.u32(n);
    w.u32(shape_.shared_banks);
    w.u64(shape_.shared_per_block);
    w.u32(shape_.tuple_len);
  }
  // Fragments are written in their *stored* form: a delta payload stays
  // a delta (base id and chain depth ride along), a cold payload is
  // read back from the spill segment.  A hot-only record encodes its
  // full form on the fly.
  for (const WarpShard& s : warp_shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    w.u64(s.recs.size());
    for (const WarpRec& rec : s.recs) {
      w.u64(rec.hash);
      w.u32(rec.base);
      w.u8(rec.depth);
      if (rec.warm) {
        w.str(*rec.warm);
      } else if (rec.cold_len > 0) {
        w.str(spill_.read(rec.cold_off, rec.cold_len));
      } else {
        w.str(encode_warp(*rec.hot));
      }
    }
  }
  for (const BankShard& s : bank_shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    w.u64(s.recs.size());
    for (const BankRec& rec : s.recs) {
      w.u64(rec.hash);
      w.str(bank_canonical_bytes_locked(rec));
    }
  }
  for (const StateShard& s : state_shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    w.u64(s.hashes.size());
    const std::uint32_t stride = shape_.tuple_len;
    for (std::size_t local = 0; local < s.hashes.size(); ++local) {
      w.u64(s.hashes[local]);
      w.u64(stride);
      const std::uint32_t* p = s.tuples.data() + local * stride;
      for (std::uint32_t j = 0; j < stride; ++j) w.u32(p[j]);
    }
  }
  w.u64(n_states_.load(std::memory_order_relaxed));
  w.u64(n_warp_frags_.load(std::memory_order_relaxed));
  w.u64(n_bank_frags_.load(std::memory_order_relaxed));
  w.u64(resident_bytes_.load(std::memory_order_relaxed));
  w.u64(materialized_bytes_.load(std::memory_order_relaxed));
}

void StateStore::decode(support::BinReader& r) {
  if (n_states_.load(std::memory_order_relaxed) != 0) {
    throw KernelError("StateStore::decode: store not empty");
  }
  if (r.u64() != hash_mask_) {
    throw support::BinError("state store hash mask mismatch");
  }
  if (r.u8() != 0) {
    Shape shape;
    const std::uint64_t nb = r.count(sizeof(std::uint32_t));
    shape.warps_per_block.reserve(nb);
    for (std::uint64_t i = 0; i < nb; ++i) {
      shape.warps_per_block.push_back(r.u32());
    }
    shape.shared_banks = r.u32();
    shape.shared_per_block = r.u64();
    shape.tuple_len = r.u32();
    // Through call_once so a later ensure_shape() is a no-op.
    std::call_once(shape_once_, [&] { shape_ = std::move(shape); });
  }
  // Fragments and states are appended in the serialized (= original
  // insertion) order, so every (shard, local) pair — and therefore
  // every id — comes out exactly as it was.  Every payload lands in the
  // warm tier (delta payloads stay deltas); the recorded hashes are
  // trusted — the checkpoint checksum already covers them — and index
  // buckets are rebuilt from them.
  std::uint64_t warm_resident = 0;
  std::uint64_t n_warps = 0;
  std::uint64_t n_banks = 0;
  std::uint64_t n_deltas = 0;
  for (WarpShard& s : warp_shards_) {
    const std::uint64_t n = r.count();
    for (std::uint64_t i = 0; i < n; ++i) {
      WarpRec rec;
      rec.hash = r.u64();
      rec.base = r.u32();
      rec.depth = r.u8();
      auto payload = std::make_shared<const std::string>(r.str());
      if (payload->empty()) {
        throw support::BinError("empty warp fragment payload");
      }
      warm_resident += payload->size();
      rec.warm = std::move(payload);
      s.index[rec.hash & hash_mask_].push_back(
          static_cast<std::uint32_t>(s.recs.size()));
      s.recs.push_back(std::move(rec));
      ++n_warps;
    }
    s.live = static_cast<std::uint32_t>(s.recs.size());
  }
  // Bases can point into later shards, so the chain graph is validated
  // once all warp fragments exist: every base resolves, and depths
  // strictly decrease along a chain (which rules out cycles).
  for (const WarpShard& s : warp_shards_) {
    for (const WarpRec& rec : s.recs) {
      if (rec.base == kNoBase) {
        if (rec.depth != 0) {
          throw support::BinError("full warp payload with nonzero depth");
        }
        continue;
      }
      const WarpShard& bs = warp_shards_[rec.base & kFragShardMask];
      const std::uint32_t blocal = rec.base >> kFragShardBits;
      if (blocal >= bs.recs.size()) {
        throw support::BinError("warp delta base references unknown fragment");
      }
      if (rec.depth != bs.recs[blocal].depth + 1) {
        throw support::BinError("warp delta chain depth inconsistent");
      }
      ++n_deltas;
    }
  }
  for (BankShard& s : bank_shards_) {
    const std::uint64_t n = r.count();
    for (std::uint64_t i = 0; i < n; ++i) {
      BankRec rec;
      rec.hash = r.u64();
      auto payload = std::make_shared<const std::string>(r.str());
      if (payload->empty()) {
        throw support::BinError("empty bank fragment payload");
      }
      warm_resident += payload->size();
      rec.warm = std::move(payload);
      s.index[rec.hash & hash_mask_].push_back(
          static_cast<std::uint32_t>(s.recs.size()));
      s.recs.push_back(std::move(rec));
      ++n_banks;
    }
    s.live = static_cast<std::uint32_t>(s.recs.size());
  }
  // Every tuple id must resolve inside its pool: the first
  // sum(warps_per_block) positions are warp fragments, the rest banks.
  // (The checksum already covers integrity; this keeps even a
  // hypothetical checksum-colliding corruption from indexing out of a
  // pool.)
  std::uint64_t n_warp_slots = 0;
  for (const std::uint32_t n : shape_.warps_per_block) n_warp_slots += n;
  const auto check_id = [&](std::uint32_t id, bool is_warp) {
    const std::uint32_t shard = id & ((1u << kFragShardBits) - 1);
    const std::uint32_t local = id >> kFragShardBits;
    const std::size_t have = is_warp ? warp_shards_[shard].recs.size()
                                     : bank_shards_[shard].recs.size();
    if (local >= have) {
      throw support::BinError("state tuple references unknown fragment");
    }
  };
  std::uint64_t states = 0;
  std::uint64_t tuple_bytes = 0;
  for (StateShard& s : state_shards_) {
    const std::uint64_t n = r.count();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t h = r.u64();
      const std::uint64_t tn = r.count(sizeof(std::uint32_t));
      if (tn != shape_.tuple_len) {
        throw support::BinError("state tuple length mismatch");
      }
      const auto local = static_cast<std::uint32_t>(s.hashes.size());
      s.hashes.push_back(h);
      for (std::uint64_t j = 0; j < tn; ++j) {
        const std::uint32_t id = r.u32();
        check_id(id, j < n_warp_slots);
        s.tuples.push_back(id);
      }
      slot_insert_locked(s, local);
      bloom_add_locked(s, h & hash_mask_);
      tuple_bytes += tn * sizeof(std::uint32_t) + sizeof(std::uint64_t) +
                     sizeof(std::uint32_t);
      ++states;
    }
  }
  r.u64();  // encoder's states counter (recounted above)
  r.u64();  // encoder's warp fragment counter
  r.u64();  // encoder's bank fragment counter
  r.u64();  // encoder's resident bytes: tiering-dependent, recomputed
  const std::uint64_t materialized = r.u64();
  n_states_.store(states, std::memory_order_relaxed);
  n_warp_frags_.store(n_warps, std::memory_order_relaxed);
  n_bank_frags_.store(n_banks, std::memory_order_relaxed);
  delta_frags_.store(n_deltas, std::memory_order_relaxed);
  resident_bytes_.store(warm_resident + tuple_bytes,
                        std::memory_order_relaxed);
  materialized_bytes_.store(materialized, std::memory_order_relaxed);
}

// --- per-state wire codec ---------------------------------------------

void StateStore::encode_state(StateId id, support::BinWriter& w) const {
  if (!id.valid()) throw KernelError("encode_state: invalid StateId");
  const std::uint64_t hash = machine_hash(id);  // also validates the id
  const std::vector<std::uint32_t> tuple = tuple_of(id);
  w.u64(hash);
  std::size_t k = 0;
  w.u64(shape_.warps_per_block.size());
  for (const std::uint32_t n_warps : shape_.warps_per_block) {
    w.u64(n_warps);
    for (std::uint32_t i = 0; i < n_warps; ++i) {
      // Canonical bytes == what Warp::encode would emit, so splicing
      // them keeps the wire format identical to pre-tiering senders,
      // independent of this store's tiering.
      const std::string b = warp_canonical_bytes(tuple[k++]);
      w.bytes(b.data(), b.size());
    }
  }
  const auto splice_bank = [&](std::uint32_t bank_id) {
    const BankShard& s = bank_shards_[bank_id & kFragShardMask];
    std::lock_guard<std::mutex> lock(s.mu);
    const std::uint32_t local = bank_id >> kFragShardBits;
    if (local >= s.recs.size()) throw KernelError("unknown bank fragment");
    const std::string b = bank_canonical_bytes_locked(s.recs[local]);
    w.bytes(b.data(), b.size());
  };
  w.u64(shape_.shared_banks);
  for (std::uint32_t i = 0; i < shape_.shared_banks; ++i) {
    splice_bank(tuple[k++]);
  }
  splice_bank(tuple[k++]);  // global
  splice_bank(tuple[k++]);  // const
  splice_bank(tuple[k]);    // param
  w.u64(shape_.shared_per_block);
}

StateStore::WireIntern StateStore::decode_state(support::BinReader& r,
                                                std::uint64_t max_states) {
  WireIntern out;
  out.hash = r.u64();

  Shape got;  // shape as described by this record, checked against ours
  std::vector<std::uint32_t> tuple;
  std::uint64_t full_bytes = sizeof(sem::Machine);
  std::uint32_t total_warps = 0;

  const std::uint64_t nb = r.count(sizeof(std::uint64_t));
  got.warps_per_block.reserve(nb);
  for (std::uint64_t b = 0; b < nb; ++b) {
    const std::uint64_t nw = r.count(1);
    got.warps_per_block.push_back(static_cast<std::uint32_t>(nw));
    total_warps += static_cast<std::uint32_t>(nw);
    for (std::uint64_t i = 0; i < nw; ++i) {
      const sem::Warp warp = sem::Warp::decode(r);
      // Mirrored states have no parent here; their fresh fragments stay
      // full-encoded (tiering still applies to them).
      const Frag f = intern_warp(warp, kNoBase);
      tuple.push_back(f.id);
      full_bytes += f.deep_bytes;
    }
  }
  const auto decode_bank = [&] {
    auto bank =
        std::make_shared<mem::Memory::Bank>(mem::Memory::Bank::decode(r));
    const Frag f = intern_bank(bank);
    tuple.push_back(f.id);
    full_bytes += f.deep_bytes;
  };
  const std::uint64_t ns = r.count(1);
  got.shared_banks = static_cast<std::uint32_t>(ns);
  for (std::uint64_t i = 0; i < ns; ++i) decode_bank();
  decode_bank();  // global
  decode_bank();  // const
  decode_bank();  // param
  got.shared_per_block = r.u64();
  got.tuple_len = total_warps + got.shared_banks + 3;

  // The first record fixes the store's shape; every later one must
  // agree (all peers of one distributed run explore the same launch).
  std::call_once(shape_once_, [&] { shape_ = got; });
  if (got.warps_per_block != shape_.warps_per_block ||
      got.shared_banks != shape_.shared_banks ||
      got.shared_per_block != shape_.shared_per_block ||
      got.tuple_len != shape_.tuple_len) {
    throw support::BinError("state record shape mismatch");
  }

  out.result =
      register_tuple(out.hash, std::move(tuple), max_states, full_bytes);
  maybe_evict();
  return out;
}

}  // namespace cac::sched
