#include "sched/explore.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "sched/checkpoint.h"
#include "sched/explore_internal.h"
#include "sched/explore_parallel.h"

namespace cac::sched {

namespace internal {

bool register_local(const ptx::Instr& i) {
  return std::holds_alternative<ptx::INop>(i) ||
         std::holds_alternative<ptx::IBop>(i) ||
         std::holds_alternative<ptx::ITop>(i) ||
         std::holds_alternative<ptx::IUop>(i) ||
         std::holds_alternative<ptx::IMov>(i) ||
         std::holds_alternative<ptx::ISetp>(i) ||
         std::holds_alternative<ptx::ISelp>(i) ||
         std::holds_alternative<ptx::IBra>(i) ||
         std::holds_alternative<ptx::IPBra>(i) ||
         std::holds_alternative<ptx::ISync>(i);
}

void reduce_choices(const ptx::Program& prg, const sem::Grid& g,
                    const std::vector<std::uint32_t>& independent_pcs,
                    std::vector<sem::Choice>& eligible) {
  for (const sem::Choice& c : eligible) {
    if (c.kind != sem::Choice::Kind::ExecWarp) continue;
    const sem::Warp& w = g.blocks[c.block].warps[c.warp];
    if (register_local(prg.fetch(w.pc()))) {
      const sem::Choice keep = c;
      eligible.assign(1, keep);
      return;
    }
  }
  if (independent_pcs.empty()) return;
  for (const sem::Choice& c : eligible) {
    if (c.kind != sem::Choice::Kind::ExecWarp) continue;
    const sem::Warp& w = g.blocks[c.block].warps[c.warp];
    if (std::binary_search(independent_pcs.begin(), independent_pcs.end(),
                           w.pc())) {
      const sem::Choice keep = c;
      eligible.assign(1, keep);
      return;
    }
  }
}

}  // namespace internal

namespace {

enum class Color : std::uint8_t { OnStack, Done };

}  // namespace

ExploreResult explore(const ptx::Program& prg, const sem::KernelConfig& kc,
                      const sem::Machine& initial,
                      const ExploreOptions& opts, const Checkpoint* resume) {
  if (opts.num_threads > 0) {
    return explore_parallel(prg, kc, initial, opts, resume);
  }

  ExploreResult result;
  result.min_steps_to_termination = ~0ull;

  // Node ownership: every visited state is interned into the store and
  // referenced by StateId from here on; only the states currently on
  // the DFS stack are held as full machines (their children are built
  // by copying, which the copy-on-write memory makes cheap).
  // Interning compares structurally, so a revisit is detected even
  // across different paths and a hash collision cannot fake a visit.
  auto store = std::make_shared<StateStore>(store_options(opts));
  std::unordered_map<std::uint32_t, Color> colors;
  internal::FinalsSet finals;

  struct Frame {
    StateId id;
    sem::Machine state;
    std::vector<sem::Choice> eligible;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  std::vector<sem::Choice> path;

  bool limits_hit = false;

  auto hit_limit = [&](ExploreResult::Limit l) {
    limits_hit = true;
    if (result.limit_hit == ExploreResult::Limit::None) result.limit_hit = l;
  };

  auto add_violation = [&](Violation::Kind kind, std::string msg) {
    result.violations.push_back({kind, std::move(msg), path});
  };

  auto enter = [&](sem::Machine&& m) -> bool {
    // Returns true if a new frame was pushed.  The parent (the frame
    // being expanded) seeds delta encoding: a child's warp fragments
    // are stored as deltas against the parent's where that pays.
    const StateId parent = stack.empty() ? StateId{} : stack.back().id;
    const auto r = store->intern(m, opts.max_states, parent);
    if (!r.id.valid()) {
      hit_limit(ExploreResult::Limit::MaxStates);
      return false;
    }
    if (!r.inserted) {
      const auto it = colors.find(r.id.v);
      if (it != colors.end() && it->second == Color::OnStack) {
        add_violation(Violation::Kind::Cycle,
                      "schedule revisits an earlier state: a scheduler can "
                      "loop forever");
      }
      return false;
    }
    ++result.states_visited;

    if (sem::terminated(prg, m.grid)) {
      colors.emplace(r.id.v, Color::Done);
      result.min_steps_to_termination =
          std::min<std::uint64_t>(result.min_steps_to_termination,
                                  path.size());
      result.max_steps_to_termination =
          std::max<std::uint64_t>(result.max_steps_to_termination,
                                  path.size());
      finals.insert(r.id);
      return false;
    }
    auto eligible = sem::eligible_choices(prg, m.grid);
    if (opts.partial_order_reduction) {
      internal::reduce_choices(prg, m.grid, opts.por_independent_pcs,
                               eligible);
    }
    if (eligible.empty()) {
      colors.emplace(r.id.v, Color::Done);
      add_violation(Violation::Kind::Stuck,
                    sem::stuck_reason(prg, m.grid));
      return false;
    }
    if (path.size() >= opts.max_depth) {
      colors.emplace(r.id.v, Color::Done);
      hit_limit(ExploreResult::Limit::MaxDepth);
      add_violation(Violation::Kind::DepthExceeded,
                    "path exceeded the exploration depth bound");
      return false;
    }
    colors.emplace(r.id.v, Color::OnStack);
    stack.push_back(Frame{r.id, std::move(m), std::move(eligible), 0});
    return true;
  };

  if (resume != nullptr) {
    // Continue the checkpointed run: the store comes back with every
    // id intact, frames rematerialize their machines from it, and the
    // eligible-choice lists are recomputed (they are a deterministic
    // function of the state, so frame.next indexes the same choice it
    // did before the cut).
    verify_resume(*resume, Checkpoint::Engine::Serial, prg, kc, opts);
    store = resume->store;
    // Tier knobs are transient: the resumed run's own budget/spill
    // settings apply, whatever the checkpointing run used.
    store->configure(store_options(opts));
    result.states_visited = resume->states_visited;
    result.transitions = resume->transitions;
    result.min_steps_to_termination = resume->min_steps;
    result.max_steps_to_termination = resume->max_steps;
    result.limit_hit = resume->limit_hit;
    limits_hit = resume->limits_hit;
    result.violations = resume->violations;
    for (const StateId id : resume->final_ids) finals.insert(id);
    colors.reserve(resume->colors.size());
    for (const auto& [id, color] : resume->colors) {
      colors.emplace(id, color == 0 ? Color::OnStack : Color::Done);
    }
    path = resume->path;
    stack.reserve(resume->stack.size());
    for (const Checkpoint::SerialFrame& f : resume->stack) {
      sem::Machine m = store->materialize(f.id);
      auto eligible = sem::eligible_choices(prg, m.grid);
      if (opts.partial_order_reduction) {
        internal::reduce_choices(prg, m.grid, opts.por_independent_pcs,
                                 eligible);
      }
      if (f.next > eligible.size()) {
        throw CheckpointError(CheckpointError::Kind::Corrupt,
                              "stack frame choice index out of range");
      }
      stack.push_back(Frame{f.id, std::move(m), std::move(eligible),
                            static_cast<std::size_t>(f.next)});
    }
  } else {
    enter(sem::Machine(initial));
  }

  auto should_stop = [&] {
    return opts.stop_at_first_violation && !result.violations.empty();
  };

  // --- crash-safety & budget machinery -------------------------------
  // The top of the DFS loop is a clean cut point: every structure
  // (stack, path, colors, finals, counters) is mutually consistent, so
  // that is where budgets are enforced and checkpoints written.
  const auto t_start = std::chrono::steady_clock::now();
  const bool budgeted = opts.stop_flag != nullptr ||
                        opts.stop_after_states != 0 ||
                        opts.deadline_ms != 0 || opts.mem_limit_bytes != 0;
  std::uint64_t next_checkpoint_at =
      (!opts.checkpoint_path.empty() && opts.checkpoint_every_states != 0)
          ? result.states_visited + opts.checkpoint_every_states
          : ~0ull;
  std::uint64_t next_progress_at =
      (opts.progress_fn && opts.progress_every_states != 0)
          ? result.states_visited + opts.progress_every_states
          : ~0ull;
  std::uint64_t iter = 0;

  auto write_checkpoint = [&] {
    Checkpoint ck;
    ck.engine = Checkpoint::Engine::Serial;
    ck.program_fp = program_fingerprint(prg);
    ck.config_fp = config_fingerprint(kc);
    ck.options = opts;  // only structural fields are persisted
    ck.store = store;
    ck.states_visited = result.states_visited;
    ck.transitions = result.transitions;
    ck.min_steps = result.min_steps_to_termination;
    ck.max_steps = result.max_steps_to_termination;
    ck.limit_hit = result.limit_hit;
    ck.limits_hit = limits_hit;
    ck.final_ids = finals.ids();
    ck.violations = result.violations;
    ck.colors.reserve(colors.size());
    for (const auto& [id, color] : colors) {
      ck.colors.emplace_back(
          id, static_cast<std::uint8_t>(color == Color::OnStack ? 0 : 1));
    }
    ck.stack.reserve(stack.size());
    for (const Frame& f : stack) {
      ck.stack.push_back({f.id, static_cast<std::uint64_t>(f.next)});
    }
    ck.path = path;
    try {
      ck.save(opts.checkpoint_path);
      result.checkpointed = true;
    } catch (const CheckpointError& e) {
      // A full or failing disk must not kill the exploration: log it,
      // keep going, and let the next cadence retry.  Only resumability
      // is at stake, never the verdict.
      ++result.checkpoint_write_failures;
      std::fprintf(stderr,
                   "cacval: warning: checkpoint write failed (will retry "
                   "next cadence): %s\n",
                   e.what());
    }
  };

  // The cheap flags are polled every iteration (the fault harness
  // relies on stop_after_states being exact); the clock and the /proc
  // RSS read only every 64 states.
  auto budget_tripped = [&]() -> ExploreResult::Limit {
    if (opts.stop_flag != nullptr &&
        opts.stop_flag->load(std::memory_order_relaxed)) {
      return ExploreResult::Limit::Interrupted;
    }
    if (opts.stop_after_states != 0 &&
        result.states_visited >= opts.stop_after_states) {
      return ExploreResult::Limit::Interrupted;
    }
    if ((iter & 0x3f) == 0) {
      if (opts.deadline_ms != 0 &&
          std::chrono::steady_clock::now() - t_start >=
              std::chrono::milliseconds(opts.deadline_ms)) {
        return ExploreResult::Limit::Deadline;
      }
      if (opts.mem_limit_bytes != 0) {
        std::uint64_t rss = current_rss_bytes();
        // Spilled segments are mmap'd page cache the kernel reclaims
        // under pressure — they must not count against the budget, or
        // spilling could never relieve a tripped limit.
        const std::uint64_t spilled = store->stats().spilled_bytes;
        rss = rss > spilled ? rss - spilled : 0;
        if (rss != 0 && rss >= opts.mem_limit_bytes) {
          return ExploreResult::Limit::MemLimit;
        }
      }
    }
    return ExploreResult::Limit::None;
  };

  while (!stack.empty() && !should_stop()) {
    ++iter;
    if (budgeted) {
      const ExploreResult::Limit stop = budget_tripped();
      if (stop != ExploreResult::Limit::None) {
        // Checkpoint first: the transient stop reason must not leak
        // into the file, or the resumed run could never report itself
        // exhaustive.
        if (!opts.checkpoint_path.empty()) write_checkpoint();
        hit_limit(stop);
        break;
      }
    }
    if (result.states_visited >= next_checkpoint_at) {
      write_checkpoint();
      next_checkpoint_at =
          result.states_visited + opts.checkpoint_every_states;
    }
    if (result.states_visited >= next_progress_at) {
      opts.progress_fn({result.states_visited, result.transitions,
                        static_cast<std::uint64_t>(stack.size())});
      next_progress_at =
          result.states_visited + opts.progress_every_states;
    }

    Frame& top = stack.back();
    if (top.next >= top.eligible.size()) {
      colors[top.id.v] = Color::Done;
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const sem::Choice c = top.eligible[top.next++];
    sem::Machine child(top.state);
    const sem::StepResult sr =
        sem::apply_choice(prg, kc, child, c, opts.step_opts, nullptr);
    ++result.transitions;
    path.push_back(c);
    if (!sr.ok()) {
      add_violation(Violation::Kind::Fault, sr.fault);
      path.pop_back();
      continue;
    }
    if (!enter(std::move(child))) path.pop_back();
  }

  if (result.min_steps_to_termination == ~0ull) {
    result.min_steps_to_termination = 0;
  }
  result.final_ids = finals.take();
  result.store_stats = store->stats();
  result.store = std::move(store);
  result.exhaustive = !limits_hit && stack.empty();
  return result;
}

std::vector<sem::Machine> ExploreResult::finals() const {
  std::vector<sem::Machine> out;
  if (!store) return out;
  out.reserve(final_ids.size());
  for (const StateId id : final_ids) out.push_back(store->materialize(id));
  return out;
}

std::string to_string(Violation::Kind k) {
  switch (k) {
    case Violation::Kind::Stuck: return "stuck";
    case Violation::Kind::Fault: return "fault";
    case Violation::Kind::Cycle: return "cycle";
    case Violation::Kind::DepthExceeded: return "depth-exceeded";
  }
  return "?";
}

std::string to_string(ExploreResult::Limit l) {
  switch (l) {
    case ExploreResult::Limit::None: return "none";
    case ExploreResult::Limit::MaxStates: return "max-states";
    case ExploreResult::Limit::MaxDepth: return "max-depth";
    case ExploreResult::Limit::Deadline: return "deadline";
    case ExploreResult::Limit::MemLimit: return "mem-limit";
    case ExploreResult::Limit::Interrupted: return "interrupted";
  }
  return "?";
}

}  // namespace cac::sched
