#include "sched/explore.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "sched/explore_internal.h"
#include "sched/explore_parallel.h"

namespace cac::sched {

namespace internal {

bool register_local(const ptx::Instr& i) {
  return std::holds_alternative<ptx::INop>(i) ||
         std::holds_alternative<ptx::IBop>(i) ||
         std::holds_alternative<ptx::ITop>(i) ||
         std::holds_alternative<ptx::IUop>(i) ||
         std::holds_alternative<ptx::IMov>(i) ||
         std::holds_alternative<ptx::ISetp>(i) ||
         std::holds_alternative<ptx::ISelp>(i) ||
         std::holds_alternative<ptx::IBra>(i) ||
         std::holds_alternative<ptx::IPBra>(i) ||
         std::holds_alternative<ptx::ISync>(i);
}

void reduce_choices(const ptx::Program& prg, const sem::Grid& g,
                    std::vector<sem::Choice>& eligible) {
  for (const sem::Choice& c : eligible) {
    if (c.kind != sem::Choice::Kind::ExecWarp) continue;
    const sem::Warp& w = g.blocks[c.block].warps[c.warp];
    if (register_local(prg.fetch(w.pc()))) {
      const sem::Choice keep = c;
      eligible.assign(1, keep);
      return;
    }
  }
}

}  // namespace internal

namespace {

struct MachineHash {
  std::size_t operator()(const sem::Machine* m) const { return m->hash(); }
};
struct MachineEq {
  bool operator()(const sem::Machine* a, const sem::Machine* b) const {
    return *a == *b;
  }
};

enum class Color : std::uint8_t { OnStack, Done };

}  // namespace

ExploreResult explore(const ptx::Program& prg, const sem::KernelConfig& kc,
                      const sem::Machine& initial,
                      const ExploreOptions& opts) {
  if (opts.num_threads > 0) return explore_parallel(prg, kc, initial, opts);

  ExploreResult result;
  result.min_steps_to_termination = ~0ull;

  // Node ownership: machines live in `arena`; the color map and the
  // DFS frames reference them by pointer.  Structural equality in the
  // map means a revisit is detected even across different paths.
  std::vector<std::unique_ptr<sem::Machine>> arena;
  std::unordered_map<const sem::Machine*, Color, MachineHash, MachineEq>
      colors;
  internal::FinalsSet finals;

  struct Frame {
    const sem::Machine* state;
    std::vector<sem::Choice> eligible;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  std::vector<sem::Choice> path;

  bool limits_hit = false;

  auto add_violation = [&](Violation::Kind kind, std::string msg) {
    result.violations.push_back({kind, std::move(msg), path});
  };

  auto enter = [&](sem::Machine&& m) -> bool {
    // Returns true if a new frame was pushed.
    auto owned = std::make_unique<sem::Machine>(std::move(m));
    const sem::Machine* ptr = owned.get();
    auto it = colors.find(ptr);
    if (it != colors.end()) {
      if (it->second == Color::OnStack) {
        add_violation(Violation::Kind::Cycle,
                      "schedule revisits an earlier state: a scheduler can "
                      "loop forever");
      }
      return false;
    }
    if (colors.size() >= opts.max_states) {
      limits_hit = true;
      return false;
    }
    arena.push_back(std::move(owned));
    ++result.states_visited;

    if (sem::terminated(prg, ptr->grid)) {
      colors.emplace(ptr, Color::Done);
      result.min_steps_to_termination =
          std::min<std::uint64_t>(result.min_steps_to_termination,
                                  path.size());
      result.max_steps_to_termination =
          std::max<std::uint64_t>(result.max_steps_to_termination,
                                  path.size());
      finals.insert(*ptr);
      return false;
    }
    auto eligible = sem::eligible_choices(prg, ptr->grid);
    if (opts.partial_order_reduction) {
      internal::reduce_choices(prg, ptr->grid, eligible);
    }
    if (eligible.empty()) {
      colors.emplace(ptr, Color::Done);
      add_violation(Violation::Kind::Stuck,
                    sem::stuck_reason(prg, ptr->grid));
      return false;
    }
    if (path.size() >= opts.max_depth) {
      colors.emplace(ptr, Color::Done);
      limits_hit = true;
      add_violation(Violation::Kind::DepthExceeded,
                    "path exceeded the exploration depth bound");
      return false;
    }
    colors.emplace(ptr, Color::OnStack);
    stack.push_back(Frame{ptr, std::move(eligible), 0});
    return true;
  };

  enter(sem::Machine(initial));

  auto should_stop = [&] {
    return opts.stop_at_first_violation && !result.violations.empty();
  };

  while (!stack.empty() && !should_stop()) {
    Frame& top = stack.back();
    if (top.next >= top.eligible.size()) {
      colors[top.state] = Color::Done;
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const sem::Choice c = top.eligible[top.next++];
    sem::Machine child(*top.state);
    const sem::StepResult sr =
        sem::apply_choice(prg, kc, child, c, opts.step_opts, nullptr);
    ++result.transitions;
    path.push_back(c);
    if (!sr.ok()) {
      add_violation(Violation::Kind::Fault, sr.fault);
      path.pop_back();
      continue;
    }
    if (!enter(std::move(child))) path.pop_back();
  }

  if (result.min_steps_to_termination == ~0ull) {
    result.min_steps_to_termination = 0;
  }
  result.finals = finals.take();
  result.exhaustive = !limits_hit && stack.empty();
  return result;
}

std::string to_string(Violation::Kind k) {
  switch (k) {
    case Violation::Kind::Stuck: return "stuck";
    case Violation::Kind::Fault: return "fault";
    case Violation::Kind::Cycle: return "cycle";
    case Violation::Kind::DepthExceeded: return "depth-exceeded";
  }
  return "?";
}

}  // namespace cac::sched
