#include "sched/explore.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "sched/explore_internal.h"
#include "sched/explore_parallel.h"

namespace cac::sched {

namespace internal {

bool register_local(const ptx::Instr& i) {
  return std::holds_alternative<ptx::INop>(i) ||
         std::holds_alternative<ptx::IBop>(i) ||
         std::holds_alternative<ptx::ITop>(i) ||
         std::holds_alternative<ptx::IUop>(i) ||
         std::holds_alternative<ptx::IMov>(i) ||
         std::holds_alternative<ptx::ISetp>(i) ||
         std::holds_alternative<ptx::ISelp>(i) ||
         std::holds_alternative<ptx::IBra>(i) ||
         std::holds_alternative<ptx::IPBra>(i) ||
         std::holds_alternative<ptx::ISync>(i);
}

void reduce_choices(const ptx::Program& prg, const sem::Grid& g,
                    std::vector<sem::Choice>& eligible) {
  for (const sem::Choice& c : eligible) {
    if (c.kind != sem::Choice::Kind::ExecWarp) continue;
    const sem::Warp& w = g.blocks[c.block].warps[c.warp];
    if (register_local(prg.fetch(w.pc()))) {
      const sem::Choice keep = c;
      eligible.assign(1, keep);
      return;
    }
  }
}

}  // namespace internal

namespace {

enum class Color : std::uint8_t { OnStack, Done };

}  // namespace

ExploreResult explore(const ptx::Program& prg, const sem::KernelConfig& kc,
                      const sem::Machine& initial,
                      const ExploreOptions& opts) {
  if (opts.num_threads > 0) return explore_parallel(prg, kc, initial, opts);

  ExploreResult result;
  result.min_steps_to_termination = ~0ull;

  // Node ownership: every visited state is interned into the store and
  // referenced by StateId from here on; only the states currently on
  // the DFS stack are held as full machines (their children are built
  // by copying, which the copy-on-write memory makes cheap).
  // Interning compares structurally, so a revisit is detected even
  // across different paths and a hash collision cannot fake a visit.
  auto store = std::make_shared<StateStore>();
  std::unordered_map<std::uint32_t, Color> colors;
  internal::FinalsSet finals;

  struct Frame {
    StateId id;
    sem::Machine state;
    std::vector<sem::Choice> eligible;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  std::vector<sem::Choice> path;

  bool limits_hit = false;

  auto hit_limit = [&](ExploreResult::Limit l) {
    limits_hit = true;
    if (result.limit_hit == ExploreResult::Limit::None) result.limit_hit = l;
  };

  auto add_violation = [&](Violation::Kind kind, std::string msg) {
    result.violations.push_back({kind, std::move(msg), path});
  };

  auto enter = [&](sem::Machine&& m) -> bool {
    // Returns true if a new frame was pushed.
    const auto r = store->intern(m, opts.max_states);
    if (!r.id.valid()) {
      hit_limit(ExploreResult::Limit::MaxStates);
      return false;
    }
    if (!r.inserted) {
      const auto it = colors.find(r.id.v);
      if (it != colors.end() && it->second == Color::OnStack) {
        add_violation(Violation::Kind::Cycle,
                      "schedule revisits an earlier state: a scheduler can "
                      "loop forever");
      }
      return false;
    }
    ++result.states_visited;

    if (sem::terminated(prg, m.grid)) {
      colors.emplace(r.id.v, Color::Done);
      result.min_steps_to_termination =
          std::min<std::uint64_t>(result.min_steps_to_termination,
                                  path.size());
      result.max_steps_to_termination =
          std::max<std::uint64_t>(result.max_steps_to_termination,
                                  path.size());
      finals.insert(r.id);
      return false;
    }
    auto eligible = sem::eligible_choices(prg, m.grid);
    if (opts.partial_order_reduction) {
      internal::reduce_choices(prg, m.grid, eligible);
    }
    if (eligible.empty()) {
      colors.emplace(r.id.v, Color::Done);
      add_violation(Violation::Kind::Stuck,
                    sem::stuck_reason(prg, m.grid));
      return false;
    }
    if (path.size() >= opts.max_depth) {
      colors.emplace(r.id.v, Color::Done);
      hit_limit(ExploreResult::Limit::MaxDepth);
      add_violation(Violation::Kind::DepthExceeded,
                    "path exceeded the exploration depth bound");
      return false;
    }
    colors.emplace(r.id.v, Color::OnStack);
    stack.push_back(Frame{r.id, std::move(m), std::move(eligible), 0});
    return true;
  };

  enter(sem::Machine(initial));

  auto should_stop = [&] {
    return opts.stop_at_first_violation && !result.violations.empty();
  };

  while (!stack.empty() && !should_stop()) {
    Frame& top = stack.back();
    if (top.next >= top.eligible.size()) {
      colors[top.id.v] = Color::Done;
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const sem::Choice c = top.eligible[top.next++];
    sem::Machine child(top.state);
    const sem::StepResult sr =
        sem::apply_choice(prg, kc, child, c, opts.step_opts, nullptr);
    ++result.transitions;
    path.push_back(c);
    if (!sr.ok()) {
      add_violation(Violation::Kind::Fault, sr.fault);
      path.pop_back();
      continue;
    }
    if (!enter(std::move(child))) path.pop_back();
  }

  if (result.min_steps_to_termination == ~0ull) {
    result.min_steps_to_termination = 0;
  }
  result.final_ids = finals.take();
  result.store = std::move(store);
  result.exhaustive = !limits_hit && stack.empty();
  return result;
}

std::vector<sem::Machine> ExploreResult::finals() const {
  std::vector<sem::Machine> out;
  if (!store) return out;
  out.reserve(final_ids.size());
  for (const StateId id : final_ids) out.push_back(store->materialize(id));
  return out;
}

std::string to_string(Violation::Kind k) {
  switch (k) {
    case Violation::Kind::Stuck: return "stuck";
    case Violation::Kind::Fault: return "fault";
    case Violation::Kind::Cycle: return "cycle";
    case Violation::Kind::DepthExceeded: return "depth-exceeded";
  }
  return "?";
}

std::string to_string(ExploreResult::Limit l) {
  switch (l) {
    case ExploreResult::Limit::None: return "none";
    case ExploreResult::Limit::MaxStates: return "max-states";
    case ExploreResult::Limit::MaxDepth: return "max-depth";
  }
  return "?";
}

}  // namespace cac::sched
