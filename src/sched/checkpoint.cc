#include "sched/checkpoint.h"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "ptx/program.h"
#include "sched/checkpoint_codec.h"
#include "support/binio.h"
#include "support/io.h"

namespace cac::sched {

// The choice/options codec lives in sched::codec (checkpoint_codec.h)
// so the distributed explorer's frames and per-worker checkpoint files
// stay byte-compatible with this format.
namespace codec {

using support::BinReader;
using support::BinWriter;

void encode_choice(BinWriter& w, const sem::Choice& c) {
  w.u8(static_cast<std::uint8_t>(c.kind));
  w.u32(c.block);
  w.u32(c.warp);
}

sem::Choice decode_choice(BinReader& r) {
  sem::Choice c;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(sem::Choice::Kind::LiftBar)) {
    throw support::BinError("bad choice kind");
  }
  c.kind = static_cast<sem::Choice::Kind>(kind);
  c.block = r.u32();
  c.warp = r.u32();
  return c;
}

void encode_choices(BinWriter& w, const std::vector<sem::Choice>& cs) {
  w.u64(cs.size());
  for (const sem::Choice& c : cs) encode_choice(w, c);
}

std::vector<sem::Choice> decode_choices(BinReader& r) {
  const std::uint64_t n = r.count(9);  // u8 kind + 2x u32
  std::vector<sem::Choice> cs;
  cs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) cs.push_back(decode_choice(r));
  return cs;
}

void encode_options(BinWriter& w, const ExploreOptions& o) {
  w.u64(o.max_depth);
  w.u64(o.max_states);
  w.u8(o.stop_at_first_violation ? 1 : 0);
  w.u8(o.partial_order_reduction ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(o.step_opts.order.kind));
  w.u64(o.step_opts.order.perm.size());
  for (const std::uint32_t p : o.step_opts.order.perm) w.u32(p);
  w.u8(o.step_opts.log_accesses ? 1 : 0);
  w.u64(o.por_independent_pcs.size());
  for (const std::uint32_t pc : o.por_independent_pcs) w.u32(pc);
}

ExploreOptions decode_options(BinReader& r) {
  ExploreOptions o;
  o.max_depth = r.u64();
  o.max_states = r.u64();
  o.stop_at_first_violation = r.u8() != 0;
  o.partial_order_reduction = r.u8() != 0;
  const std::uint8_t order = r.u8();
  if (order > static_cast<std::uint8_t>(sem::ThreadOrder::Kind::Permuted)) {
    throw support::BinError("bad thread-order kind");
  }
  o.step_opts.order.kind = static_cast<sem::ThreadOrder::Kind>(order);
  const std::uint64_t np = r.count(sizeof(std::uint32_t));
  o.step_opts.order.perm.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) {
    o.step_opts.order.perm.push_back(r.u32());
  }
  o.step_opts.log_accesses = r.u8() != 0;
  const std::uint64_t ni = r.count(sizeof(std::uint32_t));
  o.por_independent_pcs.reserve(ni);
  for (std::uint64_t i = 0; i < ni; ++i) {
    o.por_independent_pcs.push_back(r.u32());
  }
  return o;
}

}  // namespace codec

namespace {

using codec::decode_choice;
using codec::decode_choices;
using codec::decode_options;
using codec::encode_choice;
using codec::encode_choices;
using codec::encode_options;
using support::BinReader;
using support::BinWriter;

// "CACCKPT" + format family byte.  A change to the payload layout bumps
// kFormatVersion, not the magic.
constexpr char kMagic[8] = {'C', 'A', 'C', 'C', 'K', 'P', 'T', '1'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8;

void encode_payload(BinWriter& w, const Checkpoint& ck) {
  w.u8(static_cast<std::uint8_t>(ck.engine));
  w.u64(ck.program_fp);
  w.u64(ck.config_fp);
  encode_options(w, ck.options);

  if (!ck.store) {
    throw CheckpointError(CheckpointError::Kind::Io,
                          "checkpoint has no state store");
  }
  ck.store->encode(w);

  if (ck.engine == Checkpoint::Engine::Serial) {
    w.u64(ck.states_visited);
    w.u64(ck.transitions);
    w.u64(ck.min_steps);
    w.u64(ck.max_steps);
    w.u8(static_cast<std::uint8_t>(ck.limit_hit));
    w.u8(ck.limits_hit ? 1 : 0);
    w.u64(ck.final_ids.size());
    for (const StateId id : ck.final_ids) w.u32(id.v);
    w.u64(ck.violations.size());
    for (const Violation& v : ck.violations) {
      w.u8(static_cast<std::uint8_t>(v.kind));
      w.str(v.message);
      encode_choices(w, v.trace);
    }
    w.u64(ck.colors.size());
    for (const auto& [id, color] : ck.colors) {
      w.u32(id);
      w.u8(color);
    }
    w.u64(ck.stack.size());
    for (const Checkpoint::SerialFrame& f : ck.stack) {
      w.u32(f.id.v);
      w.u64(f.next);
    }
    encode_choices(w, ck.path);
    return;
  }

  w.u32(ck.root.v);
  w.u64(ck.nodes.size());
  for (const Checkpoint::NodeRec& n : ck.nodes) {
    w.u32(n.id.v);
    w.u8(static_cast<std::uint8_t>((n.processed ? 1 : 0) |
                                   (n.terminal ? 2 : 0) |
                                   (n.stuck ? 4 : 0)));
    w.str(n.stuck_reason);
    w.u64(n.edges.size());
    for (const Checkpoint::EdgeRec& e : n.edges) {
      encode_choice(w, e.choice);
      w.u8(static_cast<std::uint8_t>((e.faulted ? 1 : 0) |
                                     (e.overflow ? 2 : 0)));
      w.u32(e.child.v);
      w.str(e.fault);
    }
  }
  w.u64(ck.frontier.size());
  for (const auto& [id, depth] : ck.frontier) {
    w.u32(id.v);
    w.u64(depth);
  }
}

Checkpoint decode_payload(BinReader& r) {
  Checkpoint ck;
  const std::uint8_t engine = r.u8();
  if (engine > static_cast<std::uint8_t>(Checkpoint::Engine::Parallel)) {
    throw support::BinError("bad engine tag");
  }
  ck.engine = static_cast<Checkpoint::Engine>(engine);
  ck.program_fp = r.u64();
  ck.config_fp = r.u64();
  ck.options = decode_options(r);

  ck.store = std::make_shared<StateStore>();
  ck.store->decode(r);

  if (ck.engine == Checkpoint::Engine::Serial) {
    ck.states_visited = r.u64();
    ck.transitions = r.u64();
    ck.min_steps = r.u64();
    ck.max_steps = r.u64();
    const std::uint8_t limit = r.u8();
    if (limit > static_cast<std::uint8_t>(ExploreResult::Limit::Interrupted)) {
      throw support::BinError("bad limit tag");
    }
    ck.limit_hit = static_cast<ExploreResult::Limit>(limit);
    ck.limits_hit = r.u8() != 0;
    const std::uint64_t nf = r.count(sizeof(std::uint32_t));
    ck.final_ids.reserve(nf);
    for (std::uint64_t i = 0; i < nf; ++i) ck.final_ids.push_back({r.u32()});
    const std::uint64_t nv = r.count();
    ck.violations.reserve(nv);
    for (std::uint64_t i = 0; i < nv; ++i) {
      Violation v;
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(Violation::Kind::DepthExceeded)) {
        throw support::BinError("bad violation kind");
      }
      v.kind = static_cast<Violation::Kind>(kind);
      v.message = r.str();
      v.trace = decode_choices(r);
      ck.violations.push_back(std::move(v));
    }
    const std::uint64_t nc = r.count(5);  // u32 id + u8 color
    ck.colors.reserve(nc);
    for (std::uint64_t i = 0; i < nc; ++i) {
      const std::uint32_t id = r.u32();
      const std::uint8_t color = r.u8();
      if (color > 1) throw support::BinError("bad color tag");
      ck.colors.emplace_back(id, color);
    }
    const std::uint64_t ns = r.count(12);  // u32 id + u64 next
    ck.stack.reserve(ns);
    for (std::uint64_t i = 0; i < ns; ++i) {
      Checkpoint::SerialFrame f;
      f.id = {r.u32()};
      f.next = r.u64();
      ck.stack.push_back(f);
    }
    ck.path = decode_choices(r);
    return ck;
  }

  ck.root = {r.u32()};
  const std::uint64_t nn = r.count();
  ck.nodes.reserve(nn);
  for (std::uint64_t i = 0; i < nn; ++i) {
    Checkpoint::NodeRec n;
    n.id = {r.u32()};
    const std::uint8_t flags = r.u8();
    if (flags > 7) throw support::BinError("bad node flags");
    n.processed = (flags & 1) != 0;
    n.terminal = (flags & 2) != 0;
    n.stuck = (flags & 4) != 0;
    n.stuck_reason = r.str();
    const std::uint64_t ne = r.count();
    n.edges.reserve(ne);
    for (std::uint64_t j = 0; j < ne; ++j) {
      Checkpoint::EdgeRec e;
      e.choice = decode_choice(r);
      const std::uint8_t eflags = r.u8();
      if (eflags > 3) throw support::BinError("bad edge flags");
      e.faulted = (eflags & 1) != 0;
      e.overflow = (eflags & 2) != 0;
      e.child = {r.u32()};
      e.fault = r.str();
      n.edges.push_back(std::move(e));
    }
    ck.nodes.push_back(std::move(n));
  }
  const std::uint64_t nq = r.count(12);  // u32 id + u64 depth
  ck.frontier.reserve(nq);
  for (std::uint64_t i = 0; i < nq; ++i) {
    const std::uint32_t id = r.u32();
    const std::uint64_t depth = r.u64();
    ck.frontier.emplace_back(StateId{id}, depth);
  }
  return ck;
}

void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}
std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void Checkpoint::save(const std::string& path) const {
  BinWriter w;
  encode_payload(w, *this);
  const std::string& payload = w.buffer();

  std::string file;
  file.reserve(kHeaderSize + payload.size());
  file.append(kMagic, sizeof(kMagic));
  put_u32(file, kFormatVersion);
  put_u32(file, 0);  // reserved
  put_u64(file, payload.size());
  put_u64(file, fnv1a(payload));
  file += payload;

  // Atomic write-then-rename (support::io, which also hosts the fault
  // seam): the previous checkpoint at `path` stays intact until the
  // new one is fully on disk.
  try {
    support::write_file_atomic(path, file);
  } catch (const support::IoError& e) {
    throw CheckpointError(CheckpointError::Kind::Io, e.what());
  }
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::string file;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      throw CheckpointError(CheckpointError::Kind::Io,
                            "cannot open " + path);
    }
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) file.append(buf, n);
    const bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err) {
      throw CheckpointError(CheckpointError::Kind::Io,
                            "read error on " + path);
    }
  }

  if (file.size() < kHeaderSize) {
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          "truncated header in " + path);
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          path + " is not a checkpoint file");
  }
  const std::uint32_t version = get_u32(file.data() + 8);
  if (version != kFormatVersion) {
    throw CheckpointError(
        CheckpointError::Kind::VersionMismatch,
        path + " has format version " + std::to_string(version) +
            ", this build reads version " + std::to_string(kFormatVersion));
  }
  // The reserved word must be zero until a format revision assigns it
  // meaning — validating it keeps every header byte covered, so any
  // single-byte damage to the header is rejected structurally.
  if (get_u32(file.data() + 12) != 0) {
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          "nonzero reserved header field in " + path);
  }
  const std::uint64_t payload_size = get_u64(file.data() + 16);
  if (payload_size != file.size() - kHeaderSize) {
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          "truncated payload in " + path);
  }
  const std::string_view payload(file.data() + kHeaderSize, payload_size);
  if (fnv1a(payload) != get_u64(file.data() + 24)) {
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          "checksum mismatch in " + path);
  }

  try {
    BinReader r(payload);
    Checkpoint ck = decode_payload(r);
    if (!r.done()) {
      throw support::BinError("trailing bytes after payload");
    }
    return ck;
  } catch (const support::BinError& e) {
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          std::string(e.what()) + " in " + path);
  } catch (const KernelError& e) {
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          std::string(e.what()) + " in " + path);
  }
}

std::uint64_t program_fingerprint(const ptx::Program& prg) {
  return fnv1a(ptx::to_string(prg));
}

std::uint64_t config_fingerprint(const sem::KernelConfig& kc) {
  Hasher h;
  h.mix(kc.grid.x).mix(kc.grid.y).mix(kc.grid.z);
  h.mix(kc.block.x).mix(kc.block.y).mix(kc.block.z);
  h.mix(kc.warp_size);
  return h.value();
}

void verify_resume(const Checkpoint& ck, Checkpoint::Engine want,
                   const ptx::Program& prg, const sem::KernelConfig& kc,
                   const ExploreOptions& opts) {
  const auto fail = [](const std::string& msg) {
    throw CheckpointError(CheckpointError::Kind::Mismatch, msg);
  };
  if (ck.engine != want) {
    fail(ck.engine == Checkpoint::Engine::Serial
             ? "checkpoint was written by the serial engine; resume "
               "without --threads"
             : "checkpoint was written by the parallel engine; resume "
               "with --threads");
  }
  if (ck.program_fp != program_fingerprint(prg)) {
    fail("program differs from the checkpointed run");
  }
  if (ck.config_fp != config_fingerprint(kc)) {
    fail("kernel configuration differs from the checkpointed run");
  }
  const ExploreOptions& co = ck.options;
  if (co.max_depth != opts.max_depth || co.max_states != opts.max_states) {
    fail("exploration bounds differ from the checkpointed run");
  }
  if (co.stop_at_first_violation != opts.stop_at_first_violation ||
      co.partial_order_reduction != opts.partial_order_reduction ||
      co.por_independent_pcs != opts.por_independent_pcs) {
    fail("exploration policy differs from the checkpointed run");
  }
  if (co.step_opts.order.kind != opts.step_opts.order.kind ||
      co.step_opts.order.perm != opts.step_opts.order.perm ||
      co.step_opts.log_accesses != opts.step_opts.log_accesses) {
    fail("step options differ from the checkpointed run");
  }
  if (!ck.store) fail("checkpoint carries no state store");
}

std::uint64_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long pages = 0, resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &pages, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

std::string to_string(CheckpointError::Kind k) {
  switch (k) {
    case CheckpointError::Kind::Io: return "io";
    case CheckpointError::Kind::Corrupt: return "corrupt";
    case CheckpointError::Kind::VersionMismatch: return "version-mismatch";
    case CheckpointError::Kind::Mismatch: return "mismatch";
  }
  return "?";
}

}  // namespace cac::sched
