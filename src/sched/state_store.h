// Interned, copy-on-write, *tiered* storage for explored machine states.
//
// The explorers realize the paper's "for every scheduler" quantification
// (Fig. 3) by memoizing every distinct reachable state.  Storing full
// sem::Machine copies makes resident bytes per state the scaling wall:
// two adjacent states differ in one warp and at most one memory bank,
// yet value storage duplicates everything.  This module is the standard
// explicit-state model-checking answer (SPIN's collapse compression,
// shared-state representations in GPU checkers): decompose a state into
// content-addressed *fragments* —
//
//   * one fragment per memory bank (Global, Const, Param, and each
//     block's Shared bank), shared by refcount with the copy-on-write
//     mem::Memory representation, so interning a bank is a shared_ptr
//     copy, never a byte copy;
//   * one fragment per warp (the divergence tree with its threads'
//     register files and predicate states — the scheduler-visible
//     execution tree);
//
// deduplicate each fragment by structural hash with full structural
// equality as the tie-breaker (a hash collision can cost time, never
// merge distinct fragments), and represent a whole state as a small
// tuple of fragment ids.  Whole-state dedup then reduces to comparing
// id tuples: fragments are interned, so equal machines produce equal
// tuples and vice versa.
//
// Beyond 10^6 states even the deduplicated fragments outgrow RAM, so
// each fragment lives in one of three tiers:
//
//   hot   — the decoded object (sem::Warp / shared Bank), ready to use;
//   warm  — its canonical binio encoding (or a delta against another
//           fragment's encoding) as bytes in RAM;
//   cold  — the same bytes appended to an unlinked, mmap-read spill
//           segment file on disk.
//
// A clock (second-chance) sweep per fragment shard demotes fragments
// one tier at a time whenever `resident_bytes` exceeds the configured
// budget; any access transparently rematerializes from whatever tier
// the fragment is in.  Dedup against a non-hot fragment compares
// canonical encodings instead of objects — sem::Warp::encode and
// Bank::encode are deterministic and injective, so byte equality of
// encodings is structural equality.  Warp fragments additionally
// delta-encode against the matching warp of their parent state (one
// semantic step usually touches a register or two), which is what makes
// reduce-like kernels — whose warp trees differ by a few registers per
// step — cheap to keep resident.
//
// In front of each visited-state shard sits a small bloom filter: the
// common "definitely new" path is decided by two atomic word loads with
// no lock and no allocation.  Positives (real or false) fall through to
// the exact sharded probe, and the filter is re-checked under the shard
// lock before an insert skips the probe, so dedup stays exact.
//
// Thread safety: intern() and materialize() are safe to call
// concurrently (the parallel explorer's workers do).  Fragment pools
// and the state table are sharded by hash, each shard behind its own
// mutex; the spill file has its own leaf mutex; no two shard locks are
// ever held at once (delta chains are resolved link by link).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sem/state.h"

namespace cac::support {
class BinWriter;
class BinReader;
}  // namespace cac::support

namespace cac::sched {

/// Opaque handle to an interned machine state.  Valid for the lifetime
/// of the StateStore that issued it.
struct StateId {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t v = kInvalid;

  [[nodiscard]] bool valid() const { return v != kInvalid; }
  friend bool operator==(const StateId&, const StateId&) = default;
};

/// Tiering knobs.  All of them are *transient* resource policy — they
/// shape where bytes live, never which states exist or what verdict an
/// exploration reaches — so none of them enter the structural checkpoint
/// option fingerprint, and a resumed store may be configured with
/// different values than the run that wrote the checkpoint.
struct StoreOptions {
  /// Test seam, see StateStore(hash_mask).  Fixed at construction;
  /// configure() ignores it.
  std::uint64_t hash_mask = ~0ull;
  /// Directory for the spill segment file.  Empty disables the cold
  /// tier: eviction then stops at the warm (encoded-in-RAM) tier.
  std::string spill_dir;
  /// Evict until `resident_bytes` is back under this.  0 disables
  /// eviction entirely (everything stays hot — the pre-tiering
  /// behaviour, and the default).
  std::uint64_t resident_budget_bytes = 0;
  /// Bloom bits per visited-state shard, rounded up to a power of two.
  /// 0 means the default (1<<17).  Filters are allocated lazily per
  /// shard on first insert.
  std::uint64_t bloom_bits_per_shard = 0;
  /// Longest allowed delta chain (fragment -> base -> ... -> full
  /// encoding).  0 disables delta encoding.
  std::uint32_t delta_max_depth = 8;
};

class StateStore {
 public:
  StateStore() = default;
  /// Test seam: `hash_mask` is ANDed onto every fragment and state hash
  /// before bucket indexing.  A mask of 0 forces every entry into one
  /// bucket (and saturates the bloom filters instantly), so dedup
  /// decisions rest on structural equality alone — the
  /// collision-robustness property the tests pin.
  explicit StateStore(std::uint64_t hash_mask) : hash_mask_(hash_mask) {}
  explicit StateStore(const StoreOptions& opts) : hash_mask_(opts.hash_mask) {
    configure(opts);
  }
  ~StateStore();

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// Apply tiering knobs to a live store (`hash_mask` excluded — it is
  /// fixed at construction).  The engines call this right after
  /// checkpoint decode, which always produces a default-configured
  /// store.  Re-sizing the bloom filters rebuilds them from the stored
  /// state hashes.  Not safe concurrently with intern().
  void configure(const StoreOptions& opts);

  struct InternResult {
    StateId id;             // invalid iff dropped at `max_states`
    bool inserted = false;  // true iff `m` was not present before
  };

  /// Find the state structurally equal to `m`, or intern it.  Dedup is
  /// exact: hash-equal candidates are confirmed by fragment-id tuple
  /// equality, which (fragments being interned) is machine structural
  /// equality.  When the state is new and the store already holds
  /// `max_states` states, nothing is stored and an invalid id returns.
  /// `parent`, when valid, names the state `m` was reached from: fresh
  /// warp fragments then delta-encode against the matching warp of the
  /// parent's tuple.  Passing it (or not) never changes ids or results,
  /// only the byte cost of storing them.
  InternResult intern(const sem::Machine& m, std::uint64_t max_states = ~0ull,
                      StateId parent = StateId{});

  /// Rebuild a full machine from its handle — for replay, verdict
  /// construction, counterexample traces.  Memory banks are shared by
  /// refcount with the store (copy-on-write on mutation); warps are
  /// deep copies.  Fragments demoted to the warm or cold tier are
  /// transparently decoded (banks are re-promoted to hot so refcount
  /// sharing keeps working; warps are decoded straight into the
  /// result).  The result compares structurally equal to the machine
  /// that was interned.
  [[nodiscard]] sem::Machine materialize(StateId id) const;

  /// The memoized structural hash the machine had when interned.
  [[nodiscard]] std::uint64_t machine_hash(StateId id) const;

  [[nodiscard]] std::uint64_t size() const {
    return n_states_.load(std::memory_order_relaxed);
  }

  /// Byte/dedup accounting.  `resident_bytes` is what the store
  /// actually holds in RAM (hot objects + warm payloads + per-state
  /// tuple records); `spilled_bytes` is what has been appended to the
  /// on-disk spill segment (mmap-read, so the kernel may cache it, but
  /// it is reclaimable and must not count against a resident-memory
  /// budget); `materialized_bytes` is what the same visited set would
  /// cost as full per-state sem::Machine copies (the pre-StateStore
  /// explorer representation).  Heap overheads are estimated, not
  /// measured.
  struct Stats {
    std::uint64_t states = 0;
    std::uint64_t warp_fragments = 0;
    std::uint64_t bank_fragments = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t materialized_bytes = 0;
    std::uint64_t spilled_bytes = 0;
    std::uint64_t hot_evictions = 0;       // hot objects dropped
    std::uint64_t spills = 0;              // warm payloads written to disk
    std::uint64_t rematerializations = 0;  // non-hot fragments decoded
    std::uint64_t delta_fragments = 0;     // payloads stored as deltas
    std::uint64_t bloom_negatives = 0;       // lock-light definite misses
    std::uint64_t bloom_false_positives = 0; // probe found nothing
    /// Spill-tier operations that failed (ENOSPC/EIO on the segment).
    /// Nonzero means the cold tier shut itself off and the store ran
    /// resident-only from that point — a capacity warning, never a
    /// verdict change.
    std::uint64_t degraded_spill = 0;

    [[nodiscard]] double dedup_ratio() const {
      return resident_bytes == 0
                 ? 0.0
                 : static_cast<double>(materialized_bytes) /
                       static_cast<double>(resident_bytes);
    }
    /// Fraction of new-state inserts the bloom pre-check decided
    /// without touching the exact probe.
    [[nodiscard]] double bloom_hit_rate() const {
      const std::uint64_t total = bloom_negatives + bloom_false_positives;
      return total == 0 ? 0.0
                        : static_cast<double>(bloom_negatives) /
                              static_cast<double>(total);
    }
  };
  [[nodiscard]] Stats stats() const;

  /// Run eviction sweeps until a full pass over every fragment shard
  /// makes no progress (everything demoted as far as the configuration
  /// allows).  Test/bench seam — the explorers rely on the automatic
  /// budget-triggered eviction inside intern() instead.
  void evict_all();

  /// Checkpoint codec (sched/checkpoint.h, format v3).  encode
  /// preserves the per-shard insertion order of every fragment pool and
  /// state shard, so decode reproduces the exact same fragment and
  /// state ids — the property that lets a resumed exploration keep
  /// using StateIds from before the crash.  Fragment payloads are
  /// written in their stored form (delta chains round-trip; cold
  /// payloads are read back from the spill segment), so a checkpoint
  /// taken mid-spill is byte-for-byte restorable.  encode requires
  /// external quiescence (no concurrent intern); decode requires
  /// `*this` to be empty and a matching hash mask, lands every payload
  /// in the warm tier, and throws support::BinError on malformed input
  /// or KernelError on misuse.
  void encode(support::BinWriter& w) const;
  void decode(support::BinReader& r);

  /// Per-state wire codec (src/dist frontier exchange).  encode_state
  /// writes one interned state as a self-contained record — memoized
  /// machine hash + the *canonical* (full, never delta) fragment
  /// payloads its tuple references — so a state crosses a process
  /// boundary without materializing a sem::Machine and independently of
  /// the sender's tiering.  decode_state interns the record's fragments
  /// directly into *this* store (same dedup and cap semantics as
  /// intern(): existence before cap, invalid id when full) and returns
  /// the sender's machine hash alongside.  Both sides of an exchange
  /// must explore the same launch: the first decoded record establishes
  /// this store's shape, later records must match it.  decode_state
  /// throws support::BinError on malformed input and never leaves a
  /// partially registered state behind.
  struct WireIntern {
    InternResult result;
    std::uint64_t hash = 0;  // unmasked machine hash, as interned
  };
  void encode_state(StateId id, support::BinWriter& w) const;
  WireIntern decode_state(support::BinReader& r,
                          std::uint64_t max_states = ~0ull);

 private:
  // Fragment/state ids encode (shard, local index): shard in the low
  // bits, per-shard insertion index above.  Stable across the store's
  // lifetime; never reused.
  static constexpr unsigned kFragShardBits = 4;   // 16 fragment shards
  static constexpr unsigned kStateShardBits = 6;  // 64 state shards
  static constexpr std::uint32_t kNoBase = 0xffffffffu;

  /// Append-only spill segment.  Created under the configured
  /// directory and unlinked immediately, so a crash can never leak
  /// disk; reads go through a grow-on-demand read-only mmap.  Its
  /// mutex is a leaf lock: safe to take under any shard lock.
  class SpillFile {
   public:
    ~SpillFile();
    void open(const std::string& dir);
    [[nodiscard]] bool ready() const { return fd_ >= 0; }
    std::uint64_t append(std::string_view bytes);
    [[nodiscard]] std::string read(std::uint64_t off, std::uint32_t len) const;

   private:
    mutable std::mutex mu_;
    int fd_ = -1;
    std::uint64_t size_ = 0;
    /// Original segment name (the file itself is unlinked-while-open);
    /// kept as the fault-injection site label.
    std::string path_;
    mutable char* map_ = nullptr;
    mutable std::uint64_t map_len_ = 0;
  };

  /// One tiered warp fragment.  `hot`, `warm` and (cold_off, cold_len)
  /// are the three tiers; any non-empty subset may be populated.  The
  /// warm/cold payload is the canonical encoding when `base == kNoBase`
  /// and a support::delta op stream against fragment `base`'s canonical
  /// encoding otherwise.
  struct WarpRec {
    std::shared_ptr<const sem::Warp> hot;
    std::shared_ptr<const std::string> warm;
    std::uint64_t hash = 0;       // unmasked structural hash
    std::uint64_t hot_bytes = 0;  // deep-footprint estimate of `hot`
    std::uint64_t cold_off = 0;
    std::uint32_t cold_len = 0;
    std::uint32_t base = kNoBase;  // global warp fragment id
    std::uint8_t depth = 0;        // delta chain length to a full payload
    std::uint8_t ref = 0;          // clock second-chance bit
    std::uint8_t settled = 0;      // fully demoted; sweeps skip it
  };

  /// One tiered bank fragment.  Banks never delta-encode (they are
  /// refcount-shared with live machines and mostly identical anyway).
  struct BankRec {
    mem::Memory::BankRef hot;
    std::shared_ptr<const std::string> warm;
    std::uint64_t hash = 0;
    std::uint64_t hot_bytes = 0;
    std::uint64_t cold_off = 0;
    std::uint32_t cold_len = 0;
    std::uint8_t ref = 0;
    std::uint8_t settled = 0;  // fully demoted; sweeps skip it
  };

  /// Result of one fragment-pool intern.
  struct Frag {
    std::uint32_t id = 0;
    std::uint64_t deep_bytes = 0;  // heap footprint of the fragment
    bool inserted = false;
  };

  template <typename Rec>
  struct FragShard {
    mutable std::mutex mu;
    std::deque<Rec> recs;  // stable addresses; mutated in place
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
    std::uint32_t clock_hand = 0;
    /// Records not yet `settled` (fully demoted).  Eviction sweeps
    /// skip shards with live == 0 outright: at a steady budget floor
    /// almost every record is settled, and rescanning them per sweep
    /// made eviction O(records) per intern.  Kept exact under mu:
    /// ++ on insert and on reviving a settled record (touch_locked),
    /// -- when a sweep settles one.
    std::uint32_t live = 0;
  };
  using WarpShard = FragShard<WarpRec>;
  using BankShard = FragShard<BankRec>;

  /// Visited-state shard: flat append-only arenas (unmasked hash +
  /// fragment-id tuple per state, indexed by local id), an open-
  /// addressed slot table over them (value = local + 1, 0 = empty), and
  /// the bloom filter in front of it all.  ~30 bytes of bookkeeping per
  /// state instead of the ~100+ a deque of records with an
  /// unordered_map index costs.
  struct StateShard {
    mutable std::mutex mu;
    std::vector<std::uint64_t> hashes;  // unmasked, [local]
    std::vector<std::uint32_t> tuples;  // flat, stride = shape_.tuple_len
    std::vector<std::uint32_t> slots;   // open addressing, power of two
    // Allocated lazily (and pre-seeded from `hashes`) on first insert;
    // accessed only under `mu`, so two word reads decide "definitely
    // new" before any probe.
    std::unique_ptr<std::uint64_t[]> bloom;
  };

  /// Grid/memory shape shared by every state of one exploration
  /// (warp counts per block never change across transitions).
  struct Shape {
    std::vector<std::uint32_t> warps_per_block;
    std::uint32_t shared_banks = 0;
    std::uint64_t shared_per_block = 0;
    std::uint32_t tuple_len = 0;
  };

  void ensure_shape(const sem::Machine& m);

  // --- fragment pools -------------------------------------------------
  Frag intern_warp(const sem::Warp& w, std::uint32_t base_id);
  Frag intern_bank(const mem::Memory::BankRef& b);
  /// Canonical (full) encoding of a warp fragment, resolved through
  /// whatever tier/delta chain it is in.  Takes one shard lock at a
  /// time; `depth_out`, when non-null, receives the fragment's delta
  /// depth.
  [[nodiscard]] std::string warp_canonical_bytes(std::uint32_t id,
                                                 std::uint8_t* depth_out =
                                                     nullptr) const;
  /// Decoded warp by value: a copy of the hot object, or a decode of
  /// the resolved canonical bytes when the fragment is not hot.
  [[nodiscard]] sem::Warp warp_value(std::uint32_t id) const;
  [[nodiscard]] std::string bank_canonical_bytes_locked(
      const BankRec& rec) const;
  [[nodiscard]] mem::Memory::BankRef bank_ref(std::uint32_t id) const;

  // --- eviction -------------------------------------------------------
  /// One clock step on one record.  Returns true if it changed tiers.
  /// Mark a record referenced, reviving it for the sweep if it had
  /// settled.  Caller holds s.mu.
  template <typename Shard, typename Rec>
  static void touch_locked(Shard& s, Rec& rec) {
    rec.ref = 1;
    if (rec.settled) {
      rec.settled = 0;
      ++s.live;
    }
  }

  bool step_warp(WarpShard& s, WarpRec& rec);
  bool step_bank(BankShard& s, BankRec& rec);
  /// True while the cold tier is usable.  A failed spill operation
  /// (ENOSPC/EIO) trips `spill_failed_` via degrade_spill() and the
  /// store runs resident-only from then on: already-spilled payloads
  /// stay readable, nothing new is appended, the verdict is unaffected.
  [[nodiscard]] bool spill_usable() const {
    return spill_.ready() && !spill_failed_.load(std::memory_order_relaxed);
  }
  void degrade_spill(const char* why);
  /// Budget check + clock sweeps; called after every insert.
  void maybe_evict();
  /// One bounded sweep over all fragment shards; returns demotions.
  std::uint64_t evict_pass(std::uint64_t stop_below);

  // --- visited-state table --------------------------------------------
  /// Shared tail of intern()/decode_state(): look the tuple up in its
  /// state shard (bloom pre-check first), register it if new and under
  /// cap, book the stats.
  InternResult register_tuple(std::uint64_t h,
                              std::vector<std::uint32_t>&& tuple,
                              std::uint64_t max_states,
                              std::uint64_t full_bytes);
  /// Copy of state `id`'s tuple (empty if `id` is invalid/unknown).
  [[nodiscard]] std::vector<std::uint32_t> tuple_of(StateId id) const;
  /// Exact probe of one shard; caller holds `s.mu`.  Returns local + 1
  /// or 0.
  [[nodiscard]] std::uint32_t probe_locked(const StateShard& s,
                                           std::uint64_t h,
                                           const std::vector<std::uint32_t>&
                                               tuple) const;
  void slot_insert_locked(StateShard& s, std::uint32_t local);
  [[nodiscard]] bool bloom_maybe_locked(const StateShard& s,
                                        std::uint64_t masked) const;
  void bloom_add_locked(StateShard& s, std::uint64_t masked);

  const std::uint64_t hash_mask_ = ~0ull;

  std::once_flag shape_once_;
  Shape shape_;

  // Mutable: const accessors still touch clock ref bits, re-promote
  // bank fragments, and book rematerialization stats.
  mutable WarpShard warp_shards_[1u << kFragShardBits];
  mutable BankShard bank_shards_[1u << kFragShardBits];
  StateShard state_shards_[1u << kStateShardBits];

  SpillFile spill_;
  std::string spill_dir_;
  std::mutex evict_mu_;  // single evictor; never held across shard locks
  std::atomic<std::uint64_t> resident_budget_{0};
  std::atomic<std::uint64_t> bloom_bits_{1u << 17};
  std::atomic<std::uint32_t> delta_max_depth_{8};

  std::atomic<std::uint64_t> n_states_{0};
  std::atomic<std::uint64_t> n_warp_frags_{0};
  std::atomic<std::uint64_t> n_bank_frags_{0};
  mutable std::atomic<std::uint64_t> resident_bytes_{0};
  std::atomic<std::uint64_t> materialized_bytes_{0};
  std::atomic<std::uint64_t> spilled_bytes_{0};
  std::atomic<std::uint64_t> hot_evictions_{0};
  std::atomic<std::uint64_t> spills_{0};
  mutable std::atomic<std::uint64_t> remats_{0};
  std::atomic<std::uint64_t> delta_frags_{0};
  std::atomic<std::uint64_t> bloom_neg_{0};
  std::atomic<std::uint64_t> bloom_fp_{0};
  std::atomic<bool> spill_failed_{false};
  std::atomic<std::uint64_t> degraded_spill_{0};
};

}  // namespace cac::sched
