// Interned, copy-on-write storage for explored machine states.
//
// The explorers realize the paper's "for every scheduler" quantification
// (Fig. 3) by memoizing every distinct reachable state.  Storing full
// sem::Machine copies makes resident bytes per state the scaling wall:
// two adjacent states differ in one warp and at most one memory bank,
// yet value storage duplicates everything.  This module is the standard
// explicit-state model-checking answer (SPIN's collapse compression,
// shared-state representations in GPU checkers): decompose a state into
// content-addressed *fragments* —
//
//   * one fragment per memory bank (Global, Const, Param, and each
//     block's Shared bank), shared by refcount with the copy-on-write
//     mem::Memory representation, so interning a bank is a shared_ptr
//     copy, never a byte copy;
//   * one fragment per warp (the divergence tree with its threads'
//     register files and predicate states — the scheduler-visible
//     execution tree);
//
// deduplicate each fragment by structural hash with full structural
// equality as the tie-breaker (a hash collision can cost time, never
// merge distinct fragments), and represent a whole state as a small
// tuple of fragment ids.  Whole-state dedup then reduces to comparing
// id tuples: fragments are interned, so equal machines produce equal
// tuples and vice versa.
//
// Thread safety: intern() and materialize() are safe to call
// concurrently (the parallel explorer's workers do).  Fragment pools
// and the state table are sharded by hash, each shard behind its own
// mutex; fragment payloads are immutable once inserted, and bank hash
// caches use the SharedHashCache atomic discipline.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sem/state.h"

namespace cac::support {
class BinWriter;
class BinReader;
}  // namespace cac::support

namespace cac::sched {

/// Opaque handle to an interned machine state.  Valid for the lifetime
/// of the StateStore that issued it.
struct StateId {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t v = kInvalid;

  [[nodiscard]] bool valid() const { return v != kInvalid; }
  friend bool operator==(const StateId&, const StateId&) = default;
};

class StateStore {
 public:
  StateStore() = default;
  /// Test seam: `hash_mask` is ANDed onto every fragment and state hash
  /// before bucket indexing.  A mask of 0 forces every entry into one
  /// bucket, so dedup decisions rest on structural equality alone —
  /// the collision-robustness property the tests pin.
  explicit StateStore(std::uint64_t hash_mask) : hash_mask_(hash_mask) {}

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  struct InternResult {
    StateId id;             // invalid iff dropped at `max_states`
    bool inserted = false;  // true iff `m` was not present before
  };

  /// Find the state structurally equal to `m`, or intern it.  Dedup is
  /// exact: hash-equal candidates are confirmed by fragment-id tuple
  /// equality, which (fragments being interned) is machine structural
  /// equality.  When the state is new and the store already holds
  /// `max_states` states, nothing is stored and an invalid id returns.
  InternResult intern(const sem::Machine& m,
                      std::uint64_t max_states = ~0ull);

  /// Rebuild a full machine from its handle — for replay, verdict
  /// construction, counterexample traces.  Memory banks are shared by
  /// refcount with the store (copy-on-write on mutation); warps are
  /// deep copies.  The result compares structurally equal to the
  /// machine that was interned.
  [[nodiscard]] sem::Machine materialize(StateId id) const;

  /// The memoized structural hash the machine had when interned.
  [[nodiscard]] std::uint64_t machine_hash(StateId id) const;

  [[nodiscard]] std::uint64_t size() const {
    return n_states_.load(std::memory_order_relaxed);
  }

  /// Byte/dedup accounting.  `resident_bytes` is what the store
  /// actually holds (distinct fragments + per-state id tuples);
  /// `materialized_bytes` is what the same visited set would cost as
  /// full per-state sem::Machine copies (the pre-StateStore explorer
  /// representation).  Heap overheads are estimated, not measured.
  struct Stats {
    std::uint64_t states = 0;
    std::uint64_t warp_fragments = 0;
    std::uint64_t bank_fragments = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t materialized_bytes = 0;

    [[nodiscard]] double dedup_ratio() const {
      return resident_bytes == 0
                 ? 0.0
                 : static_cast<double>(materialized_bytes) /
                       static_cast<double>(resident_bytes);
    }
  };
  [[nodiscard]] Stats stats() const;

  /// Checkpoint codec (sched/checkpoint.h).  encode preserves the
  /// per-shard insertion order of every fragment pool and state shard,
  /// so decode reproduces the exact same fragment and state ids — the
  /// property that lets a resumed exploration keep using StateIds from
  /// before the crash.  encode requires external quiescence (no
  /// concurrent intern); decode requires `*this` to be empty and a
  /// matching hash mask, and throws support::BinError on malformed
  /// input or KernelError on misuse.
  void encode(support::BinWriter& w) const;
  void decode(support::BinReader& r);

  /// Per-state wire codec (src/dist frontier exchange).  encode_state
  /// writes one interned state as a self-contained record — memoized
  /// machine hash + the fragment payloads its tuple references — so a
  /// state crosses a process boundary without materializing a
  /// sem::Machine.  decode_state interns the record's fragments
  /// directly into *this* store (same dedup and cap semantics as
  /// intern(): existence before cap, invalid id when full) and returns
  /// the sender's machine hash alongside.  Both sides of an exchange
  /// must explore the same launch: the first decoded record establishes
  /// this store's shape, later records must match it.  decode_state
  /// throws support::BinError on malformed input and never leaves a
  /// partially registered state behind.
  struct WireIntern {
    InternResult result;
    std::uint64_t hash = 0;  // unmasked machine hash, as interned
  };
  void encode_state(StateId id, support::BinWriter& w) const;
  WireIntern decode_state(support::BinReader& r,
                          std::uint64_t max_states = ~0ull);

 private:
  // Fragment/state ids encode (shard, local index): shard in the low
  // bits, per-shard insertion index above.  Stable across the store's
  // lifetime; never reused.
  static constexpr unsigned kFragShardBits = 4;   // 16 fragment shards
  static constexpr unsigned kStateShardBits = 6;  // 64 state shards

  /// Result of one fragment-pool intern.
  struct Frag {
    std::uint32_t id = 0;
    std::uint64_t deep_bytes = 0;  // heap footprint of the fragment
    bool inserted = false;
  };

  struct WarpPool {
    struct Shard {
      mutable std::mutex mu;
      std::deque<sem::Warp> items;  // stable addresses
      std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
    };
    Shard shards[1u << kFragShardBits];

    /// Interns a deep copy when the warp is new.
    Frag intern(const sem::Warp& w, std::uint64_t mask);
    [[nodiscard]] const sem::Warp* get(std::uint32_t id) const;
  };

  struct BankPool {
    struct Shard {
      mutable std::mutex mu;
      std::deque<mem::Memory::BankRef> items;
      std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
    };
    Shard shards[1u << kFragShardBits];

    /// Interning a bank copies a shared_ptr, never bytes.
    Frag intern(const mem::Memory::BankRef& b, std::uint64_t mask);
    [[nodiscard]] mem::Memory::BankRef get(std::uint32_t id) const;
  };

  struct StateRec {
    std::uint64_t hash = 0;             // unmasked machine hash
    std::vector<std::uint32_t> tuple;   // warp ids, shared banks, G/C/P
  };
  struct StateShard {
    mutable std::mutex mu;
    std::deque<StateRec> recs;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
  };

  /// Grid/memory shape shared by every state of one exploration
  /// (warp counts per block never change across transitions).
  struct Shape {
    std::vector<std::uint32_t> warps_per_block;
    std::uint32_t shared_banks = 0;
    std::uint64_t shared_per_block = 0;
    std::uint32_t tuple_len = 0;
  };

  void ensure_shape(const sem::Machine& m);

  /// Shared tail of intern()/decode_state(): look the tuple up in its
  /// state shard, register it if new and under cap, book the stats.
  InternResult register_tuple(std::uint64_t h,
                              std::vector<std::uint32_t>&& tuple,
                              std::uint64_t max_states,
                              std::uint64_t fresh_bytes,
                              std::uint64_t full_bytes,
                              std::uint64_t fresh_warps,
                              std::uint64_t fresh_banks);

  const std::uint64_t hash_mask_ = ~0ull;

  std::once_flag shape_once_;
  Shape shape_;

  WarpPool warps_;
  BankPool banks_;
  StateShard state_shards_[1u << kStateShardBits];

  std::atomic<std::uint64_t> n_states_{0};
  std::atomic<std::uint64_t> n_warp_frags_{0};
  std::atomic<std::uint64_t> n_bank_frags_{0};
  std::atomic<std::uint64_t> resident_bytes_{0};
  std::atomic<std::uint64_t> materialized_bytes_{0};
};

}  // namespace cac::sched
