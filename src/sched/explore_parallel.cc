#include "sched/explore_parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sched/checkpoint.h"
#include "sched/explore_internal.h"
#include "support/diag.h"

namespace cac::sched {

namespace {

// ---------------------------------------------------------------------
// Phase-1 state graph.
//
// Machine states live interned in the shared StateStore; nodes hold
// only the StateId handle and live in per-shard deques (stable
// addresses; grown only under the shard mutex).  After a node is
// registered, its fields are written exclusively by the single worker
// expanding it; the work-queue mutexes order that hand-off, and the
// thread join orders the final reads by the replay.

struct Node;

/// One outgoing transition.  Exactly one of the three outcomes holds:
/// a child node (ok), a fault message (the child state is discarded,
/// as in the serial engine), or `overflow` (the child was dropped
/// because phase 1 reached the state cap).
struct Edge {
  sem::Choice choice;
  Node* child = nullptr;
  std::string fault;
  bool faulted = false;
  bool overflow = false;
};

struct Node {
  StateId id;
  /// Phase-1 expansion ran (terminal/stuck classified, edges built).
  /// False for nodes discovered at depth >= max_depth, and for
  /// frontier nodes of a budget-stopped (checkpointed) run.
  bool processed = false;
  bool terminal = false;
  bool stuck = false;
  std::string stuck_reason;
  std::vector<Edge> edges;

  // Replay-only scratch (single-threaded phase 2).
  enum class Color : std::uint8_t { White, OnStack, Done };
  Color color = Color::White;
};

/// Sharded concurrent visited set over the interning StateStore.
/// Shards are keyed by the memoized structural machine hash, so
/// structurally equal machines always race on the *same* shard mutex —
/// intern-and-register is atomic per state, and dedup semantics are
/// identical to the serial explorer's (structural equality inside the
/// store; a hash collision cannot fake a visit).
class VisitedShards {
 public:
  VisitedShards(std::uint64_t max_states, StateStore& store)
      : store_(store), max_states_(max_states) {}

  struct InsertResult {
    Node* node = nullptr;  // nullptr: dropped at the state cap
    bool inserted = false;
  };

  /// Find the node for the state structurally equal to `m`, or intern
  /// `m` and register a fresh node.  The caller must have computed
  /// m.hash() already (it is the owner thread).  `parent` (the node
  /// being expanded) seeds the store's delta encoding.
  InsertResult find_or_insert(const sem::Machine& m, std::uint64_t hash,
                              StateId parent = StateId{}) {
    Shard& s = shards_[shard_of(hash)];
    std::lock_guard<std::mutex> lock(s.mu);
    const auto r = store_.intern(m, max_states_, parent);
    if (!r.id.valid()) {
      cap_hit_.store(true, std::memory_order_relaxed);
      return {nullptr, false};
    }
    const auto [it, fresh] = s.node_of.try_emplace(r.id.v, nullptr);
    if (fresh) {
      s.nodes.push_back(Node{});
      Node* n = &s.nodes.back();
      n->id = r.id;
      it->second = n;
    }
    return {it->second, fresh};
  }

  /// Resume path (single-threaded, before workers start): register a
  /// node for a state that is already interned in the store.
  Node* seed(StateId id, std::uint64_t hash) {
    Shard& s = shards_[shard_of(hash)];
    s.nodes.push_back(Node{});
    Node* n = &s.nodes.back();
    n->id = id;
    s.node_of[id.v] = n;
    return n;
  }

  /// Visit every registered node.  Requires quiescence (workers parked
  /// or joined).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& s : shards_) {
      for (const Node& n : s.nodes) fn(n);
    }
  }

  [[nodiscard]] bool cap_hit() const {
    return cap_hit_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr unsigned kShardCount = 64;

  static unsigned shard_of(std::uint64_t hash) {
    // The machine hash is splitmix-finalized; the top bits are as good
    // as any (the store's internal sharding uses the low bits).
    return static_cast<unsigned>(hash >> 58) & (kShardCount - 1);
  }

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint32_t, Node*> node_of;  // StateId.v -> node
    std::deque<Node> nodes;  // stable addresses
  };

  StateStore& store_;
  Shard shards_[kShardCount];
  std::atomic<bool> cap_hit_{false};
  const std::uint64_t max_states_;
};

struct Task {
  Node* node = nullptr;
  std::uint64_t depth = 0;
};

/// Per-worker deque: the owner pushes/pops at the back (depth-first,
/// cache-warm), thieves take from the front (breadth-first, large
/// subtrees).  A plain mutex per deque is plenty at this granularity —
/// one lock per state expansion.
struct WorkQueue {
  std::mutex mu;
  std::deque<Task> q;

  void push(Task t) {
    std::lock_guard<std::mutex> lock(mu);
    q.push_back(t);
  }
  bool pop_back(Task& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return false;
    out = q.back();
    q.pop_back();
    return true;
  }
  bool steal_front(Task& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return false;
    out = q.front();
    q.pop_front();
    return true;
  }
};

/// Phase 1: expand every distinct reachable state exactly once.
///
/// Crash safety rides on a three-state control protocol the main
/// thread drives while workers run:
///
///   kRun   -> workers pop/steal/expand as fast as they can;
///   kPause -> workers park at the loop-top gate; once every worker is
///             parked or exited the graph is quiescent and the main
///             thread serializes a checkpoint, then resumes;
///   kStop  -> workers exit at the gate.  A task already popped is
///             fully expanded first (its children reach the queues),
///             so the frontier captured afterwards is exactly the set
///             of discovered-but-unexpanded states.
///
/// All control state lives under one mutex; per-node writes by workers
/// are ordered before the main thread's reads by that same mutex
/// (gate lock -> paused_/exited_ increment -> monitor observes), so
/// checkpoint serialization is race-free.
class GraphBuilder {
 public:
  GraphBuilder(const ptx::Program& prg, const sem::KernelConfig& kc,
               const ExploreOptions& opts,
               std::shared_ptr<StateStore> store, unsigned n_workers)
      : prg_(prg),
        kc_(kc),
        opts_(opts),
        store_ptr_(std::move(store)),
        store_(*store_ptr_),
        visited_(opts.max_states, store_),
        queues_(n_workers) {}

  struct Outcome {
    Node* root = nullptr;
    /// Transient budget/signal reason this run stopped early, or None
    /// when phase 1 ran to completion.
    ExploreResult::Limit stopped = ExploreResult::Limit::None;
    bool checkpointed = false;
    std::uint64_t checkpoint_write_failures = 0;
  };

  /// Build (or, with `resume`, finish building) the state graph.
  /// A null root in the outcome means even the initial state was
  /// dropped (max_states == 0 — the serial engine reports the same as
  /// a limits-hit non-visit).
  Outcome build(const sem::Machine& initial, const Checkpoint* resume) {
    if (resume != nullptr) {
      root_ = restore(*resume);
    } else {
      const sem::Machine root_copy(initial);
      const std::uint64_t h = root_copy.hash();
      const auto r = visited_.find_or_insert(root_copy, h);
      root_ = r.node;
      if (!r.inserted) return {r.node, ExploreResult::Limit::None, false};
      pending_.store(1, std::memory_order_relaxed);
      queues_[0].push(Task{r.node, 0});
    }

    std::vector<std::thread> workers;
    workers.reserve(queues_.size());
    for (unsigned i = 0; i < queues_.size(); ++i) {
      workers.emplace_back([this, i] { worker_loop(i); });
    }

    Outcome out;
    out.root = root_;
    monitor(out);
    for (std::thread& t : workers) t.join();

    if (!error_.empty()) throw KernelError(error_);

    if (out.stopped != ExploreResult::Limit::None &&
        !opts_.checkpoint_path.empty()) {
      // Final checkpoint after the join: fully quiescent by
      // construction.
      save_checkpoint();
    }
    out.checkpointed = checkpointed_;
    out.checkpoint_write_failures = checkpoint_write_failures_;
    return out;
  }

  [[nodiscard]] bool cap_hit() const { return visited_.cap_hit(); }

 private:
  enum class Mode : std::uint8_t { kRun, kPause, kStop };

  /// Rebuild graph + frontier from a checkpoint (single-threaded; the
  /// store has already been decoded into store_).
  Node* restore(const Checkpoint& ck) {
    std::unordered_map<std::uint32_t, Node*> by_id;
    by_id.reserve(ck.nodes.size());
    for (const Checkpoint::NodeRec& nr : ck.nodes) {
      Node* n = visited_.seed(nr.id, store_.machine_hash(nr.id));
      n->processed = nr.processed;
      n->terminal = nr.terminal;
      n->stuck = nr.stuck;
      n->stuck_reason = nr.stuck_reason;
      by_id.emplace(nr.id.v, n);
    }
    const auto lookup = [&](StateId id) -> Node* {
      const auto it = by_id.find(id.v);
      if (it == by_id.end()) {
        throw CheckpointError(CheckpointError::Kind::Corrupt,
                              "graph references unknown node");
      }
      return it->second;
    };
    for (const Checkpoint::NodeRec& nr : ck.nodes) {
      Node* n = by_id.at(nr.id.v);
      n->edges.reserve(nr.edges.size());
      for (const Checkpoint::EdgeRec& er : nr.edges) {
        Edge e;
        e.choice = er.choice;
        e.faulted = er.faulted;
        e.overflow = er.overflow;
        e.fault = er.fault;
        if (er.child.valid()) e.child = lookup(er.child);
        n->edges.push_back(std::move(e));
      }
    }
    std::uint64_t k = 0;
    for (const auto& [id, depth] : ck.frontier) {
      queues_[k++ % queues_.size()].push(Task{lookup(id), depth});
    }
    pending_.store(ck.frontier.size(), std::memory_order_relaxed);
    return lookup(ck.root);
  }

  void worker_loop(unsigned id) {
    Task t;
    for (;;) {
      // Control gate: park on pause, leave on stop.  Everything this
      // worker wrote to nodes before reaching the gate is ordered
      // before the monitor's reads by ctl_mu_.
      {
        std::unique_lock<std::mutex> lk(ctl_mu_);
        while (mode_ == Mode::kPause) {
          ++paused_;
          monitor_cv_.notify_all();
          ctl_cv_.wait(lk, [&] { return mode_ != Mode::kPause; });
          --paused_;
        }
        if (mode_ == Mode::kStop) break;
      }

      bool got = queues_[id].pop_back(t);
      for (unsigned j = 1; !got && j < queues_.size(); ++j) {
        got = queues_[(id + j) % queues_.size()].steal_front(t);
      }
      if (!got) {
        if (pending_.load(std::memory_order_acquire) == 0) break;
        std::this_thread::yield();
        continue;
      }
      try {
        expand(id, t);
      } catch (const std::exception& e) {
        failed_.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mu_);
        if (error_.empty()) error_ = e.what();
        // Drain without expanding so every worker exits promptly.
      }
      pending_.fetch_sub(1, std::memory_order_release);
    }
    std::lock_guard<std::mutex> lk(ctl_mu_);
    ++exited_;
    monitor_cv_.notify_all();
  }

  void expand(unsigned id, const Task& t) {
    // Poisoned run: stop growing the graph so workers drain quickly.
    if (failed_.load(std::memory_order_relaxed)) return;
    Node* node = t.node;
    const sem::Machine state = store_.materialize(node->id);

    if (sem::terminated(prg_, state.grid)) {
      node->terminal = true;
      node->processed = true;
      return;
    }
    auto eligible = sem::eligible_choices(prg_, state.grid);
    if (opts_.partial_order_reduction) {
      internal::reduce_choices(prg_, state.grid, opts_.por_independent_pcs,
                               eligible);
    }
    if (eligible.empty()) {
      node->stuck = true;
      node->stuck_reason = sem::stuck_reason(prg_, state.grid);
      node->processed = true;
      return;
    }
    if (t.depth >= opts_.max_depth) {
      // Depth-gated: the replay reports DepthExceeded / limits-hit
      // when it reaches this node, mirroring the serial engine.
      return;
    }

    node->edges.reserve(eligible.size());
    for (const sem::Choice& c : eligible) {
      Edge e;
      e.choice = c;
      sem::Machine child(state);
      const sem::StepResult sr =
          sem::apply_choice(prg_, kc_, child, c, opts_.step_opts, nullptr);
      if (!sr.ok()) {
        e.faulted = true;
        e.fault = sr.fault;
        node->edges.push_back(std::move(e));
        continue;
      }
      const std::uint64_t h = child.hash();  // memoized pre-intern
      const auto r = visited_.find_or_insert(child, h, node->id);
      if (r.node == nullptr) {
        e.overflow = true;
        node->edges.push_back(std::move(e));
        continue;
      }
      e.child = r.node;
      node->edges.push_back(std::move(e));
      if (r.inserted) {
        pending_.fetch_add(1, std::memory_order_relaxed);
        queues_[id].push(Task{r.node, t.depth + 1});
      }
    }
    node->processed = true;
  }

  /// Main-thread loop while workers run: waits for completion, and
  /// enforces budgets / periodic checkpoints when configured.
  void monitor(Outcome& out) {
    const unsigned n = static_cast<unsigned>(queues_.size());
    const bool budgeted = opts_.stop_flag != nullptr ||
                          opts_.stop_after_states != 0 ||
                          opts_.deadline_ms != 0 ||
                          opts_.mem_limit_bytes != 0;
    const bool periodic = !opts_.checkpoint_path.empty() &&
                          opts_.checkpoint_every_states != 0;

    std::unique_lock<std::mutex> lk(ctl_mu_);
    if (!budgeted && !periodic) {
      monitor_cv_.wait(lk, [&] { return exited_ == n; });
      return;
    }

    const auto t_start = std::chrono::steady_clock::now();
    std::uint64_t next_checkpoint_at =
        periodic ? store_.size() + opts_.checkpoint_every_states : ~0ull;

    for (;;) {
      monitor_cv_.wait_for(lk, std::chrono::milliseconds(2),
                           [&] { return exited_ == n; });
      if (exited_ == n) return;

      const ExploreResult::Limit stop = budget_tripped(t_start);
      if (stop != ExploreResult::Limit::None) {
        out.stopped = stop;
        mode_ = Mode::kStop;
        ctl_cv_.notify_all();
        monitor_cv_.wait(lk, [&] { return exited_ == n; });
        return;  // final checkpoint happens after the join
      }
      if (store_.size() >= next_checkpoint_at) {
        // Quiesce -> serialize -> resume.
        mode_ = Mode::kPause;
        ctl_cv_.notify_all();
        monitor_cv_.wait(lk, [&] { return paused_ + exited_ == n; });
        save_checkpoint();
        next_checkpoint_at = store_.size() + opts_.checkpoint_every_states;
        mode_ = Mode::kRun;
        ctl_cv_.notify_all();
      }
    }
  }

  [[nodiscard]] ExploreResult::Limit budget_tripped(
      std::chrono::steady_clock::time_point t_start) const {
    if (opts_.stop_flag != nullptr &&
        opts_.stop_flag->load(std::memory_order_relaxed)) {
      return ExploreResult::Limit::Interrupted;
    }
    if (opts_.stop_after_states != 0 &&
        store_.size() >= opts_.stop_after_states) {
      return ExploreResult::Limit::Interrupted;
    }
    if (opts_.deadline_ms != 0 &&
        std::chrono::steady_clock::now() - t_start >=
            std::chrono::milliseconds(opts_.deadline_ms)) {
      return ExploreResult::Limit::Deadline;
    }
    if (opts_.mem_limit_bytes != 0) {
      std::uint64_t rss = current_rss_bytes();
      // Spilled segments are reclaimable page cache, not working-set
      // memory — exclude them or spilling could never relieve a
      // tripped limit (see the serial engine's identical adjustment).
      const std::uint64_t spilled = store_.stats().spilled_bytes;
      rss = rss > spilled ? rss - spilled : 0;
      if (rss != 0 && rss >= opts_.mem_limit_bytes) {
        return ExploreResult::Limit::MemLimit;
      }
    }
    return ExploreResult::Limit::None;
  }

  /// Serialize graph + frontier + store.  Caller guarantees
  /// quiescence (pause protocol or post-join).
  void save_checkpoint() {
    Checkpoint ck;
    ck.engine = Checkpoint::Engine::Parallel;
    ck.program_fp = program_fingerprint(prg_);
    ck.config_fp = config_fingerprint(kc_);
    ck.options = opts_;  // only structural fields are persisted
    ck.store = store_ptr_;
    ck.root = root_ != nullptr ? root_->id : StateId{};
    visited_.for_each([&](const Node& n) {
      Checkpoint::NodeRec nr;
      nr.id = n.id;
      nr.processed = n.processed;
      nr.terminal = n.terminal;
      nr.stuck = n.stuck;
      nr.stuck_reason = n.stuck_reason;
      nr.edges.reserve(n.edges.size());
      for (const Edge& e : n.edges) {
        Checkpoint::EdgeRec er;
        er.choice = e.choice;
        er.child = e.child != nullptr ? e.child->id : StateId{};
        er.faulted = e.faulted;
        er.overflow = e.overflow;
        er.fault = e.fault;
        nr.edges.push_back(std::move(er));
      }
      ck.nodes.push_back(std::move(nr));
    });
    for (WorkQueue& q : queues_) {
      std::lock_guard<std::mutex> lock(q.mu);
      for (const Task& t : q.q) {
        ck.frontier.emplace_back(t.node->id, t.depth);
      }
    }
    try {
      ck.save(opts_.checkpoint_path);
      checkpointed_ = true;
    } catch (const CheckpointError& e) {
      // Same policy as the serial engine: log, keep exploring, retry
      // at the next cadence — persistence failure never ends a run.
      ++checkpoint_write_failures_;
      std::fprintf(stderr,
                   "cacval: warning: checkpoint write failed (will retry "
                   "next cadence): %s\n",
                   e.what());
    }
  }

  const ptx::Program& prg_;
  const sem::KernelConfig& kc_;
  const ExploreOptions& opts_;
  std::shared_ptr<StateStore> store_ptr_;
  StateStore& store_;
  VisitedShards visited_;
  std::vector<WorkQueue> queues_;
  Node* root_ = nullptr;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<bool> failed_{false};
  std::mutex error_mu_;
  std::string error_;  // first worker exception, guarded by error_mu_
  bool checkpointed_ = false;
  std::uint64_t checkpoint_write_failures_ = 0;

  // Worker control protocol, all guarded by ctl_mu_.
  std::mutex ctl_mu_;
  std::condition_variable ctl_cv_;      // workers park here on pause
  std::condition_variable monitor_cv_;  // monitor waits for quiescence
  Mode mode_ = Mode::kRun;
  unsigned paused_ = 0;
  unsigned exited_ = 0;
};

/// Phase 2: replay the serial DFS over the integer graph.  This is a
/// line-for-line mirror of the loop in explore.cc — same enter()
/// checks in the same order, same path bookkeeping — so the produced
/// ExploreResult is byte-identical to the serial engine's for runs
/// that stay within the limits.
///
/// `stop_reason` is None for completed graphs.  For a budget-stopped
/// run the graph is incomplete: reaching an unexpanded node then
/// reports the budget as the tripped limit (not MaxDepth), mirroring
/// the serial engine's precise limit_hit on a graceful stop.
ExploreResult replay(Node* root, const ExploreOptions& opts,
                     ExploreResult::Limit stop_reason) {
  ExploreResult result;
  result.min_steps_to_termination = ~0ull;

  internal::FinalsSet finals;
  struct Frame {
    Node* node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  std::vector<sem::Choice> path;
  std::uint64_t entered = 0;
  bool limits_hit = false;

  auto hit_limit = [&](ExploreResult::Limit l) {
    limits_hit = true;
    if (result.limit_hit == ExploreResult::Limit::None) result.limit_hit = l;
  };

  auto add_violation = [&](Violation::Kind kind, std::string msg) {
    result.violations.push_back({kind, std::move(msg), path});
  };

  auto enter = [&](Node* nd) -> bool {
    if (nd == nullptr) {  // overflow edge: phase 1 dropped the child
      hit_limit(ExploreResult::Limit::MaxStates);
      return false;
    }
    if (nd->color == Node::Color::OnStack) {
      add_violation(Violation::Kind::Cycle,
                    "schedule revisits an earlier state: a scheduler can "
                    "loop forever");
      return false;
    }
    if (nd->color == Node::Color::Done) return false;
    if (entered >= opts.max_states) {
      hit_limit(ExploreResult::Limit::MaxStates);
      return false;
    }
    ++entered;
    ++result.states_visited;

    if (nd->terminal) {
      nd->color = Node::Color::Done;
      result.min_steps_to_termination =
          std::min<std::uint64_t>(result.min_steps_to_termination,
                                  path.size());
      result.max_steps_to_termination =
          std::max<std::uint64_t>(result.max_steps_to_termination,
                                  path.size());
      finals.insert(nd->id);
      return false;
    }
    if (nd->stuck) {
      nd->color = Node::Color::Done;
      add_violation(Violation::Kind::Stuck, nd->stuck_reason);
      return false;
    }
    if (!nd->processed) {
      nd->color = Node::Color::Done;
      if (stop_reason != ExploreResult::Limit::None) {
        // Budget-stopped run: this node sits on the unexpanded
        // frontier, not past the depth bound.
        hit_limit(stop_reason);
        return false;
      }
      // Phase 1 depth-gated this node.  When the replay path is also
      // at the bound this is exactly the serial DepthExceeded event;
      // otherwise (a shorter path reached it first here) we can only
      // flag the run as non-exhaustive.
      hit_limit(ExploreResult::Limit::MaxDepth);
      if (path.size() >= opts.max_depth) {
        add_violation(Violation::Kind::DepthExceeded,
                      "path exceeded the exploration depth bound");
      }
      return false;
    }
    if (path.size() >= opts.max_depth) {
      nd->color = Node::Color::Done;
      hit_limit(ExploreResult::Limit::MaxDepth);
      add_violation(Violation::Kind::DepthExceeded,
                    "path exceeded the exploration depth bound");
      return false;
    }
    nd->color = Node::Color::OnStack;
    stack.push_back(Frame{nd, 0});
    return true;
  };

  enter(root);

  auto should_stop = [&] {
    return opts.stop_at_first_violation && !result.violations.empty();
  };

  while (!stack.empty() && !should_stop()) {
    Frame& top = stack.back();
    if (top.next >= top.node->edges.size()) {
      top.node->color = Node::Color::Done;
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const Edge& e = top.node->edges[top.next++];
    ++result.transitions;
    path.push_back(e.choice);
    if (e.faulted) {
      add_violation(Violation::Kind::Fault, e.fault);
      path.pop_back();
      continue;
    }
    if (!enter(e.overflow ? nullptr : e.child)) path.pop_back();
  }

  if (result.min_steps_to_termination == ~0ull) {
    result.min_steps_to_termination = 0;
  }
  result.final_ids = finals.take();
  result.exhaustive = !limits_hit && stack.empty();
  return result;
}

}  // namespace

ExploreResult explore_parallel(const ptx::Program& prg,
                               const sem::KernelConfig& kc,
                               const sem::Machine& initial,
                               const ExploreOptions& opts,
                               const Checkpoint* resume) {
  unsigned n = opts.num_threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());

  std::shared_ptr<StateStore> store;
  if (resume != nullptr) {
    verify_resume(*resume, Checkpoint::Engine::Parallel, prg, kc, opts);
    store = resume->store;
    // Tier knobs are transient: the resumed run's own settings apply.
    store->configure(store_options(opts));
  } else {
    store = std::make_shared<StateStore>(store_options(opts));
  }

  GraphBuilder builder(prg, kc, opts, store, n);
  // A null root means even the initial state was over the cap
  // (max_states == 0); replay's enter(nullptr) turns that into the
  // same empty, non-exhaustive result the serial engine reports.
  const GraphBuilder::Outcome out = builder.build(initial, resume);
  ExploreResult result = replay(out.root, opts, out.stopped);
  result.store_stats = store->stats();
  result.store = std::move(store);
  result.checkpointed = out.checkpointed;
  result.checkpoint_write_failures = out.checkpoint_write_failures;
  return result;
}

}  // namespace cac::sched
