#include "sched/explore_parallel.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sched/explore_internal.h"
#include "support/diag.h"

namespace cac::sched {

namespace {

// ---------------------------------------------------------------------
// Phase-1 state graph.
//
// Machine states live interned in the shared StateStore; nodes hold
// only the StateId handle and live in per-shard deques (stable
// addresses; grown only under the shard mutex).  After a node is
// registered, its fields are written exclusively by the single worker
// expanding it; the work-queue mutexes order that hand-off, and the
// thread join orders the final reads by the replay.

struct Node;

/// One outgoing transition.  Exactly one of the three outcomes holds:
/// a child node (ok), a fault message (the child state is discarded,
/// as in the serial engine), or `overflow` (the child was dropped
/// because phase 1 reached the state cap).
struct Edge {
  sem::Choice choice;
  Node* child = nullptr;
  std::string fault;
  bool faulted = false;
  bool overflow = false;
};

struct Node {
  StateId id;
  /// Phase-1 expansion ran (terminal/stuck classified, edges built).
  /// False only for nodes discovered at depth >= max_depth.
  bool processed = false;
  bool terminal = false;
  bool stuck = false;
  std::string stuck_reason;
  std::vector<Edge> edges;

  // Replay-only scratch (single-threaded phase 2).
  enum class Color : std::uint8_t { White, OnStack, Done };
  Color color = Color::White;
};

/// Sharded concurrent visited set over the interning StateStore.
/// Shards are keyed by the memoized structural machine hash, so
/// structurally equal machines always race on the *same* shard mutex —
/// intern-and-register is atomic per state, and dedup semantics are
/// identical to the serial explorer's (structural equality inside the
/// store; a hash collision cannot fake a visit).
class VisitedShards {
 public:
  VisitedShards(std::uint64_t max_states, StateStore& store)
      : store_(store), max_states_(max_states) {}

  struct InsertResult {
    Node* node = nullptr;  // nullptr: dropped at the state cap
    bool inserted = false;
  };

  /// Find the node for the state structurally equal to `m`, or intern
  /// `m` and register a fresh node.  The caller must have computed
  /// m.hash() already (it is the owner thread).
  InsertResult find_or_insert(const sem::Machine& m, std::uint64_t hash) {
    Shard& s = shards_[shard_of(hash)];
    std::lock_guard<std::mutex> lock(s.mu);
    const auto r = store_.intern(m, max_states_);
    if (!r.id.valid()) {
      cap_hit_.store(true, std::memory_order_relaxed);
      return {nullptr, false};
    }
    const auto [it, fresh] = s.node_of.try_emplace(r.id.v, nullptr);
    if (fresh) {
      s.nodes.push_back(Node{});
      Node* n = &s.nodes.back();
      n->id = r.id;
      it->second = n;
    }
    return {it->second, fresh};
  }

  [[nodiscard]] bool cap_hit() const {
    return cap_hit_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr unsigned kShardCount = 64;

  static unsigned shard_of(std::uint64_t hash) {
    // The machine hash is splitmix-finalized; the top bits are as good
    // as any (the store's internal sharding uses the low bits).
    return static_cast<unsigned>(hash >> 58) & (kShardCount - 1);
  }

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint32_t, Node*> node_of;  // StateId.v -> node
    std::deque<Node> nodes;  // stable addresses
  };

  StateStore& store_;
  Shard shards_[kShardCount];
  std::atomic<bool> cap_hit_{false};
  const std::uint64_t max_states_;
};

struct Task {
  Node* node = nullptr;
  std::uint64_t depth = 0;
};

/// Per-worker deque: the owner pushes/pops at the back (depth-first,
/// cache-warm), thieves take from the front (breadth-first, large
/// subtrees).  A plain mutex per deque is plenty at this granularity —
/// one lock per state expansion.
struct WorkQueue {
  std::mutex mu;
  std::deque<Task> q;

  void push(Task t) {
    std::lock_guard<std::mutex> lock(mu);
    q.push_back(t);
  }
  bool pop_back(Task& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return false;
    out = q.back();
    q.pop_back();
    return true;
  }
  bool steal_front(Task& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return false;
    out = q.front();
    q.pop_front();
    return true;
  }
};

/// Phase 1: expand every distinct reachable state exactly once.
class GraphBuilder {
 public:
  GraphBuilder(const ptx::Program& prg, const sem::KernelConfig& kc,
               const ExploreOptions& opts, StateStore& store,
               unsigned n_workers)
      : prg_(prg),
        kc_(kc),
        opts_(opts),
        store_(store),
        visited_(opts.max_states, store),
        queues_(n_workers) {}

  /// Returns the root node, or nullptr when even the initial state was
  /// dropped (max_states == 0 — the serial engine reports the same as
  /// a limits-hit non-visit).
  Node* build(const sem::Machine& initial) {
    const sem::Machine root_copy(initial);
    const std::uint64_t h = root_copy.hash();
    const auto root = visited_.find_or_insert(root_copy, h);
    if (!root.inserted) return root.node;  // cap 0, or... only cap 0
    pending_.store(1, std::memory_order_relaxed);
    queues_[0].push(Task{root.node, 0});

    std::vector<std::thread> workers;
    workers.reserve(queues_.size());
    for (unsigned i = 0; i < queues_.size(); ++i) {
      workers.emplace_back([this, i] { worker_loop(i); });
    }
    for (std::thread& t : workers) t.join();

    if (!error_.empty()) throw KernelError(error_);
    return root.node;
  }

  [[nodiscard]] bool cap_hit() const { return visited_.cap_hit(); }

 private:
  void worker_loop(unsigned id) {
    Task t;
    for (;;) {
      bool got = queues_[id].pop_back(t);
      for (unsigned j = 1; !got && j < queues_.size(); ++j) {
        got = queues_[(id + j) % queues_.size()].steal_front(t);
      }
      if (!got) {
        if (pending_.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }
      try {
        expand(id, t);
      } catch (const std::exception& e) {
        failed_.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mu_);
        if (error_.empty()) error_ = e.what();
        // Drain without expanding so every worker exits promptly.
      }
      pending_.fetch_sub(1, std::memory_order_release);
    }
  }

  void expand(unsigned id, const Task& t) {
    // Poisoned run: stop growing the graph so workers drain quickly.
    if (failed_.load(std::memory_order_relaxed)) return;
    Node* node = t.node;
    const sem::Machine state = store_.materialize(node->id);

    if (sem::terminated(prg_, state.grid)) {
      node->terminal = true;
      node->processed = true;
      return;
    }
    auto eligible = sem::eligible_choices(prg_, state.grid);
    if (opts_.partial_order_reduction) {
      internal::reduce_choices(prg_, state.grid, eligible);
    }
    if (eligible.empty()) {
      node->stuck = true;
      node->stuck_reason = sem::stuck_reason(prg_, state.grid);
      node->processed = true;
      return;
    }
    if (t.depth >= opts_.max_depth) {
      // Depth-gated: the replay reports DepthExceeded / limits-hit
      // when it reaches this node, mirroring the serial engine.
      return;
    }

    node->edges.reserve(eligible.size());
    for (const sem::Choice& c : eligible) {
      Edge e;
      e.choice = c;
      sem::Machine child(state);
      const sem::StepResult sr =
          sem::apply_choice(prg_, kc_, child, c, opts_.step_opts, nullptr);
      if (!sr.ok()) {
        e.faulted = true;
        e.fault = sr.fault;
        node->edges.push_back(std::move(e));
        continue;
      }
      const std::uint64_t h = child.hash();  // memoized pre-intern
      const auto r = visited_.find_or_insert(child, h);
      if (r.node == nullptr) {
        e.overflow = true;
        node->edges.push_back(std::move(e));
        continue;
      }
      e.child = r.node;
      node->edges.push_back(std::move(e));
      if (r.inserted) {
        pending_.fetch_add(1, std::memory_order_relaxed);
        queues_[id].push(Task{r.node, t.depth + 1});
      }
    }
    node->processed = true;
  }

  const ptx::Program& prg_;
  const sem::KernelConfig& kc_;
  const ExploreOptions& opts_;
  StateStore& store_;
  VisitedShards visited_;
  std::vector<WorkQueue> queues_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<bool> failed_{false};
  std::mutex error_mu_;
  std::string error_;  // first worker exception, guarded by error_mu_
};

/// Phase 2: replay the serial DFS over the integer graph.  This is a
/// line-for-line mirror of the loop in explore.cc — same enter()
/// checks in the same order, same path bookkeeping — so the produced
/// ExploreResult is byte-identical to the serial engine's for runs
/// that stay within the limits.
ExploreResult replay(Node* root, const ExploreOptions& opts) {
  ExploreResult result;
  result.min_steps_to_termination = ~0ull;

  internal::FinalsSet finals;
  struct Frame {
    Node* node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  std::vector<sem::Choice> path;
  std::uint64_t entered = 0;
  bool limits_hit = false;

  auto hit_limit = [&](ExploreResult::Limit l) {
    limits_hit = true;
    if (result.limit_hit == ExploreResult::Limit::None) result.limit_hit = l;
  };

  auto add_violation = [&](Violation::Kind kind, std::string msg) {
    result.violations.push_back({kind, std::move(msg), path});
  };

  auto enter = [&](Node* nd) -> bool {
    if (nd == nullptr) {  // overflow edge: phase 1 dropped the child
      hit_limit(ExploreResult::Limit::MaxStates);
      return false;
    }
    if (nd->color == Node::Color::OnStack) {
      add_violation(Violation::Kind::Cycle,
                    "schedule revisits an earlier state: a scheduler can "
                    "loop forever");
      return false;
    }
    if (nd->color == Node::Color::Done) return false;
    if (entered >= opts.max_states) {
      hit_limit(ExploreResult::Limit::MaxStates);
      return false;
    }
    ++entered;
    ++result.states_visited;

    if (nd->terminal) {
      nd->color = Node::Color::Done;
      result.min_steps_to_termination =
          std::min<std::uint64_t>(result.min_steps_to_termination,
                                  path.size());
      result.max_steps_to_termination =
          std::max<std::uint64_t>(result.max_steps_to_termination,
                                  path.size());
      finals.insert(nd->id);
      return false;
    }
    if (nd->stuck) {
      nd->color = Node::Color::Done;
      add_violation(Violation::Kind::Stuck, nd->stuck_reason);
      return false;
    }
    if (!nd->processed) {
      // Phase 1 depth-gated this node.  When the replay path is also
      // at the bound this is exactly the serial DepthExceeded event;
      // otherwise (a shorter path reached it first here) we can only
      // flag the run as non-exhaustive.
      nd->color = Node::Color::Done;
      hit_limit(ExploreResult::Limit::MaxDepth);
      if (path.size() >= opts.max_depth) {
        add_violation(Violation::Kind::DepthExceeded,
                      "path exceeded the exploration depth bound");
      }
      return false;
    }
    if (path.size() >= opts.max_depth) {
      nd->color = Node::Color::Done;
      hit_limit(ExploreResult::Limit::MaxDepth);
      add_violation(Violation::Kind::DepthExceeded,
                    "path exceeded the exploration depth bound");
      return false;
    }
    nd->color = Node::Color::OnStack;
    stack.push_back(Frame{nd, 0});
    return true;
  };

  enter(root);

  auto should_stop = [&] {
    return opts.stop_at_first_violation && !result.violations.empty();
  };

  while (!stack.empty() && !should_stop()) {
    Frame& top = stack.back();
    if (top.next >= top.node->edges.size()) {
      top.node->color = Node::Color::Done;
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const Edge& e = top.node->edges[top.next++];
    ++result.transitions;
    path.push_back(e.choice);
    if (e.faulted) {
      add_violation(Violation::Kind::Fault, e.fault);
      path.pop_back();
      continue;
    }
    if (!enter(e.overflow ? nullptr : e.child)) path.pop_back();
  }

  if (result.min_steps_to_termination == ~0ull) {
    result.min_steps_to_termination = 0;
  }
  result.final_ids = finals.take();
  result.exhaustive = !limits_hit && stack.empty();
  return result;
}

}  // namespace

ExploreResult explore_parallel(const ptx::Program& prg,
                               const sem::KernelConfig& kc,
                               const sem::Machine& initial,
                               const ExploreOptions& opts) {
  unsigned n = opts.num_threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());

  auto store = std::make_shared<StateStore>();
  GraphBuilder builder(prg, kc, opts, *store, n);
  // A null root means even the initial state was over the cap
  // (max_states == 0); replay's enter(nullptr) turns that into the
  // same empty, non-exhaustive result the serial engine reports.
  ExploreResult result = replay(builder.build(initial), opts);
  result.store = std::move(store);
  return result;
}

}  // namespace cac::sched
