// Schedulers: policies that resolve the nondeterministic choice of
// Fig. 3 ("warps are selected by the scheduler, but the details of the
// scheduling can vary between GPUs", paper §III-9).
//
// The semantics kernel only exposes the *set* of applicable rule
// instances (sem::eligible_choices); a Scheduler picks one.  Proofs in
// the paper quantify over all schedules; the analogue here is
// sched::explore (explore.h), which enumerates every choice sequence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sem/step.h"

namespace cac::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Pick one of the eligible choices (guaranteed non-empty).
  virtual sem::Choice pick(const std::vector<sem::Choice>& eligible,
                           const sem::Machine& m) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Always the first eligible choice — the canonical deterministic
/// scheduler the transparency theorem compares against.
class FirstChoiceScheduler final : public Scheduler {
 public:
  sem::Choice pick(const std::vector<sem::Choice>& eligible,
                   const sem::Machine& m) override;
  [[nodiscard]] std::string name() const override { return "first-choice"; }
};

/// Rotates across eligible choices, giving every warp progress.
class RoundRobinScheduler final : public Scheduler {
 public:
  sem::Choice pick(const std::vector<sem::Choice>& eligible,
                   const sem::Machine& m) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  std::uint64_t next_ = 0;
};

/// Seeded pseudo-random choice (xorshift64*); reproducible adversarial
/// schedules for property tests.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : state_(seed | 1) {}
  sem::Choice pick(const std::vector<sem::Choice>& eligible,
                   const sem::Machine& m) override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  std::uint64_t state_;
};

/// Outcome of running a machine to completion under one scheduler.
struct RunResult {
  enum class Status : std::uint8_t { Terminated, Stuck, Fault, BoundExceeded };
  Status status = Status::BoundExceeded;
  std::uint64_t steps = 0;
  std::string message;       // stuck reason / fault description
  sem::StepEvents events;    // accumulated diagnostics over the run
  std::vector<sem::Choice> trace;  // the schedule actually taken

  [[nodiscard]] bool terminated() const {
    return status == Status::Terminated;
  }
};

/// Drive the machine with a scheduler until termination, deadlock,
/// fault, or the step bound.  Mutates `m` to the final state.
RunResult run(const ptx::Program& prg, const sem::KernelConfig& kc,
              sem::Machine& m, Scheduler& sched,
              std::uint64_t max_steps = 1u << 20,
              const sem::StepOptions& opts = {});

std::string to_string(RunResult::Status s);

}  // namespace cac::sched
