#include "sched/scheduler.h"

namespace cac::sched {

sem::Choice FirstChoiceScheduler::pick(
    const std::vector<sem::Choice>& eligible, const sem::Machine&) {
  return eligible.front();
}

sem::Choice RoundRobinScheduler::pick(
    const std::vector<sem::Choice>& eligible, const sem::Machine&) {
  return eligible[next_++ % eligible.size()];
}

sem::Choice RandomScheduler::pick(const std::vector<sem::Choice>& eligible,
                                  const sem::Machine&) {
  // xorshift64* — small, seedable, good enough for schedule fuzzing.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  const std::uint64_t r = state_ * 0x2545F4914F6CDD1Dull;
  return eligible[r % eligible.size()];
}

RunResult run(const ptx::Program& prg, const sem::KernelConfig& kc,
              sem::Machine& m, Scheduler& sched, std::uint64_t max_steps,
              const sem::StepOptions& opts) {
  RunResult result;
  sem::StepEvents events;
  for (std::uint64_t step = 0; step < max_steps; ++step) {
    if (sem::terminated(prg, m.grid)) {
      result.status = RunResult::Status::Terminated;
      result.steps = step;
      return result;
    }
    const auto eligible = sem::eligible_choices(prg, m.grid);
    if (eligible.empty()) {
      result.status = RunResult::Status::Stuck;
      result.steps = step;
      result.message = sem::stuck_reason(prg, m.grid);
      return result;
    }
    const sem::Choice c = sched.pick(eligible, m);
    result.trace.push_back(c);
    events.clear();
    const sem::StepResult sr = sem::apply_choice(prg, kc, m, c, opts, &events);
    result.events.invalid_reads.insert(result.events.invalid_reads.end(),
                                       events.invalid_reads.begin(),
                                       events.invalid_reads.end());
    result.events.store_conflicts.insert(result.events.store_conflicts.end(),
                                         events.store_conflicts.begin(),
                                         events.store_conflicts.end());
    result.events.uninit_reads.insert(result.events.uninit_reads.end(),
                                      events.uninit_reads.begin(),
                                      events.uninit_reads.end());
    if (!sr.ok()) {
      result.status = RunResult::Status::Fault;
      result.steps = step + 1;
      result.message = sr.fault;
      return result;
    }
  }
  if (sem::terminated(prg, m.grid)) {
    result.status = RunResult::Status::Terminated;
    result.steps = max_steps;
    return result;
  }
  result.status = RunResult::Status::BoundExceeded;
  result.steps = max_steps;
  result.message = "step bound exceeded";
  return result;
}

std::string to_string(RunResult::Status s) {
  switch (s) {
    case RunResult::Status::Terminated: return "terminated";
    case RunResult::Status::Stuck: return "stuck";
    case RunResult::Status::Fault: return "fault";
    case RunResult::Status::BoundExceeded: return "bound-exceeded";
  }
  return "?";
}

}  // namespace cac::sched
