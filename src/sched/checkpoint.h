// Crash-safe exploration: versioned, checksummed on-disk snapshots of
// an in-flight schedule exploration.
//
// A checkpoint captures everything either engine needs to continue to
// a verdict *byte-identical* to an uninterrupted run:
//
//  * the interned StateStore (fragments + state tuples, ids preserved
//    exactly — see StateStore::encode);
//  * the structural exploration options (so a resume under different
//    bounds is rejected instead of silently diverging);
//  * fingerprints of the program and kernel configuration;
//  * engine-specific progress: the serial DFS's stack/path/colors and
//    accumulated verdict state, or the parallel engine's explicit
//    state graph plus the unexpanded frontier.
//
// On-disk format: an 8-byte magic, a format version, the payload size
// and an FNV-1a checksum of the payload, then the payload itself
// (support/binio.h encoding).  Files are written atomically — payload
// to `path + ".tmp"`, fsync, then rename — so a crash mid-write can
// never destroy the last good checkpoint.  load() rejects truncated,
// bit-flipped, or version-skewed files with a structured
// CheckpointError; it never crashes and never returns partially
// decoded state.
//
// Transient stop reasons (deadline, memory watermark, SIGINT) are
// deliberately *not* persisted: a resumed run that completes reports
// itself exhaustive, exactly as an uninterrupted run would.  Only
// structural limits (max-states, max-depth) survive, because they
// would have tripped in the uninterrupted run too.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sched/explore.h"

namespace cac::sched {

/// Structured failure loading, saving, or resuming from a checkpoint.
class CheckpointError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    Io,               // file unreadable / unwritable
    Corrupt,          // truncated, checksum mismatch, malformed payload
    VersionMismatch,  // written by an incompatible format version
    Mismatch,         // program / config / options differ from the run
  };

  CheckpointError(Kind kind, const std::string& msg)
      : std::runtime_error("checkpoint: " + msg), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

std::string to_string(CheckpointError::Kind k);

/// One snapshot of an in-flight exploration.  Engines construct and
/// consume these; save()/load() move them to and from disk.
struct Checkpoint {
  // v3: the embedded store payload carries tier metadata (per-warp-rec
  // hash/base/depth prefix for delta chains); v2 files are rejected
  // with VersionMismatch rather than misdecoded.
  static constexpr std::uint32_t kFormatVersion = 3;

  enum class Engine : std::uint8_t { Serial = 0, Parallel = 1 };
  Engine engine = Engine::Serial;

  /// fnv1a over the canonical program text / config fields; resume
  /// refuses a checkpoint whose fingerprints do not match the run's.
  std::uint64_t program_fp = 0;
  std::uint64_t config_fp = 0;

  /// The structural options of the original run (bounds, POR, step
  /// order, stop policy).  Transient fields (budgets, checkpoint
  /// paths, thread count) are not persisted and stay default.
  ExploreOptions options;

  /// Every state visited so far, ids preserved.
  std::shared_ptr<StateStore> store;

  // --- serial DFS section (engine == Serial) -------------------------

  struct SerialFrame {
    StateId id;
    std::uint64_t next = 0;  // index of the next eligible choice
  };
  std::vector<SerialFrame> stack;  // bottom to top
  std::vector<sem::Choice> path;   // choices reaching the top frame
  /// DFS colors: 0 = on-stack, 1 = done.
  std::vector<std::pair<std::uint32_t, std::uint8_t>> colors;

  std::uint64_t states_visited = 0;
  std::uint64_t transitions = 0;
  std::uint64_t min_steps = ~0ull;
  std::uint64_t max_steps = 0;
  ExploreResult::Limit limit_hit = ExploreResult::Limit::None;
  bool limits_hit = false;
  std::vector<StateId> final_ids;
  std::vector<Violation> violations;

  // --- parallel graph section (engine == Parallel) -------------------

  struct EdgeRec {
    sem::Choice choice;
    StateId child;  // invalid iff faulted or overflow
    bool faulted = false;
    bool overflow = false;
    std::string fault;
  };
  struct NodeRec {
    StateId id;
    bool processed = false;
    bool terminal = false;
    bool stuck = false;
    std::string stuck_reason;
    std::vector<EdgeRec> edges;
  };
  StateId root;
  std::vector<NodeRec> nodes;
  /// Discovered but not yet expanded (id, depth) pairs.
  std::vector<std::pair<StateId, std::uint64_t>> frontier;

  /// Atomic write-then-rename to `path`; throws CheckpointError(Io).
  void save(const std::string& path) const;

  /// Parse and fully validate a checkpoint file.  Throws
  /// CheckpointError — Io / Corrupt / VersionMismatch — and never
  /// returns partially decoded state.
  static Checkpoint load(const std::string& path);
};

/// Fingerprint of a kernel for resume compatibility (the canonical
/// printed form, so structurally equal programs agree).
std::uint64_t program_fingerprint(const ptx::Program& prg);
std::uint64_t config_fingerprint(const sem::KernelConfig& kc);

/// Throws CheckpointError(Mismatch) unless `ck` was written by `want`
/// for this program/config under the same structural options.
void verify_resume(const Checkpoint& ck, Checkpoint::Engine want,
                   const ptx::Program& prg, const sem::KernelConfig& kc,
                   const ExploreOptions& opts);

/// Current resident set size in bytes (the RSS-watermark budget's
/// measurement; /proc-based).  Returns 0 where unavailable, which
/// disables the watermark rather than tripping it.
std::uint64_t current_rss_bytes();

}  // namespace cac::sched
