// Threads (paper §III-7): θ = (tid, ρ, φ) — an enumerated id, a private
// register file, and a predicate state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ptx/operand.h"
#include "support/hash.h"

namespace cac::support {
class BinWriter;
class BinReader;
}  // namespace cac::support

namespace cac::sem {

/// The register file ρ : reg -> Z.  Values are stored as canonical
/// 64-bit bit patterns truncated to the register's width.  Reads of
/// never-written registers are reported to the caller (the semantics
/// kernel turns them into uninitialized-read diagnostics) and read as
/// zero, which matches the all-zero launch state of a register file.
class RegFile {
 public:
  [[nodiscard]] std::uint64_t read(const ptx::Reg& r) const;
  [[nodiscard]] std::optional<std::uint64_t> read_opt(const ptx::Reg& r) const;
  void write(const ptx::Reg& r, std::uint64_t value);
  [[nodiscard]] std::size_t written_count() const { return values_.size(); }

  friend bool operator==(const RegFile&, const RegFile&) = default;
  void mix_hash(Hasher& h) const;

  /// Checkpoint codec (sched/checkpoint.h).  decode throws
  /// support::BinError on malformed input.
  void encode(support::BinWriter& w) const;
  static RegFile decode(support::BinReader& r);

 private:
  std::map<std::uint32_t, std::uint64_t> values_;  // Reg::key() -> bits
};

/// The predicate state φ : N -> B.
class PredState {
 public:
  [[nodiscard]] bool read(const ptx::Pred& p) const;
  void write(const ptx::Pred& p, bool value);
  [[nodiscard]] std::size_t written_count() const { return values_.size(); }

  friend bool operator==(const PredState&, const PredState&) = default;
  void mix_hash(Hasher& h) const;

  void encode(support::BinWriter& w) const;
  static PredState decode(support::BinReader& r);

 private:
  std::map<std::uint16_t, bool> values_;
};

struct Thread {
  std::uint32_t tid = 0;  // enumerated global id (paper §III-7)
  RegFile rho;
  PredState phi;

  friend bool operator==(const Thread&, const Thread&) = default;
  void mix_hash(Hasher& h) const;

  void encode(support::BinWriter& w) const;
  static Thread decode(support::BinReader& r);
};

using ThreadVec = std::vector<Thread>;

}  // namespace cac::sem
