// Warps (paper §III-8): either uniform execution of a set of threads,
// `Uni (pc, ts)`, or divergent execution of two sub-warps, `Div (w1 w2)`
// — so a warp is a *tree* of divergences.  This module also implements
// the reconvergence function `sync` of Fig. 2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sem/thread.h"

namespace cac::sem {

class Warp {
 public:
  /// Uniform warp: all threads at one pc, executing in lock-step.
  Warp() = default;
  Warp(std::uint32_t pc, ThreadVec threads)
      : pc_(pc), threads_(std::move(threads)) {}

  /// Divergent warp Div(w1, w2); the left side executes first (Fig. 1
  /// rule (div): for i != Sync the left-most warp steps).
  Warp(Warp left, Warp right)
      : left_(std::make_unique<Warp>(std::move(left))),
        right_(std::make_unique<Warp>(std::move(right))) {}

  Warp(const Warp& other) { *this = other; }
  Warp& operator=(const Warp& other);
  Warp(Warp&&) noexcept = default;
  Warp& operator=(Warp&&) noexcept = default;

  [[nodiscard]] bool divergent() const { return left_ != nullptr; }

  // --- uniform accessors (valid only when !divergent()) ---
  [[nodiscard]] std::uint32_t uni_pc() const { return pc_; }
  void set_uni_pc(std::uint32_t pc) { pc_ = pc; }
  [[nodiscard]] const ThreadVec& threads() const { return threads_; }
  [[nodiscard]] ThreadVec& threads() { return threads_; }

  // --- divergent accessors (valid only when divergent()) ---
  [[nodiscard]] const Warp& left() const { return *left_; }
  [[nodiscard]] Warp& left() { return *left_; }
  [[nodiscard]] const Warp& right() const { return *right_; }
  [[nodiscard]] Warp& right() { return *right_; }

  /// Release ownership of both children (used by sync).
  std::pair<Warp, Warp> take_children();

  /// ωpc — the pc of the left-most uniform leaf: the pc at which the
  /// warp executes its next instruction.
  [[nodiscard]] std::uint32_t pc() const;

  /// The left-most uniform leaf itself.
  [[nodiscard]] Warp& leftmost_leaf();
  [[nodiscard]] const Warp& leftmost_leaf() const;

  /// All threads in the tree, in-order.
  void collect_threads(ThreadVec& out) const;
  [[nodiscard]] std::size_t thread_count() const;

  /// Tree-shape statistics (used by the Fig. 2 bench and tests).
  [[nodiscard]] std::size_t leaf_count() const;
  [[nodiscard]] std::size_t depth() const;

  bool operator==(const Warp& other) const;
  void mix_hash(Hasher& h) const;

  /// Checkpoint codec (sched/checkpoint.h): the divergence tree as a
  /// tagged preorder.  decode throws support::BinError on malformed
  /// input, including trees deeper than a warp could ever diverge.
  void encode(support::BinWriter& w) const;
  static Warp decode(support::BinReader& r);

  /// Compact shape string, e.g. "D(U(10;3),U(18;1))".
  [[nodiscard]] std::string shape() const;

 private:
  std::uint32_t pc_ = 0;
  ThreadVec threads_;
  std::unique_ptr<Warp> left_;
  std::unique_ptr<Warp> right_;
};

/// The reconvergence function of Fig. 2.  Applied by the Sync rule to
/// the whole warp tree:
///
///   sync(pc, t)                          = (pc+1, t)
///   sync((pc1, {}), w2)                  = sync(w2)
///   sync(w1, (pc2, {}))                  = sync(w1)
///   sync((pc1,t1), (pc2,t2)) | pc1=pc2   = (pc1+1, t1 u t2)
///   sync((pc1,t1), w2)                   = (w2, (pc1,t1))
///   sync(w1, w2)                         = (sync(w1), w2)
///
/// Merged thread sets are kept sorted by tid so that structurally equal
/// warps compare equal regardless of divergence history.
Warp sync_warp(Warp w);

/// Build a uniform warp at pc 0 from thread ids [first, first+n).
Warp make_warp(std::uint32_t first_tid, std::uint32_t n);

}  // namespace cac::sem
