#include "sem/config.h"

namespace cac::sem {

std::uint32_t sreg_aux(const KernelConfig& kc, std::uint32_t tid,
                       const ptx::Sreg& sreg) {
  const std::uint32_t tpb = kc.threads_per_block();
  const std::uint32_t in_block = tid % tpb;
  const std::uint32_t block_lin = tid / tpb;

  auto decompose = [](std::uint32_t lin, const Dim3& d,
                      ptx::Dim dim) -> std::uint32_t {
    switch (dim) {
      case ptx::Dim::X: return lin % d.x;
      case ptx::Dim::Y: return (lin / d.x) % d.y;
      case ptx::Dim::Z: return lin / (d.x * d.y);
    }
    return 0;
  };

  switch (sreg.kind) {
    case ptx::SregKind::Tid: return decompose(in_block, kc.block, sreg.dim);
    case ptx::SregKind::CtaId: return decompose(block_lin, kc.grid, sreg.dim);
    case ptx::SregKind::NTid: return kc.block.at(sreg.dim);
    case ptx::SregKind::NCtaId: return kc.grid.at(sreg.dim);
  }
  return 0;
}

std::string to_string(const Dim3& d) {
  return "(" + std::to_string(d.x) + "," + std::to_string(d.y) + "," +
         std::to_string(d.z) + ")";
}

std::string to_string(const KernelConfig& kc) {
  return "(" + to_string(kc.grid) + "," + to_string(kc.block) + ")/w" +
         std::to_string(kc.warp_size);
}

}  // namespace cac::sem
