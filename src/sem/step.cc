#include "sem/step.h"

#include <algorithm>
#include <map>

#include "support/bits.h"
#include "support/diag.h"

namespace cac::sem {

using ptx::BinOp;
using ptx::CmpOp;
using ptx::DType;
using ptx::Imm;
using ptx::Instr;
using ptx::Operand;
using ptx::Reg;
using ptx::RegImm;
using ptx::Space;
using ptx::Sreg;
using ptx::TerOp;
using ptx::TypeClass;
using ptx::UnOp;

void StepEvents::clear() {
  invalid_reads.clear();
  store_conflicts.clear();
  uninit_reads.clear();
  accesses.clear();
}

bool StepEvents::empty() const {
  return invalid_reads.empty() && store_conflicts.empty() &&
         uninit_reads.empty() && accesses.empty();
}

namespace {

// ---------------------------------------------------------------------
// Operand evaluation within one thread (paper §III-5).
// ---------------------------------------------------------------------

struct EvalCtx {
  const KernelConfig& kc;
  const Thread& thread;
  StepEvents* events;
};

std::uint64_t read_reg(const EvalCtx& ctx, const Reg& r) {
  if (auto v = ctx.thread.rho.read_opt(r)) return *v;
  if (ctx.events) {
    ctx.events->uninit_reads.push_back({ctx.thread.tid, r});
  }
  return 0;
}

std::uint64_t eval_operand(const EvalCtx& ctx, const Operand& op) {
  struct Visitor {
    const EvalCtx& ctx;
    std::uint64_t operator()(const Reg& r) const { return read_reg(ctx, r); }
    std::uint64_t operator()(const Sreg& s) const {
      return sreg_aux(ctx.kc, ctx.thread.tid, s);
    }
    std::uint64_t operator()(const Imm& i) const {
      return static_cast<std::uint64_t>(i.value);
    }
    std::uint64_t operator()(const RegImm& ri) const {
      return read_reg(ctx, ri.reg) + static_cast<std::uint64_t>(ri.offset);
    }
  };
  return std::visit(Visitor{ctx}, op);
}

// ---------------------------------------------------------------------
// ALU semantics at a fixed width/signedness.
// ---------------------------------------------------------------------

std::uint64_t eval_bop(BinOp op, std::uint64_t ra, std::uint64_t rb,
                       const DType& t) {
  const unsigned w = t.width;
  const std::uint64_t a = truncate(ra, w);
  const std::uint64_t b = truncate(rb, w);
  const bool sgn = t.is_signed();
  switch (op) {
    case BinOp::Add: return truncate(a + b, w);
    case BinOp::Sub: return truncate(a - b, w);
    case BinOp::Mul: return truncate(a * b, w);
    case BinOp::MulHi: {
      if (sgn) {
        const auto p = static_cast<__int128>(to_signed(a, w)) *
                       static_cast<__int128>(to_signed(b, w));
        return truncate(static_cast<std::uint64_t>(p >> w), w);
      }
      const auto p = static_cast<unsigned __int128>(a) *
                     static_cast<unsigned __int128>(b);
      return truncate(static_cast<std::uint64_t>(p >> w), w);
    }
    case BinOp::MulWide: {
      // Result width is 2w (clamped to 64); mul.wide is defined by PTX
      // for widths up to 32.
      const unsigned ww = w >= 64 ? 64 : 2 * w;
      if (sgn) {
        const auto p = static_cast<__int128>(to_signed(a, w)) *
                       static_cast<__int128>(to_signed(b, w));
        return truncate(static_cast<std::uint64_t>(p), ww);
      }
      const auto p = static_cast<unsigned __int128>(a) *
                     static_cast<unsigned __int128>(b);
      return truncate(static_cast<std::uint64_t>(p), ww);
    }
    case BinOp::Div: {
      // PTX leaves integer division by zero machine-specific; the model
      // fixes it to the all-ones pattern so executions are deterministic.
      if (b == 0) return low_mask(w);
      if (sgn) {
        const std::int64_t sa = to_signed(a, w);
        const std::int64_t sb = to_signed(b, w);
        if (sa == to_signed(1ull << (w - 1), w) && sb == -1) {
          return a;  // INT_MIN / -1 wraps to INT_MIN
        }
        return truncate(static_cast<std::uint64_t>(sa / sb), w);
      }
      return truncate(a / b, w);
    }
    case BinOp::Rem: {
      if (b == 0) return a;  // fixed analogously to Div
      if (sgn) {
        const std::int64_t sa = to_signed(a, w);
        const std::int64_t sb = to_signed(b, w);
        if (sa == to_signed(1ull << (w - 1), w) && sb == -1) return 0;
        return truncate(static_cast<std::uint64_t>(sa % sb), w);
      }
      return truncate(a % b, w);
    }
    case BinOp::Min:
      if (sgn) return to_signed(a, w) < to_signed(b, w) ? a : b;
      return a < b ? a : b;
    case BinOp::Max:
      if (sgn) return to_signed(a, w) > to_signed(b, w) ? a : b;
      return a > b ? a : b;
    case BinOp::And: return a & b;
    case BinOp::Or: return a | b;
    case BinOp::Xor: return a ^ b;
    case BinOp::Shl: return shl(a, static_cast<unsigned>(b & 0xff), w);
    case BinOp::Shr:
      return sgn ? ashr(a, static_cast<unsigned>(b & 0xff), w)
                 : lshr(a, static_cast<unsigned>(b & 0xff), w);
  }
  throw KernelError("unknown binary op");
}

std::uint64_t eval_top(TerOp op, std::uint64_t ra, std::uint64_t rb,
                       std::uint64_t rc, const DType& t) {
  switch (op) {
    case TerOp::MadLo: {
      const std::uint64_t p = eval_bop(BinOp::Mul, ra, rb, t);
      return eval_bop(BinOp::Add, p, rc, t);
    }
    case TerOp::MadWide: {
      const std::uint64_t p = eval_bop(BinOp::MulWide, ra, rb, t);
      const unsigned ww = t.width >= 64 ? 64 : 2 * t.width;
      const DType wide{t.cls, static_cast<std::uint8_t>(ww)};
      return eval_bop(BinOp::Add, p, rc, wide);
    }
  }
  throw KernelError("unknown ternary op");
}

bool eval_cmp(CmpOp op, std::uint64_t ra, std::uint64_t rb, const DType& t) {
  const unsigned w = t.width;
  const std::uint64_t a = truncate(ra, w);
  const std::uint64_t b = truncate(rb, w);
  if (t.is_signed()) {
    const std::int64_t sa = to_signed(a, w);
    const std::int64_t sb = to_signed(b, w);
    switch (op) {
      case CmpOp::Eq: return sa == sb;
      case CmpOp::Ne: return sa != sb;
      case CmpOp::Lt: return sa < sb;
      case CmpOp::Le: return sa <= sb;
      case CmpOp::Gt: return sa > sb;
      case CmpOp::Ge: return sa >= sb;
    }
  }
  switch (op) {
    case CmpOp::Eq: return a == b;
    case CmpOp::Ne: return a != b;
    case CmpOp::Lt: return a < b;
    case CmpOp::Le: return a <= b;
    case CmpOp::Gt: return a > b;
    case CmpOp::Ge: return a >= b;
  }
  throw KernelError("unknown comparison op");
}

// ---------------------------------------------------------------------
// Memory addressing with per-block Shared banks.
// ---------------------------------------------------------------------

struct Access {
  std::uint64_t eff_addr = 0;  // address within the flat space
  bool ok = false;
};

Access resolve(const mem::Memory& mu, Space ss, std::uint32_t block,
               std::uint64_t addr, std::uint32_t len) {
  if (ss == Space::Shared) {
    if (addr > mu.shared_size() || len > mu.shared_size() - addr) {
      return {0, false};
    }
    return {mu.shared_base(block) + addr, true};
  }
  return {addr, mu.in_bounds(ss, addr, len)};
}

std::string oob_message(const ptx::Program& prg, std::uint32_t pc,
                        std::uint32_t tid, Space ss, std::uint64_t addr,
                        std::uint32_t len) {
  return "out-of-bounds access at pc " + std::to_string(pc) + " (" +
         ptx::to_string(prg.fetch(pc)) + "): thread " + std::to_string(tid) +
         " touches " + ptx::to_string(ss) + "[" + std::to_string(addr) +
         ".." + std::to_string(addr + len - 1) + "]";
}

/// Thread visit order for memory effects (the nd_map nondeterminism).
std::vector<std::uint32_t> visit_order(std::size_t n,
                                       const ThreadOrder& order) {
  std::vector<std::uint32_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint32_t>(i);
  switch (order.kind) {
    case ThreadOrder::Kind::Ascending:
      break;
    case ThreadOrder::Kind::Descending:
      std::reverse(idx.begin(), idx.end());
      break;
    case ThreadOrder::Kind::Permuted: {
      std::vector<std::uint32_t> out;
      std::vector<bool> used(n, false);
      for (std::uint32_t p : order.perm) {
        if (p < n && !used[p]) {
          out.push_back(p);
          used[p] = true;
        }
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!used[i]) out.push_back(i);
      }
      return out;
    }
  }
  return idx;
}

/// Sign- or zero-extend a loaded/converted value of type `t` into a
/// destination register's width.
std::uint64_t extend_for(const DType& t, std::uint64_t v, unsigned dst_w) {
  const std::uint64_t low = truncate(v, t.width);
  if (t.is_signed() && dst_w > t.width) {
    return sign_extend(low, t.width, dst_w);
  }
  return low;
}

// ---------------------------------------------------------------------
// Per-rule execution on the left-most uniform leaf.
// ---------------------------------------------------------------------

class LeafExec {
 public:
  LeafExec(const ptx::Program& prg, const KernelConfig& kc,
           std::uint32_t block, Warp& leaf, bool divergent, mem::Memory& mu,
           const StepOptions& opts, StepEvents* events)
      : prg_(prg),
        kc_(kc),
        block_(block),
        leaf_(leaf),
        divergent_(divergent),
        mu_(mu),
        opts_(opts),
        events_(events) {}

  StepResult run(const Instr& instr) {
    return std::visit([this](const auto& i) { return exec(i); }, instr);
  }

 private:
  [[nodiscard]] EvalCtx ctx(const Thread& t) const {
    return EvalCtx{kc_, t, events_};
  }

  void advance() { leaf_.set_uni_pc(leaf_.uni_pc() + 1); }

  StepResult exec(const ptx::INop&) {
    advance();
    return {};
  }

  StepResult exec(const ptx::IBop& i) {
    for (Thread& t : leaf_.threads()) {
      const std::uint64_t a = eval_operand(ctx(t), i.a);
      const std::uint64_t b = eval_operand(ctx(t), i.b);
      t.rho.write(i.dst, eval_bop(i.op, a, b, i.type));
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::ITop& i) {
    for (Thread& t : leaf_.threads()) {
      const std::uint64_t a = eval_operand(ctx(t), i.a);
      const std::uint64_t b = eval_operand(ctx(t), i.b);
      const std::uint64_t c = eval_operand(ctx(t), i.c);
      t.rho.write(i.dst, eval_top(i.op, a, b, c, i.type));
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::IUop& i) {
    const unsigned w = i.type.width;
    for (Thread& t : leaf_.threads()) {
      const std::uint64_t raw = eval_operand(ctx(t), i.a);
      const std::uint64_t a = truncate(raw, w);
      std::uint64_t v = 0;
      switch (i.op) {
        case UnOp::Not: v = ~a; break;
        case UnOp::Neg: v = 0 - a; break;
        case UnOp::Cvt: v = extend_for(i.type, raw, i.dst.width); break;
        case UnOp::Abs: {
          const std::int64_t s = to_signed(a, w);
          v = s < 0 ? static_cast<std::uint64_t>(-s) : a;
          break;
        }
        case UnOp::Popc: v = static_cast<std::uint64_t>(
                             __builtin_popcountll(a));
          break;
        case UnOp::Clz:
          v = a == 0 ? w
                     : static_cast<std::uint64_t>(__builtin_clzll(a)) -
                           (64 - w);
          break;
        case UnOp::Brev: {
          std::uint64_t r = 0;
          for (unsigned b = 0; b < w; ++b) {
            r = (r << 1) | ((a >> b) & 1);
          }
          v = r;
          break;
        }
      }
      t.rho.write(i.dst, v);  // write truncates at the register width
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::IMov& i) {
    for (Thread& t : leaf_.threads()) {
      t.rho.write(i.dst, eval_operand(ctx(t), i.src));
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::ILd& i) {
    const std::uint32_t len = i.type.bytes();
    // Two-phase: resolve and bounds-check every lane, then update.
    std::vector<Access> acc(leaf_.threads().size());
    for (std::size_t k = 0; k < leaf_.threads().size(); ++k) {
      Thread& t = leaf_.threads()[k];
      const std::uint64_t addr = eval_operand(ctx(t), i.addr);
      acc[k] = resolve(mu_, i.space, block_, addr, len);
      if (!acc[k].ok) {
        return {StepStatus::Fault, oob_message(prg_, leaf_.uni_pc(), t.tid,
                                               i.space, addr, len)};
      }
    }
    for (std::size_t k = 0; k < leaf_.threads().size(); ++k) {
      Thread& t = leaf_.threads()[k];
      const std::uint64_t raw = mu_.load(i.space, acc[k].eff_addr, len);
      if (events_ && !mu_.all_valid(i.space, acc[k].eff_addr, len)) {
        events_->invalid_reads.push_back(
            {i.space, acc[k].eff_addr, len, t.tid});
      }
      if (events_ && opts_.log_accesses && i.space != Space::Param &&
          i.space != Space::Const) {
        events_->accesses.push_back(
            {i.space, acc[k].eff_addr, len, t.tid, false, false});
      }
      t.rho.write(i.dst, extend_for(i.type, raw, i.dst.width));
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::ISt& i) {
    if (i.space == Space::Const || i.space == Space::Param) {
      return {StepStatus::Fault,
              "store to read-only space " + ptx::to_string(i.space) +
                  " at pc " + std::to_string(leaf_.uni_pc())};
    }
    const std::uint32_t len = i.type.bytes();
    struct Pending {
      std::uint64_t eff_addr;
      std::uint64_t value;
      std::uint32_t tid;
    };
    std::vector<Pending> writes(leaf_.threads().size());
    for (std::size_t k = 0; k < leaf_.threads().size(); ++k) {
      Thread& t = leaf_.threads()[k];
      const std::uint64_t addr = eval_operand(ctx(t), i.addr);
      const Access a = resolve(mu_, i.space, block_, addr, len);
      if (!a.ok) {
        return {StepStatus::Fault, oob_message(prg_, leaf_.uni_pc(), t.tid,
                                               i.space, addr, len)};
      }
      writes[k] = {a.eff_addr, truncate(read_reg(ctx(t), i.src), i.type.width),
                   t.tid};
    }
    // update(mu, v): apply lane effects in the scheduler-chosen order.
    // Plain stores leave the valid bit false (paper §III-2: the
    // hardware does not guarantee synchronization of stored values).
    std::map<std::uint64_t, std::pair<std::uint8_t, std::uint32_t>> seen;
    for (std::uint32_t k : visit_order(writes.size(), opts_.order)) {
      const Pending& p = writes[k];
      mu_.store(i.space, p.eff_addr, len, p.value, /*valid=*/false);
      if (events_ && opts_.log_accesses) {
        events_->accesses.push_back(
            {i.space, p.eff_addr, len, p.tid, true, false});
      }
      if (events_) {
        for (std::uint32_t byte = 0; byte < len; ++byte) {
          const auto b =
              static_cast<std::uint8_t>(p.value >> (8 * byte));
          auto [it, inserted] =
              seen.try_emplace(p.eff_addr + byte, b, p.tid);
          if (!inserted && it->second.second != p.tid &&
              it->second.first != b) {
            events_->store_conflicts.push_back(
                {i.space, p.eff_addr + byte, it->second.second, p.tid});
          }
        }
      }
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::IBra& i) {
    leaf_.set_uni_pc(i.target);
    return {};
  }

  StepResult exec(const ptx::ISetp& i) {
    for (Thread& t : leaf_.threads()) {
      const std::uint64_t a = eval_operand(ctx(t), i.a);
      const std::uint64_t b = eval_operand(ctx(t), i.b);
      t.phi.write(i.dst, eval_cmp(i.cmp, a, b, i.type));
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::IPBra& i) {
    // Split threads by predicate value; the fall-through set keeps
    // executing first (left side of the Div), the taken set waits.
    ThreadVec taken, fall;
    for (Thread& t : leaf_.threads()) {
      const bool p = t.phi.read(i.pred) != i.negated;
      (p ? taken : fall).push_back(std::move(t));
    }
    const std::uint32_t pc = leaf_.uni_pc();
    if (taken.empty()) {
      leaf_ = Warp(pc + 1, std::move(fall));
    } else if (fall.empty()) {
      leaf_ = Warp(i.target, std::move(taken));
    } else {
      leaf_ = Warp(Warp(pc + 1, std::move(fall)),
                   Warp(i.target, std::move(taken)));
    }
    return {};
  }

  StepResult exec(const ptx::ISelp& i) {
    for (Thread& t : leaf_.threads()) {
      const std::uint64_t a = eval_operand(ctx(t), i.a);
      const std::uint64_t b = eval_operand(ctx(t), i.b);
      const std::uint64_t v = t.phi.read(i.pred) ? a : b;
      t.rho.write(i.dst, truncate(v, i.type.width));
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::IAtom& i) {
    const std::uint32_t len = i.type.bytes();
    // Atomics are serialized in the scheduler-chosen lane order; each
    // commits immediately with the valid bit SET — the paper's
    // "excepting atomic instructions" carve-out (§III-2).
    const auto order = visit_order(leaf_.threads().size(), opts_.order);
    for (std::uint32_t k : order) {
      Thread& t = leaf_.threads()[k];
      const std::uint64_t addr = eval_operand(ctx(t), i.addr);
      const Access a = resolve(mu_, i.space, block_, addr, len);
      if (!a.ok) {
        return {StepStatus::Fault, oob_message(prg_, leaf_.uni_pc(), t.tid,
                                               i.space, addr, len)};
      }
      const std::uint64_t old = mu_.load(i.space, a.eff_addr, len);
      const std::uint64_t b = eval_operand(ctx(t), i.b);
      std::uint64_t nv = 0;
      switch (i.op) {
        case ptx::AtomOp::Add: nv = eval_bop(BinOp::Add, old, b, i.type); break;
        case ptx::AtomOp::Exch: nv = truncate(b, i.type.width); break;
        case ptx::AtomOp::Min: nv = eval_bop(BinOp::Min, old, b, i.type); break;
        case ptx::AtomOp::Max: nv = eval_bop(BinOp::Max, old, b, i.type); break;
        case ptx::AtomOp::And: nv = eval_bop(BinOp::And, old, b, i.type); break;
        case ptx::AtomOp::Or: nv = eval_bop(BinOp::Or, old, b, i.type); break;
        case ptx::AtomOp::Xor: nv = eval_bop(BinOp::Xor, old, b, i.type); break;
        case ptx::AtomOp::Cas: {
          const std::uint64_t c = eval_operand(ctx(t), i.c);
          nv = truncate(old, i.type.width) == truncate(b, i.type.width)
                   ? truncate(c, i.type.width)
                   : truncate(old, i.type.width);
          break;
        }
      }
      mu_.store(i.space, a.eff_addr, len, nv, /*valid=*/true);
      if (events_ && opts_.log_accesses) {
        events_->accesses.push_back(
            {i.space, a.eff_addr, len, t.tid, true, true});
      }
      t.rho.write(i.dst, extend_for(i.type, old, i.dst.width));
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::IVote& i) {
    // Warp votes read every lane's predicate; a divergent warp has no
    // well-defined full lane set, so the model requires reconvergence
    // first (real PTX: inactive lanes contribute identity values —
    // compilers emit votes in uniform regions).
    if (divergent_) {
      return {StepStatus::Fault,
              "vote in a divergent warp at pc " +
                  std::to_string(leaf_.uni_pc())};
    }
    bool all = true, any = false;
    std::uint32_t ballot = 0;
    for (std::size_t k = 0; k < leaf_.threads().size(); ++k) {
      const bool p = leaf_.threads()[k].phi.read(i.src);
      all &= p;
      any |= p;
      if (p && k < 32) ballot |= 1u << k;
    }
    for (Thread& t : leaf_.threads()) {
      switch (i.mode) {
        case ptx::VoteMode::All: t.phi.write(i.dst, all); break;
        case ptx::VoteMode::Any: t.phi.write(i.dst, any); break;
        case ptx::VoteMode::Ballot: t.rho.write(i.dst_ballot, ballot); break;
      }
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::IShfl& i) {
    if (divergent_) {
      return {StepStatus::Fault,
              "shfl in a divergent warp at pc " +
                  std::to_string(leaf_.uni_pc())};
    }
    const auto n = static_cast<std::uint32_t>(leaf_.threads().size());
    // Read all source lanes first: shuffles exchange pre-instruction
    // values even when dst == src.
    std::vector<std::uint64_t> lanes(n);
    for (std::uint32_t k = 0; k < n; ++k) {
      lanes[k] = read_reg(ctx(leaf_.threads()[k]), i.src);
    }
    for (std::uint32_t k = 0; k < n; ++k) {
      Thread& t = leaf_.threads()[k];
      const auto lane_arg = static_cast<std::uint32_t>(
          truncate(eval_operand(ctx(t), i.lane), 32));
      std::uint32_t j = k;
      switch (i.mode) {
        case ptx::ShflMode::Idx: j = lane_arg; break;
        case ptx::ShflMode::Up:
          j = lane_arg <= k ? k - lane_arg : k;
          break;
        case ptx::ShflMode::Down:
          j = k + lane_arg < n ? k + lane_arg : k;
          break;
        case ptx::ShflMode::Bfly: j = k ^ lane_arg; break;
      }
      const std::uint64_t v = j < n ? lanes[j] : lanes[k];
      t.rho.write(i.dst, truncate(v, i.type.width));
    }
    advance();
    return {};
  }

  StepResult exec(const ptx::ISync&) {
    throw KernelError("Sync reached leaf executor (handled at warp level)");
  }
  StepResult exec(const ptx::IBar&) {
    throw KernelError("Bar reached warp executor (handled by lift-bar)");
  }
  StepResult exec(const ptx::IExit&) {
    throw KernelError("Exit reached warp executor (warp is complete)");
  }

  const ptx::Program& prg_;
  const KernelConfig& kc_;
  std::uint32_t block_;
  Warp& leaf_;
  bool divergent_;
  mem::Memory& mu_;
  const StepOptions& opts_;
  StepEvents* events_;
};

}  // namespace

StepResult step_warp(const ptx::Program& prg, const KernelConfig& kc,
                     std::uint32_t block, Warp& w, mem::Memory& mu,
                     const StepOptions& opts, StepEvents* events) {
  const Instr& instr = prg.fetch(w.pc());
  if (ptx::is_bar(instr) || ptx::is_exit(instr)) {
    throw KernelError("step_warp called at a Bar/Exit instruction (pc " +
                      std::to_string(w.pc()) + ")");
  }
  if (ptx::is_sync(instr)) {
    // Fig. 1 rule (sync): applies to the whole warp tree.
    w = sync_warp(std::move(w));
    return {};
  }
  // Fig. 1 rule (div): for i != Sync, the left-most warp executes.
  const bool divergent = w.divergent();
  Warp& leaf = w.leftmost_leaf();
  return LeafExec(prg, kc, block, leaf, divergent, mu, opts, events)
      .run(instr);
}

std::vector<Choice> eligible_choices(const ptx::Program& prg, const Grid& g) {
  std::vector<Choice> out;
  for (std::uint32_t b = 0; b < g.blocks.size(); ++b) {
    const Block& blk = g.blocks[b];
    for (std::uint32_t wi = 0; wi < blk.warps.size(); ++wi) {
      const Instr& i = prg.fetch(blk.warps[wi].pc());
      if (!ptx::is_bar(i) && !ptx::is_exit(i)) {
        out.push_back({Choice::Kind::ExecWarp, b, wi});
      }
    }
    if (block_at_barrier(prg, blk)) {
      out.push_back({Choice::Kind::LiftBar, b, 0});
    }
  }
  return out;
}

StepResult apply_choice(const ptx::Program& prg, const KernelConfig& kc,
                        Machine& m, const Choice& c, const StepOptions& opts,
                        StepEvents* events) {
  if (c.block >= m.grid.blocks.size()) {
    throw KernelError("choice references nonexistent block");
  }
  // Every rule below mutates the machine, so the memoized state hash
  // is stale from here on.  (Memory invalidates its own cache through
  // its mutators; this covers the grid side and the combined hash.)
  m.invalidate_hash();
  Block& blk = m.grid.blocks[c.block];
  if (c.kind == Choice::Kind::ExecWarp) {
    if (c.warp >= blk.warps.size()) {
      throw KernelError("choice references nonexistent warp");
    }
    Warp& w = blk.warps[c.warp];
    const Instr& i = prg.fetch(w.pc());
    if (ptx::is_bar(i) || ptx::is_exit(i)) {
      throw KernelError("ExecWarp choice is not eligible (warp at " +
                        ptx::to_string(i) + ")");
    }
    return step_warp(prg, kc, c.block, w, m.memory, opts, events);
  }
  // lift-bar: all warps uniform at Bar -> commit Shared, advance pcs.
  if (!block_at_barrier(prg, blk)) {
    throw KernelError("LiftBar choice is not eligible");
  }
  for (Warp& w : blk.warps) w.set_uni_pc(w.uni_pc() + 1);
  m.memory.commit_shared(c.block);
  return {};
}

bool warp_complete(const ptx::Program& prg, const Warp& w) {
  return !w.divergent() && ptx::is_exit(prg.fetch(w.uni_pc()));
}

bool block_complete(const ptx::Program& prg, const Block& b) {
  return std::all_of(b.warps.begin(), b.warps.end(), [&](const Warp& w) {
    return warp_complete(prg, w);
  });
}

bool terminated(const ptx::Program& prg, const Grid& g) {
  return std::all_of(g.blocks.begin(), g.blocks.end(), [&](const Block& b) {
    return block_complete(prg, b);
  });
}

bool block_at_barrier(const ptx::Program& prg, const Block& b) {
  if (b.warps.empty()) return false;
  return std::all_of(b.warps.begin(), b.warps.end(), [&](const Warp& w) {
    return !w.divergent() && ptx::is_bar(prg.fetch(w.uni_pc()));
  });
}

bool is_stuck(const ptx::Program& prg, const Grid& g) {
  return !terminated(prg, g) && eligible_choices(prg, g).empty();
}

std::string stuck_reason(const ptx::Program& prg, const Grid& g) {
  if (!is_stuck(prg, g)) return "";
  std::string out;
  for (std::uint32_t b = 0; b < g.blocks.size(); ++b) {
    const Block& blk = g.blocks[b];
    if (block_complete(prg, blk)) continue;
    for (std::uint32_t wi = 0; wi < blk.warps.size(); ++wi) {
      const Warp& w = blk.warps[wi];
      const Instr& i = prg.fetch(w.pc());
      const std::string where =
          "block " + std::to_string(b) + " warp " + std::to_string(wi);
      if (w.divergent() && ptx::is_bar(i)) {
        out += where + ": divergent warp reached a barrier (" + w.shape() +
               ") — barrier-divergence deadlock\n";
      } else if (w.divergent() && ptx::is_exit(i)) {
        out += where + ": divergent warp reached Exit (" + w.shape() +
               ") — missing reconvergence Sync\n";
      } else if (!w.divergent() && ptx::is_bar(i)) {
        out += where + ": waiting at barrier that can never lift\n";
      }
    }
  }
  return out.empty() ? "stuck for an unidentified reason\n" : out;
}

std::string to_string(const Choice& c) {
  if (c.kind == Choice::Kind::ExecWarp) {
    return "exec(b" + std::to_string(c.block) + ",w" + std::to_string(c.warp) +
           ")";
  }
  return "lift-bar(b" + std::to_string(c.block) + ")";
}

}  // namespace cac::sem
