// Launch setup: builds the initial machine state <generate_grid(kc), mu>
// of a kernel invocation (paper Listing 3's `kc`, `g`, `mu` block).
//
// At launch only Global and Const memory may contain data, and those
// bytes are valid (paper §III-2); kernel arguments are written into
// Param space, also valid.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ptx/program.h"
#include "sem/state.h"

namespace cac::sem {

class Launch {
 public:
  /// `sizes.param` and `sizes.shared_banks` are derived from the
  /// program and config automatically; pass global/const/shared sizes.
  Launch(const ptx::Program& prg, KernelConfig kc, mem::MemSizes sizes);

  /// Write a kernel argument by parameter name (width taken from the
  /// parameter's declared type).
  Launch& param(const std::string& name, std::uint64_t value);

  /// Launch-time Global/Const initialization helpers.
  Launch& global_u32(std::uint64_t addr, std::uint32_t v);
  Launch& const_u32(std::uint64_t addr, std::uint32_t v);

  [[nodiscard]] mem::Memory& memory() { return memory_; }
  [[nodiscard]] const KernelConfig& config() const { return kc_; }
  [[nodiscard]] const ptx::Program& program() const { return *prg_; }

  /// The initial machine configuration <gamma, mu>.
  [[nodiscard]] Machine machine() const {
    return Machine{generate_grid(kc_), memory_};
  }

 private:
  const ptx::Program* prg_;
  KernelConfig kc_;
  mem::Memory memory_;
};

/// Malformed launch flag or value.  Front ends report these at the
/// usage exit status.
class LaunchArgError : public std::runtime_error {
 public:
  static constexpr int kExitStatus = 2;
  using std::runtime_error::runtime_error;
};

/// The complete launch-configuration surface shared by every front end
/// (cacval, the benches, examples): grid geometry, state-space sizes,
/// kernel arguments and Global initializers.  This is the value that
/// used to live as ad-hoc fields in each tool's option struct.
struct LaunchSpec {
  Dim3 grid{1, 1, 1};
  Dim3 block{32, 1, 1};
  std::uint32_t warp_size = 32;
  std::uint64_t global_bytes = 4096;
  std::uint64_t shared_bytes = 4096;  // per-block Shared bank size
  std::vector<std::pair<std::string, std::uint64_t>> params;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> inits;  // Global

  [[nodiscard]] KernelConfig to_config() const {
    return KernelConfig{grid, block, warp_size};
  }

  /// Build the ready-to-run Launch: derives Param size and the Shared
  /// bank count from the program/config, applies params and inits.
  /// `min_shared_bytes` lets a front end honor a module's declared
  /// shared layout (the bank is at least that large).
  [[nodiscard]] Launch to_launch(const ptx::Program& prg,
                                 std::uint64_t min_shared_bytes = 0) const;
};

/// Consume the standard launch flags from `args`:
///
///   --grid X[,Y[,Z]]  --block X[,Y[,Z]]  --warp N
///   --global BYTES    --shared BYTES
///   --param NAME=VAL  --init ADDR=U32      (both repeatable)
///
/// Recognized flags update `spec`; everything else is returned in
/// order for the caller's own second pass.  Numbers accept 0x/0
/// prefixes; trailing junk, negatives, and missing '='/values throw
/// LaunchArgError.
std::vector<std::string> parse_launch_args(
    const std::vector<std::string>& args, LaunchSpec& spec);

}  // namespace cac::sem
