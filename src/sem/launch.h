// Launch setup: builds the initial machine state <generate_grid(kc), mu>
// of a kernel invocation (paper Listing 3's `kc`, `g`, `mu` block).
//
// At launch only Global and Const memory may contain data, and those
// bytes are valid (paper §III-2); kernel arguments are written into
// Param space, also valid.
#pragma once

#include <cstdint>
#include <string>

#include "ptx/program.h"
#include "sem/state.h"

namespace cac::sem {

class Launch {
 public:
  /// `sizes.param` and `sizes.shared_banks` are derived from the
  /// program and config automatically; pass global/const/shared sizes.
  Launch(const ptx::Program& prg, KernelConfig kc, mem::MemSizes sizes);

  /// Write a kernel argument by parameter name (width taken from the
  /// parameter's declared type).
  Launch& param(const std::string& name, std::uint64_t value);

  /// Launch-time Global/Const initialization helpers.
  Launch& global_u32(std::uint64_t addr, std::uint32_t v);
  Launch& const_u32(std::uint64_t addr, std::uint32_t v);

  [[nodiscard]] mem::Memory& memory() { return memory_; }
  [[nodiscard]] const KernelConfig& config() const { return kc_; }
  [[nodiscard]] const ptx::Program& program() const { return *prg_; }

  /// The initial machine configuration <gamma, mu>.
  [[nodiscard]] Machine machine() const {
    return Machine{generate_grid(kc_), memory_};
  }

 private:
  const ptx::Program* prg_;
  KernelConfig kc_;
  mem::Memory memory_;
};

}  // namespace cac::sem
