#include "sem/launch.h"

#include <algorithm>

#include "support/diag.h"

namespace cac::sem {

Launch::Launch(const ptx::Program& prg, KernelConfig kc, mem::MemSizes sizes)
    : prg_(&prg), kc_(kc) {
  sizes.param = std::max<std::uint64_t>(sizes.param, prg.param_bytes());
  sizes.shared_banks = kc.num_blocks();
  memory_ = mem::Memory(sizes);
}

Launch& Launch::param(const std::string& name, std::uint64_t value) {
  const ptx::ParamSlot& slot = prg_->param(name);
  switch (slot.type.bytes()) {
    case 1: {
      const auto b = static_cast<std::uint8_t>(value);
      memory_.write_init(mem::Space::Param, slot.offset, &b, 1);
      break;
    }
    case 2: {
      const auto h = static_cast<std::uint16_t>(value);
      memory_.write_init(mem::Space::Param, slot.offset, &h, 2);
      break;
    }
    case 4:
      memory_.init_u32(mem::Space::Param, slot.offset,
                       static_cast<std::uint32_t>(value));
      break;
    case 8:
      memory_.init_u64(mem::Space::Param, slot.offset, value);
      break;
    default:
      throw KernelError("bad parameter width");
  }
  return *this;
}

Launch& Launch::global_u32(std::uint64_t addr, std::uint32_t v) {
  memory_.init_u32(mem::Space::Global, addr, v);
  return *this;
}

Launch& Launch::const_u32(std::uint64_t addr, std::uint32_t v) {
  memory_.init_u32(mem::Space::Const, addr, v);
  return *this;
}

}  // namespace cac::sem
