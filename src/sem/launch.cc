#include "sem/launch.h"

#include <algorithm>

#include "support/diag.h"

namespace cac::sem {

Launch::Launch(const ptx::Program& prg, KernelConfig kc, mem::MemSizes sizes)
    : prg_(&prg), kc_(kc) {
  sizes.param = std::max<std::uint64_t>(sizes.param, prg.param_bytes());
  sizes.shared_banks = kc.num_blocks();
  memory_ = mem::Memory(sizes);
}

Launch& Launch::param(const std::string& name, std::uint64_t value) {
  const ptx::ParamSlot& slot = prg_->param(name);
  switch (slot.type.bytes()) {
    case 1: {
      const auto b = static_cast<std::uint8_t>(value);
      memory_.write_init(mem::Space::Param, slot.offset, &b, 1);
      break;
    }
    case 2: {
      const auto h = static_cast<std::uint16_t>(value);
      memory_.write_init(mem::Space::Param, slot.offset, &h, 2);
      break;
    }
    case 4:
      memory_.init_u32(mem::Space::Param, slot.offset,
                       static_cast<std::uint32_t>(value));
      break;
    case 8:
      memory_.init_u64(mem::Space::Param, slot.offset, value);
      break;
    default:
      throw KernelError("bad parameter width");
  }
  return *this;
}

Launch& Launch::global_u32(std::uint64_t addr, std::uint32_t v) {
  memory_.init_u32(mem::Space::Global, addr, v);
  return *this;
}

Launch& Launch::const_u32(std::uint64_t addr, std::uint32_t v) {
  memory_.init_u32(mem::Space::Const, addr, v);
  return *this;
}

Launch LaunchSpec::to_launch(const ptx::Program& prg,
                             std::uint64_t min_shared_bytes) const {
  mem::MemSizes sizes;
  sizes.global = global_bytes;
  sizes.shared = std::max(shared_bytes, min_shared_bytes);
  Launch launch(prg, to_config(), sizes);
  for (const auto& [name, value] : params) launch.param(name, value);
  for (const auto& [addr, value] : inits) launch.global_u32(addr, value);
  return launch;
}

namespace {

/// Strict full-string unsigned parse (0x/octal prefixes accepted);
/// rejects empty strings, signs, and trailing junk.
std::uint64_t parse_u64_strict(const std::string& flag,
                               const std::string& s) {
  if (s.empty() || s[0] == '-' || s[0] == '+') {
    throw LaunchArgError(flag + ": expected an unsigned number, got '" + s +
                         "'");
  }
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(s, &pos, 0);
  } catch (const std::exception&) {
    throw LaunchArgError(flag + ": expected an unsigned number, got '" + s +
                         "'");
  }
  if (pos != s.size()) {
    throw LaunchArgError(flag + ": trailing characters in number '" + s +
                         "'");
  }
  return v;
}

Dim3 parse_dim3_strict(const std::string& flag, const std::string& s) {
  Dim3 d{1, 1, 1};
  std::uint32_t* slots[3] = {&d.x, &d.y, &d.z};
  std::size_t start = 0;
  int i = 0;
  for (;; ++i) {
    if (i >= 3) {
      throw LaunchArgError(flag + ": expected X[,Y[,Z]], got '" + s + "'");
    }
    const std::size_t comma = s.find(',', start);
    const std::string piece =
        s.substr(start, comma == std::string::npos ? comma : comma - start);
    *slots[i] = static_cast<std::uint32_t>(parse_u64_strict(flag, piece));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return d;
}

std::pair<std::string, std::string> split_eq_strict(const std::string& flag,
                                                    const std::string& s) {
  const auto eq = s.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw LaunchArgError(flag + ": expected NAME=VALUE, got '" + s + "'");
  }
  return {s.substr(0, eq), s.substr(eq + 1)};
}

}  // namespace

std::vector<std::string> parse_launch_args(
    const std::vector<std::string>& args, LaunchSpec& spec) {
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      if (++i >= args.size()) {
        throw LaunchArgError("missing value for " + a);
      }
      return args[i];
    };
    if (a == "--grid") {
      spec.grid = parse_dim3_strict(a, next());
    } else if (a == "--block") {
      spec.block = parse_dim3_strict(a, next());
    } else if (a == "--warp") {
      spec.warp_size = static_cast<std::uint32_t>(parse_u64_strict(a, next()));
    } else if (a == "--global") {
      spec.global_bytes = parse_u64_strict(a, next());
    } else if (a == "--shared") {
      spec.shared_bytes = parse_u64_strict(a, next());
    } else if (a == "--param") {
      const auto [k, v] = split_eq_strict(a, next());
      spec.params.emplace_back(k, parse_u64_strict(a, v));
    } else if (a == "--init") {
      const auto [k, v] = split_eq_strict(a, next());
      spec.inits.emplace_back(
          parse_u64_strict(a, k),
          static_cast<std::uint32_t>(parse_u64_strict(a, v)));
    } else {
      rest.push_back(a);
    }
  }
  return rest;
}

}  // namespace cac::sem
