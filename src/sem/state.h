// Thread blocks and grids (paper §III-9, §III-10): a block β is a set
// of warps; a grid γ is a set of blocks.  The machine state of the
// small-step semantics is a (grid, memory) pair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory.h"
#include "sem/config.h"
#include "sem/warp.h"

namespace cac::sem {

struct Block {
  std::vector<Warp> warps;

  friend bool operator==(const Block&, const Block&) = default;
  void mix_hash(Hasher& h) const;
};

struct Grid {
  std::vector<Block> blocks;

  friend bool operator==(const Grid&, const Grid&) = default;
  void mix_hash(Hasher& h) const;
  [[nodiscard]] std::uint64_t hash() const;
};

/// The full machine configuration <gamma, mu> of Fig. 3.
///
/// hash() is memoized: by design the only mutator of a Machine is the
/// semantics kernel (sem::apply_choice, src/sem/step.cc), which
/// invalidates the cache on every transition; Memory additionally
/// tracks its own cache through its mutators.  Code that mutates
/// `grid` or `memory` directly — tests, hypothetical checkers — must
/// call invalidate_hash() afterwards or hash() may return a stale
/// value (operator== is unaffected; it compares real state only).
struct Machine {
  Grid grid;
  mem::Memory memory;
  HashCache hash_cache;  // excluded from operator==

  Machine() = default;
  Machine(Grid g, mem::Memory m)
      : grid(std::move(g)), memory(std::move(m)) {}

  friend bool operator==(const Machine& a, const Machine& b) {
    return a.grid == b.grid && a.memory == b.memory;
  }
  [[nodiscard]] std::uint64_t hash() const;
  void invalidate_hash() const { hash_cache.invalidate(); }
};

/// The paper's `generate_grid kc`: spawn grid_size blocks of block_size
/// threads, grouped into warps of kc.warp_size, all at pc 0 with empty
/// register files.
Grid generate_grid(const KernelConfig& kc);

std::string to_string(const Grid& g);

}  // namespace cac::sem
