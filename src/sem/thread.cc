#include "sem/thread.h"

#include "support/bits.h"

namespace cac::sem {

std::uint64_t RegFile::read(const ptx::Reg& r) const {
  auto it = values_.find(r.key());
  return it == values_.end() ? 0 : it->second;
}

std::optional<std::uint64_t> RegFile::read_opt(const ptx::Reg& r) const {
  auto it = values_.find(r.key());
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

void RegFile::write(const ptx::Reg& r, std::uint64_t value) {
  values_[r.key()] = truncate(value, r.width);
}

void RegFile::mix_hash(Hasher& h) const {
  h.mix(values_.size());
  for (const auto& [k, v] : values_) {
    h.mix(k);
    h.mix(v);
  }
}

bool PredState::read(const ptx::Pred& p) const {
  auto it = values_.find(p.index);
  return it != values_.end() && it->second;
}

void PredState::write(const ptx::Pred& p, bool value) {
  values_[p.index] = value;
}

void PredState::mix_hash(Hasher& h) const {
  h.mix(values_.size());
  for (const auto& [k, v] : values_) {
    h.mix((static_cast<std::uint64_t>(k) << 1) | (v ? 1 : 0));
  }
}

void Thread::mix_hash(Hasher& h) const {
  h.mix(tid);
  rho.mix_hash(h);
  phi.mix_hash(h);
}

}  // namespace cac::sem
