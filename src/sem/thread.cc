#include "sem/thread.h"

#include "support/binio.h"
#include "support/bits.h"

namespace cac::sem {

std::uint64_t RegFile::read(const ptx::Reg& r) const {
  auto it = values_.find(r.key());
  return it == values_.end() ? 0 : it->second;
}

std::optional<std::uint64_t> RegFile::read_opt(const ptx::Reg& r) const {
  auto it = values_.find(r.key());
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

void RegFile::write(const ptx::Reg& r, std::uint64_t value) {
  values_[r.key()] = truncate(value, r.width);
}

void RegFile::mix_hash(Hasher& h) const {
  h.mix(values_.size());
  for (const auto& [k, v] : values_) {
    h.mix(k);
    h.mix(v);
  }
}

bool PredState::read(const ptx::Pred& p) const {
  auto it = values_.find(p.index);
  return it != values_.end() && it->second;
}

void PredState::write(const ptx::Pred& p, bool value) {
  values_[p.index] = value;
}

void PredState::mix_hash(Hasher& h) const {
  h.mix(values_.size());
  for (const auto& [k, v] : values_) {
    h.mix((static_cast<std::uint64_t>(k) << 1) | (v ? 1 : 0));
  }
}

void Thread::mix_hash(Hasher& h) const {
  h.mix(tid);
  rho.mix_hash(h);
  phi.mix_hash(h);
}

// std::map iteration is key-ordered, so the encoding is canonical:
// structurally equal register files serialize to identical bytes.

void RegFile::encode(support::BinWriter& w) const {
  w.u64(values_.size());
  for (const auto& [k, v] : values_) {
    w.u32(k);
    w.u64(v);
  }
}

RegFile RegFile::decode(support::BinReader& r) {
  RegFile rf;
  const std::uint64_t n = r.count(12);  // u32 key + u64 value
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t k = r.u32();
    rf.values_[k] = r.u64();
  }
  return rf;
}

void PredState::encode(support::BinWriter& w) const {
  w.u64(values_.size());
  for (const auto& [k, v] : values_) {
    w.u32(k);
    w.u8(v ? 1 : 0);
  }
}

PredState PredState::decode(support::BinReader& r) {
  PredState ps;
  const std::uint64_t n = r.count(5);  // u32 key + u8 value
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint16_t k = static_cast<std::uint16_t>(r.u32());
    ps.values_[k] = r.u8() != 0;
  }
  return ps;
}

void Thread::encode(support::BinWriter& w) const {
  w.u32(tid);
  rho.encode(w);
  phi.encode(w);
}

Thread Thread::decode(support::BinReader& r) {
  Thread t;
  t.tid = r.u32();
  t.rho = RegFile::decode(r);
  t.phi = PredState::decode(r);
  return t;
}

}  // namespace cac::sem
