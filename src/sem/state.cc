#include "sem/state.h"

namespace cac::sem {

void Block::mix_hash(Hasher& h) const {
  h.mix(warps.size());
  for (const Warp& w : warps) w.mix_hash(h);
}

void Grid::mix_hash(Hasher& h) const {
  h.mix(blocks.size());
  for (const Block& b : blocks) b.mix_hash(h);
}

std::uint64_t Grid::hash() const {
  Hasher h;
  mix_hash(h);
  return h.value();
}

std::uint64_t Machine::hash() const {
  return hash_cache.get_or([&] {
    Hasher h;
    grid.mix_hash(h);
    h.mix(memory.hash());
    return h.value();
  });
}

Grid generate_grid(const KernelConfig& kc) {
  Grid g;
  g.blocks.resize(kc.num_blocks());
  const std::uint32_t tpb = kc.threads_per_block();
  for (std::uint32_t b = 0; b < kc.num_blocks(); ++b) {
    Block& blk = g.blocks[b];
    for (std::uint32_t t = 0; t < tpb; t += kc.warp_size) {
      const std::uint32_t n = std::min(kc.warp_size, tpb - t);
      blk.warps.push_back(make_warp(linear_tid(kc, b, t), n));
    }
  }
  return g;
}

std::string to_string(const Grid& g) {
  std::string out;
  for (std::size_t b = 0; b < g.blocks.size(); ++b) {
    out += "block " + std::to_string(b) + ":";
    for (const Warp& w : g.blocks[b].warps) out += " " + w.shape();
    out += "\n";
  }
  return out;
}

}  // namespace cac::sem
