// The trusted semantics kernel: the derivation rules of Figs. 1 and 3.
//
// Everything in this header is the C++ analogue of the paper's ~350
// SLOC Coq model — the *only* code that may transform machine states.
// The checking layer (src/check), the schedulers (src/sched) and the
// symbolic engine (src/sym) are untrusted: whatever they claim must be
// replayable through these functions (see check/trace.h), mirroring the
// paper's argument that proof tactics add nothing to the TCB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptx/program.h"
#include "sem/state.h"

namespace cac::sem {

/// Order in which the per-thread memory effects of one warp instruction
/// are applied.  Register updates are thread-local, so only St/Atom can
/// observe this order — which is exactly the warp-internal
/// nondeterminism the paper's nd_map theorem quantifies over (§IV).
struct ThreadOrder {
  enum class Kind : std::uint8_t { Ascending, Descending, Permuted };
  Kind kind = Kind::Ascending;
  /// For Permuted: a permutation of [0, #threads) applied to the
  /// thread vector's order.  Shorter permutations fall back to
  /// ascending for the remaining threads.
  std::vector<std::uint32_t> perm;
};

struct StepOptions {
  ThreadOrder order;
  /// Record every Ld/St/Atom access in StepEvents::accesses (used by
  /// the race detector, check/race.h).  Off by default: logging every
  /// lane of every memory instruction is costly.
  bool log_accesses = false;
};

/// Diagnostics collected while a rule fires.  They never influence the
/// transition itself; the validation layer decides what they mean.
struct StepEvents {
  struct InvalidRead {  // load touched a byte whose valid bit is false
    ptx::Space space;
    std::uint64_t addr;
    std::uint32_t len;
    std::uint32_t tid;
  };
  struct StoreConflict {  // two lanes of one St wrote different bytes
    ptx::Space space;     // to the same address
    std::uint64_t addr;
    std::uint32_t tid_a, tid_b;
  };
  struct UninitRead {  // operand read from a never-written register
    std::uint32_t tid;
    ptx::Reg reg;
  };
  /// One lane's memory access (logged when StepOptions::log_accesses).
  /// `addr` is the effective flat address (Shared bank base included).
  struct Access {
    ptx::Space space;
    std::uint64_t addr;
    std::uint32_t len;
    std::uint32_t tid;
    bool write;
    bool atomic;
  };
  std::vector<InvalidRead> invalid_reads;
  std::vector<StoreConflict> store_conflicts;
  std::vector<UninitRead> uninit_reads;
  std::vector<Access> accesses;

  void clear();
  [[nodiscard]] bool empty() const;
};

enum class StepStatus : std::uint8_t { Ok, Fault };

struct StepResult {
  StepStatus status = StepStatus::Ok;
  std::string fault;  // human-readable cause when status == Fault

  [[nodiscard]] bool ok() const { return status == StepStatus::Ok; }
};

/// Fig. 1: one warp small-step executing the instruction at w.pc()
/// (the left-most leaf).  Precondition (enforced by the block rule):
/// that instruction is neither Bar nor Exit.  `block` selects the
/// Shared bank.  On Fault the machine state must be discarded.
StepResult step_warp(const ptx::Program& prg, const KernelConfig& kc,
                     std::uint32_t block, Warp& w, mem::Memory& mu,
                     const StepOptions& opts = {},
                     StepEvents* events = nullptr);

/// A scheduler choice: one applicable derivation-rule instance of
/// Fig. 3.  The set of choices in a state is the source of scheduler
/// nondeterminism that proofs must quantify over (paper §III-9).
struct Choice {
  enum class Kind : std::uint8_t { ExecWarp, LiftBar };
  Kind kind = Kind::ExecWarp;
  std::uint32_t block = 0;
  std::uint32_t warp = 0;  // ExecWarp only

  friend bool operator==(const Choice&, const Choice&) = default;
};

/// Every rule instance applicable in the current state:
///  * ExecWarp(b,w)  — execb: warp w of block b whose next instruction
///                     is neither Bar nor Exit;
///  * LiftBar(b)     — lift-bar: every warp of block b is *uniform* at
///                     a Bar instruction.
std::vector<Choice> eligible_choices(const ptx::Program& prg, const Grid& g);

/// Apply one choice to the machine (Fig. 3 execb / lift-bar / execg).
StepResult apply_choice(const ptx::Program& prg, const KernelConfig& kc,
                        Machine& m, const Choice& c,
                        const StepOptions& opts = {},
                        StepEvents* events = nullptr);

// --- completion predicates (paper Listing 3) ---

/// A warp is complete when it is uniform and parked at Exit.  (The
/// paper's Listing 3 only inspects the left-most pc; requiring
/// uniformity is strictly sounder — a divergent warp whose left leaf
/// exited is a reconvergence bug, which is_stuck reports.)
bool warp_complete(const ptx::Program& prg, const Warp& w);
bool block_complete(const ptx::Program& prg, const Block& b);
bool terminated(const ptx::Program& prg, const Grid& g);

/// True when every warp of the block is uniform at Bar (lift-bar's
/// premise).
bool block_at_barrier(const ptx::Program& prg, const Block& b);

/// Stuck: not terminated, yet no rule applies.  This is exactly the
/// barrier-divergence deadlock class the paper discusses in §III-8.
bool is_stuck(const ptx::Program& prg, const Grid& g);

/// Human-readable explanation of why the grid is stuck (empty if not).
std::string stuck_reason(const ptx::Program& prg, const Grid& g);

std::string to_string(const Choice& c);

}  // namespace cac::sem
