#include "sem/warp.h"

#include <algorithm>

#include "support/binio.h"
#include "support/diag.h"

namespace cac::sem {

Warp& Warp::operator=(const Warp& other) {
  if (this == &other) return *this;
  pc_ = other.pc_;
  threads_ = other.threads_;
  left_ = other.left_ ? std::make_unique<Warp>(*other.left_) : nullptr;
  right_ = other.right_ ? std::make_unique<Warp>(*other.right_) : nullptr;
  return *this;
}

std::pair<Warp, Warp> Warp::take_children() {
  if (!divergent()) throw KernelError("take_children on a uniform warp");
  Warp l = std::move(*left_);
  Warp r = std::move(*right_);
  left_.reset();
  right_.reset();
  return {std::move(l), std::move(r)};
}

std::uint32_t Warp::pc() const { return leftmost_leaf().uni_pc(); }

Warp& Warp::leftmost_leaf() {
  Warp* w = this;
  while (w->divergent()) w = w->left_.get();
  return *w;
}

const Warp& Warp::leftmost_leaf() const {
  const Warp* w = this;
  while (w->divergent()) w = w->left_.get();
  return *w;
}

void Warp::collect_threads(ThreadVec& out) const {
  if (divergent()) {
    left_->collect_threads(out);
    right_->collect_threads(out);
  } else {
    out.insert(out.end(), threads_.begin(), threads_.end());
  }
}

std::size_t Warp::thread_count() const {
  if (divergent()) return left_->thread_count() + right_->thread_count();
  return threads_.size();
}

std::size_t Warp::leaf_count() const {
  if (divergent()) return left_->leaf_count() + right_->leaf_count();
  return 1;
}

std::size_t Warp::depth() const {
  if (divergent()) return 1 + std::max(left_->depth(), right_->depth());
  return 1;
}

bool Warp::operator==(const Warp& other) const {
  if (divergent() != other.divergent()) return false;
  if (divergent()) {
    return *left_ == *other.left_ && *right_ == *other.right_;
  }
  return pc_ == other.pc_ && threads_ == other.threads_;
}

void Warp::mix_hash(Hasher& h) const {
  if (divergent()) {
    h.mix(0xD17);  // divergence marker
    left_->mix_hash(h);
    right_->mix_hash(h);
    return;
  }
  h.mix(0x0741);  // uniform marker
  h.mix(pc_);
  h.mix(threads_.size());
  for (const Thread& t : threads_) t.mix_hash(h);
}

void Warp::encode(support::BinWriter& w) const {
  if (divergent()) {
    w.u8(1);
    left_->encode(w);
    right_->encode(w);
    return;
  }
  w.u8(0);
  w.u32(pc_);
  w.u64(threads_.size());
  for (const Thread& t : threads_) t.encode(w);
}

namespace {

Warp decode_warp(support::BinReader& r, unsigned depth) {
  // A warp tree never diverges deeper than one level per thread; 64 is
  // far beyond any real warp and bounds recursion on corrupt input.
  if (depth > 64) throw support::BinError("warp tree implausibly deep");
  const std::uint8_t tag = r.u8();
  if (tag == 1) {
    Warp left = decode_warp(r, depth + 1);
    Warp right = decode_warp(r, depth + 1);
    return Warp(std::move(left), std::move(right));
  }
  if (tag != 0) throw support::BinError("bad warp node tag");
  const std::uint32_t pc = r.u32();
  const std::uint64_t n = r.count(sizeof(std::uint32_t));
  ThreadVec ts;
  ts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) ts.push_back(Thread::decode(r));
  return Warp(pc, std::move(ts));
}

}  // namespace

Warp Warp::decode(support::BinReader& r) { return decode_warp(r, 0); }

std::string Warp::shape() const {
  if (divergent()) {
    return "D(" + left_->shape() + "," + right_->shape() + ")";
  }
  return "U(" + std::to_string(pc_) + ";" + std::to_string(threads_.size()) +
         ")";
}

Warp sync_warp(Warp w) {
  if (!w.divergent()) {
    // sync(pc, t) = (pc+1, t): a uniform warp steps past the Sync.
    w.set_uni_pc(w.uni_pc() + 1);
    return w;
  }
  auto [l, r] = w.take_children();
  if (!l.divergent() && l.threads().empty()) return sync_warp(std::move(r));
  if (!r.divergent() && r.threads().empty()) return sync_warp(std::move(l));
  if (!l.divergent() && !r.divergent() && l.uni_pc() == r.uni_pc()) {
    // Reconverge: union the two thread sets, canonically ordered.
    ThreadVec merged = std::move(l.threads());
    ThreadVec& rt = r.threads();
    merged.insert(merged.end(), std::make_move_iterator(rt.begin()),
                  std::make_move_iterator(rt.end()));
    std::sort(merged.begin(), merged.end(),
              [](const Thread& a, const Thread& b) { return a.tid < b.tid; });
    return Warp(l.uni_pc() + 1, std::move(merged));
  }
  if (!l.divergent()) {
    // Rotate so the still-divergent (or lagging) side executes next.
    return Warp(std::move(r), std::move(l));
  }
  return Warp(sync_warp(std::move(l)), std::move(r));
}

Warp make_warp(std::uint32_t first_tid, std::uint32_t n) {
  ThreadVec ts(n);
  for (std::uint32_t i = 0; i < n; ++i) ts[i].tid = first_tid + i;
  return Warp(0, std::move(ts));
}

}  // namespace cac::sem
