// Kernel launch configuration and the special-register auxiliary
// function (paper §III-4):
//
//   sreg_aux : tid -> sreg -> N
//
// Threads carry a single enumerated global id (paper §III-7); this
// module decodes it into the four 3-dimensional special registers
// %tid, %ctaid, %ntid, %nctaid.
#pragma once

#include <cstdint>
#include <string>

#include "ptx/operand.h"

namespace cac::sem {

struct Dim3 {
  std::uint32_t x = 1, y = 1, z = 1;

  [[nodiscard]] std::uint32_t count() const { return x * y * z; }
  [[nodiscard]] std::uint32_t at(ptx::Dim d) const {
    switch (d) {
      case ptx::Dim::X: return x;
      case ptx::Dim::Y: return y;
      case ptx::Dim::Z: return z;
    }
    return 0;
  }
  friend bool operator==(const Dim3&, const Dim3&) = default;
};

/// The paper's `kconf`: kc = ((gx,gy,gz),(bx,by,bz)).  `warp_size` is
/// 32 on real hardware (paper §II); it is a parameter here so that the
/// exhaustive schedule explorer can work with tractably small warps —
/// the semantics does not depend on the constant.
struct KernelConfig {
  Dim3 grid;
  Dim3 block;
  std::uint32_t warp_size = 32;

  [[nodiscard]] std::uint32_t threads_per_block() const {
    return block.count();
  }
  [[nodiscard]] std::uint32_t num_blocks() const { return grid.count(); }
  [[nodiscard]] std::uint32_t total_threads() const {
    return num_blocks() * threads_per_block();
  }
  [[nodiscard]] std::uint32_t warps_per_block() const {
    return (threads_per_block() + warp_size - 1) / warp_size;
  }
  friend bool operator==(const KernelConfig&, const KernelConfig&) = default;
};

/// Global linear thread id for (block b, thread-in-block t).
inline std::uint32_t linear_tid(const KernelConfig& kc, std::uint32_t b,
                                std::uint32_t t) {
  return b * kc.threads_per_block() + t;
}

/// The paper's sreg_aux: decode a thread's enumerated id into the value
/// of one special register.
std::uint32_t sreg_aux(const KernelConfig& kc, std::uint32_t tid,
                       const ptx::Sreg& sreg);

std::string to_string(const Dim3& d);
std::string to_string(const KernelConfig& kc);

}  // namespace cac::sem
