// Verification-condition layer: assembles per-thread symbolic
// summaries (sym/exec.h) into whole-kernel, for-all-inputs theorems —
// the C++ analogue of the paper's Listing 3/partial-correctness proofs,
// with the universally quantified memory state µ represented by named
// term variables instead of Coq hypotheses.
//
// Two theorem shapes are provided:
//
//  * prove_guarded_writes — "every thread t writes exactly
//    `writes(t)` when `guard(t)` holds and nothing otherwise", which
//    instantiated with guard `t < size` and write `C[4t] = A[4t]+B[4t]`
//    is the paper's vector-sum partial correctness, proved for ALL
//    input arrays and sizes at once (unlike the concrete model checker,
//    which proves one initial memory at a time);
//
//  * prove_equivalent — two kernels perform identical stores under
//    identical conditions for every input; used to machine-check that
//    the mechanical PTX lowering agrees with the paper's hand
//    translation (Listing 1 vs Listing 2).
//
// Obligations are discharged by structural equality of normalized
// terms in a shared arena (plus the path-partition argument); there is
// no SMT solver, mirroring the paper's dependence on plain reduction.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sym/exec.h"

namespace cac::vcgen {

struct ProofResult {
  bool proved = false;
  /// Not-proved-but-not-refuted: a symbolic path failed (step/path
  /// bound exceeded, unsupported construct) before any obligation was
  /// refuted, so no conclusion follows.  Front ends report this as a
  /// tripped limit (exit 3) rather than a refutation (exit 1) —
  /// docs/api.md's exit-code convention.
  bool inconclusive = false;
  std::string detail;             // first failing obligation, or stats
  std::uint32_t threads = 0;      // threads analyzed
  std::size_t paths = 0;          // total symbolic paths
  std::size_t obligations = 0;    // term equalities discharged

  /// The first failing obligation, structured — what `detail` renders.
  /// `obligation` names the check that failed: "engine" (a symbolic
  /// path died), "path-count" / "path-condition" (partition mismatch),
  /// "stores" (write sets differ), "guard" (guard->writes maps differ,
  /// equiv's normalized mode), "cell-set" / "value" (per-cell
  /// disagreements).  `lhs`/`rhs` carry the two sides' normalized
  /// renderings; `cell` the disputed cell when one applies.
  struct Failure {
    std::uint32_t thread = 0;
    std::size_t path_index = 0;
    std::string obligation;
    std::string cell;
    std::string lhs, rhs;
  };
  std::optional<Failure> failure;
};

/// Expected behaviour of one thread under its guard.
struct GuardedWriteSpec {
  /// Build the guard condition for thread `tid` (width-1 term); pass
  /// nullptr for an unconditional kernel (single path per thread).
  std::function<sym::TermRef(sym::TermArena&, std::uint32_t tid)> guard;
  /// Build the expected write set for thread `tid` when the guard
  /// holds (canonical (region, offset) order not required).
  std::function<std::vector<sym::SymWrite>(sym::TermArena&,
                                           std::uint32_t tid)>
      writes;
};

/// Prove: for every thread and every input valuation, the thread's
/// stores are exactly spec.writes(tid) when spec.guard(tid) holds, and
/// none otherwise.
ProofResult prove_guarded_writes(const ptx::Program& prg,
                                 const sem::KernelConfig& kc,
                                 const sym::SymEnv& env,
                                 const GuardedWriteSpec& spec,
                                 const sym::SymExecOptions& opts = {});

/// Prove: two kernels have identical per-thread path partitions and
/// identical stores on corresponding paths, for every input.  Both are
/// executed in the same arena/environment so identical inputs are
/// identical variables.
ProofResult prove_equivalent(const ptx::Program& a, const ptx::Program& b,
                             const sem::KernelConfig& kc,
                             const sym::SymEnv& env,
                             const sym::SymExecOptions& opts = {});

/// Prove (via the block-level engine, sym/block_exec.h): the single
/// block `block_index` performs exactly the expected stores for every
/// input — covering barrier/Shared-memory kernels such as the tree
/// reduction, whose output term the expected-writes builder
/// reconstructs in the same arena.
ProofResult prove_block_writes(
    const ptx::Program& prg, const sem::KernelConfig& kc,
    const sym::SymEnv& env,
    const std::function<std::vector<sym::SymWrite>(sym::TermArena&)>&
        expected,
    std::uint32_t block_index = 0);

}  // namespace cac::vcgen
