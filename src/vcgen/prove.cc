#include "vcgen/prove.h"

#include <algorithm>

#include "sym/block_exec.h"

namespace cac::vcgen {

using sym::SymPath;
using sym::SymWrite;
using sym::TermArena;
using sym::TermRef;
using sym::ThreadSummary;

namespace {

std::string describe_writes(const TermArena& arena,
                            const std::vector<SymWrite>& ws) {
  std::string out = "{";
  for (const SymWrite& w : ws) {
    out += " " + w.region + "[" + std::to_string(w.offset) + "]:=" +
           arena.to_string(w.value) + ";";
  }
  return out + " }";
}

bool writes_equal(std::vector<SymWrite> a, std::vector<SymWrite> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

ProofResult prove_guarded_writes(const ptx::Program& prg,
                                 const sem::KernelConfig& kc,
                                 const sym::SymEnv& env,
                                 const GuardedWriteSpec& spec,
                                 const sym::SymExecOptions& opts) {
  ProofResult result;
  TermArena& arena = *env.arena;
  for (std::uint32_t tid = 0; tid < kc.total_threads(); ++tid) {
    ++result.threads;
    const ThreadSummary summary = sym_execute_thread(prg, kc, tid, env, opts);
    result.paths += summary.paths.size();
    for (const SymPath& p : summary.paths) {
      if (!p.ok() || !p.exited) {
        result.inconclusive = true;
        result.detail = "thread " + std::to_string(tid) +
                        ": symbolic path failed: " + p.failure;
        result.failure =
            ProofResult::Failure{tid, 0, "engine", "", p.failure, ""};
        return result;
      }
    }
    if (!spec.guard) {
      if (summary.paths.size() != 1) {
        result.detail = "thread " + std::to_string(tid) + ": expected one " +
                        "path, found " + std::to_string(summary.paths.size());
        result.failure = ProofResult::Failure{
            tid, 0, "path-count", "", "1",
            std::to_string(summary.paths.size())};
        return result;
      }
      const auto expected = spec.writes(arena, tid);
      ++result.obligations;
      if (!writes_equal(summary.paths[0].writes, expected)) {
        result.detail = "thread " + std::to_string(tid) + ": stores " +
                        describe_writes(arena, summary.paths[0].writes) +
                        " != expected " + describe_writes(arena, expected);
        result.failure = ProofResult::Failure{
            tid, 0, "stores", "",
            describe_writes(arena, summary.paths[0].writes),
            describe_writes(arena, expected)};
        return result;
      }
      continue;
    }

    const TermRef guard = spec.guard(arena, tid);
    if (const auto g = arena.const_value(guard)) {
      // Concrete guard: a single path whose writes depend on g.
      if (summary.paths.size() != 1) {
        result.detail = "thread " + std::to_string(tid) +
                        ": concrete guard but " +
                        std::to_string(summary.paths.size()) + " paths";
        result.failure = ProofResult::Failure{
            tid, 0, "path-count", "", "1",
            std::to_string(summary.paths.size())};
        return result;
      }
      const auto expected =
          *g ? spec.writes(arena, tid) : std::vector<SymWrite>{};
      ++result.obligations;
      if (!writes_equal(summary.paths[0].writes, expected)) {
        result.detail = "thread " + std::to_string(tid) + ": stores " +
                        describe_writes(arena, summary.paths[0].writes) +
                        " != expected " + describe_writes(arena, expected);
        result.failure = ProofResult::Failure{
            tid, 0, "stores", "",
            describe_writes(arena, summary.paths[0].writes),
            describe_writes(arena, expected)};
        return result;
      }
      continue;
    }

    // Symbolic guard: expect exactly the partition {guard, not guard}.
    if (summary.paths.size() != 2) {
      result.detail = "thread " + std::to_string(tid) + ": expected the " +
                      "{guard, !guard} partition, found " +
                      std::to_string(summary.paths.size()) + " paths";
      result.failure = ProofResult::Failure{
          tid, 0, "path-count", "", "2",
          std::to_string(summary.paths.size())};
      return result;
    }
    const TermRef not_guard = arena.lnot(guard);
    const SymPath* on = nullptr;
    const SymPath* off = nullptr;
    for (const SymPath& p : summary.paths) {
      if (p.cond == guard) on = &p;
      if (p.cond == not_guard) off = &p;
    }
    if (!on || !off) {
      result.detail =
          "thread " + std::to_string(tid) + ": path conditions {" +
          arena.to_string(summary.paths[0].cond) + ", " +
          arena.to_string(summary.paths[1].cond) +
          "} do not match the guard " + arena.to_string(guard);
      result.failure = ProofResult::Failure{
          tid, 0, "path-condition", "",
          arena.to_string(summary.paths[0].cond) + ", " +
              arena.to_string(summary.paths[1].cond),
          arena.to_string(guard)};
      return result;
    }
    const auto expected = spec.writes(arena, tid);
    result.obligations += 2;
    if (!writes_equal(on->writes, expected)) {
      result.detail = "thread " + std::to_string(tid) + " (guard): stores " +
                      describe_writes(arena, on->writes) + " != expected " +
                      describe_writes(arena, expected);
      result.failure = ProofResult::Failure{
          tid, 0, "stores", "", describe_writes(arena, on->writes),
          describe_writes(arena, expected)};
      return result;
    }
    if (!off->writes.empty()) {
      result.detail = "thread " + std::to_string(tid) +
                      " (!guard): unexpected stores " +
                      describe_writes(arena, off->writes);
      result.failure = ProofResult::Failure{
          tid, 1, "stores", "", describe_writes(arena, off->writes), "{ }"};
      return result;
    }
  }
  result.proved = true;
  result.detail = std::to_string(result.threads) + " threads, " +
                  std::to_string(result.paths) + " paths, " +
                  std::to_string(result.obligations) +
                  " obligations discharged";
  return result;
}

ProofResult prove_equivalent(const ptx::Program& a, const ptx::Program& b,
                             const sem::KernelConfig& kc,
                             const sym::SymEnv& env,
                             const sym::SymExecOptions& opts) {
  ProofResult result;
  TermArena& arena = *env.arena;
  for (std::uint32_t tid = 0; tid < kc.total_threads(); ++tid) {
    ++result.threads;
    const ThreadSummary sa = sym_execute_thread(a, kc, tid, env, opts);
    const ThreadSummary sb = sym_execute_thread(b, kc, tid, env, opts);
    result.paths += sa.paths.size() + sb.paths.size();
    if (!sa.all_ok() || !sb.all_ok()) {
      std::string why;
      for (const ThreadSummary* s : {&sa, &sb}) {
        for (const SymPath& p : s->paths) {
          if (!p.ok()) { why = p.failure; break; }
        }
        if (!why.empty()) break;
      }
      result.inconclusive = true;
      result.detail = "thread " + std::to_string(tid) +
                      ": a symbolic path failed" +
                      (why.empty() ? "" : ": " + why);
      result.failure = ProofResult::Failure{tid, 0, "engine", "", why, ""};
      return result;
    }
    if (sa.paths.size() != sb.paths.size()) {
      result.detail = "thread " + std::to_string(tid) + ": " + a.name() +
                      " has " + std::to_string(sa.paths.size()) +
                      " paths, " + b.name() + " has " +
                      std::to_string(sb.paths.size());
      result.failure = ProofResult::Failure{
          tid, 0, "path-count", "", std::to_string(sa.paths.size()),
          std::to_string(sb.paths.size())};
      return result;
    }
    // Paths are sorted by condition ref; identical partitions align.
    for (std::size_t i = 0; i < sa.paths.size(); ++i) {
      const SymPath& pa = sa.paths[i];
      const SymPath& pb = sb.paths[i];
      ++result.obligations;
      if (pa.cond != pb.cond) {
        result.detail = "thread " + std::to_string(tid) +
                        ": path conditions differ: " +
                        arena.to_string(pa.cond) + " vs " +
                        arena.to_string(pb.cond);
        result.failure = ProofResult::Failure{
            tid, i, "path-condition", "", arena.to_string(pa.cond),
            arena.to_string(pb.cond)};
        return result;
      }
      ++result.obligations;
      if (!writes_equal(pa.writes, pb.writes)) {
        result.detail =
            "thread " + std::to_string(tid) + ": stores differ under " +
            arena.to_string(pa.cond) + ": " +
            describe_writes(arena, pa.writes) + " vs " +
            describe_writes(arena, pb.writes);
        result.failure = ProofResult::Failure{
            tid, i, "stores", "", describe_writes(arena, pa.writes),
            describe_writes(arena, pb.writes)};
        return result;
      }
    }
  }
  result.proved = true;
  result.detail = std::to_string(result.threads) + " threads, " +
                  std::to_string(result.paths) + " paths, " +
                  std::to_string(result.obligations) +
                  " obligations discharged";
  return result;
}

ProofResult prove_block_writes(
    const ptx::Program& prg, const sem::KernelConfig& kc,
    const sym::SymEnv& env,
    const std::function<std::vector<sym::SymWrite>(sym::TermArena&)>&
        expected,
    std::uint32_t block_index) {
  ProofResult result;
  TermArena& arena = *env.arena;
  const sym::BlockSummary s =
      sym_execute_block(prg, kc, block_index, env);
  result.threads = kc.threads_per_block();
  result.paths = 1;
  if (!s.ok) {
    result.inconclusive = true;
    result.detail = "block execution failed: " + s.failure;
    result.failure =
        ProofResult::Failure{0, 0, "engine", "", s.failure, ""};
    return result;
  }
  // Shared memory is block-private scratch that dies with the kernel:
  // only Global-space stores are observable post-launch.
  std::vector<sym::SymWrite> observable;
  for (const sym::SymWrite& w : s.writes) {
    if (w.region != "shared") observable.push_back(w);
  }
  auto want = expected(arena);
  ++result.obligations;
  if (!writes_equal(observable, want)) {
    result.detail = "block stores " + describe_writes(arena, observable) +
                    " != expected " + describe_writes(arena, want);
    result.failure = ProofResult::Failure{
        0, 0, "stores", "", describe_writes(arena, observable),
        describe_writes(arena, want)};
    return result;
  }
  result.proved = true;
  result.detail = "block of " + std::to_string(result.threads) +
                  " threads, " + std::to_string(s.steps) +
                  " symbolic steps, " + std::to_string(s.barriers) +
                  " barriers";
  return result;
}

}  // namespace cac::vcgen
