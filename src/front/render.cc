// Classic text rendering of a front::Result — byte-compatible with the
// output the monolithic cacval produced, so every PASS_REGULAR_EXPRESSION
// smoke test and every user's grep keeps working.  The CLI shim prints
// exactly this string; nothing formats output anywhere else.
#include <algorithm>
#include <cstdio>

#include "front/front.h"

namespace cac::front {

namespace {

std::string u64s(std::uint64_t v) { return std::to_string(v); }

/// Model-checker violation kinds — rendered as "violation:" lines;
/// other finding classes (lint passes, race pairs) have their own
/// renderings.
bool is_violation(const Diagnostic& d) {
  return d.pass == "stuck" || d.pass == "fault" || d.pass == "cycle" ||
         d.pass == "depth-exceeded";
}

std::string render_lint(const Result& r) {
  std::string out;
  for (const Diagnostic& f : r.findings) {
    out += r.file + ":";
    if (f.loc.valid()) {
      out += u64s(f.loc.line) + ":" + u64s(f.loc.column) + ":";
    }
    out += " ";
    out += f.severity + ": [" + f.pass + "] " + r.kernel + ": " + f.message +
           " (pc " + u64s(f.pc) + ")\n";
  }
  if (r.findings.empty()) out = r.file + ": " + r.kernel + ": clean\n";
  return out;
}

/// The fault/limit/checkpoint/store diagnostics shared by check and
/// validate (the old print_exploration_diagnostics).
std::string render_exploration(const Result& r) {
  std::string out;
  for (const Diagnostic& d : r.findings) {
    if (!is_violation(d)) continue;
    out += "violation: " + d.pass + ": " + d.message + " (after " +
           u64s(d.steps) + " steps)\n";
  }
  if (!r.stats.exhaustive) {
    out += "limit tripped: " + r.stats.limit_hit +
           " (max-states=" + u64s(r.stats.max_states_limit) +
           ", max-depth=" + u64s(r.stats.max_depth_limit) + "; visited " +
           u64s(r.stats.states_visited) + " states)\n";
  }
  if (r.checkpointed) {
    out += "checkpoint written: " + r.checkpoint_path + "\n";
  }
  const sched::StateStore::Stats& ss = r.stats.store;
  if (ss.states != 0) {
    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "store: %llu KiB resident, %llu KiB spilled, %llu evictions, "
        "%llu delta frags, %llu remats, bloom hit rate %.1f%%\n",
        static_cast<unsigned long long>(ss.resident_bytes >> 10),
        static_cast<unsigned long long>(ss.spilled_bytes >> 10),
        static_cast<unsigned long long>(ss.hot_evictions),
        static_cast<unsigned long long>(ss.delta_fragments),
        static_cast<unsigned long long>(ss.rematerializations),
        100.0 * ss.bloom_hit_rate());
    out += buf;
  }
  // Absorbed degradations (docs/robustness.md): reported here in the
  // text rendering only — the verdict and the JSON schema are
  // unaffected by persistence or capacity faults.
  if (ss.degraded_spill != 0) {
    out += "warning: spill tier degraded (" + u64s(ss.degraded_spill) +
           " failure" + (ss.degraded_spill == 1 ? "" : "s") +
           "); run completed resident-only\n";
  }
  if (r.stats.checkpoint_write_failures != 0) {
    out += "warning: " + u64s(r.stats.checkpoint_write_failures) +
           " checkpoint write failure" +
           (r.stats.checkpoint_write_failures == 1 ? "" : "s") +
           " (retried next cadence); verdict unaffected\n";
  }
  return out;
}

std::string render_counterexample(const Result& r) {
  if (r.counterexample.empty()) return "";
  std::string out =
      "counterexample schedule (" + u64s(r.counterexample.size()) + " steps):";
  const std::size_t show = std::min<std::size_t>(r.counterexample.size(), 20);
  for (std::size_t i = 0; i < show; ++i) out += " " + r.counterexample[i];
  out += r.counterexample.size() > show ? " ...\n" : "\n";
  return out;
}

std::string equiv_word(const Result& r) {
  if (r.verdict == "equivalent") return "PROVED";
  if (r.verdict == "not-equivalent") return "REFUTED";
  return "INCONCLUSIVE";
}

/// Equiv extras below the pinned verdict line: the first failing
/// obligation and the replay-validated counterexample, when present.
std::string render_equiv_extras(const Result& r) {
  std::string out;
  if (r.equiv_failure.present) {
    const EquivFailure& f = r.equiv_failure;
    out += "failing obligation: " + f.obligation + " (thread " +
           u64s(f.thread) + ", path " + u64s(f.path_index) + ")";
    if (!f.cell.empty()) out += " at " + f.cell;
    out += "\n";
    if (!f.lhs.empty() || !f.rhs.empty()) {
      out += "  lhs: " + f.lhs + "\n  rhs: " + f.rhs + "\n";
    }
  }
  if (r.equiv_cex.present) {
    const EquivCex& c = r.equiv_cex;
    out += "counterexample (replay-validated):\n";
    for (const auto& [name, value] : c.inputs) {
      out += "  " + name + " = " + u64s(value) + "\n";
    }
    out += "  diverging store: " + c.region + "[" + u64s(c.offset) +
           "] = " + u64s(c.value_a) + " vs " + u64s(c.value_b) + "\n";
  }
  return out;
}

}  // namespace

std::string render_text(const Result& r) {
  if (r.command == "lint") return render_lint(r);
  if (r.command == "equiv") {
    return r.kernel + " == " + r.kernel_b + ": " + equiv_word(r) + " (" +
           r.detail + ")\n" + render_equiv_extras(r);
  }
  if (r.command == "validate") {
    return r.text + render_exploration(r) + render_counterexample(r);
  }
  // check
  return r.verdict + ": " + r.detail + "\n" + render_exploration(r) +
         render_counterexample(r);
}

}  // namespace cac::front
