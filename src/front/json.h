// Minimal JSON layer for the verification service (docs/serve.md).
//
// Two halves, both dependency-free:
//
//  * JsonWriter — an append-only emitter with automatic comma and
//    nesting management.  Field order is exactly call order, and every
//    number is emitted as a decimal integer, so two runs that compute
//    the same values produce byte-identical documents — the property
//    the verdict cache and the crash drill's "byte-identical verdict"
//    assertions rest on.
//  * json_parse — a strict recursive-descent reader used by the server
//    and client for request/response payloads.  Untrusted input:
//    malformed documents raise JsonError (never a crash), depth and
//    size are bounded, and trailing junk is rejected.
//
// This is deliberately not a general-purpose JSON library: no floats
// on the write side (stats are integers; derived ratios are scaled to
// integer permille), numbers parse into int64/uint64/double as needed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cac::front {

/// Malformed JSON input (parse side) or emitter misuse (write side).
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

std::string json_escape(std::string_view s);

/// Streaming emitter.  Usage:
///   JsonWriter w;
///   w.begin_obj().key("a").value(1).key("b").begin_arr().value("x")
///    .end_arr().end_obj();
///   std::string doc = w.take();
class JsonWriter {
 public:
  JsonWriter& begin_obj();
  JsonWriter& end_obj();
  JsonWriter& begin_arr();
  JsonWriter& end_arr();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value_null();
  /// Splice an already-serialized JSON document in value position.
  JsonWriter& raw(std::string_view json);

  /// The finished document; the writer must be balanced.
  std::string take();

 private:
  void pre_value();
  std::string out_;
  /// Nesting stack: 'o' = object (expecting key), 'v' = object
  /// (expecting value after key), 'a' = array.
  std::string nest_;
  std::vector<bool> first_;
};

/// Parsed JSON value.  Object member order is preserved (vector of
/// pairs) so documents round-trip deterministically.
struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Int, Uint, Double, String,
                                   Array, Object };
  Kind kind = Kind::Null;
  bool b = false;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  [[nodiscard]] bool is_obj() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_arr() const { return kind == Kind::Array; }
  /// Object member by key, or nullptr.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;
  /// Typed accessors; throw JsonError on a kind mismatch.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_str() const;
  /// Object member coerced with a default when absent.
  [[nodiscard]] std::uint64_t u64_or(std::string_view key,
                                     std::uint64_t dflt) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool dflt) const;
  [[nodiscard]] std::string str_or(std::string_view key,
                                   const std::string& dflt) const;
};

/// Strict parse of one complete document; throws JsonError on anything
/// malformed, over-deep (>64 levels), or followed by trailing junk.
JsonValue json_parse(std::string_view text);

}  // namespace cac::front
