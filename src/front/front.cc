#include "front/front.h"

#include <algorithm>
#include <utility>

#include "analysis/disjoint.h"
#include "analysis/lint.h"
#include "check/validate.h"
#include "equiv/check.h"
#include "ptx/lower.h"
#include "sym/exec.h"
#include "vcgen/prove.h"

namespace cac::front {

namespace {

ptx::LoweredModule lower(const std::string& source, bool insert_syncs) {
  ptx::LowerOptions lopts;
  lopts.insert_syncs = insert_syncs;
  return ptx::load_ptx(source, lopts);
}

const ptx::Program& pick_kernel(const ptx::LoweredModule& mod,
                                const std::string& name) {
  if (mod.kernels.empty()) throw PtxError("module has no kernels");
  if (name.empty()) return mod.kernels.front();
  return mod.kernel(name);
}

/// Launch specialization for the static analyzer, from the same values
/// the explorer launches with: block/grid dims plus every param value
/// masked to its slot's width.
analysis::LaunchEnv make_launch_env(const ptx::Program& prg,
                                    const sem::LaunchSpec& launch) {
  analysis::LaunchEnv env;
  env.known = true;
  env.ntid[0] = launch.block.x;
  env.ntid[1] = launch.block.y;
  env.ntid[2] = launch.block.z;
  env.nctaid[0] = launch.grid.x;
  env.nctaid[1] = launch.grid.y;
  env.nctaid[2] = launch.grid.z;
  for (const auto& [name, value] : launch.params) {
    for (const ptx::ParamSlot& slot : prg.params()) {
      if (slot.name != name) continue;
      const std::uint64_t mask =
          slot.type.width >= 64 ? ~0ull : (1ull << slot.type.width) - 1;
      env.params[slot.offset] = value & mask;
    }
  }
  return env;
}

/// Copy the exploration outcome into the result: stats, limit state,
/// checkpoint state, and one Diagnostic per violation.
void fill_exploration(Result& r, const sched::ExploreResult& ex,
                      const sched::ExploreOptions& eopts) {
  r.stats.have_explore = true;
  r.stats.states_visited = ex.states_visited;
  r.stats.transitions = ex.transitions;
  r.stats.exhaustive = ex.exhaustive;
  r.stats.limit_hit = sched::to_string(ex.limit_hit);
  r.stats.min_steps = ex.min_steps_to_termination;
  r.stats.max_steps = ex.max_steps_to_termination;
  r.stats.max_states_limit = eopts.max_states;
  r.stats.max_depth_limit = eopts.max_depth;
  r.stats.store = ex.store_stats;
  r.stats.checkpoint_write_failures = ex.checkpoint_write_failures;
  r.limit_tripped = ex.limit_hit != sched::ExploreResult::Limit::None;
  r.checkpointed = ex.checkpointed;
  if (ex.checkpointed) r.checkpoint_path = eopts.checkpoint_path;
  for (const sched::Violation& viol : ex.violations) {
    Diagnostic d;
    d.pass = sched::to_string(viol.kind);
    d.message = viol.message;
    d.steps = viol.trace.size();
    r.findings.push_back(std::move(d));
  }
}

void fill_counterexample(Result& r, const std::vector<sem::Choice>& cex) {
  r.counterexample.reserve(cex.size());
  for (const sem::Choice& c : cex) r.counterexample.push_back(sem::to_string(c));
}

sched::ExploreOptions effective_explore(const CheckRequest& req,
                                        const RunHooks& hooks,
                                        const ptx::Program& prg, Result& r) {
  sched::ExploreOptions eopts = req.explore;
  if (hooks.stop_flag != nullptr) eopts.stop_flag = hooks.stop_flag;
  if (req.por_oracle) {
    eopts.partial_order_reduction = true;
    eopts.por_independent_pcs = analysis::independent_access_pcs(
        prg, make_launch_env(prg, req.launch));
    r.stats.por_oracle = true;
    r.stats.por_oracle_pcs = eopts.por_independent_pcs.size();
    if (hooks.on_por_oracle) {
      hooks.on_por_oracle(eopts.por_independent_pcs.size());
    }
  }
  return eopts;
}

}  // namespace

std::string command_of(const Request& req) {
  if (const auto* c = std::get_if<CheckRequest>(&req)) {
    return c->full_validate ? "validate" : "check";
  }
  if (std::holds_alternative<LintRequest>(req)) return "lint";
  return "equiv";
}

Result run_check(const CheckRequest& req, const RunHooks& hooks) {
  const ptx::LoweredModule mod = lower(req.source, req.insert_syncs);
  const ptx::Program& prg = pick_kernel(mod, req.kernel);
  sem::Launch launch = req.launch.to_launch(prg, mod.shared_bytes);
  check::Spec post;
  for (const auto& [addr, value] : req.expects) {
    post.mem_u32(mem::Space::Global, addr, value);
  }

  Result r;
  r.command = req.full_validate ? "validate" : "check";
  r.file = req.file;
  r.kernel = prg.name();
  const sched::ExploreOptions eopts = effective_explore(req, hooks, prg, r);

  if (!req.full_validate) {
    check::ModelCheckOptions opts;
    opts.explore = eopts;
    opts.require_schedule_independence = req.require_independence;
    opts.expect_exact_steps = req.exact_steps;
    opts.resume = hooks.resume;
    opts.explorer = hooks.explorer;
    const check::Verdict v = check::prove_total(prg, launch.config(),
                                                launch.machine(), post, opts);
    r.verdict = check::to_string(v.kind);
    r.detail = v.detail;
    fill_exploration(r, v.exploration, eopts);
    fill_counterexample(r, v.counterexample);
    switch (v.kind) {
      case check::Verdict::Kind::Proved: r.exit_code = kExitProved; break;
      case check::Verdict::Kind::Refuted: r.exit_code = kExitFinding; break;
      case check::Verdict::Kind::Unknown: r.exit_code = kExitLimit; break;
    }
    return r;
  }

  check::ValidateOptions vopts;
  vopts.model.explore = eopts;
  vopts.model.require_schedule_independence = req.require_independence;
  vopts.model.expect_exact_steps = req.exact_steps;
  vopts.model.resume = hooks.resume;
  vopts.model.explorer = hooks.explorer;
  vopts.collect_profile = req.profile;
  const check::ValidationReport report =
      check::validate(prg, launch.config(), launch.machine(), post, vopts);
  r.text = report.text();
  fill_exploration(r, report.model.exploration, eopts);
  fill_counterexample(r, report.model.counterexample);
  for (const check::RaceReport::Race& race : report.races.races) {
    Diagnostic d;
    d.pass = "race";
    d.message = std::string(race.write_write ? "W-W" : "R-W") + " " +
                ptx::to_string(race.space) + "[" +
                std::to_string(race.addr) + "] threads " +
                std::to_string(race.tid_a) + "/" + std::to_string(race.tid_b) +
                (race.cross_block ? " (cross-block)" : "");
    r.findings.push_back(std::move(d));
  }
  const bool passed = report.all_passed();
  r.verdict = passed ? "validated" : "not-validated";
  r.detail = report.model.detail;
  // Exit-code triage: a concrete failure anywhere in the pipeline is a
  // finding (1); "not validated" only because the model check ran out
  // of budget is a tripped limit (3).
  const bool finding =
      report.races.racy() ||
      report.model.kind == check::Verdict::Kind::Refuted ||
      (report.options_used.check_transparency && !report.transparency.holds &&
       report.model.kind != check::Verdict::Kind::Unknown) ||
      (report.options_used.check_lane_order && !report.lane_order.independent);
  if (passed) {
    r.exit_code = kExitProved;
  } else {
    r.exit_code = finding ? kExitFinding : kExitLimit;
  }
  return r;
}

std::vector<Result> run_lint(const LintRequest& req) {
  const ptx::LoweredModule mod = lower(req.source, req.insert_syncs);
  std::vector<const ptx::Program*> kernels;
  if (req.kernel.empty()) {
    for (const ptx::Program& k : mod.kernels) kernels.push_back(&k);
  } else {
    kernels.push_back(&mod.kernel(req.kernel));
  }
  if (kernels.empty()) throw PtxError("module has no kernels");

  analysis::LintOptions lo;
  lo.shared_bytes = mod.shared_bytes;
  lo.check_races = req.races;
  lo.perf = req.perf;

  std::vector<Result> out;
  out.reserve(kernels.size());
  for (const ptx::Program* k : kernels) {
    const analysis::LintReport report =
        analysis::lint_kernel(*k, mod.locs_for(*k), lo);
    Result r;
    r.command = "lint";
    r.file = req.file;
    r.kernel = k->name();
    r.verdict = report.clean() ? "clean" : "findings";
    const std::size_t errors = report.errors();
    const std::size_t warnings = report.findings.size() - errors;
    r.detail = report.clean()
                   ? "no findings"
                   : std::to_string(report.findings.size()) + " finding" +
                         (report.findings.size() == 1 ? "" : "s") + " (" +
                         std::to_string(errors) + " errors)";
    if (warnings != 0) {
      r.detail += ", " + std::to_string(warnings) + " warning" +
                  (warnings == 1 ? "" : "s");
    }
    // Warnings (the perf passes) are exit-code-neutral: only errors
    // make lint's exit non-zero.
    r.exit_code = errors != 0 ? kExitFinding : kExitProved;
    for (const analysis::Finding& f : report.findings) {
      Diagnostic d;
      d.pass = analysis::to_string(f.pass);
      d.severity = analysis::to_string(f.severity);
      d.pc = f.pc;
      d.loc = f.loc;
      d.message = f.message;
      d.cost = f.cost;
      r.findings.push_back(std::move(d));
    }
    out.push_back(std::move(r));
  }
  return out;
}

Result run_equiv(const EquivRequest& req, const RunHooks& hooks) {
  const ptx::LoweredModule mod_a = lower(req.source, req.insert_syncs);
  const ptx::LoweredModule mod_b = lower(req.source_b, req.insert_syncs);
  const ptx::Program& a = pick_kernel(mod_a, req.kernel);
  const ptx::Program& b =
      pick_kernel(mod_b, req.kernel_b.empty() ? req.kernel : req.kernel_b);

  equiv::EquivOptions opts;
  if (req.mode == "lowering") {
    opts.mode = equiv::Mode::kLowering;
  } else if (req.mode == "normalized" || req.mode.empty()) {
    opts.mode = equiv::Mode::kNormalized;
  } else {
    throw sem::LaunchArgError("unknown equiv mode '" + req.mode +
                         "' (expected 'normalized' or 'lowering')");
  }
  opts.normalize = req.normalize;
  opts.counterexample = req.counterexample;
  opts.sym = req.sym;
  opts.cex.max_trials = req.cex_inputs;

  sym::TermArena arena;
  const sym::SymEnv env = equiv::make_union_env(arena, a, b);
  const equiv::EquivResult er = equiv::check_equivalence(
      a, b, req.launch.to_config(), env, opts, hooks.explorer);

  Result r;
  r.command = "equiv";
  r.file = req.file;
  r.kernel = a.name();
  r.kernel_b = b.name();
  r.detail = er.detail;
  r.stats.have_sym = true;
  r.stats.threads = er.threads;
  r.stats.paths = er.paths;
  r.stats.obligations = er.obligations;
  r.stats.rewrites = er.rewrites;
  r.stats.cex_trials = er.cex_trials;
  r.stats.cex_budget_tripped = er.cex_budget_tripped;
  if (er.failure) {
    r.equiv_failure.present = true;
    r.equiv_failure.thread = er.failure->thread;
    r.equiv_failure.path_index = er.failure->path_index;
    r.equiv_failure.obligation = er.failure->obligation;
    r.equiv_failure.cell = er.failure->cell;
    r.equiv_failure.lhs = er.failure->lhs;
    r.equiv_failure.rhs = er.failure->rhs;
  }
  if (er.cex) {
    r.equiv_cex.present = true;
    r.equiv_cex.inputs = er.cex->inputs;
    r.equiv_cex.region = er.cex->region;
    r.equiv_cex.offset = er.cex->offset;
    r.equiv_cex.addr = er.cex->addr;
    r.equiv_cex.value_a = er.cex->value_a;
    r.equiv_cex.value_b = er.cex->value_b;
    r.equiv_cex.replay_validated = er.cex->replay_validated;
  }
  switch (er.verdict) {
    case equiv::EquivVerdict::kEquivalent:
      r.verdict = "equivalent";
      r.exit_code = kExitProved;
      break;
    case equiv::EquivVerdict::kInconclusive:
      r.verdict = "inconclusive";
      r.exit_code = kExitLimit;
      r.limit_tripped = true;
      break;
    case equiv::EquivVerdict::kNotEquivalent:
      r.verdict = "not-equivalent";
      r.exit_code = kExitFinding;
      break;
  }
  return r;
}

std::vector<Result> run(const Request& req, const RunHooks& hooks) {
  if (const auto* c = std::get_if<CheckRequest>(&req)) {
    return {run_check(*c, hooks)};
  }
  if (const auto* l = std::get_if<LintRequest>(&req)) return run_lint(*l);
  return {run_equiv(std::get<EquivRequest>(req), hooks)};
}

int exit_code_of(const std::vector<Result>& results) {
  int code = kExitProved;
  auto saw = [&](int c) {
    for (const Result& r : results) {
      if (r.exit_code == c) return true;
    }
    return false;
  };
  if (saw(kExitUsage)) return kExitUsage;
  if (saw(kExitFinding)) return kExitFinding;
  if (saw(kExitLimit)) return kExitLimit;
  return code;
}

}  // namespace cac::front
