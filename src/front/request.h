// The library-ified cacval front end (docs/api.md, docs/serve.md).
//
// Everything `tools/cacval.cpp` used to do in one 678-line monolith is
// now a library surface: a request struct per subcommand, one
// structured `front::Result`, and runner functions (front/front.h)
// that never print, never exit, and never install signal handlers —
// the CLI, the test suite, the benches, and `cacval serve` all call
// the same code paths, so a verdict computed for a socket client is
// the verdict the CLI would print.
//
// Requests are value types and serialize to/from JSON
// (front/serialize in front.h): the serve protocol's request payload,
// the server's crash-safe job journal, and the verdict cache's key
// derivation all reuse the same canonical form.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sched/explore.h"
#include "sched/state_store.h"
#include "sem/launch.h"
#include "support/diag.h"
#include "sym/exec.h"

namespace cac::front {

/// The exit-code convention shared by every subcommand and pinned by
/// smoke tests (tools/CMakeLists.txt):
///   0 — proved / clean / validated / equivalent,
///   1 — violation, refutation, race, or lint finding,
///   2 — usage, parse, or input error (incl. corrupt checkpoints),
///   3 — a limit tripped before a verdict (max-states/max-depth/
///       deadline/mem-limit, or the symbolic engine's path/step
///       bounds) — the run is inconclusive, not failed.
///   4 — the server shed the request (queue full); retryable after
///       the reply's retry_after_ms.
///   5 — the server was unreachable within the client's timeout
///       (connect retries exhausted, or it died mid-stream); retryable
///       — resubmitting an identical request re-attaches to the
///       journaled job.
/// (128+signo remains the CLI's signal-interruption status.)
enum ExitCode : int {
  kExitProved = 0,
  kExitFinding = 1,
  kExitUsage = 2,
  kExitLimit = 3,
  kExitBusy = 4,
  kExitUnreachable = 5,
};

/// `cacval check` / `cacval validate` — exhaustive model checking of
/// one kernel under one launch, optionally wrapped in the composite
/// validation pipeline (profile + races + transparency + lane order).
struct CheckRequest {
  std::string file;    // display name carried into diagnostics
  std::string source;  // the PTX text itself (content-addressed)
  std::string kernel;  // empty = the module's first kernel
  sem::LaunchSpec launch;
  /// Structural bounds and transient budgets both ride here, exactly
  /// as in direct sched::explore use.  Transient fields (threads,
  /// deadlines, store tiering, checkpoint paths, hooks) never affect
  /// the verdict and are excluded from the cache key.
  sched::ExploreOptions explore;
  /// Postcondition: Global words that must hold in every final state.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> expects;
  bool require_independence = false;
  std::uint64_t exact_steps = 0;
  /// Prove access-site independence statically under this launch and
  /// feed the pcs to the explorer's reduction (implies POR).
  bool por_oracle = false;
  bool insert_syncs = true;
  /// Run the full validate pipeline instead of prove_total alone.
  bool full_validate = false;
  bool profile = false;  // validate: collect the instruction profile
};

/// `cacval lint` — static analysis of one kernel or the whole module.
struct LintRequest {
  std::string file;
  std::string source;
  std::string kernel;  // empty = every kernel in the module
  bool races = true;
  bool insert_syncs = true;
  /// Run the performance passes (uncoalesced-global /
  /// shared-bank-conflict / divergent-region) and fold their findings
  /// in as exit-code-neutral warnings.  Structural: participates in
  /// the verdict-cache key.
  bool perf = false;
};

/// `cacval equiv` — symbolic equivalence of two kernels
/// (docs/equiv.md).
struct EquivRequest {
  std::string file;
  std::string source;
  std::string file_b;
  std::string source_b;
  std::string kernel;    // empty = first kernel of module A
  std::string kernel_b;  // empty = same resolution in module B
  sem::LaunchSpec launch;
  bool insert_syncs = true;
  sym::SymExecOptions sym;  // path/step bounds for the symbolic engine
  /// Checker mode: "normalized" (guard-alignment checker with term
  /// normalization, the default) or "lowering" (the legacy
  /// path-by-path vcgen::prove_equivalent).  Structural.
  std::string mode = "normalized";
  /// Normalized mode: run the term rewrite engine.  Structural.
  bool normalize = true;
  /// Normalized mode: search for a replay-validated counterexample on
  /// symbolic mismatch.  Structural (it decides not-equivalent vs
  /// inconclusive).
  bool counterexample = true;
  /// Counterexample search budget (input valuations examined).
  /// Transient: excluded from the cache key; a budget-exhausted
  /// inconclusive is never cached.
  std::uint64_t cex_inputs = 256;
};

/// Any request, as the serve protocol and the job journal carry it.
using Request = std::variant<CheckRequest, LintRequest, EquivRequest>;

/// The subcommand name of a request ("check" / "validate" / "lint" /
/// "equiv") — validate is a CheckRequest with full_validate set.
std::string command_of(const Request& req);

/// One finding in the unified diagnostics shape shared by every JSON
/// surface (lint findings, model-checker violations, race reports):
/// the same field names, severities, and source-location shape
/// everywhere.
struct Diagnostic {
  /// Finding class: a lint pass name ("race-candidate", ...) or a
  /// violation kind ("stuck", "fault", "cycle", "depth-exceeded").
  std::string pass;
  std::string severity = "error";  // "warning" | "error"
  std::uint32_t pc = 0;
  SourceLoc loc;  // {0,0} when no source position applies
  std::string message;
  /// Violations: length of the schedule reaching the violating state.
  std::uint64_t steps = 0;
  /// Perf findings: structured cost (transactions_per_warp /
  /// conflict_degree / divergent_insns ...), in emission order.  Empty
  /// for correctness findings; rendered as a JSON object when present.
  std::vector<std::pair<std::string, std::uint64_t>> cost;
};

struct ResultStats {
  /// Exploration block (check/validate).
  bool have_explore = false;
  std::uint64_t states_visited = 0;
  std::uint64_t transitions = 0;
  bool exhaustive = false;
  std::string limit_hit = "none";
  std::uint64_t min_steps = 0;
  std::uint64_t max_steps = 0;
  /// The configured bounds, echoed for the "limit tripped" line.
  std::uint64_t max_states_limit = 0;
  std::uint64_t max_depth_limit = 0;
  /// Store-tier accounting.  Text rendering only: resident/spilled
  /// bytes depend on allocation timing and resume history, so they are
  /// deliberately excluded from the byte-identical JSON schema.
  sched::StateStore::Stats store;
  /// Checkpoint writes that failed and were retried-next-cadence
  /// (ENOSPC/EIO).  Text rendering + serve health counters only — a
  /// machine-dependent fault count has no place in the byte-identical
  /// JSON schema.
  std::uint64_t checkpoint_write_failures = 0;
  /// Symbolic block (equiv).
  bool have_sym = false;
  std::uint64_t threads = 0;
  std::uint64_t paths = 0;
  std::uint64_t obligations = 0;
  /// Normalizer + counterexample-search accounting (equiv).
  std::uint64_t rewrites = 0;
  std::uint64_t cex_trials = 0;
  /// The cex search budget tripped before a verdict — the inconclusive
  /// depends on a transient budget, so the verdict cache skips it.
  /// Not serialized (transient by definition).
  bool cex_budget_tripped = false;
  /// POR oracle (check/validate with por_oracle).
  bool por_oracle = false;
  std::uint64_t por_oracle_pcs = 0;
};

/// Equiv: the first failing proof obligation, structured — why the two
/// kernels' symbolic summaries differ even when no counterexample was
/// found (the ProofResult-reporting satellite of docs/equiv.md).
struct EquivFailure {
  bool present = false;
  std::uint32_t thread = 0;
  std::uint64_t path_index = 0;
  std::string obligation;  // "engine"|"path-count"|...|"guard"|"value"
  std::string cell;        // disputed cell, when one applies
  std::string lhs, rhs;    // normalized renderings of the two sides
};

/// Equiv: a replay-validated concrete refutation — the input valuation
/// plus the first diverging store, read back from real explorer runs
/// of both kernels.
struct EquivCex {
  bool present = false;
  std::vector<std::pair<std::string, std::uint64_t>> inputs;
  std::string region;
  std::uint64_t offset = 0;
  std::uint64_t addr = 0;
  std::uint32_t value_a = 0;
  std::uint32_t value_b = 0;
  bool replay_validated = false;
};

/// The structured outcome of any front-end run.  `to_json` (front.h)
/// renders it into the unified schema; the CLI renders it as the
/// classic text output; serve caches and ships it.
struct Result {
  std::string command;
  std::string file;
  std::string kernel;
  std::string kernel_b;  // equiv only: the right-hand kernel
  /// "proved" / "refuted" / "unknown" (check); "validated" /
  /// "not-validated" (validate); "clean" / "findings" (lint);
  /// "equivalent" / "not-equivalent" / "inconclusive" (equiv).
  std::string verdict;
  std::string detail;
  int exit_code = kExitProved;
  bool limit_tripped = false;
  bool checkpointed = false;
  std::string checkpoint_path;
  std::vector<Diagnostic> findings;
  /// Refutations: the replayable counterexample schedule, rendered.
  std::vector<std::string> counterexample;
  /// Equiv only: structured first failure / validated counterexample.
  EquivFailure equiv_failure;
  EquivCex equiv_cex;
  ResultStats stats;
  /// The full human-readable report (validate's composite table).
  /// CLI-only; deliberately not part of the JSON schema.
  std::string text;
};

}  // namespace cac::front
