// Content-addressed verdict cache (docs/serve.md).
//
// A verification verdict is a pure function of the *structural* content
// of a request: the canonical lowered module (whitespace, comments, and
// source file names don't matter — two textually different PTX files
// that lower to the same kernels are the same job), the launch, and the
// structural exploration/symbolic options.  Transient knobs — worker
// threads, deadlines, memory budgets, store tiering, checkpoint paths —
// change how fast or how safely a verdict is computed, never which
// verdict, so they are deliberately excluded from the key.
//
// The cache stores the fully serialized results payload (the exact
// bytes `front::to_json` produced) plus the exit code, so a cache hit
// replays the original response byte-for-byte.  Bounded LRU in memory;
// optionally persisted one-file-per-key under a directory so a
// restarted server keeps its warm verdicts.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "front/request.h"

namespace cac::front {

/// 128-bit content address (two independently seeded FNV-1a streams
/// over the canonical request text).
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
  /// 32 hex digits; the on-disk file stem.
  [[nodiscard]] std::string hex() const;
};

/// Derive the key for a request.  Lowers the PTX source(s) to reach the
/// canonical form, so it throws PtxError on malformed input — callers
/// report that as a usage error without touching the cache.
CacheKey cache_key(const Request& req);

/// Whether a run's results may be cached: every per-kernel result must
/// be deterministic on re-run — complete, a finding, or stopped by a
/// *structural* limit (max-states/max-depth, the symbolic bounds).
/// Runs cut short by wall-clock/memory budgets or interruption would
/// resolve differently on other hardware and are never cached.
bool cacheable(const std::vector<Result>& results);

class VerdictCache {
 public:
  struct Options {
    std::size_t max_entries = 1024;
    /// Bound on the summed payload bytes held in memory.
    std::uint64_t max_bytes = 64ull << 20;
    /// When nonempty, entries persist here (one "<hex>.json" per key,
    /// written atomically via rename) and survive restarts; get() falls
    /// back to disk on a memory miss.
    std::string dir;
  };

  struct Entry {
    int exit_code = 0;
    /// The serialized results array, verbatim.
    std::string results_json;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// Memory misses served from the persistence directory.
    std::uint64_t disk_hits = 0;
    /// Best-effort disk persists that failed (ENOSPC/EIO).  The entry
    /// stays resident and correct; only restart warm-up is lost.
    std::uint64_t persist_failures = 0;
  };

  VerdictCache();
  explicit VerdictCache(Options opts);

  /// Thread-safe lookup; a hit refreshes LRU recency.
  std::optional<Entry> get(const CacheKey& key);
  /// Thread-safe insert (idempotent for an existing key); evicts LRU
  /// entries past the bounds and writes the disk file when persistent.
  void put(const CacheKey& key, Entry entry);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;

 private:
  struct Node {
    CacheKey key;
    Entry entry;
  };

  void evict_locked();
  [[nodiscard]] std::string path_for(const CacheKey& key) const;

  Options opts_;
  mutable std::mutex mu_;
  std::list<Node> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  std::uint64_t resident_bytes_ = 0;
  Stats stats_;
};

}  // namespace cac::front
