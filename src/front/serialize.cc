// The one JSON emitter behind every machine-readable surface
// (`--format=json`, serve payloads, the job journal) and its inverse
// for requests.  Field order is the call order below — fixed — and the
// result schema contains nothing transient (no timings, no RSS, no
// store-tier accounting, no checkpoint paths), so equal verdicts are
// byte-identical documents.  docs/api.md documents the schema; the
// golden-file tests (tests/front/result_json_test.cc) pin it.
#include <algorithm>
#include <utility>

#include "front/front.h"

namespace cac::front {

namespace {

void write_diag(JsonWriter& w, const Diagnostic& d) {
  w.begin_obj()
      .key("pass").value(d.pass)
      .key("severity").value(d.severity)
      .key("pc").value(d.pc)
      .key("line").value(d.loc.line)
      .key("column").value(d.loc.column)
      .key("message").value(d.message)
      .key("steps").value(d.steps);
  if (!d.cost.empty()) {
    w.key("cost").begin_obj();
    for (const auto& [name, value] : d.cost) w.key(name).value(value);
    w.end_obj();
  }
  w.end_obj();
}

/// Emission order for findings: (line, column, pass), stably — the
/// producing pass's internal ordering (e.g. the race pairer's) must
/// not leak into the schema, so equal verdicts stay byte-identical
/// across option sets that happen to produce the same findings
/// (`--no-races` on/off, `--perf` orderings).
std::vector<const Diagnostic*> emission_order(
    const std::vector<Diagnostic>& findings) {
  std::vector<const Diagnostic*> order;
  order.reserve(findings.size());
  for (const Diagnostic& d : findings) order.push_back(&d);
  std::stable_sort(order.begin(), order.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     if (a->loc.line != b->loc.line)
                       return a->loc.line < b->loc.line;
                     if (a->loc.column != b->loc.column)
                       return a->loc.column < b->loc.column;
                     return a->pass < b->pass;
                   });
  return order;
}

void write_stats(JsonWriter& w, const ResultStats& s) {
  w.begin_obj();
  if (s.have_explore) {
    w.key("explore").begin_obj()
        .key("states").value(s.states_visited)
        .key("transitions").value(s.transitions)
        .key("exhaustive").value(s.exhaustive)
        .key("limit").value(s.limit_hit)
        .key("min_steps").value(s.min_steps)
        .key("max_steps").value(s.max_steps)
        .key("max_states_limit").value(s.max_states_limit)
        .key("max_depth_limit").value(s.max_depth_limit)
        .end_obj();
  }
  if (s.have_sym) {
    w.key("sym").begin_obj()
        .key("threads").value(s.threads)
        .key("paths").value(static_cast<std::uint64_t>(s.paths))
        .key("obligations").value(static_cast<std::uint64_t>(s.obligations))
        .key("rewrites").value(s.rewrites)
        .key("cex_trials").value(s.cex_trials)
        .end_obj();
  }
  if (s.por_oracle) {
    w.key("por_oracle").begin_obj()
        .key("pcs").value(s.por_oracle_pcs)
        .end_obj();
  }
  w.end_obj();
}

}  // namespace

void write_json(JsonWriter& w, const Result& r) {
  w.begin_obj()
      .key("command").value(r.command)
      .key("file").value(r.file)
      .key("kernel").value(r.kernel);
  if (!r.kernel_b.empty()) w.key("kernel_b").value(r.kernel_b);
  w.key("verdict").value(r.verdict)
      .key("detail").value(r.detail)
      .key("exit_code").value(r.exit_code)
      .key("limit_tripped").value(r.limit_tripped);
  w.key("findings").begin_arr();
  for (const Diagnostic* d : emission_order(r.findings)) write_diag(w, *d);
  w.end_arr();
  w.key("counterexample").begin_arr();
  for (const std::string& c : r.counterexample) w.value(c);
  w.end_arr();
  if (r.equiv_failure.present) {
    w.key("failure").begin_obj()
        .key("thread").value(r.equiv_failure.thread)
        .key("path_index").value(r.equiv_failure.path_index)
        .key("obligation").value(r.equiv_failure.obligation)
        .key("cell").value(r.equiv_failure.cell)
        .key("lhs").value(r.equiv_failure.lhs)
        .key("rhs").value(r.equiv_failure.rhs)
        .end_obj();
  }
  if (r.equiv_cex.present) {
    w.key("cex").begin_obj();
    w.key("inputs").begin_arr();
    for (const auto& [name, value] : r.equiv_cex.inputs) {
      w.begin_arr().value(name).value(value).end_arr();
    }
    w.end_arr();
    w.key("region").value(r.equiv_cex.region)
        .key("offset").value(r.equiv_cex.offset)
        .key("addr").value(r.equiv_cex.addr)
        .key("value_a").value(r.equiv_cex.value_a)
        .key("value_b").value(r.equiv_cex.value_b)
        .key("replay_validated").value(r.equiv_cex.replay_validated)
        .end_obj();
  }
  w.key("stats");
  write_stats(w, r.stats);
  w.end_obj();
}

std::string to_json(const Result& r) {
  JsonWriter w;
  write_json(w, r);
  return w.take();
}

std::string to_json(const std::vector<Result>& results) {
  JsonWriter w;
  w.begin_arr();
  for (const Result& r : results) write_json(w, r);
  w.end_arr();
  return w.take();
}

// --- requests --------------------------------------------------------

namespace {

void write_dim3(JsonWriter& w, const sem::Dim3& d) {
  w.begin_arr().value(d.x).value(d.y).value(d.z).end_arr();
}

void write_launch(JsonWriter& w, const sem::LaunchSpec& l) {
  w.begin_obj();
  w.key("grid");
  write_dim3(w, l.grid);
  w.key("block");
  write_dim3(w, l.block);
  w.key("warp").value(l.warp_size)
      .key("global").value(l.global_bytes)
      .key("shared").value(l.shared_bytes);
  w.key("params").begin_arr();
  for (const auto& [name, value] : l.params) {
    w.begin_arr().value(name).value(value).end_arr();
  }
  w.end_arr();
  w.key("inits").begin_arr();
  for (const auto& [addr, value] : l.inits) {
    w.begin_arr().value(addr).value(value).end_arr();
  }
  w.end_arr();
  w.end_obj();
}

/// The client-settable subset of ExploreOptions.  Engine plumbing
/// (checkpoint paths, store tiering, hooks) is owned by whoever runs
/// the request and never crosses the wire.
void write_explore(JsonWriter& w, const sched::ExploreOptions& e) {
  w.begin_obj()
      .key("max_steps").value(e.max_depth)
      .key("max_states").value(e.max_states)
      .key("stop_at_first_violation").value(e.stop_at_first_violation)
      .key("por").value(e.partial_order_reduction)
      .key("threads").value(e.num_threads)
      .key("deadline_ms").value(e.deadline_ms)
      .key("mem_limit_bytes").value(e.mem_limit_bytes)
      .end_obj();
}

void write_check(JsonWriter& w, const CheckRequest& c) {
  w.begin_obj()
      .key("command").value(c.full_validate ? "validate" : "check")
      .key("file").value(c.file)
      .key("source").value(c.source)
      .key("kernel").value(c.kernel);
  w.key("launch");
  write_launch(w, c.launch);
  w.key("options");
  write_explore(w, c.explore);
  w.key("expects").begin_arr();
  for (const auto& [addr, value] : c.expects) {
    w.begin_arr().value(addr).value(value).end_arr();
  }
  w.end_arr();
  w.key("independent").value(c.require_independence)
      .key("exact_steps").value(c.exact_steps)
      .key("por_oracle").value(c.por_oracle)
      .key("insert_syncs").value(c.insert_syncs)
      .key("profile").value(c.profile)
      .end_obj();
}

void write_lint(JsonWriter& w, const LintRequest& l) {
  w.begin_obj()
      .key("command").value("lint")
      .key("file").value(l.file)
      .key("source").value(l.source)
      .key("kernel").value(l.kernel)
      .key("races").value(l.races)
      .key("insert_syncs").value(l.insert_syncs)
      .key("perf").value(l.perf)
      .end_obj();
}

void write_equiv(JsonWriter& w, const EquivRequest& e) {
  w.begin_obj()
      .key("command").value("equiv")
      .key("file").value(e.file)
      .key("source").value(e.source)
      .key("file_b").value(e.file_b)
      .key("source_b").value(e.source_b)
      .key("kernel").value(e.kernel)
      .key("kernel_b").value(e.kernel_b);
  w.key("launch");
  write_launch(w, e.launch);
  w.key("insert_syncs").value(e.insert_syncs);
  w.key("sym").begin_obj()
      .key("max_steps").value(e.sym.max_steps)
      .key("max_paths").value(static_cast<std::uint64_t>(e.sym.max_paths))
      .end_obj();
  w.key("mode").value(e.mode)
      .key("normalize").value(e.normalize)
      .key("counterexample").value(e.counterexample)
      .key("cex_inputs").value(e.cex_inputs);
  w.end_obj();
}

sem::Dim3 parse_dim3(const JsonValue* v, sem::Dim3 dflt) {
  if (v == nullptr) return dflt;
  if (!v->is_arr() || v->arr.empty() || v->arr.size() > 3) {
    throw JsonError("json: dim3 must be an array of 1..3 integers");
  }
  sem::Dim3 d{1, 1, 1};
  d.x = static_cast<std::uint32_t>(v->arr[0].as_u64());
  if (v->arr.size() > 1) d.y = static_cast<std::uint32_t>(v->arr[1].as_u64());
  if (v->arr.size() > 2) d.z = static_cast<std::uint32_t>(v->arr[2].as_u64());
  return d;
}

sem::LaunchSpec parse_launch(const JsonValue* v) {
  sem::LaunchSpec l;
  if (v == nullptr) return l;
  if (!v->is_obj()) throw JsonError("json: launch must be an object");
  l.grid = parse_dim3(v->get("grid"), l.grid);
  l.block = parse_dim3(v->get("block"), l.block);
  l.warp_size = static_cast<std::uint32_t>(v->u64_or("warp", l.warp_size));
  l.global_bytes = v->u64_or("global", l.global_bytes);
  l.shared_bytes = v->u64_or("shared", l.shared_bytes);
  if (const JsonValue* params = v->get("params")) {
    for (const JsonValue& p : params->arr) {
      if (!p.is_arr() || p.arr.size() != 2) {
        throw JsonError("json: params entries must be [name, value]");
      }
      l.params.emplace_back(p.arr[0].as_str(), p.arr[1].as_u64());
    }
  }
  if (const JsonValue* inits = v->get("inits")) {
    for (const JsonValue& p : inits->arr) {
      if (!p.is_arr() || p.arr.size() != 2) {
        throw JsonError("json: inits entries must be [addr, value]");
      }
      l.inits.emplace_back(p.arr[0].as_u64(),
                           static_cast<std::uint32_t>(p.arr[1].as_u64()));
    }
  }
  return l;
}

sched::ExploreOptions parse_explore(const JsonValue* v) {
  sched::ExploreOptions e;
  e.max_depth = 1u << 20;  // the front ends' default step bound
  if (v == nullptr) return e;
  if (!v->is_obj()) throw JsonError("json: options must be an object");
  e.max_depth = v->u64_or("max_steps", e.max_depth);
  e.max_states = v->u64_or("max_states", e.max_states);
  e.stop_at_first_violation =
      v->bool_or("stop_at_first_violation", e.stop_at_first_violation);
  e.partial_order_reduction = v->bool_or("por", e.partial_order_reduction);
  e.num_threads = static_cast<std::uint32_t>(v->u64_or("threads", 0));
  e.deadline_ms = v->u64_or("deadline_ms", 0);
  e.mem_limit_bytes = v->u64_or("mem_limit_bytes", 0);
  return e;
}

CheckRequest parse_check(const JsonValue& v, bool full_validate) {
  CheckRequest c;
  c.file = v.str_or("file", "");
  c.source = v.str_or("source", "");
  c.kernel = v.str_or("kernel", "");
  c.launch = parse_launch(v.get("launch"));
  c.explore = parse_explore(v.get("options"));
  if (const JsonValue* ex = v.get("expects")) {
    for (const JsonValue& p : ex->arr) {
      if (!p.is_arr() || p.arr.size() != 2) {
        throw JsonError("json: expects entries must be [addr, value]");
      }
      c.expects.emplace_back(p.arr[0].as_u64(),
                             static_cast<std::uint32_t>(p.arr[1].as_u64()));
    }
  }
  c.require_independence = v.bool_or("independent", false);
  c.exact_steps = v.u64_or("exact_steps", 0);
  c.por_oracle = v.bool_or("por_oracle", false);
  c.insert_syncs = v.bool_or("insert_syncs", true);
  c.full_validate = full_validate;
  c.profile = v.bool_or("profile", false);
  return c;
}

LintRequest parse_lint(const JsonValue& v) {
  LintRequest l;
  l.file = v.str_or("file", "");
  l.source = v.str_or("source", "");
  l.kernel = v.str_or("kernel", "");
  l.races = v.bool_or("races", true);
  l.insert_syncs = v.bool_or("insert_syncs", true);
  l.perf = v.bool_or("perf", false);
  return l;
}

EquivRequest parse_equiv(const JsonValue& v) {
  EquivRequest e;
  e.file = v.str_or("file", "");
  e.source = v.str_or("source", "");
  e.file_b = v.str_or("file_b", "");
  e.source_b = v.str_or("source_b", "");
  e.kernel = v.str_or("kernel", "");
  e.kernel_b = v.str_or("kernel_b", "");
  e.launch = parse_launch(v.get("launch"));
  e.insert_syncs = v.bool_or("insert_syncs", true);
  if (const JsonValue* sym = v.get("sym")) {
    e.sym.max_steps = sym->u64_or("max_steps", e.sym.max_steps);
    e.sym.max_paths = static_cast<std::size_t>(
        sym->u64_or("max_paths", e.sym.max_paths));
  }
  e.mode = v.str_or("mode", e.mode);
  e.normalize = v.bool_or("normalize", e.normalize);
  e.counterexample = v.bool_or("counterexample", e.counterexample);
  e.cex_inputs = v.u64_or("cex_inputs", e.cex_inputs);
  return e;
}

}  // namespace

std::string to_json(const Request& req) {
  JsonWriter w;
  if (const auto* c = std::get_if<CheckRequest>(&req)) {
    write_check(w, *c);
  } else if (const auto* l = std::get_if<LintRequest>(&req)) {
    write_lint(w, *l);
  } else {
    write_equiv(w, std::get<EquivRequest>(req));
  }
  return w.take();
}

Request request_from_json(std::string_view text) {
  const JsonValue v = json_parse(text);
  if (!v.is_obj()) throw JsonError("json: request must be an object");
  const std::string command = v.str_or("command", "");
  if (command == "check") return parse_check(v, false);
  if (command == "validate") return parse_check(v, true);
  if (command == "lint") return parse_lint(v);
  if (command == "equiv") return parse_equiv(v);
  throw JsonError("json: unknown command '" + command + "'");
}

}  // namespace cac::front
