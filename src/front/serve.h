// Verification-as-a-service: the `cacval serve` daemon and its client
// (docs/serve.md).
//
// The server multiplexes verification jobs over the distributed
// layer's checksummed frame transport (dist/wire.h frame types
// kServeRequest/kServeResponse/kServeEvent, payloads are UTF-8 JSON)
// on an AF_UNIX or TCP listener:
//
//  * every request is content-addressed (front/cache.h); a repeated
//    submission replays the original response bytes from the verdict
//    cache without re-running anything,
//  * concurrent submissions of the *same* job share one execution
//    (in-flight dedup) and each receives the response,
//  * distinct jobs run on a bounded worker pool behind a bounded
//    queue, each under server-enforced ExploreOptions budgets,
//  * long explorations stream progress events to the client, and
//  * jobs are crash-safe: the request is journaled and the exploration
//    checkpoints (format v3) under the state directory, so a server
//    killed mid-job resumes the work at next start and produces a
//    byte-identical verdict (tools/serve_crash_drill.py drills this
//    with SIGKILL).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dist/transport.h"
#include "front/cache.h"
#include "front/front.h"

namespace cac::front {

struct ServeOptions {
  /// Listen endpoint: exactly one of the two.
  std::string unix_path;  // AF_UNIX socket path
  std::string tcp;        // "host:port"

  /// Concurrent verification jobs.
  std::uint32_t workers = 2;
  /// Jobs admitted but not yet running; submissions past this are
  /// rejected with a "server busy" error response.
  std::size_t queue_limit = 64;

  /// State directory: verdict-cache persistence ("cache/") and the
  /// crash-safe job journal ("jobs/").  Empty = in-memory only (no
  /// persistence, no crash recovery).
  std::string state_dir;
  std::size_t cache_entries = 1024;
  std::uint64_t cache_bytes = 64ull << 20;

  /// Per-job budgets, enforced on top of whatever the request asks
  /// for (the request's own budget wins only when tighter).  0 = none.
  std::uint64_t job_deadline_ms = 0;
  std::uint64_t job_mem_limit_bytes = 0;
  /// Checkpoint cadence for journaled jobs (states between periodic
  /// checkpoints; 0 disables periodic checkpointing).
  std::uint64_t checkpoint_every_states = 4096;

  bool verbose = false;  // log accepts/jobs/recoveries to stderr
};

struct ServeStats {
  std::uint64_t requests = 0;       // verification requests received
  std::uint64_t jobs_run = 0;       // executions (cache misses)
  std::uint64_t jobs_recovered = 0; // orphans re-enqueued at startup
  std::uint64_t jobs_resumed = 0;   // runs continued from a checkpoint
  std::uint64_t jobs_deduped = 0;   // requests that joined an in-flight job
  std::uint64_t rejected = 0;       // queue-full rejections
  std::uint64_t errors = 0;         // error responses sent
  /// Health counters (docs/robustness.md).  All are "the server
  /// absorbed a fault" signals — none implies a wrong verdict.
  std::uint64_t shed_requests = 0;   // typed busy replies (exit 4)
  std::uint64_t reaped_clients = 0;  // queued jobs whose clients vanished
  std::uint64_t degraded_spill = 0;  // jobs that lost the spill tier
  std::uint64_t checkpoint_write_failures = 0;  // retried next cadence
  std::uint64_t journal_failures = 0;  // best-effort journal writes lost
  /// Snapshot of the process-wide transport retry counters.
  std::uint64_t send_retries = 0;
  std::uint64_t connect_retries = 0;
  VerdictCache::Stats cache;
};

/// The daemon.  Lifecycle: construct, start() (binds, recovers
/// orphaned jobs, spawns threads), then wait() until stop() or a
/// client's "shutdown" command; the destructor stops if still running.
class Server {
 public:
  explicit Server(ServeOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  /// Block until stop() was called or a client requested shutdown.
  void wait();
  void stop();

  /// Whether a client's "shutdown" command arrived (the CLI polls this
  /// alongside its signal flag instead of blocking in wait()).
  [[nodiscard]] bool shutdown_requested() const;

  [[nodiscard]] ServeStats stats() const;

 private:
  struct Job;
  using JobPtr = std::shared_ptr<Job>;
  using ProgressSub =
      std::function<void(const sched::ExploreOptions::Progress&)>;

  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);
  std::string handle_request(int fd, std::mutex& write_mu,
                             const std::string& text);
  void execute(const JobPtr& job);
  void recover_orphans();
  JobPtr admit(const Request& req, const CacheKey& key,
               const std::string& req_json, std::uint64_t progress_every,
               bool recovered, std::string* error, ProgressSub sub = {});
  void journal_write(const Job& job);
  void journal_erase(const Job& job);
  /// Drop a still-queued job whose last waiting client vanished.
  void reap_if_queued(const JobPtr& job);

  ServeOptions opts_;
  VerdictCache cache_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  dist::Fd listen_fd_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   // workers wait here
  std::condition_variable done_cv_;    // wait() waits here
  bool shutdown_requested_ = false;
  std::deque<JobPtr> queue_;
  /// In-flight dedup: cache-key hex -> the job (queued or running).
  std::unordered_map<std::string, JobPtr> inflight_;
  /// Open client connections, so stop() can unblock their reads.
  std::list<std::pair<int, std::thread>> conns_;
  ServeStats stats_;
};

/// Blocking client for the serve protocol.
class Client {
 public:
  /// Endpoint syntax shared with the CLI: a path (contains '/' or no
  /// ':') connects over AF_UNIX, "host:port" over TCP.  Fails
  /// immediately on a refused connect (DistError(Io)).
  static Client connect(const std::string& endpoint);
  /// Same, but refused/unreachable connects are retried under the
  /// policy (the server may be restarting); exhaustion throws
  /// DistError(Timeout) — the typed retryable "server unreachable".
  static Client connect(const std::string& endpoint,
                        const dist::RetryPolicy& retry);

  struct Reply {
    std::string raw;  // response payload, verbatim
    JsonValue doc;    // parsed envelope
  };

  /// Send one request payload and wait for the response frame;
  /// progress events invoke `on_event` as they arrive.  `deadline_ms`
  /// is a per-frame inactivity timeout: if the server sends nothing
  /// (response *or* event) for that long, throws DistError(Timeout)
  /// instead of hanging forever on a wedged server (0 = wait forever).
  /// A server that dies mid-stream throws DistError(PeerDied).
  Reply call(const std::string& request_json,
             const std::function<void(const JsonValue&)>& on_event = {},
             int deadline_ms = 0);

 private:
  explicit Client(dist::Fd fd) : fd_(std::move(fd)) {}

  dist::Fd fd_;
  dist::FrameReader reader_;
};

/// One verification submission, hardened end to end: connect with
/// retry, per-frame inactivity timeout, reconnect-and-resubmit on a
/// retryable failure (the identical request re-attaches to the same
/// job server-side via content addressing — in-flight dedup, the
/// verdict cache, or journal recovery — so a retry never recomputes a
/// finished verdict and never changes its bytes), and busy replies
/// honored by sleeping the advertised retry_after_ms.
struct SubmitOptions {
  /// Per-frame inactivity deadline passed to Client::call (0 = none).
  int timeout_ms = 30000;
  /// Total tries across reconnects and busy backoffs.
  int max_attempts = 3;
  /// Connect retry schedule for each attempt.
  dist::RetryPolicy connect;
};

struct SubmitOutcome {
  Client::Reply reply;
  /// Reconnect-and-resubmit cycles a retryable failure forced (health
  /// signal; 0 on a clean run).
  std::uint64_t reconnects = 0;
};

/// Submit `request_json` to `endpoint` under the hardened policy.
/// Returns the final reply — which may still be a "busy" envelope if
/// every attempt was shed (callers map that to kExitBusy).  Throws
/// DistError(Timeout) once retryable failures exhaust the attempts —
/// callers map that to kExitUnreachable.
SubmitOutcome submit_with_retry(
    const std::string& endpoint, const std::string& request_json,
    const SubmitOptions& opts = {},
    const std::function<void(const JsonValue&)>& on_event = {});

}  // namespace cac::front
