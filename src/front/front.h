// Runner + serialization surface of the front library (docs/api.md).
//
//   Request  --run()-->  std::vector<Result>  --to_json()-->  schema
//
// The runners are pure library calls: they throw (PtxError,
// LaunchArgError, CheckpointError, std::exception) instead of printing
// to stderr and exiting, and every knob arrives through the request or
// the RunHooks — there is no global state.  The CLI shim
// (tools/cacval.cpp), the verification server (front/serve.h), the
// tests, and the benches all call exactly these functions.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "check/model.h"
#include "front/json.h"
#include "front/request.h"

namespace cac::front {

/// Transient per-run plumbing owned by the caller — never serialized,
/// never part of the verdict-cache key.
struct RunHooks {
  /// Cooperative cancellation (the CLI's SIGINT/SIGTERM flag, the
  /// server's per-job cancel).  Overrides request.explore.stop_flag.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Alternative exploration engine (the distributed coordinator).
  check::ModelCheckOptions::explorer_type explorer;
  /// Resume a checkpointed exploration.  Not owned; in-process engines
  /// only (distributed runs resume from the coordinator manifest).
  const sched::Checkpoint* resume = nullptr;
  /// Called once after the por oracle has run, before exploration —
  /// the CLI prints its classic "por oracle: N access pcs proven
  /// independent" line from here so output ordering is preserved.
  std::function<void(std::size_t pcs)> on_por_oracle;
};

/// Model-check (or, with full_validate, run the composite validation
/// pipeline on) one kernel.  Returns exactly one Result.
Result run_check(const CheckRequest& req, const RunHooks& hooks = {});

/// Lint one kernel or (empty req.kernel) every kernel in the module.
/// One Result per kernel, module order.
std::vector<Result> run_lint(const LintRequest& req);

/// Symbolic equivalence of two kernels (docs/equiv.md).  Returns
/// exactly one Result.  Hooks: the counterexample search replays
/// candidate valuations through hooks.explorer when set.
Result run_equiv(const EquivRequest& req, const RunHooks& hooks = {});

/// Dispatch on the request variant.
std::vector<Result> run(const Request& req, const RunHooks& hooks = {});

/// Aggregate exit code for one request's results, by severity:
/// usage (2) > finding (1) > limit (3) > proved/clean (0).
int exit_code_of(const std::vector<Result>& results);

// --- unified JSON schema (front/serialize.cc) ------------------------
// One emitter for every JSON surface: `cacval ... --format=json`,
// serve response payloads, and the golden-file tests.  Field order is
// fixed, numbers are integers, and nothing time- or machine-dependent
// (elapsed times, RSS, store-tier accounting) appears in the body, so
// equal verdicts serialize to byte-identical documents.

/// Emit one result object into an open writer (value position).
void write_json(JsonWriter& w, const Result& r);
std::string to_json(const Result& r);
/// The document every --format=json surface prints: a JSON array of
/// result objects (one per kernel for lint; a singleton otherwise).
std::string to_json(const std::vector<Result>& results);

/// Request wire/journal form, and its inverse.  round-trip invariant:
/// parse(to_json(r)) produces a request with identical cache key and
/// identical verdict.
std::string to_json(const Request& req);
Request request_from_json(std::string_view text);

// --- classic text rendering (front/render.cc) ------------------------
// The CLI's human-readable output, reproduced from the structured
// Result so the shim never reformats on its own: verdict lines,
// violation/limit/checkpoint/store diagnostics, counterexample
// schedules, lint findings — byte-compatible with the pre-library
// cacval output the smoke tests pin.
std::string render_text(const Result& r);

}  // namespace cac::front
