#include "front/cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "front/json.h"
#include "ptx/lower.h"
#include "support/hash.h"
#include "support/io.h"

namespace cac::front {

namespace {

// Canonical request text: an unambiguous byte stream (every field
// length-prefixed) over exactly the structural content.  The two hash
// streams are seeded differently, so a collision requires breaking
// both simultaneously.

void put_u64(std::string& s, std::uint64_t v) {
  s += std::to_string(v);
  s += '\x1f';
}

void put_str(std::string& s, const std::string& v) {
  put_u64(s, v.size());
  s += v;
  s += '\x1f';
}

void put_bool(std::string& s, bool v) { put_u64(s, v ? 1 : 0); }

/// The canonical form of a module: the printed representation of each
/// lowered kernel plus the shared layout.  Comments, whitespace, and
/// declaration order of unrelated directives all wash out here.
void put_module(std::string& s, const std::string& source,
                bool insert_syncs) {
  ptx::LowerOptions lopts;
  lopts.insert_syncs = insert_syncs;
  const ptx::LoweredModule mod = ptx::load_ptx(source, lopts);
  put_u64(s, mod.kernels.size());
  for (const ptx::Program& k : mod.kernels) put_str(s, ptx::to_string(k));
  put_u64(s, mod.shared_bytes);
}

void put_geometry(std::string& s, const sem::LaunchSpec& l) {
  put_u64(s, l.grid.x);
  put_u64(s, l.grid.y);
  put_u64(s, l.grid.z);
  put_u64(s, l.block.x);
  put_u64(s, l.block.y);
  put_u64(s, l.block.z);
  put_u64(s, l.warp_size);
}

void put_launch(std::string& s, const sem::LaunchSpec& l) {
  put_geometry(s, l);
  put_u64(s, l.global_bytes);
  put_u64(s, l.shared_bytes);
  put_u64(s, l.params.size());
  for (const auto& [name, value] : l.params) {
    put_str(s, name);
    put_u64(s, value);
  }
  put_u64(s, l.inits.size());
  for (const auto& [addr, value] : l.inits) {
    put_u64(s, addr);
    put_u64(s, value);
  }
}

std::string canonical(const CheckRequest& c) {
  std::string s;
  put_str(s, c.full_validate ? "validate" : "check");
  put_module(s, c.source, c.insert_syncs);
  put_str(s, c.kernel);
  put_launch(s, c.launch);
  // Structural exploration options only (see the header).
  put_u64(s, c.explore.max_depth);
  put_u64(s, c.explore.max_states);
  put_bool(s, c.explore.stop_at_first_violation);
  put_bool(s, c.explore.partial_order_reduction);
  put_u64(s, c.expects.size());
  for (const auto& [addr, value] : c.expects) {
    put_u64(s, addr);
    put_u64(s, value);
  }
  put_bool(s, c.require_independence);
  put_u64(s, c.exact_steps);
  put_bool(s, c.por_oracle);
  put_bool(s, c.profile);
  return s;
}

std::string canonical(const LintRequest& l) {
  std::string s;
  put_str(s, "lint");
  put_module(s, l.source, l.insert_syncs);
  put_str(s, l.kernel);
  put_bool(s, l.races);
  put_bool(s, l.perf);
  return s;
}

std::string canonical(const EquivRequest& e) {
  std::string s;
  put_str(s, "equiv");
  put_module(s, e.source, e.insert_syncs);
  put_module(s, e.source_b, e.insert_syncs);
  put_str(s, e.kernel);
  put_str(s, e.kernel_b);
  put_geometry(s, e.launch);
  // The symbolic bounds are structural: they decide inconclusive vs
  // proved.
  put_u64(s, e.sym.max_steps);
  put_u64(s, e.sym.max_paths);
  // Checker configuration is structural too: mode and the
  // normalize/counterexample switches each change the verdict class a
  // request can produce.  cex_inputs is a transient budget — excluded;
  // the budget-exhausted inconclusive it could skew is never cached
  // (see cacheable()).
  put_str(s, e.mode);
  put_bool(s, e.normalize);
  put_bool(s, e.counterexample);
  return s;
}

}  // namespace

std::string CacheKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

CacheKey cache_key(const Request& req) {
  std::string s;
  if (const auto* c = std::get_if<CheckRequest>(&req)) {
    s = canonical(*c);
  } else if (const auto* l = std::get_if<LintRequest>(&req)) {
    s = canonical(*l);
  } else {
    s = canonical(std::get<EquivRequest>(req));
  }
  CacheKey key;
  key.hi = fnv1a(s);
  key.lo = fnv1a(s, 0x9ae16a3b2f90404full);
  return key;
}

bool cacheable(const std::vector<Result>& results) {
  for (const Result& r : results) {
    // Equiv: an inconclusive that exists only because the transient
    // cex budget ran out must not shadow a future, better-funded run.
    if (r.stats.cex_budget_tripped) return false;
    if (!r.stats.have_explore) continue;  // lint/equiv are deterministic
    const std::string& l = r.stats.limit_hit;
    if (l == "deadline" || l == "mem-limit" || l == "interrupted") {
      return false;
    }
  }
  return !results.empty();
}

VerdictCache::VerdictCache() : VerdictCache(Options{}) {}

VerdictCache::VerdictCache(Options opts) : opts_(std::move(opts)) {}

std::string VerdictCache::path_for(const CacheKey& key) const {
  return opts_.dir + "/" + key.hex() + ".json";
}

std::optional<VerdictCache::Entry> VerdictCache::get(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key.hex());
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    ++stats_.hits;
    return it->second->entry;
  }
  if (!opts_.dir.empty()) {
    // Fall back to the persistence directory (a pre-restart verdict).
    // Read failures — including injected ones — degrade to a miss.
    const std::string text = support::read_file_or_empty(path_for(key));
    // Layout written by put(): {"exit_code":N,"results":<raw>}
    const std::string tag = "\"results\":";
    const std::size_t at = text.find(tag);
    if (at != std::string::npos && !text.empty() && text.back() == '}') {
      try {
        const JsonValue doc = json_parse(text);
        Entry e;
        e.exit_code = static_cast<int>(doc.u64_or("exit_code", 0));
        e.results_json =
            text.substr(at + tag.size(), text.size() - at - tag.size() - 1);
        lru_.push_front(Node{key, e});
        index_[key.hex()] = lru_.begin();
        resident_bytes_ += e.results_json.size();
        evict_locked();
        ++stats_.hits;
        ++stats_.disk_hits;
        return e;
      } catch (const JsonError&) {
        // Corrupt file (e.g. a torn write from a pre-rename crash
        // path): treat as a miss; put() will rewrite it.
      }
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void VerdictCache::put(const CacheKey& key, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.find(key.hex()) != index_.end()) return;  // idempotent
  if (!opts_.dir.empty()) {
    // Atomic publish: never let a reader (or a crash) observe a torn
    // entry.  Persistence is best-effort — a failed write costs only
    // restart warm-up — but failures are counted, not silent.
    std::string bytes = "{\"exit_code\":" + std::to_string(entry.exit_code) +
                        ",\"results\":" + entry.results_json + "}";
    if (!support::try_write_file_atomic(path_for(key), bytes,
                                        /*sync=*/false)) {
      ++stats_.persist_failures;
    }
  }
  resident_bytes_ += entry.results_json.size();
  lru_.push_front(Node{key, std::move(entry)});
  index_[key.hex()] = lru_.begin();
  ++stats_.insertions;
  evict_locked();
}

void VerdictCache::evict_locked() {
  while (!lru_.empty() && (lru_.size() > opts_.max_entries ||
                           resident_bytes_ > opts_.max_bytes)) {
    const Node& victim = lru_.back();
    resident_bytes_ -= victim.entry.results_json.size();
    index_.erase(victim.key.hex());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::size_t VerdictCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

VerdictCache::Stats VerdictCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cac::front
