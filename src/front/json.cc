#include "front/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cac::front {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- writer ----------------------------------------------------------

void JsonWriter::pre_value() {
  if (nest_.empty()) {
    if (!out_.empty()) throw JsonError("second top-level value");
    return;
  }
  const char ctx = nest_.back();
  if (ctx == 'o') throw JsonError("value in object without a key");
  if (ctx == 'v') {
    nest_.back() = 'o';  // key consumed by this value
    return;
  }
  // array
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_obj() {
  pre_value();
  out_ += '{';
  nest_ += 'o';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_obj() {
  if (nest_.empty() || nest_.back() != 'o') {
    throw JsonError("end_obj outside an object");
  }
  out_ += '}';
  nest_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_arr() {
  pre_value();
  out_ += '[';
  nest_ += 'a';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_arr() {
  if (nest_.empty() || nest_.back() != 'a') {
    throw JsonError("end_arr outside an array");
  }
  out_ += ']';
  nest_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (nest_.empty() || nest_.back() != 'o') {
    throw JsonError("key outside an object");
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  nest_.back() = 'v';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  pre_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  pre_value();
  out_.append(json);
  return *this;
}

std::string JsonWriter::take() {
  if (!nest_.empty()) throw JsonError("unbalanced writer");
  if (out_.empty()) throw JsonError("empty document");
  return std::move(out_);
}

// --- parser ----------------------------------------------------------

namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (s_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by any producer in this repo; reject them).
          if (v >= 0xd800 && v <= 0xdfff) fail("surrogate \\u escape");
          if (v < 0x80) {
            out += static_cast<char>(v);
          } else if (v < 0x800) {
            out += static_cast<char>(0xc0 | (v >> 6));
            out += static_cast<char>(0x80 | (v & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (v >> 12));
            out += static_cast<char>(0x80 | ((v >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (v & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    const bool neg = consume('-');
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      fail("malformed number");
    }
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    bool floating = false;
    if (consume('.')) {
      floating = true;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("malformed fraction");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      floating = true;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("malformed exponent");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    const std::string text(s_.substr(start, pos_ - start));
    JsonValue v;
    if (floating) {
      v.kind = JsonValue::Kind::Double;
      v.d = std::strtod(text.c_str(), nullptr);
      return v;
    }
    errno = 0;
    if (neg) {
      v.kind = JsonValue::Kind::Int;
      v.i = std::strtoll(text.c_str(), nullptr, 10);
      if (errno == ERANGE) fail("integer out of range");
    } else {
      v.kind = JsonValue::Kind::Uint;
      v.u = std::strtoull(text.c_str(), nullptr, 10);
      if (errno == ERANGE) fail("integer out of range");
    }
    return v;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::Object;
      skip_ws();
      if (consume('}')) return v;
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.obj.emplace_back(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (consume(',')) continue;
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::Array;
      skip_ws();
      if (consume(']')) return v;
      for (;;) {
        v.arr.push_back(parse_value(depth + 1));
        skip_ws();
        if (consume(',')) continue;
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::String;
      v.str = parse_string();
      return v;
    }
    if (consume_word("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.b = true;
      return v;
    }
    if (consume_word("false")) {
      v.kind = JsonValue::Kind::Bool;
      v.b = false;
      return v;
    }
    if (consume_word("null")) return v;
    return parse_number();
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind == Kind::Uint) return u;
  if (kind == Kind::Int && i >= 0) return static_cast<std::uint64_t>(i);
  throw JsonError("json: expected an unsigned integer");
}

std::int64_t JsonValue::as_i64() const {
  if (kind == Kind::Int) return i;
  if (kind == Kind::Uint && u <= static_cast<std::uint64_t>(INT64_MAX)) {
    return static_cast<std::int64_t>(u);
  }
  throw JsonError("json: expected an integer");
}

bool JsonValue::as_bool() const {
  if (kind != Kind::Bool) throw JsonError("json: expected a bool");
  return b;
}

const std::string& JsonValue::as_str() const {
  if (kind != Kind::String) throw JsonError("json: expected a string");
  return str;
}

std::uint64_t JsonValue::u64_or(std::string_view key,
                                std::uint64_t dflt) const {
  const JsonValue* v = get(key);
  return v == nullptr ? dflt : v->as_u64();
}

bool JsonValue::bool_or(std::string_view key, bool dflt) const {
  const JsonValue* v = get(key);
  return v == nullptr ? dflt : v->as_bool();
}

std::string JsonValue::str_or(std::string_view key,
                              const std::string& dflt) const {
  const JsonValue* v = get(key);
  return v == nullptr ? dflt : v->as_str();
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace cac::front
