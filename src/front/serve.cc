#include "front/serve.h"

#include <dirent.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "dist/wire.h"
#include "sched/checkpoint.h"
#include "support/io.h"

namespace cac::front {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

/// Blocking read of one complete frame; false on orderly EOF or a
/// dead peer.  Corrupt bytes throw DistError(Corrupt) via the reader.
bool read_frame_blocking(int fd, dist::FrameReader& fr, dist::Frame& out) {
  for (;;) {
    if (std::optional<dist::Frame> f = fr.next()) {
      out = std::move(*f);
      return true;
    }
    char buf[1 << 16];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      fr.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    return false;
  }
}

void send_frame(int fd, std::mutex& write_mu, dist::FrameType type,
                std::string_view payload) {
  const std::string bytes = dist::encode_frame(type, payload);
  std::lock_guard<std::mutex> lock(write_mu);
  dist::send_all(fd, bytes.data(), bytes.size());
}

std::string make_error(const std::string& message, int exit_code) {
  JsonWriter w;
  w.begin_obj()
      .key("status").value("error")
      .key("error").value(message)
      .key("exit_code").value(exit_code)
      .end_obj();
  return w.take();
}

std::string make_response(bool cached, const CacheKey& key,
                          std::uint64_t micros,
                          const VerdictCache::Entry& entry) {
  JsonWriter w;
  w.begin_obj()
      .key("status").value("ok")
      .key("cached").value(cached)
      .key("key").value(key.hex())
      .key("elapsed_us").value(micros)
      .key("exit_code").value(entry.exit_code)
      .key("results").raw(entry.results_json)
      .end_obj();
  return w.take();
}

void mkdir_quiet(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST && errno != ENOENT) {
    std::perror(("serve: mkdir " + path).c_str());
  }
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// The typed load-shedding reply (docs/robustness.md): retryable, with
/// an advertised backoff, mapped to kExitBusy by clients.
std::string make_busy(const std::string& message) {
  JsonWriter w;
  w.begin_obj()
      .key("status").value("busy")
      .key("error").value(message)
      .key("retry_after_ms").value(250)
      .key("exit_code").value(static_cast<int>(kExitBusy))
      .end_obj();
  return w.take();
}

/// Is the client on `fd` still there?  A connection waiting on a slow
/// job probes with MSG_PEEK so a vanished client can be reaped instead
/// of anchoring a job nobody will read.
bool client_alive(int fd) {
  char b = 0;
  const ssize_t n = ::recv(fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n > 0) return true;                              // pipelined bytes
  if (n == 0) return false;                            // orderly EOF
  return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
}

}  // namespace

/// One admitted verification job.  Shared by the worker executing it
/// and every connection waiting on it (in-flight dedup).
struct Server::Job {
  CacheKey key;
  Request req;
  std::string req_json;
  std::uint64_t progress_every = 0;
  bool recovered = false;  // re-enqueued from the journal at startup

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool ok = false;
  /// A worker has dequeued the job (it can no longer be reaped).
  bool running = false;
  /// Connections currently blocked on this job.  When the last one
  /// vanishes before a worker picks the job up, the job is reaped.
  int waiters = 0;
  std::string error;
  /// Exit code carried by an error outcome: kExitUsage for
  /// deterministic failures, kExitUnreachable for a shutdown race
  /// (retryable — resubmit to the restarted server).
  int error_exit = kExitUsage;
  VerdictCache::Entry entry;
  /// Progress subscribers (connections that asked for events).  Called
  /// under mu from the exploring thread; must not throw.
  std::vector<std::function<void(const sched::ExploreOptions::Progress&)>>
      subs;
};

namespace {

VerdictCache make_cache(const ServeOptions& opts) {
  VerdictCache::Options co;
  co.max_entries = opts.cache_entries;
  co.max_bytes = opts.cache_bytes;
  if (!opts.state_dir.empty()) {
    mkdir_quiet(opts.state_dir);
    mkdir_quiet(opts.state_dir + "/cache");
    mkdir_quiet(opts.state_dir + "/jobs");
    co.dir = opts.state_dir + "/cache";
  }
  return VerdictCache(co);
}

}  // namespace

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)), cache_(make_cache(opts_)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) return;
  if (!opts_.unix_path.empty()) {
    listen_fd_ = dist::unix_listen(opts_.unix_path);
  } else if (!opts_.tcp.empty()) {
    listen_fd_ = dist::tcp_listen(opts_.tcp);
  } else {
    throw dist::DistError(dist::DistError::Kind::Protocol,
                          "serve: no endpoint (need unix_path or tcp)");
  }
  stopping_.store(false);
  recover_orphans();
  const std::uint32_t n = opts_.workers == 0 ? 1 : opts_.workers;
  for (std::uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return shutdown_requested_ || stopping_.load();
  });
}

void Server::stop() {
  if (!started_) return;
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fail jobs still queued — no worker will pick them up now.  Their
    // journal entries stay on disk, so a restarted server finishes
    // them.
    for (const JobPtr& job : queue_) {
      std::lock_guard<std::mutex> jl(job->mu);
      job->done = true;
      job->ok = false;
      job->error = "server shutting down";
      job->error_exit = kExitUnreachable;  // retryable: journal survives
      job->cv.notify_all();
    }
    queue_.clear();
    done_cv_.notify_all();
  }
  queue_cv_.notify_all();
  ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [fd, thread] : conns_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  for (;;) {
    std::thread t;
    int fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conns_.empty()) break;
      fd = conns_.front().first;
      t = std::move(conns_.front().second);
      conns_.pop_front();
    }
    if (t.joinable()) t.join();
    if (fd >= 0) ::close(fd);
  }
  workers_.clear();
  listen_fd_.reset();
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
  started_ = false;
}

bool Server::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_requested_;
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats s = stats_;
  s.cache = cache_.stats();
  const dist::TransportCounters tc = dist::transport_counters();
  s.send_retries = tc.send_retries;
  s.connect_retries = tc.connect_retries;
  return s;
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or fatal): exit the loop
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    // Reap finished connections (their fd slot is -1) so a long-lived
    // server does not accumulate dead threads.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->first == -1) {
        if (it->second.joinable()) it->second.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    conns_.emplace_back(fd, std::thread([this, fd] {
                          handle_connection(fd);
                        }));
  }
}

void Server::handle_connection(int fd) {
  dist::FrameReader reader;
  std::mutex write_mu;
  try {
    dist::Frame frame;
    while (!stopping_.load() && read_frame_blocking(fd, reader, frame)) {
      std::string response;
      if (frame.type == dist::FrameType::kServeRequest) {
        response = handle_request(fd, write_mu, frame.payload);
        if (response.empty()) break;  // client vanished mid-wait
      } else {
        response = make_error("unexpected frame type", kExitUsage);
      }
      send_frame(fd, write_mu, dist::FrameType::kServeResponse, response);
    }
  } catch (const std::exception&) {
    // Corrupt frames or a vanished peer end the connection; the
    // server itself is unaffected.
  }
  // Mark the slot finished (close happens exactly once, here; stop()
  // only ever shutdown()s a live fd under mu_, so there is no race
  // with fd-number reuse).
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : conns_) {
    if (slot.first == fd) {
      ::close(fd);
      slot.first = -1;
      break;
    }
  }
}

std::string Server::handle_request(int fd, std::mutex& write_mu,
                                   const std::string& text) {
  const Clock::time_point t0 = Clock::now();
  JsonValue doc;
  try {
    doc = json_parse(text);
  } catch (const JsonError& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
    return make_error(e.what(), kExitUsage);
  }
  const std::string command = doc.str_or("command", "");
  if (command == "ping") {
    return "{\"status\":\"ok\",\"pong\":true}";
  }
  if (command == "stats") {
    const ServeStats s = stats();
    JsonWriter w;
    w.begin_obj().key("status").value("ok").key("stats").begin_obj()
        .key("requests").value(s.requests)
        .key("jobs_run").value(s.jobs_run)
        .key("jobs_recovered").value(s.jobs_recovered)
        .key("jobs_resumed").value(s.jobs_resumed)
        .key("jobs_deduped").value(s.jobs_deduped)
        .key("rejected").value(s.rejected)
        .key("errors").value(s.errors)
        .key("shed_requests").value(s.shed_requests)
        .key("reaped_clients").value(s.reaped_clients)
        .key("degraded_spill").value(s.degraded_spill)
        .key("checkpoint_write_failures").value(s.checkpoint_write_failures)
        .key("journal_failures").value(s.journal_failures)
        .key("send_retries").value(s.send_retries)
        .key("connect_retries").value(s.connect_retries)
        .key("cache_hits").value(s.cache.hits)
        .key("cache_misses").value(s.cache.misses)
        .key("cache_insertions").value(s.cache.insertions)
        .key("cache_evictions").value(s.cache.evictions)
        .key("cache_disk_hits").value(s.cache.disk_hits)
        .key("cache_persist_failures").value(s.cache.persist_failures)
        .end_obj().end_obj();
    return w.take();
  }
  if (command == "shutdown") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
      done_cv_.notify_all();
    }
    return "{\"status\":\"ok\",\"shutting_down\":true}";
  }

  Request req;
  CacheKey key;
  try {
    req = request_from_json(text);
    key = cache_key(req);  // lowers the source: PtxError on bad input
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
    return make_error(e.what(), kExitUsage);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }

  if (std::optional<VerdictCache::Entry> hit = cache_.get(key)) {
    return make_response(true, key, elapsed_us(t0), *hit);
  }

  const std::uint64_t progress_every = doc.u64_or("progress", 0);
  ProgressSub sub;
  if (progress_every != 0) {
    const std::string hex = key.hex();
    sub = [fd, &write_mu, hex](const sched::ExploreOptions::Progress& p) {
      JsonWriter w;
      w.begin_obj()
          .key("event").value("progress")
          .key("key").value(hex)
          .key("states").value(p.states_visited)
          .key("transitions").value(p.transitions)
          .key("frontier").value(p.frontier)
          .end_obj();
      send_frame(fd, write_mu, dist::FrameType::kServeEvent, w.take());
    };
  }
  std::string error;
  const JobPtr job =
      admit(req, key, text, progress_every, false, &error, std::move(sub));
  if (job == nullptr) {
    // Queue full: shed the request with the typed retryable reply —
    // the client backs off retry_after_ms and resubmits.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_requests;
    return make_busy(error);
  }

  {
    JsonWriter w;
    w.begin_obj().key("event").value("accepted").key("key")
        .value(key.hex()).end_obj();
    try {
      send_frame(fd, write_mu, dist::FrameType::kServeEvent, w.take());
    } catch (const std::exception&) {
    }
  }

  // Wait for the verdict, probing the client between waits: a vanished
  // client must not anchor a queued job nobody will ever read.
  {
    std::unique_lock<std::mutex> jl(job->mu);
    ++job->waiters;
    while (!job->done) {
      job->cv.wait_for(jl, std::chrono::milliseconds(100));
      if (job->done) break;
      if (!client_alive(fd)) {
        --job->waiters;
        const bool last = job->waiters == 0 && !job->running;
        jl.unlock();
        if (last) reap_if_queued(job);
        return "";  // sentinel: close the connection, send nothing
      }
    }
    --job->waiters;
    if (!job->ok) {
      const std::string msg = job->error;
      const int code = job->error_exit;
      jl.unlock();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
      return make_error(msg, code);
    }
  }
  std::lock_guard<std::mutex> jl(job->mu);
  return make_response(false, key, elapsed_us(t0), job->entry);
}

/// Remove `job` from the queue if no worker has claimed it: the last
/// waiting client vanished, so running it would burn a worker on a
/// verdict nobody reads.  Queue membership under mu_ is authoritative
/// (worker_loop pops under mu_), so there is no race with pickup.
void Server::reap_if_queued(const JobPtr& job) {
  bool reaped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it == queue_.end()) return;  // a worker owns it now
    {
      // Re-check under job->mu: a late dedup joiner may be waiting.
      std::lock_guard<std::mutex> jl(job->mu);
      if (job->waiters != 0 || job->recovered) return;
    }
    queue_.erase(it);
    inflight_.erase(job->key.hex());
    ++stats_.reaped_clients;
    reaped = true;
  }
  if (reaped) {
    journal_erase(*job);
    if (opts_.verbose) {
      std::fprintf(stderr, "serve: job %s reaped (client vanished)\n",
                   job->key.hex().c_str());
    }
  }
}

Server::JobPtr Server::admit(const Request& req, const CacheKey& key,
                             const std::string& req_json,
                             std::uint64_t progress_every, bool recovered,
                             std::string* error, ProgressSub sub) {
  JobPtr job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = inflight_.find(key.hex());
    if (it != inflight_.end()) {
      ++stats_.jobs_deduped;
      job = it->second;
      if (sub) {
        // Late join: best effort — the job may already be past its
        // exploration (or done, in which case events are moot).
        std::lock_guard<std::mutex> jl(job->mu);
        if (!job->done) job->subs.push_back(std::move(sub));
      }
      return job;
    }
    if (!recovered && queue_.size() >= opts_.queue_limit) {
      ++stats_.rejected;
      if (error != nullptr) *error = "server busy: job queue is full";
      return nullptr;
    }
    job = std::make_shared<Job>();
    job->key = key;
    job->req = req;
    job->req_json = req_json;
    job->progress_every = progress_every;
    job->recovered = recovered;
    // Attached before the job is visible to any worker, so a fast job
    // cannot finish ahead of its own subscriber.
    if (sub) job->subs.push_back(std::move(sub));
    inflight_[key.hex()] = job;
    queue_.push_back(job);
  }
  if (!recovered) journal_write(*job);
  queue_cv_.notify_one();
  if (opts_.verbose) {
    std::fprintf(stderr, "serve: job %s %s\n", key.hex().c_str(),
                 recovered ? "recovered" : "admitted");
  }
  return job;
}

void Server::worker_loop() {
  for (;;) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_.load() || !queue_.empty(); });
      if (stopping_.load()) return;
      job = queue_.front();
      queue_.pop_front();
      ++stats_.jobs_run;
    }
    {
      // Past this point the job cannot be reaped (reap_if_queued only
      // touches jobs still in queue_, checked under mu_ above).
      std::lock_guard<std::mutex> jl(job->mu);
      job->running = true;
    }
    execute(job);
  }
}

void Server::execute(const JobPtr& job) {
  Request req = job->req;  // the journaled request stays pristine
  RunHooks hooks;
  hooks.stop_flag = &stopping_;
  std::unique_ptr<sched::Checkpoint> resume;

  if (auto* c = std::get_if<CheckRequest>(&req)) {
    // Server-enforced budgets: the request's own budget wins only when
    // tighter.
    if (opts_.job_deadline_ms != 0 &&
        (c->explore.deadline_ms == 0 ||
         c->explore.deadline_ms > opts_.job_deadline_ms)) {
      c->explore.deadline_ms = opts_.job_deadline_ms;
    }
    if (opts_.job_mem_limit_bytes != 0 &&
        (c->explore.mem_limit_bytes == 0 ||
         c->explore.mem_limit_bytes > opts_.job_mem_limit_bytes)) {
      c->explore.mem_limit_bytes = opts_.job_mem_limit_bytes;
    }
    if (!opts_.state_dir.empty()) {
      const std::string ckpt =
          opts_.state_dir + "/jobs/" + job->key.hex() + ".ckpt";
      c->explore.checkpoint_path = ckpt;
      c->explore.checkpoint_every_states = opts_.checkpoint_every_states;
      if (file_exists(ckpt)) {
        try {
          resume = std::make_unique<sched::Checkpoint>(
              sched::Checkpoint::load(ckpt));
          hooks.resume = resume.get();
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.jobs_resumed;
        } catch (const std::exception&) {
          // Torn or incompatible checkpoint: run from scratch.  The
          // format-v3 guarantee makes either path produce the same
          // verdict bytes.
          resume.reset();
        }
      }
    }
    c->explore.progress_every_states = job->progress_every;
    if (job->progress_every != 0) {
      const JobPtr j = job;
      c->explore.progress_fn =
          [j](const sched::ExploreOptions::Progress& p) {
            std::lock_guard<std::mutex> jl(j->mu);
            for (const auto& sub : j->subs) {
              try {
                sub(p);
              } catch (const std::exception&) {
                // A vanished subscriber must not unwind the explorer.
              }
            }
          };
    }
  }

  bool erase_journal = false;
  {
    std::lock_guard<std::mutex> jl(job->mu);
    job->ok = false;
  }
  try {
    const std::vector<Result> results = run(req, hooks);
    {
      // Health counters: degradations the run absorbed.  None of
      // these appears in the results JSON (byte-identical verdicts).
      std::lock_guard<std::mutex> lock(mu_);
      for (const Result& r : results) {
        stats_.degraded_spill += r.stats.store.degraded_spill;
        stats_.checkpoint_write_failures += r.stats.checkpoint_write_failures;
      }
    }
    VerdictCache::Entry entry;
    entry.exit_code = exit_code_of(results);
    entry.results_json = to_json(results);
    // Only deterministic outcomes are cached (and their journal entry
    // retired); a budget-stopped job keeps its journal + checkpoint so
    // the next start resumes it.
    if (cacheable(results)) {
      cache_.put(job->key, entry);
      erase_journal = true;
    }
    std::lock_guard<std::mutex> jl(job->mu);
    job->entry = std::move(entry);
    job->ok = true;
  } catch (const std::exception& e) {
    // Malformed input or an internal failure: deterministic, so the
    // journal entry is retired (replaying it forever would wedge the
    // server on every start).
    erase_journal = true;
    std::lock_guard<std::mutex> jl(job->mu);
    job->error = e.what();
  }
  if (erase_journal) journal_erase(*job);
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(job->key.hex());
  }
  {
    std::lock_guard<std::mutex> jl(job->mu);
    job->done = true;
    job->cv.notify_all();
  }
  if (opts_.verbose) {
    std::fprintf(stderr, "serve: job %s done\n", job->key.hex().c_str());
  }
}

void Server::journal_write(const Job& job) {
  if (opts_.state_dir.empty()) return;
  // Best-effort: a lost journal entry only costs crash recovery for
  // this one job; the live execution is unaffected.  Counted, never
  // silent.
  if (!support::try_write_file_atomic(
          opts_.state_dir + "/jobs/" + job.key.hex() + ".req.json",
          job.req_json, /*sync=*/false)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.journal_failures;
  }
}

void Server::journal_erase(const Job& job) {
  if (opts_.state_dir.empty()) return;
  const std::string base = opts_.state_dir + "/jobs/" + job.key.hex();
  std::remove((base + ".req.json").c_str());
  std::remove((base + ".ckpt").c_str());
}

void Server::recover_orphans() {
  if (opts_.state_dir.empty()) return;
  const std::string dir = opts_.state_dir + "/jobs";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> names;
  while (dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    const std::string suffix = ".req.json";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    const std::string text = support::read_file_or_empty(path);
    try {
      const Request req = request_from_json(text);
      const CacheKey key = cache_key(req);
      if (cache_.get(key).has_value()) {
        // Completed between the journal write and the crash (or by a
        // twin server sharing the state dir): nothing to redo.
        std::remove(path.c_str());
        std::remove((dir + "/" + key.hex() + ".ckpt").c_str());
        continue;
      }
      admit(req, key, text, 0, /*recovered=*/true, nullptr);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.jobs_recovered;
    } catch (const std::exception&) {
      std::remove(path.c_str());  // unreadable journal entry
    }
  }
}

// --- client ----------------------------------------------------------

namespace {

dist::Fd connect_endpoint(const std::string& endpoint) {
  const bool is_path = endpoint.find('/') != std::string::npos ||
                       endpoint.find(':') == std::string::npos;
  return is_path ? dist::unix_connect(endpoint)
                 : dist::tcp_connect(endpoint);
}

}  // namespace

Client Client::connect(const std::string& endpoint) {
  return Client(connect_endpoint(endpoint));
}

Client Client::connect(const std::string& endpoint,
                       const dist::RetryPolicy& retry) {
  return Client(dist::connect_with_retry(
      [&endpoint] { return connect_endpoint(endpoint); }, retry,
      "server '" + endpoint + "'"));
}

Client::Reply Client::call(
    const std::string& request_json,
    const std::function<void(const JsonValue&)>& on_event, int deadline_ms) {
  const std::string bytes =
      dist::encode_frame(dist::FrameType::kServeRequest, request_json);
  dist::send_all(fd_.get(), bytes.data(), bytes.size());
  for (;;) {
    // The deadline is per frame (inactivity): any event resets it, so
    // a long exploration streaming progress never times out while a
    // wedged or dead server does.
    std::optional<dist::Frame> frame =
        dist::recv_frame(fd_.get(), reader_, deadline_ms);
    if (!frame) {
      throw dist::DistError(dist::DistError::Kind::PeerDied,
                            "server closed the connection");
    }
    if (frame->type == dist::FrameType::kServeEvent) {
      if (on_event) on_event(json_parse(frame->payload));
      continue;
    }
    if (frame->type == dist::FrameType::kServeResponse) {
      Reply r;
      r.doc = json_parse(frame->payload);
      r.raw = std::move(frame->payload);
      return r;
    }
    throw dist::DistError(dist::DistError::Kind::Protocol,
                          "unexpected frame from server");
  }
}

SubmitOutcome submit_with_retry(
    const std::string& endpoint, const std::string& request_json,
    const SubmitOptions& opts,
    const std::function<void(const JsonValue&)>& on_event) {
  SubmitOutcome out;
  const int attempts = opts.max_attempts < 1 ? 1 : opts.max_attempts;
  for (int attempt = 1;; ++attempt) {
    try {
      Client client = Client::connect(endpoint, opts.connect);
      out.reply = client.call(request_json, on_event, opts.timeout_ms);
    } catch (const dist::DistError& e) {
      switch (e.kind()) {
        case dist::DistError::Kind::Io:
        case dist::DistError::Kind::PeerDied:
        case dist::DistError::Kind::Timeout:
          // Retryable: the identical resubmission re-attaches to the
          // same content-addressed job (dedup / cache / journal), so a
          // reconnect never recomputes or changes a verdict.
          if (attempt >= attempts) throw;
          ++out.reconnects;
          continue;
        default:
          throw;  // Corrupt/Protocol: a bug, not a transient
      }
    }
    if (out.reply.doc.str_or("status", "") == "busy" && attempt < attempts) {
      const std::uint64_t wait = out.reply.doc.u64_or("retry_after_ms", 250);
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      continue;
    }
    return out;
  }
}

}  // namespace cac::front
