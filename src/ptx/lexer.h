// Lexer for the textual PTX subset emitted by nvcc (paper Listing 1).
//
// Tokenization is deliberately simple: PTX is line-oriented assembly
// with dotted directives (`.reg`, `.u32`), register references
// (`%rd4`, `%tid.x`), integer literals, labels and a small punctuation
// set.  Comments (`//` and `/* */`) are stripped here.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/diag.h"

namespace cac::ptx {

enum class TokKind : std::uint8_t {
  Directive,   // ".reg", ".u32", ".visible" — text excludes the dot
  Ident,       // "bra", "BB0_2", "arr_A", "mad" (opcode pieces merged later)
  RegRef,      // "%rd4", "%p1", "%tid.x" — text excludes the '%'
  Int,         // "42", "0x1F" — value in `value`
  Punct,       // one of , ; [ ] ( ) { } : @ ! + - < > |
  End,         // end of input
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;         // normalized token text (see kind comments)
  std::int64_t value = 0;   // for Int
  SourceLoc loc;

  [[nodiscard]] bool is_punct(char c) const {
    return kind == TokKind::Punct && text.size() == 1 && text[0] == c;
  }
  [[nodiscard]] bool is_directive(std::string_view d) const {
    return kind == TokKind::Directive && text == d;
  }
};

/// Tokenize a complete PTX source text.  Throws PtxError on malformed
/// input (unterminated comment, stray character, bad literal).
std::vector<Token> lex(std::string_view source);

std::string to_string(TokKind k);

}  // namespace cac::ptx
