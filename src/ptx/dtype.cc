#include "ptx/dtype.h"

namespace cac::ptx {

std::string to_string(TypeClass cls) {
  switch (cls) {
    case TypeClass::UI: return "UI";
    case TypeClass::SI: return "SI";
    case TypeClass::BD: return "BD";
  }
  return "?";
}

std::string to_string(const DType& t) {
  return to_string(t.cls) + " " + std::to_string(t.width);
}

std::string to_string(Space ss) {
  switch (ss) {
    case Space::Global: return "Global";
    case Space::Const: return "Const";
    case Space::Shared: return "Shared";
    case Space::Param: return "Param";
  }
  return "?";
}

DType dtype_from_suffix(const std::string& suffix) {
  if (suffix.size() < 2) throw PtxError("bad type suffix: ." + suffix);
  const char cls_ch = suffix[0];
  const std::string width_str = suffix.substr(1);
  unsigned width = 0;
  if (width_str == "8") width = 8;
  else if (width_str == "16") width = 16;
  else if (width_str == "32") width = 32;
  else if (width_str == "64") width = 64;
  else throw PtxError("bad type width: ." + suffix);

  switch (cls_ch) {
    case 'u': return UI(static_cast<std::uint8_t>(width));
    case 's': return SI(static_cast<std::uint8_t>(width));
    case 'b': return BD(static_cast<std::uint8_t>(width));
    default: throw PtxError("bad type class: ." + suffix);
  }
}

}  // namespace cac::ptx
