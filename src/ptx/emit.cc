#include "ptx/emit.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "support/diag.h"

namespace cac::ptx {

namespace {

/// Register naming scheme for emission: one textual prefix per
/// (class, width) pair, mirroring nvcc's conventions where they exist.
std::string reg_prefix(TypeClass cls, unsigned width) {
  const bool s = cls == TypeClass::SI;
  switch (width) {
    case 8: return s ? "sb" : "rb";
    case 16: return s ? "sh" : "rh";
    case 32: return s ? "s" : "r";
    case 64: return s ? "sd" : "rd";
  }
  throw PtxError("unemittable register width");
}

std::string type_suffix(const DType& t) {
  const char c = t.cls == TypeClass::UI ? 'u'
               : t.cls == TypeClass::SI ? 's'
                                        : 'b';
  return std::string(1, c) + std::to_string(t.width);
}

std::string space_name(Space ss) {
  switch (ss) {
    case Space::Global: return "global";
    case Space::Const: return "const";
    case Space::Shared: return "shared";
    case Space::Param: return "param";
  }
  return "?";
}

class Emitter {
 public:
  Emitter(const Program& prg, const EmitOptions& opts)
      : prg_(prg), opts_(opts) {}

  std::string run() {
    collect();
    std::string out = ".version 6.0\n.target sm_30\n.address_size 64\n\n";
    out += ".visible .entry " + prg_.name() + "(";
    for (std::size_t i = 0; i < prg_.params().size(); ++i) {
      const ParamSlot& p = prg_.params()[i];
      out += std::string(i ? "," : "") + "\n  .param ." +
             type_suffix(p.type) + " " + p.name;
    }
    out += prg_.params().empty() ? ")\n{\n" : "\n)\n{\n";

    if (max_pred_) {
      out += "  .reg .pred %p<" + std::to_string(*max_pred_ + 1) + ">;\n";
    }
    for (const auto& [key, max_index] : max_reg_) {
      const auto cls = static_cast<TypeClass>(key >> 8);
      const unsigned width = key & 0xff;
      const char decl = cls == TypeClass::SI ? 's' : 'u';
      out += "  .reg ." + std::string(1, decl) + std::to_string(width) +
             " %" + reg_prefix(cls, width) + "<" +
             std::to_string(max_index + 1) + ">;\n";
    }
    out += "\n";

    for (std::uint32_t pc = 0; pc < prg_.size(); ++pc) {
      if (labels_.count(pc)) out += "L" + std::to_string(pc) + ":\n";
      const std::string line = emit_instr(prg_.fetch(pc));
      if (!line.empty()) out += "  " + line + ";\n";
    }
    out += "}\n";
    return out;
  }

 private:
  void note_reg(const Reg& r) {
    const std::uint32_t key =
        (static_cast<std::uint32_t>(r.cls) << 8) | r.width;
    auto [it, inserted] = max_reg_.emplace(key, r.index);
    if (!inserted) it->second = std::max(it->second, r.index);
  }

  void note_operand(const Operand& op) {
    if (const auto* r = std::get_if<Reg>(&op)) note_reg(*r);
    if (const auto* ri = std::get_if<RegImm>(&op)) note_reg(ri->reg);
  }

  void collect() {
    for (std::uint32_t pc = 0; pc < prg_.size(); ++pc) {
      const Instr& i = prg_.fetch(pc);
      std::visit([this](const auto& ins) { collect_instr(ins); }, i);
      if (const auto* b = std::get_if<IBra>(&i)) labels_.insert(b->target);
      if (const auto* pb = std::get_if<IPBra>(&i)) labels_.insert(pb->target);
    }
  }

  void collect_instr(const INop&) {}
  void collect_instr(const IBop& i) {
    note_reg(i.dst);
    note_operand(i.a);
    note_operand(i.b);
  }
  void collect_instr(const ITop& i) {
    note_reg(i.dst);
    note_operand(i.a);
    note_operand(i.b);
    note_operand(i.c);
  }
  void collect_instr(const IUop& i) {
    note_reg(i.dst);
    note_operand(i.a);
  }
  void collect_instr(const IMov& i) {
    note_reg(i.dst);
    note_operand(i.src);
  }
  void collect_instr(const ILd& i) {
    note_reg(i.dst);
    note_operand(i.addr);
  }
  void collect_instr(const ISt& i) {
    note_reg(i.src);
    note_operand(i.addr);
  }
  void collect_instr(const IBra&) {}
  void collect_instr(const ISetp& i) {
    note_pred(i.dst);
    note_operand(i.a);
    note_operand(i.b);
  }
  void collect_instr(const IPBra& i) { note_pred(i.pred); }
  void collect_instr(const ISelp& i) {
    note_reg(i.dst);
    note_operand(i.a);
    note_operand(i.b);
    note_pred(i.pred);
  }
  void collect_instr(const ISync&) {}
  void collect_instr(const IBar&) {}
  void collect_instr(const IExit&) {}
  void collect_instr(const IVote& i) {
    note_pred(i.src);
    if (i.mode == VoteMode::Ballot) note_reg(i.dst_ballot);
    else note_pred(i.dst);
  }
  void collect_instr(const IShfl& i) {
    note_reg(i.dst);
    note_reg(i.src);
    note_operand(i.lane);
  }
  void collect_instr(const IAtom& i) {
    note_reg(i.dst);
    note_operand(i.addr);
    note_operand(i.b);
    note_operand(i.c);
  }

  void note_pred(const Pred& p) {
    max_pred_ = max_pred_ ? std::max(*max_pred_, p.index) : p.index;
  }

  std::string reg_name(const Reg& r) const {
    return "%" + reg_prefix(r.cls, r.width) + std::to_string(r.index);
  }

  std::string value_operand(const Operand& op) const {
    if (const auto* r = std::get_if<Reg>(&op)) return reg_name(*r);
    if (const auto* s = std::get_if<Sreg>(&op)) return to_string(*s);
    if (const auto* i = std::get_if<Imm>(&op)) return std::to_string(i->value);
    throw PtxError("operand kind not emittable as a value");
  }

  std::string addr_operand(const Operand& op, Space ss) const {
    if (const auto* r = std::get_if<Reg>(&op)) {
      return "[" + reg_name(*r) + "]";
    }
    if (const auto* ri = std::get_if<RegImm>(&op)) {
      return "[" + reg_name(ri->reg) +
             (ri->offset >= 0 ? "+" : "") + std::to_string(ri->offset) + "]";
    }
    if (const auto* imm = std::get_if<Imm>(&op)) {
      if (ss == Space::Param) {
        // Identify the parameter slot this offset addresses.
        for (const ParamSlot& p : prg_.params()) {
          if (p.offset == static_cast<std::uint64_t>(imm->value)) {
            return "[" + p.name + "]";
          }
        }
      }
      return "[" + std::to_string(imm->value) + "]";
    }
    throw PtxError("operand kind not emittable as an address");
  }

  std::string emit_instr(const Instr& instr) {
    struct V {
      Emitter& e;
      std::string operator()(const INop&) const { return "nop"; }
      std::string operator()(const IBop& i) const {
        std::string m;
        switch (i.op) {
          case BinOp::Add: m = "add"; break;
          case BinOp::Sub: m = "sub"; break;
          case BinOp::Mul: m = "mul.lo"; break;
          case BinOp::MulHi: m = "mul.hi"; break;
          case BinOp::MulWide: m = "mul.wide"; break;
          case BinOp::Div: m = "div"; break;
          case BinOp::Rem: m = "rem"; break;
          case BinOp::Min: m = "min"; break;
          case BinOp::Max: m = "max"; break;
          case BinOp::And: m = "and"; break;
          case BinOp::Or: m = "or"; break;
          case BinOp::Xor: m = "xor"; break;
          case BinOp::Shl: m = "shl"; break;
          case BinOp::Shr: m = "shr"; break;
        }
        return m + "." + type_suffix(i.type) + " " + e.reg_name(i.dst) +
               ", " + e.value_operand(i.a) + ", " + e.value_operand(i.b);
      }
      std::string operator()(const ITop& i) const {
        const std::string m =
            i.op == TerOp::MadLo ? "mad.lo" : "mad.wide";
        return m + "." + type_suffix(i.type) + " " + e.reg_name(i.dst) +
               ", " + e.value_operand(i.a) + ", " + e.value_operand(i.b) +
               ", " + e.value_operand(i.c);
      }
      std::string operator()(const IUop& i) const {
        if (i.op == UnOp::Cvt) {
          return "cvt.u" + std::to_string(i.dst.width) + "." +
                 type_suffix(i.type) + " " + e.reg_name(i.dst) + ", " +
                 e.value_operand(i.a);
        }
        const char* m = "";
        switch (i.op) {
          case UnOp::Not: m = "not"; break;
          case UnOp::Neg: m = "neg"; break;
          case UnOp::Abs: m = "abs"; break;
          case UnOp::Popc: m = "popc"; break;
          case UnOp::Clz: m = "clz"; break;
          case UnOp::Brev: m = "brev"; break;
          case UnOp::Cvt: break;
        }
        return std::string(m) + "." + type_suffix(i.type) + " " +
               e.reg_name(i.dst) + ", " + e.value_operand(i.a);
      }
      std::string operator()(const IMov& i) const {
        return "mov.u" + std::to_string(i.dst.width) + " " +
               e.reg_name(i.dst) + ", " + e.value_operand(i.src);
      }
      std::string operator()(const ILd& i) const {
        return "ld." + space_name(i.space) + "." + type_suffix(i.type) +
               " " + e.reg_name(i.dst) + ", " +
               e.addr_operand(i.addr, i.space);
      }
      std::string operator()(const ISt& i) const {
        return "st." + space_name(i.space) + "." + type_suffix(i.type) +
               " " + e.addr_operand(i.addr, i.space) + ", " +
               e.reg_name(i.src);
      }
      std::string operator()(const IBra& i) const {
        return "bra L" + std::to_string(i.target);
      }
      std::string operator()(const ISetp& i) const {
        const char* c = "";
        switch (i.cmp) {
          case CmpOp::Eq: c = "eq"; break;
          case CmpOp::Ne: c = "ne"; break;
          case CmpOp::Lt: c = "lt"; break;
          case CmpOp::Le: c = "le"; break;
          case CmpOp::Gt: c = "gt"; break;
          case CmpOp::Ge: c = "ge"; break;
        }
        return std::string("setp.") + c + "." + type_suffix(i.type) + " %p" +
               std::to_string(i.dst.index) + ", " + e.value_operand(i.a) +
               ", " + e.value_operand(i.b);
      }
      std::string operator()(const IPBra& i) const {
        return std::string("@") + (i.negated ? "!" : "") + "%p" +
               std::to_string(i.pred.index) + " bra L" +
               std::to_string(i.target);
      }
      std::string operator()(const ISelp& i) const {
        return "selp." + type_suffix(i.type) + " " + e.reg_name(i.dst) +
               ", " + e.value_operand(i.a) + ", " + e.value_operand(i.b) +
               ", %p" + std::to_string(i.pred.index);
      }
      std::string operator()(const ISync&) const {
        return e.opts_.emit_syncs ? "sync" : "";
      }
      std::string operator()(const IBar&) const { return "bar.sync 0"; }
      std::string operator()(const IExit&) const { return "ret"; }
      std::string operator()(const IVote& i) const {
        switch (i.mode) {
          case VoteMode::All:
            return "vote.all.pred %p" + std::to_string(i.dst.index) +
                   ", %p" + std::to_string(i.src.index);
          case VoteMode::Any:
            return "vote.any.pred %p" + std::to_string(i.dst.index) +
                   ", %p" + std::to_string(i.src.index);
          case VoteMode::Ballot:
            return "vote.ballot.b32 " + e.reg_name(i.dst_ballot) + ", %p" +
                   std::to_string(i.src.index);
        }
        return "";
      }
      std::string operator()(const IShfl& i) const {
        const char* m = "";
        switch (i.mode) {
          case ShflMode::Idx: m = "idx"; break;
          case ShflMode::Up: m = "up"; break;
          case ShflMode::Down: m = "down"; break;
          case ShflMode::Bfly: m = "bfly"; break;
        }
        return std::string("shfl.") + m + "." + type_suffix(i.type) + " " +
               e.reg_name(i.dst) + ", " + e.reg_name(i.src) + ", " +
               e.value_operand(i.lane);
      }
      std::string operator()(const IAtom& i) const {
        const char* op = "";
        switch (i.op) {
          case AtomOp::Add: op = "add"; break;
          case AtomOp::Exch: op = "exch"; break;
          case AtomOp::Min: op = "min"; break;
          case AtomOp::Max: op = "max"; break;
          case AtomOp::And: op = "and"; break;
          case AtomOp::Or: op = "or"; break;
          case AtomOp::Xor: op = "xor"; break;
          case AtomOp::Cas: op = "cas"; break;
        }
        std::string s = "atom." + space_name(i.space) + "." + op + "." +
                        type_suffix(i.type) + " " + e.reg_name(i.dst) +
                        ", " + e.addr_operand(i.addr, i.space) + ", " +
                        e.value_operand(i.b);
        if (i.op == AtomOp::Cas) s += ", " + e.value_operand(i.c);
        return s;
      }
    };
    return std::visit(V{*this}, instr);
  }

  const Program& prg_;
  const EmitOptions& opts_;
  std::map<std::uint32_t, std::uint16_t> max_reg_;  // (cls,width) -> max idx
  std::optional<std::uint16_t> max_pred_;
  std::set<std::uint32_t> labels_;
};

}  // namespace

std::string emit_ptx(const Program& prg, const EmitOptions& opts) {
  return Emitter(prg, opts).run();
}

}  // namespace cac::ptx
