// Programs (paper §III-6): a program `prg` is a list of PTX
// instructions; the program counter indexes into it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptx/instr.h"

namespace cac::ptx {

/// A kernel parameter as seen after lowering: a named, sized slot in
/// Param space.  `offset` is the byte offset of the slot.
struct ParamSlot {
  std::string name;
  DType type;
  std::uint32_t offset = 0;

  friend bool operator==(const ParamSlot&, const ParamSlot&) = default;
};

/// A lowered PTX kernel in model form.
class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> code,
          std::vector<ParamSlot> params = {})
      : name_(std::move(name)),
        code_(std::move(code)),
        params_(std::move(params)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Instr>& code() const { return code_; }
  [[nodiscard]] const std::vector<ParamSlot>& params() const {
    return params_;
  }
  [[nodiscard]] std::size_t size() const { return code_.size(); }
  [[nodiscard]] bool empty() const { return code_.empty(); }

  /// Fetch the instruction at `pc`.  Throws KernelError if `pc` is out
  /// of range: well-formed programs end every path with Exit, so the
  /// semantics never run off the end.
  [[nodiscard]] const Instr& fetch(std::uint32_t pc) const;

  /// Byte offset of a named parameter slot; throws PtxError if absent.
  [[nodiscard]] const ParamSlot& param(const std::string& name) const;

  /// Total bytes of Param space this kernel uses.
  [[nodiscard]] std::uint32_t param_bytes() const;

  friend bool operator==(const Program&, const Program&) = default;

 private:
  std::string name_;
  std::vector<Instr> code_;
  std::vector<ParamSlot> params_;
};

/// Structural well-formedness issues found by `validate`.
struct ProgramIssue {
  std::uint32_t pc = 0;
  std::string message;
};

/// Static well-formedness validation: all branch targets in range, the
/// program is non-empty, every fall-through path is terminated by Exit
/// (i.e. the final instruction is Exit or an unconditional Bra), and
/// predicated branches are the only predicated instructions.
std::vector<ProgramIssue> validate(const Program& prg);

/// Per-variant instruction histogram; used by the Table I model
/// inventory bench.
struct InstrHistogram {
  std::size_t counts[std::variant_size_v<Instr>] = {};
  [[nodiscard]] std::size_t total() const;
};
InstrHistogram histogram(const Program& prg);

std::string to_string(const Program& prg);

}  // namespace cac::ptx
