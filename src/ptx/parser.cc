#include "ptx/parser.h"

#include <cctype>

namespace cac::ptx {

namespace {

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  AstModule run() {
    AstModule m;
    while (!at(TokKind::End)) {
      if (at(TokKind::Directive)) {
        const std::string d = cur().text;
        if (d == "version") {
          advance();
          m.version = parse_version_number();
        } else if (d == "target") {
          advance();
          m.target = expect(TokKind::Ident).text;
          while (eat_punct(',')) expect(TokKind::Ident);
        } else if (d == "address_size") {
          advance();
          m.address_size = to_u32(expect(TokKind::Int), "address size");
        } else if (d == "visible" || d == "entry" || d == "func") {
          m.kernels.push_back(parse_kernel());
        } else if (d == "shared") {
          m.shared.push_back(parse_shared_decl());
        } else if (d == "file" || d == "loc" || d == "extern" ||
                   d == "weak") {
          advance();
          skip_loose_tail();
        } else {
          throw PtxError(cur().loc, "unexpected directive ." + d);
        }
      } else {
        throw PtxError(cur().loc,
                       "unexpected token at module scope: " + cur().text);
      }
    }
    return m;
  }

 private:
  // The lexer always terminates the stream with an End token; cur()
  // and advance() saturate there, so no input — however malformed —
  // can index past the token vector (a structured PtxError is the
  // only way out of the parser, never undefined behavior).
  [[nodiscard]] const Token& cur() const {
    return pos_ < toks_.size() ? toks_[pos_] : toks_.back();
  }
  [[nodiscard]] const Token& peek(std::size_t ahead = 1) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  [[nodiscard]] bool at(TokKind k) const { return cur().kind == k; }
  [[nodiscard]] bool at_punct(char c) const { return cur().is_punct(c); }

  const Token& advance() {
    const Token& t = cur();
    if (pos_ < toks_.size()) ++pos_;
    return t;
  }

  /// Checked narrowing for counts and sizes that land in u32 fields —
  /// an oversized literal is a diagnostic, not a silent truncation.
  static std::uint32_t to_u32(const Token& t, const char* what) {
    if (t.value < 0 || t.value > 0xffffffffll) {
      throw PtxError(t.loc, std::string(what) + " out of range: " + t.text);
    }
    return static_cast<std::uint32_t>(t.value);
  }

  const Token& expect(TokKind k) {
    if (!at(k)) {
      throw PtxError(cur().loc, "expected " + to_string(k) + ", found '" +
                                    cur().text + "'");
    }
    return advance();
  }

  void expect_punct(char c) {
    if (!at_punct(c)) {
      throw PtxError(cur().loc, std::string("expected '") + c +
                                    "', found '" + cur().text + "'");
    }
    advance();
  }

  bool eat_punct(char c) {
    if (at_punct(c)) {
      advance();
      return true;
    }
    return false;
  }

  std::string parse_version_number() {
    std::string v = std::to_string(expect(TokKind::Int).value);
    // "6.0" lexes as Int 6 followed by directive "0".
    if (at(TokKind::Directive) && all_digits(cur().text)) {
      v += "." + advance().text;
    }
    return v;
  }

  // Consume the free-form tail of directives we do not model
  // (.file/.loc debug info): integers, identifiers and commas.
  void skip_loose_tail() {
    while (at(TokKind::Int) || at(TokKind::Ident) || at_punct(',')) advance();
    eat_punct(';');
  }

  AstSharedDecl parse_shared_decl() {
    AstSharedDecl d;
    expect(TokKind::Directive);  // "shared"
    std::uint32_t elem_bytes = 1;
    while (at(TokKind::Directive)) {
      const Token& tok = advance();
      const std::string& t = tok.text;
      if (t == "align") {
        d.align = to_u32(expect(TokKind::Int), "alignment");
      } else if (t.size() >= 2 && all_digits(t.substr(1))) {
        // Element width from the type suffix, e.g. ".u32" -> 4 bytes.
        // all_digits admits arbitrarily long digit runs, so parse with
        // an explicit bound instead of letting stoul throw a loc-less
        // out_of_range.
        std::uint64_t bits = 0;
        for (char c : t.substr(1)) {
          bits = bits * 10 + static_cast<std::uint64_t>(c - '0');
          if (bits > 1024) {
            throw PtxError(tok.loc, "implausible type width ." + t);
          }
        }
        elem_bytes = static_cast<std::uint32_t>(bits) / 8;
      }
    }
    d.name = expect(TokKind::Ident).text;
    if (eat_punct('[')) {
      const Token& n = expect(TokKind::Int);
      const std::uint64_t total =
          static_cast<std::uint64_t>(elem_bytes) * to_u32(n, "array length");
      if (total > 0xffffffffull) {
        throw PtxError(n.loc, "shared declaration too large: " + n.text);
      }
      d.bytes = static_cast<std::uint32_t>(total);
      expect_punct(']');
    } else {
      d.bytes = elem_bytes;
    }
    expect_punct(';');
    return d;
  }

  AstKernel parse_kernel() {
    AstKernel k;
    while (at(TokKind::Directive) &&
           (cur().text == "visible" || cur().text == "weak")) {
      k.visible = true;
      advance();
    }
    if (!at(TokKind::Directive) ||
        (cur().text != "entry" && cur().text != "func")) {
      throw PtxError(cur().loc, "expected .entry or .func");
    }
    advance();
    k.name = expect(TokKind::Ident).text;
    if (eat_punct('(')) {
      if (!at_punct(')')) {
        do {
          k.params.push_back(parse_param());
        } while (eat_punct(','));
      }
      expect_punct(')');
    }
    expect_punct('{');
    while (!at_punct('}')) {
      if (at(TokKind::End)) {
        throw PtxError(cur().loc, "unterminated kernel body");
      }
      parse_body_stmt(k);
    }
    expect_punct('}');
    return k;
  }

  AstParam parse_param() {
    AstParam p;
    p.loc = cur().loc;
    if (!cur().is_directive("param")) {
      throw PtxError(cur().loc, "expected .param");
    }
    advance();
    while (at(TokKind::Directive)) {
      const std::string t = advance().text;
      if (t == "align") {
        expect(TokKind::Int);
      } else if (t == "ptr") {
        // .ptr .global .align N — the inner space/align directives are
        // consumed by this loop.
      } else if (t == "global" || t == "shared" || t == "const" ||
                 t == "local") {
        // space qualifier of a .ptr annotation
      } else {
        p.type_suffix = t;  // the value type, e.g. "u64"
      }
    }
    if (p.type_suffix.empty()) {
      throw PtxError(p.loc, "parameter without a type");
    }
    p.name = expect(TokKind::Ident).text;
    if (eat_punct('[')) {  // array parameter; size is not modeled
      expect(TokKind::Int);
      expect_punct(']');
    }
    return p;
  }

  void parse_body_stmt(AstKernel& k) {
    if (at(TokKind::Directive)) {
      const std::string d = cur().text;
      if (d == "reg") {
        k.body.push_back(parse_reg_decl());
      } else if (d == "shared") {
        // Kernel-scoped shared declarations behave like module scope.
        shared_out_.push_back(parse_shared_decl());
      } else if (d == "loc" || d == "file" || d == "pragma") {
        advance();
        skip_loose_tail();
      } else {
        throw PtxError(cur().loc, "unsupported directive in body: ." + d);
      }
      return;
    }
    if (at(TokKind::Ident) && peek().is_punct(':')) {
      AstLabel lbl{advance().text, cur().loc};
      expect_punct(':');
      k.body.push_back(std::move(lbl));
      return;
    }
    k.body.push_back(parse_instr());
  }

  AstRegDecl parse_reg_decl() {
    AstRegDecl d;
    d.loc = cur().loc;
    advance();  // .reg
    d.type_suffix = expect(TokKind::Directive).text;
    d.prefix = expect(TokKind::RegRef).text;
    if (eat_punct('<')) {
      d.count = to_u32(expect(TokKind::Int), "register count");
      expect_punct('>');
    }
    expect_punct(';');
    return d;
  }

  AstInstr parse_instr() {
    AstInstr ins;
    ins.loc = cur().loc;
    if (eat_punct('@')) {
      AstGuard g;
      g.negated = eat_punct('!');
      g.pred = expect(TokKind::RegRef).text;
      ins.guard = g;
    }
    ins.opcode = expect(TokKind::Ident).text;
    while (at(TokKind::Directive)) {
      ins.opcode += "." + advance().text;
    }
    if (!at_punct(';')) {
      do {
        ins.ops.push_back(parse_operand());
      } while (eat_punct(','));
    }
    expect_punct(';');
    return ins;
  }

  AstOperand parse_operand() {
    AstOperand op;
    op.loc = cur().loc;
    if (at(TokKind::RegRef)) {
      op.kind = AstOperand::Kind::Reg;
      op.reg = advance().text;
      return op;
    }
    if (at_punct('-')) {
      advance();
      op.kind = AstOperand::Kind::Imm;
      op.imm = -expect(TokKind::Int).value;
      return op;
    }
    if (at(TokKind::Int)) {
      op.kind = AstOperand::Kind::Imm;
      op.imm = advance().value;
      return op;
    }
    if (at(TokKind::Ident)) {
      op.kind = AstOperand::Kind::Sym;
      op.symbol = advance().text;
      return op;
    }
    if (eat_punct('{')) {  // vector operand of a v2/v4 ld/st
      op.kind = AstOperand::Kind::RegVec;
      do {
        op.vec.push_back(expect(TokKind::RegRef).text);
      } while (eat_punct(','));
      expect_punct('}');
      return op;
    }
    if (eat_punct('[')) {
      op.kind = AstOperand::Kind::Mem;
      if (at(TokKind::RegRef)) {
        op.reg = advance().text;
      } else if (at(TokKind::Int)) {
        op.imm = advance().value;  // absolute address
        expect_punct(']');
        return op;
      } else {
        op.symbol = expect(TokKind::Ident).text;
      }
      if (at_punct('+') || at_punct('-')) {
        const bool neg = cur().text[0] == '-';
        advance();
        const std::int64_t v = expect(TokKind::Int).value;
        op.imm = neg ? -v : v;
      }
      expect_punct(']');
      return op;
    }
    throw PtxError(cur().loc, "expected operand, found '" + cur().text + "'");
  }

 public:
  std::vector<AstSharedDecl> shared_out_;

 private:
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

AstModule parse_module(std::string_view source) {
  Parser p(lex(source));
  AstModule m = p.run();
  for (auto& s : p.shared_out_) m.shared.push_back(std::move(s));
  return m;
}

}  // namespace cac::ptx
