// Registers, special registers, predicates and operands (paper Table I).
//
//   reg      : {UI, SI} x N x N             -- class, width, index
//   sreg     : {T, B, NT, NB} x {Dx,Dy,Dz}  -- tid / ctaid / ntid / nctaid
//   op       : reg + sreg + Z + reg x Z     -- the four operand kinds
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "ptx/dtype.h"

namespace cac::ptx {

/// A general-purpose register.  Identified (as in the paper) by its
/// type class, bit width, and index; `(UI 32, 5)` and `(UI 64, 5)` are
/// distinct registers, matching PTX's `%r5` vs `%rd5`.
struct Reg {
  TypeClass cls = TypeClass::UI;  // UI or SI only
  std::uint8_t width = 32;
  std::uint16_t index = 0;

  friend bool operator==(const Reg&, const Reg&) = default;
  friend auto operator<=>(const Reg&, const Reg&) = default;

  /// Packed key used by the register file map.
  [[nodiscard]] std::uint32_t key() const {
    return (static_cast<std::uint32_t>(cls) << 24) |
           (static_cast<std::uint32_t>(width) << 16) | index;
  }
};

/// A predicate register (maps to `%p<n>`); the predicate state phi maps
/// indices to booleans.
struct Pred {
  std::uint16_t index = 0;
  friend bool operator==(const Pred&, const Pred&) = default;
};

/// Dimension selector of a 3-d special register (paper `dim`).
enum class Dim : std::uint8_t { X = 0, Y = 1, Z = 2 };

/// The four predominant special registers (paper `sreg`):
///   Tid    = %tid     (T,  thread index within the block)
///   CtaId  = %ctaid   (B,  block index within the grid)
///   NTid   = %ntid    (NT, block size)
///   NCtaId = %nctaid  (NB, grid size)
enum class SregKind : std::uint8_t { Tid = 0, CtaId = 1, NTid = 2, NCtaId = 3 };

struct Sreg {
  SregKind kind = SregKind::Tid;
  Dim dim = Dim::X;
  friend bool operator==(const Sreg&, const Sreg&) = default;
};

/// Immediate operand.  Stored as a signed 64-bit literal; the executing
/// instruction interprets the low bits at its own width.
struct Imm {
  std::int64_t value = 0;
  friend bool operator==(const Imm&, const Imm&) = default;
};

/// Register-plus-immediate addressing operand, e.g. `[%rd4+8]`.
struct RegImm {
  Reg reg;
  std::int64_t offset = 0;
  friend bool operator==(const RegImm&, const RegImm&) = default;
};

/// An instruction operand: one of the four kinds of paper Table I.
using Operand = std::variant<Reg, Sreg, Imm, RegImm>;

std::string to_string(const Reg& r);
std::string to_string(const Pred& p);
std::string to_string(const Sreg& s);
std::string to_string(const Operand& op);

/// Shorthand constructors used by tests and hand-built programs; these
/// mirror the `_r1 : op := Reg r1` wrappers of the paper's Listing 2.
inline Operand op_reg(Reg r) { return Operand{r}; }
inline Operand op_sreg(SregKind k, Dim d) { return Operand{Sreg{k, d}}; }
inline Operand op_imm(std::int64_t v) { return Operand{Imm{v}}; }
inline Operand op_regimm(Reg r, std::int64_t off) {
  return Operand{RegImm{r, off}};
}

}  // namespace cac::ptx
