// Lowering: AST -> core model programs.
//
// This is the mechanical version of the paper's Listing 1 -> Listing 2
// hand translation (§IV):
//
//  * `ld.param.X r, [name]` becomes a Param-space load of the argument
//    slot (the paper used `Mov r name`; observationally identical since
//    Param bytes are written once at launch and never change),
//  * `cvta.to.<space>` disappears into a plain Mov — the state space is
//    already carried by every Ld/St in the model (§IV),
//  * the warp-reconvergence pseudo-instruction Sync is inserted at the
//    immediate post-dominator of every predicated branch, which is
//    exactly where the paper placed it by hand (index 18 of Listing 2),
//    plus before every Exit reachable from divergent code,
//  * labels are resolved to instruction indices.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ptx/parser.h"
#include "ptx/program.h"

namespace cac::ptx {

struct LowerOptions {
  /// Insert Sync at reconvergence points (immediate post-dominators of
  /// predicated branches).  Disable only to study divergence deadlocks.
  bool insert_syncs = true;

  /// Which branches receive a reconvergence Sync.  DivergentOnly runs
  /// the warp-divergence analysis (cf. the paper's related work [14])
  /// and skips warp-uniform branches; AllBranches is the naive policy,
  /// kept as an ablation — a Sync executed for a uniform branch while
  /// an enclosing divergence is open engages Fig. 2's rotation cases
  /// forever (see DESIGN.md), so kernels like scan_signature livelock
  /// under it.
  enum class SyncPolicy : std::uint8_t { DivergentOnly, AllBranches };
  SyncPolicy sync_policy = SyncPolicy::DivergentOnly;
};

/// A lowered module: one core Program per kernel, plus the layout of
/// module-scope Shared-space declarations.
struct LoweredModule {
  std::vector<Program> kernels;
  std::unordered_map<std::string, std::uint32_t> shared_offsets;
  std::uint32_t shared_bytes = 0;

  /// Per-kernel source locations, parallel to each Program's code():
  /// kernel_locs[name][pc] is the source position of the statement
  /// that pc was lowered from.  Kept as a side table (not in Program)
  /// so Program's structural equality and checkpoint fingerprints are
  /// unaffected.  Mechanically inserted instructions (reconvergence
  /// Syncs) carry the invalid location {0,0}; vector accesses expand
  /// to several pcs sharing one location.  Diagnostics (cacval lint)
  /// resolve pcs through this table.
  std::unordered_map<std::string, std::vector<SourceLoc>> kernel_locs;

  /// Locations for a kernel's code, or an all-invalid vector sized to
  /// the kernel when the module was built without source (tests that
  /// hand-assemble Programs).
  [[nodiscard]] std::vector<SourceLoc> locs_for(const Program& prg) const;

  /// Look up a kernel by name; throws PtxError if absent.  On an
  /// rvalue module the kernel is returned by value so that
  /// `load_ptx(src).kernel("k")` cannot dangle.
  [[nodiscard]] const Program& kernel(const std::string& name) const&;
  [[nodiscard]] Program kernel(const std::string& name) &&;
};

/// Lower a parsed module.  Throws PtxError on constructs outside the
/// modeled subset (e.g. a guard on a non-branch instruction, which the
/// paper's model excludes by design, §III-3).
LoweredModule lower(const AstModule& m, const LowerOptions& opts = {});

/// Convenience: parse + lower in one step.
LoweredModule load_ptx(std::string_view source, const LowerOptions& opts = {});

}  // namespace cac::ptx
