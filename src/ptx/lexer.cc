#include "ptx/lexer.h"

#include <cctype>

namespace cac::ptx {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_space_and_comments();
      if (at_end()) break;
      out.push_back(next_token());
    }
    out.push_back(Token{TokKind::End, "", 0, loc()});
    return out;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  [[nodiscard]] SourceLoc loc() const { return {line_, col_}; }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_space_and_comments() {
    for (;;) {
      while (!at_end() &&
             std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      }
      if (peek() == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        const SourceLoc start = loc();
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (at_end()) throw PtxError(start, "unterminated block comment");
          advance();
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  std::string read_ident() {
    std::string s;
    while (!at_end() && ident_char(peek())) s += advance();
    return s;
  }

  Token next_token() {
    const SourceLoc at = loc();
    const char c = peek();

    if (c == '.') {
      advance();
      if (!ident_start(peek()) && !std::isdigit(static_cast<unsigned char>(peek()))) {
        throw PtxError(at, "expected directive name after '.'");
      }
      return {TokKind::Directive, read_ident(), 0, at};
    }

    if (c == '%') {
      advance();
      if (!ident_start(peek())) {
        throw PtxError(at, "expected register name after '%'");
      }
      std::string name = read_ident();
      // Special registers carry a dimension suffix: %tid.x etc.
      if (peek() == '.' && ident_start(peek(1))) {
        advance();
        name += '.';
        name += read_ident();
      }
      return {TokKind::RegRef, name, 0, at};
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string lit;
      while (!at_end() && ident_char(peek())) lit += advance();
      int base = 10;
      std::string digits = lit;
      if (lit.size() > 2 && lit[0] == '0' && (lit[1] == 'x' || lit[1] == 'X')) {
        base = 16;
        digits = lit.substr(2);
      }
      // PTX allows a 'U' suffix on literals.
      if (!digits.empty() && (digits.back() == 'U' || digits.back() == 'u')) {
        digits.pop_back();
      }
      try {
        std::size_t used = 0;
        const auto v = static_cast<std::int64_t>(
            std::stoull(digits, &used, base));
        if (used != digits.size()) throw std::invalid_argument(lit);
        return {TokKind::Int, lit, v, at};
      } catch (const std::exception&) {
        throw PtxError(at, "bad integer literal '" + lit + "'");
      }
    }

    if (ident_start(c)) {
      return {TokKind::Ident, read_ident(), 0, at};
    }

    if (c == '"') {  // file names in .file debug directives
      advance();
      std::string s;
      while (!at_end() && peek() != '"') s += advance();
      if (at_end()) throw PtxError(at, "unterminated string literal");
      advance();
      return {TokKind::Ident, s, 0, at};
    }

    constexpr std::string_view puncts = ",;[](){}:@!+-<>|";
    if (puncts.find(c) != std::string_view::npos) {
      advance();
      return {TokKind::Punct, std::string(1, c), 0, at};
    }

    throw PtxError(at, std::string("unexpected character '") + c + "'");
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) { return Lexer(source).run(); }

std::string to_string(TokKind k) {
  switch (k) {
    case TokKind::Directive: return "directive";
    case TokKind::Ident: return "identifier";
    case TokKind::RegRef: return "register";
    case TokKind::Int: return "integer";
    case TokKind::Punct: return "punctuation";
    case TokKind::End: return "end of input";
  }
  return "?";
}

}  // namespace cac::ptx
