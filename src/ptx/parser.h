// Parser for the textual PTX subset: builds a faithful AST of the
// source without interpreting opcodes.  Lowering to the core model
// (the paper's Listing 1 -> Listing 2 translation) lives in lower.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ptx/lexer.h"

namespace cac::ptx {

/// `.reg .u32 %r<9>;` declares registers %r0..%r8 of type u32.
struct AstRegDecl {
  std::string type_suffix;  // "u32", "u64", "pred", ...
  std::string prefix;       // "r", "rd", "p", ...
  std::uint32_t count = 0;  // 0 when a single register was declared
  SourceLoc loc;
};

struct AstLabel {
  std::string name;
  SourceLoc loc;
};

/// One parsed operand.  Register-vs-special-register and
/// symbol-vs-label disambiguation happens during lowering.
struct AstOperand {
  enum class Kind : std::uint8_t { Reg, Imm, Sym, Mem, RegVec };
  Kind kind = Kind::Imm;
  std::string reg;                 // Reg / Mem-with-register-base
  std::int64_t imm = 0;            // Imm / Mem offset
  std::string symbol;              // Sym / Mem-with-symbol-base
  std::vector<std::string> vec;    // RegVec: {%r1,%r2,...}
  SourceLoc loc;
};

/// `@%p1` / `@!%p1` instruction guard.
struct AstGuard {
  std::string pred;
  bool negated = false;
};

struct AstInstr {
  std::optional<AstGuard> guard;
  std::string opcode;  // full dotted opcode, e.g. "ld.global.u32"
  std::vector<AstOperand> ops;
  SourceLoc loc;
};

using AstStmt = std::variant<AstRegDecl, AstLabel, AstInstr>;

struct AstParam {
  std::string type_suffix;  // "u32", "u64", ...
  std::string name;
  SourceLoc loc;
};

struct AstKernel {
  std::string name;
  bool visible = false;
  std::vector<AstParam> params;
  std::vector<AstStmt> body;
};

/// A shared-memory declaration: `.shared .align 4 .b8 buf[128];`
struct AstSharedDecl {
  std::string name;
  std::uint32_t bytes = 0;
  std::uint32_t align = 1;
};

struct AstModule {
  std::string version;
  std::string target;
  std::uint32_t address_size = 64;
  std::vector<AstSharedDecl> shared;
  std::vector<AstKernel> kernels;
};

/// Parse a complete PTX module.  Throws PtxError on syntax errors.
AstModule parse_module(std::string_view source);

}  // namespace cac::ptx
