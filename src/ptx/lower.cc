#include "ptx/lower.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>

#include "ptx/cfg.h"
#include "ptx/defuse.h"
#include "support/strings.h"

namespace cac::ptx {

namespace {

/// Split a dotted opcode like "ld.global.u32" into its pieces.
std::vector<std::string> opcode_pieces(const std::string& opcode) {
  std::vector<std::string> out;
  for (std::string_view piece : split(opcode, '.')) {
    out.emplace_back(piece);
  }
  return out;
}

bool is_type_piece(const std::string& p) {
  if (p.size() < 2) return false;
  if (p[0] != 'u' && p[0] != 's' && p[0] != 'b') return false;
  for (std::size_t i = 1; i < p.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(p[i]))) return false;
  }
  const std::string w = p.substr(1);
  return w == "8" || w == "16" || w == "32" || w == "64";
}

/// dtype_from_suffix with the source position attached: a bad type
/// suffix reports where it was written, not a bare message.
DType typed_suffix(const std::string& suffix, SourceLoc loc) {
  try {
    return dtype_from_suffix(suffix);
  } catch (const PtxError& e) {
    throw PtxError(loc, e.what());
  }
}

std::optional<Space> space_piece(const std::string& p) {
  if (p == "global") return Space::Global;
  if (p == "shared") return Space::Shared;
  if (p == "const") return Space::Const;
  if (p == "param") return Space::Param;
  return std::nullopt;
}

std::optional<Sreg> sreg_from_name(const std::string& name) {
  const auto dot = name.find('.');
  if (dot == std::string::npos) return std::nullopt;
  const std::string base = name.substr(0, dot);
  const std::string dim_s = name.substr(dot + 1);
  SregKind kind;
  if (base == "tid") kind = SregKind::Tid;
  else if (base == "ctaid") kind = SregKind::CtaId;
  else if (base == "ntid") kind = SregKind::NTid;
  else if (base == "nctaid") kind = SregKind::NCtaId;
  else return std::nullopt;
  Dim dim;
  if (dim_s == "x") dim = Dim::X;
  else if (dim_s == "y") dim = Dim::Y;
  else if (dim_s == "z") dim = Dim::Z;
  else return std::nullopt;
  return Sreg{kind, dim};
}

/// Register naming environment built from the kernel's .reg decls.
class RegEnv {
 public:
  void declare(const AstRegDecl& d) {
    if (d.type_suffix == "pred") {
      pred_prefixes_.insert(d.prefix);
      return;
    }
    const DType t = typed_suffix(d.type_suffix, d.loc);
    // BD registers are stored as UI of the same width: the model's reg
    // domain is {UI, SI} x N x N (paper Table I) and PTX b-typed
    // registers carry uninterpreted bits.
    const TypeClass cls = t.cls == TypeClass::BD ? TypeClass::UI : t.cls;
    prefixes_[d.prefix] = DType{cls, t.width};
  }

  [[nodiscard]] Pred pred(const std::string& name, SourceLoc loc) const {
    auto [prefix, index] = split_name(name, loc);
    if (!pred_prefixes_.count(prefix)) {
      throw PtxError(loc, "'%" + name + "' is not a declared predicate");
    }
    return Pred{index};
  }

  [[nodiscard]] Reg reg(const std::string& name, SourceLoc loc) const {
    auto [prefix, index] = split_name(name, loc);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      throw PtxError(loc, "'%" + name + "' is not a declared register");
    }
    return Reg{it->second.cls, it->second.width, index};
  }

  [[nodiscard]] bool is_pred(const std::string& name) const {
    std::size_t i = 0;
    while (i < name.size() &&
           !std::isdigit(static_cast<unsigned char>(name[i]))) {
      ++i;
    }
    return pred_prefixes_.count(name.substr(0, i)) > 0;
  }

 private:
  static std::pair<std::string, std::uint16_t> split_name(
      const std::string& name, SourceLoc loc) {
    std::size_t i = 0;
    while (i < name.size() &&
           !std::isdigit(static_cast<unsigned char>(name[i]))) {
      ++i;
    }
    if (i == name.size()) return {name, 0};
    try {
      const unsigned long idx = std::stoul(name.substr(i));
      if (idx > 0xffff) {
        throw PtxError(loc, "register index out of range '%" + name + "'");
      }
      return {name.substr(0, i), static_cast<std::uint16_t>(idx)};
    } catch (const PtxError&) {
      throw;
    } catch (const std::exception&) {
      // stoul overflow/garbage: a diagnostic, never a crash or a
      // silently truncated register index.
      throw PtxError(loc, "bad register name '%" + name + "'");
    }
  }

  std::map<std::string, DType> prefixes_;
  std::set<std::string> pred_prefixes_;
};

class KernelLowerer {
 public:
  KernelLowerer(const AstKernel& k,
                const std::unordered_map<std::string, std::uint32_t>& shared,
                const LowerOptions& opts)
      : kernel_(k), shared_offsets_(shared), opts_(opts) {}

  Program run() {
    layout_params();
    for (const auto& stmt : kernel_.body) {
      if (const auto* d = std::get_if<AstRegDecl>(&stmt)) env_.declare(*d);
    }
    for (const auto& stmt : kernel_.body) {
      std::visit([this](const auto& s) { emit_stmt(s); }, stmt);
    }
    resolve_labels();
    if (opts_.insert_syncs) insert_syncs();
    return Program(kernel_.name, std::move(code_), std::move(params_));
  }

  /// Source locations parallel to the returned Program's code; valid
  /// after run().
  [[nodiscard]] std::vector<SourceLoc> take_locs() { return std::move(locs_); }

 private:
  void layout_params() {
    std::uint32_t offset = 0;
    for (const auto& p : kernel_.params) {
      const DType t = typed_suffix(p.type_suffix, p.loc);
      const std::uint32_t align = t.bytes();
      offset = (offset + align - 1) & ~(align - 1);
      params_.push_back(ParamSlot{p.name, t, offset});
      offset += t.bytes();
    }
  }

  void emit_stmt(const AstRegDecl&) {}  // handled in run()

  void emit_stmt(const AstLabel& l) {
    labels_[l.name] = static_cast<std::uint32_t>(code_.size());
  }

  void emit_stmt(const AstInstr& ins) { lower_instr(ins); }

  // ---- operand helpers -------------------------------------------------

  Reg as_reg(const AstOperand& op) const {
    if (op.kind != AstOperand::Kind::Reg) {
      throw PtxError(op.loc, "expected a register operand");
    }
    return env_.reg(op.reg, op.loc);
  }

  Pred as_pred(const AstOperand& op) const {
    if (op.kind != AstOperand::Kind::Reg) {
      throw PtxError(op.loc, "expected a predicate operand");
    }
    return env_.pred(op.reg, op.loc);
  }

  /// General value operand: register, special register or immediate.
  Operand as_value(const AstOperand& op) const {
    switch (op.kind) {
      case AstOperand::Kind::Reg: {
        if (auto s = sreg_from_name(op.reg)) return Operand{*s};
        return Operand{env_.reg(op.reg, op.loc)};
      }
      case AstOperand::Kind::Imm:
        return Operand{Imm{op.imm}};
      case AstOperand::Kind::Sym: {
        // Taking the address of a shared-space symbol.
        auto it = shared_offsets_.find(op.symbol);
        if (it == shared_offsets_.end()) {
          throw PtxError(op.loc, "unknown symbol '" + op.symbol + "'");
        }
        return Operand{Imm{static_cast<std::int64_t>(it->second)}};
      }
      case AstOperand::Kind::Mem:
      case AstOperand::Kind::RegVec:
        throw PtxError(op.loc, "memory/vector operand not allowed here");
    }
    throw PtxError(op.loc, "bad operand");
  }

  /// Address operand of an Ld/St: [%r], [%r+off], [sym], [sym+off].
  /// For Param space the symbol resolves to the parameter slot offset;
  /// for Shared space to the shared layout offset.
  Operand as_address(const AstOperand& op, Space space) const {
    if (op.kind != AstOperand::Kind::Mem) {
      throw PtxError(op.loc, "expected a memory operand");
    }
    if (!op.reg.empty()) {
      const Reg base = env_.reg(op.reg, op.loc);
      if (op.imm == 0) return Operand{base};
      return Operand{RegImm{base, op.imm}};
    }
    if (op.symbol.empty()) {  // absolute [imm] address
      return Operand{Imm{op.imm}};
    }
    std::int64_t base = 0;
    if (space == Space::Param) {
      bool found = false;
      for (const auto& slot : params_) {
        if (slot.name == op.symbol) {
          base = slot.offset;
          found = true;
          break;
        }
      }
      if (!found) {
        throw PtxError(op.loc, "unknown parameter '" + op.symbol + "'");
      }
    } else {
      auto it = shared_offsets_.find(op.symbol);
      if (it == shared_offsets_.end()) {
        throw PtxError(op.loc, "unknown symbol '" + op.symbol + "'");
      }
      base = it->second;
    }
    return Operand{Imm{base + op.imm}};
  }

  /// Address of the k-th element of a vector access.
  Operand offset_address(const AstOperand& op, Space space,
                         std::int64_t extra) const {
    const Operand base = as_address(op, space);
    if (extra == 0) return base;
    if (const auto* r = std::get_if<Reg>(&base)) {
      return Operand{RegImm{*r, extra}};
    }
    if (const auto* ri = std::get_if<RegImm>(&base)) {
      return Operand{RegImm{ri->reg, ri->offset + extra}};
    }
    if (const auto* imm = std::get_if<Imm>(&base)) {
      return Operand{Imm{imm->value + extra}};
    }
    throw PtxError(op.loc, "bad vector address");
  }

  static void check_vector_arity(const std::vector<std::string>& pieces,
                                 const AstOperand& op, SourceLoc loc) {
    std::size_t expected = 0;
    if (has_piece(pieces, "v2")) expected = 2;
    else if (has_piece(pieces, "v4")) expected = 4;
    if (expected == 0) {
      throw PtxError(loc, "vector operand on a non-vector access");
    }
    if (op.vec.size() != expected) {
      throw PtxError(loc, "vector access expects " +
                              std::to_string(expected) + " registers, got " +
                              std::to_string(op.vec.size()));
    }
  }

  // ---- instruction lowering --------------------------------------------

  static DType type_of(const std::vector<std::string>& pieces,
                       SourceLoc loc) {
    for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
      if (is_type_piece(*it)) return typed_suffix(*it, loc);
    }
    throw PtxError(loc, "opcode has no type suffix");
  }

  static Space space_of(const std::vector<std::string>& pieces,
                        Space fallback) {
    for (const auto& p : pieces) {
      if (auto s = space_piece(p)) return *s;
    }
    return fallback;
  }

  static bool has_piece(const std::vector<std::string>& pieces,
                        std::string_view piece) {
    return std::find(pieces.begin(), pieces.end(), piece) != pieces.end();
  }

  void require_ops(const AstInstr& ins, std::size_t n) const {
    if (ins.ops.size() != n) {
      throw PtxError(ins.loc, ins.opcode + " expects " + std::to_string(n) +
                                  " operands, got " +
                                  std::to_string(ins.ops.size()));
    }
  }

  void push(Instr i) {
    code_.push_back(std::move(i));
    locs_.push_back(cur_loc_);  // vector expansion shares the stmt's loc
  }

  void lower_instr(const AstInstr& ins) {
    cur_loc_ = ins.loc;
    const auto pieces = opcode_pieces(ins.opcode);
    const std::string& m = pieces[0];

    // The model predicates branches only (paper §III-3): a guard on any
    // other instruction is outside the modeled subset.
    if (ins.guard && m != "bra") {
      throw PtxError(ins.loc,
                     "predicated '" + ins.opcode +
                         "': the model supports guards on bra only");
    }

    if (m == "bra") {
      require_ops(ins, 1);
      if (ins.ops[0].kind != AstOperand::Kind::Sym) {
        throw PtxError(ins.loc, "bra expects a label");
      }
      const std::string& label = ins.ops[0].symbol;
      if (ins.guard) {
        fixups_.emplace_back(code_.size(), label);
        push(IPBra{env_.pred(ins.guard->pred, ins.loc), ins.guard->negated,
                   0});
      } else {
        fixups_.emplace_back(code_.size(), label);
        push(IBra{0});
      }
      return;
    }
    if (m == "ret" || m == "exit") {
      push(IExit{});
      return;
    }
    if (m == "nop") {
      push(INop{});
      return;
    }
    if (m == "sync" || m == "ssy") {  // explicit reconvergence point
      push(ISync{});
      return;
    }
    if (m == "bar" || m == "barrier") {
      // bar.sync 0 — only the whole-block barrier is modeled.
      push(IBar{});
      return;
    }
    if (m == "ld") {
      require_ops(ins, 2);
      const Space ss = space_of(pieces, Space::Global);
      const DType t = type_of(pieces, ins.loc);
      if (ins.ops[0].kind == AstOperand::Kind::RegVec) {
        // ld.v2/.v4: one scalar load per element at successive offsets.
        check_vector_arity(pieces, ins.ops[0], ins.loc);
        for (std::size_t k = 0; k < ins.ops[0].vec.size(); ++k) {
          push(ILd{ss, t, env_.reg(ins.ops[0].vec[k], ins.loc),
                   offset_address(ins.ops[1], ss,
                                  static_cast<std::int64_t>(k) * t.bytes())});
        }
        return;
      }
      push(ILd{ss, t, as_reg(ins.ops[0]), as_address(ins.ops[1], ss)});
      return;
    }
    if (m == "st") {
      require_ops(ins, 2);
      const Space ss = space_of(pieces, Space::Global);
      const DType t = type_of(pieces, ins.loc);
      if (ins.ops[1].kind == AstOperand::Kind::RegVec) {
        check_vector_arity(pieces, ins.ops[1], ins.loc);
        for (std::size_t k = 0; k < ins.ops[1].vec.size(); ++k) {
          push(ISt{ss, t,
                   offset_address(ins.ops[0], ss,
                                  static_cast<std::int64_t>(k) * t.bytes()),
                   env_.reg(ins.ops[1].vec[k], ins.loc)});
        }
        return;
      }
      push(ISt{ss, t, as_address(ins.ops[0], ss), as_reg(ins.ops[1])});
      return;
    }
    if (m == "mov") {
      require_ops(ins, 2);
      push(IMov{as_reg(ins.ops[0]), as_value(ins.ops[1])});
      return;
    }
    if (m == "cvta") {
      // cvta.to.global.u64 d, s: state spaces are explicit on every
      // Ld/St of the model, so address-space conversion is the identity
      // (paper §IV) and lowers to Mov.
      require_ops(ins, 2);
      push(IMov{as_reg(ins.ops[0]), as_value(ins.ops[1])});
      return;
    }
    if (m == "cvt") {
      // cvt.<dst type>.<src type> d, a — `type` records the source
      // interpretation; the destination width comes from the register.
      require_ops(ins, 2);
      if (pieces.size() < 3 || !is_type_piece(pieces[2])) {
        throw PtxError(ins.loc, "cvt needs destination and source types");
      }
      push(IUop{UnOp::Cvt, typed_suffix(pieces[2], ins.loc), as_reg(ins.ops[0]),
                as_value(ins.ops[1])});
      return;
    }
    static const std::map<std::string, UnOp> kUops = {
        {"not", UnOp::Not},   {"neg", UnOp::Neg},  {"abs", UnOp::Abs},
        {"popc", UnOp::Popc}, {"clz", UnOp::Clz},  {"brev", UnOp::Brev},
    };
    if (auto uit = kUops.find(m); uit != kUops.end()) {
      require_ops(ins, 2);
      push(IUop{uit->second, type_of(pieces, ins.loc), as_reg(ins.ops[0]),
                as_value(ins.ops[1])});
      return;
    }
    if (m == "setp") {
      require_ops(ins, 3);
      if (pieces.size() < 2) throw PtxError(ins.loc, "setp needs a cmp op");
      CmpOp cmp;
      const std::string& c = pieces[1];
      if (c == "eq") cmp = CmpOp::Eq;
      else if (c == "ne") cmp = CmpOp::Ne;
      else if (c == "lt" || c == "lo") cmp = CmpOp::Lt;
      else if (c == "le" || c == "ls") cmp = CmpOp::Le;
      else if (c == "gt" || c == "hi") cmp = CmpOp::Gt;
      else if (c == "ge" || c == "hs") cmp = CmpOp::Ge;
      else throw PtxError(ins.loc, "unsupported setp comparison ." + c);
      push(ISetp{cmp, type_of(pieces, ins.loc), as_pred(ins.ops[0]),
                 as_value(ins.ops[1]), as_value(ins.ops[2])});
      return;
    }
    if (m == "selp") {
      require_ops(ins, 4);
      push(ISelp{type_of(pieces, ins.loc), as_reg(ins.ops[0]),
                 as_value(ins.ops[1]), as_value(ins.ops[2]),
                 as_pred(ins.ops[3])});
      return;
    }
    if (m == "mad") {
      require_ops(ins, 4);
      const TerOp op = has_piece(pieces, "wide") ? TerOp::MadWide
                                                 : TerOp::MadLo;
      push(ITop{op, type_of(pieces, ins.loc), as_reg(ins.ops[0]),
                as_value(ins.ops[1]), as_value(ins.ops[2]),
                as_value(ins.ops[3])});
      return;
    }
    if (m == "mul") {
      require_ops(ins, 3);
      BinOp op = BinOp::Mul;
      if (has_piece(pieces, "wide")) op = BinOp::MulWide;
      else if (has_piece(pieces, "hi")) op = BinOp::MulHi;
      push(IBop{op, type_of(pieces, ins.loc), as_reg(ins.ops[0]),
                as_value(ins.ops[1]), as_value(ins.ops[2])});
      return;
    }
    if (m == "vote") {
      require_ops(ins, 2);
      if (has_piece(pieces, "ballot")) {
        push(IVote{VoteMode::Ballot, Pred{}, as_reg(ins.ops[0]),
                   as_pred(ins.ops[1])});
      } else if (has_piece(pieces, "all")) {
        push(IVote{VoteMode::All, as_pred(ins.ops[0]), Reg{},
                   as_pred(ins.ops[1])});
      } else if (has_piece(pieces, "any")) {
        push(IVote{VoteMode::Any, as_pred(ins.ops[0]), Reg{},
                   as_pred(ins.ops[1])});
      } else {
        throw PtxError(ins.loc, "unsupported vote mode");
      }
      return;
    }
    if (m == "shfl") {
      // shfl[.sync].<mode>.b32 d, a, b[, c[, membermask]] — the clamp
      // and membermask operands are accepted and ignored (the model's
      // warps are whole).
      if (ins.ops.size() < 3) {
        throw PtxError(ins.loc, "shfl expects at least 3 operands");
      }
      ShflMode mode;
      if (has_piece(pieces, "idx")) mode = ShflMode::Idx;
      else if (has_piece(pieces, "up")) mode = ShflMode::Up;
      else if (has_piece(pieces, "down")) mode = ShflMode::Down;
      else if (has_piece(pieces, "bfly")) mode = ShflMode::Bfly;
      else throw PtxError(ins.loc, "unsupported shfl mode");
      push(IShfl{mode, type_of(pieces, ins.loc), as_reg(ins.ops[0]),
                 as_reg(ins.ops[1]), as_value(ins.ops[2])});
      return;
    }
    if (m == "atom") {
      const Space ss = space_of(pieces, Space::Global);
      AtomOp op;
      std::string opn;
      for (const auto& p : pieces) {
        if (p == "add" || p == "exch" || p == "min" || p == "max" ||
            p == "and" || p == "or" || p == "xor" || p == "cas") {
          opn = p;
        }
      }
      if (opn == "add") op = AtomOp::Add;
      else if (opn == "exch") op = AtomOp::Exch;
      else if (opn == "min") op = AtomOp::Min;
      else if (opn == "max") op = AtomOp::Max;
      else if (opn == "and") op = AtomOp::And;
      else if (opn == "or") op = AtomOp::Or;
      else if (opn == "xor") op = AtomOp::Xor;
      else if (opn == "cas") op = AtomOp::Cas;
      else throw PtxError(ins.loc, "unsupported atomic '" + ins.opcode + "'");
      if (op == AtomOp::Cas) {
        require_ops(ins, 4);
        push(IAtom{op, ss, type_of(pieces, ins.loc), as_reg(ins.ops[0]),
                   as_address(ins.ops[1], ss), as_value(ins.ops[2]),
                   as_value(ins.ops[3])});
      } else {
        require_ops(ins, 3);
        push(IAtom{op, ss, type_of(pieces, ins.loc), as_reg(ins.ops[0]),
                   as_address(ins.ops[1], ss), as_value(ins.ops[2]),
                   Operand{Imm{0}}});
      }
      return;
    }

    static const std::map<std::string, BinOp> kBops = {
        {"add", BinOp::Add}, {"sub", BinOp::Sub}, {"div", BinOp::Div},
        {"rem", BinOp::Rem}, {"min", BinOp::Min}, {"max", BinOp::Max},
        {"and", BinOp::And}, {"or", BinOp::Or},   {"xor", BinOp::Xor},
        {"shl", BinOp::Shl}, {"shr", BinOp::Shr},
    };
    if (auto it = kBops.find(m); it != kBops.end()) {
      require_ops(ins, 3);
      push(IBop{it->second, type_of(pieces, ins.loc), as_reg(ins.ops[0]),
                as_value(ins.ops[1]), as_value(ins.ops[2])});
      return;
    }

    throw PtxError(ins.loc, "unsupported opcode '" + ins.opcode + "'");
  }

  // ---- label resolution and sync insertion ------------------------------

  void resolve_labels() {
    for (const auto& [idx, label] : fixups_) {
      auto it = labels_.find(label);
      if (it == labels_.end()) {
        throw PtxError("undefined label '" + label + "' in kernel '" +
                       kernel_.name + "'");
      }
      if (auto* b = std::get_if<IBra>(&code_[idx])) b->target = it->second;
      else if (auto* pb = std::get_if<IPBra>(&code_[idx])) {
        pb->target = it->second;
      }
    }
  }

  /// Insert Sync at the immediate post-dominator of every *divergent*
  /// predicated branch, and before every Exit when the reconvergence
  /// point is the program exit itself.  Branch targets are remapped so
  /// they land on the inserted Sync (the reconvergence point executes
  /// first).
  void insert_syncs() {
    const bool has_pbra = std::any_of(
        code_.begin(), code_.end(),
        [](const Instr& i) { return std::holds_alternative<IPBra>(i); });
    if (!has_pbra) return;

    const Cfg cfg(code_);
    const auto ipd = cfg.ipostdom();
    std::vector<bool> divergent;
    if (opts_.sync_policy == LowerOptions::SyncPolicy::AllBranches) {
      divergent.resize(code_.size());
      for (std::uint32_t pc = 0; pc < code_.size(); ++pc) {
        divergent[pc] = std::holds_alternative<IPBra>(code_[pc]);
      }
    } else {
      // The analysis is shared with src/analysis via ptx/defuse.h.
      divergent = ptx::divergent_pbras(code_);
    }

    std::set<std::uint32_t> sync_before;
    for (std::uint32_t pc = 0; pc < code_.size(); ++pc) {
      if (!divergent[pc]) continue;
      const std::uint32_t join = ipd[cfg.block_of(pc)];
      if (join == cfg.exit_id()) {
        // Paths reconverge only at termination: place a Sync in front
        // of every Exit so divergent warps collapse before retiring.
        for (std::uint32_t q = 0; q < code_.size(); ++q) {
          if (is_exit(code_[q])) sync_before.insert(q);
        }
      } else {
        sync_before.insert(cfg.blocks()[join].first);
      }
    }
    // Idempotence: no Sync in front of an existing Sync.
    for (auto it = sync_before.begin(); it != sync_before.end();) {
      if (is_sync(code_[*it])) it = sync_before.erase(it);
      else ++it;
    }
    if (sync_before.empty()) return;

    // Old index -> new index (counting insertions at or before it).
    std::vector<std::uint32_t> remap(code_.size() + 1);
    std::uint32_t shift = 0;
    for (std::uint32_t pc = 0; pc <= code_.size(); ++pc) {
      if (sync_before.count(pc)) ++shift;
      remap[pc] = pc + shift;
    }
    std::vector<Instr> out;
    std::vector<SourceLoc> out_locs;
    out.reserve(code_.size() + sync_before.size());
    out_locs.reserve(code_.size() + sync_before.size());
    for (std::uint32_t pc = 0; pc < code_.size(); ++pc) {
      if (sync_before.count(pc)) {
        out.push_back(ISync{});
        out_locs.push_back(SourceLoc{});  // mechanically inserted: no loc
      }
      Instr i = code_[pc];
      if (auto* b = std::get_if<IBra>(&i)) {
        // A branch targeting the join lands on the Sync itself.
        b->target = remap[b->target] - (sync_before.count(b->target) ? 1 : 0);
      } else if (auto* pb = std::get_if<IPBra>(&i)) {
        pb->target =
            remap[pb->target] - (sync_before.count(pb->target) ? 1 : 0);
      }
      out.push_back(std::move(i));
      out_locs.push_back(locs_[pc]);
    }
    code_ = std::move(out);
    locs_ = std::move(out_locs);
  }

  const AstKernel& kernel_;
  const std::unordered_map<std::string, std::uint32_t>& shared_offsets_;
  const LowerOptions& opts_;

  RegEnv env_;
  std::vector<Instr> code_;
  std::vector<SourceLoc> locs_;  // parallel to code_
  SourceLoc cur_loc_;
  std::vector<ParamSlot> params_;
  std::map<std::string, std::uint32_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;
};

}  // namespace

const Program& LoweredModule::kernel(const std::string& name) const& {
  for (const auto& k : kernels) {
    if (k.name() == name) return k;
  }
  throw PtxError("module has no kernel '" + name + "'");
}

Program LoweredModule::kernel(const std::string& name) && {
  return static_cast<const LoweredModule&>(*this).kernel(name);
}

std::vector<SourceLoc> LoweredModule::locs_for(const Program& prg) const {
  const auto it = kernel_locs.find(prg.name());
  if (it != kernel_locs.end() && it->second.size() == prg.size()) {
    return it->second;
  }
  return std::vector<SourceLoc>(prg.size());
}

LoweredModule lower(const AstModule& m, const LowerOptions& opts) {
  LoweredModule out;
  std::uint32_t offset = 0;
  for (const auto& s : m.shared) {
    const std::uint32_t align = std::max<std::uint32_t>(1, s.align);
    offset = (offset + align - 1) & ~(align - 1);
    out.shared_offsets[s.name] = offset;
    if (s.bytes > 0xffffffffu - offset) {
      throw PtxError("shared memory layout overflows at '" + s.name + "'");
    }
    offset += s.bytes;
  }
  out.shared_bytes = offset;
  for (const auto& k : m.kernels) {
    KernelLowerer lowerer(k, out.shared_offsets, opts);
    out.kernels.push_back(lowerer.run());
    out.kernel_locs[out.kernels.back().name()] = lowerer.take_locs();
  }
  return out;
}

LoweredModule load_ptx(std::string_view source, const LowerOptions& opts) {
  return lower(parse_module(source), opts);
}

}  // namespace cac::ptx
