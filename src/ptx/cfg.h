// Control-flow graph and post-dominator analysis over lowered code.
//
// The paper inserts the warp-reconvergence pseudo-instruction `Sync` by
// hand at the join point of each divergent branch (Listing 2, index 18).
// Real CUDA compilers compute that join point as the *immediate
// post-dominator* of the branch; this module implements the analysis so
// our lowering can insert Sync mechanically and provably at the same
// places (see lower.h).
#pragma once

#include <cstdint>
#include <vector>

#include "ptx/instr.h"

namespace cac::ptx {

/// A CFG over a flat instruction list.  Block `i` covers the
/// half-open instruction range [first, last).
class Cfg {
 public:
  struct Block {
    std::uint32_t first = 0;
    std::uint32_t last = 0;
    std::vector<std::uint32_t> succs;  // block ids; may include exit_id()
    std::vector<std::uint32_t> preds;
  };

  explicit Cfg(const std::vector<Instr>& code);

  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] std::uint32_t block_of(std::uint32_t pc) const {
    return block_of_[pc];
  }
  /// Id of the virtual exit node every Exit block flows into.
  [[nodiscard]] std::uint32_t exit_id() const {
    return static_cast<std::uint32_t>(blocks_.size());
  }

  /// Immediate post-dominator of every block (indexed by block id; the
  /// entry for exit_id() is exit_id() itself).  Unreachable blocks map
  /// to exit_id().
  [[nodiscard]] std::vector<std::uint32_t> ipostdom() const;

 private:
  std::vector<Block> blocks_;
  std::vector<std::uint32_t> block_of_;
};

}  // namespace cac::ptx
