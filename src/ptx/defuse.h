// Def-use export over lowered code, shared by the lowering's
// sync-insertion policy and the static analyses (src/analysis).
//
// Two views are provided:
//  * per-instruction def/use sets (registers and predicates read and
//    written, with address bases counted as reads), and
//  * the warp-divergence fixpoint (cf. Coutinho et al., the paper's
//    related work [14]) that lower.cc uses to decide which predicated
//    branches need a reconvergence Sync.
#pragma once

#include <cstdint>
#include <vector>

#include "ptx/instr.h"

namespace cac::ptx {

/// Registers and predicates an instruction reads and writes.  Address
/// base registers of Ld/St/Atom count as reads; sregs and immediates
/// contribute nothing.
struct DefUse {
  std::vector<Reg> reads;
  std::vector<Reg> writes;
  std::vector<Pred> pred_reads;
  std::vector<Pred> pred_writes;
};

/// Compute the def/use sets of one instruction.
[[nodiscard]] DefUse def_use(const Instr& i);

/// Warp-divergence analysis: a flow-insensitive fixpoint marking
/// registers and predicates whose value can differ between threads *of
/// one warp*.  Divergence sources: %tid (thread-dependent) and loads
/// from non-Param spaces (conservatively; lanes read different
/// addresses).  %ctaid/%ntid/%nctaid are warp-uniform — every thread
/// of a warp belongs to the same block.  Returns, per pc, whether the
/// instruction is a predicated branch on a divergent predicate — the
/// only construct that can split a warp.
[[nodiscard]] std::vector<bool> divergent_pbras(
    const std::vector<Instr>& code);

}  // namespace cac::ptx
