#include "ptx/instr.h"

namespace cac::ptx {

bool is_bar(const Instr& i) { return std::holds_alternative<IBar>(i); }
bool is_exit(const Instr& i) { return std::holds_alternative<IExit>(i); }
bool is_sync(const Instr& i) { return std::holds_alternative<ISync>(i); }

std::string to_string(const BinOp op) {
  switch (op) {
    case BinOp::Add: return "add";
    case BinOp::Sub: return "sub";
    case BinOp::Mul: return "mul.lo";
    case BinOp::MulHi: return "mul.hi";
    case BinOp::MulWide: return "mul.wide";
    case BinOp::Div: return "div";
    case BinOp::Rem: return "rem";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
    case BinOp::And: return "and";
    case BinOp::Or: return "or";
    case BinOp::Xor: return "xor";
    case BinOp::Shl: return "shl";
    case BinOp::Shr: return "shr";
  }
  return "?";
}

std::string to_string(const TerOp op) {
  switch (op) {
    case TerOp::MadLo: return "mad.lo";
    case TerOp::MadWide: return "mad.wide";
  }
  return "?";
}

std::string to_string(const UnOp op) {
  switch (op) {
    case UnOp::Not: return "not";
    case UnOp::Neg: return "neg";
    case UnOp::Cvt: return "cvt";
    case UnOp::Abs: return "abs";
    case UnOp::Popc: return "popc";
    case UnOp::Clz: return "clz";
    case UnOp::Brev: return "brev";
  }
  return "?";
}

std::string to_string(const CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return "eq";
    case CmpOp::Ne: return "ne";
    case CmpOp::Lt: return "lt";
    case CmpOp::Le: return "le";
    case CmpOp::Gt: return "gt";
    case CmpOp::Ge: return "ge";
  }
  return "?";
}

std::string to_string(const AtomOp op) {
  switch (op) {
    case AtomOp::Add: return "atom.add";
    case AtomOp::Exch: return "atom.exch";
    case AtomOp::Min: return "atom.min";
    case AtomOp::Max: return "atom.max";
    case AtomOp::And: return "atom.and";
    case AtomOp::Or: return "atom.or";
    case AtomOp::Xor: return "atom.xor";
    case AtomOp::Cas: return "atom.cas";
  }
  return "?";
}

namespace {

std::string type_suffix(const DType& t) {
  const char c = t.cls == TypeClass::UI ? 'u'
               : t.cls == TypeClass::SI ? 's'
                                        : 'b';
  return std::string(".") + c + std::to_string(t.width);
}

struct Printer {
  std::string operator()(const INop&) const { return "nop"; }
  std::string operator()(const IBop& i) const {
    return to_string(i.op) + type_suffix(i.type) + " " + to_string(i.dst) +
           ", " + to_string(i.a) + ", " + to_string(i.b);
  }
  std::string operator()(const ITop& i) const {
    return to_string(i.op) + type_suffix(i.type) + " " + to_string(i.dst) +
           ", " + to_string(i.a) + ", " + to_string(i.b) + ", " +
           to_string(i.c);
  }
  std::string operator()(const IUop& i) const {
    return to_string(i.op) + type_suffix(i.type) + " " + to_string(i.dst) +
           ", " + to_string(i.a);
  }
  std::string operator()(const IMov& i) const {
    return "mov " + to_string(i.dst) + ", " + to_string(i.src);
  }
  std::string operator()(const ILd& i) const {
    return "ld." + to_string(i.space) + type_suffix(i.type) + " " +
           to_string(i.dst) + ", [" + to_string(i.addr) + "]";
  }
  std::string operator()(const ISt& i) const {
    return "st." + to_string(i.space) + type_suffix(i.type) + " [" +
           to_string(i.addr) + "], " + to_string(i.src);
  }
  std::string operator()(const IBra& i) const {
    return "bra " + std::to_string(i.target);
  }
  std::string operator()(const ISetp& i) const {
    return "setp." + to_string(i.cmp) + type_suffix(i.type) + " " +
           to_string(i.dst) + ", " + to_string(i.a) + ", " + to_string(i.b);
  }
  std::string operator()(const IPBra& i) const {
    return std::string("@") + (i.negated ? "!" : "") + to_string(i.pred) +
           " bra " + std::to_string(i.target);
  }
  std::string operator()(const ISelp& i) const {
    return "selp" + type_suffix(i.type) + " " + to_string(i.dst) + ", " +
           to_string(i.a) + ", " + to_string(i.b) + ", " + to_string(i.pred);
  }
  std::string operator()(const ISync&) const { return "sync"; }
  std::string operator()(const IBar&) const { return "bar.sync 0"; }
  std::string operator()(const IExit&) const { return "exit"; }
  std::string operator()(const IVote& i) const {
    switch (i.mode) {
      case VoteMode::All:
        return "vote.all.pred " + to_string(i.dst) + ", " + to_string(i.src);
      case VoteMode::Any:
        return "vote.any.pred " + to_string(i.dst) + ", " + to_string(i.src);
      case VoteMode::Ballot:
        return "vote.ballot.b32 " + to_string(i.dst_ballot) + ", " +
               to_string(i.src);
    }
    return "vote?";
  }
  std::string operator()(const IShfl& i) const {
    const char* m = "";
    switch (i.mode) {
      case ShflMode::Idx: m = "idx"; break;
      case ShflMode::Up: m = "up"; break;
      case ShflMode::Down: m = "down"; break;
      case ShflMode::Bfly: m = "bfly"; break;
    }
    return std::string("shfl.") + m + type_suffix(i.type) + " " +
           to_string(i.dst) + ", " + to_string(i.src) + ", " +
           to_string(i.lane);
  }
  std::string operator()(const IAtom& i) const {
    std::string s = to_string(i.op) + "." + to_string(i.space) +
                    type_suffix(i.type) + " " + to_string(i.dst) + ", [" +
                    to_string(i.addr) + "], " + to_string(i.b);
    if (i.op == AtomOp::Cas) s += ", " + to_string(i.c);
    return s;
  }
};

}  // namespace

std::string to_string(const Instr& i) { return std::visit(Printer{}, i); }

}  // namespace cac::ptx
