#include "ptx/operand.h"

namespace cac::ptx {

namespace {

const char* sreg_name(SregKind k) {
  switch (k) {
    case SregKind::Tid: return "tid";
    case SregKind::CtaId: return "ctaid";
    case SregKind::NTid: return "ntid";
    case SregKind::NCtaId: return "nctaid";
  }
  return "?";
}

char dim_name(Dim d) {
  switch (d) {
    case Dim::X: return 'x';
    case Dim::Y: return 'y';
    case Dim::Z: return 'z';
  }
  return '?';
}

}  // namespace

std::string to_string(const Reg& r) {
  const char* prefix = r.cls == TypeClass::SI ? "%s" : "%r";
  const std::string wide = r.width == 64 ? "d" : (r.width == 16 ? "h" : "");
  return prefix + wide + std::to_string(r.index);
}

std::string to_string(const Pred& p) { return "%p" + std::to_string(p.index); }

std::string to_string(const Sreg& s) {
  return std::string("%") + sreg_name(s.kind) + "." + dim_name(s.dim);
}

std::string to_string(const Operand& op) {
  struct Visitor {
    std::string operator()(const Reg& r) const { return to_string(r); }
    std::string operator()(const Sreg& s) const { return to_string(s); }
    std::string operator()(const Imm& i) const { return std::to_string(i.value); }
    std::string operator()(const RegImm& ri) const {
      return "[" + to_string(ri.reg) +
             (ri.offset >= 0 ? "+" : "") + std::to_string(ri.offset) + "]";
    }
  };
  return std::visit(Visitor{}, op);
}

}  // namespace cac::ptx
