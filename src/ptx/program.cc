#include "ptx/program.h"

#include <algorithm>
#include <optional>

#include "support/diag.h"

namespace cac::ptx {

const Instr& Program::fetch(std::uint32_t pc) const {
  if (pc >= code_.size()) {
    throw KernelError("program counter " + std::to_string(pc) +
                      " out of range in kernel '" + name_ + "' (size " +
                      std::to_string(code_.size()) + ")");
  }
  return code_[pc];
}

const ParamSlot& Program::param(const std::string& name) const {
  for (const auto& p : params_) {
    if (p.name == name) return p;
  }
  throw PtxError("kernel '" + name_ + "' has no parameter '" + name + "'");
}

std::uint32_t Program::param_bytes() const {
  std::uint32_t end = 0;
  for (const auto& p : params_) {
    end = std::max(end, p.offset + p.type.bytes());
  }
  return end;
}

namespace {

struct TargetVisitor {
  // Returns the branch target if the instruction has one.
  std::optional<std::uint32_t> operator()(const IBra& i) const {
    return i.target;
  }
  std::optional<std::uint32_t> operator()(const IPBra& i) const {
    return i.target;
  }
  template <typename T>
  std::optional<std::uint32_t> operator()(const T&) const {
    return std::nullopt;
  }
};

}  // namespace

std::vector<ProgramIssue> validate(const Program& prg) {
  std::vector<ProgramIssue> issues;
  if (prg.empty()) {
    issues.push_back({0, "program is empty"});
    return issues;
  }
  const auto& code = prg.code();
  for (std::uint32_t pc = 0; pc < code.size(); ++pc) {
    if (auto tgt = std::visit(TargetVisitor{}, code[pc])) {
      if (*tgt >= code.size()) {
        issues.push_back({pc, "branch target " + std::to_string(*tgt) +
                                  " out of range"});
      }
    }
  }
  const Instr& last = code.back();
  if (!is_exit(last) && !std::holds_alternative<IBra>(last)) {
    issues.push_back(
        {static_cast<std::uint32_t>(code.size() - 1),
         "last instruction can fall through past the end of the program"});
  }
  return issues;
}

std::size_t InstrHistogram::total() const {
  std::size_t t = 0;
  for (std::size_t c : counts) t += c;
  return t;
}

InstrHistogram histogram(const Program& prg) {
  InstrHistogram h;
  for (const auto& i : prg.code()) ++h.counts[i.index()];
  return h;
}

std::string to_string(const Program& prg) {
  std::string out = ".kernel " + prg.name() + "\n";
  for (const auto& p : prg.params()) {
    out += "  .param " + to_string(p.type) + " " + p.name + " @" +
           std::to_string(p.offset) + "\n";
  }
  std::uint32_t pc = 0;
  for (const auto& i : prg.code()) {
    out += "  [" + std::to_string(pc++) + "] " + to_string(i) + "\n";
  }
  return out;
}

}  // namespace cac::ptx
