// PTX emission: turn a model Program back into textual PTX that this
// front end parses.  Together with the parser/lowering this gives a
// round trip
//
//     emit(prg)  --parse/lower-->  prg          (modulo Sync handling)
//
// used by the test suite to validate both directions of the
// translation, and by users to export programs built with the C++ API.
#pragma once

#include <string>

#include "ptx/program.h"

namespace cac::ptx {

struct EmitOptions {
  /// Emit the model's Sync pseudo-instruction (accepted by our parser;
  /// not a real PTX opcode).  When false, Syncs are dropped — lowering
  /// the emitted text with insert_syncs restores them mechanically.
  bool emit_syncs = true;
};

/// Emit a single kernel as a `.visible .entry` PTX module.
std::string emit_ptx(const Program& prg, const EmitOptions& opts = {});

}  // namespace cac::ptx
