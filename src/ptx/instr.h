// The core instruction set of the formal model (paper §III-6, Fig. 1).
//
// Instructions are drawn from the PTX specification and carry their
// operand types, so a compiled PTX kernel can be translated into this
// representation "with no semantic gap" (paper §III-6).  The eleven
// derivation-rule shapes of Fig. 1 map onto the variants below:
//
//   nop  -> Nop            bop -> Bop          top  -> Top
//   mov  -> Mov            ld  -> Ld           st   -> St
//   bra  -> Bra            setp-> Setp         pbra -> PBra
//   sync -> Sync           (div is a rule about divergent warps, not an
//                            instruction)
//
// Bar and Exit drive the block/grid rules of Fig. 3.  Uop, Selp and
// Atom are conservative extensions: Uop/Selp desugar common nvcc output,
// and Atom models the "excepting atomic instructions" footnote of the
// paper's memory discussion (§III-2).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "ptx/operand.h"

namespace cac::ptx {

/// Binary ALU operations (the paper's `Bop op`).  Signed/unsigned
/// distinctions are carried by the instruction's DType.
enum class BinOp : std::uint8_t {
  Add, Sub, Mul,      // low half of the product, PTX mul.lo
  MulHi,              // high half, PTX mul.hi
  MulWide,            // full 2w-bit product, PTX mul.wide
  Div, Rem, Min, Max,
  And, Or, Xor, Shl, Shr,
};

/// Ternary ALU operations (the paper's `Top op`).
enum class TerOp : std::uint8_t {
  MadLo,    // d = a*b + c, low half (PTX mad.lo)
  MadWide,  // d = a*b + c at 2w bits (PTX mad.wide)
};

/// Unary operations (extension; nvcc emits these frequently).
enum class UnOp : std::uint8_t { Not, Neg, Cvt, Abs, Popc, Clz, Brev };

/// setp comparison operators.
enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// Atomic read-modify-write operations (extension, paper §III-2).
enum class AtomOp : std::uint8_t { Add, Exch, Min, Max, And, Or, Xor, Cas };

struct INop {
  friend bool operator==(const INop&, const INop&) = default;
};

struct IBop {
  BinOp op = BinOp::Add;
  DType type;  // operand interpretation width/signedness
  Reg dst;
  Operand a, b;
  friend bool operator==(const IBop&, const IBop&) = default;
};

struct ITop {
  TerOp op = TerOp::MadLo;
  DType type;
  Reg dst;
  Operand a, b, c;
  friend bool operator==(const ITop&, const ITop&) = default;
};

struct IUop {
  UnOp op = UnOp::Not;
  DType type;
  Reg dst;
  Operand a;
  friend bool operator==(const IUop&, const IUop&) = default;
};

struct IMov {
  Reg dst;
  Operand src;
  friend bool operator==(const IMov&, const IMov&) = default;
};

struct ILd {
  Space space = Space::Global;
  DType type;   // element type loaded
  Reg dst;
  Operand addr;
  friend bool operator==(const ILd&, const ILd&) = default;
};

struct ISt {
  Space space = Space::Global;
  DType type;   // element type stored
  Operand addr;
  Reg src;
  friend bool operator==(const ISt&, const ISt&) = default;
};

struct IBra {
  std::uint32_t target = 0;
  friend bool operator==(const IBra&, const IBra&) = default;
};

struct ISetp {
  CmpOp cmp = CmpOp::Eq;
  DType type;
  Pred dst;
  Operand a, b;
  friend bool operator==(const ISetp&, const ISetp&) = default;
};

/// Predicated branch — the only predicated instruction of the model
/// (paper §III-3 introduces it as a pseudo-instruction distinguishing
/// predicated from unconditional branches).
struct IPBra {
  Pred pred;
  bool negated = false;  // `@!%p` form
  std::uint32_t target = 0;
  friend bool operator==(const IPBra&, const IPBra&) = default;
};

/// selp: d = pred ? a : b (extension).
struct ISelp {
  DType type;
  Reg dst;
  Operand a, b;
  Pred pred;
  friend bool operator==(const ISelp&, const ISelp&) = default;
};

/// Warp reconvergence point (paper Fig. 2's `sync`).
struct ISync {
  friend bool operator==(const ISync&, const ISync&) = default;
};

/// Block-wide memory barrier, PTX `bar.sync` (paper Fig. 3 lift-bar).
struct IBar {
  friend bool operator==(const IBar&, const IBar&) = default;
};

/// Kernel termination, PTX `ret`/`exit`.
struct IExit {
  friend bool operator==(const IExit&, const IExit&) = default;
};

/// Atomic read-modify-write on memory (extension).  dst receives the
/// old value; the store commits immediately with a *valid* bit, which
/// is the paper's "excepting atomic instructions" carve-out.
struct IAtom {
  AtomOp op = AtomOp::Add;
  Space space = Space::Global;
  DType type;
  Reg dst;
  Operand addr;
  Operand b;
  Operand c;  // only used by Cas (compare value in b, new value in c)
  friend bool operator==(const IAtom&, const IAtom&) = default;
};

/// Warp-vote modes (extension): reduce the warp's predicate values.
enum class VoteMode : std::uint8_t { All, Any, Ballot };

/// vote.all/.any write a predicate; vote.ballot writes a lane bitmask
/// into a 32-bit register.  Requires a uniform (reconverged) warp.
struct IVote {
  VoteMode mode = VoteMode::Any;
  Pred dst;        // All/Any
  Reg dst_ballot;  // Ballot
  Pred src;
  friend bool operator==(const IVote&, const IVote&) = default;
};

/// Warp-shuffle modes (extension): exchange register values between
/// lanes of a uniform warp without memory.
enum class ShflMode : std::uint8_t { Idx, Up, Down, Bfly };

struct IShfl {
  ShflMode mode = ShflMode::Bfly;
  DType type;      // 32-bit data
  Reg dst;
  Reg src;
  Operand lane;    // source lane (Idx) or delta/xor-mask (Up/Down/Bfly)
  friend bool operator==(const IShfl&, const IShfl&) = default;
};

using Instr = std::variant<INop, IBop, ITop, IUop, IMov, ILd, ISt, IBra,
                           ISetp, IPBra, ISelp, ISync, IBar, IExit, IAtom,
                           IVote, IShfl>;

/// Classification helpers used by the block/grid rules (Fig. 3), which
/// dispatch on whether a warp's next instruction is Bar or Exit.
bool is_bar(const Instr& i);
bool is_exit(const Instr& i);
bool is_sync(const Instr& i);

std::string to_string(const BinOp op);
std::string to_string(const TerOp op);
std::string to_string(const UnOp op);
std::string to_string(const CmpOp op);
std::string to_string(const AtomOp op);
std::string to_string(const Instr& i);

}  // namespace cac::ptx
