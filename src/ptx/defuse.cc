#include "ptx/defuse.h"

#include <set>

namespace cac::ptx {

namespace {

/// Append the register inside a value/address operand, if any.
void use_operand(const Operand& op, std::vector<Reg>& reads) {
  if (const auto* r = std::get_if<Reg>(&op)) {
    reads.push_back(*r);
  } else if (const auto* ri = std::get_if<RegImm>(&op)) {
    reads.push_back(ri->reg);
  }
}

struct DefUseVisitor {
  DefUse& du;

  void use(const Operand& op) const { use_operand(op, du.reads); }

  void operator()(const INop&) const {}
  void operator()(const IBop& i) const {
    use(i.a);
    use(i.b);
    du.writes.push_back(i.dst);
  }
  void operator()(const ITop& i) const {
    use(i.a);
    use(i.b);
    use(i.c);
    du.writes.push_back(i.dst);
  }
  void operator()(const IUop& i) const {
    use(i.a);
    du.writes.push_back(i.dst);
  }
  void operator()(const IMov& i) const {
    use(i.src);
    du.writes.push_back(i.dst);
  }
  void operator()(const ILd& i) const {
    use(i.addr);
    du.writes.push_back(i.dst);
  }
  void operator()(const ISt& i) const {
    use(i.addr);
    du.reads.push_back(i.src);
  }
  void operator()(const IBra&) const {}
  void operator()(const ISetp& i) const {
    use(i.a);
    use(i.b);
    du.pred_writes.push_back(i.dst);
  }
  void operator()(const IPBra& i) const { du.pred_reads.push_back(i.pred); }
  void operator()(const ISelp& i) const {
    use(i.a);
    use(i.b);
    du.pred_reads.push_back(i.pred);
    du.writes.push_back(i.dst);
  }
  void operator()(const ISync&) const {}
  void operator()(const IBar&) const {}
  void operator()(const IExit&) const {}
  void operator()(const IAtom& i) const {
    use(i.addr);
    use(i.b);
    if (i.op == AtomOp::Cas) use(i.c);
    du.writes.push_back(i.dst);
  }
  void operator()(const IVote& i) const {
    du.pred_reads.push_back(i.src);
    if (i.mode == VoteMode::Ballot) du.writes.push_back(i.dst_ballot);
    else du.pred_writes.push_back(i.dst);
  }
  void operator()(const IShfl& i) const {
    du.reads.push_back(i.src);
    use(i.lane);
    du.writes.push_back(i.dst);
  }
};

}  // namespace

DefUse def_use(const Instr& i) {
  DefUse du;
  std::visit(DefUseVisitor{du}, i);
  return du;
}

std::vector<bool> divergent_pbras(const std::vector<Instr>& code) {
  std::set<std::uint32_t> div_regs;   // Reg::key()
  std::set<std::uint16_t> div_preds;  // Pred::index

  auto op_divergent = [&](const Operand& op) {
    struct V {
      const std::set<std::uint32_t>& regs;
      bool operator()(const Reg& r) const { return regs.count(r.key()); }
      bool operator()(const Sreg& s) const {
        return s.kind == SregKind::Tid;
      }
      bool operator()(const Imm&) const { return false; }
      bool operator()(const RegImm& ri) const {
        return regs.count(ri.reg.key()) > 0;
      }
    };
    return std::visit(V{div_regs}, op);
  };

  bool changed = true;
  while (changed) {
    changed = false;
    auto mark_reg = [&](const Reg& r, bool d) {
      if (d && div_regs.insert(r.key()).second) changed = true;
    };
    for (const Instr& instr : code) {
      if (const auto* i = std::get_if<IBop>(&instr)) {
        mark_reg(i->dst, op_divergent(i->a) || op_divergent(i->b));
      } else if (const auto* i = std::get_if<ITop>(&instr)) {
        mark_reg(i->dst, op_divergent(i->a) || op_divergent(i->b) ||
                             op_divergent(i->c));
      } else if (const auto* i = std::get_if<IUop>(&instr)) {
        mark_reg(i->dst, op_divergent(i->a));
      } else if (const auto* i = std::get_if<IMov>(&instr)) {
        mark_reg(i->dst, op_divergent(i->src));
      } else if (const auto* i = std::get_if<ILd>(&instr)) {
        // Param loads read launch constants; anything else may see
        // lane-dependent data.
        mark_reg(i->dst,
                 i->space != Space::Param || op_divergent(i->addr));
      } else if (const auto* i = std::get_if<IAtom>(&instr)) {
        mark_reg(i->dst, true);  // returns the lane-order-dependent old value
      } else if (const auto* i = std::get_if<ISelp>(&instr)) {
        mark_reg(i->dst, op_divergent(i->a) || op_divergent(i->b) ||
                             div_preds.count(i->pred.index) > 0);
      } else if (const auto* i = std::get_if<ISetp>(&instr)) {
        if ((op_divergent(i->a) || op_divergent(i->b)) &&
            div_preds.insert(i->dst.index).second) {
          changed = true;
        }
      } else if (const auto* i = std::get_if<IShfl>(&instr)) {
        // Cross-lane data: conservatively divergent.
        mark_reg(i->dst, true);
      } else if (const auto* i = std::get_if<IVote>(&instr)) {
        // Vote results are warp-uniform by construction; the ballot
        // bitmask is the same in every lane too.
        if (i->mode == VoteMode::Ballot) mark_reg(i->dst_ballot, false);
      }
    }
  }

  std::vector<bool> out(code.size(), false);
  for (std::uint32_t pc = 0; pc < code.size(); ++pc) {
    if (const auto* pb = std::get_if<IPBra>(&code[pc])) {
      out[pc] = div_preds.count(pb->pred.index) > 0;
    }
  }
  return out;
}

}  // namespace cac::ptx
