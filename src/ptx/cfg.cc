#include "ptx/cfg.h"

#include <algorithm>
#include <optional>
#include <set>

#include "support/diag.h"

namespace cac::ptx {

namespace {

struct BranchInfo {
  std::optional<std::uint32_t> target;  // branch target, if any
  bool conditional = false;             // PBra: also falls through
  bool terminator = false;              // ends a block
  bool exits = false;                   // Exit
};

BranchInfo classify(const Instr& i) {
  if (const auto* b = std::get_if<IBra>(&i)) {
    return {b->target, false, true, false};
  }
  if (const auto* pb = std::get_if<IPBra>(&i)) {
    return {pb->target, true, true, false};
  }
  if (std::holds_alternative<IExit>(i)) {
    return {std::nullopt, false, true, true};
  }
  return {};
}

}  // namespace

Cfg::Cfg(const std::vector<Instr>& code) {
  if (code.empty()) throw KernelError("cannot build CFG of empty program");
  const auto n = static_cast<std::uint32_t>(code.size());

  // Leaders: instruction 0, branch targets, fall-throughs of terminators.
  std::set<std::uint32_t> leaders{0};
  for (std::uint32_t pc = 0; pc < n; ++pc) {
    const BranchInfo bi = classify(code[pc]);
    if (bi.target) leaders.insert(*bi.target);
    if (bi.terminator && pc + 1 < n) leaders.insert(pc + 1);
  }

  block_of_.assign(n, 0);
  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    Block b;
    b.first = *it;
    auto next = std::next(it);
    b.last = next == leaders.end() ? n : *next;
    const auto id = static_cast<std::uint32_t>(blocks_.size());
    for (std::uint32_t pc = b.first; pc < b.last; ++pc) block_of_[pc] = id;
    blocks_.push_back(std::move(b));
  }

  // Successor edges.  A block ends at its last instruction; anything
  // that is not a terminator falls through to the next block.
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    Block& b = blocks_[id];
    const BranchInfo bi = classify(code[b.last - 1]);
    if (bi.exits) {
      b.succs.push_back(exit_id());
      continue;
    }
    if (bi.target) b.succs.push_back(block_of_[*bi.target]);
    const bool falls_through = !bi.terminator || bi.conditional;
    if (falls_through) {
      if (b.last >= n) {
        throw KernelError("instruction " + std::to_string(b.last - 1) +
                          " falls through past the end of the program");
      }
      b.succs.push_back(block_of_[b.last]);
    }
  }
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    for (std::uint32_t s : blocks_[id].succs) {
      if (s != exit_id()) blocks_[s].preds.push_back(id);
    }
  }
}

std::vector<std::uint32_t> Cfg::ipostdom() const {
  // Cooper–Harvey–Kennedy iterative dominance on the *reverse* CFG,
  // rooted at the virtual exit node.  In the reverse CFG the successors
  // of a node are its forward predecessors, so a postorder numbering is
  // computed by DFS from the exit along forward-predecessor edges.
  const std::uint32_t nexit = exit_id();
  const std::uint32_t num_nodes = nexit + 1;
  constexpr std::uint32_t kUndef = 0xffffffffu;

  // Forward predecessor lists, including the exit node's.
  std::vector<std::vector<std::uint32_t>> fpreds(num_nodes);
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    for (std::uint32_t s : blocks_[id].succs) fpreds[s].push_back(id);
  }

  // Iterative DFS from exit over reverse-CFG edges to get postorder.
  std::vector<std::uint32_t> po_num(num_nodes, kUndef);
  std::vector<std::uint32_t> po_order;
  {
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{nexit, 0}};
    std::vector<bool> on_stack(num_nodes, false);
    on_stack[nexit] = true;
    while (!stack.empty()) {
      auto& [node, next_child] = stack.back();
      if (next_child < fpreds[node].size()) {
        const std::uint32_t child = fpreds[node][next_child++];
        if (!on_stack[child] && po_num[child] == kUndef) {
          on_stack[child] = true;
          stack.emplace_back(child, 0);
        }
      } else {
        po_num[node] = static_cast<std::uint32_t>(po_order.size());
        po_order.push_back(node);
        stack.pop_back();
      }
    }
  }

  std::vector<std::uint32_t> idom(num_nodes, kUndef);
  idom[nexit] = nexit;

  auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (po_num[a] < po_num[b]) a = idom[a];
      while (po_num[b] < po_num[a]) b = idom[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    // Reverse postorder of the reverse CFG, skipping the root.
    for (auto it = po_order.rbegin(); it != po_order.rend(); ++it) {
      const std::uint32_t id = *it;
      if (id == nexit) continue;
      std::uint32_t new_idom = kUndef;
      for (std::uint32_t s : blocks_[id].succs) {  // reverse-CFG preds
        if (idom[s] == kUndef) continue;
        new_idom = new_idom == kUndef ? s : intersect(new_idom, s);
      }
      if (new_idom != kUndef && idom[id] != new_idom) {
        idom[id] = new_idom;
        changed = true;
      }
    }
  }
  for (auto& d : idom) {
    if (d == kUndef) d = nexit;  // nodes that cannot reach the exit
  }
  return idom;
}

}  // namespace cac::ptx
