// Data types and state spaces of the formal PTX model (paper Table I).
//
//   dty : {UI, SI, BD} x N          -- class and bit width
//   ss  : {Global, Const, Shared}   -- memory state spaces (we add Param,
//                                      the space kernel arguments live in;
//                                      the paper folds ld.param into Mov)
#pragma once

#include <cstdint>
#include <string>

#include "support/diag.h"

namespace cac::ptx {

/// Type classes of the model: unsigned integer, signed integer, raw
/// byte data.  (The paper's prototype covers UI and SI for registers
/// and BD for untyped memory bytes; floating point is future work.)
enum class TypeClass : std::uint8_t { UI, SI, BD };

/// A PTX data type: class plus bit width (8/16/32/64).
struct DType {
  TypeClass cls = TypeClass::UI;
  std::uint8_t width = 32;

  friend bool operator==(const DType&, const DType&) = default;

  [[nodiscard]] bool is_signed() const { return cls == TypeClass::SI; }
  [[nodiscard]] unsigned bytes() const { return width / 8u; }
};

/// Convenience constructors mirroring the paper's `UI 32` notation.
constexpr DType UI(std::uint8_t w) { return {TypeClass::UI, w}; }
constexpr DType SI(std::uint8_t w) { return {TypeClass::SI, w}; }
constexpr DType BD(std::uint8_t w) { return {TypeClass::BD, w}; }

/// Memory state spaces (paper Table I `ss`).  `Param` holds kernel
/// arguments: the paper's hand translation replaces `ld.param` with
/// `Mov`; our mechanical lowering reads the bytes from Param space
/// instead, which is observationally the same (see DESIGN.md).
enum class Space : std::uint8_t { Global, Const, Shared, Param };

inline constexpr Space kAllSpaces[] = {Space::Global, Space::Const,
                                       Space::Shared, Space::Param};

std::string to_string(TypeClass cls);
std::string to_string(const DType& t);
std::string to_string(Space ss);

/// Parse a PTX type suffix such as "u32", "s64", "b8", "pred".
/// Throws PtxError on an unknown suffix.
DType dtype_from_suffix(const std::string& suffix);

}  // namespace cac::ptx
