#include "analysis/perf.h"

#include <algorithm>
#include <deque>

#include "analysis/costmodel.h"
#include "ptx/cfg.h"
#include "ptx/defuse.h"

namespace cac::analysis {

namespace {

SourceLoc loc_of(const std::vector<SourceLoc>& locs, std::uint32_t pc) {
  return pc < locs.size() ? locs[pc] : SourceLoc{};
}

const char* access_word(const AccessSite& s) {
  if (s.atomic) return "atomic";
  return s.write ? "store" : "load";
}

/// The lowering expands `ld.v2`/`ld.v4` into one scalar access per
/// element at consecutive pcs sharing the statement's source location;
/// hardware issues the vector as a single wide access, so the scalar
/// components must be priced as one (a stride-8 pair of 4-byte loads
/// that tiles [8·tid, 8·tid+8) per lane is perfectly coalesced).
std::vector<AccessSite> merge_vector_components(
    const ProgramFacts& facts, const std::vector<SourceLoc>& locs) {
  std::vector<AccessSite> priced;
  std::uint32_t prev_pc = 0;
  for (const AccessSite& s : facts.sites) {
    if (!priced.empty()) {
      AccessSite& p = priced.back();
      if (s.pc == prev_pc + 1 && s.space == p.space && s.write == p.write &&
          !s.atomic && !p.atomic && !p.addr.is_top() &&
          loc_of(locs, s.pc) == loc_of(locs, p.pc) &&
          s.addr == p.addr.add(AffineExpr::constant(
                        static_cast<std::int64_t>(p.width)))) {
        p.width += s.width;
        prev_pc = s.pc;
        continue;
      }
    }
    priced.push_back(s);
    prev_pc = s.pc;
  }
  return priced;
}

void perf_memory(const ProgramFacts& facts, const LaunchEnv& env,
                 const std::vector<SourceLoc>& locs,
                 std::vector<PerfFinding>& out) {
  for (const AccessSite& s : merge_vector_components(facts, locs)) {
    const auto off = warp_offsets(s.addr, env);
    if (!off) continue;  // unknown form: never a false positive
    if (s.space == ptx::Space::Global) {
      const unsigned tx = global_transactions(*off, s.width);
      const unsigned ideal = ideal_transactions(s.width);
      if (tx <= ideal) continue;
      PerfFinding f;
      f.kind = PerfKind::UncoalescedGlobal;
      f.pc = s.pc;
      f.loc = loc_of(locs, s.pc);
      f.transactions_per_warp = tx;
      f.ideal_transactions = ideal;
      f.message = std::string("uncoalesced global ") + access_word(s) +
                  " of " + std::to_string(s.width) + " bytes at " +
                  s.addr.str() + ": " + std::to_string(tx) +
                  " transactions per warp (128-byte segments, ideal " +
                  std::to_string(ideal) + ")";
      out.push_back(std::move(f));
    } else if (s.space == ptx::Space::Shared) {
      const unsigned degree = shared_conflict_degree(*off, s.width);
      if (degree < 2) continue;
      PerfFinding f;
      f.kind = PerfKind::SharedBankConflict;
      f.pc = s.pc;
      f.loc = loc_of(locs, s.pc);
      f.conflict_degree = degree;
      f.message = std::string("shared ") + access_word(s) + " of " +
                  std::to_string(s.width) + " bytes at " + s.addr.str() +
                  ": " + std::to_string(degree) +
                  "-way bank conflict (32 banks of 4 bytes)";
      out.push_back(std::move(f));
    }
  }
}

/// Does the guard predicate provably oscillate within a warp?  True
/// for a modulo component over tid.x (`tid % 2` flips every lane);
/// affine-only predicates are monotone across consecutive lanes and
/// stay quiet (the boundary-guard idiom).
bool oscillates(const Guard& g) {
  if (!g.expr.has_mod()) return false;
  for (const Term& t : g.expr.mod_terms()) {
    if (t.sym.kind == Sym::Kind::Tid && t.sym.dim == 0) return true;
  }
  return false;
}

void perf_divergence(const ptx::Program& prg, const ptx::Cfg& cfg,
                     const ProgramFacts& facts,
                     const std::vector<SourceLoc>& locs,
                     std::vector<PerfFinding>& out) {
  const std::vector<bool> divergent = ptx::divergent_pbras(prg.code());
  const std::vector<std::uint32_t> ipd = cfg.ipostdom();
  for (std::uint32_t pc = 0; pc < prg.size(); ++pc) {
    if (!divergent[pc]) continue;
    // Affine predicates are monotone in tid.x: at most one transition
    // per warp.  Flag only provably-oscillating guards (modulo over
    // tid.x) and guards beyond the domain (may-report).
    const auto fact = facts.taken_facts.find(pc);
    if (fact != facts.taken_facts.end() && !oscillates(fact->second)) {
      continue;
    }
    // Walk the divergent region: blocks reachable from the branch
    // before the ipostdom join (the join itself is uniform again).
    const std::uint32_t branch_block = cfg.block_of(pc);
    const std::uint32_t join = ipd[branch_block];
    std::vector<bool> seen(cfg.blocks().size(), false);
    std::deque<std::uint32_t> work;
    for (const std::uint32_t s : cfg.blocks()[branch_block].succs) {
      if (s != join && s != cfg.exit_id() && !seen[s]) {
        seen[s] = true;
        work.push_back(s);
      }
    }
    unsigned insns = 0, loads = 0;
    while (!work.empty()) {
      const std::uint32_t b = work.front();
      work.pop_front();
      for (std::uint32_t p = cfg.blocks()[b].first; p < cfg.blocks()[b].last;
           ++p) {
        const ptx::Instr& ins = prg.code()[p];
        // Mechanically inserted reconvergence Syncs and Nops are not
        // executed work.
        if (std::holds_alternative<ptx::ISync>(ins) ||
            std::holds_alternative<ptx::INop>(ins)) {
          continue;
        }
        ++insns;
        if (const auto* ld = std::get_if<ptx::ILd>(&ins)) {
          if (ld->space == ptx::Space::Global) ++loads;
        }
      }
      for (const std::uint32_t s : cfg.blocks()[b].succs) {
        if (s != join && s != cfg.exit_id() && !seen[s]) {
          seen[s] = true;
          work.push_back(s);
        }
      }
    }
    if (insns == 0) continue;
    PerfFinding f;
    f.kind = PerfKind::DivergentRegion;
    f.pc = pc;
    f.loc = loc_of(locs, pc);
    f.divergent_insns = insns;
    f.global_loads = loads;
    f.message = "tid-dependent branch diverges within every warp: " +
                std::to_string(insns) +
                " instructions execute per-lane before reconvergence";
    if (loads != 0) {
      f.message += ", including " + std::to_string(loads) +
                   " global load" + (loads == 1 ? "" : "s") +
                   " issued under divergence";
    }
    out.push_back(std::move(f));
  }
}

}  // namespace

std::string to_string(PerfKind k) {
  switch (k) {
    case PerfKind::UncoalescedGlobal: return "uncoalesced-global";
    case PerfKind::SharedBankConflict: return "shared-bank-conflict";
    case PerfKind::DivergentRegion: return "divergent-region";
  }
  return "?";
}

PerfReport analyze_perf(const ptx::Program& prg,
                        const std::vector<SourceLoc>& locs,
                        const LaunchEnv& env) {
  PerfReport report;
  if (prg.empty()) return report;
  const ptx::Cfg cfg(prg.code());
  const ProgramFacts facts = analyze_program(prg, env);
  perf_memory(facts, env, locs, report.findings);
  std::vector<PerfFinding> divergence;
  perf_divergence(prg, cfg, facts, locs, divergence);
  // Hotspot ranking: biggest divergent region first, pc breaks ties.
  std::stable_sort(divergence.begin(), divergence.end(),
                   [](const PerfFinding& a, const PerfFinding& b) {
                     return a.divergent_insns != b.divergent_insns
                                ? a.divergent_insns > b.divergent_insns
                                : a.pc < b.pc;
                   });
  report.findings.insert(report.findings.end(),
                         std::make_move_iterator(divergence.begin()),
                         std::make_move_iterator(divergence.end()));
  return report;
}

}  // namespace cac::analysis
