#include "analysis/affine.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

#include "ptx/cfg.h"

namespace cac::analysis {

namespace {

bool add_ck(std::int64_t a, std::int64_t b, std::int64_t& out) {
  return !__builtin_add_overflow(a, b, &out);
}

bool mul_ck(std::int64_t a, std::int64_t b, std::int64_t& out) {
  return !__builtin_mul_overflow(a, b, &out);
}

}  // namespace

std::string to_string(const Sym& s) {
  static const char* kDim = "xyz";
  switch (s.kind) {
    case Sym::Kind::Tid: return std::string("tid.") + kDim[s.dim];
    case Sym::Kind::CtaId: return std::string("ctaid.") + kDim[s.dim];
    case Sym::Kind::NTid: return std::string("ntid.") + kDim[s.dim];
    case Sym::Kind::NCtaId: return std::string("nctaid.") + kDim[s.dim];
    case Sym::Kind::GidBase:
      return std::string("ctaid.") + kDim[s.dim] + "*ntid." + kDim[s.dim];
    case Sym::Kind::Param:
      return "param[" + std::to_string(s.param_offset) + "]";
  }
  return "?";
}

AffineExpr AffineExpr::constant(std::int64_t c) {
  AffineExpr e;
  e.top_ = false;
  e.c_ = c;
  return e;
}

AffineExpr AffineExpr::symbol(const Sym& s) {
  AffineExpr e;
  e.top_ = false;
  e.terms_.push_back(Term{s, 1});
  return e;
}

AffineExpr AffineExpr::add(const AffineExpr& o) const {
  if (top_ || o.top_) return top();
  // Modulo components add only when one side has none, or both carry
  // the *same* component (the scales sum).
  AffineExpr r;
  r.top_ = false;
  if (has_mod() && o.has_mod()) {
    if (modulus_ != o.modulus_ || mod_c_ != o.mod_c_ ||
        mod_terms_ != o.mod_terms_) {
      return top();
    }
    r.modulus_ = modulus_;
    r.mod_c_ = mod_c_;
    r.mod_terms_ = mod_terms_;
    if (!add_ck(mod_scale_, o.mod_scale_, r.mod_scale_)) return top();
  } else if (has_mod() || o.has_mod()) {
    const AffineExpr& m = has_mod() ? *this : o;
    r.modulus_ = m.modulus_;
    r.mod_scale_ = m.mod_scale_;
    r.mod_c_ = m.mod_c_;
    r.mod_terms_ = m.mod_terms_;
  }
  if (r.mod_scale_ == 0) {
    r.modulus_ = 0;
    r.mod_c_ = 0;
    r.mod_terms_.clear();
  }
  if (!add_ck(c_, o.c_, r.c_)) return top();
  // Merge the two sorted term lists.
  std::size_t i = 0, j = 0;
  while (i < terms_.size() || j < o.terms_.size()) {
    if (j == o.terms_.size() ||
        (i < terms_.size() &&
         terms_[i].sym.key() < o.terms_[j].sym.key())) {
      r.terms_.push_back(terms_[i++]);
    } else if (i == terms_.size() ||
               terms_[i].sym.key() > o.terms_[j].sym.key()) {
      r.terms_.push_back(o.terms_[j++]);
    } else {
      std::int64_t k = 0;
      if (!add_ck(terms_[i].coeff, o.terms_[j].coeff, k)) return top();
      if (k != 0) r.terms_.push_back(Term{terms_[i].sym, k});
      ++i;
      ++j;
    }
  }
  return r;
}

AffineExpr AffineExpr::scaled(std::int64_t k) const {
  if (top_) return top();
  if (k == 0) return constant(0);
  AffineExpr r;
  r.top_ = false;
  if (!mul_ck(c_, k, r.c_)) return top();
  r.terms_.reserve(terms_.size());
  for (const Term& t : terms_) {
    std::int64_t c = 0;
    if (!mul_ck(t.coeff, k, c)) return top();
    r.terms_.push_back(Term{t.sym, c});
  }
  if (has_mod()) {
    r.modulus_ = modulus_;
    r.mod_c_ = mod_c_;
    r.mod_terms_ = mod_terms_;
    if (!mul_ck(mod_scale_, k, r.mod_scale_)) return top();
  }
  return r;
}

AffineExpr AffineExpr::sub(const AffineExpr& o) const {
  return add(o.scaled(-1));
}

AffineExpr AffineExpr::mul(const AffineExpr& o) const {
  if (top_ || o.top_) return top();
  if (is_const()) return o.scaled(c_);
  if (o.is_const()) return scaled(o.c_);
  if (has_mod() || o.has_mod()) return top();
  // The one non-linear idiom kept affine: ctaid.d * ntid.d (in either
  // order, with constant factors) becomes the composite GidBase{d}.
  auto single = [](const AffineExpr& e, Sym::Kind k) -> const Term* {
    if (e.c_ != 0 || e.terms_.size() != 1) return nullptr;
    return e.terms_[0].sym.kind == k ? &e.terms_[0] : nullptr;
  };
  const Term* cta = single(*this, Sym::Kind::CtaId);
  const Term* nt = single(o, Sym::Kind::NTid);
  if (cta == nullptr) {
    cta = single(o, Sym::Kind::CtaId);
    nt = single(*this, Sym::Kind::NTid);
  }
  if (cta != nullptr && nt != nullptr && cta->sym.dim == nt->sym.dim) {
    std::int64_t k = 0;
    if (!mul_ck(cta->coeff, nt->coeff, k)) return top();
    return AffineExpr::symbol(
               Sym{Sym::Kind::GidBase, cta->sym.dim, 0})
        .scaled(k);
  }
  return top();
}

bool AffineExpr::provably_nonneg() const {
  if (top_ || c_ < 0) return false;
  for (const Term& t : terms_) {
    // Every symbol evaluates to >= 0 except an unvalued Param, whose
    // sign is unknown in either direction.
    if (t.coeff < 0 || t.sym.kind == Sym::Kind::Param) return false;
  }
  // The modulo component's value lies in [0, modulus); its sign is the
  // scale's.
  return mod_scale_ >= 0;
}

AffineExpr AffineExpr::rem(std::int64_t m) const {
  if (top_ || m <= 0) return top();
  if (is_const()) {
    // PTX truncated remainder; exact for constants of either sign.
    return constant(c_ % m);
  }
  if (m == 1) return provably_nonneg() ? constant(0) : top();
  if (has_mod()) {
    // Nested mod folds only in the re-mask idiom x mod km mod m, with
    // no affine part and unit scale.
    if (c_ == 0 && terms_.empty() && mod_scale_ == 1 &&
        modulus_ % m == 0) {
      AffineExpr inner;
      inner.top_ = false;
      inner.c_ = mod_c_;
      inner.terms_ = mod_terms_;
      return inner.rem(m);
    }
    return top();
  }
  if (!provably_nonneg()) return top();
  // (c + Σ k·s) mod m == ((c mod m) + Σ (k mod m)·s) mod m; reducing
  // the coefficients into [0, m) is canonical and keeps the reduced
  // inner expression nonnegative too.
  AffineExpr r;
  r.top_ = false;
  r.modulus_ = m;
  r.mod_scale_ = 1;
  r.mod_c_ = c_ % m;
  for (const Term& t : terms_) {
    const std::int64_t k = t.coeff % m;
    if (k != 0) r.mod_terms_.push_back(Term{t.sym, k});
  }
  if (r.mod_terms_.empty()) return constant(r.mod_c_);
  return r;
}

std::string AffineExpr::str() const {
  if (top_) return "⊤";
  std::string out = std::to_string(c_);
  for (const Term& t : terms_) {
    out += (t.coeff >= 0 ? " + " : " - ") +
           std::to_string(t.coeff >= 0 ? t.coeff : -t.coeff) + "*" +
           to_string(t.sym);
  }
  if (has_mod()) {
    out += (mod_scale_ >= 0 ? " + " : " - ") +
           std::to_string(mod_scale_ >= 0 ? mod_scale_ : -mod_scale_) +
           "*((" + std::to_string(mod_c_);
    for (const Term& t : mod_terms_) {
      out += (t.coeff >= 0 ? " + " : " - ") +
             std::to_string(t.coeff >= 0 ? t.coeff : -t.coeff) + "*" +
             to_string(t.sym);
    }
    out += ") mod " + std::to_string(modulus_) + ")";
  }
  return out;
}

Guard negate(const Guard& g) {
  ptx::CmpOp c = ptx::CmpOp::Eq;
  switch (g.cmp) {
    case ptx::CmpOp::Eq: c = ptx::CmpOp::Ne; break;
    case ptx::CmpOp::Ne: c = ptx::CmpOp::Eq; break;
    case ptx::CmpOp::Lt: c = ptx::CmpOp::Ge; break;
    case ptx::CmpOp::Ge: c = ptx::CmpOp::Lt; break;
    case ptx::CmpOp::Le: c = ptx::CmpOp::Gt; break;
    case ptx::CmpOp::Gt: c = ptx::CmpOp::Le; break;
  }
  return Guard{g.expr, c};
}

std::optional<std::pair<std::int64_t, std::int64_t>> sym_range(
    const Sym& s, const LaunchEnv& env) {
  if (!env.known) return std::nullopt;
  switch (s.kind) {
    case Sym::Kind::Tid:
      return std::make_pair<std::int64_t, std::int64_t>(
          0, static_cast<std::int64_t>(env.ntid[s.dim]) - 1);
    case Sym::Kind::CtaId:
      return std::make_pair<std::int64_t, std::int64_t>(
          0, static_cast<std::int64_t>(env.nctaid[s.dim]) - 1);
    default:
      // NTid/NCtaId/valued params fold to constants under a known
      // launch and GidBase is rewritten away; what remains (unvalued
      // Param) has no finite range.
      return std::nullopt;
  }
}

namespace {

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

/// Half-open knowledge about one symbol's value: either bound may be
/// unknown (nullopt).
struct SymBounds {
  std::optional<std::int64_t> lo;
  std::optional<std::int64_t> hi;
};

SymBounds base_bounds(const Sym& s, const LaunchEnv& env) {
  SymBounds b;
  // Every launch symbol is intrinsically nonnegative; an unvalued
  // Param is a raw kernel argument of unknown sign.
  if (s.kind != Sym::Kind::Param) b.lo = 0;
  if (const auto r = sym_range(s, env)) {
    b.lo = r->first;
    b.hi = r->second;
  }
  return b;
}

/// Apply one guard to one symbol's bounds.  Only single-symbol affine
/// guards `k·s + c cmp 0` constrain anything.
void tighten(SymBounds& b, const Sym& s, const Guard& g) {
  if (g.expr.is_top() || g.expr.has_mod() || g.expr.terms().size() != 1) {
    return;
  }
  const Term& t = g.expr.terms()[0];
  if (!(t.sym == s) || t.coeff == 0) return;
  const std::int64_t k = t.coeff;
  const std::int64_t c = g.expr.constant_term();
  // k·s + c cmp 0  ->  upper/lower bounds on s.
  auto upper = [&](std::int64_t rhs) {  // k·s <= rhs
    const std::int64_t bound = k > 0 ? floor_div(rhs, k) : ceil_div(rhs, k);
    if (k > 0) {
      if (!b.hi || bound < *b.hi) b.hi = bound;
    } else {
      if (!b.lo || bound > *b.lo) b.lo = bound;
    }
  };
  auto lower = [&](std::int64_t rhs) {  // k·s >= rhs
    const std::int64_t bound = k > 0 ? ceil_div(rhs, k) : floor_div(rhs, k);
    if (k > 0) {
      if (!b.lo || bound > *b.lo) b.lo = bound;
    } else {
      if (!b.hi || bound < *b.hi) b.hi = bound;
    }
  };
  switch (g.cmp) {
    case ptx::CmpOp::Le: upper(-c); break;
    case ptx::CmpOp::Lt: upper(-c - 1); break;
    case ptx::CmpOp::Ge: lower(-c); break;
    case ptx::CmpOp::Gt: lower(-c + 1); break;
    case ptx::CmpOp::Eq:
      upper(-c);
      lower(-c);
      break;
    case ptx::CmpOp::Ne: break;  // no interval information
  }
}

}  // namespace

std::optional<std::pair<std::int64_t, std::int64_t>> expr_range(
    const AffineExpr& e, const LaunchEnv& env,
    const std::vector<Guard>& guards) {
  if (e.is_top()) return std::nullopt;
  std::int64_t lo = e.constant_term(), hi = lo;
  for (const Term& t : e.terms()) {
    SymBounds b = base_bounds(t.sym, env);
    for (const Guard& g : guards) tighten(b, t.sym, g);
    if (!b.lo || !b.hi || *b.lo > *b.hi) return std::nullopt;
    std::int64_t a = 0, c = 0;
    if (!mul_ck(t.coeff, *b.lo, a) || !mul_ck(t.coeff, *b.hi, c)) {
      return std::nullopt;
    }
    if (!add_ck(lo, std::min(a, c), lo) || !add_ck(hi, std::max(a, c), hi)) {
      return std::nullopt;
    }
  }
  if (e.has_mod()) {
    // The component's value spans [0, modulus-1]; scaled.
    std::int64_t a = 0;
    if (!mul_ck(e.mod_scale(), e.modulus() - 1, a)) return std::nullopt;
    if (!add_ck(lo, std::min<std::int64_t>(a, 0), lo) ||
        !add_ck(hi, std::max<std::int64_t>(a, 0), hi)) {
      return std::nullopt;
    }
  }
  return std::make_pair(lo, hi);
}

namespace {

using ptx::Instr;
using ptx::Operand;
using ptx::Reg;
using ptx::Space;
using ptx::Sreg;
using ptx::SregKind;

/// Abstract register file: Reg::key() -> expression.  An absent key
/// is ⊤.  std::map keeps join and equality deterministic.
using Env = std::map<std::uint32_t, AffineExpr>;

/// What a predicate register is known to test: pred ⇔ (diff cmp 0)
/// with diff = a - b of the defining setp.
struct PredFact {
  AffineExpr diff;
  ptx::CmpOp cmp = ptx::CmpOp::Eq;
  friend bool operator==(const PredFact&, const PredFact&) = default;
};

using PredEnv = std::map<std::uint32_t, PredFact>;

/// Joined per-block abstract state: register expressions, predicate
/// facts, and the path guards established by every branch on every
/// path into the block.
struct AbsState {
  Env regs;
  PredEnv preds;
  std::vector<Guard> facts;
  friend bool operator==(const AbsState&, const AbsState&) = default;
};

constexpr std::size_t kMaxFacts = 16;  // per-point guard cap

void add_fact(std::vector<Guard>& facts, const Guard& g) {
  if (facts.size() >= kMaxFacts) return;
  if (std::find(facts.begin(), facts.end(), g) == facts.end()) {
    facts.push_back(g);
  }
}

AffineExpr sreg_expr(const Sreg& s, const LaunchEnv& env) {
  const auto d = static_cast<std::uint8_t>(s.dim);
  switch (s.kind) {
    case SregKind::Tid:
      return AffineExpr::symbol(Sym{Sym::Kind::Tid, d, 0});
    case SregKind::CtaId:
      return AffineExpr::symbol(Sym{Sym::Kind::CtaId, d, 0});
    case SregKind::NTid:
      return env.known ? AffineExpr::constant(env.ntid[d])
                       : AffineExpr::symbol(Sym{Sym::Kind::NTid, d, 0});
    case SregKind::NCtaId:
      return env.known ? AffineExpr::constant(env.nctaid[d])
                       : AffineExpr::symbol(Sym{Sym::Kind::NCtaId, d, 0});
  }
  return AffineExpr::top();
}

AffineExpr eval_operand(const Operand& op, const Env& env,
                        const LaunchEnv& launch) {
  struct V {
    const Env& env;
    const LaunchEnv& launch;
    AffineExpr operator()(const Reg& r) const {
      const auto it = env.find(r.key());
      return it == env.end() ? AffineExpr::top() : it->second;
    }
    AffineExpr operator()(const Sreg& s) const {
      return sreg_expr(s, launch);
    }
    AffineExpr operator()(const ptx::Imm& i) const {
      return AffineExpr::constant(i.value);
    }
    AffineExpr operator()(const ptx::RegImm& ri) const {
      return (*this)(ri.reg).add(AffineExpr::constant(ri.offset));
    }
  };
  return std::visit(V{env, launch}, op);
}

void set_reg(Env& env, const Reg& r, AffineExpr e) {
  // A 32-bit register cannot hold a constant outside its width; such
  // an assignment would wrap, which the domain does not model.
  if (!e.is_top() && e.is_const() && r.width < 64) {
    const std::int64_t hi = std::int64_t{1} << r.width;
    if (e.constant_term() < 0 || e.constant_term() >= hi) {
      e = AffineExpr::top();
    }
  }
  if (e.is_top()) env.erase(r.key());
  else env[r.key()] = std::move(e);
}

/// Transfer one instruction; appends access sites when `state.facts`
/// is consumed by a non-null `out` (the recording pass after the
/// fixpoint).
void transfer(const Instr& instr, std::uint32_t pc, AbsState& st,
              const LaunchEnv& launch, ProgramFacts* out) {
  Env& env = st.regs;
  auto ev = [&](const Operand& op) { return eval_operand(op, env, launch); };
  auto record = [&](Space space, bool write, bool atomic, unsigned width,
                    const Operand& addr) {
    if (out == nullptr) return;
    if (space != Space::Global && space != Space::Shared) return;
    out->sites.push_back(
        AccessSite{pc, space, write, atomic, width, ev(addr), st.facts});
  };

  if (const auto* i = std::get_if<ptx::IBop>(&instr)) {
    AffineExpr r = AffineExpr::top();
    switch (i->op) {
      case ptx::BinOp::Add: r = ev(i->a).add(ev(i->b)); break;
      case ptx::BinOp::Sub: r = ev(i->a).sub(ev(i->b)); break;
      case ptx::BinOp::Mul:
      case ptx::BinOp::MulWide: r = ev(i->a).mul(ev(i->b)); break;
      case ptx::BinOp::Shl: {
        const AffineExpr b = ev(i->b);
        if (b.is_const() && b.constant_term() >= 0 &&
            b.constant_term() < 63) {
          r = ev(i->a).scaled(std::int64_t{1} << b.constant_term());
        }
        break;
      }
      case ptx::BinOp::Rem: {
        // The modulo component: x % m for a constant m > 0.
        const AffineExpr b = ev(i->b);
        if (b.is_const() && b.constant_term() > 0) {
          r = ev(i->a).rem(b.constant_term());
        }
        break;
      }
      case ptx::BinOp::And: {
        // A power-of-two mask is the same modulo: x & (2^k - 1).
        const AffineExpr b = ev(i->b);
        if (b.is_const() && b.constant_term() >= 0) {
          const std::uint64_t m =
              static_cast<std::uint64_t>(b.constant_term()) + 1;
          if (m != 0 && (m & (m - 1)) == 0) {
            r = ev(i->a).rem(static_cast<std::int64_t>(m));
          }
        }
        break;
      }
      default: break;  // MulHi/Div/Min/Max/Or/Xor/Shr -> ⊤
    }
    set_reg(env, i->dst, std::move(r));
  } else if (const auto* i = std::get_if<ptx::ISetp>(&instr)) {
    const AffineExpr diff = ev(i->a).sub(ev(i->b));
    if (diff.is_top()) {
      st.preds.erase(i->dst.index);
    } else {
      st.preds[i->dst.index] = PredFact{diff, i->cmp};
    }
  } else if (const auto* i = std::get_if<ptx::IVote>(&instr)) {
    if (i->mode == ptx::VoteMode::Ballot) {
      set_reg(env, i->dst_ballot, AffineExpr::top());
    } else {
      st.preds.erase(i->dst.index);
    }
  } else if (const auto* i = std::get_if<ptx::ITop>(&instr)) {
    // MadLo/MadWide: a*b + c.
    set_reg(env, i->dst, ev(i->a).mul(ev(i->b)).add(ev(i->c)));
  } else if (const auto* i = std::get_if<ptx::IUop>(&instr)) {
    if (i->op == ptx::UnOp::Cvt && i->type.width <= i->dst.width) {
      // Widening (or same-width) conversion preserves the value.
      set_reg(env, i->dst, ev(i->a));
    } else if (i->op == ptx::UnOp::Neg) {
      set_reg(env, i->dst, AffineExpr::constant(0).sub(ev(i->a)));
    } else {
      set_reg(env, i->dst, AffineExpr::top());
    }
  } else if (const auto* i = std::get_if<ptx::IMov>(&instr)) {
    set_reg(env, i->dst, ev(i->src));
  } else if (const auto* i = std::get_if<ptx::ILd>(&instr)) {
    record(i->space, false, false, i->type.bytes(), i->addr);
    AffineExpr v = AffineExpr::top();
    if (i->space == Space::Param) {
      const AffineExpr a = ev(i->addr);
      if (a.is_const()) {
        const auto off = static_cast<std::uint32_t>(a.constant_term());
        const auto it = launch.params.find(off);
        if (it != launch.params.end() &&
            it->second <= static_cast<std::uint64_t>(
                              std::numeric_limits<std::int64_t>::max())) {
          v = AffineExpr::constant(static_cast<std::int64_t>(it->second));
        } else if (it == launch.params.end()) {
          v = AffineExpr::symbol(Sym{Sym::Kind::Param, 0, off});
        }
      }
    }
    set_reg(env, i->dst, std::move(v));
  } else if (const auto* i = std::get_if<ptx::ISt>(&instr)) {
    record(i->space, true, false, i->type.bytes(), i->addr);
  } else if (const auto* i = std::get_if<ptx::IAtom>(&instr)) {
    record(i->space, true, true, i->type.bytes(), i->addr);
    set_reg(env, i->dst, AffineExpr::top());
  } else if (const auto* i = std::get_if<ptx::ISelp>(&instr)) {
    // selp folds only when both arms agree.
    const AffineExpr a = ev(i->a);
    set_reg(env, i->dst, a == ev(i->b) ? a : AffineExpr::top());
  } else if (const auto* i = std::get_if<ptx::IShfl>(&instr)) {
    set_reg(env, i->dst, AffineExpr::top());
  }
  // Nop/Bra/PBra/Sync/Bar/Exit: no register or predicate effect.
}

/// Pointwise join: keep entries present and equal in both (anything
/// else is ⊤, i.e. absent); guard facts intersect.  Every component
/// only ever shrinks, so the fixpoint terminates.
AbsState join(const AbsState& a, const AbsState& b) {
  AbsState out;
  for (const auto& [k, e] : a.regs) {
    const auto it = b.regs.find(k);
    if (it != b.regs.end() && it->second == e) out.regs.emplace(k, e);
  }
  for (const auto& [k, f] : a.preds) {
    const auto it = b.preds.find(k);
    if (it != b.preds.end() && it->second == f) out.preds.emplace(k, f);
  }
  for (const Guard& g : a.facts) {
    if (std::find(b.facts.begin(), b.facts.end(), g) != b.facts.end()) {
      out.facts.push_back(g);
    }
  }
  return out;
}

/// The guard established on the edge from a block ending in the
/// predicated branch `pbra` toward successor block `succ` (taken edge
/// gets the branch polarity, the fallthrough its negation), when the
/// predicate has a tracked comparison.
std::optional<Guard> edge_fact(const ptx::IPBra& pbra, std::uint32_t pbra_pc,
                               std::uint32_t succ, const ptx::Cfg& cfg,
                               const PredEnv& preds) {
  const auto it = preds.find(pbra.pred.index);
  if (it == preds.end()) return std::nullopt;
  Guard taken{it->second.diff, it->second.cmp};
  if (pbra.negated) taken = negate(taken);
  const std::uint32_t taken_block = cfg.block_of(pbra.target);
  const std::uint32_t fall_block =
      pbra_pc + 1 < cfg.blocks().back().last ? cfg.block_of(pbra_pc + 1)
                                             : cfg.exit_id();
  if (taken_block == fall_block) return std::nullopt;  // no information
  if (succ == taken_block) return taken;
  if (succ == fall_block) return negate(taken);
  return std::nullopt;
}

}  // namespace

ProgramFacts analyze_program(const ptx::Program& prg, const LaunchEnv& env) {
  ProgramFacts out;
  if (prg.empty()) return out;
  const ptx::Cfg cfg(prg.code());
  const auto& blocks = cfg.blocks();

  // Forward fixpoint on block-entry states.  The join only ever
  // removes entries once a block has been reached, so it terminates.
  std::vector<std::optional<AbsState>> in(blocks.size());
  std::deque<std::uint32_t> work;
  in[0] = AbsState{};
  work.push_back(0);
  while (!work.empty()) {
    const std::uint32_t b = work.front();
    work.pop_front();
    AbsState st = *in[b];
    for (std::uint32_t pc = blocks[b].first; pc < blocks[b].last; ++pc) {
      transfer(prg.code()[pc], pc, st, env, nullptr);
    }
    const std::uint32_t last_pc = blocks[b].last - 1;
    const auto* pbra = std::get_if<ptx::IPBra>(&prg.code()[last_pc]);
    for (const std::uint32_t s : blocks[b].succs) {
      if (s == cfg.exit_id()) continue;
      AbsState flowed = st;
      if (pbra != nullptr) {
        if (const auto g = edge_fact(*pbra, last_pc, s, cfg, st.preds)) {
          add_fact(flowed.facts, *g);
        }
      }
      AbsState next =
          in[s].has_value() ? join(*in[s], flowed) : std::move(flowed);
      if (!in[s].has_value() || next != *in[s]) {
        in[s] = std::move(next);
        if (std::find(work.begin(), work.end(), s) == work.end()) {
          work.push_back(s);
        }
      }
    }
  }

  // Recording pass over every reached block: access sites (with their
  // path facts) and branch-edge facts.
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    if (!in[b].has_value()) continue;  // unreachable
    AbsState st = *in[b];
    for (std::uint32_t pc = blocks[b].first; pc < blocks[b].last; ++pc) {
      transfer(prg.code()[pc], pc, st, env, &out);
    }
    const std::uint32_t last_pc = blocks[b].last - 1;
    if (const auto* pbra = std::get_if<ptx::IPBra>(&prg.code()[last_pc])) {
      const auto it = st.preds.find(pbra->pred.index);
      if (it != st.preds.end()) {
        Guard taken{it->second.diff, it->second.cmp};
        if (pbra->negated) taken = negate(taken);
        out.taken_facts.emplace(last_pc, std::move(taken));
      }
    }
  }
  std::sort(out.sites.begin(), out.sites.end(),
            [](const AccessSite& a, const AccessSite& b) {
              return a.pc < b.pc;
            });
  return out;
}

std::vector<AccessSite> analyze_addresses(const ptx::Program& prg,
                                          const LaunchEnv& env) {
  return analyze_program(prg, env).sites;
}

}  // namespace cac::analysis
