#include "analysis/affine.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

#include "ptx/cfg.h"

namespace cac::analysis {

namespace {

bool add_ck(std::int64_t a, std::int64_t b, std::int64_t& out) {
  return !__builtin_add_overflow(a, b, &out);
}

bool mul_ck(std::int64_t a, std::int64_t b, std::int64_t& out) {
  return !__builtin_mul_overflow(a, b, &out);
}

}  // namespace

std::string to_string(const Sym& s) {
  static const char* kDim = "xyz";
  switch (s.kind) {
    case Sym::Kind::Tid: return std::string("tid.") + kDim[s.dim];
    case Sym::Kind::CtaId: return std::string("ctaid.") + kDim[s.dim];
    case Sym::Kind::NTid: return std::string("ntid.") + kDim[s.dim];
    case Sym::Kind::NCtaId: return std::string("nctaid.") + kDim[s.dim];
    case Sym::Kind::GidBase:
      return std::string("ctaid.") + kDim[s.dim] + "*ntid." + kDim[s.dim];
    case Sym::Kind::Param:
      return "param[" + std::to_string(s.param_offset) + "]";
  }
  return "?";
}

AffineExpr AffineExpr::constant(std::int64_t c) {
  AffineExpr e;
  e.top_ = false;
  e.c_ = c;
  return e;
}

AffineExpr AffineExpr::symbol(const Sym& s) {
  AffineExpr e;
  e.top_ = false;
  e.terms_.push_back(Term{s, 1});
  return e;
}

AffineExpr AffineExpr::add(const AffineExpr& o) const {
  if (top_ || o.top_) return top();
  AffineExpr r;
  r.top_ = false;
  if (!add_ck(c_, o.c_, r.c_)) return top();
  // Merge the two sorted term lists.
  std::size_t i = 0, j = 0;
  while (i < terms_.size() || j < o.terms_.size()) {
    if (j == o.terms_.size() ||
        (i < terms_.size() &&
         terms_[i].sym.key() < o.terms_[j].sym.key())) {
      r.terms_.push_back(terms_[i++]);
    } else if (i == terms_.size() ||
               terms_[i].sym.key() > o.terms_[j].sym.key()) {
      r.terms_.push_back(o.terms_[j++]);
    } else {
      std::int64_t k = 0;
      if (!add_ck(terms_[i].coeff, o.terms_[j].coeff, k)) return top();
      if (k != 0) r.terms_.push_back(Term{terms_[i].sym, k});
      ++i;
      ++j;
    }
  }
  return r;
}

AffineExpr AffineExpr::scaled(std::int64_t k) const {
  if (top_) return top();
  if (k == 0) return constant(0);
  AffineExpr r;
  r.top_ = false;
  if (!mul_ck(c_, k, r.c_)) return top();
  r.terms_.reserve(terms_.size());
  for (const Term& t : terms_) {
    std::int64_t c = 0;
    if (!mul_ck(t.coeff, k, c)) return top();
    r.terms_.push_back(Term{t.sym, c});
  }
  return r;
}

AffineExpr AffineExpr::sub(const AffineExpr& o) const {
  return add(o.scaled(-1));
}

AffineExpr AffineExpr::mul(const AffineExpr& o) const {
  if (top_ || o.top_) return top();
  if (is_const()) return o.scaled(c_);
  if (o.is_const()) return scaled(o.c_);
  // The one non-linear idiom kept affine: ctaid.d * ntid.d (in either
  // order, with constant factors) becomes the composite GidBase{d}.
  auto single = [](const AffineExpr& e, Sym::Kind k) -> const Term* {
    if (e.c_ != 0 || e.terms_.size() != 1) return nullptr;
    return e.terms_[0].sym.kind == k ? &e.terms_[0] : nullptr;
  };
  const Term* cta = single(*this, Sym::Kind::CtaId);
  const Term* nt = single(o, Sym::Kind::NTid);
  if (cta == nullptr) {
    cta = single(o, Sym::Kind::CtaId);
    nt = single(*this, Sym::Kind::NTid);
  }
  if (cta != nullptr && nt != nullptr && cta->sym.dim == nt->sym.dim) {
    std::int64_t k = 0;
    if (!mul_ck(cta->coeff, nt->coeff, k)) return top();
    return AffineExpr::symbol(
               Sym{Sym::Kind::GidBase, cta->sym.dim, 0})
        .scaled(k);
  }
  return top();
}

std::string AffineExpr::str() const {
  if (top_) return "⊤";
  std::string out = std::to_string(c_);
  for (const Term& t : terms_) {
    out += (t.coeff >= 0 ? " + " : " - ") +
           std::to_string(t.coeff >= 0 ? t.coeff : -t.coeff) + "*" +
           to_string(t.sym);
  }
  return out;
}

std::optional<std::pair<std::int64_t, std::int64_t>> sym_range(
    const Sym& s, const LaunchEnv& env) {
  if (!env.known) return std::nullopt;
  switch (s.kind) {
    case Sym::Kind::Tid:
      return std::make_pair<std::int64_t, std::int64_t>(
          0, static_cast<std::int64_t>(env.ntid[s.dim]) - 1);
    case Sym::Kind::CtaId:
      return std::make_pair<std::int64_t, std::int64_t>(
          0, static_cast<std::int64_t>(env.nctaid[s.dim]) - 1);
    default:
      // NTid/NCtaId/valued params fold to constants under a known
      // launch and GidBase is rewritten away; what remains (unvalued
      // Param) has no finite range.
      return std::nullopt;
  }
}

namespace {

using ptx::Instr;
using ptx::Operand;
using ptx::Reg;
using ptx::Space;
using ptx::Sreg;
using ptx::SregKind;

/// Abstract register file: Reg::key() -> expression.  An absent key
/// is ⊤.  std::map keeps join and equality deterministic.
using Env = std::map<std::uint32_t, AffineExpr>;

AffineExpr sreg_expr(const Sreg& s, const LaunchEnv& env) {
  const auto d = static_cast<std::uint8_t>(s.dim);
  switch (s.kind) {
    case SregKind::Tid:
      return AffineExpr::symbol(Sym{Sym::Kind::Tid, d, 0});
    case SregKind::CtaId:
      return AffineExpr::symbol(Sym{Sym::Kind::CtaId, d, 0});
    case SregKind::NTid:
      return env.known ? AffineExpr::constant(env.ntid[d])
                       : AffineExpr::symbol(Sym{Sym::Kind::NTid, d, 0});
    case SregKind::NCtaId:
      return env.known ? AffineExpr::constant(env.nctaid[d])
                       : AffineExpr::symbol(Sym{Sym::Kind::NCtaId, d, 0});
  }
  return AffineExpr::top();
}

AffineExpr eval_operand(const Operand& op, const Env& env,
                        const LaunchEnv& launch) {
  struct V {
    const Env& env;
    const LaunchEnv& launch;
    AffineExpr operator()(const Reg& r) const {
      const auto it = env.find(r.key());
      return it == env.end() ? AffineExpr::top() : it->second;
    }
    AffineExpr operator()(const Sreg& s) const {
      return sreg_expr(s, launch);
    }
    AffineExpr operator()(const ptx::Imm& i) const {
      return AffineExpr::constant(i.value);
    }
    AffineExpr operator()(const ptx::RegImm& ri) const {
      return (*this)(ri.reg).add(AffineExpr::constant(ri.offset));
    }
  };
  return std::visit(V{env, launch}, op);
}

void set_reg(Env& env, const Reg& r, AffineExpr e) {
  // A 32-bit register cannot hold a constant outside its width; such
  // an assignment would wrap, which the domain does not model.
  if (!e.is_top() && e.is_const() && r.width < 64) {
    const std::int64_t hi = std::int64_t{1} << r.width;
    if (e.constant_term() < 0 || e.constant_term() >= hi) {
      e = AffineExpr::top();
    }
  }
  if (e.is_top()) env.erase(r.key());
  else env[r.key()] = std::move(e);
}

/// Transfer one instruction; appends access sites when `sites` is
/// non-null (the recording pass after the fixpoint).
void transfer(const Instr& instr, std::uint32_t pc, Env& env,
              const LaunchEnv& launch, std::vector<AccessSite>* sites) {
  auto ev = [&](const Operand& op) { return eval_operand(op, env, launch); };
  auto record = [&](Space space, bool write, bool atomic, unsigned width,
                    const Operand& addr) {
    if (sites == nullptr) return;
    if (space != Space::Global && space != Space::Shared) return;
    sites->push_back(AccessSite{pc, space, write, atomic, width, ev(addr)});
  };

  if (const auto* i = std::get_if<ptx::IBop>(&instr)) {
    AffineExpr r = AffineExpr::top();
    switch (i->op) {
      case ptx::BinOp::Add: r = ev(i->a).add(ev(i->b)); break;
      case ptx::BinOp::Sub: r = ev(i->a).sub(ev(i->b)); break;
      case ptx::BinOp::Mul:
      case ptx::BinOp::MulWide: r = ev(i->a).mul(ev(i->b)); break;
      case ptx::BinOp::Shl: {
        const AffineExpr b = ev(i->b);
        if (b.is_const() && b.constant_term() >= 0 &&
            b.constant_term() < 63) {
          r = ev(i->a).scaled(std::int64_t{1} << b.constant_term());
        }
        break;
      }
      default: break;  // MulHi/Div/Rem/Min/Max/And/Or/Xor/Shr -> ⊤
    }
    set_reg(env, i->dst, std::move(r));
  } else if (const auto* i = std::get_if<ptx::ITop>(&instr)) {
    // MadLo/MadWide: a*b + c.
    set_reg(env, i->dst, ev(i->a).mul(ev(i->b)).add(ev(i->c)));
  } else if (const auto* i = std::get_if<ptx::IUop>(&instr)) {
    if (i->op == ptx::UnOp::Cvt && i->type.width <= i->dst.width) {
      // Widening (or same-width) conversion preserves the value.
      set_reg(env, i->dst, ev(i->a));
    } else if (i->op == ptx::UnOp::Neg) {
      set_reg(env, i->dst, AffineExpr::constant(0).sub(ev(i->a)));
    } else {
      set_reg(env, i->dst, AffineExpr::top());
    }
  } else if (const auto* i = std::get_if<ptx::IMov>(&instr)) {
    set_reg(env, i->dst, ev(i->src));
  } else if (const auto* i = std::get_if<ptx::ILd>(&instr)) {
    record(i->space, false, false, i->type.bytes(), i->addr);
    AffineExpr v = AffineExpr::top();
    if (i->space == Space::Param) {
      const AffineExpr a = ev(i->addr);
      if (a.is_const()) {
        const auto off = static_cast<std::uint32_t>(a.constant_term());
        const auto it = launch.params.find(off);
        if (it != launch.params.end() &&
            it->second <= static_cast<std::uint64_t>(
                              std::numeric_limits<std::int64_t>::max())) {
          v = AffineExpr::constant(static_cast<std::int64_t>(it->second));
        } else if (it == launch.params.end()) {
          v = AffineExpr::symbol(Sym{Sym::Kind::Param, 0, off});
        }
      }
    }
    set_reg(env, i->dst, std::move(v));
  } else if (const auto* i = std::get_if<ptx::ISt>(&instr)) {
    record(i->space, true, false, i->type.bytes(), i->addr);
  } else if (const auto* i = std::get_if<ptx::IAtom>(&instr)) {
    record(i->space, true, true, i->type.bytes(), i->addr);
    set_reg(env, i->dst, AffineExpr::top());
  } else if (const auto* i = std::get_if<ptx::ISelp>(&instr)) {
    // selp folds only when both arms agree.
    const AffineExpr a = ev(i->a);
    set_reg(env, i->dst, a == ev(i->b) ? a : AffineExpr::top());
  } else if (const auto* i = std::get_if<ptx::IShfl>(&instr)) {
    set_reg(env, i->dst, AffineExpr::top());
  } else if (const auto* i = std::get_if<ptx::IVote>(&instr)) {
    if (i->mode == ptx::VoteMode::Ballot) {
      set_reg(env, i->dst_ballot, AffineExpr::top());
    }
  }
  // Nop/Bra/PBra/Setp/Sync/Bar/Exit: no register effect.
}

/// Pointwise join: keep entries present and equal in both (anything
/// else is ⊤, i.e. absent).
Env join(const Env& a, const Env& b) {
  Env out;
  for (const auto& [k, e] : a) {
    const auto it = b.find(k);
    if (it != b.end() && it->second == e) out.emplace(k, e);
  }
  return out;
}

}  // namespace

std::vector<AccessSite> analyze_addresses(const ptx::Program& prg,
                                          const LaunchEnv& env) {
  std::vector<AccessSite> sites;
  if (prg.empty()) return sites;
  const ptx::Cfg cfg(prg.code());
  const auto& blocks = cfg.blocks();

  // Forward fixpoint on block-entry environments.  The join only ever
  // removes entries once a block has been reached, so it terminates.
  std::vector<std::optional<Env>> in(blocks.size());
  std::deque<std::uint32_t> work;
  in[0] = Env{};
  work.push_back(0);
  while (!work.empty()) {
    const std::uint32_t b = work.front();
    work.pop_front();
    Env env_now = *in[b];
    for (std::uint32_t pc = blocks[b].first; pc < blocks[b].last; ++pc) {
      transfer(prg.code()[pc], pc, env_now, env, nullptr);
    }
    for (const std::uint32_t s : blocks[b].succs) {
      if (s == cfg.exit_id()) continue;
      Env next = in[s].has_value() ? join(*in[s], env_now) : env_now;
      if (!in[s].has_value() || next != *in[s]) {
        in[s] = std::move(next);
        if (std::find(work.begin(), work.end(), s) == work.end()) {
          work.push_back(s);
        }
      }
    }
  }

  // Recording pass over every reached block.
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    if (!in[b].has_value()) continue;  // unreachable
    Env env_now = *in[b];
    for (std::uint32_t pc = blocks[b].first; pc < blocks[b].last; ++pc) {
      transfer(prg.code()[pc], pc, env_now, env, &sites);
    }
  }
  std::sort(sites.begin(), sites.end(),
            [](const AccessSite& a, const AccessSite& b) {
              return a.pc < b.pc;
            });
  return sites;
}

}  // namespace cac::analysis
