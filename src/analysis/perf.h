// Static performance lint over the affine domain (docs/analysis.md):
// the passes that grow `cacval lint` from a correctness tool into a
// kernel-quality gate.  Three pass families, all priced by
// analysis/costmodel.h:
//
//  * UncoalescedGlobal — a Global access site whose per-lane addresses
//    spread a warp across more 128-byte segments than the ideal
//    (stride ≠ 1 element across consecutive tid.x).  The reported
//    transactions-per-warp is exact when the affine form is known;
//    sites the model cannot evaluate are silently skipped (`unknown`
//    is never a false positive).
//  * SharedBankConflict — a Shared site whose word stride maps several
//    distinct words of one phase onto the same bank (stride mod 32
//    over the 32-bank model): the classic column-major and
//    power-of-two-pitch patterns, with broadcasts exempt.
//  * DivergentRegion — a tid-dependent guard whose divergent region
//    (branch to ipostdom join) re-executes per-lane: flagged when the
//    predicate provably oscillates within a warp (a modulo component
//    over tid.x, e.g. `tid % 2`) or is beyond the affine domain
//    (may-report).  Affine predicates are monotone across the warp —
//    at most one transition, the benign boundary-guard idiom — and
//    stay quiet.  Findings are ranked by the instruction count of the
//    region, with its global-load count flagged.
//
// All findings are warnings: performance never affects correctness
// exit codes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/affine.h"
#include "support/diag.h"

namespace cac::analysis {

enum class PerfKind : std::uint8_t {
  UncoalescedGlobal,
  SharedBankConflict,
  DivergentRegion,
};

std::string to_string(PerfKind k);

struct PerfFinding {
  PerfKind kind = PerfKind::UncoalescedGlobal;
  std::uint32_t pc = 0;   // the access site / the branch
  SourceLoc loc;          // {0,0} when the program has no source
  std::string message;
  /// Cost, by kind (unused fields stay 0):
  unsigned transactions_per_warp = 0;  // UncoalescedGlobal
  unsigned ideal_transactions = 0;     // UncoalescedGlobal
  unsigned conflict_degree = 0;        // SharedBankConflict
  unsigned divergent_insns = 0;        // DivergentRegion
  unsigned global_loads = 0;           // DivergentRegion
};

struct PerfReport {
  /// Memory findings in pc order, then divergence hotspots ranked by
  /// region size (largest first).
  std::vector<PerfFinding> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Run the perf passes over one kernel.  `locs` maps pc -> source
/// position (LoweredModule::locs_for; an empty vector is accepted).
PerfReport analyze_perf(const ptx::Program& prg,
                        const std::vector<SourceLoc>& locs,
                        const LaunchEnv& env = {});

}  // namespace cac::analysis
