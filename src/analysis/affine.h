// Affine access analysis — the abstract interpreter half of the static
// analyzer (docs/analysis.md).
//
// Register values are tracked in a constant × symbol domain: an
// abstract value is either ⊤ (unknown) or an affine expression
//
//     c + Σ k_i · s_i
//
// over the launch symbols tid/ctaid/ntid/nctaid (per dimension), the
// composite gid base ctaid.d·ntid.d (so `mad.lo gid, ctaid, ntid, tid`
// stays affine), and unvalued kernel parameters.  A forward dataflow
// fixpoint over the CFG joins environments at block entries (equal
// expressions survive, anything else goes to ⊤ — loop counters
// therefore land on ⊤), then every Shared/Global memory access site is
// recorded with its address expression.  The classification of site
// pairs lives in analysis/disjoint.h.
//
// Soundness note: expressions are exact integer arithmetic; the
// analysis assumes address computations do not wrap at the register
// width (see docs/analysis.md for the guards consumers apply).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ptx/program.h"

namespace cac::analysis {

/// A symbol of the affine domain.
struct Sym {
  enum class Kind : std::uint8_t {
    Tid = 0,      // %tid.<dim>: varies per thread within a block
    CtaId = 1,    // %ctaid.<dim>: varies per block
    NTid = 2,     // %ntid.<dim>: launch constant
    NCtaId = 3,   // %nctaid.<dim>: launch constant
    GidBase = 4,  // ctaid.<dim> * ntid.<dim> (the mad.lo gid idiom)
    Param = 5,    // unvalued kernel argument at this Param-space offset
  };
  Kind kind = Kind::Tid;
  std::uint8_t dim = 0;            // 0..2; unused for Param
  std::uint32_t param_offset = 0;  // Param only

  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(kind) << 40) |
           (static_cast<std::uint64_t>(dim) << 32) | param_offset;
  }
  friend bool operator==(const Sym&, const Sym&) = default;
};

std::string to_string(const Sym& s);

/// One `k · s` term; expressions keep terms sorted by symbol key with
/// nonzero coefficients only, so structural equality is semantic
/// equality.
struct Term {
  Sym sym;
  std::int64_t coeff = 0;
  friend bool operator==(const Term&, const Term&) = default;
};

/// ⊤ or an affine expression.  All arithmetic is overflow-checked;
/// any operation that would overflow int64 yields ⊤.
class AffineExpr {
 public:
  AffineExpr() = default;  // ⊤

  static AffineExpr top() { return AffineExpr{}; }
  static AffineExpr constant(std::int64_t c);
  static AffineExpr symbol(const Sym& s);

  [[nodiscard]] bool is_top() const { return top_; }
  [[nodiscard]] bool is_const() const { return !top_ && terms_.empty(); }
  [[nodiscard]] std::int64_t constant_term() const { return c_; }
  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }

  [[nodiscard]] AffineExpr add(const AffineExpr& o) const;
  [[nodiscard]] AffineExpr sub(const AffineExpr& o) const;
  /// Multiplication: constant folding, scaling, and the single
  /// non-linear special case `ctaid.d * ntid.d` -> GidBase{d}.
  [[nodiscard]] AffineExpr mul(const AffineExpr& o) const;
  [[nodiscard]] AffineExpr scaled(std::int64_t k) const;

  friend bool operator==(const AffineExpr&, const AffineExpr&) = default;

  [[nodiscard]] std::string str() const;

 private:
  bool top_ = true;
  std::int64_t c_ = 0;
  std::vector<Term> terms_;
};

/// Launch specialization.  When `known`, ntid/nctaid evaluate to
/// constants, valued parameters fold to constants, and symbol ranges
/// become finite — turning may-conflict residue into exact verdicts.
struct LaunchEnv {
  bool known = false;
  std::uint32_t ntid[3] = {1, 1, 1};
  std::uint32_t nctaid[3] = {1, 1, 1};
  /// Param-slot byte offset -> concrete argument value (masked to the
  /// slot width by the caller).  Parameters absent here stay symbolic.
  std::unordered_map<std::uint32_t, std::uint64_t> params;
};

/// A Shared/Global memory access site of the program.
struct AccessSite {
  std::uint32_t pc = 0;
  ptx::Space space = ptx::Space::Global;
  bool write = false;   // St or Atom
  bool atomic = false;  // Atom
  unsigned width = 4;   // bytes accessed per thread
  AffineExpr addr;      // per-thread address, or ⊤
};

/// Run the abstract interpreter and collect every Shared/Global
/// Ld/St/Atom site in pc order.
std::vector<AccessSite> analyze_addresses(const ptx::Program& prg,
                                          const LaunchEnv& env = {});

/// Value range [lo, hi] of a symbol under the launch, when finite.
std::optional<std::pair<std::int64_t, std::int64_t>> sym_range(
    const Sym& s, const LaunchEnv& env);

}  // namespace cac::analysis
