// Affine access analysis — the abstract interpreter half of the static
// analyzer (docs/analysis.md).
//
// Register values are tracked in a constant × symbol domain: an
// abstract value is either ⊤ (unknown) or an affine expression
//
//     c + Σ k_i · s_i
//
// over the launch symbols tid/ctaid/ntid/nctaid (per dimension), the
// composite gid base ctaid.d·ntid.d (so `mad.lo gid, ctaid, ntid, tid`
// stays affine), and unvalued kernel parameters.  A forward dataflow
// fixpoint over the CFG joins environments at block entries (equal
// expressions survive, anything else goes to ⊤ — loop counters
// therefore land on ⊤), then every Shared/Global memory access site is
// recorded with its address expression.  The classification of site
// pairs lives in analysis/disjoint.h.
//
// Soundness note: expressions are exact integer arithmetic; the
// analysis assumes address computations do not wrap at the register
// width (see docs/analysis.md for the guards consumers apply).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ptx/program.h"

namespace cac::analysis {

/// A symbol of the affine domain.
struct Sym {
  enum class Kind : std::uint8_t {
    Tid = 0,      // %tid.<dim>: varies per thread within a block
    CtaId = 1,    // %ctaid.<dim>: varies per block
    NTid = 2,     // %ntid.<dim>: launch constant
    NCtaId = 3,   // %nctaid.<dim>: launch constant
    GidBase = 4,  // ctaid.<dim> * ntid.<dim> (the mad.lo gid idiom)
    Param = 5,    // unvalued kernel argument at this Param-space offset
  };
  Kind kind = Kind::Tid;
  std::uint8_t dim = 0;            // 0..2; unused for Param
  std::uint32_t param_offset = 0;  // Param only

  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(kind) << 40) |
           (static_cast<std::uint64_t>(dim) << 32) | param_offset;
  }
  friend bool operator==(const Sym&, const Sym&) = default;
};

std::string to_string(const Sym& s);

/// One `k · s` term; expressions keep terms sorted by symbol key with
/// nonzero coefficients only, so structural equality is semantic
/// equality.
struct Term {
  Sym sym;
  std::int64_t coeff = 0;
  friend bool operator==(const Term&, const Term&) = default;
};

/// ⊤ or an affine expression with an optional modulo component:
///
///     c + Σ k_i · s_i  +  q · ((m_c + Σ m_j · s_j) mod m)
///
/// The modulo component (modulus() == 0 when absent) is what `rem` and
/// power-of-two `and`-masks produce; it keeps strided/cyclic index
/// idioms (`tid % pitch`, `tid & 31`) out of ⊤ so the perf passes can
/// model them per lane.  It is only ever built from a provably
/// nonnegative inner expression, so the PTX truncated remainder
/// coincides with the mathematical mod and the component's value lies
/// in [0, m).  All arithmetic is overflow-checked; any operation that
/// would overflow int64 yields ⊤.
class AffineExpr {
 public:
  AffineExpr() = default;  // ⊤

  static AffineExpr top() { return AffineExpr{}; }
  static AffineExpr constant(std::int64_t c);
  static AffineExpr symbol(const Sym& s);

  [[nodiscard]] bool is_top() const { return top_; }
  [[nodiscard]] bool is_const() const {
    return !top_ && terms_.empty() && modulus_ == 0;
  }
  [[nodiscard]] std::int64_t constant_term() const { return c_; }
  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }

  /// Modulo component accessors; modulus() == 0 means "no component".
  [[nodiscard]] bool has_mod() const { return modulus_ != 0; }
  [[nodiscard]] std::int64_t modulus() const { return modulus_; }
  [[nodiscard]] std::int64_t mod_scale() const { return mod_scale_; }
  [[nodiscard]] std::int64_t mod_constant() const { return mod_c_; }
  [[nodiscard]] const std::vector<Term>& mod_terms() const {
    return mod_terms_;
  }

  [[nodiscard]] AffineExpr add(const AffineExpr& o) const;
  [[nodiscard]] AffineExpr sub(const AffineExpr& o) const;
  /// Multiplication: constant folding, scaling, and the single
  /// non-linear special case `ctaid.d * ntid.d` -> GidBase{d}.
  [[nodiscard]] AffineExpr mul(const AffineExpr& o) const;
  [[nodiscard]] AffineExpr scaled(std::int64_t k) const;
  /// `*this mod m` (m a constant > 1): exact when the value is
  /// provably nonnegative, with coefficients canonicalized into
  /// [0, m) so e.g. (34·tid) mod 32 == (2·tid) mod 32 structurally.
  /// ⊤ when nonnegativity cannot be shown or a modulo component is
  /// already present (no nesting).
  [[nodiscard]] AffineExpr rem(std::int64_t m) const;

  /// Every symbol is nonnegative except an unvalued Param; true when
  /// the constant and all coefficients (affine and modulo) are >= 0 and
  /// no Param term appears with the wrong sign potential.
  [[nodiscard]] bool provably_nonneg() const;

  friend bool operator==(const AffineExpr&, const AffineExpr&) = default;

  [[nodiscard]] std::string str() const;

 private:
  bool top_ = true;
  std::int64_t c_ = 0;
  std::vector<Term> terms_;
  std::int64_t modulus_ = 0;    // 0: no modulo component
  std::int64_t mod_scale_ = 0;  // q
  std::int64_t mod_c_ = 0;      // m_c, in [0, modulus)
  std::vector<Term> mod_terms_;  // coefficients in [0, modulus)
};

/// Launch specialization.  When `known`, ntid/nctaid evaluate to
/// constants, valued parameters fold to constants, and symbol ranges
/// become finite — turning may-conflict residue into exact verdicts.
struct LaunchEnv {
  bool known = false;
  std::uint32_t ntid[3] = {1, 1, 1};
  std::uint32_t nctaid[3] = {1, 1, 1};
  /// Param-slot byte offset -> concrete argument value (masked to the
  /// slot width by the caller).  Parameters absent here stay symbolic.
  std::unordered_map<std::uint32_t, std::uint64_t> params;
};

/// A path fact `expr cmp 0` that holds on every execution reaching the
/// program point carrying it — harvested from setp + predicated-branch
/// edges (`if (tid < n)` narrows the domain on the taken edge) and
/// intersected at joins.
struct Guard {
  AffineExpr expr;  // lhs - rhs of the originating setp
  ptx::CmpOp cmp = ptx::CmpOp::Eq;
  friend bool operator==(const Guard&, const Guard&) = default;
};

/// The guard that holds when `g` does NOT (Eq<->Ne, Lt<->Ge, Gt<->Le).
Guard negate(const Guard& g);

/// A Shared/Global memory access site of the program.
struct AccessSite {
  std::uint32_t pc = 0;
  ptx::Space space = ptx::Space::Global;
  bool write = false;   // St or Atom
  bool atomic = false;  // Atom
  unsigned width = 4;   // bytes accessed per thread
  AffineExpr addr;      // per-thread address, or ⊤
  /// Path facts holding at this site (every path from entry passes the
  /// guards).  Feed to expr_range for path-sensitive bounds.
  std::vector<Guard> guards;
};

/// Full analysis output: access sites plus per-branch guard facts.
struct ProgramFacts {
  std::vector<AccessSite> sites;  // pc order
  /// For each predicated branch (pc of the IPBra) whose predicate has a
  /// tracked affine comparison: the fact that holds on the *taken*
  /// edge, branch polarity already applied.
  std::unordered_map<std::uint32_t, Guard> taken_facts;
};

ProgramFacts analyze_program(const ptx::Program& prg,
                             const LaunchEnv& env = {});

/// Run the abstract interpreter and collect every Shared/Global
/// Ld/St/Atom site in pc order (analyze_program().sites).
std::vector<AccessSite> analyze_addresses(const ptx::Program& prg,
                                          const LaunchEnv& env = {});

/// Value range [lo, hi] of a symbol under the launch, when finite.
std::optional<std::pair<std::int64_t, std::int64_t>> sym_range(
    const Sym& s, const LaunchEnv& env);

/// Value range [lo, hi] of an expression under the launch, when every
/// needed bound is finite.  Guards tighten single-symbol constraints:
/// a fact `k·s + c cmp 0` clips s's range, so `if (tid < n)` bounds a
/// tid-indexed access even when ntid alone would not.  Symbols other
/// than Param are intrinsically >= 0; a modulo component contributes
/// scale·[0, modulus-1].
std::optional<std::pair<std::int64_t, std::int64_t>> expr_range(
    const AffineExpr& e, const LaunchEnv& env,
    const std::vector<Guard>& guards = {});

}  // namespace cac::analysis
