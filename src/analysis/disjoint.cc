#include "analysis/disjoint.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "ptx/cfg.h"

namespace cac::analysis {

namespace {

using ptx::Space;

bool add_ck(std::int64_t a, std::int64_t b, std::int64_t& out) {
  return !__builtin_add_overflow(a, b, &out);
}

bool mul_ck(std::int64_t a, std::int64_t b, std::int64_t& out) {
  return !__builtin_mul_overflow(a, b, &out);
}

bool intervals_overlap(std::int64_t a, unsigned wa, std::int64_t b,
                       unsigned wb) {
  return a < b + static_cast<std::int64_t>(wb) &&
         b < a + static_cast<std::int64_t>(wa);
}

/// Whether the pair could constitute a data race at all: some write,
/// and not the atomic-atomic carve-out.
bool conflicting(const AccessSite& a, const AccessSite& b) {
  return (a.write || b.write) && !(a.atomic && b.atomic);
}

// --- exact enumeration under a known launch ----------------------------

struct EnumPlan {
  bool feasible = false;
  // Tid/CtaId dims appearing in either address expression.
  bool tid_dim[3] = {};
  bool cta_dim[3] = {};
  // Threads in scope indistinguishable by the appearing dims exist, so
  // two distinct threads may share an assignment of the appearing syms.
  bool clones = false;
};

EnumPlan plan_enumeration(const AccessSite& a, const AccessSite& b,
                          const LaunchEnv& env) {
  EnumPlan p;
  if (!env.known || a.addr.is_top() || b.addr.is_top()) return p;
  for (const AccessSite* s : {&a, &b}) {
    for (const Term& t : s->addr.terms()) {
      switch (t.sym.kind) {
        case Sym::Kind::Tid: p.tid_dim[t.sym.dim] = true; break;
        case Sym::Kind::CtaId: p.cta_dim[t.sym.dim] = true; break;
        default: return p;  // symbolic param / unfolded launch symbol
      }
    }
  }
  std::uint64_t combos = 1, extra = 1;
  for (int d = 0; d < 3; ++d) {
    if (p.tid_dim[d]) combos *= env.ntid[d] * std::uint64_t{env.ntid[d]};
    else extra *= env.ntid[d];
    if (a.space == Space::Global) {
      if (p.cta_dim[d]) {
        combos *= env.nctaid[d] * std::uint64_t{env.nctaid[d]};
      } else {
        extra *= env.nctaid[d];
      }
    } else if (p.cta_dim[d]) {
      combos *= env.nctaid[d];  // ctaid is common to both threads
    }
    if (combos > (1u << 20)) return p;
  }
  p.clones = extra > 1;
  p.feasible = true;
  return p;
}

/// c + Σ k·v with the per-side values for appearing dims.  Returns
/// false on int64 overflow.
bool eval(const AffineExpr& e, const std::int64_t tid[3],
          const std::int64_t cta[3], std::int64_t& out) {
  out = e.constant_term();
  for (const Term& t : e.terms()) {
    const std::int64_t v =
        t.sym.kind == Sym::Kind::Tid ? tid[t.sym.dim] : cta[t.sym.dim];
    std::int64_t prod = 0;
    if (!mul_ck(t.coeff, v, prod) || !add_ck(out, prod, out)) return false;
  }
  return true;
}

/// Iterate assignments of the flagged dims (others pinned to 0);
/// `f(vals)` returns true to stop early.
template <typename F>
bool for_each_assignment(const bool dims[3], const std::uint32_t bound[3],
                         std::int64_t vals[3], F&& f) {
  for (std::uint32_t x = 0; x < (dims[0] ? bound[0] : 1); ++x) {
    for (std::uint32_t y = 0; y < (dims[1] ? bound[1] : 1); ++y) {
      for (std::uint32_t z = 0; z < (dims[2] ? bound[2] : 1); ++z) {
        vals[0] = dims[0] ? x : 0;
        vals[1] = dims[1] ? y : 0;
        vals[2] = dims[2] ? z : 0;
        if (f()) return true;
      }
    }
  }
  return false;
}

enum class EnumOutcome { NoOverlap, Overlap, Infeasible };

/// Exhaustively test all pairs of distinct thread identities in scope.
/// For Shared the two threads share a block (common ctaid); for Global
/// each side carries its own (ctaid, tid).
EnumOutcome enumerate_overlap(const AccessSite& a, const AccessSite& b,
                              const LaunchEnv& env, const EnumPlan& p) {
  const bool shared = a.space == Space::Shared;
  std::int64_t tid_a[3], tid_b[3], cta_a[3], cta_b[3];
  bool infeasible = false;
  const bool no_cta[3] = {};
  const bool hit = for_each_assignment(
      p.cta_dim, env.nctaid, cta_a, [&] {
        // Shared: ctaid is common; Global: side b gets its own below.
        return for_each_assignment(
            shared ? no_cta : p.cta_dim, env.nctaid, cta_b, [&] {
              if (shared) {
                cta_b[0] = cta_a[0]; cta_b[1] = cta_a[1]; cta_b[2] = cta_a[2];
              }
              return for_each_assignment(p.tid_dim, env.ntid, tid_a, [&] {
                return for_each_assignment(p.tid_dim, env.ntid, tid_b, [&] {
                  const bool same_identity =
                      std::equal(tid_a, tid_a + 3, tid_b) &&
                      (shared || std::equal(cta_a, cta_a + 3, cta_b));
                  if (same_identity && !p.clones) return false;
                  std::int64_t va = 0, vb = 0;
                  if (!eval(a.addr, tid_a, cta_a, va) ||
                      !eval(b.addr, tid_b, cta_b, vb)) {
                    infeasible = true;
                    return true;
                  }
                  return intervals_overlap(va, a.width, vb, b.width);
                });
              });
            });
      });
  if (infeasible) return EnumOutcome::Infeasible;
  return hit ? EnumOutcome::Overlap : EnumOutcome::NoOverlap;
}

// --- static window / stride rules --------------------------------------

bool uniform_in(Sym::Kind k, Space space) {
  switch (k) {
    case Sym::Kind::NTid:
    case Sym::Kind::NCtaId:
    case Sym::Kind::Param:
      return true;  // launch constants / arguments: same for all threads
    case Sym::Kind::CtaId:
    case Sym::Kind::GidBase:
      // Shared races involve threads of one block, which agree on
      // ctaid (and hence on ctaid*ntid).
      return space == Space::Shared;
    case Sym::Kind::Tid:
      return false;
  }
  return false;
}

struct Split {
  std::vector<Term> uniform, varying;
};

Split split_terms(const AccessSite& s) {
  Split out;
  for (const Term& t : s.addr.terms()) {
    (uniform_in(t.sym.kind, s.space) ? out.uniform : out.varying)
        .push_back(t);
  }
  return out;
}

PairVerdict classify_static(const AccessSite& a, const AccessSite& b) {
  if (a.addr.is_top() || b.addr.is_top()) return PairVerdict::MayConflict;
  const Split sa = split_terms(a);
  const Split sb = split_terms(b);
  // The uniform parts must cancel exactly for the offset argument to
  // say anything about the difference of the two addresses.
  if (sa.uniform != sb.uniform) return PairVerdict::MayConflict;
  std::int64_t d = 0;  // base offset a - b
  if (!add_ck(a.addr.constant_term(), -b.addr.constant_term(), d)) {
    return PairVerdict::MayConflict;
  }

  if (sa.varying.empty() && sb.varying.empty()) {
    // Every thread in scope computes the same two addresses; the pair
    // overlaps iff the two fixed windows do.  Assumes >= 2 threads in
    // scope (analyze_races re-checks under a known launch).
    if (!intervals_overlap(d, a.width, 0, b.width)) {
      return PairVerdict::Disjoint;
    }
    return conflicting(a, b) ? PairVerdict::ProvablyRacing
                             : PairVerdict::MayConflict;
  }

  if (sa.varying == sb.varying) {
    // a(t) - b(t') = d + sum k_i * (s_i(t) - s_i(t')), an element of
    // d + gZ with g = gcd |k_i|.  Restricted to power-of-two g so the
    // congruence survives the machine's mod-2^width address wrap.
    std::uint64_t g = 0;
    for (const Term& t : sa.varying) {
      const std::uint64_t k =
          t.coeff < 0 ? -static_cast<std::uint64_t>(t.coeff)
                      : static_cast<std::uint64_t>(t.coeff);
      g = std::gcd(g, k);
    }
    if (g == 0 || (g & (g - 1)) != 0) return PairVerdict::MayConflict;
    const auto gi = static_cast<std::int64_t>(g);
    const std::int64_t r = ((d % gi) + gi) % gi;
    // No element of r + gZ falls in the open overlap window (-wa, wb).
    if (r >= static_cast<std::int64_t>(b.width) &&
        r <= gi - static_cast<std::int64_t>(a.width)) {
      return PairVerdict::Disjoint;
    }
    return PairVerdict::MayConflict;  // overlap plausible, not proven
  }
  return PairVerdict::MayConflict;
}

/// Threads in the conflict scope of `space` under a known launch.
std::uint64_t scope_threads(Space space, const LaunchEnv& env) {
  std::uint64_t n =
      std::uint64_t{env.ntid[0]} * env.ntid[1] * env.ntid[2];
  if (space == Space::Global) {
    n *= std::uint64_t{env.nctaid[0]} * env.nctaid[1] * env.nctaid[2];
  }
  return n;
}

}  // namespace

std::string to_string(PairVerdict v) {
  switch (v) {
    case PairVerdict::Disjoint: return "disjoint";
    case PairVerdict::MayConflict: return "may-conflict";
    case PairVerdict::ProvablyRacing: return "provably-racing";
  }
  return "?";
}

PairVerdict classify_pair(const AccessSite& a, const AccessSite& b,
                          const LaunchEnv& env) {
  if (a.space != b.space) return PairVerdict::Disjoint;
  const EnumPlan plan = plan_enumeration(a, b, env);
  if (plan.feasible) {
    switch (enumerate_overlap(a, b, env, plan)) {
      case EnumOutcome::NoOverlap:
        return PairVerdict::Disjoint;
      case EnumOutcome::Overlap:
        return conflicting(a, b) ? PairVerdict::ProvablyRacing
                                 : PairVerdict::MayConflict;
      case EnumOutcome::Infeasible:
        break;
    }
  }
  PairVerdict v = classify_static(a, b);
  if (v == PairVerdict::ProvablyRacing && env.known &&
      scope_threads(a.space, env) < 2) {
    // The "all threads hit one address" argument needs two threads.
    return PairVerdict::Disjoint;
  }
  return v;
}

namespace {

/// Instruction-level reachability that refuses to traverse a barrier:
/// returns the pcs reachable from `from` (exclusive of paths through
/// IBar).  Accesses separated by a barrier on every path are ordered
/// by the barrier and cannot race — unless the barrier itself is
/// divergent, which the barrier-divergence lint pass reports.
std::vector<bool> bar_free_reach(const ptx::Program& prg,
                                 std::uint32_t from) {
  std::vector<bool> seen(prg.size(), false);
  std::deque<std::uint32_t> work;
  auto push = [&](std::uint32_t pc) {
    if (pc < prg.size() && !seen[pc]) {
      seen[pc] = true;
      work.push_back(pc);
    }
  };
  push(from);
  while (!work.empty()) {
    const std::uint32_t pc = work.front();
    work.pop_front();
    const ptx::Instr& i = prg.code()[pc];
    if (pc != from && std::holds_alternative<ptx::IBar>(i)) continue;
    if (const auto* br = std::get_if<ptx::IBra>(&i)) {
      push(br->target);
    } else if (const auto* pb = std::get_if<ptx::IPBra>(&i)) {
      push(pb->target);
      push(pc + 1);
    } else if (!std::holds_alternative<ptx::IExit>(i)) {
      push(pc + 1);
    }
  }
  return seen;
}

}  // namespace

std::vector<SitePair> RaceCandidateReport::racing() const {
  std::vector<SitePair> out;
  std::copy_if(pairs.begin(), pairs.end(), std::back_inserter(out),
               [](const SitePair& p) {
                 return p.verdict == PairVerdict::ProvablyRacing;
               });
  return out;
}

bool RaceCandidateReport::any_racing() const {
  return std::any_of(pairs.begin(), pairs.end(), [](const SitePair& p) {
    return p.verdict == PairVerdict::ProvablyRacing;
  });
}

RaceCandidateReport analyze_races(const ptx::Program& prg,
                                  const LaunchEnv& env) {
  RaceCandidateReport report;
  const std::vector<AccessSite> sites = analyze_addresses(prg, env);
  if (sites.empty()) return report;

  // Blocks every thread is guaranteed to execute: the post-dominator
  // chain of the entry block.
  const ptx::Cfg cfg(prg.code());
  const std::vector<std::uint32_t> ipd = cfg.ipostdom();
  std::vector<bool> on_spine(cfg.blocks().size() + 1, false);
  for (std::uint32_t b = 0; b != cfg.exit_id(); b = ipd[b]) {
    on_spine[b] = true;
  }
  std::vector<std::vector<bool>> reach(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    reach[i] = bar_free_reach(prg, sites[i].pc);
  }

  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i; j < sites.size(); ++j) {
      const AccessSite& a = sites[i];
      const AccessSite& b = sites[j];
      if (a.space != b.space) continue;
      PairVerdict v = classify_pair(a, b, env);
      if (v == PairVerdict::ProvablyRacing) {
        const bool bar_free =
            i == j || reach[i][b.pc] || reach[j][a.pc];
        const bool always_executed = on_spine[cfg.block_of(a.pc)] &&
                                     on_spine[cfg.block_of(b.pc)];
        if (!bar_free || !always_executed) v = PairVerdict::MayConflict;
      }
      report.pairs.push_back(SitePair{a, b, v});
    }
  }
  return report;
}

std::vector<std::uint32_t> independent_access_pcs(const ptx::Program& prg,
                                                  const LaunchEnv& env) {
  const std::vector<AccessSite> sites = analyze_addresses(prg, env);
  std::vector<std::uint32_t> out;
  for (const AccessSite& a : sites) {
    bool independent = true;
    for (const AccessSite& b : sites) {
      if (a.space != b.space) continue;
      if (!a.write && !b.write) continue;  // reads always commute
      if (classify_pair(a, b, env) != PairVerdict::Disjoint) {
        independent = false;
        break;
      }
    }
    if (independent) out.push_back(a.pc);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace cac::analysis
