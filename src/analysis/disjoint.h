// Pairwise classification of memory access sites and the two consumers
// of the resulting facts:
//
//  * a static race-candidate report (cross-checked against the dynamic
//    detector, check/race.h), and
//  * the set of provably-independent access pcs handed to the explorer
//    as a partial-order-reduction oracle (sched::ExploreOptions).
//
// A pair of sites (a, b) is classified for *distinct* threads: could
// some thread executing a and a different thread executing b touch
// overlapping bytes?  For Shared space the threads live in one block
// (ctaid is common); for Global space they may come from anywhere in
// the grid.  Under a known launch the classifier enumerates thread
// identities exactly; otherwise a window/stride argument on the affine
// forms decides, and anything else degrades to MayConflict.  See
// docs/analysis.md for the soundness argument and its caveats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/affine.h"

namespace cac::analysis {

enum class PairVerdict : std::uint8_t {
  Disjoint,        // no two distinct threads can touch common bytes
  MayConflict,     // analysis cannot decide (or overlap is synchronized)
  ProvablyRacing,  // overlap proven, a write involved, no barrier between
};

std::string to_string(PairVerdict v);

/// Classify the address footprints of two sites for distinct threads.
/// Pure footprint overlap — barrier ordering and guard gates are
/// applied by analyze_races on top of this.
PairVerdict classify_pair(const AccessSite& a, const AccessSite& b,
                          const LaunchEnv& env = {});

/// A classified same-space site pair (a.pc <= b.pc; a.pc == b.pc is the
/// self-pair: two distinct threads at one instruction).
struct SitePair {
  AccessSite a, b;
  PairVerdict verdict = PairVerdict::MayConflict;
};

/// The static analogue of check::RaceReport.
struct RaceCandidateReport {
  std::vector<SitePair> pairs;  // every Shared/Global same-space pair

  [[nodiscard]] std::vector<SitePair> racing() const;
  [[nodiscard]] bool any_racing() const;
};

/// Classify every same-space pair of Shared/Global sites in `prg`.
/// A ProvablyRacing verdict additionally requires, beyond footprint
/// overlap with a non-atomic write:
///  * a bar-free control-flow path between the two sites (in either
///    direction; trivial for the self-pair), and
///  * both sites post-dominating entry (every thread executes them),
///    so the conflicting threads are known to reach the sites.
/// With an unknown launch the report assumes at least two threads in
/// scope; pairs failing a gate degrade to MayConflict.
RaceCandidateReport analyze_races(const ptx::Program& prg,
                                  const LaunchEnv& env = {});

/// Pcs of Shared/Global access instructions proven independent of every
/// same-space site in the program (including their own self-pair):
/// each pair is Disjoint, or both sites are non-atomic reads.  A step
/// of such an instruction commutes with every step any other warp can
/// take, so the explorer may commit it without branching the schedule
/// (sched::ExploreOptions::por_independent_pcs).  Sorted ascending.
std::vector<std::uint32_t> independent_access_pcs(const ptx::Program& prg,
                                                  const LaunchEnv& env = {});

}  // namespace cac::analysis
