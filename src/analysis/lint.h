// Static lint passes over lowered PTX — the `cacval lint` command.
//
// Three pass families (docs/analysis.md):
//  * BarrierDivergence — a bar.sync reachable inside a divergent branch
//    region (between a thread-dependent predicated branch and its
//    reconvergence point) deadlocks the block: part of the warp waits
//    at the barrier while its siblings execute the other side.
//  * UninitRegister — a register or predicate read with *no* write
//    reaching it on *any* path (may-initialized reaching-definitions;
//    values written on some-but-not-all paths are not flagged, so the
//    common init-in-one-arm idiom stays quiet).
//  * Affine access facts — SharedOverflow for accesses provably outside
//    the module's Shared layout, and RaceCandidate for pairs of sites
//    classified ProvablyRacing by analysis/disjoint.h.
//
// Findings carry the pc and, when the program was lowered from source
// (ptx::LoweredModule::kernel_locs), the source position.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/disjoint.h"
#include "support/diag.h"

namespace cac::analysis {

enum class Pass : std::uint8_t {
  BarrierDivergence,
  UninitRegister,
  SharedOverflow,
  RaceCandidate,
  // Performance passes (analysis/perf.h) — always Severity::Warning,
  // never part of the correctness exit code.
  UncoalescedGlobal,
  SharedBankConflict,
  DivergentRegion,
};

enum class Severity : std::uint8_t { Warning, Error };

std::string to_string(Pass p);
std::string to_string(Severity s);

struct Finding {
  Pass pass = Pass::BarrierDivergence;
  Severity severity = Severity::Error;
  std::uint32_t pc = 0;
  SourceLoc loc;  // {0,0} when the program has no source
  std::string message;
  /// Structured cost of a perf finding (transactions_per_warp /
  /// conflict_degree / divergent_insns ...), in emission order; empty
  /// for correctness findings.
  std::vector<std::pair<std::string, std::uint64_t>> cost;
};

struct LintOptions {
  /// Launch specialization for the affine passes; leave unknown to get
  /// the purely static verdicts.
  LaunchEnv launch;
  /// Size of the module's Shared layout; 0 disables the overflow check
  /// (hand-built programs without a layout).
  std::uint32_t shared_bytes = 0;
  /// Run the pairwise race-candidate classification (quadratic in the
  /// number of access sites).
  bool check_races = true;
  /// Run the performance passes (analysis/perf.h) and fold their
  /// findings in as warnings.
  bool perf = false;
};

struct LintReport {
  std::vector<Finding> findings;  // pc order, stable across runs

  [[nodiscard]] bool clean() const { return findings.empty(); }
  [[nodiscard]] std::size_t errors() const;
};

/// Run all passes over one kernel.  `locs` maps pc -> source position
/// (use LoweredModule::locs_for; an empty vector is accepted).
LintReport lint_kernel(const ptx::Program& prg,
                       const std::vector<SourceLoc>& locs,
                       const LintOptions& opts = {});

/// Human-readable rendering: one `file:line:col: severity: [pass] msg`
/// line per finding.
std::string render_text(const LintReport& report, const std::string& file,
                        const std::string& kernel);

/// JSON rendering (stable field order):
/// {"file":..., "kernel":..., "findings":[{"pass","severity","pc",
///  "line","column","message"}, ...]}
std::string render_json(const LintReport& report, const std::string& file,
                        const std::string& kernel);

}  // namespace cac::analysis
