// The hardware cost model behind the performance lint passes
// (docs/analysis.md): a 32-lane warp issuing one memory instruction,
// priced against 128-byte global-memory segments and a 32-bank × 4-byte
// shared memory.
//
// The model is *exact per warp* whenever the per-lane byte offsets can
// be derived from a site's affine address expression (warp_offsets),
// and silent otherwise — `unknown` is never turned into a finding, so
// a cost the model reports is the cost the hardware pays under the
// stated alignment assumptions (warp base 128-byte aligned, warps
// formed along x with ntid.x a multiple of 32).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "analysis/affine.h"

namespace cac::analysis {

inline constexpr unsigned kWarpLanes = 32;
inline constexpr unsigned kSegmentBytes = 128;  // global transaction size
inline constexpr unsigned kSharedBanks = 32;
inline constexpr unsigned kBankBytes = 4;  // bank word width

/// Byte offset of each lane's access relative to lane 0, derived from
/// the tid.x-dependent part of an address expression (linear terms plus
/// a tid.x-only modulo component).
struct WarpOffsets {
  std::array<std::int64_t, kWarpLanes> byte_off{};
};

/// Derive the per-lane offsets, or nullopt when the expression is ⊤,
/// has a lane-dependence the model cannot evaluate exactly (e.g. a
/// modulo over a warp-varying non-tid.x inner), or the launch places
/// warp boundaries off the x axis (known ntid.x not a multiple of 32).
/// tid.y/tid.z and all block/grid symbols are warp-uniform under the
/// x-major warp assumption and fold into the (dropped) base.
std::optional<WarpOffsets> warp_offsets(const AffineExpr& addr,
                                        const LaunchEnv& env = {});

/// Number of distinct 128-byte segments the warp touches when every
/// lane accesses `width` bytes at its offset (warp base assumed
/// segment-aligned).
unsigned global_transactions(const WarpOffsets& off, unsigned width);

/// The best case for a fully-coalesced access of `width` bytes/lane:
/// ceil(32·width / 128).
unsigned ideal_transactions(unsigned width);

/// Maximum number of distinct words mapped to one bank within a
/// hardware access phase (full warp for <=4-byte accesses, half-warps
/// for 8-byte) — 1 means conflict-free; lanes reading the same word
/// broadcast and never conflict.
unsigned shared_conflict_degree(const WarpOffsets& off, unsigned width);

}  // namespace cac::analysis
