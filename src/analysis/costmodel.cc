#include "analysis/costmodel.h"

#include <algorithm>
#include <set>

namespace cac::analysis {

namespace {

bool is_tid_x(const Sym& s) {
  return s.kind == Sym::Kind::Tid && s.dim == 0;
}

/// Warp-uniform symbols under the x-major warp assumption: everything
/// except tid.x (tid.y/tid.z only vary across warps when ntid.x is a
/// multiple of 32, which the model assumes / checks).
bool warp_uniform(const Sym& s) { return !is_tid_x(s); }

}  // namespace

std::optional<WarpOffsets> warp_offsets(const AffineExpr& addr,
                                        const LaunchEnv& env) {
  if (addr.is_top()) return std::nullopt;
  // A known launch whose block is narrower than a warp in x breaks the
  // "32 consecutive tid.x values" lane model.
  if (env.known && env.ntid[0] % kWarpLanes != 0) return std::nullopt;

  std::int64_t k_tid = 0;  // linear tid.x coefficient
  for (const Term& t : addr.terms()) {
    if (is_tid_x(t.sym)) {
      k_tid = t.coeff;
    } else if (!warp_uniform(t.sym)) {
      return std::nullopt;
    }
  }

  // Modulo component: evaluable per lane only when the inner varies
  // through tid.x alone.  A warp-uniform symbol inside the inner whose
  // coefficient does not vanish mod m shifts the cycle by an unknown
  // phase -> unknown.
  std::int64_t mod_k_tid = 0;
  std::int64_t mod_m = 0, mod_scale = 0, mod_c = 0;
  if (addr.has_mod()) {
    mod_m = addr.modulus();
    mod_scale = addr.mod_scale();
    mod_c = addr.mod_constant();
    for (const Term& t : addr.mod_terms()) {
      if (is_tid_x(t.sym)) {
        mod_k_tid = t.coeff;
      } else if (t.coeff % mod_m != 0) {
        return std::nullopt;
      }
    }
    if (mod_k_tid == 0) {
      // Warp-uniform modulo value: folds into the base.
      mod_m = 0;
      mod_scale = 0;
    }
  }

  WarpOffsets out;
  for (unsigned lane = 0; lane < kWarpLanes; ++lane) {
    std::int64_t off = k_tid * static_cast<std::int64_t>(lane);
    if (mod_m != 0) {
      // Inner is nonnegative by the rem() construction invariant.
      const std::int64_t inner =
          (mod_c + mod_k_tid * static_cast<std::int64_t>(lane)) % mod_m;
      off += mod_scale * inner;
    }
    out.byte_off[lane] = off;
  }
  return out;
}

unsigned global_transactions(const WarpOffsets& off, unsigned width) {
  if (width == 0) width = 1;
  std::set<std::int64_t> segments;
  for (const std::int64_t o : off.byte_off) {
    const std::int64_t first = o;
    const std::int64_t last = o + static_cast<std::int64_t>(width) - 1;
    auto seg = [](std::int64_t b) {
      // Floor division (offsets can sit below the lane-0 segment).
      std::int64_t q = b / kSegmentBytes;
      if (b % kSegmentBytes != 0 && b < 0) --q;
      return q;
    };
    for (std::int64_t s = seg(first); s <= seg(last); ++s) segments.insert(s);
  }
  return static_cast<unsigned>(segments.size());
}

unsigned ideal_transactions(unsigned width) {
  if (width == 0) width = 1;
  return (kWarpLanes * width + kSegmentBytes - 1) / kSegmentBytes;
}

unsigned shared_conflict_degree(const WarpOffsets& off, unsigned width) {
  if (width == 0) width = 1;
  // Hardware services <=4-byte accesses in one phase of 32 lanes and
  // 8-byte accesses as two half-warp phases (wider vectors would be
  // quarter phases); conflicts exist only within a phase.
  const unsigned phases = width <= kBankBytes ? 1 : (width == 8 ? 2 : 4);
  const unsigned lanes_per_phase = kWarpLanes / phases;
  unsigned worst = 1;
  for (unsigned p = 0; p < phases; ++p) {
    // bank -> distinct words touched (same word broadcasts).
    std::set<std::pair<std::int64_t, std::int64_t>> bank_words;
    std::array<unsigned, kSharedBanks> per_bank{};
    for (unsigned l = p * lanes_per_phase; l < (p + 1) * lanes_per_phase;
         ++l) {
      const std::int64_t o = off.byte_off[l];
      const std::int64_t first_word = o >= 0 ? o / kBankBytes
                                             : (o - (kBankBytes - 1)) /
                                                   kBankBytes;
      const std::int64_t last = o + static_cast<std::int64_t>(width) - 1;
      const std::int64_t last_word = last >= 0 ? last / kBankBytes
                                               : (last - (kBankBytes - 1)) /
                                                     kBankBytes;
      for (std::int64_t wword = first_word; wword <= last_word; ++wword) {
        const std::int64_t bank =
            ((wword % kSharedBanks) + kSharedBanks) % kSharedBanks;
        if (bank_words.emplace(bank, wword).second) {
          ++per_bank[static_cast<std::size_t>(bank)];
        }
      }
    }
    for (const unsigned n : per_bank) worst = std::max(worst, std::max(n, 1u));
  }
  return worst;
}

}  // namespace cac::analysis
