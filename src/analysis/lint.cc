#include "analysis/lint.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "analysis/perf.h"
#include "ptx/cfg.h"
#include "ptx/defuse.h"

namespace cac::analysis {

namespace {

using ptx::Cfg;
using ptx::Instr;

SourceLoc loc_of(const std::vector<SourceLoc>& locs, std::uint32_t pc) {
  return pc < locs.size() ? locs[pc] : SourceLoc{};
}

// --- barrier divergence -------------------------------------------------

void lint_barriers(const ptx::Program& prg, const Cfg& cfg,
                   const std::vector<SourceLoc>& locs,
                   std::vector<Finding>& out) {
  const std::vector<bool> divergent = ptx::divergent_pbras(prg.code());
  const std::vector<std::uint32_t> ipd = cfg.ipostdom();
  std::set<std::uint32_t> flagged;  // bar pcs, reported once
  for (std::uint32_t pc = 0; pc < prg.size(); ++pc) {
    if (!divergent[pc]) continue;
    const std::uint32_t branch_block = cfg.block_of(pc);
    const std::uint32_t join = ipd[branch_block];
    // Blocks reachable from the branch before reconvergence.  The join
    // itself is warp-uniform again; a bar there is fine (the corpus
    // reductions place theirs exactly at joins).
    std::vector<bool> seen(cfg.blocks().size(), false);
    std::deque<std::uint32_t> work;
    for (const std::uint32_t s : cfg.blocks()[branch_block].succs) {
      if (s != join && s != cfg.exit_id() && !seen[s]) {
        seen[s] = true;
        work.push_back(s);
      }
    }
    while (!work.empty()) {
      const std::uint32_t b = work.front();
      work.pop_front();
      for (std::uint32_t p = cfg.blocks()[b].first; p < cfg.blocks()[b].last;
           ++p) {
        if (std::holds_alternative<ptx::IBar>(prg.code()[p]) &&
            flagged.insert(p).second) {
          out.push_back(Finding{
              Pass::BarrierDivergence, Severity::Error, p, loc_of(locs, p),
              "bar.sync reachable inside the divergent region of the "
              "branch at pc " +
                  std::to_string(pc) +
                  ": threads that take the other side never arrive, the "
                  "block deadlocks"});
        }
      }
      for (const std::uint32_t s : cfg.blocks()[b].succs) {
        if (s != join && s != cfg.exit_id() && !seen[s]) {
          seen[s] = true;
          work.push_back(s);
        }
      }
    }
  }
}

// --- uninitialized registers -------------------------------------------

std::uint32_t pred_key(const ptx::Pred& p) {
  return 0x80000000u | p.index;
}

using KeySet = std::set<std::uint32_t>;

void lint_uninit(const ptx::Program& prg, const Cfg& cfg,
                 const std::vector<SourceLoc>& locs,
                 std::vector<Finding>& out) {
  // May-initialized analysis: the set of keys with at least one write
  // reaching block entry over the union of paths.  A read outside the
  // set has *zero* reaching definitions — guaranteed-garbage use.
  const auto& blocks = cfg.blocks();
  std::vector<std::optional<KeySet>> in(blocks.size());
  std::deque<std::uint32_t> work;
  in[0] = KeySet{};
  work.push_back(0);
  auto block_out = [&](std::uint32_t b) {
    KeySet s = *in[b];
    for (std::uint32_t pc = blocks[b].first; pc < blocks[b].last; ++pc) {
      const ptx::DefUse du = ptx::def_use(prg.code()[pc]);
      for (const ptx::Reg& r : du.writes) s.insert(r.key());
      for (const ptx::Pred& p : du.pred_writes) s.insert(pred_key(p));
    }
    return s;
  };
  while (!work.empty()) {
    const std::uint32_t b = work.front();
    work.pop_front();
    const KeySet s = block_out(b);
    for (const std::uint32_t succ : blocks[b].succs) {
      if (succ == cfg.exit_id()) continue;
      // Union join, tracked as "new keys only shrink nothing": the
      // may-set at entry is the union over predecessors, so merging
      // adds keys monotonically.
      KeySet next = in[succ].has_value() ? *in[succ] : s;
      if (in[succ].has_value()) {
        next.insert(s.begin(), s.end());
      }
      if (!in[succ].has_value() || next != *in[succ]) {
        in[succ] = std::move(next);
        if (std::find(work.begin(), work.end(), succ) == work.end()) {
          work.push_back(succ);
        }
      }
    }
  }

  std::set<std::pair<std::uint32_t, std::uint32_t>> reported;  // (pc, key)
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    if (!in[b].has_value()) continue;  // unreachable
    KeySet live = *in[b];
    for (std::uint32_t pc = blocks[b].first; pc < blocks[b].last; ++pc) {
      const ptx::DefUse du = ptx::def_use(prg.code()[pc]);
      auto report = [&](std::uint32_t key, const std::string& name) {
        if (live.count(key) == 0 && reported.emplace(pc, key).second) {
          out.push_back(Finding{
              Pass::UninitRegister, Severity::Error, pc, loc_of(locs, pc),
              name + " is read but never written on any path to pc " +
                  std::to_string(pc)});
        }
      };
      for (const ptx::Reg& r : du.reads) report(r.key(), to_string(r));
      for (const ptx::Pred& p : du.pred_reads) {
        report(pred_key(p), to_string(p));
      }
      for (const ptx::Reg& r : du.writes) live.insert(r.key());
      for (const ptx::Pred& p : du.pred_writes) live.insert(pred_key(p));
    }
  }
}

// --- affine access passes ----------------------------------------------

void lint_shared_overflow(const std::vector<AccessSite>& sites,
                          const LintOptions& opts,
                          const std::vector<SourceLoc>& locs,
                          std::vector<Finding>& out) {
  if (opts.shared_bytes == 0) return;
  const auto limit = static_cast<std::int64_t>(opts.shared_bytes);
  for (const AccessSite& s : sites) {
    if (s.space != ptx::Space::Shared) continue;
    // Path-sensitive: the guards on the site clip the range, so an
    // access dominated by `if (tid < n)` is judged under that bound.
    const auto r = expr_range(s.addr, opts.launch, s.guards);
    if (!r) continue;
    if (r->first < 0 || r->second + static_cast<std::int64_t>(s.width) >
                            limit) {
      out.push_back(Finding{
          Pass::SharedOverflow, Severity::Error, s.pc, loc_of(locs, s.pc),
          "shared access of " + std::to_string(s.width) + " bytes at " +
              s.addr.str() + " can reach byte " +
              std::to_string(r->second + s.width - 1) +
              ", outside the declared shared layout of " +
              std::to_string(opts.shared_bytes) + " bytes"});
    }
  }
}

void lint_races(const ptx::Program& prg, const LintOptions& opts,
                const std::vector<SourceLoc>& locs,
                std::vector<Finding>& out) {
  const RaceCandidateReport report = analyze_races(prg, opts.launch);
  for (const SitePair& p : report.racing()) {
    const char* what = p.a.write && p.b.write ? "write/write" : "read/write";
    std::string where = "pc " + std::to_string(p.b.pc);
    if (const SourceLoc l = loc_of(locs, p.b.pc); l.valid()) {
      where += " (line " + std::to_string(l.line) + ")";
    }
    out.push_back(Finding{
        Pass::RaceCandidate, Severity::Error, p.a.pc, loc_of(locs, p.a.pc),
        std::string(to_string(p.a.space)) + " " + what +
            " race: address " + p.a.addr.str() +
            (p.a.pc == p.b.pc
                 ? " is touched by every thread with no ordering"
                 : " overlaps the access at " + where +
                       " with no barrier between them")});
  }
}

}  // namespace

std::string to_string(Pass p) {
  switch (p) {
    case Pass::BarrierDivergence: return "barrier-divergence";
    case Pass::UninitRegister: return "uninit-register";
    case Pass::SharedOverflow: return "shared-overflow";
    case Pass::RaceCandidate: return "race-candidate";
    case Pass::UncoalescedGlobal: return "uncoalesced-global";
    case Pass::SharedBankConflict: return "shared-bank-conflict";
    case Pass::DivergentRegion: return "divergent-region";
  }
  return "?";
}

std::string to_string(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

std::size_t LintReport::errors() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == Severity::Error;
      }));
}

namespace {

/// Fold the perf passes' typed findings into lint findings: always
/// warnings, the structured cost carried alongside the message.
void fold_perf(const ptx::Program& prg, const std::vector<SourceLoc>& locs,
               const LintOptions& opts, std::vector<Finding>& out) {
  const PerfReport perf = analyze_perf(prg, locs, opts.launch);
  for (const PerfFinding& p : perf.findings) {
    Finding f;
    f.severity = Severity::Warning;
    f.pc = p.pc;
    f.loc = p.loc;
    f.message = p.message;
    switch (p.kind) {
      case PerfKind::UncoalescedGlobal:
        f.pass = Pass::UncoalescedGlobal;
        f.cost.emplace_back("transactions_per_warp", p.transactions_per_warp);
        f.cost.emplace_back("ideal_transactions", p.ideal_transactions);
        break;
      case PerfKind::SharedBankConflict:
        f.pass = Pass::SharedBankConflict;
        f.cost.emplace_back("conflict_degree", p.conflict_degree);
        break;
      case PerfKind::DivergentRegion:
        f.pass = Pass::DivergentRegion;
        f.cost.emplace_back("divergent_insns", p.divergent_insns);
        f.cost.emplace_back("global_loads", p.global_loads);
        break;
    }
    out.push_back(std::move(f));
  }
}

}  // namespace

LintReport lint_kernel(const ptx::Program& prg,
                       const std::vector<SourceLoc>& locs,
                       const LintOptions& opts) {
  LintReport report;
  if (prg.empty()) return report;
  const Cfg cfg(prg.code());
  lint_barriers(prg, cfg, locs, report.findings);
  lint_uninit(prg, cfg, locs, report.findings);
  const std::vector<AccessSite> sites = analyze_addresses(prg, opts.launch);
  lint_shared_overflow(sites, opts, locs, report.findings);
  if (opts.check_races) lint_races(prg, opts, locs, report.findings);
  if (opts.perf) fold_perf(prg, locs, opts, report.findings);
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.pc != b.pc
                                ? a.pc < b.pc
                                : static_cast<int>(a.pass) <
                                      static_cast<int>(b.pass);
                   });
  return report;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string render_text(const LintReport& report, const std::string& file,
                        const std::string& kernel) {
  std::string out;
  for (const Finding& f : report.findings) {
    out += file + ":";
    if (f.loc.valid()) {
      out += std::to_string(f.loc.line) + ":" + std::to_string(f.loc.column) +
             ":";
    }
    out += " ";
    out += to_string(f.severity) + ": [" + to_string(f.pass) + "] " +
           kernel + ": " + f.message + " (pc " + std::to_string(f.pc) +
           ")\n";
  }
  if (report.findings.empty()) {
    out = file + ": " + kernel + ": clean\n";
  }
  return out;
}

std::string render_json(const LintReport& report, const std::string& file,
                        const std::string& kernel) {
  std::string out = "{\"file\":\"" + json_escape(file) + "\",\"kernel\":\"" +
                    json_escape(kernel) + "\",\"findings\":[";
  bool first = true;
  for (const Finding& f : report.findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"pass\":\"" + to_string(f.pass) + "\",\"severity\":\"" +
           to_string(f.severity) + "\",\"pc\":" + std::to_string(f.pc) +
           ",\"line\":" + std::to_string(f.loc.line) +
           ",\"column\":" + std::to_string(f.loc.column) +
           ",\"message\":\"" + json_escape(f.message) + "\"";
    if (!f.cost.empty()) {
      out += ",\"cost\":{";
      bool first_cost = true;
      for (const auto& [key, value] : f.cost) {
        if (!first_cost) out += ",";
        first_cost = false;
        out += "\"" + key + "\":" + std::to_string(value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace cac::analysis
