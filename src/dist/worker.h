// One distributed-exploration worker: owns the hash partition
// `owner_of(hash, n_workers) == worker_index` of the visited set,
// expands states it owns, and ships every discovered foreign child to
// that child's owner as a kState frame (deduplicated through a local
// mirror store so each distinct remote state crosses the wire once).
// See docs/distributed.md for the full protocol walk-through.
#pragma once

#include "ptx/program.h"
#include "sem/config.h"

namespace cac::dist {

/// Run the worker protocol over the connected socket `fd` until the
/// coordinator sends kStop.  Blocks for the whole run.  `prg`/`kc`
/// must be the same kernel and launch the coordinator explores — the
/// kSetup fingerprints are verified against them.  Throws DistError on
/// protocol violations or a vanished coordinator; forked callers
/// should catch everything and _exit.
void run_worker(int fd, const ptx::Program& prg,
                const sem::KernelConfig& kc);

}  // namespace cac::dist
