// Socket plumbing for the distributed explorer: RAII fds, full-buffer
// sends, nonblocking read pumps, and the two connection modes —
// AF_UNIX socketpairs for forked single-host workers and TCP
// listen/connect for multi-host runs (cacval --dist-listen /
// dist-worker --dist-connect).
//
// Blocking discipline (the deadlock-freedom argument, see
// docs/distributed.md): the coordinator never blocks on a write — it
// buffers outbound frames per worker and drains them on POLLOUT —
// while workers may write blockingly, because the coordinator is
// always draining its read side.  All sends use MSG_NOSIGNAL; a dead
// peer surfaces as DistError(PeerDied), never SIGPIPE.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "dist/wire.h"

namespace cac::dist {

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Capped-exponential-backoff retry schedule for transient transport
/// failures (refused connects, timed-out sends).  The deadline bounds
/// the whole retry loop including backoff sleeps; 0 means attempts
/// alone bound it.
struct RetryPolicy {
  int max_attempts = 5;
  int initial_backoff_ms = 10;
  int max_backoff_ms = 1000;
  int deadline_ms = 0;
};

/// Process-wide transport health counters (reported through DistStats
/// and the serve `stats` reply).  Monotone; read with
/// transport_counters(), zeroed with transport_counters_reset().
struct TransportCounters {
  std::uint64_t send_retries = 0;     // transient send errors retried
  std::uint64_t connect_retries = 0;  // failed connect attempts retried
};
TransportCounters transport_counters();
void transport_counters_reset();

/// Write the whole buffer, blocking as needed.  Transient failures
/// (ETIMEDOUT/ENOBUFS/ENOMEM — in practice injected ones; a blocking
/// send rarely surfaces them) are retried with capped backoff and
/// counted in TransportCounters::send_retries.  Throws
/// DistError(PeerDied) when the peer is gone, DistError(Io) otherwise.
void send_all(int fd, const void* data, std::size_t n);

/// Drain everything currently readable (nonblocking) into the frame
/// reader.  Returns false on orderly EOF — the peer closed.  Adds the
/// byte count to *bytes when given.  Throws DistError on socket
/// errors; the reader throws DistError(Corrupt) from next() if the
/// fed bytes are malformed.
bool pump_reads(int fd, FrameReader& fr, std::uint64_t* bytes = nullptr);

/// Outbound byte queue with a lazily-compacted consumed prefix, so a
/// multi-megabyte backlog is not recopied on every partial send (the
/// naive erase-from-front is quadratic in backlog size).
struct SendBuf {
  std::string data;
  std::size_t pos = 0;  // consumed prefix

  void append(std::string_view bytes) { data.append(bytes); }
  [[nodiscard]] bool empty() const { return pos == data.size(); }
  [[nodiscard]] std::size_t pending() const { return data.size() - pos; }
};

/// Try to send a prefix of `buf` without blocking.  Returns false when
/// the peer is gone (ECONNRESET/EPIPE) — the coordinator's
/// non-throwing variant, so worker death during a flush routes into
/// recovery rather than unwinding.
bool flush_some(int fd, SendBuf& buf);

/// Connected AF_UNIX stream pair (fork mode: coordinator keeps
/// .first, the child keeps .second).
std::pair<Fd, Fd> socket_pair();

/// TCP endpoints.  `spec` is "host:port"; an empty host means all
/// interfaces for listen and loopback for connect.
Fd tcp_listen(const std::string& spec);
Fd tcp_accept(int listen_fd);
Fd tcp_connect(const std::string& spec);

/// Named AF_UNIX endpoints (`cacval serve --socket PATH` and its
/// clients).  unix_listen unlinks a stale socket file first; the bound
/// path is removed by the caller on shutdown, not here.
Fd unix_listen(const std::string& path);
Fd unix_accept(int listen_fd);
Fd unix_connect(const std::string& path);

/// Run `connect_fn` under the retry policy: DistError(Io) attempts
/// (refused/unreachable — the server may still be starting or between
/// restarts) are retried with capped exponential backoff, counted in
/// TransportCounters::connect_retries.  Exhausting the policy rethrows
/// the last error as DistError(Timeout) — the typed retryable failure
/// `cacval submit` maps to its "server unreachable" exit.
/// Protocol/Corrupt errors are never retried.
Fd connect_with_retry(const std::function<Fd()>& connect_fn,
                      const RetryPolicy& policy, const std::string& what);

/// Blocking receive of one complete frame with an optional deadline:
/// poll(2) for readability, drain nonblockingly, repeat.  Returns the
/// frame, or nullopt on orderly EOF / peer death with no complete
/// frame buffered.  `deadline_ms` bounds the whole wait (0 = forever);
/// expiry throws DistError(Timeout).  Malformed bytes throw
/// DistError(Corrupt) as usual.
std::optional<Frame> recv_frame(int fd, FrameReader& fr,
                                int deadline_ms = 0);

}  // namespace cac::dist
